package yhccl

import (
	"fmt"
	"testing"
)

func expectSum(p int, i int64) float64 {
	return float64(p)*float64(i) + float64(p*(p-1))/2
}

func TestPublicAllreduce(t *testing.T) {
	const p = 8
	const n = 2048
	m := NewMachine(NodeA(), p, true)
	makespan := m.MustRun(func(r *Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		Allreduce(r, sb, rb, n, Sum, Options{})
		for i := int64(0); i < n; i += 7 {
			if got := rb.Slice(i, 1)[0]; got != expectSum(p, i) {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), i, got, expectSum(p, i))
				return
			}
		}
	})
	if makespan <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestPublicCollectives(t *testing.T) {
	const p = 4
	const n = 512
	m := NewMachine(NodeB(), p, true)
	m.MustRun(func(r *Rank) {
		sb := r.NewBuffer("sb", n*p)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		ReduceScatter(r, sb, rb, n, Sum, Options{})
		for i := int64(0); i < n; i += 13 {
			want := expectSum(p, int64(r.ID())*n+i)
			if got := rb.Slice(i, 1)[0]; got != want {
				t.Errorf("reduce-scatter rank %d [%d]: %v != %v", r.ID(), i, got, want)
				return
			}
		}

		red := r.NewBuffer("red", n)
		r.FillPattern(sb, float64(r.ID()))
		Reduce(r, sb, red, n, Sum, 1, Options{})
		if r.ID() == 1 {
			if got := red.Slice(5, 1)[0]; got != expectSum(p, 5) {
				t.Errorf("reduce: %v != %v", got, expectSum(p, 5))
			}
		}

		buf := r.NewBuffer("buf", n)
		if r.ID() == 2 {
			r.FillPattern(buf, 99)
		}
		Bcast(r, buf, n, 2, Options{})
		if got := buf.Slice(n-1, 1)[0]; got != 99+float64(n-1) {
			t.Errorf("bcast rank %d: %v", r.ID(), got)
		}

		ag := r.NewBuffer("ag", n*p)
		r.FillPattern(buf, float64(1000*r.ID()))
		Allgather(r, buf, ag, n, Options{})
		for b := 0; b < p; b++ {
			if got := ag.Slice(int64(b)*n, 1)[0]; got != float64(1000*b) {
				t.Errorf("allgather rank %d block %d: %v", r.ID(), b, got)
				return
			}
		}
	})
}

func TestPublicNamedAlgorithms(t *testing.T) {
	const p = 4
	const n = 256
	for _, name := range AlgorithmNames("allreduce") {
		name := name
		t.Run(name, func(t *testing.T) {
			m := NewMachine(NodeA(), p, true)
			m.MustRun(func(r *Rank) {
				sb := r.NewBuffer("sb", n)
				rb := r.NewBuffer("rb", n)
				r.FillPattern(sb, float64(r.ID()))
				if err := AllreduceAlg(name, r, sb, rb, n, Sum, Options{}); err != nil {
					t.Error(err)
					return
				}
				if got := rb.Slice(0, 1)[0]; got != expectSum(p, 0) {
					t.Errorf("%s: rb[0] = %v, want %v", name, got, expectSum(p, 0))
				}
			})
		})
	}
}

func TestPublicNamedWrappersAllCollectives(t *testing.T) {
	const p = 4
	const n = 256
	m := NewMachine(NodeA(), p, true)
	m.MustRun(func(r *Rank) {
		sb := r.NewBuffer("sb", n*p)
		small := r.NewBuffer("small", n)
		rb := r.NewBuffer("rb", n)
		big := r.NewBuffer("big", n*p)

		r.FillPattern(sb, float64(r.ID()))
		if err := ReduceScatterAlg("ring", r, sb, rb, n, Sum, Options{}); err != nil {
			t.Error(err)
		}
		if got := rb.Slice(0, 1)[0]; got != expectSum(p, int64(r.ID())*n) {
			t.Errorf("reduce-scatter ring: %v", got)
		}

		r.FillPattern(small, float64(r.ID()))
		if err := ReduceAlg("dpml", r, small, rb, n, Sum, 0, Options{}); err != nil {
			t.Error(err)
		}
		if r.ID() == 0 {
			if got := rb.Slice(1, 1)[0]; got != expectSum(p, 1) {
				t.Errorf("reduce dpml: %v", got)
			}
		}

		if r.ID() == 1 {
			r.FillPattern(small, 5)
		}
		if err := BcastAlg("binomial", r, small, n, 1, Options{}); err != nil {
			t.Error(err)
		}
		if got := small.Slice(0, 1)[0]; got != 5 {
			t.Errorf("bcast binomial rank %d: %v", r.ID(), got)
		}

		r.FillPattern(small, float64(r.ID()*7))
		if err := AllgatherAlg("ring", r, small, big, n, Options{}); err != nil {
			t.Error(err)
		}
		if got := big.Slice(3*n, 1)[0]; got != 21 {
			t.Errorf("allgather ring: %v", got)
		}

		// Error paths for every wrapper.
		if ReduceScatterAlg("nope", r, sb, rb, n, Sum, Options{}) == nil ||
			ReduceAlg("nope", r, small, rb, n, Sum, 0, Options{}) == nil ||
			BcastAlg("nope", r, small, n, 0, Options{}) == nil ||
			AllgatherAlg("nope", r, small, big, n, Options{}) == nil {
			t.Error("unknown algorithm accepted by a wrapper")
		}
	})
}

func TestPublicUnknownAlgorithm(t *testing.T) {
	m := NewMachine(NodeA(), 2, false)
	m.MustRun(func(r *Rank) {
		sb := r.NewBuffer("sb", 8)
		rb := r.NewBuffer("rb", 8)
		if err := AllreduceAlg("bogus", r, sb, rb, 8, Sum, Options{}); err == nil {
			t.Error("expected error for unknown algorithm")
		}
	})
}

func TestAlgorithmNamesCoverCollectives(t *testing.T) {
	for _, c := range []string{"allreduce", "reduce-scatter", "reduce", "bcast", "allgather", "gather", "scatter", "alltoall"} {
		if len(AlgorithmNames(c)) == 0 {
			t.Errorf("no algorithms for %s", c)
		}
	}
	if AlgorithmNames("alltoallv") != nil {
		t.Error("unknown collective should yield nil")
	}
}

func TestPublicGatherScatterAlltoall(t *testing.T) {
	const p = 4
	const n = 256
	m := NewMachine(NodeA(), p, true)
	m.MustRun(func(r *Rank) {
		sb := r.NewBuffer("sb", n)
		gbuf := r.NewBuffer("gbuf", n*p)
		r.FillPattern(sb, float64(r.ID()*100))
		Gather(r, sb, gbuf, n, 0, Options{})
		if r.ID() == 0 {
			for b := int64(0); b < p; b++ {
				if got := gbuf.Slice(b*n, 1)[0]; got != float64(b*100) {
					t.Errorf("gather block %d: %v", b, got)
				}
			}
		}

		rb := r.NewBuffer("scat", n)
		if r.ID() == 0 {
			r.FillPattern(gbuf, 0)
		}
		Scatter(r, gbuf, rb, n, 0, Options{})
		if got := rb.Slice(0, 1)[0]; got != float64(int64(r.ID())*n) {
			t.Errorf("scatter rank %d: %v", r.ID(), got)
		}

		a2aIn := r.NewBuffer("a2ain", n*p)
		a2aOut := r.NewBuffer("a2aout", n*p)
		in := a2aIn.Slice(0, n*p)
		for j := int64(0); j < p; j++ {
			for i := int64(0); i < n; i++ {
				in[j*n+i] = float64(r.ID())*1e4 + float64(j)
			}
		}
		Alltoall(r, a2aIn, a2aOut, n, Options{})
		for j := int64(0); j < p; j++ {
			want := float64(j)*1e4 + float64(r.ID())
			if got := a2aOut.Slice(j*n, 1)[0]; got != want {
				t.Errorf("alltoall rank %d block %d: %v, want %v", r.ID(), j, got, want)
			}
		}
	})
}

func TestPolicyOptions(t *testing.T) {
	// Forcing each policy must keep results correct.
	const p = 4
	const n = 1024
	for _, pol := range []Policy{Memmove, TCopy, NTCopy, Adaptive} {
		m := NewMachine(NodeA(), p, true)
		m.MustRun(func(r *Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, float64(r.ID()))
			Allreduce(r, sb, rb, n, Sum, Options{}.WithPolicy(pol))
			if got := rb.Slice(100, 1)[0]; got != expectSum(p, 100) {
				t.Errorf("policy %v: %v != %v", pol, got, expectSum(p, 100))
			}
		})
	}
}

func ExampleAllreduce() {
	m := NewMachine(NodeA(), 4, true)
	m.MustRun(func(r *Rank) {
		sb := r.NewBuffer("sb", 4)
		rb := r.NewBuffer("rb", 4)
		for i := range sb.Slice(0, 4) {
			sb.Slice(0, 4)[i] = float64(r.ID())
		}
		Allreduce(r, sb, rb, 4, Sum, Options{})
		if r.ID() == 0 {
			fmt.Println(rb.Slice(0, 4))
		}
	})
	// Output: [6 6 6 6]
}
