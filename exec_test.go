package yhccl

import (
	"strings"
	"testing"

	"yhccl/internal/coll"
)

// execBody returns a rank body that runs one collective through run and
// records the shaped buffers so callers can compare outputs.
func execMakespan(t *testing.T, p int, n int64, run func(r *Rank, sb, rb *Buffer)) float64 {
	t.Helper()
	m := NewMachine(NodeA(), p, true)
	return m.MustRun(func(r *Rank) {
		// Generous shapes cover every collective's convention (p*n on
		// both sides); each body slices what it needs.
		sb := r.NewBuffer("sb", n*int64(p))
		rb := r.NewBuffer("rb", n*int64(p))
		r.FillPattern(sb, float64(r.ID()*1000))
		run(r, sb, rb)
	})
}

// TestExecParity proves Exec covers every collective and algorithm the
// legacy entry points did: for each (collective, algorithm) pair in the
// registries, the Exec makespan equals the legacy *Alg makespan exactly
// (same machine shape, same buffers, same fill).
func TestExecParity(t *testing.T) {
	const p, n = 8, 1024

	type legacy func(name string, r *Rank, sb, rb *Buffer) error
	cases := []struct {
		collective string
		names      []string
		old        legacy
	}{
		{"allreduce", AlgorithmNames("allreduce"), func(name string, r *Rank, sb, rb *Buffer) error {
			return AllreduceAlg(name, r, sb, rb, n, Sum, Options{})
		}},
		{"reduce-scatter", AlgorithmNames("reduce-scatter"), func(name string, r *Rank, sb, rb *Buffer) error {
			return ReduceScatterAlg(name, r, sb, rb, n, Sum, Options{})
		}},
		{"reduce", AlgorithmNames("reduce"), func(name string, r *Rank, sb, rb *Buffer) error {
			return ReduceAlg(name, r, sb, rb, n, Sum, 0, Options{})
		}},
		{"bcast", AlgorithmNames("bcast"), func(name string, r *Rank, sb, rb *Buffer) error {
			return BcastAlg(name, r, sb, n, 0, Options{})
		}},
		{"allgather", AlgorithmNames("allgather"), func(name string, r *Rank, sb, rb *Buffer) error {
			return AllgatherAlg(name, r, sb, rb, n, Options{})
		}},
	}
	for _, tc := range cases {
		if len(tc.names) == 0 {
			t.Fatalf("%s: empty registry", tc.collective)
		}
		for _, name := range tc.names {
			t.Run(tc.collective+"/"+name, func(t *testing.T) {
				oldT := execMakespan(t, p, n, func(r *Rank, sb, rb *Buffer) {
					if err := tc.old(name, r, sb, rb); err != nil {
						t.Errorf("legacy: %v", err)
					}
				})
				newT := execMakespan(t, p, n, func(r *Rank, sb, rb *Buffer) {
					if err := Exec(r, Req{Collective: tc.collective, Alg: name,
						Send: sb, Recv: rb, Count: n, Root: 0}); err != nil {
						t.Errorf("Exec: %v", err)
					}
				})
				if oldT != newT {
					t.Errorf("makespan diverged: legacy %v, Exec %v", oldT, newT)
				}
			})
		}
	}
}

// TestExecParityExtras covers the non-registry legacy entry points
// (gather/scatter/alltoall/scan defaults and the switched YHCCL
// collectives) against their Req equivalents.
func TestExecParityExtras(t *testing.T) {
	const p, n = 8, 1024
	cases := []struct {
		name string
		old  func(r *Rank, sb, rb *Buffer)
		req  Req
	}{
		{"allreduce", func(r *Rank, sb, rb *Buffer) { Allreduce(r, sb, rb, n, Sum, Options{}) },
			Req{Collective: "allreduce", Count: n}},
		{"reduce-scatter", func(r *Rank, sb, rb *Buffer) { ReduceScatter(r, sb, rb, n, Sum, Options{}) },
			Req{Collective: "reduce-scatter", Count: n}},
		{"reduce", func(r *Rank, sb, rb *Buffer) { Reduce(r, sb, rb, n, Sum, 2, Options{}) },
			Req{Collective: "reduce", Root: 2, Count: n}},
		{"bcast", func(r *Rank, sb, rb *Buffer) { Bcast(r, sb, n, 1, Options{}) },
			Req{Collective: "bcast", Root: 1, Count: n}},
		{"allgather", func(r *Rank, sb, rb *Buffer) { Allgather(r, sb, rb, n, Options{}) },
			Req{Collective: "allgather", Count: n}},
		{"gather", func(r *Rank, sb, rb *Buffer) { Gather(r, sb, rb, n, 0, Options{}) },
			Req{Collective: "gather", Count: n}},
		{"scatter", func(r *Rank, sb, rb *Buffer) { Scatter(r, sb, rb, n, 0, Options{}) },
			Req{Collective: "scatter", Count: n}},
		{"alltoall", func(r *Rank, sb, rb *Buffer) { Alltoall(r, sb, rb, n, Options{}) },
			Req{Collective: "alltoall", Count: n}},
		{"scan", func(r *Rank, sb, rb *Buffer) { Scan(r, sb, rb, n, Sum, Options{}) },
			Req{Collective: "scan", Count: n}},
		{"tuned-allreduce", func(r *Rank, sb, rb *Buffer) { TunedAllreduce(r, sb, rb, n, Sum, Options{}) },
			Req{Collective: "allreduce", Tuned: true, Count: n}},
		{"tuned-allgather", func(r *Rank, sb, rb *Buffer) { TunedAllgather(r, sb, rb, n, Options{}) },
			Req{Collective: "allgather", Tuned: true, Count: n}},
		{"resilient-allreduce-depth1", func(r *Rank, sb, rb *Buffer) {
			o := Options{FallbackDepth: 1}
			_, f, err := coll.ResilientAR("yhccl", o)
			if err != nil {
				t.Errorf("resilient: %v", err)
				return
			}
			f(r, r.World(), sb, rb, n, Sum, o)
		}, Req{Collective: "allreduce", Resilience: true, Count: n, Options: Options{FallbackDepth: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oldT := execMakespan(t, p, n, tc.old)
			newT := execMakespan(t, p, n, func(r *Rank, sb, rb *Buffer) {
				q := tc.req
				q.Send, q.Recv = sb, rb
				if err := Exec(r, q); err != nil {
					t.Errorf("Exec: %v", err)
				}
			})
			if oldT != newT {
				t.Errorf("makespan diverged: legacy %v, Exec %v", oldT, newT)
			}
		})
	}
}

// TestExecValidation pins the dispatcher's request validation: bad
// requests error before any rank body runs.
func TestExecValidation(t *testing.T) {
	const p, n = 4, 64
	cases := []struct {
		name string
		req  Req
		want string
	}{
		{"empty", Req{}, "Collective is empty"},
		{"unknown", Req{Collective: "allsum", Count: n}, "unknown collective"},
		{"count", Req{Collective: "allreduce", Count: 0}, "Count must be positive"},
		{"tuned+resilient", Req{Collective: "allreduce", Tuned: true, Resilience: true, Count: n}, "mutually exclusive"},
		{"tuned+alg", Req{Collective: "allreduce", Tuned: true, Alg: "ring", Count: n}, "conflicts"},
		{"tuned-scan", Req{Collective: "scan", Tuned: true, Count: n}, "paper collectives"},
		{"resilient-alltoall", Req{Collective: "alltoall", Resilience: true, Count: n}, "paper collectives"},
		{"nil-buffers", Req{Collective: "allreduce", Count: n}, "must both be set"},
		{"bcast-nil", Req{Collective: "bcast", Count: n}, "in-place buffer"},
		{"bad-alg", Req{Collective: "allreduce", Alg: "nope", Count: n}, "unknown algorithm"},
	}
	m := NewMachine(NodeB(), p, false)
	m.MustRun(func(r *Rank) {
		sb := r.NewBuffer("sb", n*p)
		rb := r.NewBuffer("rb", n*p)
		for _, tc := range cases {
			q := tc.req
			switch tc.name {
			case "nil-buffers", "bcast-nil":
				// leave buffers nil
			default:
				q.Send, q.Recv = sb, rb
			}
			err := Exec(r, q)
			if err == nil {
				if r.ID() == 0 {
					t.Errorf("%s: expected error, got nil", tc.name)
				}
				continue
			}
			if !strings.Contains(err.Error(), tc.want) {
				if r.ID() == 0 {
					t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
				}
			}
		}
	})
}

// TestExecAliases pins the accepted collective-name aliases.
func TestExecAliases(t *testing.T) {
	const p, n = 4, 256
	for _, alias := range []struct{ alias, canon string }{
		{"reducescatter", "reduce-scatter"},
		{"broadcast", "bcast"},
	} {
		a := execMakespan(t, p, n, func(r *Rank, sb, rb *Buffer) {
			if err := Exec(r, Req{Collective: alias.alias, Send: sb, Recv: rb, Count: n}); err != nil {
				t.Errorf("%s: %v", alias.alias, err)
			}
		})
		b := execMakespan(t, p, n, func(r *Rank, sb, rb *Buffer) {
			if err := Exec(r, Req{Collective: alias.canon, Send: sb, Recv: rb, Count: n}); err != nil {
				t.Errorf("%s: %v", alias.canon, err)
			}
		})
		if a != b {
			t.Errorf("%s vs %s: makespan %v != %v", alias.alias, alias.canon, a, b)
		}
	}
}

// TestExecDefaultOp pins the zero-Op default: a zero-valued Req.Op reduces
// with Sum rather than panicking on nil closures.
func TestExecDefaultOp(t *testing.T) {
	const p, n = 4, 256
	m := NewMachine(NodeA(), p, true)
	m.MustRun(func(r *Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		if err := Exec(r, Req{Collective: "allreduce", Send: sb, Recv: rb, Count: n}); err != nil {
			t.Errorf("Exec: %v", err)
			return
		}
		for i := int64(0); i < n; i += 7 {
			if got, want := rb.Slice(i, 1)[0], expectSum(p, i); got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), i, got, want)
				return
			}
		}
	})
}
