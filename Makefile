GO ?= go

.PHONY: build test test-race race race-fast vet chaos chaos-recover chaos-cluster chaos-churn scale engine-compare ci bench bench-baseline bench-compare tune tune-full plan-verify serve serve-overload

# Single CI entrypoint: vet, the full test suite (incl. the fast race pass),
# the fault-injection gates (rank-level, recovery, cluster-scale, and
# membership churn), the cluster-scale smoke gate, the tuned-plan pipeline
# (quick-budget synthesis + the beats-or-matches gate), then the
# multi-tenant serving gates (steady-state sweep and the bounded-queue
# overload point).
ci: test chaos chaos-recover chaos-cluster chaos-churn scale tune plan-verify serve serve-overload

build:
	$(GO) build ./...

# Default gate: vet, the full test suite, then a race pass over everything
# except internal/bench (whose determinism sweeps are ~10x slower under the
# race detector; use test-race for the exhaustive version).
test: vet
	$(GO) test ./...
	$(MAKE) race-fast

race-fast:
	$(GO) test -race $$($(GO) list ./... | grep -v internal/bench)

# The bench package's determinism sweeps run ~10x slower under the race
# detector on a small host, so give the suite room beyond the 10m default.
test-race:
	$(GO) test -race -timeout 45m ./...

# Backwards-compatible alias for test-race.
race: test-race

vet:
	$(GO) vet ./...

# Fault-injection sweep: every collective x fault plan must finish clean,
# fail with a diagnosis naming the victim rank, or be caught by
# self-validation. Exits nonzero on any undiagnosed outcome.
chaos:
	$(GO) run ./cmd/yhcclbench -chaos

# Recovery sweep: the chaos cases re-run under the resilient supervisor.
# Exits nonzero if anything is undiagnosed or if a transient bit-flip or
# single-straggler plan fails to recover (retry / quarantine / shrink /
# algorithm fallback).
chaos-recover:
	$(GO) run ./cmd/yhcclbench -chaos-recover

# Cluster-scale fault sweep: node crashes, degraded links, stragglers and
# inter-phase corruption on 4k-16k rank clusters, each run under the
# cluster supervisor with flat-memory budgets. Exits nonzero on any
# UNDIAGNOSED outcome, unrecovered crash/degrade, or budget violation.
chaos-cluster:
	$(GO) run ./cmd/yhcclbench -chaos-cluster

# Membership-churn gates: seeded crash->heal->rejoin cycles at 4096 ranks
# (every cycle must end recovered-by-rejoin at full membership under the
# flat-memory budgets) plus capacity shrink/grow serving at 1.2x the
# saturating rate (leases drain, admitted jobs never miss deadlines).
# Exits nonzero on any violation.
chaos-churn:
	$(GO) run ./cmd/yhcclbench -churn

# Cluster-scale smoke gate: 65536- and 262144-rank event-engine sweeps must
# finish within wall-clock and per-rank allocation budgets with zero
# goroutine growth. Exits nonzero on any violation.
scale:
	$(GO) run ./cmd/yhcclbench -scale-gate

# Engine parity matrix: every shared config on both simulation cores, exit
# nonzero on any makespan divergence (also runs inside `make test` via the
# cluster package's TestEngineParity).
engine-compare:
	$(GO) run ./cmd/simbench -engine-compare

# Engine + residency micro-benchmarks (text output, for quick comparisons).
bench:
	$(GO) test ./internal/sim ./internal/memmodel -bench . -run '^$$' -benchtime 1s

# Regenerate BENCH_sim.json (micro-benchmarks + fig11a quick wall-clock).
bench-baseline:
	./scripts/bench_baseline.sh

# Re-run the micro-benchmarks and diff against the checked-in baseline;
# fails when any benchmark is >15% slower than BENCH_sim.json records.
bench-compare:
	$(GO) run ./cmd/simbench -skip-fig -compare BENCH_sim.json > /dev/null

# Scratch dir for the CI tuning smoke (the committed plans/ are full-budget;
# see tune-full).
TUNE_DIR ?= /tmp/yhccl-plans-ci

# Quick-budget plan synthesis for both evaluation machines into a scratch
# dir: exercises the whole synthesize-save-load pipeline deterministically
# at CI cost without touching the committed caches.
tune:
	$(GO) run ./cmd/yhcclbench -tune -quick -node NodeA -p 64 -plans $(TUNE_DIR)
	$(GO) run ./cmd/yhcclbench -tune -quick -node NodeB -p 48 -plans $(TUNE_DIR)

# Full-budget regeneration of the committed plan caches (plans/). The
# search is deterministic, so an unchanged cost model reproduces the
# committed files byte-for-byte.
tune-full:
	$(GO) run ./cmd/yhcclbench -tune -node NodeA -p 64
	$(GO) run ./cmd/yhcclbench -tune -node NodeB -p 48

# Multi-tenant serving gate: the default mixed stream plus a fault-seeded
# chaos tenant swept across three offered loads. Exits nonzero if any
# tenant ends UNDIAGNOSED or the aggregate p99 makespan blows its budget.
serve:
	$(GO) run ./cmd/yhcclbench -serve-gate

# Serving overload gate: the deadline-annotated mix at 1.5x the saturating
# rate under a bounded admission queue. Exits nonzero unless the queue
# demonstrably sheds and every admitted job meets its deadline.
serve-overload:
	$(GO) run ./cmd/yhcclbench -serve-overload

# Beats-or-matches gate over the committed caches: the tuned dispatch must
# match or beat every figure baseline at every quick sweep point, with at
# least one strict win. Exits nonzero on any regression.
plan-verify:
	$(GO) run ./cmd/yhcclbench -plan-verify -quick -node NodeA -p 64
	$(GO) run ./cmd/yhcclbench -plan-verify -quick -node NodeB -p 48
