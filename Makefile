GO ?= go

.PHONY: build test race vet bench bench-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Engine + residency micro-benchmarks (text output, for quick comparisons).
bench:
	$(GO) test ./internal/sim ./internal/memmodel -bench . -run '^$$' -benchtime 1s

# Regenerate BENCH_sim.json (micro-benchmarks + fig11a quick wall-clock).
bench-baseline:
	./scripts/bench_baseline.sh
