GO ?= go

.PHONY: build test test-race race vet bench bench-baseline bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The bench package's determinism sweeps run ~10x slower under the race
# detector on a small host, so give the suite room beyond the 10m default.
test-race:
	$(GO) test -race -timeout 45m ./...

# Backwards-compatible alias for test-race.
race: test-race

vet:
	$(GO) vet ./...

# Engine + residency micro-benchmarks (text output, for quick comparisons).
bench:
	$(GO) test ./internal/sim ./internal/memmodel -bench . -run '^$$' -benchtime 1s

# Regenerate BENCH_sim.json (micro-benchmarks + fig11a quick wall-clock).
bench-baseline:
	./scripts/bench_baseline.sh

# Re-run the micro-benchmarks and diff against the checked-in baseline;
# fails when any benchmark is >15% slower than BENCH_sim.json records.
bench-compare:
	$(GO) run ./cmd/simbench -skip-fig -compare BENCH_sim.json > /dev/null
