package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	return MustNew(Config{SizeBytes: 8192, LineSize: 64, Ways: 4}) // 32 sets
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 8192, LineSize: 63, Ways: 4},       // non-power-of-two line
		{SizeBytes: 8192, LineSize: 64, Ways: 0},       // zero ways
		{SizeBytes: 100, LineSize: 64, Ways: 4},        // size not divisible
		{SizeBytes: 64 * 4 * 3, LineSize: 64, Ways: 4}, // 3 sets: not power of two
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	if _, err := New(Config{SizeBytes: 8192, LineSize: 64, Ways: 4}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	c.Load(0, 64)
	s := c.Stats()
	if s.LoadMisses != 1 || s.DemandFillBytes != 64 {
		t.Fatalf("cold load: %+v", s)
	}
	c.Load(0, 64)
	s = c.Stats()
	if s.LoadMisses != 1 {
		t.Fatalf("second load missed: %+v", s)
	}
}

func TestStoreMissIsRFO(t *testing.T) {
	c := small()
	c.Store(0, 128)
	s := c.Stats()
	if s.StoreMisses != 2 || s.RFOBytes != 128 {
		t.Fatalf("store misses: %+v", s)
	}
	if s.WritebackBytes != 0 {
		t.Fatalf("no eviction yet but writeback = %d", s.WritebackBytes)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := small()
	// Fill one set (ways=4, 32 sets): addresses mapping to set 0 are
	// multiples of 64*32 = 2048.
	for i := int64(0); i < 4; i++ {
		c.Store(i*2048, 64)
	}
	c.ResetStats()
	c.Load(4*2048, 64) // evicts the LRU dirty line
	s := c.Stats()
	if s.WritebackBytes != 64 {
		t.Fatalf("writeback = %d, want 64", s.WritebackBytes)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	c := small()
	for i := int64(0); i < 4; i++ {
		c.Load(i*2048, 64)
	}
	c.Load(0, 64) // refresh line 0
	c.Load(4*2048, 64)
	c.ResetStats()
	c.Load(0, 64) // must still hit
	if c.Stats().LoadMisses != 0 {
		t.Fatal("recently used line was evicted")
	}
	c.Load(1*2048, 64) // LRU victim was line 1: must miss
	if c.Stats().LoadMisses != 1 {
		t.Fatal("LRU line was not evicted")
	}
}

func TestNTStoreBypassesAndInvalidates(t *testing.T) {
	c := small()
	c.Store(0, 64) // dirty in cache
	c.ResetStats()
	c.StoreNT(0, 64)
	s := c.Stats()
	if s.NTStoreBytes != 64 {
		t.Fatalf("NT bytes = %d", s.NTStoreBytes)
	}
	if s.WritebackBytes != 0 {
		t.Fatalf("NT store should supersede dirty line, writeback = %d", s.WritebackBytes)
	}
	c.ResetStats()
	c.Load(0, 64)
	if c.Stats().LoadMisses != 1 {
		t.Fatal("line should have been invalidated by NT store")
	}
}

func TestFlushWritesBackDirty(t *testing.T) {
	c := small()
	c.Store(0, 256)
	c.ResetStats()
	c.Flush()
	if got := c.Stats().WritebackBytes; got != 256 {
		t.Fatalf("flush writeback = %d, want 256", got)
	}
	if c.Occupancy() != 0 {
		t.Fatal("cache not empty after flush")
	}
}

func TestStreamingCopyTrafficRatios(t *testing.T) {
	// The core Table 4 claim: for a copy whose working set far exceeds the
	// cache, temporal stores generate ~3 bytes of DRAM traffic per copied
	// byte, non-temporal ~2.
	c := MustNew(Config{SizeBytes: 1 << 16, LineSize: 64, Ways: 8})
	total := int64(1 << 20) // 16x the cache
	srcBase, dstBase := int64(0), total

	for off := int64(0); off < total; off += 4096 {
		c.Load(srcBase+off, 4096)
		c.Store(dstBase+off, 4096)
	}
	c.Flush()
	tTraffic := c.Stats().DRAMTraffic()

	c2 := MustNew(Config{SizeBytes: 1 << 16, LineSize: 64, Ways: 8})
	for off := int64(0); off < total; off += 4096 {
		c2.Load(srcBase+off, 4096)
		c2.StoreNT(dstBase+off, 4096)
	}
	c2.Flush()
	ntTraffic := c2.Stats().DRAMTraffic()

	rT := float64(tTraffic) / float64(total)
	rNT := float64(ntTraffic) / float64(total)
	if rT < 2.9 || rT > 3.1 {
		t.Errorf("temporal copy traffic ratio = %.3f, want ~3", rT)
	}
	if rNT < 1.9 || rNT > 2.1 {
		t.Errorf("NT copy traffic ratio = %.3f, want ~2", rNT)
	}
	if float64(tTraffic)/float64(ntTraffic) < 1.4 {
		t.Errorf("NT advantage %.2fx, want ~1.5x (paper's 50%% bandwidth gain)",
			float64(tTraffic)/float64(ntTraffic))
	}
}

func TestSmallWorkingSetNoCapacityMisses(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1 << 16, LineSize: 64, Ways: 8})
	// Working set half the cache; after warmup, repeated sweeps never miss.
	n := int64(1 << 15)
	c.Load(0, n)
	c.ResetStats()
	for i := 0; i < 4; i++ {
		c.Load(0, n)
		c.Store(0, n)
	}
	s := c.Stats()
	if s.LoadMisses != 0 || s.StoreMisses != 0 {
		t.Fatalf("misses on cache-resident working set: %+v", s)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := small()
		capLines := int(c.Config().SizeBytes) / c.Config().LineSize
		for i := 0; i < 500; i++ {
			addr := int64(rng.Intn(1 << 16))
			size := int64(rng.Intn(512) + 1)
			switch rng.Intn(3) {
			case 0:
				c.Load(addr, size)
			case 1:
				c.Store(addr, size)
			case 2:
				c.StoreNT(addr, size)
			}
			if c.Occupancy() > capLines {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTrafficConservation(t *testing.T) {
	// Property: total write-backs never exceed total bytes made dirty
	// (RFO fills + store hits can dirty lines; each dirty line is written
	// back at most once per fill).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := small()
		for i := 0; i < 400; i++ {
			addr := int64(rng.Intn(1 << 15))
			c.Store(addr, int64(rng.Intn(256)+1))
		}
		c.Flush()
		s := c.Stats()
		// Each written-back line was filled via RFO exactly once since the
		// last write-back, so writebacks <= RFO fills.
		return s.WritebackBytes <= s.RFOBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
