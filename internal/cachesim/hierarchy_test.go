package cachesim

import "testing"

func smallHier(inclusive bool) *Hierarchy {
	// 4 cores x 4 KB L2, 16 KB shared L3.
	return MustNewHierarchy(4,
		Config{SizeBytes: 4 << 10, LineSize: 64, Ways: 4},
		Config{SizeBytes: 16 << 10, LineSize: 64, Ways: 8},
		inclusive)
}

func TestHierarchyL2Hit(t *testing.T) {
	h := smallHier(false)
	h.Load(0, 0, 64)
	h.Load(0, 0, 64)
	s := h.Stats()
	if s.L2Hits != 1 || s.DRAMFills != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestHierarchyVictimServesFromL3(t *testing.T) {
	h := smallHier(false)
	// Stream 8 KB through core 0's 4 KB L2: the first half is evicted to
	// the victim L3.
	for a := int64(0); a < 8<<10; a += 64 {
		h.Load(0, a, 64)
	}
	before := h.Stats()
	// Re-touch the first half: should be L3 hits, not DRAM fills.
	for a := int64(0); a < 4<<10; a += 64 {
		h.Load(0, a, 64)
	}
	s := h.Stats()
	if got := s.DRAMFills - before.DRAMFills; got != 0 {
		t.Errorf("%d DRAM fills on data that should sit in the victim L3", got)
	}
	if got := s.L3Hits - before.L3Hits; got == 0 {
		t.Error("no L3 hits recorded")
	}
}

func TestHierarchyCapacityRule(t *testing.T) {
	// The paper's available-cache rule: 4 cores each sweeping a disjoint
	// (L2 + L3/4)-sized working set fit in the non-inclusive hierarchy but
	// thrash the inclusive one.
	perCore := int64(4<<10 + 4<<10) // L2 + share of L3 = 8 KB each
	sweep := func(h *Hierarchy) (fills int64) {
		// Warm-up pass, then measure a second pass.
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				fills = h.Stats().DRAMFills
			}
			for core := 0; core < 4; core++ {
				base := int64(core) * 1 << 20
				for a := int64(0); a < perCore; a += 64 {
					h.Load(core, base+a, 64)
				}
			}
		}
		return h.Stats().DRAMFills - fills
	}
	nonIncl := sweep(smallHier(false))
	incl := sweep(smallHier(true))
	if nonIncl >= incl {
		t.Errorf("non-inclusive second-pass fills (%d) should be below inclusive (%d): C = c' + p*c''",
			nonIncl, incl)
	}
	total := 4 * perCore / 64
	if float64(nonIncl) > 0.25*float64(total) {
		t.Errorf("non-inclusive hierarchy refilled %d of %d lines; working set should mostly fit", nonIncl, total)
	}
}

func TestHierarchyCoherenceInvalidate(t *testing.T) {
	h := smallHier(false)
	h.Load(0, 0, 64)
	h.Load(1, 0, 64)
	// Core 1 stores: core 0's copy must be invalidated.
	h.Store(1, 0, 64)
	before := h.Stats()
	h.Load(0, 0, 64)
	s := h.Stats()
	if s.L2Hits != before.L2Hits {
		t.Error("core 0 hit a line that a remote store should have invalidated")
	}
}

func TestHierarchyNTStoreBypasses(t *testing.T) {
	h := smallHier(false)
	h.Store(0, 0, 128)
	before := h.Stats().DRAMTrafficBytes
	h.StoreNT(0, 0, 128)
	if got := h.Stats().DRAMTrafficBytes - before; got != 128 {
		t.Errorf("NT store traffic = %d, want 128", got)
	}
	before2 := h.Stats()
	h.Load(0, 0, 64)
	if h.Stats().L2Hits != before2.L2Hits {
		t.Error("NT store should have invalidated the cached line")
	}
}

func TestHierarchyDirtyEvictionReachesDRAM(t *testing.T) {
	h := smallHier(false)
	// Dirty 4 KB in L2, then stream 32 KB of clean loads through the same
	// core to push the dirty lines through L3 out to DRAM.
	for a := int64(0); a < 4<<10; a += 64 {
		h.Store(0, a, 64)
	}
	mid := h.Stats().DRAMTrafficBytes
	for a := int64(1 << 20); a < 1<<20+32<<10; a += 64 {
		h.Load(0, a, 64)
	}
	extra := h.Stats().DRAMTrafficBytes - mid
	// Expect at least the 4 KB of dirty write-backs on top of the fills.
	fills := int64(32 << 10)
	if extra < fills+4<<10 {
		t.Errorf("traffic %d; want >= %d (fills) + 4096 (dirty write-backs)", extra, fills)
	}
}

func TestHierarchyConfigValidation(t *testing.T) {
	if _, err := NewHierarchy(0, Config{SizeBytes: 4096, LineSize: 64, Ways: 4},
		Config{SizeBytes: 8192, LineSize: 64, Ways: 4}, false); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewHierarchy(2, Config{SizeBytes: 4096, LineSize: 64, Ways: 4},
		Config{SizeBytes: 8192, LineSize: 128, Ways: 4}, false); err == nil {
		t.Error("mismatched line sizes accepted")
	}
}
