package cachesim

import (
	"fmt"
	"math/bits"
)

// Hierarchy simulates a two-level cache: private per-core L2s in front of
// a shared L3, in either inclusive or non-inclusive (victim) arrangement.
// It exists to validate the paper's available-cache rule (§4.2): on
// non-inclusive parts the data usable by p cooperating cores approaches
// C = L3 + p*L2; on inclusive parts only C = L3.
//
// Data movement:
//
//   - L2 miss, L3 hit: serve from L3; in the victim (non-inclusive) design
//     the line moves up (L3 copy invalidated), in the inclusive design the
//     L3 copy stays.
//   - L2 miss, L3 miss: fill from DRAM into L2 (and into L3 in the
//     inclusive design).
//   - L2 eviction: the victim (clean or dirty) is installed in L3
//     (victim design) or, if dirty, updates the inclusive L3 copy.
//   - L3 dirty eviction: write-back to DRAM.
//   - Coherence between L2s: invalidate-on-remote-store.
type Hierarchy struct {
	l2        []*Cache
	l3        *Cache
	inclusive bool
	stats     HierarchyStats
}

// HierarchyStats aggregates events across the hierarchy.
type HierarchyStats struct {
	// L2Hits, L3Hits and DRAMFills count line accesses by source.
	L2Hits, L3Hits, DRAMFills int64
	// DRAMTrafficBytes counts bytes to/from memory (fills, L3 dirty
	// write-backs, NT stores).
	DRAMTrafficBytes int64
}

// NewHierarchy builds a hierarchy with `cores` private L2s.
func NewHierarchy(cores int, l2, l3 Config, inclusive bool) (*Hierarchy, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("cachesim: need at least one core")
	}
	if l2.LineSize != l3.LineSize {
		return nil, fmt.Errorf("cachesim: L2/L3 line sizes differ")
	}
	h := &Hierarchy{inclusive: inclusive}
	l3c, err := New(l3)
	if err != nil {
		return nil, fmt.Errorf("L3: %w", err)
	}
	h.l3 = l3c
	h.l3.onEvict = func(addr int64, dirty bool) {
		if dirty {
			h.stats.DRAMTrafficBytes += int64(l3.LineSize)
		}
	}
	for i := 0; i < cores; i++ {
		c, err := New(l2)
		if err != nil {
			return nil, fmt.Errorf("L2: %w", err)
		}
		c.onEvict = func(addr int64, dirty bool) {
			// The L2 victim stays on chip: install in L3 (victim design),
			// or refresh the inclusive copy when dirty.
			if !h.inclusive || dirty {
				h.installL3(addr, dirty)
			}
		}
		h.l2 = append(h.l2, c)
	}
	return h, nil
}

// MustNewHierarchy panics on config errors.
func MustNewHierarchy(cores int, l2, l3 Config, inclusive bool) *Hierarchy {
	h, err := NewHierarchy(cores, l2, l3, inclusive)
	if err != nil {
		panic(err)
	}
	return h
}

// installL3 places a victim line in L3 without counting it as a demand
// access in the hierarchy stats (its own evictions still chain to DRAM).
func (h *Hierarchy) installL3(addr int64, dirty bool) {
	if dirty {
		h.l3.Store(addr, 1)
	} else {
		h.l3.Load(addr, 1)
	}
}

// Stats returns the aggregate counters.
func (h *Hierarchy) Stats() HierarchyStats { return h.stats }

func (h *Hierarchy) lineSize() int64 { return int64(h.l3.cfg.LineSize) }

// Load accesses [addr, addr+size) through core's L2.
func (h *Hierarchy) Load(core int, addr, size int64) {
	h.access(core, addr, size, false)
}

// Store write-allocates [addr, addr+size) through core's L2.
func (h *Hierarchy) Store(core int, addr, size int64) {
	h.access(core, addr, size, true)
}

// StoreNT bypasses the hierarchy: data goes to DRAM, cached copies are
// invalidated everywhere.
func (h *Hierarchy) StoreNT(core int, addr, size int64) {
	ls := h.lineSize()
	first, last := addr/ls, (addr+size-1)/ls
	for ln := first; ln <= last; ln++ {
		a := ln * ls
		for _, l2 := range h.l2 {
			l2.invalidateLine(a)
		}
		h.l3.invalidateLine(a)
		h.stats.DRAMTrafficBytes += ls
	}
}

// access walks L2 -> L3 -> DRAM at line granularity.
func (h *Hierarchy) access(core int, addr, size int64, store bool) {
	ls := h.lineSize()
	l2 := h.l2[core]
	first, last := addr/ls, (addr+size-1)/ls
	for ln := first; ln <= last; ln++ {
		a := ln * ls
		if store {
			for i, other := range h.l2 {
				if i != core {
					other.invalidateLine(a)
				}
			}
		}
		// Resolve where the line comes from BEFORE touching L2: the L2
		// access spills a victim into L3, and on real hardware the demand
		// line is fetched before the victim is handled.
		if l2.present(a) {
			h.stats.L2Hits++
			if store {
				l2.Store(a, 1)
			} else {
				l2.Load(a, 1)
			}
			continue
		}
		if h.l3.present(a) {
			h.stats.L3Hits++
			if !h.inclusive {
				// Victim design: the line moves up; L3 gives it away.
				h.l3.invalidateLine(a)
			}
		} else {
			h.stats.DRAMFills++
			h.stats.DRAMTrafficBytes += ls
			if h.inclusive {
				// Inclusive fill also installs in L3.
				h.l3.Load(a, 1)
			}
		}
		// Allocate in L2 (possibly spilling a victim into the slot L3
		// just freed).
		if store {
			l2.Store(a, 1)
		} else {
			l2.Load(a, 1)
		}
	}
}

// present reports whether the line holding addr is valid (no side effects).
func (c *Cache) present(addr int64) bool {
	ln := uint64(addr / int64(c.cfg.LineSize))
	set := c.sets[ln&c.setMask]
	tag := ln >> uint(bits.TrailingZeros(uint(c.numSets)))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// invalidateLine drops one line without write-back (coherence/victim move).
func (c *Cache) invalidateLine(addr int64) {
	ln := uint64(addr / int64(c.cfg.LineSize))
	set := c.sets[ln&c.setMask]
	tag := ln >> uint(bits.TrailingZeros(uint(c.numSets)))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			set[i].dirty = false
		}
	}
}
