// Package cachesim implements a line-granular, set-associative, write-back
// write-allocate cache simulator with non-temporal store support.
//
// It exists to validate the region-granular residency model in
// internal/memmodel against a faithful cache: both must predict the same
// DRAM-traffic ratios for the access patterns the paper's analysis relies
// on (streaming copies, sliced copies, reductions). The Table 4 experiment
// (sliced STREAM copy with temporal vs non-temporal stores) is reproduced
// on this simulator at a scaled array size.
package cachesim

import (
	"fmt"
	"math/bits"
)

// Config describes a cache.
type Config struct {
	// SizeBytes is the total capacity. Must be a multiple of LineSize*Ways.
	SizeBytes int64
	// LineSize is the cache-line size in bytes (power of two).
	LineSize int
	// Ways is the set associativity.
	Ways int
}

// Stats counts events since the last Reset. Byte counters are multiples of
// the line size.
type Stats struct {
	// Loads and Stores count accessed lines (logical accesses).
	Loads, Stores int64
	// LoadMisses and StoreMisses count lines that missed.
	LoadMisses, StoreMisses int64
	// DemandFillBytes is DRAM read traffic for load misses.
	DemandFillBytes int64
	// RFOBytes is DRAM read traffic for temporal store misses
	// (read-for-ownership line fills).
	RFOBytes int64
	// WritebackBytes is DRAM write traffic from dirty evictions/flushes.
	WritebackBytes int64
	// NTStoreBytes is DRAM write traffic from non-temporal stores.
	NTStoreBytes int64
}

// DRAMTraffic returns total bytes that crossed the memory controller.
func (s Stats) DRAMTraffic() int64 {
	return s.DemandFillBytes + s.RFOBytes + s.WritebackBytes + s.NTStoreBytes
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	use   uint64 // LRU stamp
}

// Cache is a single-level set-associative cache over a flat address space.
type Cache struct {
	cfg      Config
	sets     [][]line
	numSets  int
	lineBits uint
	setMask  uint64
	stamp    uint64
	stats    Stats

	// onEvict, when set, is invoked with the line-aligned address and
	// dirty state of every valid victim (used by Hierarchy to chain
	// levels). Write-back byte accounting still happens in this cache's
	// stats.
	onEvict func(addr int64, dirty bool)
}

// New builds a cache from the config, validating its geometry.
func New(cfg Config) (*Cache, error) {
	if cfg.LineSize <= 0 || bits.OnesCount(uint(cfg.LineSize)) != 1 {
		return nil, fmt.Errorf("cachesim: line size %d must be a power of two", cfg.LineSize)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cachesim: ways %d must be positive", cfg.Ways)
	}
	lines := cfg.SizeBytes / int64(cfg.LineSize)
	if lines <= 0 || lines%int64(cfg.Ways) != 0 {
		return nil, fmt.Errorf("cachesim: size %d not divisible into %d-way sets of %d-byte lines",
			cfg.SizeBytes, cfg.Ways, cfg.LineSize)
	}
	numSets := int(lines) / cfg.Ways
	if bits.OnesCount(uint(numSets)) != 1 {
		return nil, fmt.Errorf("cachesim: set count %d must be a power of two", numSets)
	}
	c := &Cache{
		cfg:      cfg,
		numSets:  numSets,
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setMask:  uint64(numSets - 1),
		sets:     make([][]line, numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// MustNew is New that panics on error (for tests and fixed configs).
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters, keeping cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// lineRange iterates the line-aligned addresses covering [addr, addr+size).
func (c *Cache) lineRange(addr, size int64) (first, last uint64) {
	if size <= 0 {
		panic("cachesim: access size must be positive")
	}
	ls := int64(c.cfg.LineSize)
	return uint64(addr / ls), uint64((addr + size - 1) / ls)
}

// Load simulates a temporal load of [addr, addr+size).
func (c *Cache) Load(addr, size int64) {
	first, last := c.lineRange(addr, size)
	for ln := first; ln <= last; ln++ {
		c.stats.Loads++
		if !c.access(ln, false) {
			c.stats.LoadMisses++
			c.stats.DemandFillBytes += int64(c.cfg.LineSize)
		}
	}
}

// Store simulates a temporal (write-allocate) store of [addr, addr+size).
func (c *Cache) Store(addr, size int64) {
	first, last := c.lineRange(addr, size)
	for ln := first; ln <= last; ln++ {
		c.stats.Stores++
		if !c.access(ln, true) {
			c.stats.StoreMisses++
			c.stats.RFOBytes += int64(c.cfg.LineSize)
		}
	}
}

// StoreNT simulates a non-temporal store: the data goes straight to memory
// and any cached copy is invalidated without write-back (superseded).
func (c *Cache) StoreNT(addr, size int64) {
	first, last := c.lineRange(addr, size)
	for ln := first; ln <= last; ln++ {
		c.stats.Stores++
		c.stats.NTStoreBytes += int64(c.cfg.LineSize)
		set := &c.sets[ln&c.setMask]
		tag := ln >> uint(bits.TrailingZeros(uint(c.numSets)))
		for i := range *set {
			if (*set)[i].valid && (*set)[i].tag == tag {
				(*set)[i].valid = false
				(*set)[i].dirty = false
			}
		}
	}
}

// access looks up a line, allocating on miss (write-allocate for stores,
// demand fill for loads). It returns true on hit. Dirty victims charge
// write-back traffic.
func (c *Cache) access(ln uint64, store bool) (hit bool) {
	set := c.sets[ln&c.setMask]
	tag := ln >> uint(bits.TrailingZeros(uint(c.numSets)))
	c.stamp++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].use = c.stamp
			if store {
				set[i].dirty = true
			}
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].use < set[victim].use {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		if v.dirty {
			c.stats.WritebackBytes += int64(c.cfg.LineSize)
		}
		if c.onEvict != nil {
			victimLine := (v.tag << uint(bits.TrailingZeros(uint(c.numSets)))) | (ln & c.setMask)
			c.onEvict(int64(victimLine)*int64(c.cfg.LineSize), v.dirty)
		}
	}
	v.valid = true
	v.tag = tag
	v.dirty = store
	v.use = c.stamp
	return false
}

// Flush writes back all dirty lines and invalidates the cache.
func (c *Cache) Flush() {
	for s := range c.sets {
		for i := range c.sets[s] {
			l := &c.sets[s][i]
			if l.valid && l.dirty {
				c.stats.WritebackBytes += int64(c.cfg.LineSize)
			}
			l.valid = false
			l.dirty = false
		}
	}
}

// Occupancy returns the number of valid lines (diagnostics).
func (c *Cache) Occupancy() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}
