package profile

import (
	"bytes"
	"strings"
	"testing"

	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

func TestProfilerRecordsSamples(t *testing.T) {
	const p = 8
	const n = 1024
	m := mpi.NewMachine(topo.NodeA(), p, true)
	prof := New(m)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		for iter := 0; iter < 3; iter++ {
			prof.Wrap(r, "allreduce", n*memmodel.ElemSize, func() {
				coll.AllreduceYHCCL(r, r.World(), sb, rb, n, mpi.Sum, coll.Options{})
			})
		}
		prof.Wrap(r, "bcast", n*memmodel.ElemSize, func() {
			coll.BcastPipelined(r, r.World(), sb, n, 0, coll.Options{})
		})
	})
	samples := prof.Samples()
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	for i, s := range samples {
		if s.Seconds <= 0 {
			t.Errorf("sample %d has non-positive duration", i)
		}
		if s.Counters.DAV() <= 0 {
			t.Errorf("sample %d has no traffic", i)
		}
	}
	sum := prof.Summarize()
	if len(sum) != 2 {
		t.Fatalf("got %d summary rows, want 2", len(sum))
	}
	byName := map[string]Summary{}
	for _, s := range sum {
		byName[s.Collective] = s
	}
	if byName["allreduce"].Calls != 3 || byName["bcast"].Calls != 1 {
		t.Errorf("call counts wrong: %+v", byName)
	}
}

func TestProfilerHandlesRootFastExit(t *testing.T) {
	// Binomial bcast's root exits long before the leaves; the sample must
	// close only when every rank has passed through.
	const p = 16
	const n = 4096
	m := mpi.NewMachine(topo.NodeA(), p, true)
	prof := New(m)
	m.MustRun(func(r *mpi.Rank) {
		buf := r.NewBuffer("buf", n)
		prof.Wrap(r, "bcast", n*memmodel.ElemSize, func() {
			coll.BcastBinomial(r, r.World(), buf, n, 0, coll.Options{})
		})
	})
	if len(prof.Samples()) != 1 {
		t.Fatalf("got %d samples, want 1", len(prof.Samples()))
	}
}

func TestProfilerFprint(t *testing.T) {
	m := mpi.NewMachine(topo.NodeA(), 4, true)
	prof := New(m)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", 256)
		rb := r.NewBuffer("rb", 256)
		prof.Wrap(r, "allreduce", 2048, func() {
			coll.AllreduceYHCCL(r, r.World(), sb, rb, 256, mpi.Sum, coll.Options{})
		})
	})
	var buf bytes.Buffer
	prof.Fprint(&buf)
	if !strings.Contains(buf.String(), "allreduce") {
		t.Errorf("summary missing collective name:\n%s", buf.String())
	}
}
