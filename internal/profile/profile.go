// Package profile is the reproduction of the paper's PMPI-style profiling
// tool (§5.1): it wraps collective invocations on a machine and records,
// per collective and message size, the simulated latency and the memory
// counters, producing the summary an MPI developer would use to decide
// where YHCCL helps.
package profile

import (
	"fmt"
	"io"
	"sort"

	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// Sample is one recorded collective invocation.
type Sample struct {
	// Collective is the operation name ("allreduce", ...).
	Collective string
	// Bytes is the message size.
	Bytes int64
	// Seconds is the simulated duration of the invocation (max over
	// ranks).
	Seconds float64
	// Counters holds the traffic deltas of the invocation.
	Counters memmodel.Counters
}

// Profiler accumulates samples for one machine.
type Profiler struct {
	machine *mpi.Machine
	samples []Sample

	opens map[string]*open
	seqs  map[string]map[int]int
}

// open tracks one collective invocation until every rank has passed
// through it.
type open struct {
	label    string
	bytes    int64
	joined   int
	inflight int
	minStart float64
	maxEnd   float64
	before   memmodel.Counters
}

// New creates a profiler for the machine.
func New(m *mpi.Machine) *Profiler {
	return &Profiler{
		machine: m,
		opens:   make(map[string]*open),
		seqs:    make(map[string]map[int]int),
	}
}

// Wrap records one collective invocation executed inside a Machine.Run
// body: every rank must call Wrap with the same label/bytes around the
// collective call. The profiler measures rank-local start/end virtual
// times; the slowest rank defines the sample duration.
func (p *Profiler) Wrap(r *mpi.Rank, label string, bytes int64, call func()) {
	// Every rank's i-th Wrap of a label belongs to invocation i.
	perRank, ok := p.seqs[label]
	if !ok {
		perRank = make(map[int]int)
		p.seqs[label] = perRank
	}
	seq := perRank[r.ID()]
	perRank[r.ID()] = seq + 1
	key := fmt.Sprintf("%s#%d", label, seq)

	start := r.Now()
	o, ok := p.opens[key]
	if !ok {
		o = &open{label: label, bytes: bytes, minStart: start,
			before: p.machine.Model.Counters()}
		p.opens[key] = o
	}
	if start < o.minStart {
		o.minStart = start
	}
	o.joined++
	o.inflight++
	call()
	if end := r.Now(); end > o.maxEnd {
		o.maxEnd = end
	}
	o.inflight--
	if o.inflight == 0 && o.joined == p.machine.Size() {
		p.samples = append(p.samples, Sample{
			Collective: o.label,
			Bytes:      o.bytes,
			Seconds:    o.maxEnd - o.minStart,
			Counters:   p.machine.Model.Counters().Sub(o.before),
		})
		delete(p.opens, key)
	}
}

// Samples returns all recorded samples.
func (p *Profiler) Samples() []Sample { return p.samples }

// Summary aggregates samples by (collective, bytes).
type Summary struct {
	Collective string
	Bytes      int64
	Calls      int
	TotalTime  float64
	TotalDAV   int64
	TotalDRAM  int64
}

// Summarize groups the samples.
func (p *Profiler) Summarize() []Summary {
	agg := map[string]*Summary{}
	for _, s := range p.samples {
		key := fmt.Sprintf("%s/%d", s.Collective, s.Bytes)
		e, ok := agg[key]
		if !ok {
			e = &Summary{Collective: s.Collective, Bytes: s.Bytes}
			agg[key] = e
		}
		e.Calls++
		e.TotalTime += s.Seconds
		e.TotalDAV += s.Counters.DAV()
		e.TotalDRAM += s.Counters.DRAMTraffic
	}
	out := make([]Summary, 0, len(agg))
	for _, e := range agg {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Collective != out[j].Collective {
			return out[i].Collective < out[j].Collective
		}
		return out[i].Bytes < out[j].Bytes
	})
	return out
}

// Fprint renders the summary table.
func (p *Profiler) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%-16s %10s %6s %12s %10s %10s\n",
		"collective", "bytes", "calls", "total(us)", "DAV(MB)", "DRAM(MB)")
	for _, s := range p.Summarize() {
		fmt.Fprintf(w, "%-16s %10d %6d %12.1f %10d %10d\n",
			s.Collective, s.Bytes, s.Calls, s.TotalTime*1e6, s.TotalDAV>>20, s.TotalDRAM>>20)
	}
}
