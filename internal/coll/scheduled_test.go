package coll

import (
	"math/rand"
	"testing"

	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/schedule"
	"yhccl/internal/topo"
)

// runScheduled executes a schedule on real data and verifies reduce-scatter
// semantics, returning the machine for counter checks.
func runScheduled(t *testing.T, p int, n int64, sched schedule.Schedule, o Options) *mpi.Machine {
	t.Helper()
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", int64(p)*n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		if err := ReduceScatterScheduled(r, r.World(), sched, sb, rb, n, mpi.Sum, o); err != nil {
			t.Error(err)
			return
		}
		for j := int64(0); j < n; j += 11 {
			want := expectSum(p, int64(r.ID())*n+j)
			if got := rb.Slice(j, 1)[0]; got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
	return m
}

func TestScheduledExecutorRunsMASchedule(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		runScheduled(t, p, 600, schedule.MA(p), Options{})
	}
}

func TestScheduledExecutorRunsDPMLSchedule(t *testing.T) {
	for _, p := range []int{2, 4, 6} {
		runScheduled(t, p, 600, schedule.DPML(p), Options{})
	}
}

func TestScheduledExecutorMultiChunk(t *testing.T) {
	// Force several chunks through a small slice.
	runScheduled(t, 4, 2000, schedule.MA(4), Options{SliceMaxBytes: 1024})
}

func TestScheduledExecutorRejectsInvalid(t *testing.T) {
	p := 4
	bad := schedule.MA(p)[:p-1] // wrong tree count
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", int64(p)*16)
		rb := r.NewBuffer("rb", 16)
		if err := ReduceScatterScheduled(r, r.World(), bad, sb, rb, 16, mpi.Sum, Options{}); err == nil {
			t.Error("invalid schedule accepted")
		}
	})
}

func TestScheduledMACopyVolumeOptimal(t *testing.T) {
	// Executing the MA schedule through the generic engine must still hit
	// the 2s copy-volume optimum.
	p := 8
	n := int64(1024)
	m := runScheduled(t, p, n, schedule.MA(p), Options{})
	s := int64(p) * n * memmodel.ElemSize
	if got := m.Model.Counters().CopyVolume; got != 2*s {
		t.Errorf("copy volume = %d, want %d (2s)", got, 2*s)
	}
}

// randomSchedule builds a valid random schedule by the same recursive
// construction the exhaustive search uses.
func randomSchedule(rng *rand.Rand, p int) schedule.Schedule {
	s := make(schedule.Schedule, p)
	for i := 0; i < p; i++ {
		var tree schedule.Tree
		var pool []schedule.Operand
		for x := 0; x < p; x++ {
			pool = append(pool, schedule.Slice(x))
		}
		for j := 0; j < p-1; j++ {
			ai := rng.Intn(len(pool))
			a := pool[ai]
			pool = append(pool[:ai], pool[ai+1:]...)
			bi := rng.Intn(len(pool))
			b := pool[bi]
			pool = append(pool[:bi], pool[bi+1:]...)
			tree = append(tree, schedule.Node{R: rng.Intn(p), A: a, B: b})
			pool = append(pool, schedule.Ref(j))
		}
		// The final ref (root) is implicitly the result; drop it from pool
		// bookkeeping — Validate only requires non-root refs consumed.
		s[i] = tree
	}
	return s
}

func TestScheduledExecutorRandomSchedules(t *testing.T) {
	// Property: any valid schedule produces correct reduce-scatter results
	// through the generic engine.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(5)
		sched := randomSchedule(rng, p)
		if err := sched.Validate(p); err != nil {
			t.Fatalf("seed %d: generator produced invalid schedule: %v", seed, err)
		}
		runScheduled(t, p, 300, sched, Options{})
	}
}
