package coll

import (
	"fmt"

	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// Self-validating mode: every collective's output can be checked against a
// closed-form scalar reference, and a divergence is reported as *which
// rank's which chunk* went wrong — the difference between "the answer is
// off" and "rank 3's second 4 KB chunk holds a flipped bit".
//
// The references assume inputs produced by mpi.Rank.FillPattern: rank r's
// element i holds base(r) + i. Bases and counts used by the test and chaos
// suites keep every intermediate integer-valued and far below 2^53, so
// float64 reductions are exact regardless of combining order and the checks
// can use exact equality — any mismatch is a real defect or an injected
// fault, never rounding.

// ValidateChunkElems is the chunk granularity of divergence reports (4 KB
// of float64), matching the pipeline chunk scale the algorithms move data
// in, so a report localizes a fault to one copy/reduce step's worth of data.
const ValidateChunkElems = 512

// ValidationError pinpoints a diverging collective output.
type ValidationError struct {
	Op    string // which collective/algorithm was validated
	Rank  int    // whose output buffer diverged
	Chunk int    // index of the ValidateChunkElems-sized chunk
	Elem  int64  // absolute element index of the first divergence
	Got   float64
	Want  float64
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("coll: %s validation failed: rank%d chunk %d (elem %d): got %v, want %v",
		e.Op, e.Rank, e.Chunk, e.Elem, e.Got, e.Want)
}

// validateBuf checks data against ref element-wise, reporting the first
// divergence with chunk attribution.
func validateBuf(op string, rank int, data []float64, ref func(i int64) float64) error {
	for i := range data {
		if want := ref(int64(i)); data[i] != want {
			return &ValidationError{
				Op:    op,
				Rank:  rank,
				Chunk: i / ValidateChunkElems,
				Elem:  int64(i),
				Got:   data[i],
				Want:  want,
			}
		}
	}
	return nil
}

// SumBases returns the canonical FillPattern bases for a p-rank validated
// run: rank r's buffer is filled with base r*1000, keeping all sums exact
// in float64 for the message sizes the suites use.
func SumBases(p int) []float64 {
	bases := make([]float64, p)
	for i := range bases {
		bases[i] = float64(i * 1000)
	}
	return bases
}

// ValidateAllreduceSum checks an all-reduce(Sum) output: every rank's
// element i must equal sum_r(bases[r]) + p*i.
func ValidateAllreduceSum(op string, rank int, rb *memmodel.Buffer, n int64, bases []float64) error {
	if !rb.Real() {
		return nil
	}
	base := 0.0
	for _, b := range bases {
		base += b
	}
	p := float64(len(bases))
	return validateBuf(op, rank, rb.Slice(0, n), func(i int64) float64 {
		return base + p*float64(i)
	})
}

// ValidateReduceSum checks a rooted reduce(Sum): only the root's buffer
// holds the reduction; other ranks are skipped.
func ValidateReduceSum(op string, rank, root int, rb *memmodel.Buffer, n int64, bases []float64) error {
	if rank != root {
		return nil
	}
	return ValidateAllreduceSum(op, rank, rb, n, bases)
}

// ValidateReduceScatterSum checks a reduce-scatter(Sum) output: rank r's
// n-element block holds elements r*n..r*n+n-1 of the full reduction.
func ValidateReduceScatterSum(op string, rank int, rb *memmodel.Buffer, n int64, bases []float64) error {
	if !rb.Real() {
		return nil
	}
	base := 0.0
	for _, b := range bases {
		base += b
	}
	p := float64(len(bases))
	off := float64(int64(rank) * n)
	return validateBuf(op, rank, rb.Slice(0, n), func(i int64) float64 {
		return base + p*(off+float64(i))
	})
}

// ValidateBcast checks a broadcast output: every rank's element i must
// equal the root's fill base + i.
func ValidateBcast(op string, rank int, buf *memmodel.Buffer, n int64, rootBase float64) error {
	if !buf.Real() {
		return nil
	}
	return validateBuf(op, rank, buf.Slice(0, n), func(i int64) float64 {
		return rootBase + float64(i)
	})
}

// ValidateAllgather checks an all-gather output: block b of every rank's
// p*n-element buffer must hold rank b's n-element input, bases[b] + i.
func ValidateAllgather(op string, rank int, rb *memmodel.Buffer, n int64, bases []float64) error {
	if !rb.Real() {
		return nil
	}
	return validateBuf(op, rank, rb.Slice(0, int64(len(bases))*n), func(i int64) float64 {
		return bases[i/n] + float64(i%n)
	})
}

// Instrumented wrappers: tag the executing rank with the op name (for
// RunError diagnostics) before dispatching, so a hang or crash inside any
// registry algorithm is attributed to "collective/algorithm".

// InstrumentAR wraps an all-reduce with SetOp attribution.
func InstrumentAR(name string, f ARFunc) ARFunc {
	return func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
		r.SetOp("allreduce/" + name)
		f(r, c, sb, rb, n, op, o)
	}
}

// InstrumentRS wraps a reduce-scatter with SetOp attribution.
func InstrumentRS(name string, f RSFunc) RSFunc {
	return func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
		r.SetOp("reduce-scatter/" + name)
		f(r, c, sb, rb, n, op, o)
	}
}

// InstrumentReduce wraps a rooted reduce with SetOp attribution.
func InstrumentReduce(name string, f ReduceFunc) ReduceFunc {
	return func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, o Options) {
		r.SetOp("reduce/" + name)
		f(r, c, sb, rb, n, op, root, o)
	}
}

// InstrumentBcast wraps a broadcast with SetOp attribution.
func InstrumentBcast(name string, f BcastFunc) BcastFunc {
	return func(r *mpi.Rank, c *mpi.Comm, buf *memmodel.Buffer, n int64, root int, o Options) {
		r.SetOp("bcast/" + name)
		f(r, c, buf, n, root, o)
	}
}

// InstrumentAG wraps an all-gather with SetOp attribution.
func InstrumentAG(name string, f AGFunc) AGFunc {
	return func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o Options) {
		r.SetOp("allgather/" + name)
		f(r, c, sb, rb, n, o)
	}
}
