package coll

import (
	"math/rand"
	"testing"

	"yhccl/internal/memcopy"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// TestPropertyAllreduceArbitrarySizes fuzzes (algorithm, p, n) combinations:
// every registered all-reduce must produce exact results for any size,
// including primes, one, and sizes straddling slice and block boundaries.
func TestPropertyAllreduceArbitrarySizes(t *testing.T) {
	names := Names(AllreduceAlgos)
	rng := rand.New(rand.NewSource(42))
	sizes := []int64{1, 2, 7, 63, 64, 65, 1023, 4096, 10007}
	for trial := 0; trial < 24; trial++ {
		name := names[rng.Intn(len(names))]
		alg := AllreduceAlgos[name]
		p := 2 + rng.Intn(7)
		n := sizes[rng.Intn(len(sizes))]
		m := mpi.NewMachine(topo.NodeA(), p, true)
		m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, float64(r.ID()))
			alg(r, r.World(), sb, rb, n, mpi.Sum, Options{})
			for j := int64(0); j < n; j++ {
				if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
					t.Errorf("trial %d: %s p=%d n=%d rank %d rb[%d] = %v, want %v",
						trial, name, p, n, r.ID(), j, got, want)
					return
				}
			}
		})
		if t.Failed() {
			return
		}
	}
}

// TestPropertyReduceScatterArbitrarySizes does the same for reduce-scatter.
func TestPropertyReduceScatterArbitrarySizes(t *testing.T) {
	names := Names(ReduceScatterAlgos)
	rng := rand.New(rand.NewSource(43))
	sizes := []int64{1, 9, 64, 65, 511, 4096}
	for trial := 0; trial < 18; trial++ {
		name := names[rng.Intn(len(names))]
		alg := ReduceScatterAlgos[name]
		p := 2 + rng.Intn(7)
		n := sizes[rng.Intn(len(sizes))]
		m := mpi.NewMachine(topo.NodeA(), p, true)
		m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", int64(p)*n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, float64(r.ID()))
			alg(r, r.World(), sb, rb, n, mpi.Sum, Options{})
			for j := int64(0); j < n; j++ {
				want := expectSum(p, int64(r.ID())*n+j)
				if got := rb.Slice(j, 1)[0]; got != want {
					t.Errorf("trial %d: %s p=%d n=%d rank %d rb[%d] = %v, want %v",
						trial, name, p, n, r.ID(), j, got, want)
					return
				}
			}
		})
		if t.Failed() {
			return
		}
	}
}

// TestPropertyTimingMonotoneInSize asserts simulated time grows with
// message size for the YHCCL all-reduce (sanity of the cost model).
func TestPropertyTimingMonotoneInSize(t *testing.T) {
	prev := 0.0
	for _, n := range []int64{1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20} {
		m := mpi.NewMachine(topo.NodeB(), 16, false)
		elapsed := m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			AllreduceYHCCL(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		})
		if elapsed <= prev {
			t.Errorf("n=%d: time %.4g not greater than smaller size's %.4g", n, elapsed, prev)
		}
		prev = elapsed
	}
}

// TestPropertyDAVIndependentOfPolicy: copy-kind choices change timing and
// DRAM traffic but never the logical access volume.
func TestPropertyDAVIndependentOfPolicy(t *testing.T) {
	n := int64(1 << 16)
	p := 8
	var davs []int64
	for _, pol := range []memcopy.Policy{memcopy.Memmove, memcopy.TCopy, memcopy.NTCopy, memcopy.Adaptive} {
		m := mpi.NewMachine(topo.NodeA(), p, true)
		o := Options{}.WithPolicy(pol)
		m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			AllreduceSocketMA(r, r.World(), sb, rb, n, mpi.Sum, o)
		})
		davs = append(davs, m.Model.Counters().DAV())
	}
	for _, d := range davs[1:] {
		if d != davs[0] {
			t.Fatalf("DAV varies with copy policy: %v", davs)
		}
	}
}
