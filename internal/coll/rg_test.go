package coll

import (
	"testing"

	"yhccl/internal/dav"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

func TestRGChildrenShapes(t *testing.T) {
	// p=9, k=2: groups {0,1,2},{3,4,5},{6,7,8}; then {0,3,6}. Root 0
	// parents twice.
	kids, parent := rgChildren(9, 2, 0)
	if parent != -1 {
		t.Errorf("root parent = %d", parent)
	}
	if len(kids) != 2 || len(kids[0]) != 2 || kids[0][0] != 1 || kids[0][1] != 2 ||
		kids[1][0] != 3 || kids[1][1] != 6 {
		t.Errorf("root children = %v", kids)
	}
	kids, parent = rgChildren(9, 2, 3)
	if parent != 0 || len(kids) != 1 || kids[0][0] != 4 {
		t.Errorf("rank 3: kids=%v parent=%d", kids, parent)
	}
	kids, parent = rgChildren(9, 2, 5)
	if parent != 3 || len(kids) != 0 {
		t.Errorf("rank 5: kids=%v parent=%d", kids, parent)
	}
}

func TestRGChildrenCoverAllRanks(t *testing.T) {
	// Property: over all ranks, every non-root appears exactly once as a
	// child; the root never does.
	for _, p := range []int{2, 3, 5, 9, 16, 27, 64} {
		for _, k := range []int{1, 2, 3, 7} {
			seen := map[int]int{}
			for v := 0; v < p; v++ {
				kids, _ := rgChildren(p, k, v)
				for _, lvl := range kids {
					for _, kid := range lvl {
						seen[kid]++
					}
				}
			}
			if seen[0] != 0 {
				t.Errorf("p=%d k=%d: root appears as child", p, k)
			}
			for v := 1; v < p; v++ {
				if seen[v] != 1 {
					t.Errorf("p=%d k=%d: rank %d appears %d times as child", p, k, v, seen[v])
				}
			}
		}
	}
}

func TestReduceRGCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 5, 9} {
		for _, root := range []int{0, p - 1} {
			n := int64(1000)
			m := mpi.NewMachine(topo.NodeA(), p, true)
			m.MustRun(func(r *mpi.Rank) {
				sb := r.NewBuffer("sb", n)
				rb := r.NewBuffer("rb", n)
				r.FillPattern(sb, float64(r.ID()))
				ReduceRG(r, r.World(), sb, rb, n, mpi.Sum, root, Options{})
				if r.ID() == root {
					for j := int64(0); j < n; j += 19 {
						if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
							t.Errorf("p=%d root=%d rb[%d] = %v, want %v", p, root, j, got, want)
							return
						}
					}
				}
			})
		}
	}
}

func TestReduceRGMultiSlicePipelined(t *testing.T) {
	// Message far larger than the 128 KB slice: exercises double buffering.
	n := int64(100000) // ~6 slices of 16384 elems
	p := 9
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		ReduceRG(r, r.World(), sb, rb, n, mpi.Sum, 0, Options{})
		if r.ID() == 0 {
			for j := int64(0); j < n; j += 503 {
				if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
					t.Fatalf("rb[%d] = %v, want %v", j, got, want)
				}
			}
		}
	})
}

func TestReduceRGDAVMatchesTable3(t *testing.T) {
	// Exact for p a power of k+1: p=9, k=2.
	p, k := 9, 2
	n := int64(16384) // one slice exactly
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		ReduceRG(r, r.World(), sb, rb, n, mpi.Sum, 0, Options{RGDegree: k})
	})
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.RGReduce(s, p, k); got != want {
		t.Errorf("RG reduce DAV = %d, want %d", got, want)
	}
}

func TestAllreduceRGCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 5, 9} {
		n := int64(40000) // multiple slices
		m := mpi.NewMachine(topo.NodeA(), p, true)
		m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, float64(r.ID()))
			AllreduceRG(r, r.World(), sb, rb, n, mpi.Sum, Options{})
			for j := int64(0); j < n; j += 211 {
				if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
					t.Errorf("p=%d rank %d rb[%d] = %v, want %v", p, r.ID(), j, got, want)
					return
				}
			}
		})
	}
}

func TestAllreduceRGRepeated(t *testing.T) {
	p := 5
	n := int64(30000)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		for iter := 0; iter < 3; iter++ {
			r.FillPattern(sb, float64(r.ID()+iter))
			AllreduceRG(r, r.World(), sb, rb, n, mpi.Sum, Options{})
			want := expectSum(p, 777) + float64(p*iter)
			if got := rb.Slice(777, 1)[0]; got != want {
				t.Fatalf("iter %d rank %d: %v, want %v", iter, r.ID(), got, want)
			}
		}
	})
}

func TestAllreduceRGDAV(t *testing.T) {
	p, k := 9, 2
	n := int64(16384)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		AllreduceRG(r, r.World(), sb, rb, n, mpi.Sum, Options{RGDegree: k})
	})
	s := n * memmodel.ElemSize
	// Reduce part exactly Table 3's form; the copy-out adds 2sp.
	want := dav.RGReduce(s, p, k) + 2*s*int64(p)
	if got := m.Model.Counters().DAV(); got != want {
		t.Errorf("RG allreduce DAV = %d, want %d", got, want)
	}
}
