// Package coll implements the paper's contribution — the movement-avoiding
// (MA) reduction collectives and the adaptive non-temporal pipelined
// collectives of YHCCL — together with every baseline the evaluation
// compares against: DPML, the RG pipelined tree, ring and Rabenseifner
// send/recv algorithms, XPMEM-style direct-access collectives and CMA-style
// kernel-copy collectives.
//
// Every algorithm is a plain function over the internal/mpi runtime: the
// same code path performs the real element-wise work in Real machines and
// drives the memory cost model in model-only machines. Uniform conventions:
//
//   - payload element is float64; message sizes are given in elements;
//   - reduce-scatter: sb has p*n elements, every rank receives block
//     `rank` (n elements) in rb;
//   - all-reduce: sb and rb have n elements (n divisible appropriately is
//     not required; ragged tails are handled);
//   - reduce: root's rb receives the n-element reduction;
//   - bcast: root's data in buf is replicated to every rank's buf;
//   - all-gather: sb has n elements, rb has p*n.
package coll

import (
	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// Options tunes the YHCCL algorithms. The zero value selects the paper's
// defaults via withDefaults.
type Options struct {
	// Policy is the copy policy for copy-in/copy-out operations
	// (default Adaptive — the paper's contribution; set TCopy/NTCopy/
	// Memmove to reproduce the ablation curves of Figs. 12-14).
	Policy memcopy.Policy
	// PolicySet records whether Policy was set explicitly (needed because
	// Memmove is the zero value).
	PolicySet bool
	// SliceMaxBytes is Imax, the largest pipeline slice (default 256 KB,
	// the paper's NodeA setting; 128 KB on NodeB).
	SliceMaxBytes int64
	// RGDegree is the branching degree k of the RG tree (default 2).
	RGDegree int
	// SwitchSmallBytes is the message size at or below which the MA
	// algorithms switch to the two-level parallel reduction (default
	// 256 KB, paper §5.1). Zero keeps the default; negative disables the
	// switch.
	SwitchSmallBytes int64
	// FallbackDepth selects how far down the resilient fallback chain the
	// Resilient* dispatchers resolve: 0 runs the primary algorithm, k the
	// k-th fallback (clamped to the end of the chain). Normally set by the
	// recovery supervisor, not by hand.
	FallbackDepth int
}

// DefaultSliceMaxBytes is the paper's Imax on NodeA.
const DefaultSliceMaxBytes = 256 << 10

// DefaultSwitchSmallBytes is the algorithm-switch threshold (paper §5.1).
const DefaultSwitchSmallBytes = 256 << 10

// withDefaults fills in the paper's default parameters.
func (o Options) withDefaults() Options {
	if !o.PolicySet {
		o.Policy = memcopy.Adaptive
	}
	if o.SliceMaxBytes <= 0 {
		o.SliceMaxBytes = DefaultSliceMaxBytes
	}
	if o.RGDegree <= 0 {
		o.RGDegree = 2
	}
	if o.SwitchSmallBytes == 0 {
		o.SwitchSmallBytes = DefaultSwitchSmallBytes
	}
	return o
}

// WithPolicy returns o with the copy policy set explicitly.
func (o Options) WithPolicy(p memcopy.Policy) Options {
	o.Policy = p
	o.PolicySet = true
	return o
}

// sliceElems applies the paper's slice rule I = max(min(s/p, Imax), line)
// in elements: blockElems is s/p (the per-rank block), the floor is one
// cache line (to avoid false sharing, §5.1).
func sliceElems(blockElems int64, o Options) int64 {
	i := blockElems
	if max := o.SliceMaxBytes / memmodel.ElemSize; i > max {
		i = max
	}
	if line := int64(topo.CacheLine / memmodel.ElemSize); i < line {
		i = line
	}
	return i
}

// hints builds the adaptive-copy hints for a collective with working set
// wBytes on the given machine (C follows the node's inclusivity rule for
// the machine's rank count).
func hints(m *mpi.Machine, nonTemporal bool, wBytes int64) memcopy.Hints {
	return memcopy.Hints{
		NonTemporal:    nonTemporal,
		WorkSet:        wBytes,
		AvailableCache: m.Node.AvailableCache(m.Size()),
	}
}

// ceilDiv returns ceil(a/b).
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
