package coll

import (
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// This file models CMA (Cross Memory Attach, process_vm_readv) transfers —
// the kernel-assisted single-copy mechanism mainstream Open MPI / Intel
// MPI configurations use intra-node. Per the paper (§5.6, Table 5 and the
// Linux source it cites): the copy is performed page by page in kernel
// space, uses no non-temporal instructions, and suffers page-table lock
// contention when several processes attach the same source pages
// concurrently.

// cmaPageBytes is the kernel copy granularity.
const cmaPageBytes = 4096

// cmaPageOverhead is the per-page kernel bookkeeping cost (get_user_pages,
// iov iteration) in seconds, calibrated so a 32 MB one-to-one transfer
// lands in Table 5's regime.
const cmaPageOverhead = 120e-9

// cmaContention multiplies the per-page overhead per additional concurrent
// reader of the same source process's pages (lock contention, §5.6).
const cmaContention = 0.35

// CMACopy models one process_vm_readv of n elements from a peer's buffer:
// a single temporal copy plus per-page kernel overhead. readers is how
// many processes are attaching the same source pages in this phase (1 for
// ring patterns, p-1 for one-to-all).
func CMACopy(r *mpi.Rank, dst *memmodel.Buffer, dOff int64, src *memmodel.Buffer, sOff, n int64, readers int) {
	if n == 0 {
		return
	}
	pages := ceilDiv(n*memmodel.ElemSize, cmaPageBytes)
	over := cmaPageOverhead * (1 + cmaContention*float64(readers-1))
	r.Compute(float64(pages) * over)
	r.CopyElems(dst, dOff, src, sOff, n, memmodel.Temporal)
}

// BcastCMA is the one-to-all CMA broadcast used by CMA-configured MPIs:
// every non-root attaches the root's pages and copies directly — single
// copy, but full contention on the root's pages and no NT stores.
func BcastCMA(r *mpi.Rank, c *mpi.Comm, buf *memmodel.Buffer, n int64, root int, o Options) {
	if c.Size() == 1 {
		return
	}
	me := c.CommRank(r.ID())
	publishAndBarrier(r, c, "cma-bcast/buf", buf)
	if me != root {
		src := c.Peer("cma-bcast/buf", root)
		CMACopy(r, buf, 0, src, 0, n, c.Size()-1)
	}
	c.Barrier().Arrive(r.Proc())
}

// AllreduceCMA is the ring all-reduce over CMA transfers (the Open MPI
// tuned/CMA family): reduce-scatter with direct single-copy reads around
// the ring, then a ring all-gather of the reduced blocks.
func AllreduceCMA(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	bn := ceilDiv(n, p)
	// Double-buffered running partial: round k writes slot k%2 while the
	// successor reads slot (k-1)%2, so concurrent rounds never collide.
	scratch := r.PersistentBuffer("cma-ar/scratch", 2*bn)
	publishAndBarrier(r, c, "cma-ar/sb", sb)
	publishAndBarrier(r, c, "cma-ar/scratch", scratch)
	publishAndBarrier(r, c, "cma-ar/rb", rb)
	blockLen := func(b int64) int64 {
		lo := b * bn
		if lo >= n {
			return 0
		}
		return min64(bn, n-lo)
	}
	// Reduce-scatter: p-1 rounds; in round k rank me attaches the running
	// partial of block (me-k) held by its predecessor and folds it with its
	// own sb block; page attach overhead per round, barrier-separated
	// rounds (CMA implementations synchronize via the MPI progress engine;
	// a barrier models the round boundary).
	prev := int((me + p - 1) % p)
	for k := int64(1); k < p; k++ {
		recvB := (me + p - 1 - k) % p
		ln := blockLen(recvB)
		if ln > 0 {
			var src *memmodel.Buffer
			var sOff int64
			if k == 1 {
				src, sOff = c.Peer("cma-ar/sb", prev), recvB*bn
			} else {
				src, sOff = c.Peer("cma-ar/scratch", prev), ((k-1)%2)*bn
			}
			pages := ceilDiv(ln*memmodel.ElemSize, cmaPageBytes)
			r.Compute(float64(pages) * cmaPageOverhead)
			dst, dOff := scratch, (k%2)*bn
			if k == p-1 {
				dst, dOff = rb, recvB*bn
			}
			r.CombineElems(dst, dOff, sb, recvB*bn, src, sOff, ln, op, memmodel.Temporal)
		}
		c.Barrier().Arrive(r.Proc())
	}
	// All-gather: direct copy of every peer's final block.
	for j := int64(1); j < p; j++ {
		b := (me + j) % p
		ln := blockLen(b)
		if ln > 0 {
			peer := c.Peer("cma-ar/rb", int(b))
			CMACopy(r, rb, b*bn, peer, b*bn, ln, 1)
		}
	}
	c.Barrier().Arrive(r.Proc())
}
