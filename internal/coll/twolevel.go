package coll

import (
	"fmt"

	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// The two-level parallel reduction (§5.1): for messages too small to
// benefit from MA reduction (sync-bound regime, s <= 256 KB), YHCCL
// optimizes the DPML parallel reduction with the socket hierarchy — one
// copy-in, one intra-socket parallel reduce, one cross-socket combine —
// so the whole collective costs a constant number of barriers instead of
// the MA neighbour chain.

// AllreduceTwoLevel is the small-message all-reduce: copy-in to per-socket
// segments, intra-socket parallel block reduction, cross-socket combine
// into a node segment, copy-out.
func AllreduceTwoLevel(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	twoLevelReduce(r, c, sb, n, op, o, "2lvl-ar", func(res *memmodel.Buffer) {
		for off := int64(0); off < n; off += dpmlSliceElems {
			ln := min64(dpmlSliceElems, n-off)
			r.CopyElems(rb, off, res, off, ln, memmodel.Temporal)
		}
	})
}

// ReduceTwoLevel is the small-message rooted reduce.
func ReduceTwoLevel(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, o Options) {
	me := c.CommRank(r.ID())
	twoLevelReduce(r, c, sb, n, op, o, "2lvl-red", func(res *memmodel.Buffer) {
		if me != root {
			return
		}
		r.CopyElems(rb, 0, res, 0, n, memmodel.Temporal)
	})
}

// ReduceScatterTwoLevel is the small-message reduce-scatter: sb has p*n,
// rank b keeps block b.
func ReduceScatterTwoLevel(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	me := int64(c.CommRank(r.ID()))
	total := int64(c.Size()) * n
	twoLevelReduce(r, c, sb, total, op, o, "2lvl-rs", func(res *memmodel.Buffer) {
		r.CopyElems(rb, 0, res, me*n, n, memmodel.Temporal)
	})
}

// twoLevelReduce reduces the full n-element message into a node shared
// segment and hands it to finish after a barrier.
func twoLevelReduce(r *mpi.Rank, c *mpi.Comm, sb *memmodel.Buffer, n int64, op mpi.Op, o Options,
	label string, finish func(res *memmodel.Buffer)) {
	o = o.withDefaults()
	mach := c.Machine()
	p := c.Size()
	me := c.CommRank(r.ID())

	if !socketsBalanced(c) {
		// Single socket or irregular binding: plain DPML shape.
		segs, res := dpmlCopyIn(r, c, sb, n, label+"/flat")
		c.Barrier().Arrive(r.Proc())
		bn := ceilDiv(n, int64(p))
		lo := int64(me) * bn
		if lo < n {
			dpmlReduceBlock(r, segs, res, lo, min64(bn, n-lo), op)
		}
		c.Barrier().Arrive(r.Proc())
		finish(res)
		c.Barrier().Arrive(r.Proc())
		return
	}

	m := mach.Sockets()
	sc := r.SocketComm()
	q := sc.Size()
	u := sc.CommRank(r.ID())

	// Level 1: copy-in to the socket segment set, intra-socket parallel
	// reduction of per-rank sub-blocks into the socket partial.
	segs := make([]*memmodel.Buffer, q)
	for k := 0; k < q; k++ {
		segs[k] = sc.Shared(fmt.Sprintf("%s/seg%d/n=%d", label, k, n), r.Socket(), n)
	}
	partial := sc.Shared(fmt.Sprintf("%s/partial/n=%d", label, n), r.Socket(), n)
	r.CopyElems(segs[u], 0, sb, 0, n, memmodel.Temporal)
	sc.Barrier().Arrive(r.Proc())
	bq := ceilDiv(n, int64(q))
	lo := int64(u) * bq
	if lo < n {
		dpmlReduceBlock(r, segs, partial, lo, min64(bq, n-lo), op)
	}
	c.Barrier().Arrive(r.Proc())

	// Level 2: cross-socket combine into the node result. Rank i handles
	// sub-block i of p.
	res := c.Shared(fmt.Sprintf("%s/res/n=%d", label, n), 0, n)
	bp := ceilDiv(n, int64(p))
	lo = int64(me) * bp
	if lo < n {
		ln := min64(bp, n-lo)
		parts := make([]*memmodel.Buffer, m)
		for k := 0; k < m; k++ {
			parts[k] = mach.SocketComm(k).Shared(fmt.Sprintf("%s/partial/n=%d", label, n), k, n)
		}
		if m == 1 {
			r.CopyElems(res, lo, parts[0], lo, ln, memmodel.Temporal)
		} else {
			r.CombineElems(res, lo, parts[0], lo, parts[1], lo, ln, op, memmodel.Temporal)
			for k := 2; k < m; k++ {
				r.AccumulateElems(res, lo, parts[k], lo, ln, op, memmodel.Temporal)
			}
		}
	}
	c.Barrier().Arrive(r.Proc())
	finish(res)
	c.Barrier().Arrive(r.Proc())
}
