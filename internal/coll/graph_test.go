package coll

import (
	"math/rand"
	"testing"

	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/plan"
	"yhccl/internal/schedule"
	"yhccl/internal/topo"
)

// runRSGraph executes a reduce-scatter DAG on real data and verifies the
// results element-exactly against the send/recv reference semantics.
func runRSGraph(t *testing.T, p int, n int64, g *plan.Graph, o Options) *mpi.Machine {
	t.Helper()
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", int64(p)*n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		ReduceScatterGraph(r, r.World(), g, sb, rb, n, mpi.Sum, o)
		for j := int64(0); j < n; j += 7 {
			want := expectSum(p, int64(r.ID())*n+j)
			if got := rb.Slice(j, 1)[0]; got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
	return m
}

func TestGraphExecutorReduceScatter(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		for name, sched := range map[string]schedule.Schedule{
			"ma": schedule.MA(p), "dpml": schedule.DPML(p),
		} {
			g, err := plan.FromSchedule(sched)
			if err != nil {
				t.Fatalf("p=%d %s: %v", p, name, err)
			}
			runRSGraph(t, p, 600, g, Options{})
		}
	}
}

func TestGraphExecutorReduceScatterFanout(t *testing.T) {
	for _, pf := range [][2]int{{8, 2}, {8, 4}, {12, 3}, {9, 2}} {
		g, err := plan.FromSchedule(schedule.Fanout(pf[0], pf[1]))
		if err != nil {
			t.Fatalf("p=%d f=%d: %v", pf[0], pf[1], err)
		}
		runRSGraph(t, pf[0], 300, g, Options{})
	}
}

func TestGraphExecutorMultiChunk(t *testing.T) {
	g, err := plan.FromSchedule(schedule.MA(4))
	if err != nil {
		t.Fatal(err)
	}
	runRSGraph(t, 4, 2000, g, Options{SliceMaxBytes: 1024})
}

// The graph executor's measured copy volume and DAV must equal the graph's
// own closed-form prediction — the cross-check tying plan.Graph.DAVBytes to
// what actually runs.
func TestGraphExecutorDAVMatchesPrediction(t *testing.T) {
	p := 8
	n := int64(1024) // one chunk (8 KB block < default Imax)
	g, err := plan.FromSchedule(schedule.MA(p))
	if err != nil {
		t.Fatal(err)
	}
	m := runRSGraph(t, p, n, g, Options{})
	blockBytes := n * memmodel.ElemSize
	if got, want := m.Model.Counters().CopyVolume, g.CopyVolumeBytes(blockBytes); got != want {
		t.Errorf("measured copy volume %d, graph predicts %d", got, want)
	}
	if got, want := m.Model.Counters().DAV(), g.DAVBytes(blockBytes); got != want {
		t.Errorf("measured DAV %d, graph predicts %d", got, want)
	}
}

func TestGraphExecutorAllreduce(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		for _, n := range []int64{int64(p) * 100, int64(p)*100 + 37} { // even + ragged
			g, err := plan.AllreduceFromSchedule(schedule.MA(p))
			if err != nil {
				t.Fatal(err)
			}
			m := mpi.NewMachine(topo.NodeA(), p, true)
			m.MustRun(func(r *mpi.Rank) {
				sb := r.NewBuffer("sb", n)
				rb := r.NewBuffer("rb", n)
				r.FillPattern(sb, float64(r.ID()))
				AllreduceGraph(r, r.World(), g, sb, rb, n, mpi.Sum, Options{})
				for j := int64(0); j < n; j += 5 {
					want := expectSum(p, j)
					if got := rb.Slice(j, 1)[0]; got != want {
						t.Errorf("p=%d n=%d rank %d rb[%d] = %v, want %v", p, n, r.ID(), j, got, want)
						return
					}
				}
			})
		}
	}
}

func TestGraphExecutorAllreduceFanout(t *testing.T) {
	g, err := plan.AllreduceFromSchedule(schedule.Fanout(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	m := mpi.NewMachine(topo.NodeA(), 8, true)
	n := int64(777)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		AllreduceGraph(r, r.World(), g, sb, rb, n, mpi.Sum, Options{})
		for j := int64(0); j < n; j++ {
			if got, want := rb.Slice(j, 1)[0], expectSum(8, j); got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
}

func TestGraphExecutorBcastAllgather(t *testing.T) {
	p, n := 6, int64(500)
	bg := plan.BcastGraph(p, 2)
	ag := plan.AllgatherGraph(p)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		buf := r.NewBuffer("buf", n)
		if r.ID() == 2 {
			r.FillPattern(buf, 3.5)
		}
		BcastGraphExec(r, r.World(), bg, buf, n, Options{})
		for j := int64(0); j < n; j += 3 {
			if got, want := buf.Slice(j, 1)[0], 3.5+float64(j); got != want {
				t.Errorf("bcast rank %d buf[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", int64(p)*n)
		r.FillPattern(sb, float64(r.ID())*10)
		AllgatherGraphExec(r, r.World(), ag, sb, rb, n, Options{})
		for b := int64(0); b < int64(p); b++ {
			for j := int64(0); j < n; j += 17 {
				if got, want := rb.Slice(b*n+j, 1)[0], float64(b)*10+float64(j); got != want {
					t.Errorf("allgather rank %d rb[%d] = %v, want %v", r.ID(), b*n+j, got, want)
					return
				}
			}
		}
	})
}

// Property: any valid random schedule lowered through plan.FromSchedule
// still produces exact reduce-scatter results via the dataflow executor.
func TestGraphExecutorRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(5)
		sched := randomSchedule(rng, p)
		g, err := plan.FromSchedule(sched)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		runRSGraph(t, p, 300, g, Options{})
	}
}

// Tuned dispatch falls back to the hand-tuned switch when no planner or no
// matching plan exists, and honors plan parameters when one does.
func TestTunedDispatchFallback(t *testing.T) {
	p, n := 4, int64(512)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		TunedAllreduce(nil, r, r.World(), sb, rb, n, mpi.Sum, Options{})
		for j := int64(0); j < n; j += 3 {
			if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
}

func TestTunedDispatchUsesPlan(t *testing.T) {
	p, n := 4, int64(512)
	s := n * memmodel.ElemSize
	tab, err := plan.NewTable([]plan.Plan{
		{Collective: "allreduce", Bucket: plan.Bucket(s), SizeBytes: s,
			Params: plan.Params{Family: "fanout", Fanout: 2}, Source: "searched"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(tab)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.SetTuning(pl)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		TunedAllreduce(PlannerOf(m), r, r.World(), sb, rb, n, mpi.Sum, Options{})
		for j := int64(0); j < n; j += 3 {
			if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
}
