package coll

import (
	"testing"

	"yhccl/internal/dav"
	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// runBcast runs a broadcast algorithm with verification.
func runBcast(t *testing.T, p int, n int64, root int, o Options, alg BcastFunc) *mpi.Machine {
	t.Helper()
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		buf := r.NewBuffer("buf", n)
		if r.ID() == root {
			r.FillPattern(buf, 123456)
		}
		alg(r, r.World(), buf, n, root, o)
		for j := int64(0); j < n; j += 41 {
			if got, want := buf.Slice(j, 1)[0], 123456+float64(j); got != want {
				t.Errorf("rank %d buf[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
	return m
}

func TestBcastPipelinedCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 8} {
		for _, root := range []int{0, p - 1} {
			runBcast(t, p, 1000, root, Options{}, BcastPipelined)
		}
	}
	// Multi-slice pipelining (slice 1 MB = 131072 elems).
	runBcast(t, 4, 500000, 0, Options{}, BcastPipelined)
}

func TestBcastPipelinedDAV(t *testing.T) {
	p := 8
	n := int64(1 << 17) // exactly one 1 MB slice
	m := runBcast(t, p, n, 0, Options{}, BcastPipelined)
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.PipelinedBcast(s, p); got != want {
		t.Errorf("bcast DAV = %d, want %d (2s + 2s(p-1))", got, want)
	}
}

func TestBcastBinomialCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8, 16} {
		for _, root := range []int{0, p / 2} {
			runBcast(t, p, 700, root, Options{}, BcastBinomial)
		}
	}
}

func TestBcastXPMEMCorrect(t *testing.T) {
	runBcast(t, 8, 1000, 0, Options{}, BcastXPMEM)
	runBcast(t, 4, 1000, 2, Options{}, BcastXPMEM)
}

func TestBcastCMACorrect(t *testing.T) {
	runBcast(t, 8, 1000, 0, Options{}, BcastCMA)
}

// runAG runs an all-gather with verification.
func runAG(t *testing.T, p int, n int64, o Options, alg AGFunc) *mpi.Machine {
	t.Helper()
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", int64(p)*n)
		r.FillPattern(sb, float64(r.ID()*100000))
		alg(r, r.World(), sb, rb, n, o)
		for b := 0; b < p; b++ {
			for j := int64(0); j < n; j += 53 {
				want := float64(b*100000) + float64(j)
				if got := rb.Slice(int64(b)*n+j, 1)[0]; got != want {
					t.Errorf("rank %d rb[%d][%d] = %v, want %v", r.ID(), b, j, got, want)
					return
				}
			}
		}
	})
	return m
}

func TestAllgatherPipelinedCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 8} {
		runAG(t, p, 1000, Options{}, AllgatherPipelined)
	}
	runAG(t, 4, 300000, Options{}, AllgatherPipelined) // multi-slice
}

func TestAllgatherPipelinedDAV(t *testing.T) {
	p := 4
	n := int64(1 << 17)
	m := runAG(t, p, n, Options{}, AllgatherPipelined)
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.PipelinedAllgather(s, p); got != want {
		t.Errorf("allgather DAV = %d, want %d (2sp + 2sp^2)", got, want)
	}
}

func TestAllgatherXPMEMCorrect(t *testing.T) {
	runAG(t, 8, 1000, Options{}, AllgatherXPMEM)
}

func TestAllreduceXPMEMCorrectAndDAV(t *testing.T) {
	for _, p := range []int{2, 3, 8} {
		runAR(t, p, 1000, Options{}, AllreduceXPMEM)
	}
	p := 8
	n := int64(8192)
	m := runAR(t, p, n, Options{}, AllreduceXPMEM)
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.XPMEMAllreduce(s, p); got != want {
		t.Errorf("xpmem AR DAV = %d, want %d (5s(p-1))", got, want)
	}
}

func TestReduceScatterXPMEMCorrect(t *testing.T) {
	runRS(t, topo.NodeA(), 8, 1024, Options{}, ReduceScatterXPMEM)
}

func TestReduceXPMEMCorrect(t *testing.T) {
	p := 8
	n := int64(999)
	root := 5
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		ReduceXPMEM(r, r.World(), sb, rb, n, mpi.Sum, root, Options{})
		if r.ID() == root {
			for j := int64(0); j < n; j += 7 {
				if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
					t.Errorf("root rb[%d] = %v, want %v", j, got, want)
					return
				}
			}
		}
	})
}

func TestAllreduceCMACorrect(t *testing.T) {
	for _, p := range []int{2, 3, 8} {
		runAR(t, p, 1000, Options{}, AllreduceCMA)
	}
}

func TestAllreduceTwoLevelCorrect(t *testing.T) {
	// Both the balanced (explicit binding) and single-socket fallbacks.
	node := topo.NodeA()
	n := int64(2000)
	m := mpi.NewMachineWithBinding(node, []int{0, 1, 2, 32, 33, 34}, true)
	p := 6
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		AllreduceTwoLevel(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		for j := int64(0); j < n; j += 19 {
			if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
	runAR(t, 4, 500, Options{}, AllreduceTwoLevel) // single-socket fallback
}

func TestReduceScatterTwoLevelCorrect(t *testing.T) {
	runRS(t, topo.NodeA(), 8, 300, Options{}, ReduceScatterTwoLevel)
}

func TestReduceTwoLevelCorrect(t *testing.T) {
	p := 8
	n := int64(500)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		ReduceTwoLevel(r, r.World(), sb, rb, n, mpi.Sum, 1, Options{})
		if r.ID() == 1 {
			for j := int64(0); j < n; j++ {
				if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
					t.Fatalf("root rb[%d] = %v, want %v", j, got, want)
				}
			}
		}
	})
}

func TestYHCCLDispatchSwitchesAlgorithms(t *testing.T) {
	// Below the 256 KB switch the two-level path runs (no MA flags get
	// created); above it the socket-MA path runs. Probe via correctness at
	// both sizes and the sync counts differing in character.
	for _, n := range []int64{1 << 10, 1 << 18} { // 8 KB and 2 MB
		runAR(t, 8, n, Options{}, AllreduceYHCCL)
	}
}

func TestYHCCLSmallMessageBeatsMA(t *testing.T) {
	// The rationale for the switch (§5.1): at 16 KB the two-level
	// reduction must beat the neighbour-chained MA reduction.
	n := int64(16 << 10 / memmodel.ElemSize)
	p := 48
	tMA := mpi.NewMachine(topo.NodeB(), p, false).MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		AllreduceSocketMA(r, r.World(), sb, rb, n, mpi.Sum, Options{})
	})
	t2 := mpi.NewMachine(topo.NodeB(), p, false).MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		AllreduceTwoLevel(r, r.World(), sb, rb, n, mpi.Sum, Options{})
	})
	if t2 >= tMA {
		t.Errorf("two-level (%.4g) should beat socket-MA (%.4g) at 16 KB", t2, tMA)
	}
}

func TestRegistriesResolve(t *testing.T) {
	if _, err := Lookup(AllreduceAlgos, "yhccl"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup(AllreduceAlgos, "nope"); err == nil {
		t.Error("lookup of unknown algorithm should fail")
	}
	if got := Names(BcastAlgos); len(got) != len(BcastAlgos) {
		t.Error("Names incomplete")
	}
	// Every registered algorithm must at least run correctly at one size.
	for name, alg := range AllreduceAlgos {
		alg := alg
		t.Run("allreduce/"+name, func(t *testing.T) {
			runAR(t, 4, 777, Options{}, ARFunc(alg))
		})
	}
	for name, alg := range ReduceScatterAlgos {
		alg := alg
		t.Run("reducescatter/"+name, func(t *testing.T) {
			runRS(t, topo.NodeA(), 4, 256, Options{}, alg)
		})
	}
	for name, alg := range BcastAlgos {
		alg := alg
		t.Run("bcast/"+name, func(t *testing.T) {
			runBcast(t, 4, 512, 0, Options{}, alg)
		})
	}
	for name, alg := range AllgatherAlgos {
		alg := alg
		t.Run("allgather/"+name, func(t *testing.T) {
			runAG(t, 4, 512, Options{}, alg)
		})
	}
	for name, alg := range ReduceAlgos {
		alg := alg
		t.Run("reduce/"+name, func(t *testing.T) {
			p := 4
			n := int64(512)
			m := mpi.NewMachine(topo.NodeA(), p, true)
			m.MustRun(func(r *mpi.Rank) {
				sb := r.NewBuffer("sb", n)
				rb := r.NewBuffer("rb", n)
				r.FillPattern(sb, float64(r.ID()))
				alg(r, r.World(), sb, rb, n, mpi.Sum, 0, Options{})
				if r.ID() == 0 {
					for j := int64(0); j < n; j += 3 {
						if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
							t.Errorf("%s: rb[%d] = %v, want %v", name, j, got, want)
							return
						}
					}
				}
			})
		})
	}
}

func TestAdaptivePolicyBeatsFixedOnLargeAllreduce(t *testing.T) {
	// Fig. 12's headline: at large sizes, YHCCL (adaptive) beats t-copy
	// (RFO-bound copy-out) and memmove, and matches/beats nt-copy.
	n := int64(16 << 20 / memmodel.ElemSize) // 16 MB message
	p := 48
	time := func(pol memcopy.Policy) float64 {
		m := mpi.NewMachine(topo.NodeB(), p, false)
		o := Options{}.WithPolicy(pol)
		return m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			// Model the application updating buffers between iterations.
			r.Warm(sb, 0, n)
			AllreduceSocketMA(r, r.World(), sb, rb, n, mpi.Sum, o)
		})
	}
	tAdaptive := time(memcopy.Adaptive)
	tT := time(memcopy.TCopy)
	tMM := time(memcopy.Memmove)
	if tAdaptive >= tT {
		t.Errorf("adaptive (%.4g) should beat t-copy (%.4g) on 16 MB", tAdaptive, tT)
	}
	if tAdaptive >= tMM {
		t.Errorf("adaptive (%.4g) should beat memmove (%.4g) on 16 MB", tAdaptive, tMM)
	}
}

func TestAdaptivePolicyMatchesTCopyOnSmall(t *testing.T) {
	// Fig. 12: on small messages adaptive == t-copy (no NT stores fired).
	n := int64(64 << 10 / memmodel.ElemSize)
	p := 48
	time := func(pol memcopy.Policy) float64 {
		m := mpi.NewMachine(topo.NodeB(), p, false)
		o := Options{}.WithPolicy(pol)
		return m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			// As in the paper's harness, the application updates sb and rb
			// between iterations, so both are cache-resident.
			r.Warm(sb, 0, n)
			r.Warm(rb, 0, n)
			AllreduceSocketMA(r, r.World(), sb, rb, n, mpi.Sum, o)
		})
	}
	tA, tT, tNT := time(memcopy.Adaptive), time(memcopy.TCopy), time(memcopy.NTCopy)
	if tA != tT {
		t.Errorf("adaptive (%.6g) should equal t-copy (%.6g) on 64 KB", tA, tT)
	}
	if tA >= tNT {
		t.Errorf("adaptive (%.6g) should beat nt-copy (%.6g) on 64 KB", tA, tNT)
	}
}
