package coll

import (
	"testing"

	"yhccl/internal/dav"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

func TestReduceScatterSocketMACorrect(t *testing.T) {
	// NodeA with p=8 spans both sockets only with an explicit binding;
	// block binding puts 8 ranks on socket 0, so use 64 to exercise the
	// two-level path and also a scatter binding at small p.
	runRS(t, topo.NodeA(), 64, 96, Options{}, ReduceScatterSocketMA)
}

func TestReduceScatterSocketMAScatterBinding(t *testing.T) {
	// 4 ranks, 2 per socket via explicit binding (block: 0,1 -> s0; 32,33 -> s1).
	node := topo.NodeA()
	m := mpi.NewMachineWithBinding(node, []int{0, 1, 32, 33}, true)
	p := 4
	n := int64(500)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", int64(p)*n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		ReduceScatterSocketMA(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		for j := int64(0); j < n; j += 7 {
			want := expectSum(p, int64(r.ID())*n+j)
			if got := rb.Slice(j, 1)[0]; got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
}

func TestReduceScatterSocketMADAV(t *testing.T) {
	// DAV = s*(3p+2m-3) for block-even sizes.
	node := topo.NodeA()
	m := mpi.NewMachineWithBinding(node, []int{0, 1, 2, 3, 32, 33, 34, 35}, true)
	p := 8
	n := int64(1024)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", int64(p)*n)
		rb := r.NewBuffer("rb", n)
		ReduceScatterSocketMA(r, r.World(), sb, rb, n, mpi.Sum, Options{})
	})
	s := int64(p) * n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.SocketMAReduceScatter(s, p, 2); got != want {
		t.Errorf("DAV = %d, want %d (s*(3p+2m-3))", got, want)
	}
}

func TestAllreduceSocketMACorrectAndDAV(t *testing.T) {
	node := topo.NodeA()
	m := mpi.NewMachineWithBinding(node, []int{0, 1, 2, 3, 32, 33, 34, 35}, true)
	p := 8
	n := int64(8192)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		AllreduceSocketMA(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		for j := int64(0); j < n; j += 101 {
			if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.SocketMAAllreduce(s, p, 2); got != want {
		t.Errorf("DAV = %d, want %d (s*(5p+2m-3))", got, want)
	}
}

func TestAllreduceSocketMARaggedSizes(t *testing.T) {
	node := topo.NodeA()
	for _, n := range []int64{1, 13, 999, 4097} {
		m := mpi.NewMachineWithBinding(node, []int{0, 1, 32, 33}, true)
		m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, float64(r.ID()))
			AllreduceSocketMA(r, r.World(), sb, rb, n, mpi.Sum, Options{})
			for j := int64(0); j < n; j++ {
				if got, want := rb.Slice(j, 1)[0], expectSum(4, j); got != want {
					t.Errorf("n=%d rank %d rb[%d] = %v, want %v", n, r.ID(), j, got, want)
					return
				}
			}
		})
	}
}

func TestReduceSocketMACorrectAndDAV(t *testing.T) {
	node := topo.NodeA()
	m := mpi.NewMachineWithBinding(node, []int{0, 1, 2, 3, 32, 33, 34, 35}, true)
	p := 8
	n := int64(8192)
	root := 3
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		ReduceSocketMA(r, r.World(), sb, rb, n, mpi.Sum, root, Options{})
		if r.ID() == root {
			for j := int64(0); j < n; j += 31 {
				if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
					t.Errorf("root rb[%d] = %v, want %v", j, got, want)
					return
				}
			}
		}
	})
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.SocketMAReduce(s, p, 2); got != want {
		t.Errorf("DAV = %d, want %d (s*(3p+2m-1))", got, want)
	}
}

func TestSocketMAFallsBackOnSingleSocket(t *testing.T) {
	// 4 ranks all on socket 0: must fall back to flat MA and still be right.
	m := mpi.NewMachine(topo.NodeA(), 4, true)
	n := int64(256)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		AllreduceSocketMA(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		for j := int64(0); j < n; j += 3 {
			if got, want := rb.Slice(j, 1)[0], expectSum(4, j); got != want {
				t.Fatalf("rb[%d] = %v, want %v", j, got, want)
			}
		}
	})
}

func TestSocketMAFewerSyncsThanFlatMA(t *testing.T) {
	// The whole point of the socket-aware design: fewer serialized
	// synchronizations. Compare simulated time on a two-socket 48-rank
	// NodeB at a mid-size message.
	n := int64(1 << 15) // 256 KB
	flat := mpi.NewMachine(topo.NodeB(), 48, false)
	tFlat := flat.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		AllreduceMA(r, r.World(), sb, rb, n, mpi.Sum, Options{})
	})
	sock := mpi.NewMachine(topo.NodeB(), 48, false)
	tSock := sock.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		AllreduceSocketMA(r, r.World(), sb, rb, n, mpi.Sum, Options{})
	})
	if tSock >= tFlat {
		t.Errorf("socket-aware (%.3g) should beat flat MA (%.3g) at 256 KB on 48 ranks", tSock, tFlat)
	}
}
