package coll

import (
	"testing"

	"yhccl/internal/dav"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

func TestReduceScatterDPMLCorrectAndDAV(t *testing.T) {
	p := 8
	n := int64(4096)
	m := runRS(t, topo.NodeA(), p, n, Options{}, ReduceScatterDPML)
	s := int64(p) * n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.DPMLReduceScatter(s, p); got != want {
		t.Errorf("DPML RS DAV = %d, want %d (s*(5p-1))", got, want)
	}
}

func TestReduceScatterRingCorrectAndDAV(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		runRS(t, topo.NodeA(), p, 1024, Options{}, ReduceScatterRing)
	}
	p := 8
	n := int64(4096)
	m := runRS(t, topo.NodeA(), p, n, Options{}, ReduceScatterRing)
	s := int64(p) * n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.RingReduceScatter(s, p); got != want {
		t.Errorf("ring RS DAV = %d, want %d (5s(p-1))", got, want)
	}
}

func TestReduceScatterRabenseifnerCorrectAndDAV(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16} {
		runRS(t, topo.NodeA(), p, 512, Options{}, ReduceScatterRabenseifner)
	}
	// Non-power-of-two falls back to ring and must stay correct.
	runRS(t, topo.NodeA(), 6, 512, Options{}, ReduceScatterRabenseifner)

	p := 8
	n := int64(4096)
	m := runRS(t, topo.NodeA(), p, n, Options{}, ReduceScatterRabenseifner)
	s := int64(p) * n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.RabenseifnerReduceScatter(s, p); got != want {
		t.Errorf("rabenseifner RS DAV = %d, want %d", got, want)
	}
}

// runAR runs an all-reduce algorithm with verification.
func runAR(t *testing.T, p int, n int64, o Options,
	alg func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options)) *mpi.Machine {
	t.Helper()
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		alg(r, r.World(), sb, rb, n, mpi.Sum, o)
		for j := int64(0); j < n; j += 37 {
			if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
				t.Errorf("p=%d n=%d rank %d rb[%d] = %v, want %v", p, n, r.ID(), j, got, want)
				return
			}
		}
	})
	return m
}

func TestAllreduceDPMLCorrectAndDAV(t *testing.T) {
	runAR(t, 3, 1000, Options{}, AllreduceDPML)
	p := 8
	n := int64(8192)
	m := runAR(t, p, n, Options{}, AllreduceDPML)
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.DPMLAllreduceImpl(s, p); got != want {
		t.Errorf("DPML AR DAV = %d, want %d (s*(7p-3))", got, want)
	}
}

func TestAllreduceRingCorrectAndDAV(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		runAR(t, p, 1000, Options{}, AllreduceRing)
	}
	runAR(t, 8, 5, Options{}, AllreduceRing) // empty tail blocks
	p := 8
	n := int64(8192)
	m := runAR(t, p, n, Options{}, AllreduceRing)
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.RingAllreduceImpl(s, p); got != want {
		t.Errorf("ring AR DAV = %d, want %d (7s(p-1)+2s)", got, want)
	}
}

func TestAllreduceRabenseifnerCorrectAndDAV(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16} {
		runAR(t, p, 1000, Options{}, AllreduceRabenseifner)
	}
	runAR(t, 6, 1000, Options{}, AllreduceRabenseifner) // fallback
	p := 8
	n := int64(8192)
	m := runAR(t, p, n, Options{}, AllreduceRabenseifner)
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.RabenseifnerAllreduceImpl(s, p); got != want {
		t.Errorf("rab AR DAV = %d, want %d", got, want)
	}
}

func TestReduceDPMLCorrect(t *testing.T) {
	p := 4
	n := int64(777)
	root := 2
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		ReduceDPML(r, r.World(), sb, rb, n, mpi.Sum, root, Options{})
		if r.ID() == root {
			for j := int64(0); j < n; j += 5 {
				if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
					t.Errorf("root rb[%d] = %v, want %v", j, got, want)
					return
				}
			}
		}
	})
}

func TestAllgatherRingCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 8} {
		n := int64(600)
		m := mpi.NewMachine(topo.NodeA(), p, true)
		m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", int64(p)*n)
			r.FillPattern(sb, float64(r.ID()*100000))
			AllgatherRing(r, r.World(), sb, rb, n, Options{})
			for b := 0; b < p; b++ {
				for j := int64(0); j < n; j += 97 {
					want := float64(b*100000) + float64(j)
					if got := rb.Slice(int64(b)*n+j, 1)[0]; got != want {
						t.Errorf("p=%d rank %d rb[%d][%d] = %v, want %v", p, r.ID(), b, j, got, want)
						return
					}
				}
			}
		})
	}
}

func TestMABeatsBaselinesOnLargeMessages(t *testing.T) {
	// The headline claim (Fig. 9): socket-aware MA reduce-scatter clearly
	// outperforms DPML / Ring / Rabenseifner on large messages. 4 MB
	// message, NodeB p=48.
	n := int64(4 << 20 / memmodel.ElemSize) // per-rank block so total message = p*n... keep blocks modest
	n = 8192                                // block 64 KB -> message 3 MB on p=48
	p := 48
	time := func(alg func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options)) float64 {
		m := mpi.NewMachine(topo.NodeB(), p, false)
		return m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", int64(p)*n)
			rb := r.NewBuffer("rb", n)
			alg(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		})
	}
	tMA := time(ReduceScatterSocketMA)
	tDPML := time(ReduceScatterDPML)
	tRing := time(ReduceScatterRing)
	tRab := time(ReduceScatterRabenseifner)
	if tMA >= tDPML || tMA >= tRing || tMA >= tRab {
		t.Errorf("socket-MA %.4g should beat DPML %.4g, ring %.4g, rab %.4g",
			tMA, tDPML, tRing, tRab)
	}
}
