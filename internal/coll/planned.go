package coll

import (
	"fmt"
	"sync"

	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/plan"
	"yhccl/internal/schedule"
)

// Planner is a machine's tuned-plan dispatch state: the loaded plan table
// plus lazily compiled graphs for the searched "fanout" family. One Planner
// is built per machine (facade: yhccl.AttachPlans) and attached via
// mpi.Machine.SetTuning — the per-call cost is a single table lookup.
type Planner struct {
	table *plan.Table

	// graphs caches compiled fanout DAGs keyed by (collective, p, fanout).
	// Guarded: ranks are concurrent goroutines inside a simulation run.
	mu     sync.Mutex
	graphs map[graphKey]*plan.Graph
}

type graphKey struct {
	coll plan.Coll
	p    int
	f    int
}

// NewPlanner wraps a loaded plan table for dispatch.
func NewPlanner(t *plan.Table) *Planner {
	return &Planner{table: t, graphs: make(map[graphKey]*plan.Graph)}
}

// Table exposes the underlying plan table (examples, diagnostics).
func (pl *Planner) Table() *plan.Table { return pl.table }

// PlannerOf returns the machine's attached Planner, or nil when it runs on
// hand-tuned dispatch.
func PlannerOf(m *mpi.Machine) *Planner {
	pl, _ := m.Tuning().(*Planner)
	return pl
}

// fanoutGraph returns the compiled DAG for the fanout family, building and
// validating it on first use.
func (pl *Planner) fanoutGraph(c plan.Coll, p, f int) *plan.Graph {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	k := graphKey{c, p, f}
	if g, ok := pl.graphs[k]; ok {
		return g
	}
	var g *plan.Graph
	var err error
	switch c {
	case plan.Allreduce:
		g, err = plan.AllreduceFromSchedule(schedule.Fanout(p, f))
	case plan.ReduceScatter:
		g, err = plan.FromSchedule(schedule.Fanout(p, f))
	default:
		err = fmt.Errorf("coll: fanout family has no %s lowering", c)
	}
	if err != nil {
		panic(err) // searched plans are validated at synthesis time
	}
	pl.graphs[k] = g
	return g
}

// ApplyParams overlays a plan's searched parameters onto base options:
// pipeline slice bound, copy policy, RG degree. Unset params keep the
// caller's values, so node-specific defaults still apply.
func ApplyParams(o Options, pr plan.Params) Options {
	if pr.SliceKB > 0 {
		o.SliceMaxBytes = pr.SliceKB << 10
	}
	if pr.Policy != "" {
		pol, err := memcopy.ParsePolicy(pr.Policy)
		if err != nil {
			panic(err) // validated at synthesis time
		}
		o = o.WithPolicy(pol)
	}
	if pr.RGDegree > 0 {
		o.RGDegree = pr.RGDegree
	}
	return o
}

// The Tuned* dispatchers: one table lookup selects the synthesized plan for
// the message size; a missing planner or an untuned collective falls back
// to the hand-tuned YHCCL switch. These are what the facade's collective
// entry points call on a tuned machine.

// TunedAllreduce dispatches an all-reduce through the plan table.
func TunedAllreduce(pl *Planner, r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	if pl == nil {
		AllreduceYHCCL(r, c, sb, rb, n, op, o)
		return
	}
	entry := pl.table.Lookup(plan.Allreduce, n*memmodel.ElemSize)
	if entry == nil {
		AllreduceYHCCL(r, c, sb, rb, n, op, o)
		return
	}
	o = ApplyParams(o, entry.Params)
	if entry.Params.Family == "fanout" {
		g := pl.fanoutGraph(plan.Allreduce, c.Size(), entry.Params.Fanout)
		AllreduceGraph(r, c, g, sb, rb, n, op, o)
		return
	}
	f, err := Lookup(AllreduceAlgos, entry.Params.Family)
	if err != nil {
		panic(err)
	}
	f(r, c, sb, rb, n, op, o)
}

// TunedReduceScatter dispatches a reduce-scatter (sb p*n elems, rb n) by
// total message size, matching the figure convention.
func TunedReduceScatter(pl *Planner, r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	if pl == nil {
		ReduceScatterYHCCL(r, c, sb, rb, n, op, o)
		return
	}
	total := int64(c.Size()) * n * memmodel.ElemSize
	entry := pl.table.Lookup(plan.ReduceScatter, total)
	if entry == nil {
		ReduceScatterYHCCL(r, c, sb, rb, n, op, o)
		return
	}
	o = ApplyParams(o, entry.Params)
	if entry.Params.Family == "fanout" {
		g := pl.fanoutGraph(plan.ReduceScatter, c.Size(), entry.Params.Fanout)
		ReduceScatterGraph(r, c, g, sb, rb, n, op, o)
		return
	}
	f, err := Lookup(ReduceScatterAlgos, entry.Params.Family)
	if err != nil {
		panic(err)
	}
	f(r, c, sb, rb, n, op, o)
}

// TunedReduce dispatches a rooted reduce through the plan table.
func TunedReduce(pl *Planner, r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, o Options) {
	var entry *plan.Plan
	if pl != nil {
		entry = pl.table.Lookup(plan.Reduce, n*memmodel.ElemSize)
	}
	if entry == nil {
		ReduceYHCCL(r, c, sb, rb, n, op, root, o)
		return
	}
	f, err := Lookup(ReduceAlgos, entry.Params.Family)
	if err != nil {
		panic(err)
	}
	f(r, c, sb, rb, n, op, root, ApplyParams(o, entry.Params))
}

// TunedBcast dispatches a broadcast through the plan table.
func TunedBcast(pl *Planner, r *mpi.Rank, c *mpi.Comm, buf *memmodel.Buffer, n int64, root int, o Options) {
	var entry *plan.Plan
	if pl != nil {
		entry = pl.table.Lookup(plan.Bcast, n*memmodel.ElemSize)
	}
	if entry == nil {
		BcastPipelined(r, c, buf, n, root, o)
		return
	}
	f, err := Lookup(BcastAlgos, entry.Params.Family)
	if err != nil {
		panic(err)
	}
	f(r, c, buf, n, root, ApplyParams(o, entry.Params))
}

// TunedAllgather dispatches an all-gather (sb n elems, rb p*n) keyed by the
// per-rank contribution size.
func TunedAllgather(pl *Planner, r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o Options) {
	var entry *plan.Plan
	if pl != nil {
		entry = pl.table.Lookup(plan.Allgather, n*memmodel.ElemSize)
	}
	if entry == nil {
		AllgatherPipelined(r, c, sb, rb, n, o)
		return
	}
	f, err := Lookup(AllgatherAlgos, entry.Params.Family)
	if err != nil {
		panic(err)
	}
	f(r, c, sb, rb, n, ApplyParams(o, entry.Params))
}
