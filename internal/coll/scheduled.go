package coll

import (
	"fmt"

	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/schedule"
	"yhccl/internal/shm"
)

// ReduceScatterScheduled executes an arbitrary valid sliced-reduction
// schedule (internal/schedule, the paper's §3.1 formalism) on the machine:
// tree i produces block i (n elements) into rank i's rb, from send buffers
// of p*n elements. The MA and DPML schedules are special cases; custom
// schedules can be evaluated for both correctness and modelled cost.
//
// Execution is phased by node index j: each rank first performs the
// copy-ins feeding phase-j nodes, then its phase-j reductions, waiting on
// per-copy and per-node flags. Any schedule satisfying the §3.1
// constraints executes deadlock-free; chunks are separated by a barrier.
func ReduceScatterScheduled(r *mpi.Rank, c *mpi.Comm, sched schedule.Schedule,
	sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) error {
	o = o.withDefaults()
	p := c.Size()
	if err := sched.Validate(p); err != nil {
		return err
	}
	me := c.CommRank(r.ID())
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return nil
	}
	I := sliceElems(n, o)

	// Shared state: per tree, one result slot per node and one copy slot
	// per process slice; flag arrays per tree for results and copies.
	resSlots := c.Shared(fmt.Sprintf("sched/res/I=%d", I), 0, int64(p)*int64(p-1)*I)
	cpSlots := c.Shared(fmt.Sprintf("sched/cp/I=%d", I), 0, int64(p)*int64(p)*I)
	resOff := func(i, j int) int64 { return (int64(i)*int64(p-1) + int64(j)) * I }
	cpOff := func(i, x int) int64 { return (int64(i)*int64(p) + int64(x)) * I }
	resFlags := make([][]*shm.Flag, p)
	cpFlags := make([][]*shm.Flag, p)
	for i := 0; i < p; i++ {
		resFlags[i] = c.Flags(fmt.Sprintf("sched/resf/%d", i))
		cpFlags[i] = c.Flags(fmt.Sprintf("sched/cpf/%d", i))
	}
	base := *c.Counter(r, "sched/base")
	w := (int64(p)*int64(p)*n + int64(p)*n + int64(p)*int64(2*p)*I) * memmodel.ElemSize
	hIn := hints(c.Machine(), false, w)

	// operand resolves to (buffer, offset), waiting on the producer.
	operand := func(i int, opnd schedule.Operand, start int64, epoch uint64) (*memmodel.Buffer, int64) {
		if opnd.IsSlice {
			if opnd.X == me {
				return sb, int64(i)*n + start
			}
			cpFlags[i][opnd.X].Wait(r.Proc(), r.Core(), epoch)
			return cpSlots, cpOff(i, opnd.X)
		}
		resFlags[i][opnd.Ref].Wait(r.Proc(), r.Core(), epoch)
		return resSlots, resOff(i, opnd.Ref)
	}

	numChunks := ceilDiv(n, I)
	for chunk := int64(0); chunk < numChunks; chunk++ {
		start := chunk * I
		ln := min64(I, n-start)
		epoch := uint64(base + chunk + 1)
		for j := 0; j < p-1; j++ {
			// Phase j copy-ins: my slices feeding other ranks' nodes.
			for i := 0; i < p; i++ {
				node := sched[i][j]
				for _, opnd := range []schedule.Operand{node.A, node.B} {
					if opnd.IsSlice && opnd.X == me && node.R != me {
						memcopy.Copy(r, o.Policy, cpSlots, cpOff(i, me), sb, int64(i)*n+start, ln, hIn)
						cpFlags[i][me].Set(r.Proc(), epoch)
					}
				}
			}
			// Phase j reductions assigned to me.
			for i := 0; i < p; i++ {
				node := sched[i][j]
				if node.R != me {
					continue
				}
				aBuf, aOff := operand(i, node.A, start, epoch)
				bBuf, bOff := operand(i, node.B, start, epoch)
				dst, dOff := resSlots, resOff(i, j)
				if j == p-2 && i == me {
					dst, dOff = rb, start
				}
				r.CombineElems(dst, dOff, aBuf, aOff, bBuf, bOff, ln, op, memmodel.Temporal)
				resFlags[i][j].Set(r.Proc(), epoch)
			}
		}
		// If my block's final node ran on another rank, copy it out.
		if final := sched[me][p-2]; final.R != me {
			resFlags[me][p-2].Wait(r.Proc(), r.Core(), epoch)
			r.CopyElems(rb, start, resSlots, resOff(me, p-2), ln, memmodel.Temporal)
		}
		// Slot-reuse protection between chunks.
		c.Barrier().Arrive(r.Proc())
	}
	*c.Counter(r, "sched/base") = base + numChunks
	return nil
}
