package coll

import (
	"testing"

	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// TestMixedAlgorithmsShareMachine interleaves every registered all-reduce
// algorithm repeatedly on ONE machine/communicator: per-algorithm flag
// epochs, shared segments and p2p channels must not interfere.
func TestMixedAlgorithmsShareMachine(t *testing.T) {
	const p = 8
	const n = 2048
	m := mpi.NewMachine(topo.NodeA(), p, true)
	names := Names(AllreduceAlgos)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		for round := 0; round < 2; round++ {
			for _, name := range names {
				alg := AllreduceAlgos[name]
				base := float64(r.ID() + round*31)
				r.FillPattern(sb, base)
				alg(r, r.World(), sb, rb, n, mpi.Sum, Options{})
				for j := int64(0); j < n; j += 97 {
					want := expectSum(p, j) + float64(p*round*31)
					if got := rb.Slice(j, 1)[0]; got != want {
						t.Errorf("round %d alg %s rank %d rb[%d] = %v, want %v",
							round, name, r.ID(), j, got, want)
						return
					}
				}
			}
		}
	})
}

// TestMixedCollectivesShareMachine runs different collective types
// back-to-back on one machine.
func TestMixedCollectivesShareMachine(t *testing.T) {
	const p = 8
	const n = 1024
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", int64(p)*n)
		small := r.NewBuffer("small", n)
		rb := r.NewBuffer("rb", n)
		big := r.NewBuffer("big", int64(p)*n)

		r.FillPattern(sb, float64(r.ID()))
		ReduceScatterYHCCL(r, r.World(), sb, rb, n, mpi.Sum, Options{})

		r.FillPattern(small, float64(r.ID()))
		AllreduceYHCCL(r, r.World(), small, rb, n, mpi.Sum, Options{})
		if got := rb.Slice(3, 1)[0]; got != expectSum(p, 3) {
			t.Errorf("allreduce after reduce-scatter: %v", got)
		}

		if r.ID() == 0 {
			r.FillPattern(small, 42)
		}
		BcastPipelined(r, r.World(), small, n, 0, Options{})
		if got := small.Slice(9, 1)[0]; got != 51 {
			t.Errorf("bcast after allreduce: %v", got)
		}

		AllgatherPipelined(r, r.World(), small, big, n, Options{})
		if got := big.Slice(int64(p-1)*n, 1)[0]; got != 42 {
			t.Errorf("allgather after bcast: %v", got)
		}

		ReduceYHCCL(r, r.World(), small, rb, n, mpi.Sum, 2, Options{})
		if r.ID() == 2 {
			if got := rb.Slice(0, 1)[0]; got != 42*float64(p) {
				t.Errorf("reduce after allgather: %v, want %v", got, 42*float64(p))
			}
		}
	})
}

// TestOptionsDefaults checks the zero-value behaviour documented on
// Options.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Policy.String() != "adaptive" {
		t.Errorf("default policy = %v", o.Policy)
	}
	if o.SliceMaxBytes != DefaultSliceMaxBytes {
		t.Errorf("default Imax = %d", o.SliceMaxBytes)
	}
	if o.RGDegree != 2 {
		t.Errorf("default k = %d", o.RGDegree)
	}
	if o.SwitchSmallBytes != DefaultSwitchSmallBytes {
		t.Errorf("default switch = %d", o.SwitchSmallBytes)
	}
	// Negative switch disables.
	o2 := Options{SwitchSmallBytes: -1}.withDefaults()
	if o2.SwitchSmallBytes != -1 {
		t.Error("negative switch should be preserved (disabled)")
	}
}

// TestSliceRule verifies I = max(min(s/p, Imax), cache line).
func TestSliceRule(t *testing.T) {
	o := Options{}.withDefaults() // Imax = 256 KB = 32768 elems
	if got := sliceElems(1<<20, o); got != 32768 {
		t.Errorf("big block: I = %d, want Imax", got)
	}
	if got := sliceElems(100, o); got != 100 {
		t.Errorf("small block: I = %d, want block", got)
	}
	if got := sliceElems(3, o); got != 8 {
		t.Errorf("tiny block: I = %d, want cache line floor 8", got)
	}
}
