package coll

import (
	"fmt"

	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/shm"
)

// maCtx is the per-communicator state of the movement-avoiding reduction
// (paper §3.2, Fig. 5/6): a shared segment of p slots of I elements, one
// progress flag per rank, and a persistent operation counter that keeps the
// flag epochs monotone across invocations.
//
// One "pass" reduces p slices — slice l is a piece of the l-th block of
// the send buffer — in p steps. At step j, rank r works on slice
// l = (r+j+1) mod p: step 0 copies the slice into shared memory, steps
// 1..p-2 accumulate the rank's own send-buffer slice into the shared slot,
// and step p-1 (where l == r) produces the final value. Each slot is thus
// touched by the rank chain l-1, l-2, ..., l (mod p), so a step only needs
// a flag wait on the rank one position ahead — the neighbour
// synchronization of §3.3.
type maCtx struct {
	comm  *mpi.Comm
	shm   *memmodel.Buffer
	flags []*shm.Flag
	base  *int64
	I     int64
	p, me int
}

// newMACtx builds (or re-attaches to) the MA context of the communicator
// for slice size I. The segment's DRAM home barely matters for MA — its
// whole point is that the p*I working set stays cache-resident (§3.3,
// "avoid accessing remote NUMA's physical memory") — so it is homed on the
// first participant's socket.
func newMACtx(r *mpi.Rank, c *mpi.Comm, I int64, label string) *maCtx {
	p := c.Size()
	me := c.CommRank(r.ID())
	if me < 0 {
		panic(fmt.Sprintf("coll: rank %d not in comm %s", r.ID(), c.Name()))
	}
	shmBuf := c.Shared(fmt.Sprintf("%s/shm/I=%d", label, I), c.SocketOf(0), I*int64(p))
	return &maCtx{
		comm:  c,
		shm:   shmBuf,
		flags: c.Flags(label + "/flags"),
		base:  c.Counter(r, label+"/base"),
		I:     I,
		p:     p,
		me:    me,
	}
}

// pass runs one MA reduction pass. sbOff(l) and lenOf(l) give the send
// buffer offset and length of slice l (lenOf may be 0 for ragged tails).
// final, if non-nil, consumes the completed slice me (called with the shm
// slot offset) instead of the default accumulate-into-shm.
func (mc *maCtx) pass(r *mpi.Rank, sb *memmodel.Buffer,
	sbOff func(l int) int64, lenOf func(l int) int64,
	final func(slotOff, length int64),
	op mpi.Op, pol memcopy.Policy, hIn memcopy.Hints) {

	basePass := *mc.base
	for j := 0; j < mc.p; j++ {
		l := (mc.me + j + 1) % mc.p
		off := sbOff(l)
		length := lenOf(l)
		slot := int64(l) * mc.I
		if j == 0 {
			// The slot we are about to overwrite was finalized in the
			// previous pass by rank l itself (its step p-1); its flag holds
			// basePass once that completed.
			mc.flags[l].Wait(r.Proc(), r.Core(), uint64(basePass))
			memcopy.Copy(r, pol, mc.shm, slot, sb, off, length, hIn)
		} else {
			// Wait for the rank one ahead to finish its step j-1 on this
			// slot (neighbour synchronization).
			mc.flags[(mc.me+1)%mc.p].Wait(r.Proc(), r.Core(), uint64(basePass+int64(j)))
			if j == mc.p-1 && final != nil {
				final(slot, length)
			} else {
				r.AccumulateElems(mc.shm, slot, sb, off, length, op, memmodel.Temporal)
			}
		}
		mc.flags[mc.me].Set(r.Proc(), uint64(basePass+int64(j)+1))
	}
	*mc.base = basePass + int64(mc.p)
}

// ReduceScatterMA is the flat movement-avoiding reduce-scatter (§3.3,
// Fig. 6): DAV s*(3p-1), the proven copy-volume optimum. sb holds p*n
// elements; rank i's rb receives block i (n elements).
func ReduceScatterMA(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	o = o.withDefaults()
	p := int64(c.Size())
	I := sliceElems(n, o)
	mc := newMACtx(r, c, I, "ma-rs")
	w := (p*n*p + p*n + p*I) * memmodel.ElemSize // all sb + all rb + shm
	hIn := hints(c.Machine(), false, w)
	hOut := hints(c.Machine(), true, w)
	outKind := memcopy.Decide(o.Policy, I*memmodel.ElemSize, hOut)
	for start := int64(0); start < n; start += I {
		length := min64(I, n-start)
		mc.pass(r, sb,
			func(l int) int64 { return int64(l)*n + start },
			func(l int) int64 { return length },
			func(slotOff, ln int64) {
				r.CombineElems(rb, start, mc.shm, slotOff, sb, int64(mc.me)*n+start, ln, op, outKind)
			},
			op, o.Policy, hIn)
	}
}

// maReduceToShm runs the MA reduction leaving every finalized block in the
// shared segment (final step accumulates in place) and invokes afterChunk
// once per chunk between two communicator barriers, with the chunk's
// geometry. It is the shared core of the MA all-reduce (§3.4, Algorithm 2)
// and MA reduce (§3.5): afterChunk performs the copy-out.
func maReduceToShm(r *mpi.Rank, c *mpi.Comm, sb *memmodel.Buffer, n int64, op mpi.Op, o Options,
	label string, afterChunk func(mc *maCtx, start, length int64)) {
	o = o.withDefaults()
	bn := ceilDiv(n, int64(c.Size())) // conceptual block length
	I := sliceElems(bn, o)
	mc := newMACtx(r, c, I, label)
	p := int64(c.Size())
	w := (n*p + n*p + p*I) * memmodel.ElemSize // Algorithm 2's W
	hIn := hints(c.Machine(), false, w)
	blockLen := func(l int) int64 {
		lo := int64(l) * bn
		if lo >= n {
			return 0
		}
		return min64(bn, n-lo)
	}
	for start := int64(0); start < bn; start += I {
		length := min64(I, bn-start)
		lenOf := func(l int) int64 {
			bl := blockLen(l)
			if start >= bl {
				return 0
			}
			return min64(length, bl-start)
		}
		mc.pass(r, sb,
			func(l int) int64 { return int64(l)*bn + start },
			lenOf,
			nil, // final step accumulates into shm
			op, o.Policy, hIn)
		c.Barrier().Arrive(r.Proc())
		afterChunk(mc, start, length)
		c.Barrier().Arrive(r.Proc())
	}
}

// AllreduceMA is the flat MA all-reduce (§3.4, Algorithm 2): MA
// reduce-scatter into shared memory followed by a per-chunk copy-out of all
// blocks by every rank. DAV s*(5p-1).
func AllreduceMA(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	o = o.withDefaults()
	p := int64(c.Size())
	bn := ceilDiv(n, p)
	I := sliceElems(bn, o)
	w := (n*p + n*p + p*I) * memmodel.ElemSize
	hOut := hints(c.Machine(), true, w)
	me := c.CommRank(r.ID())
	maReduceToShm(r, c, sb, n, op, o, "ma-ar", func(mc *maCtx, start, length int64) {
		for j := 0; j < c.Size(); j++ {
			l := (me + j) % c.Size() // stagger slot access across ranks
			lo := int64(l)*bn + start
			if lo >= n {
				continue
			}
			ln := min64(length, n-lo)
			memcopy.Copy(r, o.Policy, rb, lo, mc.shm, int64(l)*mc.I, ln, hOut)
		}
	})
}

// ReduceMA is the flat MA reduce (§3.5): MA reduce-scatter into shared
// memory; the root copies the result out per chunk. DAV s*(3p+1).
func ReduceMA(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, o Options) {
	o = o.withDefaults()
	p := int64(c.Size())
	bn := ceilDiv(n, p)
	I := sliceElems(bn, o)
	w := (n*p + n + p*I) * memmodel.ElemSize
	hOut := hints(c.Machine(), true, w)
	me := c.CommRank(r.ID())
	maReduceToShm(r, c, sb, n, op, o, "ma-red", func(mc *maCtx, start, length int64) {
		if me != root {
			return
		}
		for l := 0; l < c.Size(); l++ {
			lo := int64(l)*bn + start
			if lo >= n {
				continue
			}
			ln := min64(length, n-lo)
			memcopy.Copy(r, o.Policy, rb, lo, mc.shm, int64(l)*mc.I, ln, hOut)
		}
	})
}
