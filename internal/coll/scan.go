package coll

import (
	"fmt"

	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// MPI_Scan (inclusive prefix reduction: rank i's rb = op over ranks
// 0..i) rounds out the reduction family. Two shared-memory designs:
//
//   - ScanShm: the DPML-style parallel form — every rank publishes its
//     send buffer, rank i privately folds segments 0..i. One barrier, but
//     O(p^2) total accesses.
//   - ScanChain: the movement-avoiding form — the prefix is inherently a
//     chain, so rank i waits for rank i-1's partial in shared memory,
//     folds its own slice (from private memory, no copy-in!) into its
//     result AND publishes the new partial, pipelined over slices exactly
//     like the MA reduction. Copy volume is the 2s optimum shape: only
//     partials live in shared memory.

// ScanFunc is an inclusive prefix reduction.
type ScanFunc func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options)

// ScanShm is the parallel-fold scan.
func ScanShm(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	p := c.Size()
	me := c.CommRank(r.ID())
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	segs := make([]*memmodel.Buffer, p)
	for k := 0; k < p; k++ {
		segs[k] = c.Shared(fmt.Sprintf("scan/seg%d/n=%d", k, n), c.SocketOf(k), n)
	}
	for off := int64(0); off < n; off += dpmlSliceElems {
		ln := min64(dpmlSliceElems, n-off)
		memcopy.Copy(r, memcopy.Memmove, segs[me], off, sb, off, ln, memcopy.Hints{})
	}
	c.Barrier().Arrive(r.Proc())
	// Fold segments 0..me-1 with the private sb into rb.
	if me == 0 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
	} else {
		r.CombineElems(rb, 0, segs[0], 0, sb, 0, n, op, memmodel.Temporal)
		for k := 1; k < me; k++ {
			r.AccumulateElems(rb, 0, segs[k], 0, n, op, memmodel.Temporal)
		}
	}
	c.Barrier().Arrive(r.Proc())
}

// ScanChain is the movement-avoiding pipelined scan.
func ScanChain(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	o = o.withDefaults()
	p := c.Size()
	me := c.CommRank(r.ID())
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	I := sliceElems(ceilDiv(n, int64(p)), o)
	// Double-buffered partial per rank: rank i publishes its inclusive
	// prefix slice for rank i+1 to extend.
	slots := c.Shared(fmt.Sprintf("scan-chain/slots/I=%d", I), 0, int64(p)*2*I)
	flags := c.Flags("scan-chain/flags")
	base := *c.Counter(r, "scan-chain/base")
	w := (2*n*int64(p) + int64(p)*2*I) * memmodel.ElemSize
	hOut := hints(c.Machine(), true, w)
	outKind := memcopy.Decide(o.Policy, I*memmodel.ElemSize, hOut)

	slot := func(who int, t int64) int64 { return int64(who)*2*I + (t%2)*I }
	numSlices := ceilDiv(n, I)
	for t := int64(0); t < numSlices; t++ {
		off := t * I
		ln := min64(I, n-off)
		// Wait for my successor to have consumed slice t-2 of my slot.
		if me+1 < p && t >= 2 {
			flags[me+1].Wait(r.Proc(), r.Core(), uint64(base+t-1))
		}
		if me == 0 {
			// My prefix is just my slice: to rb, and publish for rank 1.
			r.CopyElems(rb, off, sb, off, ln, outKind)
			r.CopyElems(slots, slot(0, t), sb, off, ln, memmodel.Temporal)
		} else {
			flags[me-1].Wait(r.Proc(), r.Core(), uint64(base+t+1))
			if me+1 < p {
				// Extend the prefix in shared memory once, then copy the
				// (cache-resident) partial out to rb.
				r.CombineElems(slots, slot(me, t), slots, slot(me-1, t), sb, off, ln, op, memmodel.Temporal)
				r.CopyElems(rb, off, slots, slot(me, t), ln, outKind)
			} else {
				// Last rank: fold straight into rb.
				r.CombineElems(rb, off, slots, slot(me-1, t), sb, off, ln, op, outKind)
			}
		}
		flags[me].Set(r.Proc(), uint64(base+t+1))
	}
	*c.Counter(r, "scan-chain/base") = base + numSlices
	c.Barrier().Arrive(r.Proc())
}

// ScanAlgos registers the scan implementations.
var ScanAlgos = map[string]ScanFunc{
	"yhccl": ScanChain,
	"chain": ScanChain,
	"shm":   ScanShm,
}
