package coll

import (
	"fmt"

	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// Beyond the five collectives the paper evaluates, a production intra-node
// library needs gather/scatter/all-to-all. These follow the same
// shared-memory design language: staging segments, first-touch homing and
// the adaptive copy policy for the non-temporal destinations. The
// Morton-order all-to-all reproduces the cache-oblivious traversal of Li
// et al. [41], which the paper's related-work section discusses.

// GatherFunc is a rooted gather: every rank contributes n elements (sb);
// the root's rb receives p*n, block i from rank i.
type GatherFunc func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, root int, o Options)

// ScatterFunc is a rooted scatter: the root's sb holds p*n; rank i's rb
// receives block i (n elements).
type ScatterFunc func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, root int, o Options)

// AlltoallFunc is the personalized exchange: sb holds p blocks of n; rank
// i's rb block j receives rank j's block i.
type AlltoallFunc func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o Options)

// GatherShm is the shared-memory gather: every rank copies its block into
// a node segment (temporal: the root reads it right away); the root drains
// the segment into rb with the adaptive policy (rb is non-temporal data).
func GatherShm(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, root int, o Options) {
	o = o.withDefaults()
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	seg := c.Shared(fmt.Sprintf("gather/seg/n=%d", n), c.SocketOf(root), p*n)
	w := (n*p + n*p + p*n) * memmodel.ElemSize
	hIn := hints(c.Machine(), false, w)
	hOut := hints(c.Machine(), true, w)
	if me == int64(root) {
		// The root's own block goes straight to rb.
		r.CopyElems(rb, me*n, sb, 0, n, memmodel.Temporal)
	} else {
		memcopy.Copy(r, o.Policy, seg, me*n, sb, 0, n, hIn)
	}
	c.Barrier().Arrive(r.Proc())
	if me == int64(root) {
		for j := int64(1); j < p; j++ {
			b := (me + j) % p
			memcopy.Copy(r, o.Policy, rb, b*n, seg, b*n, n, hOut)
		}
	}
	c.Barrier().Arrive(r.Proc())
}

// GatherXPMEM is the direct-access gather: the root copies every peer's
// send buffer with a single memmove.
func GatherXPMEM(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, root int, o Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	publishAndBarrier(r, c, "xpmem-gather/sb", sb)
	if me == int64(root) {
		r.CopyElems(rb, me*n, sb, 0, n, memmodel.Temporal)
		for j := int64(1); j < p; j++ {
			b := (me + j) % p
			peer := c.Peer("xpmem-gather/sb", int(b))
			memcopy.Copy(r, memcopy.Memmove, rb, b*n, peer, 0, n, memcopy.Hints{})
		}
	}
	c.Barrier().Arrive(r.Proc())
}

// ScatterShm is the shared-memory scatter: the root publishes all blocks
// into a node segment; every rank drains its own block.
func ScatterShm(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, root int, o Options) {
	o = o.withDefaults()
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	seg := c.Shared(fmt.Sprintf("scatter/seg/n=%d", n), c.SocketOf(root), p*n)
	w := (n*p + n*p + p*n) * memmodel.ElemSize
	hIn := hints(c.Machine(), false, w)
	hOut := hints(c.Machine(), true, w)
	if me == int64(root) {
		for j := int64(0); j < p; j++ {
			if j == me {
				r.CopyElems(rb, 0, sb, j*n, n, memmodel.Temporal)
				continue
			}
			memcopy.Copy(r, o.Policy, seg, j*n, sb, j*n, n, hIn)
		}
	}
	c.Barrier().Arrive(r.Proc())
	if me != int64(root) {
		memcopy.Copy(r, o.Policy, rb, 0, seg, me*n, n, hOut)
	}
	c.Barrier().Arrive(r.Proc())
}

// ScatterXPMEM is the direct-access scatter: every rank copies its block
// straight out of the root's send buffer.
func ScatterXPMEM(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, root int, o Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	publishAndBarrier(r, c, "xpmem-scatter/sb", sb)
	src := c.Peer("xpmem-scatter/sb", root)
	if me == int64(root) {
		r.CopyElems(rb, 0, sb, me*n, n, memmodel.Temporal)
	} else {
		memcopy.Copy(r, memcopy.Memmove, rb, 0, src, me*n, n, memcopy.Hints{})
	}
	c.Barrier().Arrive(r.Proc())
	_ = p
}

// AlltoallShm is the shared-memory personalized exchange: every rank
// copies its whole send buffer into its own node segment, then drains its
// column — rb block j comes from segment j's block me. Copy-in is
// temporal (immediately read by p peers), copy-out non-temporal on large
// exchanges.
func AlltoallShm(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o Options) {
	alltoallShm(r, c, sb, rb, n, o, false)
}

// AlltoallMorton is Li et al.'s cache-oblivious variant [41]: the drain
// phase walks the (source, block-chunk) grid in Morton (Z-curve) order,
// improving reuse of the partially cached segments. Semantically identical
// to AlltoallShm.
func AlltoallMorton(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o Options) {
	alltoallShm(r, c, sb, rb, n, o, true)
}

func alltoallShm(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o Options, morton bool) {
	o = o.withDefaults()
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	segs := make([]*memmodel.Buffer, p)
	for k := int64(0); k < p; k++ {
		segs[k] = c.Shared(fmt.Sprintf("a2a/seg%d/n=%d", k, n), c.SocketOf(int(k)), p*n)
	}
	w := (2*n*p*p + n*p*p) * memmodel.ElemSize
	hIn := hints(c.Machine(), false, w)
	hOut := hints(c.Machine(), true, w)

	// Publish: blocks destined to others go through the segment; the
	// self-block short-circuits.
	for j := int64(0); j < p; j++ {
		if j == me {
			r.CopyElems(rb, me*n, sb, me*n, n, memmodel.Temporal)
			continue
		}
		memcopy.Copy(r, o.Policy, segs[me], j*n, sb, j*n, n, hIn)
	}
	c.Barrier().Arrive(r.Proc())

	// Drain: rb[j*n..] = segs[j][me*n..]. Chunked so the Morton walk has a
	// 2-D grid (source j x chunk t) to traverse.
	chunk := sliceElems(n, o)
	numChunks := ceilDiv(n, chunk)
	type cell struct{ j, t int64 }
	var order []cell
	if morton {
		dim := int64(1)
		for dim < p || dim < numChunks {
			dim *= 2
		}
		for z := int64(0); z < dim*dim; z++ {
			j, t := mortonDecode(z)
			if j < p && t < numChunks && j != me {
				order = append(order, cell{j, t})
			}
		}
	} else {
		for jj := int64(1); jj < p; jj++ {
			j := (me + jj) % p
			for t := int64(0); t < numChunks; t++ {
				order = append(order, cell{j, t})
			}
		}
	}
	for _, cl := range order {
		off := cl.t * chunk
		ln := min64(chunk, n-off)
		memcopy.Copy(r, o.Policy, rb, cl.j*n+off, segs[cl.j], me*n+off, ln, hOut)
	}
	c.Barrier().Arrive(r.Proc())
}

// mortonDecode splits the bits of z into two interleaved coordinates.
func mortonDecode(z int64) (x, y int64) {
	for bit := uint(0); bit < 31; bit++ {
		x |= (z >> (2 * bit) & 1) << bit
		y |= (z >> (2*bit + 1) & 1) << bit
	}
	return x, y
}

// AlltoallXPMEM is the direct-access exchange: rb block j is copied
// straight from peer j's send buffer.
func AlltoallXPMEM(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	publishAndBarrier(r, c, "xpmem-a2a/sb", sb)
	r.CopyElems(rb, me*n, sb, me*n, n, memmodel.Temporal)
	for jj := int64(1); jj < p; jj++ {
		j := (me + jj) % p
		peer := c.Peer("xpmem-a2a/sb", int(j))
		memcopy.Copy(r, memcopy.Memmove, rb, j*n, peer, me*n, n, memcopy.Hints{})
	}
	c.Barrier().Arrive(r.Proc())
}

// GatherAlgos, ScatterAlgos and AlltoallAlgos extend the registries.
var GatherAlgos = map[string]GatherFunc{
	"yhccl": GatherShm,
	"shm":   GatherShm,
	"xpmem": GatherXPMEM,
}

// ScatterAlgos maps names to scatter algorithms.
var ScatterAlgos = map[string]ScatterFunc{
	"yhccl": ScatterShm,
	"shm":   ScatterShm,
	"xpmem": ScatterXPMEM,
}

// AlltoallAlgos maps names to all-to-all algorithms.
var AlltoallAlgos = map[string]AlltoallFunc{
	"yhccl":  AlltoallMorton,
	"shm":    AlltoallShm,
	"morton": AlltoallMorton,
	"xpmem":  AlltoallXPMEM,
}
