package coll

import (
	"fmt"

	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// The socket-aware MA reduction (§3.3, Fig. 7) trades a little extra DAV
// (+2(m-1)s) for far fewer serialized neighbour synchronizations: each
// socket runs an independent intra-socket MA reduction over its q = p/m
// ranks (chain length q-1 instead of p-1), then the owners of the global
// blocks combine the m per-socket partial results.
//
// Geometry: the message is viewed as p global blocks of bn elements (block
// b belongs to global rank b). Socket k's intra-MA treats intra-block j as
// the concatenation of global blocks j*m .. j*m+m-1, and processes one
// (g, c) piece per pass: piece c (I elements) of global block j*m+g inside
// every intra block j. After a pass, socket k's slot j holds the partial
// sum (over socket k's ranks) of that piece of block j*m+g; the owner rank
// j*m+g combines the m slots across sockets.

// socketsBalanced reports whether every socket hosts the same number of
// ranks and global rank b sits on socket b/q (block binding) — the
// geometry the two-level algorithm requires. Unbalanced bindings fall back
// to the flat MA reduction.
func socketsBalanced(c *mpi.Comm) bool {
	mach := c.Machine()
	m := mach.Sockets()
	if m <= 1 || c.Size()%m != 0 {
		return false
	}
	q := c.Size() / m
	for i := 0; i < c.Size(); i++ {
		if c.SocketOf(i) != i/q {
			return false
		}
	}
	return true
}

// socketGeometry captures the common parameters.
type socketGeometry struct {
	p, m, q int   // ranks, sockets, ranks per socket
	bn      int64 // global block length
	I       int64 // slice length
	n       int64 // total message elements (bn*p conceptually, ragged ok)
}

// socketShm returns socket k's intra-MA shared segment (q slots of I),
// homed on that socket. Any rank may resolve it (cross-socket reads are
// how the combine phase accesses remote partials).
func socketShm(c *mpi.Comm, k int, I int64, q int, label string) *memmodel.Buffer {
	sc := c.Machine().SocketComm(k)
	return sc.Shared(fmt.Sprintf("%s/shm/I=%d", label, I), k, I*int64(q))
}

// socketMAReduce runs the two-level reduction. combine(dst geometry) is
// called on the owner rank of each finished piece with the global block
// index b, the piece offset within the block, the piece length and the
// slot offset; it must fold the m socket partials into the final
// destination. Barriers bracket each pass.
func socketMAReduce(r *mpi.Rank, c *mpi.Comm, sb *memmodel.Buffer, n int64, op mpi.Op, o Options,
	label string, combine func(g socketGeometry, b int, pieceOff, length, slotOff int64),
	afterPass func(g socketGeometry, b0 int, pieceOff, length int64)) {

	o = o.withDefaults()
	mach := c.Machine()
	p := c.Size()
	m := mach.Sockets()
	sc := r.SocketComm()
	q := sc.Size()
	bn := ceilDiv(n, int64(p))
	I := sliceElems(bn, o)
	geo := socketGeometry{p: p, m: m, q: q, bn: bn, I: I, n: n}

	intra := newMACtx(r, sc, I, label+"/intra")
	w := (n*int64(p)*2 + int64(m)*int64(q)*I) * memmodel.ElemSize
	hIn := hints(mach, false, w)

	blockLen := func(b int) int64 {
		lo := int64(b) * bn
		if lo >= n {
			return 0
		}
		return min64(bn, n-lo)
	}

	for g := 0; g < m; g++ {
		for start := int64(0); start < bn; start += I {
			length := min64(I, bn-start)
			// Intra-socket pass: slot j covers global block j*m+g, piece
			// [start, start+length).
			sbOff := func(j int) int64 { return int64(j*geo.m+g)*bn + start }
			lenOf := func(j int) int64 {
				bl := blockLen(j*geo.m + g)
				if start >= bl {
					return 0
				}
				return min64(length, bl-start)
			}
			intra.pass(r, sb, sbOff, lenOf, nil, op, o.Policy, hIn)
			c.Barrier().Arrive(r.Proc())
			// Cross-socket combine: the owner of block b = j*m+g folds the
			// m socket partials of slot j. Owners of this pass are the q
			// ranks whose id is congruent to g modulo m.
			meGlobal := c.CommRank(r.ID())
			if meGlobal%m == g {
				j := meGlobal / m
				if j < q {
					if ln := lenOf(j); ln > 0 {
						combine(geo, meGlobal, start, ln, int64(j)*I)
					}
				}
			}
			c.Barrier().Arrive(r.Proc())
			if afterPass != nil {
				afterPass(geo, g, start, length)
				c.Barrier().Arrive(r.Proc())
			}
		}
	}
}

// combineSockets folds the m per-socket partials of slot `slotOff` into
// dst[dOff..] (first a 2-operand combine, then accumulates), charging the
// cross-socket loads the remote slots imply.
func combineSockets(r *mpi.Rank, c *mpi.Comm, geo socketGeometry, label string,
	dst *memmodel.Buffer, dOff, slotOff, length int64, op mpi.Op, kind memmodel.StoreKind) {
	s0 := socketShm(c, 0, geo.I, geo.q, label+"/intra")
	if geo.m == 1 {
		r.CopyElems(dst, dOff, s0, slotOff, length, kind)
		return
	}
	s1 := socketShm(c, 1, geo.I, geo.q, label+"/intra")
	r.CombineElems(dst, dOff, s0, slotOff, s1, slotOff, length, op, kind)
	for k := 2; k < geo.m; k++ {
		sk := socketShm(c, k, geo.I, geo.q, label+"/intra")
		r.AccumulateElems(dst, dOff, sk, slotOff, length, op, kind)
	}
}

// ReduceScatterSocketMA is the socket-aware MA reduce-scatter (§3.3,
// Fig. 7): DAV s*(3p+2m-3). sb holds p*n elements; rank b receives block b.
func ReduceScatterSocketMA(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	o = o.withDefaults()
	if !socketsBalanced(c) || c.Size() < 2*c.Machine().Sockets() {
		ReduceScatterMA(r, c, sb, rb, n, op, o)
		return
	}
	// For reduce-scatter, sb has p blocks of exactly n: total message p*n.
	total := int64(c.Size()) * n
	w := (total*int64(c.Size()) + total) * memmodel.ElemSize
	hOut := hints(c.Machine(), true, w)
	label := "sma-rs"
	socketMAReduce(r, c, sb, total, op, o, label,
		func(geo socketGeometry, b int, pieceOff, length, slotOff int64) {
			kind := memcopy.Decide(o.Policy, length*memmodel.ElemSize, hOut)
			combineSockets(r, c, geo, label, rb, pieceOff, slotOff, length, op, kind)
		}, nil)
}

// AllreduceSocketMA is the socket-aware MA all-reduce (§3.4): DAV
// s*(5p+2m-3). The combined pieces land in a node-level shared segment and
// every rank copies each finished piece out.
func AllreduceSocketMA(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	o = o.withDefaults()
	mach := c.Machine()
	if !socketsBalanced(c) || c.Size() < 2*mach.Sockets() {
		AllreduceMA(r, c, sb, rb, n, op, o)
		return
	}
	p := int64(c.Size())
	bn := ceilDiv(n, p)
	I := sliceElems(bn, o)
	q := int64(r.SocketComm().Size())
	nodeShm := c.Shared(fmt.Sprintf("sma-ar/node/I=%d", I), 0, I*q)
	w := (n*p + n*p + int64(mach.Sockets())*q*I) * memmodel.ElemSize
	hOut := hints(mach, true, w)
	label := "sma-ar"
	socketMAReduce(r, c, sb, n, op, o, label,
		func(geo socketGeometry, b int, pieceOff, length, slotOff int64) {
			// Owners write combined pieces into the node segment (temporal:
			// it is immediately re-read by every rank's copy-out).
			combineSockets(r, c, geo, label, nodeShm, slotOff, slotOff, length, op, memmodel.Temporal)
		},
		func(geo socketGeometry, g int, pieceOff, length int64) {
			// Every rank copies all q finished pieces of this pass to rb.
			me := c.CommRank(r.ID())
			for jj := 0; jj < geo.q; jj++ {
				j := (jj + me) % geo.q // stagger
				b := j*geo.m + g
				lo := int64(b)*geo.bn + pieceOff
				if lo >= n {
					continue
				}
				ln := min64(length, n-lo)
				memcopy.Copy(r, o.Policy, rb, lo, nodeShm, int64(j)*geo.I, ln, hOut)
			}
		})
}

// ReduceSocketMA is the socket-aware MA reduce (§3.5): DAV s*(3p+2m-1).
func ReduceSocketMA(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, o Options) {
	o = o.withDefaults()
	mach := c.Machine()
	if !socketsBalanced(c) || c.Size() < 2*mach.Sockets() {
		ReduceMA(r, c, sb, rb, n, op, root, o)
		return
	}
	p := int64(c.Size())
	bn := ceilDiv(n, p)
	I := sliceElems(bn, o)
	q := int64(r.SocketComm().Size())
	nodeShm := c.Shared(fmt.Sprintf("sma-red/node/I=%d", I), 0, I*q)
	w := (n*p + n + int64(mach.Sockets())*q*I) * memmodel.ElemSize
	hOut := hints(mach, true, w)
	label := "sma-red"
	socketMAReduce(r, c, sb, n, op, o, label,
		func(geo socketGeometry, b int, pieceOff, length, slotOff int64) {
			combineSockets(r, c, geo, label, nodeShm, slotOff, slotOff, length, op, memmodel.Temporal)
		},
		func(geo socketGeometry, g int, pieceOff, length int64) {
			if c.CommRank(r.ID()) != root {
				return
			}
			for j := 0; j < geo.q; j++ {
				b := j*geo.m + g
				lo := int64(b)*geo.bn + pieceOff
				if lo >= n {
					continue
				}
				ln := min64(length, n-lo)
				memcopy.Copy(r, o.Policy, rb, lo, nodeShm, int64(j)*geo.I, ln, hOut)
			}
		})
}
