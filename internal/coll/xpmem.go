package coll

import (
	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// This file implements the XPMEM-style direct-access collectives of Hashmi
// et al. [30, 31]: every rank exposes its buffers to the others (address
// space mapping), and collectives load peer memory directly — a single
// copy, no shared-memory staging. Copies use the plain memmove policy
// (kernel-assisted paths have no adaptive NT logic), which is exactly why
// the paper observes them winning only once s/p crosses memmove's 2 MB NT
// threshold (§5.5), and why direct remote loads pay inter-NUMA bandwidth
// on large messages.

// publishAndBarrier registers the rank's buffer and synchronizes so every
// peer can resolve it.
func publishAndBarrier(r *mpi.Rank, c *mpi.Comm, label string, b *memmodel.Buffer) {
	c.Publish(r, label, b)
	c.Barrier().Arrive(r.Proc())
}

// AllreduceXPMEM is the direct-access ring-style all-reduce: rank b
// reduces block b straight from every peer's send buffer (3s(p-1)), then
// gathers every peer's reduced block by direct load (2s(p-1)).
// DAV 5s(p-1) (dav.XPMEMAllreduce).
func AllreduceXPMEM(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	bn := ceilDiv(n, p)
	publishAndBarrier(r, c, "xpmem-ar/sb", sb)
	publishAndBarrier(r, c, "xpmem-ar/rb", rb)

	// Phase 1: direct-access reduce of block me into rb[me*bn].
	lo := me * bn
	if lo < n {
		ln := min64(bn, n-lo)
		first := c.Peer("xpmem-ar/sb", int((me+1)%p))
		r.CombineElems(rb, lo, sb, lo, first, lo, ln, op, memmodel.Temporal)
		for j := int64(2); j < p; j++ {
			peer := c.Peer("xpmem-ar/sb", int((me+j)%p))
			r.AccumulateElems(rb, lo, peer, lo, ln, op, memmodel.Temporal)
		}
	}
	c.Barrier().Arrive(r.Proc())

	// Phase 2: direct-access all-gather of the other blocks.
	for j := int64(1); j < p; j++ {
		b := (me + j) % p
		blo := b * bn
		if blo >= n {
			continue
		}
		ln := min64(bn, n-blo)
		peer := c.Peer("xpmem-ar/rb", int(b))
		memcopy.Copy(r, memcopy.Memmove, rb, blo, peer, blo, ln, memcopy.Hints{})
	}
	c.Barrier().Arrive(r.Proc())
}

// ReduceScatterXPMEM is the direct-access reduce-scatter: rank b reduces
// block b straight from every peer's send buffer. DAV 3s(p-1).
func ReduceScatterXPMEM(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	publishAndBarrier(r, c, "xpmem-rs/sb", sb)
	lo := me * n
	first := c.Peer("xpmem-rs/sb", int((me+1)%p))
	r.CombineElems(rb, 0, sb, lo, first, lo, n, op, memmodel.Temporal)
	for j := int64(2); j < p; j++ {
		peer := c.Peer("xpmem-rs/sb", int((me+j)%p))
		r.AccumulateElems(rb, 0, peer, lo, n, op, memmodel.Temporal)
	}
	c.Barrier().Arrive(r.Proc())
}

// ReduceXPMEM is the direct-access reduce: the partitioned reduce of
// ReduceScatterXPMEM followed by the root gathering the blocks by direct
// load from the owners' receive buffers.
func ReduceXPMEM(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, o Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	bn := ceilDiv(n, p)
	part := r.PersistentBuffer("xpmem-red/part", bn)
	publishAndBarrier(r, c, "xpmem-red/sb", sb)
	publishAndBarrier(r, c, "xpmem-red/part", part)
	lo := me * bn
	if lo < n {
		ln := min64(bn, n-lo)
		dst, dOff := part, int64(0)
		if int(me) == root {
			dst, dOff = rb, lo
		}
		first := c.Peer("xpmem-red/sb", int((me+1)%p))
		r.CombineElems(dst, dOff, sb, lo, first, lo, ln, op, memmodel.Temporal)
		for j := int64(2); j < p; j++ {
			peer := c.Peer("xpmem-red/sb", int((me+j)%p))
			r.AccumulateElems(dst, dOff, peer, lo, ln, op, memmodel.Temporal)
		}
	}
	c.Barrier().Arrive(r.Proc())
	if int(me) == root {
		for j := int64(1); j < p; j++ {
			b := (me + j) % p
			blo := b * bn
			if blo >= n {
				continue
			}
			ln := min64(bn, n-blo)
			peer := c.Peer("xpmem-red/part", int(b))
			memcopy.Copy(r, memcopy.Memmove, rb, blo, peer, 0, ln, memcopy.Hints{})
		}
	}
	c.Barrier().Arrive(r.Proc())
}

// BcastXPMEM is the direct-access broadcast: every non-root copies the
// message straight out of the root's buffer with memmove.
func BcastXPMEM(r *mpi.Rank, c *mpi.Comm, buf *memmodel.Buffer, n int64, root int, o Options) {
	if c.Size() == 1 {
		return
	}
	me := c.CommRank(r.ID())
	publishAndBarrier(r, c, "xpmem-bcast/buf", buf)
	if me != root {
		src := c.Peer("xpmem-bcast/buf", root)
		memcopy.Copy(r, memcopy.Memmove, buf, 0, src, 0, n, memcopy.Hints{})
	}
	c.Barrier().Arrive(r.Proc())
}

// AllgatherXPMEM is the direct-access all-gather: every rank copies each
// peer's contribution straight from the peer's send buffer.
func AllgatherXPMEM(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	r.CopyElems(rb, me*n, sb, 0, n, memmodel.Temporal)
	if p == 1 {
		return
	}
	publishAndBarrier(r, c, "xpmem-ag/sb", sb)
	for j := int64(1); j < p; j++ {
		b := (me + j) % p
		peer := c.Peer("xpmem-ag/sb", int(b))
		memcopy.Copy(r, memcopy.Memmove, rb, b*n, peer, 0, n, memcopy.Hints{})
	}
	c.Barrier().Arrive(r.Proc())
}
