package coll

import (
	"fmt"

	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// This file implements the classic shared-memory pipelined broadcast
// (Algorithm 3) and pipelined all-gather (Algorithm 4) with the
// adaptive-copy policy plumbed through, reproducing Figs. 13-14: the same
// control flow runs with memmove, t-copy, nt-copy or adaptive-copy.

// pipeSliceBytes is the default pipeline slice for bcast/all-gather (the
// paper evaluates Imax = 1 MB in Figs. 13-14).
const pipeSliceBytes = 1 << 20

// pipeSlice returns the slice size in elements for a pipelined collective.
func pipeSlice(n int64, o Options) int64 {
	I := int64(pipeSliceBytes / memmodel.ElemSize)
	if o.SliceMaxBytes > 0 && o.SliceMaxBytes != DefaultSliceMaxBytes {
		I = o.SliceMaxBytes / memmodel.ElemSize
	}
	return max64(min64(I, max64(n, 1)), 8)
}

// BcastPipelined is Algorithm 3: the root streams slices through a
// double-buffered shared segment; non-roots copy the previous slice out
// while the root publishes the next. buf is both the root's source and the
// non-roots' destination. W = s + s(p-1) + 2I: the shared slots are
// temporal data, the receive buffers non-temporal.
func BcastPipelined(r *mpi.Rank, c *mpi.Comm, buf *memmodel.Buffer, n int64, root int, o Options) {
	o = o.withDefaults()
	p := int64(c.Size())
	if p == 1 {
		return
	}
	me := c.CommRank(r.ID())
	I := pipeSlice(n, o)
	slots := c.Shared(fmt.Sprintf("pipe-bcast/slots/I=%d", I), c.SocketOf(root), 2*I)
	w := (n + n*(p-1) + 2*I) * memmodel.ElemSize
	hIn := hints(c.Machine(), false, w)
	hOut := hints(c.Machine(), true, w)

	numSlices := ceilDiv(n, I)
	for t := int64(0); t < numSlices; t++ {
		off := t * I
		ln := min64(I, n-off)
		if me == root {
			memcopy.Copy(r, o.Policy, slots, (t%2)*I, buf, off, ln, hIn)
		} else if t > 0 {
			prevOff := (t - 1) * I
			prevLn := min64(I, n-prevOff)
			memcopy.Copy(r, o.Policy, buf, prevOff, slots, ((t-1)%2)*I, prevLn, hOut)
		}
		c.Barrier().Arrive(r.Proc()) // Algorithm 3's Sync-intra-node
	}
	if me != root {
		lastOff := (numSlices - 1) * I
		memcopy.Copy(r, o.Policy, buf, lastOff, slots, ((numSlices-1)%2)*I, n-lastOff, hOut)
	}
	c.Barrier().Arrive(r.Proc())
}

// AllgatherPipelined is Algorithm 4: every rank streams its contribution
// through its own double-buffered slot pair while copying everyone's
// previous slice into its receive buffer. sb has n elements; rb has p*n.
// W = sp + sp^2 + 2pI.
func AllgatherPipelined(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o Options) {
	o = o.withDefaults()
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	I := pipeSlice(n, o)
	slots := c.Shared(fmt.Sprintf("pipe-ag/slots/I=%d", I), 0, p*2*I)
	w := (n*p + n*p*p + 2*p*I) * memmodel.ElemSize
	hIn := hints(c.Machine(), false, w)
	hOut := hints(c.Machine(), true, w)

	copyOutAll := func(t int64) {
		off := t * I
		ln := min64(I, n-off)
		for j := int64(0); j < p; j++ {
			a := (j + me) % p // stagger slot reads
			memcopy.Copy(r, o.Policy, rb, a*n+off, slots, a*2*I+(t%2)*I, ln, hOut)
		}
	}

	numSlices := ceilDiv(n, I)
	for t := int64(0); t < numSlices; t++ {
		off := t * I
		ln := min64(I, n-off)
		memcopy.Copy(r, o.Policy, slots, me*2*I+(t%2)*I, sb, off, ln, hIn)
		if t > 0 {
			copyOutAll(t - 1)
		}
		c.Barrier().Arrive(r.Proc())
	}
	copyOutAll(numSlices - 1)
	c.Barrier().Arrive(r.Proc())
}
