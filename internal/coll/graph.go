package coll

import (
	"fmt"

	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/plan"
	"yhccl/internal/shm"
)

// This file executes internal/plan chunk-level DAGs on the machine — the
// lowering path for synthesized schedules. Where scheduled.go interprets
// the §3.1 reduce-scatter tree formalism with phase barriers, the graph
// executor is dataflow: each rank walks the topologically ordered step
// list, executing its own steps and waiting on per-slot flags. Because
// every slot's producer precedes all of its consumers in the global order,
// and each rank blocks only on earlier steps, execution is deadlock-free by
// induction on step index — for any graph that passes plan.Validate, which
// executable graphs must (the synthesizer validates at construction).
//
// Messages are pipelined in slices of I elements exactly like the
// hand-written collectives: the whole DAG runs once per chunk, with a
// barrier between chunks protecting slot reuse.

// graphLayout maps a graph's abstract blocks onto concrete buffers:
// per-block offsets into the private send/receive buffers and per-block
// lengths (ragged tails shorten the last block; zero-length blocks are
// executed as pure synchronization).
type graphLayout struct {
	sbOff    func(b int32) int64
	rbOff    func(b int32) int64
	blockLen func(b int32) int64
	// maxBlock is the largest block length (the pipeline chunk domain).
	maxBlock int64
	// workSet is the adaptive-copy working-set estimate in bytes.
	workSet int64
}

// execGraph runs one plan.Graph over the communicator. sb/rb interpretation
// is given by the layout; op applies to OpReduce steps.
func execGraph(r *mpi.Rank, c *mpi.Comm, g *plan.Graph,
	sb, rb *memmodel.Buffer, lay graphLayout, op mpi.Op, o Options) {
	o = o.withDefaults()
	me := int32(c.CommRank(r.ID()))
	p := c.Size()
	I := sliceElems(lay.maxBlock, o)

	slots := c.Shared(fmt.Sprintf("plan/slots/%d/I=%d", g.Slots, I), 0, int64(g.Slots)*I)
	slotOff := func(s int32) int64 { return int64(s) * I }
	// One flag per slot, in groups of p (Comm.Flags hands out p at a time).
	flags := make([]*shm.Flag, 0, ((g.Slots+p-1)/p)*p)
	for k := 0; k*p < g.Slots; k++ {
		flags = append(flags, c.Flags(fmt.Sprintf("plan/gf/%d", k))...)
	}
	base := *c.Counter(r, "plan/graph/base")
	hIn := hints(c.Machine(), false, lay.workSet)

	operand := func(opnd plan.Operand, b int32, start int64, epoch uint64) (*memmodel.Buffer, int64) {
		if opnd.Own {
			return sb, lay.sbOff(b) + start
		}
		flags[opnd.Slot].Wait(r.Proc(), r.Core(), epoch)
		return slots, slotOff(opnd.Slot)
	}

	numChunks := ceilDiv(lay.maxBlock, I)
	for chunk := int64(0); chunk < numChunks; chunk++ {
		start := chunk * I
		epoch := uint64(base + chunk + 1)
		for _, st := range g.Steps {
			if st.R != me {
				continue
			}
			ln := min64(I, lay.blockLen(st.Block)-start)
			switch st.Kind {
			case plan.OpCopyIn:
				if ln > 0 {
					memcopy.Copy(r, o.Policy, slots, slotOff(st.Dst), sb, lay.sbOff(st.Block)+start, ln, hIn)
				}
				flags[st.Dst].Set(r.Proc(), epoch)
			case plan.OpReduce:
				aBuf, aOff := operand(st.A, st.Block, start, epoch)
				bBuf, bOff := operand(st.B, st.Block, start, epoch)
				dst, dOff := slots, int64(0)
				if st.Dst == plan.ToRecv {
					dst, dOff = rb, lay.rbOff(st.Block)+start
				} else {
					dOff = slotOff(st.Dst)
				}
				if ln > 0 {
					r.CombineElems(dst, dOff, aBuf, aOff, bBuf, bOff, ln, op, memmodel.Temporal)
				}
				if st.Dst != plan.ToRecv {
					flags[st.Dst].Set(r.Proc(), epoch)
				}
			case plan.OpCopyOut:
				flags[st.Src].Wait(r.Proc(), r.Core(), epoch)
				if ln > 0 {
					memcopy.Copy(r, o.Policy, rb, lay.rbOff(st.Block)+start, slots, slotOff(st.Src), ln, hIn)
				}
			}
		}
		// Slot-reuse protection between pipeline chunks.
		c.Barrier().Arrive(r.Proc())
	}
	*c.Counter(r, "plan/graph/base") = base + numChunks
}

// ReduceScatterGraph executes a synthesized reduce-scatter DAG: sb has p*n
// elements, rank i's rb receives block i (n elements). The graph must be
// compiled for exactly p ranks with p blocks (plan.FromSchedule output).
func ReduceScatterGraph(r *mpi.Rank, c *mpi.Comm, g *plan.Graph,
	sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	p := c.Size()
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	if g.P != p || g.Blocks != p {
		panic(fmt.Sprintf("coll: graph compiled for p=%d/blocks=%d, comm has p=%d", g.P, g.Blocks, p))
	}
	execGraph(r, c, g, sb, rb, graphLayout{
		sbOff:    func(b int32) int64 { return int64(b) * n },
		rbOff:    func(int32) int64 { return 0 },
		blockLen: func(int32) int64 { return n },
		maxBlock: n,
		workSet:  (int64(p)*n + n + int64(p)*n) * memmodel.ElemSize,
	}, op, o)
}

// AllreduceGraph executes a synthesized all-reduce DAG over n-element
// buffers, splitting them into p blocks of ceil(n/p) (ragged tail
// shortened). The graph must be plan.AllreduceFromSchedule output.
func AllreduceGraph(r *mpi.Rank, c *mpi.Comm, g *plan.Graph,
	sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	p := c.Size()
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	if g.P != p || g.Blocks != p {
		panic(fmt.Sprintf("coll: graph compiled for p=%d/blocks=%d, comm has p=%d", g.P, g.Blocks, p))
	}
	nb := ceilDiv(n, int64(p))
	blockLen := func(b int32) int64 {
		ln := n - int64(b)*nb
		if ln > nb {
			ln = nb
		}
		if ln < 0 {
			ln = 0
		}
		return ln
	}
	off := func(b int32) int64 { return int64(b) * nb }
	execGraph(r, c, g, sb, rb, graphLayout{
		sbOff: off, rbOff: off, blockLen: blockLen, maxBlock: nb,
		workSet: (2*n + int64(p)*nb) * memmodel.ElemSize,
	}, op, o)
}

// BcastGraphExec executes a synthesized broadcast DAG over a single
// n-element buffer (plan.BcastGraph output for the right root).
func BcastGraphExec(r *mpi.Rank, c *mpi.Comm, g *plan.Graph,
	buf *memmodel.Buffer, n int64, o Options) {
	if c.Size() == 1 {
		return
	}
	if g.P != c.Size() {
		panic(fmt.Sprintf("coll: graph compiled for p=%d, comm has p=%d", g.P, c.Size()))
	}
	zero := func(int32) int64 { return 0 }
	execGraph(r, c, g, buf, buf, graphLayout{
		sbOff: zero, rbOff: zero,
		blockLen: func(int32) int64 { return n }, maxBlock: n,
		workSet: (n + int64(c.Size())*n) * memmodel.ElemSize,
	}, mpi.Sum, o)
}

// AllgatherGraphExec executes a synthesized all-gather DAG: sb has n
// elements, rb receives p*n (plan.AllgatherGraph output).
func AllgatherGraphExec(r *mpi.Rank, c *mpi.Comm, g *plan.Graph,
	sb, rb *memmodel.Buffer, n int64, o Options) {
	p := c.Size()
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	if g.P != p || g.Blocks != p {
		panic(fmt.Sprintf("coll: graph compiled for p=%d/blocks=%d, comm has p=%d", g.P, g.Blocks, p))
	}
	execGraph(r, c, g, sb, rb, graphLayout{
		sbOff:    func(int32) int64 { return 0 },
		rbOff:    func(b int32) int64 { return int64(b) * n },
		blockLen: func(int32) int64 { return n },
		maxBlock: n,
		workSet:  (n + 2*int64(p)*n) * memmodel.ElemSize,
	}, mpi.Sum, o)
}
