package coll

import (
	"fmt"

	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// This file implements the RG pipelined tree reduction of Jain et al. [34]
// (the shared-memory collective framework the paper calls "RG"), the
// strongest prior shared-memory reduce/all-reduce the paper compares
// against in Figs. 10-11 and 15.
//
// Ranks are grouped into consecutive groups of k+1; the first rank of each
// group is the parent, the rest are its children. Parents regroup at the
// next level until one root remains. The message is pipelined in slices:
// for each slice, children place their value in their shared slot
// (double-buffered), and parents fold their own send-buffer slice plus the
// children's slots into their own slot, level by level. DAV matches
// Table 3's s*p*(5k/(k+1) + 3k/(k+1)^2 + ... ) exactly when p is a power
// of k+1.

// rgSliceBytes is the paper's RG slice size (128 KB, §5.3).
const rgSliceBytes = 128 << 10

// rgChildren returns, for virtual rank v of p ranks with degree k, the
// children lists per level v parents at, and v's parent (-1 for the root,
// virtual rank 0).
func rgChildren(p, k, v int) (children [][]int, parent int) {
	parent = -1
	current := make([]int, p)
	for i := range current {
		current[i] = i
	}
	for len(current) > 1 {
		var next []int
		for g := 0; g < len(current); g += k + 1 {
			hi := g + k + 1
			if hi > len(current) {
				hi = len(current)
			}
			par := current[g]
			kids := current[g+1 : hi]
			if par == v {
				children = append(children, append([]int(nil), kids...))
			}
			for _, kid := range kids {
				if kid == v {
					parent = par
				}
			}
			next = append(next, par)
		}
		if parent != -1 {
			return children, parent
		}
		current = next
	}
	return children, parent
}

// rgRun executes the pipelined tree reduction rooted at comm rank root.
// rootFinal performs the root's last accumulation of each slice: it
// receives the slice index and geometry plus the operand locations
// (ownSlotOff is -1 when the root's slot holds nothing yet, i.e. the tree
// has exactly one reduction op). perSlice, if non-nil, runs on every rank
// after its pipeline work for the slice (the all-reduce copy-out hook).
func rgRun(r *mpi.Rank, c *mpi.Comm, sb *memmodel.Buffer, n int64, op mpi.Op, root int, o Options,
	label string,
	rootFinal func(t, off, ln, ownSlotOff, childSlotOff int64),
	perSlice func(t, off, ln int64)) {

	p := c.Size()
	me := c.CommRank(r.ID())
	v := (me - root + p) % p // virtual rank: root becomes 0
	actual := func(w int) int { return (w + root) % p }
	k := o.RGDegree
	I := min64(int64(rgSliceBytes/memmodel.ElemSize), max64(n, 1))
	children, parent := rgChildren(p, k, v)
	var allKids []int // levels flattened in reduction order
	for _, kids := range children {
		allKids = append(allKids, kids...)
	}
	slots := c.Shared(fmt.Sprintf("%s/slots/I=%d", label, I), 0, int64(p)*2*I)
	flags := c.Flags(label + "/flags")
	base := *c.Counter(r, label+"/base")
	w := (n*int64(p) + n*int64(p) + int64(p)*2*I) * memmodel.ElemSize
	hIn := hints(c.Machine(), false, w)

	slotOf := func(who int, t int64) int64 { return int64(actual(who))*2*I + (t%2)*I }

	numSlices := ceilDiv(n, I)
	for t := int64(0); t < numSlices; t++ {
		off := t * I
		ln := min64(I, n-off)
		if parent >= 0 && t >= 2 {
			// Double-buffering: our slot may be rewritten only after the
			// parent consumed slice t-2 (completed slice t-2 => flag base+t-1).
			flags[actual(parent)].Wait(r.Proc(), r.Core(), uint64(base+t-1))
		}
		if len(allKids) == 0 {
			// Pure child (including ranks whose groups were all
			// singletons): publish own send-buffer slice.
			memcopy.Copy(r, memcopy.Memmove, slots, slotOf(v, t), sb, off, ln, hIn)
		} else {
			ownFilled := false
			for ki, kid := range allKids {
				flags[actual(kid)].Wait(r.Proc(), r.Core(), uint64(base+t+1))
				kidSlot := slotOf(kid, t)
				isRootLast := parent == -1 && ki == len(allKids)-1 && rootFinal != nil
				switch {
				case isRootLast && !ownFilled:
					rootFinal(t, off, ln, -1, kidSlot)
				case isRootLast:
					rootFinal(t, off, ln, slotOf(v, t), kidSlot)
				case !ownFilled:
					r.CombineElems(slots, slotOf(v, t), sb, off, slots, kidSlot, ln, op, memmodel.Temporal)
					ownFilled = true
				default:
					r.AccumulateElems(slots, slotOf(v, t), slots, kidSlot, ln, op, memmodel.Temporal)
				}
			}
		}
		flags[me].Set(r.Proc(), uint64(base+t+1))
		if perSlice != nil {
			perSlice(t, off, ln)
		}
	}
	c.Barrier().Arrive(r.Proc())
	*c.Counter(r, label+"/base") = base + numSlices
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ReduceRG is the RG pipelined tree reduce [34]: the root's final
// accumulation of each slice is written straight into its rb.
func ReduceRG(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, o Options) {
	o = o.withDefaults()
	if c.Size() == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	rgReduceImpl(r, c, sb, rb, n, op, root, o, "rg-red")
}

// rgReduceImpl wires rootFinal to write rb (shared by reduce and the
// reduction phase of all-reduce when the destination differs).
func rgReduceImpl(r *mpi.Rank, c *mpi.Comm, sb, dst *memmodel.Buffer, n int64, op mpi.Op, root int, o Options, label string) {
	me := c.CommRank(r.ID())
	I := min64(int64(rgSliceBytes/memmodel.ElemSize), max64(n, 1))
	slots := c.Shared(fmt.Sprintf("%s/slots/I=%d", label, I), 0, int64(c.Size())*2*I)
	var final func(t, off, ln, ownSlotOff, childSlotOff int64)
	if me == root {
		final = func(t, off, ln, ownSlotOff, childSlotOff int64) {
			if ownSlotOff < 0 {
				r.CombineElems(dst, off, sb, off, slots, childSlotOff, ln, op, memmodel.Temporal)
			} else {
				r.CombineElems(dst, off, slots, ownSlotOff, slots, childSlotOff, ln, op, memmodel.Temporal)
			}
		}
	}
	rgRun(r, c, sb, n, op, root, o, label, final, nil)
}

// AllreduceRG is the RG pipelined tree all-reduce [34]: tree reduction
// whose root writes each finished slice into a double-buffered result
// area; every rank pipelines the copy-out. DAV = reduce + 2sp (Table 2).
func AllreduceRG(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	o = o.withDefaults()
	p := c.Size()
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	me := c.CommRank(r.ID())
	const root = 0
	label := "rg-ar"
	I := min64(int64(rgSliceBytes/memmodel.ElemSize), max64(n, 1))
	res := c.Shared(fmt.Sprintf("%s/res/I=%d", label, I), 0, 2*I)
	slots := c.Shared(fmt.Sprintf("%s/slots/I=%d", label, I), 0, int64(p)*2*I)
	rootFlag := c.Flags(label + "/rootflag")[root]
	consumed := c.Flags(label + "/consumed")[root] // single shared counter
	base := *c.Counter(r, label+"/arbase")
	cbase := *c.Counter(r, label+"/arcbase")
	w := (n*int64(p) + n*int64(p) + int64(p)*2*I) * memmodel.ElemSize
	hOut := hints(c.Machine(), true, w)

	var final func(t, off, ln, ownSlotOff, childSlotOff int64)
	if me == root {
		final = func(t, off, ln, ownSlotOff, childSlotOff int64) {
			if t >= 2 {
				// Result double-buffer: wait until every rank consumed
				// slice t-2 (p increments per slice).
				consumed.Wait(r.Proc(), r.Core(), uint64(cbase+(t-1)*int64(p)))
			}
			resOff := (t % 2) * I
			if ownSlotOff < 0 {
				r.CombineElems(res, resOff, sb, off, slots, childSlotOff, ln, op, memmodel.Temporal)
			} else {
				r.CombineElems(res, resOff, slots, ownSlotOff, slots, childSlotOff, ln, op, memmodel.Temporal)
			}
			rootFlag.Set(r.Proc(), uint64(base+t+1))
		}
	}
	rgRun(r, c, sb, n, op, root, o, label, final, func(t, off, ln int64) {
		// Every rank (including the root) copies the finished slice out.
		rootFlag.Wait(r.Proc(), r.Core(), uint64(base+t+1))
		memcopy.Copy(r, o.Policy, rb, off, res, (t%2)*I, ln, hOut)
		consumed.Incr(r.Proc())
	})
	*c.Counter(r, label+"/arbase") = base + ceilDiv(n, I)
	*c.Counter(r, label+"/arcbase") = cbase + ceilDiv(n, I)*int64(p)
}
