package coll

import "fmt"

// Resilient dispatch: every collective has a fallback chain — the primary
// algorithm followed by progressively more conservative variants — walked by
// the recovery supervisor when the primary keeps failing under faults. The
// fallbacks favor tree/two-level shapes over rings: a ring couples every
// rank to its neighbor at every step, so one straggler stretches all p
// pipeline stages, while a two-level or binomial shape pays the slow rank's
// cost once, in a single leaf contribution.

// fallbacks lists the straggler-tolerant tail of each collective's chain,
// most preferred first. Every entry must exist in the matching registry
// (checked by tests).
var fallbacks = map[string][]string{
	"allreduce":      {"two-level", "ring"},
	"reduce-scatter": {"ring"},
	"reduce":         {"two-level"},
	"bcast":          {"binomial"},
	"allgather":      {"ring"},
}

// FallbackChain returns the algorithm sequence resilient dispatch walks for
// the collective: the primary first, then the registered fallbacks with any
// duplicate of the primary removed. Unknown collectives get a chain of just
// the primary.
func FallbackChain(collective, primary string) []string {
	chain := []string{primary}
	for _, name := range fallbacks[collective] {
		if name != primary {
			chain = append(chain, name)
		}
	}
	return chain
}

// MaxFallbackDepth returns the largest meaningful Options.FallbackDepth for
// the collective/primary pair (0 when there is nothing to fall back to).
func MaxFallbackDepth(collective, primary string) int {
	return len(FallbackChain(collective, primary)) - 1
}

// resolveChain picks the chain entry at o.FallbackDepth, clamping past-end
// depths to the last (most conservative) algorithm.
func resolveChain(collective, primary string, o Options) string {
	chain := FallbackChain(collective, primary)
	d := o.FallbackDepth
	if d < 0 {
		d = 0
	}
	if d >= len(chain) {
		d = len(chain) - 1
	}
	return chain[d]
}

// ResilientAR resolves the all-reduce to run at o.FallbackDepth along
// primary's fallback chain, returning the resolved name and an instrumented
// implementation. Depth 0 is the primary itself, so a clean run dispatches
// exactly what a direct registry lookup would.
func ResilientAR(primary string, o Options) (string, ARFunc, error) {
	name := resolveChain("allreduce", primary, o)
	f, err := Lookup(AllreduceAlgos, name)
	if err != nil {
		return name, nil, fmt.Errorf("resilient allreduce: %w", err)
	}
	return name, InstrumentAR(name, f), nil
}

// ResilientRS is ResilientAR for reduce-scatter.
func ResilientRS(primary string, o Options) (string, RSFunc, error) {
	name := resolveChain("reduce-scatter", primary, o)
	f, err := Lookup(ReduceScatterAlgos, name)
	if err != nil {
		return name, nil, fmt.Errorf("resilient reduce-scatter: %w", err)
	}
	return name, InstrumentRS(name, f), nil
}

// ResilientReduce is ResilientAR for rooted reduce.
func ResilientReduce(primary string, o Options) (string, ReduceFunc, error) {
	name := resolveChain("reduce", primary, o)
	f, err := Lookup(ReduceAlgos, name)
	if err != nil {
		return name, nil, fmt.Errorf("resilient reduce: %w", err)
	}
	return name, InstrumentReduce(name, f), nil
}

// ResilientBcast is ResilientAR for broadcast.
func ResilientBcast(primary string, o Options) (string, BcastFunc, error) {
	name := resolveChain("bcast", primary, o)
	f, err := Lookup(BcastAlgos, name)
	if err != nil {
		return name, nil, fmt.Errorf("resilient bcast: %w", err)
	}
	return name, InstrumentBcast(name, f), nil
}

// ResilientAG is ResilientAR for all-gather.
func ResilientAG(primary string, o Options) (string, AGFunc, error) {
	name := resolveChain("allgather", primary, o)
	f, err := Lookup(AllgatherAlgos, name)
	if err != nil {
		return name, nil, fmt.Errorf("resilient allgather: %w", err)
	}
	return name, InstrumentAG(name, f), nil
}

// SumBasesSalted is SumBases offset by a retry salt: attempt k fills rank
// r's buffer with base r*1000 + k*17. Salt 0 is exactly SumBases, keeping
// the clean path bit-identical; a non-zero salt gives each retry a fresh
// fill pattern, so a validation pass on the retried run cannot be satisfied
// by data left over from the corrupted attempt. All values stay small
// integers, preserving the exact-float64 property of the validators.
func SumBasesSalted(p, salt int) []float64 {
	bases := make([]float64, p)
	for i := range bases {
		bases[i] = float64(i*1000 + salt*17)
	}
	return bases
}
