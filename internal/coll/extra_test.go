package coll

import (
	"testing"

	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

func runGather(t *testing.T, p int, n int64, root int, alg GatherFunc) {
	t.Helper()
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", int64(p)*n)
		r.FillPattern(sb, float64(r.ID()*1000))
		alg(r, r.World(), sb, rb, n, root, Options{})
		if r.ID() == root {
			for b := 0; b < p; b++ {
				for j := int64(0); j < n; j += 29 {
					want := float64(b*1000) + float64(j)
					if got := rb.Slice(int64(b)*n+j, 1)[0]; got != want {
						t.Errorf("gather root rb[%d][%d] = %v, want %v", b, j, got, want)
						return
					}
				}
			}
		}
	})
}

func TestGatherAlgorithms(t *testing.T) {
	for name, alg := range GatherAlgos {
		alg := alg
		t.Run(name, func(t *testing.T) {
			runGather(t, 8, 500, 0, alg)
			runGather(t, 5, 333, 3, alg)
			runGather(t, 1, 100, 0, alg)
		})
	}
}

func runScatter(t *testing.T, p int, n int64, root int, alg ScatterFunc) {
	t.Helper()
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", int64(p)*n)
		rb := r.NewBuffer("rb", n)
		if r.ID() == root {
			r.FillPattern(sb, 0) // block b element j = b*n + j
		}
		alg(r, r.World(), sb, rb, n, root, Options{})
		me := int64(r.ID())
		for j := int64(0); j < n; j += 23 {
			want := float64(me*n + j)
			if got := rb.Slice(j, 1)[0]; got != want {
				t.Errorf("scatter rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
}

func TestScatterAlgorithms(t *testing.T) {
	for name, alg := range ScatterAlgos {
		alg := alg
		t.Run(name, func(t *testing.T) {
			runScatter(t, 8, 500, 0, alg)
			runScatter(t, 4, 250, 2, alg)
			runScatter(t, 1, 64, 0, alg)
		})
	}
}

func runAlltoall(t *testing.T, p int, n int64, alg AlltoallFunc) {
	t.Helper()
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", int64(p)*n)
		rb := r.NewBuffer("rb", int64(p)*n)
		// sb block j element i = me*1e6 + j*1000 + i%997
		data := sb.Slice(0, int64(p)*n)
		for j := 0; j < p; j++ {
			for i := int64(0); i < n; i++ {
				data[int64(j)*n+i] = float64(r.ID())*1e6 + float64(j)*1000 + float64(i%997)
			}
		}
		alg(r, r.World(), sb, rb, n, Options{})
		// rb block j must hold rank j's block me.
		for j := 0; j < p; j++ {
			for i := int64(0); i < n; i += 31 {
				want := float64(j)*1e6 + float64(r.ID())*1000 + float64(i%997)
				if got := rb.Slice(int64(j)*n+i, 1)[0]; got != want {
					t.Errorf("alltoall rank %d rb[%d][%d] = %v, want %v", r.ID(), j, i, got, want)
					return
				}
			}
		}
	})
}

func TestAlltoallAlgorithms(t *testing.T) {
	for name, alg := range AlltoallAlgos {
		alg := alg
		t.Run(name, func(t *testing.T) {
			runAlltoall(t, 8, 300, alg)
			runAlltoall(t, 3, 100, alg)
			runAlltoall(t, 1, 50, alg)
		})
	}
}

func TestAlltoallMortonLargerChunksGrid(t *testing.T) {
	// Multi-chunk grid (n larger than one slice) exercises the Z-curve.
	runAlltoall(t, 4, 100000, AlltoallMorton)
}

func TestMortonDecode(t *testing.T) {
	cases := []struct{ z, x, y int64 }{
		{0, 0, 0}, {1, 1, 0}, {2, 0, 1}, {3, 1, 1},
		{4, 2, 0}, {8, 0, 2}, {12, 2, 2}, {63, 7, 7},
	}
	for _, c := range cases {
		x, y := mortonDecode(c.z)
		if x != c.x || y != c.y {
			t.Errorf("mortonDecode(%d) = (%d,%d), want (%d,%d)", c.z, x, y, c.x, c.y)
		}
	}
}

func TestMortonCoversGrid(t *testing.T) {
	// Property: the z sweep visits every (x,y) of a 2^k grid exactly once.
	seen := map[[2]int64]bool{}
	for z := int64(0); z < 64; z++ {
		x, y := mortonDecode(z)
		key := [2]int64{x, y}
		if seen[key] {
			t.Fatalf("(%d,%d) visited twice", x, y)
		}
		seen[key] = true
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d cells, want 64", len(seen))
	}
}

func TestAlltoallDAVSymmetric(t *testing.T) {
	// Both orderings move identical logical volume.
	p := 4
	n := int64(4096)
	dav := func(alg AlltoallFunc) int64 {
		m := mpi.NewMachine(topo.NodeA(), p, true)
		m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", int64(p)*n)
			rb := r.NewBuffer("rb", int64(p)*n)
			alg(r, r.World(), sb, rb, n, Options{})
		})
		return m.Model.Counters().DAV()
	}
	if a, b := dav(AlltoallShm), dav(AlltoallMorton); a != b {
		t.Errorf("orderings moved different volumes: %d vs %d", a, b)
	}
}
