package coll

import (
	"fmt"

	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// This file implements the shared-memory and send/recv baseline reduction
// algorithms the paper compares against in Figs. 9-11: DPML [13] (data
// partitioning multi-leader parallel reduction), the Ring algorithm [45]
// and Rabenseifner's recursive halving/doubling [50]. All baselines use
// the threshold-based memmove copy (the paper's "current implementations"),
// not the adaptive copy — that contrast is the point of Figs. 12-14.

// dpmlSliceElems is the paper's best DPML reduction granularity (8 KB,
// §5.3).
const dpmlSliceElems = 8 << 10 / memmodel.ElemSize

// dpmlCopyIn copies each rank's whole send buffer into its shared segment.
func dpmlCopyIn(r *mpi.Rank, c *mpi.Comm, sb *memmodel.Buffer, total int64, label string) (segs []*memmodel.Buffer, res *memmodel.Buffer) {
	p := c.Size()
	me := c.CommRank(r.ID())
	segs = make([]*memmodel.Buffer, p)
	for k := 0; k < p; k++ {
		segs[k] = c.Shared(fmt.Sprintf("%s/seg%d/n=%d", label, k, total), c.SocketOf(k), total)
	}
	res = c.Shared(fmt.Sprintf("%s/res/n=%d", label, total), 0, total)
	for off := int64(0); off < total; off += dpmlSliceElems {
		ln := min64(dpmlSliceElems, total-off)
		memcopy.Copy(r, memcopy.Memmove, segs[me], off, sb, off, ln, memcopy.Hints{})
	}
	return segs, res
}

// dpmlReduceBlock reduces [lo, lo+ln) across all segments into res.
func dpmlReduceBlock(r *mpi.Rank, segs []*memmodel.Buffer, res *memmodel.Buffer, lo, ln int64, op mpi.Op) {
	if ln <= 0 {
		return
	}
	for off := lo; off < lo+ln; off += dpmlSliceElems {
		k := min64(dpmlSliceElems, lo+ln-off)
		if len(segs) == 1 {
			r.CopyElems(res, off, segs[0], off, k, memmodel.Temporal)
			continue
		}
		r.CombineElems(res, off, segs[0], off, segs[1], off, k, op, memmodel.Temporal)
		for s := 2; s < len(segs); s++ {
			r.AccumulateElems(res, off, segs[s], off, k, op, memmodel.Temporal)
		}
	}
}

// ReduceScatterDPML is the DPML parallel reduction [13] shaped as a
// reduce-scatter: every rank copies its whole send buffer (p*n elements)
// into shared memory, rank b reduces block b, then copies it out.
// DAV s*(5p-1) (Table 1).
func ReduceScatterDPML(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, _ Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	total := p * n
	segs, res := dpmlCopyIn(r, c, sb, total, "dpml-rs")
	c.Barrier().Arrive(r.Proc())
	dpmlReduceBlock(r, segs, res, me*n, n, op)
	c.Barrier().Arrive(r.Proc())
	memcopy.Copy(r, memcopy.Memmove, rb, 0, res, me*n, n, memcopy.Hints{})
}

// AllreduceDPML is DPML shaped as an all-reduce: parallel block reduction
// plus full copy-out by every rank. DAV s*(7p-3) (Table 2 modulo the ±2s
// accounting note in internal/dav).
func AllreduceDPML(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, _ Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	bn := ceilDiv(n, p)
	segs, res := dpmlCopyIn(r, c, sb, n, "dpml-ar")
	c.Barrier().Arrive(r.Proc())
	lo := me * bn
	if lo < n {
		dpmlReduceBlock(r, segs, res, lo, min64(bn, n-lo), op)
	}
	c.Barrier().Arrive(r.Proc())
	for off := int64(0); off < n; off += dpmlSliceElems {
		ln := min64(dpmlSliceElems, n-off)
		memcopy.Copy(r, memcopy.Memmove, rb, off, res, off, ln, memcopy.Hints{})
	}
}

// ReduceDPML is DPML shaped as a rooted reduce. DAV s*(5p-1).
func ReduceDPML(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, _ Options) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	bn := ceilDiv(n, p)
	segs, res := dpmlCopyIn(r, c, sb, n, "dpml-red")
	c.Barrier().Arrive(r.Proc())
	lo := me * bn
	if lo < n {
		dpmlReduceBlock(r, segs, res, lo, min64(bn, n-lo), op)
	}
	c.Barrier().Arrive(r.Proc())
	if int(me) == root {
		for off := int64(0); off < n; off += dpmlSliceElems {
			ln := min64(dpmlSliceElems, n-off)
			memcopy.Copy(r, memcopy.Memmove, rb, off, res, off, ln, memcopy.Hints{})
		}
	}
}

// ReduceScatterRing is the bandwidth-optimal ring reduce-scatter [45] over
// the two-copy shared-memory transport: p-1 steps of
// send-partial/receive-combine. DAV 5*s*(p-1) (Table 1).
//
// At step k, rank me sends the partial it accumulated for block
// (me-k+1) mod p and fuses the incoming partial of block (me-k) mod p...
// indices are arranged so the final combine (step p-1) produces block `me`
// directly into rb.
func ReduceScatterRing(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, _ Options) {
	p := c.Size()
	me := c.CommRank(r.ID())
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	next := (me + 1) % p
	prev := (me + p - 1) % p
	scratch := r.PersistentBuffer("ring-rs/scratch", n)
	for k := 1; k < p; k++ {
		sendB := int64((me + p - k) % p)
		recvB := int64((me + p - 1 - k) % p)
		if k == 1 {
			r.Send(c, next, sb, sendB*n, n)
		} else {
			r.Send(c, next, scratch, 0, n)
		}
		if k == p-1 {
			r.RecvCombine(c, prev, rb, 0, sb, recvB*n, n, op)
		} else {
			r.RecvCombine(c, prev, scratch, 0, sb, recvB*n, n, op)
		}
	}
}

// gatherBlocksViaShm completes an all-reduce whose reduce-scatter phase
// left block `me` (bn elements, ragged tail) in place in rb[me*bn..]:
// every rank publishes its block in a node shared segment and copies the
// other p-1 blocks out. This is how shared-memory MPIs implement the
// terminal all-gather; it gives the ring/Rabenseifner all-reduce their
// 7s(p-1)+2s DAV.
func gatherBlocksViaShm(r *mpi.Rank, c *mpi.Comm, rb *memmodel.Buffer, n, bn int64, label string) {
	p := int64(c.Size())
	me := int64(c.CommRank(r.ID()))
	seg := c.Shared(fmt.Sprintf("%s/gather/n=%d", label, n), 0, bn*p)
	lo := me * bn
	if lo < n {
		memcopy.Copy(r, memcopy.Memmove, seg, lo, rb, lo, min64(bn, n-lo), memcopy.Hints{})
	}
	c.Barrier().Arrive(r.Proc())
	for j := int64(1); j < p; j++ {
		b := (me + j) % p
		blo := b * bn
		if blo >= n {
			continue
		}
		memcopy.Copy(r, memcopy.Memmove, rb, blo, seg, blo, min64(bn, n-blo), memcopy.Hints{})
	}
	c.Barrier().Arrive(r.Proc())
}

// AllreduceRing is ring reduce-scatter plus the shared-memory block
// gather. DAV 7s(p-1)+2s (dav.RingAllreduceImpl).
func AllreduceRing(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	p := c.Size()
	me := c.CommRank(r.ID())
	if p == 1 {
		r.CopyElems(rb, 0, sb, 0, n, memmodel.Temporal)
		return
	}
	bn := ceilDiv(n, int64(p))
	next := (me + 1) % p
	prev := (me + p - 1) % p
	scratch := r.PersistentBuffer("ring-ar/scratch", bn)
	blockLen := func(b int64) int64 {
		lo := b * bn
		if lo >= n {
			return 0
		}
		return min64(bn, n-lo)
	}
	for k := 1; k < p; k++ {
		sendB := int64((me + p - k) % p)
		recvB := int64((me + p - 1 - k) % p)
		sn, rn := blockLen(sendB), blockLen(recvB)
		if sn > 0 {
			if k == 1 {
				r.Send(c, next, sb, sendB*bn, sn)
			} else {
				r.Send(c, next, scratch, 0, sn)
			}
		}
		if rn > 0 {
			if k == p-1 {
				// The final combine produces block `me` in place in rb.
				r.RecvCombine(c, prev, rb, recvB*bn, sb, recvB*bn, rn, op)
			} else {
				r.RecvCombine(c, prev, scratch, 0, sb, recvB*bn, rn, op)
			}
		}
	}
	gatherBlocksViaShm(r, c, rb, n, bn, "ring-ar")
}

// ReduceScatterRabenseifner is recursive halving [50] over the two-copy
// transport. Requires power-of-two p (falls back to ring otherwise).
// DAV 5s(p-1) (Table 1).
func ReduceScatterRabenseifner(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	p := c.Size()
	if p&(p-1) != 0 || p == 1 {
		ReduceScatterRing(r, c, sb, rb, n, op, o)
		return
	}
	me := c.CommRank(r.ID())
	scratch := r.PersistentBuffer("rab-rs/scratch", int64(p)*n)
	rabHalving(r, c, sb, scratch, rb, 0, n, n, me, op)
}

// rabHalving runs the recursive-halving reduce-scatter: block b has bn
// elements (blockLen gives ragged lengths against total n*p... the caller
// passes blockElems and the true per-block length function is uniform for
// reduce-scatter and ragged for all-reduce). The final combine for block
// `me` is written to out[outOff].
func rabHalving(r *mpi.Rank, c *mpi.Comm, sb, scratch, out *memmodel.Buffer, outOff int64,
	blockElems, lastLen int64, me int, op mpi.Op) {
	p := c.Size()
	lo, hi := 0, p
	first := true
	bn := blockElems
	blockLen := func(b int) int64 {
		if b == p-1 {
			return lastLen
		}
		return bn
	}
	rangeLen := func(a, b int) int64 {
		var t int64
		for x := a; x < b; x++ {
			t += blockLen(x)
		}
		return t
	}
	for half := p / 2; half >= 1; half /= 2 {
		mid := lo + half
		var myLo, myHi, otLo, otHi, partner int
		if me < mid {
			myLo, myHi, otLo, otHi, partner = lo, mid, mid, hi, me+half
		} else {
			myLo, myHi, otLo, otHi, partner = mid, hi, lo, mid, me-half
		}
		src := scratch
		if first {
			src = sb
		}
		if sn := rangeLen(otLo, otHi); sn > 0 {
			r.Send(c, partner, src, int64(otLo)*bn, sn)
		}
		rn := rangeLen(myLo, myHi)
		if rn > 0 {
			other := scratch
			if first {
				other = sb
			}
			if half == 1 {
				r.RecvCombine(c, partner, out, outOff, other, int64(myLo)*bn, rn, op)
			} else if first {
				r.RecvCombine(c, partner, scratch, int64(myLo)*bn, sb, int64(myLo)*bn, rn, op)
			} else {
				r.RecvReduce(c, partner, scratch, int64(myLo)*bn, rn, op)
			}
		}
		lo, hi = myLo, myHi
		first = false
	}
}

// AllreduceRabenseifner is recursive halving plus the shared-memory block
// gather. DAV 7s(p-1)+2s for power-of-two p (falls back to ring).
func AllreduceRabenseifner(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	p := c.Size()
	if p&(p-1) != 0 || p == 1 {
		AllreduceRing(r, c, sb, rb, n, op, o)
		return
	}
	me := c.CommRank(r.ID())
	bn := ceilDiv(n, int64(p))
	lastLen := n - bn*int64(p-1) // may be <= 0 for tiny n
	if lastLen < 0 {
		// Tiny messages where blocks vanish entirely: fall back to ring,
		// which handles empty blocks.
		AllreduceRing(r, c, sb, rb, n, op, o)
		return
	}
	scratch := r.PersistentBuffer("rab-ar/scratch", bn*int64(p))
	rabHalving(r, c, sb, scratch, rb, int64(me)*bn, bn, lastLen, me, op)
	gatherBlocksViaShm(r, c, rb, n, bn, "rab-ar")
}

// AllgatherRing is the classic ring all-gather over the two-copy
// transport: rank me contributes sb (n elements) and assembles p*n in rb.
func AllgatherRing(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, _ Options) {
	p := c.Size()
	me := c.CommRank(r.ID())
	r.CopyElems(rb, int64(me)*n, sb, 0, n, memmodel.Temporal)
	if p == 1 {
		return
	}
	next := (me + 1) % p
	prev := (me + p - 1) % p
	for k := 0; k < p-1; k++ {
		sendB := int64((me + p - k) % p)
		recvB := int64((me + p - 1 - k) % p)
		r.Send(c, next, rb, sendB*n, n)
		r.Recv(c, prev, rb, recvB*n, n, memmodel.Temporal)
	}
}
