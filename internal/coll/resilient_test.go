package coll

import (
	"reflect"
	"testing"
)

func TestFallbackChainsResolveInRegistries(t *testing.T) {
	check := func(collective string, names []string, lookup func(string) bool) {
		for _, name := range names {
			if !lookup(name) {
				t.Errorf("%s fallback %q not in registry", collective, name)
			}
		}
	}
	check("allreduce", fallbacks["allreduce"], func(n string) bool { _, ok := AllreduceAlgos[n]; return ok })
	check("reduce-scatter", fallbacks["reduce-scatter"], func(n string) bool { _, ok := ReduceScatterAlgos[n]; return ok })
	check("reduce", fallbacks["reduce"], func(n string) bool { _, ok := ReduceAlgos[n]; return ok })
	check("bcast", fallbacks["bcast"], func(n string) bool { _, ok := BcastAlgos[n]; return ok })
	check("allgather", fallbacks["allgather"], func(n string) bool { _, ok := AllgatherAlgos[n]; return ok })
}

func TestFallbackChainShape(t *testing.T) {
	if got := FallbackChain("allreduce", "yhccl"); !reflect.DeepEqual(got, []string{"yhccl", "two-level", "ring"}) {
		t.Errorf("chain = %v", got)
	}
	// Primary duplicated in the fallback list is removed.
	if got := FallbackChain("allreduce", "ring"); !reflect.DeepEqual(got, []string{"ring", "two-level"}) {
		t.Errorf("chain = %v", got)
	}
	// Unknown collective: chain of just the primary.
	if got := FallbackChain("alltoall", "x"); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("chain = %v", got)
	}
	if MaxFallbackDepth("allreduce", "yhccl") != 2 {
		t.Errorf("max depth = %d", MaxFallbackDepth("allreduce", "yhccl"))
	}
}

func TestResilientDispatchByDepth(t *testing.T) {
	cases := []struct {
		depth int
		want  string
	}{
		{0, "yhccl"},
		{1, "two-level"},
		{2, "ring"},
		{9, "ring"}, // clamped to the most conservative
		{-1, "yhccl"},
	}
	for _, c := range cases {
		name, f, err := ResilientAR("yhccl", Options{FallbackDepth: c.depth})
		if err != nil {
			t.Fatalf("depth %d: %v", c.depth, err)
		}
		if name != c.want {
			t.Errorf("depth %d resolved %q, want %q", c.depth, name, c.want)
		}
		if f == nil {
			t.Errorf("depth %d: nil implementation", c.depth)
		}
	}
}

func TestResilientDispatchUnknownPrimary(t *testing.T) {
	if _, _, err := ResilientAR("nope", Options{}); err == nil {
		t.Error("unknown primary accepted")
	}
	// But a bad primary with depth pointing at a valid fallback still works:
	// the chain entry at that depth is what gets looked up.
	name, _, err := ResilientBcast("nope", Options{FallbackDepth: 1})
	if err != nil || name != "binomial" {
		t.Errorf("depth-1 fallback for bad primary: name=%q err=%v", name, err)
	}
}

func TestSumBasesSalted(t *testing.T) {
	if !reflect.DeepEqual(SumBasesSalted(4, 0), SumBases(4)) {
		t.Error("salt 0 must reproduce SumBases exactly")
	}
	s1 := SumBasesSalted(4, 1)
	for i, b := range SumBases(4) {
		if s1[i] == b {
			t.Errorf("salt 1 base %d unchanged", i)
		}
		if s1[i] != b+17 {
			t.Errorf("salt 1 base %d = %v, want %v", i, s1[i], b+17)
		}
	}
}
