package coll

import (
	"testing"

	"yhccl/internal/dav"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// fillRankPattern writes value base+rank into every element of b so that a
// sum-reduction over p ranks yields p*base + p(p-1)/2 ... we use simpler:
// element i of rank k = k + i, so sum over ranks = p*i + p(p-1)/2.
func expectSum(p int, i int64) float64 {
	return float64(p)*float64(i) + float64(p*(p-1))/2
}

// runRS runs a reduce-scatter algorithm on a real machine and verifies the
// result, returning the machine for counter inspection.
func runRS(t *testing.T, node *topo.Node, p int, n int64, o Options,
	alg func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options)) *mpi.Machine {
	t.Helper()
	m := mpi.NewMachine(node, p, true)
	m.MustRun(func(r *mpi.Rank) {
		c := r.World()
		sb := r.NewBuffer("sb", int64(p)*n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		alg(r, c, sb, rb, n, mpi.Sum, o)
		// Block `me` of the sum: element j of rb is the sum over ranks k of
		// (k + me*n + j).
		for j := int64(0); j < n; j += 7 {
			want := expectSum(p, int64(r.ID())*n+j)
			if got := rb.Slice(j, 1)[0]; got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
	return m
}

func TestReduceScatterMACorrect(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		runRS(t, topo.NodeA(), p, 1000, Options{}, ReduceScatterMA)
	}
}

func TestReduceScatterMAMultiChunk(t *testing.T) {
	// Slice smaller than the block forces multiple passes per invocation.
	o := Options{SliceMaxBytes: 512} // 64-element slices
	runRS(t, topo.NodeA(), 4, 1000, o, ReduceScatterMA)
}

func TestReduceScatterMADAVMatchesTable1(t *testing.T) {
	// Table 1: YHCCL reduce-scatter DAV = s*(3p-1), copy volume V = 2s.
	p := 8
	n := int64(4096)
	m := runRS(t, topo.NodeA(), p, n, Options{}, ReduceScatterMA)
	s := int64(p) * n * memmodel.ElemSize
	c := m.Model.Counters()
	if got, want := c.DAV(), dav.MAReduceScatter(s, p); got != want {
		t.Errorf("DAV = %d, want %d (s*(3p-1))", got, want)
	}
	if got, want := c.CopyVolume, 2*s; got != want {
		t.Errorf("copy volume V = %d, want %d (the proven optimum 2s)", got, want)
	}
}

func TestReduceScatterMARepeatedInvocations(t *testing.T) {
	// Flag epochs must survive repeated calls on the same communicator.
	p := 4
	n := int64(500)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		c := r.World()
		sb := r.NewBuffer("sb", int64(p)*n)
		rb := r.NewBuffer("rb", n)
		for iter := 0; iter < 3; iter++ {
			r.FillPattern(sb, float64(r.ID()+iter))
			ReduceScatterMA(r, c, sb, rb, n, mpi.Sum, Options{})
			for j := int64(0); j < n; j += 13 {
				want := expectSum(p, int64(r.ID())*n+j) + float64(p*iter)
				if got := rb.Slice(j, 1)[0]; got != want {
					t.Fatalf("iter %d rank %d rb[%d] = %v, want %v", iter, r.ID(), j, got, want)
				}
			}
		}
	})
}

func TestAllreduceMACorrect(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		for _, n := range []int64{1, 7, 1000, 4096} {
			m := mpi.NewMachine(topo.NodeA(), p, true)
			m.MustRun(func(r *mpi.Rank) {
				sb := r.NewBuffer("sb", n)
				rb := r.NewBuffer("rb", n)
				r.FillPattern(sb, float64(r.ID()))
				AllreduceMA(r, r.World(), sb, rb, n, mpi.Sum, Options{})
				for j := int64(0); j < n; j += 11 {
					if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
						t.Errorf("p=%d n=%d rank %d rb[%d] = %v, want %v", p, n, r.ID(), j, got, want)
						return
					}
				}
			})
		}
	}
}

func TestAllreduceMADAVMatchesTable2(t *testing.T) {
	// Table 2: YHCCL (MA reduction) all-reduce DAV = s*(5p-1). Block-even
	// sizes only (ragged tails change the constant slightly).
	p := 8
	n := int64(8192) // divisible by p
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		AllreduceMA(r, r.World(), sb, rb, n, mpi.Sum, Options{})
	})
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.MAAllreduce(s, p); got != want {
		t.Errorf("DAV = %d, want %d (s*(5p-1))", got, want)
	}
}

func TestAllreduceMAMaxOp(t *testing.T) {
	p := 4
	n := int64(100)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()*1000))
		AllreduceMA(r, r.World(), sb, rb, n, mpi.Max, Options{})
		for j := int64(0); j < n; j++ {
			want := float64((p-1)*1000) + float64(j)
			if got := rb.Slice(j, 1)[0]; got != want {
				t.Fatalf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
			}
		}
	})
}

func TestReduceMACorrect(t *testing.T) {
	for _, root := range []int{0, 2} {
		p := 4
		n := int64(900)
		m := mpi.NewMachine(topo.NodeA(), p, true)
		m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, float64(r.ID()))
			ReduceMA(r, r.World(), sb, rb, n, mpi.Sum, root, Options{})
			if r.ID() == root {
				for j := int64(0); j < n; j += 17 {
					if got, want := rb.Slice(j, 1)[0], expectSum(p, j); got != want {
						t.Errorf("root rb[%d] = %v, want %v", j, got, want)
						return
					}
				}
			}
		})
	}
}

func TestReduceMADAVMatchesTable3(t *testing.T) {
	p := 8
	n := int64(8192)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		ReduceMA(r, r.World(), sb, rb, n, mpi.Sum, 0, Options{})
	})
	s := n * memmodel.ElemSize
	if got, want := m.Model.Counters().DAV(), dav.MAReduce(s, p); got != want {
		t.Errorf("DAV = %d, want %d (s*(3p+1))", got, want)
	}
}

func TestMADeterministicTiming(t *testing.T) {
	run := func() float64 {
		m := mpi.NewMachine(topo.NodeA(), 8, false)
		return m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", 1<<16)
			rb := r.NewBuffer("rb", 1<<16)
			AllreduceMA(r, r.World(), sb, rb, 1<<16, mpi.Sum, Options{})
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
