package coll

import (
	"testing"

	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// expectPrefix is the inclusive prefix sum of (k + j) over ranks k = 0..me.
func expectPrefix(me int, j int64) float64 {
	return float64(me+1)*float64(j) + float64(me*(me+1))/2
}

func runScan(t *testing.T, p int, n int64, o Options, alg ScanFunc) *mpi.Machine {
	t.Helper()
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		alg(r, r.World(), sb, rb, n, mpi.Sum, o)
		for j := int64(0); j < n; j += 13 {
			want := expectPrefix(r.ID(), j)
			if got := rb.Slice(j, 1)[0]; got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
	return m
}

func TestScanAlgorithmsCorrect(t *testing.T) {
	for name, alg := range ScanAlgos {
		alg := alg
		t.Run(name, func(t *testing.T) {
			for _, p := range []int{1, 2, 3, 8} {
				runScan(t, p, 777, Options{}, alg)
			}
		})
	}
}

func TestScanChainMultiSlice(t *testing.T) {
	// Small slices force pipelining through the double-buffered slots.
	runScan(t, 4, 5000, Options{SliceMaxBytes: 1024}, ScanChain)
}

func TestScanChainRepeatedInvocations(t *testing.T) {
	p := 4
	n := int64(400)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		for iter := 0; iter < 3; iter++ {
			r.FillPattern(sb, float64(r.ID()+iter))
			ScanChain(r, r.World(), sb, rb, n, mpi.Sum, Options{})
			want := expectPrefix(r.ID(), 7) + float64(iter*(r.ID()+1))
			if got := rb.Slice(7, 1)[0]; got != want {
				t.Fatalf("iter %d rank %d: %v, want %v", iter, r.ID(), got, want)
			}
		}
	})
}

func TestScanChainBeatsShmOnLargeMessages(t *testing.T) {
	// The chain form publishes only partials (O(ps) accesses) while the
	// parallel form's fold is O(p^2 s): the chain must win at scale.
	n := int64(1 << 17) // 1 MB
	p := 32
	time := func(alg ScanFunc) float64 {
		m := mpi.NewMachine(topo.NodeA(), p, false)
		body := func(r *mpi.Rank) {
			sb := r.PersistentBuffer("sb", n)
			rb := r.PersistentBuffer("rb", n)
			r.Warm(sb, 0, n)
			alg(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		}
		m.MustRun(body)
		return m.MustRun(body)
	}
	if chain, shm := time(ScanChain), time(ScanShm); chain >= shm {
		t.Errorf("chain scan (%.4g) should beat parallel-fold scan (%.4g) at 1 MB x 32 ranks", chain, shm)
	}
}
