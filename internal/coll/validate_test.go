package coll

import (
	"errors"
	"strings"
	"testing"

	"yhccl/internal/fault"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

func TestValidateAllreduceAcceptsCorrectRun(t *testing.T) {
	const p, n = 8, 4096
	m := mpi.NewMachine(topo.NodeA(), p, true)
	bases := SumBases(p)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, bases[r.ID()])
		AllreduceRing(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		if err := ValidateAllreduceSum("allreduce/ring", r.ID(), rb, n, bases); err != nil {
			t.Errorf("correct run rejected: %v", err)
		}
	})
}

func TestValidateReportsRankAndChunk(t *testing.T) {
	const p, n = 4, 4096
	m := mpi.NewMachine(topo.NodeA(), p, true)
	bases := SumBases(p)
	var verr error
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, bases[r.ID()])
		AllreduceRing(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		if r.ID() == 2 {
			// Sabotage one element in the third chunk of rank 2's output.
			rb.Slice(0, n)[2*ValidateChunkElems+7] += 1
		}
		if err := ValidateAllreduceSum("allreduce/ring", r.ID(), rb, n, bases); err != nil {
			verr = err
		}
	})
	var ve *ValidationError
	if !errors.As(verr, &ve) {
		t.Fatalf("got %v, want *ValidationError", verr)
	}
	if ve.Rank != 2 || ve.Chunk != 2 || ve.Elem != 2*ValidateChunkElems+7 {
		t.Errorf("divergence located at rank%d chunk%d elem%d, want rank2 chunk2 elem%d",
			ve.Rank, ve.Chunk, ve.Elem, 2*ValidateChunkElems+7)
	}
	for _, want := range []string{"rank2", "chunk 2", "allreduce/ring"} {
		if !strings.Contains(ve.Error(), want) {
			t.Errorf("message %q missing %q", ve.Error(), want)
		}
	}
}

func TestValidateCatchesInjectedCorruption(t *testing.T) {
	const p, n = 4, 4096
	m := mpi.NewMachine(topo.NodeA(), p, true)
	if err := m.SetFaultPlan(&fault.Plan{
		Name:        "flip",
		Corruptions: []fault.Corruption{{Rank: 1, SharedWrite: 0, Elem: 5, Bit: 51}},
	}); err != nil {
		t.Fatal(err)
	}
	bases := SumBases(p)
	var verrs []error
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, bases[r.ID()])
		AllreduceRing(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		if err := ValidateAllreduceSum("allreduce/ring", r.ID(), rb, n, bases); err != nil {
			verrs = append(verrs, err)
		}
	})
	if len(verrs) == 0 {
		t.Fatal("a mantissa flip on a staged chunk must corrupt some rank's output")
	}
	var ve *ValidationError
	if !errors.As(verrs[0], &ve) {
		t.Fatalf("got %v, want *ValidationError", verrs[0])
	}
	if len(m.Injector().Events()) == 0 {
		t.Error("injector did not log the flip")
	}
}

func TestValidateReduceScatterAndBcastAndAllgather(t *testing.T) {
	const p, n = 4, 2048
	bases := SumBases(p)

	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", int64(p)*n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, bases[r.ID()])
		ReduceScatterRing(r, r.World(), sb, rb, n, mpi.Sum, Options{})
		if err := ValidateReduceScatterSum("rs/ring", r.ID(), rb, n, bases); err != nil {
			t.Errorf("reduce-scatter: %v", err)
		}
	})

	m2 := mpi.NewMachine(topo.NodeA(), p, true)
	m2.MustRun(func(r *mpi.Rank) {
		buf := r.NewBuffer("buf", n)
		if r.ID() == 0 {
			r.FillPattern(buf, 777)
		}
		BcastBinomial(r, r.World(), buf, n, 0, Options{})
		if err := ValidateBcast("bcast/binomial", r.ID(), buf, n, 777); err != nil {
			t.Errorf("bcast: %v", err)
		}
	})

	m3 := mpi.NewMachine(topo.NodeA(), p, true)
	m3.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", int64(p)*n)
		r.FillPattern(sb, bases[r.ID()])
		AllgatherRing(r, r.World(), sb, rb, n, Options{})
		if err := ValidateAllgather("ag/ring", r.ID(), rb, n, bases); err != nil {
			t.Errorf("allgather: %v", err)
		}
	})
}

func TestValidateReduceOnlyChecksRoot(t *testing.T) {
	const p, n = 4, 1024
	bases := SumBases(p)
	m := mpi.NewMachine(topo.NodeA(), p, true)
	m.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, bases[r.ID()])
		ReduceTwoLevel(r, r.World(), sb, rb, n, mpi.Sum, 0, Options{})
		// Non-root rb holds garbage; ValidateReduceSum must skip it.
		if err := ValidateReduceSum("reduce/two-level", r.ID(), 0, rb, n, bases); err != nil {
			t.Errorf("reduce: %v", err)
		}
	})
}

func TestInstrumentTagsOpForDiagnostics(t *testing.T) {
	const p, n = 4, 2048
	m := mpi.NewMachine(topo.NodeA(), p, true)
	if err := m.SetFaultPlan(&fault.Plan{
		Name:   "stall-mid-collective",
		Stalls: []fault.Stall{{Rank: 2, At: 1e-7}},
	}); err != nil {
		t.Fatal(err)
	}
	alg := InstrumentAR("ring", AllreduceRing)
	bases := SumBases(p)
	_, err := m.Run(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, bases[r.ID()])
		alg(r, r.World(), sb, rb, n, mpi.Sum, Options{})
	})
	if err == nil {
		t.Fatal("expected the stalled run to fail")
	}
	var re *mpi.RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *mpi.RunError", err)
	}
	diag := re.Diagnose()
	if !strings.Contains(diag, "allreduce/ring") {
		t.Errorf("diagnosis does not name the op:\n%s", diag)
	}
	if !strings.Contains(err.Error(), "rank2") {
		t.Errorf("victim not named: %v", err)
	}
}
