package coll

import (
	"fmt"
	"sort"

	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// This file is the YHCCL top level (§2.3, Fig. 4): algorithm switching
// between the movement-avoiding reductions (large messages) and the
// two-level parallel reduction (small messages), plus the registries the
// benchmark harness and CLI tools select algorithms from.

// RSFunc is a reduce-scatter algorithm: sb has p*n elements, rank i's rb
// receives block i (n elements).
type RSFunc func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options)

// ARFunc is an all-reduce algorithm over n-element buffers.
type ARFunc func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options)

// ReduceFunc is a rooted reduce.
type ReduceFunc func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, o Options)

// BcastFunc is a broadcast over a single n-element buffer.
type BcastFunc func(r *mpi.Rank, c *mpi.Comm, buf *memmodel.Buffer, n int64, root int, o Options)

// AGFunc is an all-gather: sb has n elements, rb has p*n. All-gather moves
// data without reducing it, so — unlike the reduction signatures above — it
// takes no Op.
type AGFunc func(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o Options)

// ReduceScatterYHCCL applies the paper's algorithm switch: two-level
// parallel reduction at or below SwitchSmallBytes of total message,
// socket-aware MA reduction above.
func ReduceScatterYHCCL(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	o = o.withDefaults()
	if total := int64(c.Size()) * n * memmodel.ElemSize; o.SwitchSmallBytes > 0 && total <= o.SwitchSmallBytes {
		ReduceScatterTwoLevel(r, c, sb, rb, n, op, o)
		return
	}
	ReduceScatterSocketMA(r, c, sb, rb, n, op, o)
}

// AllreduceYHCCL is the switched all-reduce.
func AllreduceYHCCL(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o Options) {
	o = o.withDefaults()
	if s := n * memmodel.ElemSize; o.SwitchSmallBytes > 0 && s <= o.SwitchSmallBytes {
		AllreduceTwoLevel(r, c, sb, rb, n, op, o)
		return
	}
	AllreduceSocketMA(r, c, sb, rb, n, op, o)
}

// ReduceYHCCL is the switched rooted reduce.
func ReduceYHCCL(r *mpi.Rank, c *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, o Options) {
	o = o.withDefaults()
	if s := n * memmodel.ElemSize; o.SwitchSmallBytes > 0 && s <= o.SwitchSmallBytes {
		ReduceTwoLevel(r, c, sb, rb, n, op, root, o)
		return
	}
	ReduceSocketMA(r, c, sb, rb, n, op, root, o)
}

// BcastBinomial is the binomial-tree broadcast over the two-copy
// shared-memory transport (the classic small-message algorithm of MPICH
// and Open MPI tuned).
func BcastBinomial(r *mpi.Rank, c *mpi.Comm, buf *memmodel.Buffer, n int64, root int, o Options) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.CommRank(r.ID())
	v := (me - root + p) % p
	actual := func(w int) int { return (w + root) % p }
	mask := 1
	for mask < p {
		if v&mask != 0 {
			r.Recv(c, actual(v-mask), buf, 0, n, memmodel.Temporal)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if v+mask < p && v&(mask-1) == 0 && v&mask == 0 {
			r.Send(c, actual(v+mask), buf, 0, n)
		}
		mask >>= 1
	}
}

// Registries: algorithm name -> implementation, used by the harness and
// the CLI tools. Names match the paper's figure legends.

// ReduceScatterAlgos maps names to reduce-scatter algorithms.
var ReduceScatterAlgos = map[string]RSFunc{
	"yhccl":        ReduceScatterYHCCL,
	"socket-ma":    ReduceScatterSocketMA,
	"ma":           ReduceScatterMA,
	"dpml":         ReduceScatterDPML,
	"ring":         ReduceScatterRing,
	"rabenseifner": ReduceScatterRabenseifner,
	"xpmem":        ReduceScatterXPMEM,
	"two-level":    ReduceScatterTwoLevel,
}

// AllreduceAlgos maps names to all-reduce algorithms.
var AllreduceAlgos = map[string]ARFunc{
	"yhccl":        AllreduceYHCCL,
	"socket-ma":    AllreduceSocketMA,
	"ma":           AllreduceMA,
	"dpml":         AllreduceDPML,
	"ring":         AllreduceRing,
	"rabenseifner": AllreduceRabenseifner,
	"rg":           AllreduceRG,
	"xpmem":        AllreduceXPMEM,
	"cma":          AllreduceCMA,
	"two-level":    AllreduceTwoLevel,
}

// ReduceAlgos maps names to rooted-reduce algorithms.
var ReduceAlgos = map[string]ReduceFunc{
	"yhccl":     ReduceYHCCL,
	"socket-ma": ReduceSocketMA,
	"ma":        ReduceMA,
	"dpml":      ReduceDPML,
	"rg":        ReduceRG,
	"xpmem":     ReduceXPMEM,
	"two-level": ReduceTwoLevel,
}

// BcastAlgos maps names to broadcast algorithms.
var BcastAlgos = map[string]BcastFunc{
	"yhccl":     BcastPipelined,
	"pipelined": BcastPipelined,
	"binomial":  BcastBinomial,
	"xpmem":     BcastXPMEM,
	"cma":       BcastCMA,
}

// AllgatherAlgos maps names to all-gather algorithms.
var AllgatherAlgos = map[string]AGFunc{
	"yhccl":     AllgatherPipelined,
	"pipelined": AllgatherPipelined,
	"ring":      AllgatherRing,
	"xpmem":     AllgatherXPMEM,
}

// Names returns the sorted algorithm names of a registry map (generic
// helper for the CLIs' usage strings).
func Names[F any](algos map[string]F) []string {
	out := make([]string, 0, len(algos))
	for k := range algos {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the named algorithm or an error listing alternatives.
func Lookup[F any](algos map[string]F, name string) (F, error) {
	if f, ok := algos[name]; ok {
		return f, nil
	}
	var zero F
	return zero, fmt.Errorf("coll: unknown algorithm %q (have %v)", name, Names(algos))
}
