package memmodel

import (
	"testing"

	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// runOne executes body on a single simulated proc and returns its final
// clock.
func runOne(t *testing.T, body func(p *sim.Proc)) float64 {
	t.Helper()
	e := sim.NewEngine()
	var end float64
	e.Spawn("p", func(p *sim.Proc) {
		body(p)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return end
}

// fullBinding returns one rank per core for the node.
func fullBinding(n *topo.Node) []int {
	cores := make([]int, n.Cores())
	for i := range cores {
		cores[i] = i
	}
	return cores
}

func TestColdLoadIsDRAMBound(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	b := m.NewBuffer("b", Private, 0, 1<<20, false) // 8 MB
	var coldT, warmT float64
	runOne(t, func(p *sim.Proc) {
		start := p.Now()
		m.Load(p, 0, b, 0, b.Elems)
		coldT = p.Now() - start
		start = p.Now()
		m.Load(p, 0, b, 0, b.Elems)
		warmT = p.Now() - start
	})
	if coldT <= warmT {
		t.Fatalf("cold load (%.3g) should be slower than warm load (%.3g)", coldT, warmT)
	}
	wantCold := float64(b.Bytes()) / m.DRAMBandwidthPerRank(0)
	if !approx(coldT, wantCold, 1e-9) {
		t.Fatalf("cold load time %.6g, want %.6g", coldT, wantCold)
	}
	wantWarm := float64(b.Bytes()) / m.CacheBandwidthPerRank(0)
	if !approx(warmT, wantWarm, 1e-9) {
		t.Fatalf("warm load time %.6g, want %.6g", warmT, wantWarm)
	}
}

func TestTemporalStoreMissChargesRFO(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	b := m.NewBuffer("b", Private, 0, 1<<17, false) // 1 MB
	runOne(t, func(p *sim.Proc) {
		m.Store(p, 0, b, 0, b.Elems, Temporal)
	})
	c := m.Counters()
	if c.RFOBytes != b.Bytes() {
		t.Errorf("RFO bytes = %d, want %d", c.RFOBytes, b.Bytes())
	}
	if c.DRAMTraffic != b.Bytes() {
		t.Errorf("DRAM traffic = %d, want %d (RFO fill only, writeback deferred)", c.DRAMTraffic, b.Bytes())
	}
	if c.StoreBytes != b.Bytes() {
		t.Errorf("logical stores = %d, want %d", c.StoreBytes, b.Bytes())
	}
}

func TestTemporalStoreHitIsCacheSpeed(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	b := m.NewBuffer("b", Private, 0, 1<<17, false)
	var hitT float64
	runOne(t, func(p *sim.Proc) {
		m.Store(p, 0, b, 0, b.Elems, Temporal) // allocate
		start := p.Now()
		m.Store(p, 0, b, 0, b.Elems, Temporal) // hit
		hitT = p.Now() - start
	})
	want := float64(b.Bytes()) / m.CacheBandwidthPerRank(0)
	if !approx(hitT, want, 1e-9) {
		t.Fatalf("store hit time %.6g, want %.6g", hitT, want)
	}
}

func TestNonTemporalStoreBypassesAndInvalidates(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	b := m.NewBuffer("b", Private, 0, 1<<17, false)
	var ntT, reloadT float64
	runOne(t, func(p *sim.Proc) {
		m.Load(p, 0, b, 0, b.Elems) // cache it
		start := p.Now()
		m.Store(p, 0, b, 0, b.Elems, NonTemporal)
		ntT = p.Now() - start
		start = p.Now()
		m.Load(p, 0, b, 0, b.Elems) // must re-fetch from DRAM
		reloadT = p.Now() - start
	})
	c := m.Counters()
	if c.NTStoreBytes != b.Bytes() {
		t.Errorf("NT store bytes = %d, want %d", c.NTStoreBytes, b.Bytes())
	}
	if c.RFOBytes != 0 {
		t.Errorf("NT store caused RFO: %d bytes", c.RFOBytes)
	}
	wantNT := float64(b.Bytes()) / m.DRAMBandwidthPerRank(0)
	if !approx(ntT, wantNT, 1e-9) {
		t.Errorf("NT store time %.6g, want %.6g", ntT, wantNT)
	}
	wantReload := float64(b.Bytes()) / m.DRAMBandwidthPerRank(0)
	if !approx(reloadT, wantReload, 1e-9) {
		t.Errorf("reload after NT store %.6g, want DRAM-bound %.6g", reloadT, wantReload)
	}
}

func TestStreamingTemporalCopyCosts3xTraffic(t *testing.T) {
	// The Table 4 effect: a large t-copy generates 3 bytes of DRAM traffic
	// per copied byte (demand load + RFO fill + writeback), an nt-copy only
	// 2. We stream a working set 4x the cache through Load+Store pairs.
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	total := m.AvailableCache() * 4 / ElemSize
	chunk := int64(1 << 16) // 512 KB slices
	src := m.NewBuffer("src", Private, 0, total, false)
	dst := m.NewBuffer("dst", Private, 0, total, false)

	runOne(t, func(p *sim.Proc) {
		for off := int64(0); off < total; off += chunk {
			m.Load(p, 0, src, off, chunk)
			m.Store(p, 0, dst, off, chunk, Temporal)
		}
	})
	tTraffic := m.Counters().DRAMTraffic
	bytes := total * ElemSize

	m2 := New(node, fullBinding(node))
	src2 := m2.NewBuffer("src", Private, 0, total, false)
	dst2 := m2.NewBuffer("dst", Private, 0, total, false)
	runOne(t, func(p *sim.Proc) {
		for off := int64(0); off < total; off += chunk {
			m2.Load(p, 0, src2, off, chunk)
			m2.Store(p, 0, dst2, off, chunk, NonTemporal)
		}
	})
	ntTraffic := m2.Counters().DRAMTraffic

	ratioT := float64(tTraffic) / float64(bytes)
	ratioNT := float64(ntTraffic) / float64(bytes)
	if ratioT < 2.5 || ratioT > 3.1 {
		t.Errorf("t-copy traffic ratio = %.2f, want ~3", ratioT)
	}
	if ratioNT < 1.9 || ratioNT > 2.1 {
		t.Errorf("nt-copy traffic ratio = %.2f, want ~2", ratioNT)
	}
}

func TestCrossSocketAccessSlowerAndCounted(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	local := m.NewBuffer("local", Private, 0, 1<<17, false)
	remote := m.NewBuffer("remote", Private, 1, 1<<17, false)
	var localT, remoteT float64
	runOne(t, func(p *sim.Proc) {
		start := p.Now()
		m.Load(p, 0, local, 0, local.Elems)
		localT = p.Now() - start
		start = p.Now()
		m.Load(p, 0, remote, 0, remote.Elems)
		remoteT = p.Now() - start
	})
	if remoteT <= localT {
		t.Errorf("remote load (%.3g) should be slower than local (%.3g)", remoteT, localT)
	}
	if got := m.Counters().CrossSocketBytes; got != remote.Bytes() {
		t.Errorf("cross-socket bytes = %d, want %d", got, remote.Bytes())
	}
}

func TestWarmMakesDataResident(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	b := m.NewBuffer("b", Private, 0, 1<<17, false)
	m.Warm(0, b, 0, b.Elems)
	var loadT float64
	runOne(t, func(p *sim.Proc) {
		start := p.Now()
		m.Load(p, 0, b, 0, b.Elems)
		loadT = p.Now() - start
	})
	want := float64(b.Bytes()) / m.CacheBandwidthPerRank(0)
	if !approx(loadT, want, 1e-9) {
		t.Fatalf("load after warm %.6g, want cache-speed %.6g", loadT, want)
	}
}

func TestDirtyBitSurvivesLoad(t *testing.T) {
	// A store followed by a load of the same range must not lose the dirty
	// bit; eviction must still write back.
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	small := m.NewBuffer("small", Private, 0, 1<<14, false)
	big := m.NewBuffer("big", Private, 0, m.AvailableCache()/ElemSize+(1<<14), false)
	runOne(t, func(p *sim.Proc) {
		m.Store(p, 0, small, 0, small.Elems, Temporal)
		m.Load(p, 0, small, 0, small.Elems)
		m.Load(p, 0, big, 0, big.Elems) // flushes everything
	})
	if wb := m.Counters().WritebackBytes; wb < small.Bytes() {
		t.Fatalf("writeback = %d, want >= %d (dirty data must be written back)", wb, small.Bytes())
	}
}

func TestResetCountersKeepsResidency(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	b := m.NewBuffer("b", Private, 0, 1<<14, false)
	runOne(t, func(p *sim.Proc) {
		m.Load(p, 0, b, 0, b.Elems)
	})
	m.ResetCounters()
	if m.Counters().DAV() != 0 {
		t.Fatal("counters not reset")
	}
	var warmT float64
	runOne(t, func(p *sim.Proc) {
		start := p.Now()
		m.Load(p, 0, b, 0, b.Elems)
		warmT = p.Now() - start
	})
	want := float64(b.Bytes()) / m.CacheBandwidthPerRank(0)
	if !approx(warmT, want, 1e-9) {
		t.Fatalf("residency lost after ResetCounters")
	}
}

func TestDropCaches(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	b := m.NewBuffer("b", Private, 0, 1<<14, false)
	runOne(t, func(p *sim.Proc) { m.Load(p, 0, b, 0, b.Elems) })
	m.DropCaches()
	if occ := m.CacheOccupancy(0); occ != 0 {
		t.Fatalf("occupancy after DropCaches = %d", occ)
	}
}

func TestSyncLatency(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	if got := m.SyncLatency(0, 1); got != node.SyncLatencyIntra {
		t.Errorf("intra latency = %g", got)
	}
	if got := m.SyncLatency(0, 32); got != node.SyncLatencyInter {
		t.Errorf("inter latency = %g", got)
	}
}

func TestBandwidthShares(t *testing.T) {
	node := topo.NodeA()
	// All 64 ranks: DRAM share = 237/32 GB/s per rank (per socket / ranks).
	m := New(node, fullBinding(node))
	want := node.DRAMBandwidthPerSocket / 32
	if got := m.DRAMBandwidthPerRank(0); !approx(got, want, 1e-6) {
		t.Errorf("64-rank DRAM share = %g, want %g", got, want)
	}
	// 2 ranks (cores 0 and 32): capped by the per-core limit.
	m2 := New(node, []int{0, 32})
	if got := m2.DRAMBandwidthPerRank(0); got != node.DRAMBandwidthPerCore {
		t.Errorf("2-rank DRAM share = %g, want per-core cap %g", got, node.DRAMBandwidthPerCore)
	}
}

func TestCopyVolumeCounter(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	m.CountCopyVolume(1000)
	if got := m.Counters().CopyVolume; got != 2000*ElemSize {
		t.Errorf("copy volume = %d, want %d", got, 2000*ElemSize)
	}
}

func TestBufferRangeChecks(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	b := m.NewBuffer("b", Private, 0, 100, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	runOne(t, func(p *sim.Proc) {
		m.Load(p, 0, b, 50, 51)
	})
}

func TestModelOnlyBufferSlicePanics(t *testing.T) {
	node := topo.NodeA()
	m := New(node, fullBinding(node))
	b := m.NewBuffer("b", Private, 0, 100, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic slicing a model-only buffer")
		}
	}()
	b.Slice(0, 10)
}

func approx(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol*want || d <= tol
}
