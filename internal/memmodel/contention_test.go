package memmodel

import (
	"testing"

	"yhccl/internal/topo"
)

// TestNewSharedSoloIdentity proves the co-tenancy extension leaves solo
// models bit-identical: nil and all-zero external slices reproduce New's
// bandwidth shares and cache capacities exactly, so Version stays valid.
func TestNewSharedSoloIdentity(t *testing.T) {
	node := topo.NodeA()
	cores := make([]int, 48)
	for i := range cores {
		cores[i] = i
	}
	base := New(node, cores)
	for _, ext := range [][]int{nil, {0, 0}, {0}} {
		m := NewShared(node, cores, ext)
		for s := 0; s < node.Sockets; s++ {
			if got, want := m.DRAMBandwidthPerRank(s), base.DRAMBandwidthPerRank(s); got != want {
				t.Errorf("ext=%v socket %d: dram share %v != %v", ext, s, got, want)
			}
			if got, want := m.CacheBandwidthPerRank(s), base.CacheBandwidthPerRank(s); got != want {
				t.Errorf("ext=%v socket %d: cache share %v != %v", ext, s, got, want)
			}
			if got, want := m.caches[s].capacity, base.caches[s].capacity; got != want {
				t.Errorf("ext=%v socket %d: capacity %d != %d", ext, s, got, want)
			}
			if m.ExternalOnSocket(s) != 0 {
				t.Errorf("ext=%v socket %d: external %d != 0", ext, s, m.ExternalOnSocket(s))
			}
		}
	}
}

// TestNewSharedContention pins the contention arithmetic: external ranks
// join the bandwidth divisor and shrink the LLC share proportionally.
func TestNewSharedContention(t *testing.T) {
	node := topo.NodeA()
	// 8 own ranks on socket 0, none on socket 1.
	cores := []int{0, 1, 2, 3, 4, 5, 6, 7}
	solo := New(node, cores)
	m := NewShared(node, cores, []int{8, 0})

	if got := m.ExternalOnSocket(0); got != 8 {
		t.Fatalf("external on socket 0 = %d, want 8", got)
	}
	// 8 own + 8 external share the socket: per-rank share is the socket
	// bandwidth over 16 (unless the per-core cap binds first).
	want := minf(node.DRAMBandwidthPerCore, node.DRAMBandwidthPerSocket/16)
	if got := m.DRAMBandwidthPerRank(0); got != want {
		t.Errorf("dram share = %v, want %v", got, want)
	}
	if m.DRAMBandwidthPerRank(0) >= solo.DRAMBandwidthPerRank(0) {
		t.Errorf("contended dram share %v not below solo %v",
			m.DRAMBandwidthPerRank(0), solo.DRAMBandwidthPerRank(0))
	}
	if m.CacheBandwidthPerRank(0) >= solo.CacheBandwidthPerRank(0) {
		t.Errorf("contended cache share %v not below solo %v",
			m.CacheBandwidthPerRank(0), solo.CacheBandwidthPerRank(0))
	}
	// LLC share: own/(own+ext) = 1/2 of the socket L3 (plus own private
	// L2s on non-inclusive parts).
	wantCap := node.L3PerSocket * 8 / 16
	if !node.L3Inclusive {
		wantCap += 8 * node.L2PerCore
	}
	if got := m.caches[0].capacity; got != wantCap {
		t.Errorf("contended capacity = %d, want %d", got, wantCap)
	}
	if m.caches[0].capacity >= solo.caches[0].capacity {
		t.Errorf("contended capacity %d not below solo %d",
			m.caches[0].capacity, solo.caches[0].capacity)
	}
	// The untouched socket keeps solo shares.
	if got, want := m.DRAMBandwidthPerRank(1), solo.DRAMBandwidthPerRank(1); got != want {
		t.Errorf("socket 1 dram share changed: %v != %v", got, want)
	}
}

// TestNewSharedValidation pins the constructor's panics.
func TestNewSharedValidation(t *testing.T) {
	node := topo.NodeB()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative", func() { NewShared(node, []int{0, 1}, []int{-1}) })
	mustPanic("too-many-sockets", func() { NewShared(node, []int{0, 1}, []int{0, 0, 0}) })
}
