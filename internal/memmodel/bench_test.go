package memmodel

import (
	"testing"

	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// BenchmarkResidencyInsert measures steady-state inserts into a cache under
// eviction pressure: the working set (1024 x 4 KB pages) is 4x the capacity,
// so every insert eventually evicts.
func BenchmarkResidencyInsert(b *testing.B) {
	c := newCacheState(0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%1024) * 4096
		c.insert(1, off, off+4096, i%2 == 0)
	}
}

// BenchmarkResidencyInsertSequential measures the merge-heavy worst case:
// all-dirty, address-adjacent pages streamed under eviction pressure, so
// every insert merges with its predecessor and the LRU front is a merged
// region that must be exploded before eviction.
func BenchmarkResidencyInsertSequential(b *testing.B) {
	c := newCacheState(0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%1024) * 4096
		c.insert(1, off, off+4096, true)
	}
}

// BenchmarkResidencyInsertFragmented measures inserts into a deliberately
// fragmented tracker: regions are separated by 1-byte holes so they can
// never merge, exercising the sorted-slice maintenance cost.
func BenchmarkResidencyInsertFragmented(b *testing.B) {
	c := newCacheState(0, 64<<20)
	const regions = 4096
	for i := int64(0); i < regions; i++ {
		c.insert(1, i*4097, i*4097+4096, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := int64(i % regions)
		c.insert(1, r*4097, r*4097+4096, true)
	}
}

// BenchmarkResidencyLookup measures lookup over a fragmented tracker.
func BenchmarkResidencyLookup(b *testing.B) {
	c := newCacheState(0, 64<<20)
	const regions = 4096
	for i := int64(0); i < regions; i++ {
		c.insert(1, i*4097, i*4097+4096, i%2 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		r := int64(i % regions)
		sum += c.lookup(1, r*4097, r*4097+8192)
	}
	_ = sum
}

// BenchmarkModelLoadStore measures the end-to-end hot path a collective
// takes per chunk: a modelled Load plus a temporal Store through the Model
// on a running sim proc.
func BenchmarkModelLoadStore(b *testing.B) {
	node := topo.NodeA()
	m := New(node, []int{0})
	buf := m.NewBuffer("bench", Private, 0, 1<<20, false)
	e := sim.NewEngine()
	n := b.N
	e.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			off := int64(i%256) * 4096
			m.Load(p, 0, buf, off, 512)
			m.Store(p, 0, buf, off, 512, Temporal)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
