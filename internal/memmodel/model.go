package memmodel

import (
	"fmt"

	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// Version identifies the cost model's behaviour for consumers that persist
// model-derived results (the tuned-plan cache keys on it). Bump whenever a
// change can alter predicted times or counters — stale caches are then
// rejected and re-tuned rather than silently trusted.
const Version = 1

// Counters accumulates the traffic statistics of a run. Logical counters
// correspond to the paper's data-access-volume analysis (Tables 1-3); the
// DRAM counters correspond to its memory-bandwidth analysis (Table 4,
// Figs. 12-14).
type Counters struct {
	// LoadBytes is the logical bytes loaded (every Load and the load halves
	// of Copy/Reduce).
	LoadBytes int64
	// StoreBytes is the logical bytes stored.
	StoreBytes int64
	// CopyVolume is the paper's V: bytes moved by copy operations between
	// private and shared memory (2 x size per copy: one load + one store).
	CopyVolume int64
	// DRAMTraffic is bytes that actually crossed a memory controller:
	// demand fills, RFO fills, write-backs and non-temporal stores.
	DRAMTraffic int64
	// RFOBytes is the subset of DRAMTraffic due to read-for-ownership
	// line fills triggered by temporal store misses.
	RFOBytes int64
	// WritebackBytes is the subset of DRAMTraffic due to dirty evictions.
	WritebackBytes int64
	// NTStoreBytes is the subset of DRAMTraffic written by non-temporal
	// stores.
	NTStoreBytes int64
	// CrossSocketBytes is DRAM traffic served by a remote socket's memory.
	CrossSocketBytes int64
	// SyncCount is the number of synchronization events charged.
	SyncCount int64
}

// DAV returns the logical data access volume (loads + stores), the metric
// of the paper's Tables 1-3.
func (c Counters) DAV() int64 { return c.LoadBytes + c.StoreBytes }

// Sub returns c - o, for measuring a region between two snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		LoadBytes:        c.LoadBytes - o.LoadBytes,
		StoreBytes:       c.StoreBytes - o.StoreBytes,
		CopyVolume:       c.CopyVolume - o.CopyVolume,
		DRAMTraffic:      c.DRAMTraffic - o.DRAMTraffic,
		RFOBytes:         c.RFOBytes - o.RFOBytes,
		WritebackBytes:   c.WritebackBytes - o.WritebackBytes,
		NTStoreBytes:     c.NTStoreBytes - o.NTStoreBytes,
		CrossSocketBytes: c.CrossSocketBytes - o.CrossSocketBytes,
		SyncCount:        c.SyncCount - o.SyncCount,
	}
}

// Model is the memory-system cost model for one node. It is not safe for
// concurrent use on its own; the sim engine's one-runnable-proc-at-a-time
// discipline provides the required serialization.
type Model struct {
	Node *topo.Node

	ranksPerSocket []int // how many ranks are bound to each socket
	caches         []*cacheState

	counters Counters
	bufSeq   uint64
	tracer   *sim.Tracer

	// coreSocket[core] caches Node.SocketOf(core): the per-op integer
	// division showed up in charge-pipeline profiles. coreSlot[core] is the
	// core's index within its socket — the cursor bank it uses in its
	// socket's residency tracker (see cacheState.curs).
	coreSocket []int
	coreSlot   []int

	// dramBWPerRank[s] is the steady-state DRAM bandwidth share of one rank
	// on socket s; cacheBWPerRank likewise for the shared cache.
	dramBWPerRank  []float64
	cacheBWPerRank []float64

	// dramBW[s][home] is dramBWPerRank[s] with the cross-socket penalty
	// already folded in when home != s. The fold is the same single
	// multiplication the per-op path used to perform, done once at model
	// construction, so charged times are bit-identical.
	dramBW [][]float64

	// external[s] is the number of co-tenant ranks (other jobs on the same
	// physical socket) sharing socket s's DRAM/L3 bandwidth and LLC
	// capacity. All-zero for a solo job.
	external []int
}

// New builds a model for the node with the given rank-to-core binding
// (rankCores[i] is the core rank i is pinned to). Bandwidth shares are the
// steady-state division of per-socket resources among the ranks bound there.
func New(node *topo.Node, rankCores []int) *Model {
	return NewShared(node, rankCores, nil)
}

// NewShared builds a co-tenant model: externalPerSocket[s] ranks of OTHER
// jobs run on socket s. Cores are exclusively leased per job, but the
// socket-shared resources are not — each external rank joins the divisor of
// the per-rank DRAM and L3 bandwidth shares, and the job's LLC capacity
// share shrinks to own/(own+external) of the socket's L3 (private L2s stay
// private on non-inclusive parts). With no external ranks the arithmetic is
// exactly New's, so solo-job behaviour — and therefore Version and every
// golden-determinism baseline — is unchanged.
func NewShared(node *topo.Node, rankCores []int, externalPerSocket []int) *Model {
	if err := node.Validate(); err != nil {
		panic(fmt.Sprintf("memmodel: invalid node: %v", err))
	}
	if len(externalPerSocket) > node.Sockets {
		panic(fmt.Sprintf("memmodel: %d external-rank entries for %d sockets",
			len(externalPerSocket), node.Sockets))
	}
	m := &Model{
		Node:           node,
		ranksPerSocket: make([]int, node.Sockets),
		caches:         make([]*cacheState, node.Sockets),
		coreSocket:     make([]int, node.Cores()),
		coreSlot:       make([]int, node.Cores()),
		dramBWPerRank:  make([]float64, node.Sockets),
		cacheBWPerRank: make([]float64, node.Sockets),
		dramBW:         make([][]float64, node.Sockets),
		external:       make([]int, node.Sockets),
	}
	for s, e := range externalPerSocket {
		if e < 0 {
			panic(fmt.Sprintf("memmodel: negative external rank count %d on socket %d", e, s))
		}
		m.external[s] = e
	}
	for core := range m.coreSocket {
		m.coreSocket[core] = node.SocketOf(core)
		m.coreSlot[core] = core - m.coreSocket[core]*node.CoresPerSocket
	}
	for _, core := range rankCores {
		m.ranksPerSocket[node.SocketOf(core)]++
	}
	for s := 0; s < node.Sockets; s++ {
		own := m.ranksPerSocket[s]
		ext := m.external[s]
		// The socket-level residency capacity follows the paper's
		// available-cache rule, applied per socket: shared LLC plus (on
		// non-inclusive parts) the private L2s of the ranks bound here.
		// Co-tenants claim their proportional LLC share; the ext == 0
		// branch keeps the solo value bit-identical (no division).
		capacity := node.L3PerSocket
		if ext > 0 && own > 0 {
			capacity = node.L3PerSocket * int64(own) / int64(own+ext)
		}
		if !node.L3Inclusive {
			capacity += int64(own) * node.L2PerCore
		}
		m.caches[s] = newCacheState(s, capacity)
		sharers := own + ext
		if sharers == 0 {
			sharers = 1
		}
		m.dramBWPerRank[s] = minf(node.DRAMBandwidthPerCore,
			node.DRAMBandwidthPerSocket/float64(sharers))
		m.cacheBWPerRank[s] = minf(node.CacheBandwidthPerCore,
			node.L3BandwidthPerSocket/float64(sharers))
		m.dramBW[s] = make([]float64, node.Sockets)
		for home := 0; home < node.Sockets; home++ {
			bw := m.dramBWPerRank[s]
			if home != s {
				bw *= node.CrossSocketFactor
			}
			m.dramBW[s][home] = bw
		}
	}
	return m
}

// NewBuffer allocates a modelled buffer of n float64 elements homed on the
// given socket. When real is true the buffer carries actual data.
func (m *Model) NewBuffer(name string, space Space, home int, n int64, real bool) *Buffer {
	if home < 0 || home >= m.Node.Sockets {
		panic(fmt.Sprintf("memmodel: buffer %q homed on invalid socket %d", name, home))
	}
	if n < 0 {
		panic(fmt.Sprintf("memmodel: buffer %q with negative size", name))
	}
	m.bufSeq++
	b := &Buffer{ID: m.bufSeq, Name: name, Space: space, Home: home, Elems: n}
	if real {
		b.Data = make([]float64, n)
	}
	return b
}

// SetTracer attaches an event tracer: every modelled memory operation is
// recorded as a span on the acting process's timeline (nil disables).
func (m *Model) SetTracer(t *sim.Tracer) { m.tracer = t }

// Tracer returns the attached tracer (nil when disabled).
func (m *Model) Tracer() *sim.Tracer { return m.tracer }

// span records a traced interval if tracing is enabled. Hot paths guard the
// call (and the span-name construction) behind a tracer nil check.
func (m *Model) span(p *sim.Proc, name string, from float64) {
	if m.tracer != nil {
		m.tracer.Span(p, name, from, p.Now())
	}
}

// Counters returns a snapshot of the accumulated counters.
func (m *Model) Counters() Counters { return m.counters }

// ResetCounters zeroes the counters (residency state is preserved).
func (m *Model) ResetCounters() { m.counters = Counters{} }

// DropCaches empties every socket's residency tracker (cold start).
func (m *Model) DropCaches() {
	for s := range m.caches {
		m.caches[s] = newCacheState(s, m.caches[s].capacity)
	}
}

// CacheOccupancy returns the resident bytes on a socket (diagnostics).
func (m *Model) CacheOccupancy(socket int) int64 { return m.caches[socket].occupancy() }

// AvailableCache returns the paper's C for the p ranks of this model's
// binding: the node-wide capacity usable by the collective (§4.2).
func (m *Model) AvailableCache() int64 {
	total := int64(0)
	for _, c := range m.caches {
		total += c.capacity
	}
	return total
}

// SyncLatency returns the one-way flag latency between two cores.
func (m *Model) SyncLatency(coreA, coreB int) float64 {
	if m.coreSocket[coreA] == m.coreSocket[coreB] {
		return m.Node.SyncLatencyIntra
	}
	return m.Node.SyncLatencyInter
}

// CountSync records a synchronization event (the latency itself is charged
// through sim flags/barriers by the caller).
func (m *Model) CountSync() { m.counters.SyncCount++ }

// dramTime charges DRAM traffic originating on `socket` against buffer b's
// home memory and returns the time it takes.
func (m *Model) dramTime(socket int, b *Buffer, bytes int64) float64 {
	if bytes == 0 {
		return 0
	}
	if b.Home != socket {
		m.counters.CrossSocketBytes += bytes
	}
	m.counters.DRAMTraffic += bytes
	return float64(bytes) / m.dramBW[socket][b.Home]
}

// pinnedTime is the access time for a pinned (always-resident) buffer:
// cache speed locally, cross-socket cache-to-cache penalty remotely.
func (m *Model) pinnedTime(socket int, b *Buffer, bytes int64) float64 {
	t := m.cacheTime(socket, bytes)
	if b.Home != socket {
		t /= m.Node.CrossSocketFactor
		m.counters.CrossSocketBytes += bytes
	}
	return t
}

// cacheTime returns the time for `bytes` served at cache speed.
func (m *Model) cacheTime(socket int, bytes int64) float64 {
	if bytes == 0 {
		return 0
	}
	return float64(bytes) / m.cacheBWPerRank[socket]
}

// Load charges a temporal load of n elements of b at offset off, performed
// by the rank running on `core`, advancing p's clock. Loaded data becomes
// cache-resident on the core's socket.
func (m *Model) Load(p *sim.Proc, core int, b *Buffer, off, n int64) {
	m.load(p, m.coreSocket[core], m.coreSlot[core], b, off, n)
}

// load is Load with the socket and cursor bank already resolved — the
// sub-charge the fused entrypoints below share. It performs exactly one
// p.Advance. The bank is selected per sub-charge (not once per fused op):
// the Advance of one sub-charge may yield to other ranks whose ops select
// their own banks in the same tracker.
func (m *Model) load(p *sim.Proc, socket, slot int, b *Buffer, off, n int64) {
	b.CheckRange(off, n)
	lo, hi := off*ElemSize, (off+n)*ElemSize
	bytes := hi - lo
	m.counters.LoadBytes += bytes
	if m.tracer != nil {
		from := p.Now()
		defer m.span(p, "load "+b.Name, from)
	}
	if b.Pinned {
		p.Advance(m.pinnedTime(socket, b, bytes))
		return
	}
	c := m.caches[socket]
	c.curSlot = slot
	// Single residency scan answers both "how much is cached" (timing) and
	// "is any of it dirty" (the re-insert below must not lose the dirty bit
	// of data a previous store left in the cache).
	cached, dirtyOverlap := c.lookupBoth(b.ID, lo, hi)
	missed := bytes - cached
	t := m.cacheTime(socket, cached) + m.dramTime(socket, b, missed)
	// insert re-inserts the full range, which also refreshes recency of the
	// previously cached portion.
	wb := c.insert(b.ID, lo, hi, dirtyOverlap > 0)
	if wb > 0 {
		t += float64(wb) / m.dramBWPerRank[socket]
		m.counters.DRAMTraffic += wb
		m.counters.WritebackBytes += wb
	}
	p.Advance(t)
}

// Store charges a store of n elements into b at offset off. Temporal stores
// write-allocate: misses trigger an RFO line fill (DRAM read) and leave the
// region dirty; hits run at cache speed. Non-temporal stores bypass the
// cache entirely and invalidate any resident copy.
func (m *Model) Store(p *sim.Proc, core int, b *Buffer, off, n int64, kind StoreKind) {
	m.store(p, m.coreSocket[core], m.coreSlot[core], b, off, n, kind)
}

// store is Store with the socket and cursor bank already resolved — the
// sub-charge the fused entrypoints below share (see load on bank
// selection). It performs exactly one p.Advance.
func (m *Model) store(p *sim.Proc, socket, slot int, b *Buffer, off, n int64, kind StoreKind) {
	b.CheckRange(off, n)
	lo, hi := off*ElemSize, (off+n)*ElemSize
	bytes := hi - lo
	m.counters.StoreBytes += bytes
	if m.tracer != nil {
		from := p.Now()
		defer m.span(p, kind.String()+" store "+b.Name, from)
	}
	if b.Pinned {
		p.Advance(m.pinnedTime(socket, b, bytes))
		return
	}
	c := m.caches[socket]
	c.curSlot = slot
	var t float64
	switch kind {
	case Temporal:
		cached := c.lookup(b.ID, lo, hi)
		missed := bytes - cached
		// Hit portion: store at cache speed.
		t += m.cacheTime(socket, cached)
		// Miss portion: RFO fill from DRAM, then the store itself hits the
		// newly allocated lines at cache speed.
		if missed > 0 {
			t += m.dramTime(socket, b, missed)
			m.counters.RFOBytes += missed
			t += m.cacheTime(socket, missed)
		}
		// insert replaces any overlapped regions and marks the range dirty.
		wb := c.insert(b.ID, lo, hi, true)
		if wb > 0 {
			t += float64(wb) / m.dramBWPerRank[socket]
			m.counters.DRAMTraffic += wb
			m.counters.WritebackBytes += wb
		}
	case NonTemporal:
		c.invalidate(b.ID, lo, hi)
		t += m.dramTime(socket, b, bytes)
		m.counters.NTStoreBytes += bytes
	default:
		panic(fmt.Sprintf("memmodel: unknown store kind %d", kind))
	}
	p.Advance(t)
}

// Copy charges the load+store pair of copying n elements from src[sOff] to
// dst[dOff]: the fused per-chunk charge behind Rank.CopyElems. Fusion only
// shares the per-call preamble (socket resolve, range decode); the two
// sub-charges keep their own p.Advance calls with the same float operations
// in the same order as the equivalent Load+Store sequence, and the yields
// inside those Advances keep the same cross-proc interleaving — charged
// times, counters and residency decisions are bit-identical.
func (m *Model) Copy(p *sim.Proc, core int, dst *Buffer, dOff int64, src *Buffer, sOff, n int64, kind StoreKind) {
	s, sl := m.coreSocket[core], m.coreSlot[core]
	m.load(p, s, sl, src, sOff, n)
	m.store(p, s, sl, dst, dOff, n, kind)
}

// Accumulate charges dst[dOff..] op= src[sOff..] over n elements: two loads,
// one store and the arithmetic floor, fused per chunk (see Copy for the
// determinism argument).
func (m *Model) Accumulate(p *sim.Proc, core int, dst *Buffer, dOff int64, src *Buffer, sOff, n int64, kind StoreKind) {
	s, sl := m.coreSocket[core], m.coreSlot[core]
	m.load(p, s, sl, dst, dOff, n)
	m.load(p, s, sl, src, sOff, n)
	m.store(p, s, sl, dst, dOff, n, kind)
	m.ReduceFloor(p, n)
}

// Combine charges out[oOff..] = op(a[aOff..], b[bOff..]) over n elements:
// two loads, one store and the arithmetic floor, fused per chunk (see Copy
// for the determinism argument).
func (m *Model) Combine(p *sim.Proc, core int, out *Buffer, oOff int64, a *Buffer, aOff int64, b *Buffer, bOff, n int64, kind StoreKind) {
	s, sl := m.coreSocket[core], m.coreSlot[core]
	m.load(p, s, sl, a, aOff, n)
	m.load(p, s, sl, b, bOff, n)
	m.store(p, s, sl, out, oOff, n, kind)
	m.ReduceFloor(p, n)
}

// CountCopyVolume adds 2*n elements worth of bytes to the copy-volume
// counter V (one load plus one store per copied byte, paper §2.1). The
// caller invokes it alongside the Load/Store pair of a private<->shared
// copy.
func (m *Model) CountCopyVolume(n int64) {
	m.counters.CopyVolume += 2 * n * ElemSize
}

// ReduceFloor charges the arithmetic floor of reducing n elements (SIMD
// throughput cap). Memory time is charged separately by Load/Store; the
// floor only matters when everything is cache-resident.
func (m *Model) ReduceFloor(p *sim.Proc, n int64) {
	p.Advance(float64(n*ElemSize) / m.Node.ReducePerCoreBandwidth)
}

// Warm marks [off, off+n) elements of b resident (and dirty, as if the
// application just updated it) in the cache of the socket owning `core`,
// without charging time. Benchmarks use it to model the OSU harness
// updating send/recv buffers between iterations.
func (m *Model) Warm(core int, b *Buffer, off, n int64) {
	b.CheckRange(off, n)
	c := m.caches[m.coreSocket[core]]
	c.curSlot = m.coreSlot[core]
	wb := c.insert(b.ID, off*ElemSize, (off+n)*ElemSize, true)
	_ = wb // warm-up write-backs are not charged
}

// RanksOnSocket returns how many ranks the binding placed on a socket.
func (m *Model) RanksOnSocket(s int) int { return m.ranksPerSocket[s] }

// ExternalOnSocket returns how many co-tenant ranks share socket s (zero
// for a solo-job model).
func (m *Model) ExternalOnSocket(s int) int { return m.external[s] }

// DRAMBandwidthPerRank exposes the per-rank DRAM share (for tests and the
// analytic harness).
func (m *Model) DRAMBandwidthPerRank(s int) float64 { return m.dramBWPerRank[s] }

// CacheBandwidthPerRank exposes the per-rank cache share.
func (m *Model) CacheBandwidthPerRank(s int) float64 { return m.cacheBWPerRank[s] }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
