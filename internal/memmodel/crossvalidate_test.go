package memmodel

import (
	"math/rand"
	"testing"

	"yhccl/internal/cachesim"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// These tests cross-validate the region-granular residency model against
// the line-granular set-associative simulator in internal/cachesim: for
// the streaming access patterns collectives generate, both must predict
// closely matching DRAM traffic.

// traceOp is one recorded access.
type traceOp struct {
	buf  int // buffer index
	off  int64
	n    int64
	kind int // 0 load, 1 store, 2 nt-store
}

// runTrace pushes the trace through both models and returns their DRAM
// traffic in bytes. Buffers are laid out contiguously in the cachesim
// address space.
func runTrace(t *testing.T, capacity int64, bufElems []int64, trace []traceOp) (regionTraffic, lineTraffic int64) {
	t.Helper()

	// Region model: a single-socket node with the given capacity.
	node := &topo.Node{
		Name: "XV", Sockets: 1, CoresPerSocket: 1,
		L2PerCore: 64, L3PerSocket: capacity - 64, L3Inclusive: false,
		DRAMBandwidthPerSocket: 1e9, DRAMBandwidthPerCore: 1e9,
		CacheBandwidthPerCore: 1e10, L3BandwidthPerSocket: 1e10,
		CrossSocketFactor: 1, SyncLatencyIntra: 1e-9, SyncLatencyInter: 1e-9,
		ReducePerCoreBandwidth: 1e10,
	}
	m := New(node, []int{0})
	bufs := make([]*Buffer, len(bufElems))
	for i, n := range bufElems {
		bufs[i] = m.NewBuffer("b", Private, 0, n, false)
	}
	e := sim.NewEngine()
	e.Spawn("p", func(p *sim.Proc) {
		for _, op := range trace {
			b := bufs[op.buf]
			switch op.kind {
			case 0:
				m.Load(p, 0, b, op.off, op.n)
			case 1:
				m.Store(p, 0, b, op.off, op.n, Temporal)
			case 2:
				m.Store(p, 0, b, op.off, op.n, NonTemporal)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	regionTraffic = m.Counters().DRAMTraffic

	// Line model: same capacity, 8-way, 64-byte lines.
	c := cachesim.MustNew(cachesim.Config{SizeBytes: capacity, LineSize: 64, Ways: 8})
	base := make([]int64, len(bufElems))
	addr := int64(0)
	for i, n := range bufElems {
		base[i] = addr
		addr += n * ElemSize
		// Separate buffers by a page to avoid line sharing.
		addr = (addr + 4095) &^ 4095
	}
	for _, op := range trace {
		a := base[op.buf] + op.off*ElemSize
		sz := op.n * ElemSize
		switch op.kind {
		case 0:
			c.Load(a, sz)
		case 1:
			c.Store(a, sz)
		case 2:
			c.StoreNT(a, sz)
		}
	}
	c.Flush()
	lineTraffic = c.Stats().DRAMTraffic()
	return regionTraffic, lineTraffic
}

// ratioWithin asserts |a/b - 1| <= tol.
func ratioWithin(t *testing.T, label string, a, b int64, tol float64) {
	t.Helper()
	if b == 0 {
		t.Fatalf("%s: line model predicted zero traffic", label)
	}
	r := float64(a) / float64(b)
	if r < 1-tol || r > 1+tol {
		t.Errorf("%s: region model %d vs line model %d bytes (ratio %.3f, tol %.0f%%)",
			label, a, b, r, tol*100)
	}
}

func TestCrossValidateStreamingCopy(t *testing.T) {
	// Large t-copy: both models must predict ~3 bytes of traffic per byte.
	capacity := int64(1 << 16)
	elems := int64(1 << 14) // 128 KB per buffer, 4x capacity
	var trace []traceOp
	for off := int64(0); off < elems; off += 512 {
		trace = append(trace, traceOp{buf: 0, off: off, n: 512, kind: 0})
		trace = append(trace, traceOp{buf: 1, off: off, n: 512, kind: 1})
	}
	a, b := runTrace(t, capacity, []int64{elems, elems}, trace)
	ratioWithin(t, "streaming t-copy", a, b, 0.10)
}

func TestCrossValidateNTCopy(t *testing.T) {
	capacity := int64(1 << 16)
	elems := int64(1 << 14)
	var trace []traceOp
	for off := int64(0); off < elems; off += 512 {
		trace = append(trace, traceOp{buf: 0, off: off, n: 512, kind: 0})
		trace = append(trace, traceOp{buf: 1, off: off, n: 512, kind: 2})
	}
	a, b := runTrace(t, capacity, []int64{elems, elems}, trace)
	ratioWithin(t, "streaming nt-copy", a, b, 0.10)
}

func TestCrossValidateCacheResidentReuse(t *testing.T) {
	// Working set fits: after warm-up both models predict (almost) no
	// further traffic.
	capacity := int64(1 << 18)
	elems := int64(1 << 13) // 64 KB buffer in a 256 KB cache
	var trace []traceOp
	for rep := 0; rep < 5; rep++ {
		for off := int64(0); off < elems; off += 512 {
			trace = append(trace, traceOp{buf: 0, off: off, n: 512, kind: 0})
			trace = append(trace, traceOp{buf: 0, off: off, n: 512, kind: 1})
		}
	}
	a, b := runTrace(t, capacity, []int64{elems}, trace)
	// Traffic should be about one cold fill + final writeback regardless
	// of the five sweeps.
	bytes := elems * ElemSize
	if a > bytes*3 {
		t.Errorf("region model leaked traffic on resident reuse: %d (buffer %d)", a, bytes)
	}
	if b > bytes*3 {
		t.Errorf("line model leaked traffic on resident reuse: %d", b)
	}
}

func TestCrossValidateSlicedReductionPattern(t *testing.T) {
	// The MA inner loop: a small shared slot accumulates p send-buffer
	// slices. Slot stays resident; send buffers stream.
	capacity := int64(1 << 16)
	slot := int64(1 << 10) // 8 KB slot
	sbElems := int64(1 << 14)
	var trace []traceOp
	for off := int64(0); off < sbElems; off += slot {
		// copy-in: load sb slice, store slot
		trace = append(trace, traceOp{buf: 1, off: off, n: slot, kind: 0})
		trace = append(trace, traceOp{buf: 0, off: 0, n: slot, kind: 1})
		// 3 accumulate passes: load slot, load sb, store slot
		for k := 0; k < 3; k++ {
			trace = append(trace, traceOp{buf: 0, off: 0, n: slot, kind: 0})
			trace = append(trace, traceOp{buf: 1, off: off, n: slot, kind: 0})
			trace = append(trace, traceOp{buf: 0, off: 0, n: slot, kind: 1})
		}
	}
	a, b := runTrace(t, capacity, []int64{slot, sbElems}, trace)
	ratioWithin(t, "sliced reduction", a, b, 0.15)
}

func TestCrossValidateRandomStreams(t *testing.T) {
	// Property-ish: random sequences of sequential bursts agree within 25%
	// (the region model has no associativity conflicts, so exact equality
	// is not expected).
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := int64(1 << 16)
		bufs := []int64{1 << 13, 1 << 14, 1 << 12}
		var trace []traceOp
		for i := 0; i < 150; i++ {
			b := rng.Intn(len(bufs))
			n := int64(64 << rng.Intn(4)) // 64..512 elems
			maxOff := bufs[b] - n
			off := int64(0)
			if maxOff > 0 {
				off = rng.Int63n(maxOff)
			}
			trace = append(trace, traceOp{buf: b, off: off, n: n, kind: rng.Intn(3)})
		}
		a, b := runTrace(t, capacity, bufs, trace)
		r := float64(a) / float64(b)
		if r < 0.70 || r > 1.35 {
			t.Errorf("seed %d: region %d vs line %d (ratio %.2f)", seed, a, b, r)
		}
	}
}
