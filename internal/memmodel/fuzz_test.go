package memmodel

import "testing"

// FuzzCacheState drives the region tracker with arbitrary operation
// streams decoded from fuzz input, checking structural invariants after
// every step. `go test` runs the seed corpus; `go test -fuzz=FuzzCacheState`
// explores further.
func FuzzCacheState(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{255, 0, 255, 0, 128, 64, 32, 16})
	f.Add([]byte("interval soup"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := newCacheState(0, 2048)
		for i := 0; i+4 <= len(data); i += 4 {
			buf := uint64(data[i]%4) + 1
			lo := int64(data[i+1]) * 16
			hi := lo + int64(data[i+2])*8 + 1
			switch data[i+3] % 4 {
			case 0, 1:
				c.insert(buf, lo, hi, data[i+3]%2 == 0)
			case 2:
				c.invalidate(buf, lo, hi)
			case 3:
				if got := c.lookup(buf, lo, hi); got < 0 || got > hi-lo {
					t.Fatalf("lookup out of bounds: %d for [%d,%d)", got, lo, hi)
				}
			}
			if err := c.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", i/4, err)
			}
		}
	})
}

// FuzzBufferRanges checks that CheckRange accepts exactly the in-bounds
// ranges.
func FuzzBufferRanges(f *testing.F) {
	f.Add(int64(10), int64(0), int64(10))
	f.Add(int64(10), int64(5), int64(5))
	f.Add(int64(0), int64(0), int64(0))
	f.Fuzz(func(t *testing.T, elems, off, n int64) {
		if elems < 0 || elems > 1<<20 {
			return
		}
		b := &Buffer{Name: "fuzz", Elems: elems}
		inBounds := off >= 0 && n >= 0 && off+n >= 0 && off+n <= elems
		defer func() {
			r := recover()
			if inBounds && r != nil {
				t.Fatalf("in-bounds range [%d,%d) of %d panicked: %v", off, off+n, elems, r)
			}
			if !inBounds && r == nil {
				t.Fatalf("out-of-bounds range [%d,%d) of %d accepted", off, off+n, elems)
			}
		}()
		b.CheckRange(off, n)
	})
}
