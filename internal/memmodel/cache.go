package memmodel

import (
	"container/list"
	"fmt"
)

// cacheState tracks, for one socket, which byte ranges of which buffers are
// currently cache-resident. Tracking is region-granular rather than
// line-granular: collectives access memory in contiguous slice-sized ranges,
// so a handful of intervals per buffer suffices and the tracker stays O(1)
// per operation in practice. internal/cachesim provides a line-granular
// simulator used to validate this approximation.
//
// Regions are kept in a recency list (LRU at the front). Inserting a region
// that overlaps existing ones trims the old regions; inserting beyond
// capacity evicts from the LRU end, reporting how many dirty bytes were
// written back so the caller can charge DRAM traffic.
type cacheState struct {
	socket   int
	capacity int64
	used     int64
	lru      *list.List           // of *region, front = LRU
	byBuf    map[uint64][]*region // per-buffer, sorted by lo
}

// region is a cached byte range [lo, hi) of one buffer.
type region struct {
	buf    uint64
	lo, hi int64
	dirty  bool
	elem   *list.Element
}

func (r *region) len() int64 { return r.hi - r.lo }

func newCacheState(socket int, capacity int64) *cacheState {
	if capacity <= 0 {
		panic("memmodel: cache capacity must be positive")
	}
	return &cacheState{
		socket:   socket,
		capacity: capacity,
		lru:      list.New(),
		byBuf:    make(map[uint64][]*region),
	}
}

// lookup returns how many bytes of [lo, hi) of buffer b are cached.
func (c *cacheState) lookup(buf uint64, lo, hi int64) int64 {
	var cached int64
	for _, r := range c.byBuf[buf] {
		if r.hi <= lo {
			continue
		}
		if r.lo >= hi {
			break
		}
		a, b := max64(r.lo, lo), min64(r.hi, hi)
		cached += b - a
	}
	return cached
}

// lookupDirty returns how many bytes of [lo, hi) are cached dirty.
func (c *cacheState) lookupDirty(buf uint64, lo, hi int64) int64 {
	var dirty int64
	for _, r := range c.byBuf[buf] {
		if r.hi <= lo || !r.dirty {
			continue
		}
		if r.lo >= hi {
			break
		}
		a, b := max64(r.lo, lo), min64(r.hi, hi)
		dirty += b - a
	}
	return dirty
}

// insert makes [lo, hi) of buffer b cache-resident with the given dirty
// state, evicting LRU regions as needed. It returns the number of dirty
// bytes written back by evictions (including dirty bytes of overlapped
// older regions whose contents are superseded: those are NOT counted, the
// new store subsumes them).
func (c *cacheState) insert(buf uint64, lo, hi int64, dirty bool) (writeback int64) {
	if lo >= hi {
		return 0
	}
	// A region larger than the whole cache leaves only its tail resident
	// (streaming through the cache evicts its own head).
	if hi-lo > c.capacity {
		lo = hi - c.capacity
	}
	c.remove(buf, lo, hi)
	r := &region{buf: buf, lo: lo, hi: hi, dirty: dirty}
	r.elem = c.lru.PushBack(r)
	c.byBuf[buf] = insertSorted(c.byBuf[buf], r)
	c.used += r.len()
	for c.used > c.capacity {
		victim := c.lru.Front().Value.(*region)
		if victim == r && c.lru.Len() == 1 {
			break // cannot evict the region we just inserted entirely
		}
		c.evict(victim)
		if victim.dirty {
			writeback += victim.len()
		}
	}
	return writeback
}

// invalidate drops [lo, hi) of buffer b from the cache without write-back
// (a non-temporal store supersedes any cached copy).
func (c *cacheState) invalidate(buf uint64, lo, hi int64) {
	c.remove(buf, lo, hi)
}

// invalidateBuffer drops every cached region of the buffer.
func (c *cacheState) invalidateBuffer(buf uint64) {
	regions := c.byBuf[buf]
	for _, r := range regions {
		c.lru.Remove(r.elem)
		c.used -= r.len()
	}
	delete(c.byBuf, buf)
}

// remove deletes [lo, hi) from the tracked regions of buffer b, splitting
// regions that partially overlap. Split fragments keep the original
// recency position and dirty bit.
func (c *cacheState) remove(buf uint64, lo, hi int64) {
	old := c.byBuf[buf]
	if len(old) == 0 {
		return
	}
	// The split case emits two regions for one consumed, so kept must not
	// alias old's backing array.
	kept := make([]*region, 0, len(old)+1)
	for _, r := range old {
		switch {
		case r.hi <= lo || r.lo >= hi: // disjoint
			kept = append(kept, r)
		case r.lo >= lo && r.hi <= hi: // fully covered: drop
			c.lru.Remove(r.elem)
			c.used -= r.len()
		case r.lo < lo && r.hi > hi: // covers the hole: split in two
			c.used -= hi - lo
			tail := &region{buf: buf, lo: hi, hi: r.hi, dirty: r.dirty}
			tail.elem = c.lru.InsertAfter(tail, r.elem)
			r.hi = lo
			kept = append(kept, r, tail)
		case r.lo < lo: // overlaps from the left: trim tail
			c.used -= r.hi - lo
			r.hi = lo
			kept = append(kept, r)
		default: // overlaps from the right: trim head
			c.used -= hi - r.lo
			r.lo = hi
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(c.byBuf, buf)
	} else {
		c.byBuf[buf] = kept
	}
}

// evict removes a whole region from the cache (LRU victim).
func (c *cacheState) evict(r *region) {
	c.lru.Remove(r.elem)
	c.used -= r.len()
	regions := c.byBuf[r.buf]
	for i, rr := range regions {
		if rr == r {
			c.byBuf[r.buf] = append(regions[:i], regions[i+1:]...)
			break
		}
	}
	if len(c.byBuf[r.buf]) == 0 {
		delete(c.byBuf, r.buf)
	}
}

// occupancy returns the number of cached bytes (for tests/diagnostics).
func (c *cacheState) occupancy() int64 { return c.used }

// checkInvariants verifies internal consistency (test helper).
func (c *cacheState) checkInvariants() error {
	var total int64
	count := 0
	for buf, regions := range c.byBuf {
		var prev int64 = -1
		for _, r := range regions {
			if r.lo >= r.hi {
				return fmt.Errorf("empty region %+v in buf %d", r, buf)
			}
			if r.lo < prev {
				return fmt.Errorf("regions of buf %d out of order or overlapping", buf)
			}
			prev = r.hi
			total += r.len()
			count++
		}
	}
	if total != c.used {
		return fmt.Errorf("used = %d but regions sum to %d", c.used, total)
	}
	if count != c.lru.Len() {
		return fmt.Errorf("region count %d != lru len %d", count, c.lru.Len())
	}
	if c.used > c.capacity {
		return fmt.Errorf("used %d exceeds capacity %d", c.used, c.capacity)
	}
	return nil
}

func insertSorted(regions []*region, r *region) []*region {
	i := 0
	for i < len(regions) && regions[i].lo < r.lo {
		i++
	}
	regions = append(regions, nil)
	copy(regions[i+1:], regions[i:])
	regions[i] = r
	return regions
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
