package memmodel

import "fmt"

// cacheState tracks, for one socket, which byte ranges of which buffers are
// currently cache-resident. Tracking is region-granular rather than
// line-granular: collectives access memory in contiguous slice-sized ranges,
// so a handful of intervals per buffer suffice and the tracker stays O(1)
// per operation in practice. internal/cachesim provides a line-granular
// simulator used to validate this approximation.
//
// Regions are kept on an intrusive recency list (LRU at the front; no
// per-node allocations). Inserting a region that overlaps existing ones
// trims the old regions; inserting beyond capacity evicts from the LRU end,
// reporting how many dirty bytes were written back so the caller can charge
// DRAM traffic. Evicted and trimmed-away region objects are recycled
// through a free list, and per-buffer indexes are sorted by lo and located
// through a sequential-access cursor (see seek) with binary search as the
// fallback.
//
// Fragmentation control: a freshly inserted region merges with the region
// used immediately before it (its LRU predecessor) when the two are
// address-adjacent in the same buffer with the same dirty state, so
// streaming access keeps one growing region instead of one per chunk. The
// merge is purely representational — the merged region records its
// constituent segments in recency order, and any operation that could
// observe granularity (LRU eviction, partial removal) first explodes the
// region back into exactly the plain regions an unmerged tracker would
// hold. The tracker's observable behavior is therefore a function of the
// *logical* state alone — the sequence of plain (per-segment) regions in
// recency order — and simulated times, traffic counters and residency
// decisions are bit-identical with and without merging (golden-determinism
// tests in internal/bench enforce this). The fast paths in insert exploit
// the same property in reverse: an operation whose logical effect is the
// identity (re-touching the most recently used range) may skip the
// explode/re-merge churn entirely.
type cacheState struct {
	socket   int
	capacity int64
	used     int64

	// Intrusive LRU list: lruFront is the next victim, lruBack the most
	// recently used region. nregions counts list members.
	lruFront *region
	lruBack  *region
	nregions int

	// free chains recycled region objects through their next pointers.
	free *region

	// byBuf[id] is the lo-sorted region index of buffer id. Buffer IDs are
	// dense per Model, so a flat slice replaces a map on the hot path.
	byBuf [][]*region

	// curs[slot][id] is buffer id's sequential-access cursor for cursor
	// bank `slot`: the last index a lookup, insert or remove through that
	// bank touched in byBuf[id]. Collectives stream address-adjacent
	// chunks, so a stream's next position is almost always cur or cur+1;
	// banks exist because several ranks interleave their streams through
	// distinct slices of one shared buffer, which would thrash a single
	// shared cursor. The Model selects the acting rank's bank via curSlot
	// (its per-socket core index); code that never sets it uses bank 0.
	// seek validates the cursor in O(1) and falls back to binary search
	// only on a miss. Cursors are advisory — a stale value is detected,
	// never trusted — so no operation needs to keep them precise.
	curs    [][]int32
	curSlot int

	// evictBuf/evictIdx remember where the last eviction spliced its
	// buffer index: LRU order visits a streaming buffer's regions in
	// address order, so after splicing index i the next victim of that
	// buffer sits at index i again. Advisory, validated exactly.
	evictBuf uint64
	evictIdx int32
}

// region is a cached byte range [lo, hi) of one buffer.
type region struct {
	buf        uint64
	lo, hi     int64
	dirty      bool
	prev, next *region // intrusive LRU links (next also chains the free list)

	// segs, when non-empty, lists the merged constituent sub-ranges in
	// recency order (oldest first). The segments tile [lo, hi) exactly.
	// A plain (unmerged) region has segs == nil.
	segs [][2]int64
}

// maxSegs bounds how many constituent sub-ranges a merged region may
// carry. Merging is purely representational (explode restores the exact
// unmerged state), so the cap cannot change simulated behavior; it only
// bounds the cost of an explode and prevents a merge/explode thrash
// cycle under eviction pressure, where a single unbounded merged region
// would be exploded and fully re-merged on every insert.
const maxSegs = 64

func (r *region) len() int64 { return r.hi - r.lo }

func newCacheState(socket int, capacity int64) *cacheState {
	if capacity <= 0 {
		panic("memmodel: cache capacity must be positive")
	}
	return &cacheState{socket: socket, capacity: capacity}
}

// regs returns the sorted region index of a buffer (nil when empty).
func (c *cacheState) regs(buf uint64) []*region {
	if buf < uint64(len(c.byBuf)) {
		return c.byBuf[buf]
	}
	return nil
}

// setRegs stores the region index of a buffer, growing the table on first
// contact with a new buffer ID.
func (c *cacheState) setRegs(buf uint64, rs []*region) {
	if buf >= uint64(len(c.byBuf)) {
		grown := make([][]*region, buf+1)
		copy(grown, c.byBuf)
		c.byBuf = grown
	}
	c.byBuf[buf] = rs
}

// cur returns the active bank's cursor for a buffer (0 — a valid advisory
// guess — when the bank or entry does not exist yet).
func (c *cacheState) cur(buf uint64) int {
	if c.curSlot < len(c.curs) {
		if cs := c.curs[c.curSlot]; buf < uint64(len(cs)) {
			return int(cs[buf])
		}
	}
	return 0
}

// setCur records the cursor position of a buffer in the active bank,
// growing the bank on demand (no-op for buffers byBuf has never seen —
// there is nothing to seek in an empty index anyway).
func (c *cacheState) setCur(buf uint64, i int) {
	if buf >= uint64(len(c.byBuf)) {
		return
	}
	for len(c.curs) <= c.curSlot {
		c.curs = append(c.curs, nil)
	}
	cs := c.curs[c.curSlot]
	if buf >= uint64(len(cs)) {
		grown := make([]int32, len(c.byBuf))
		copy(grown, cs)
		c.curs[c.curSlot] = grown
		cs = grown
	}
	cs[buf] = int32(i)
}

// alloc returns a region initialized to the given range, recycling a freed
// object when one is available.
func (c *cacheState) alloc(buf uint64, lo, hi int64, dirty bool) *region {
	r := c.free
	if r != nil {
		c.free = r.next
		*r = region{buf: buf, lo: lo, hi: hi, dirty: dirty}
	} else {
		r = &region{buf: buf, lo: lo, hi: hi, dirty: dirty}
	}
	return r
}

// release puts a region (already off the LRU list and out of byBuf) onto
// the free list.
func (c *cacheState) release(r *region) {
	*r = region{next: c.free}
	c.free = r
}

// lruPushBack appends r as the most recently used region.
func (c *cacheState) lruPushBack(r *region) {
	r.prev, r.next = c.lruBack, nil
	if c.lruBack != nil {
		c.lruBack.next = r
	} else {
		c.lruFront = r
	}
	c.lruBack = r
	c.nregions++
}

// lruInsertAfter links r immediately after `after` in recency order.
func (c *cacheState) lruInsertAfter(r, after *region) {
	r.prev, r.next = after, after.next
	if after.next != nil {
		after.next.prev = r
	} else {
		c.lruBack = r
	}
	after.next = r
	c.nregions++
}

// lruRemove unlinks r from the recency list.
func (c *cacheState) lruRemove(r *region) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		c.lruFront = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		c.lruBack = r.prev
	}
	r.prev, r.next = nil, nil
	c.nregions--
}

// overlapStart returns the index of the first region of rs that may overlap
// [lo, ...): regions are disjoint and sorted by lo, so their hi values are
// sorted too and binary search applies. Open-coded (rather than
// sort.Search) to avoid a closure call per probe on the hot path.
func overlapStart(rs []*region, lo int64) int {
	i, j := 0, len(rs)
	for i < j {
		h := int(uint(i+j) >> 1)
		if rs[h].hi > lo {
			j = h
		} else {
			i = h + 1
		}
	}
	return i
}

// searchLo returns the index of the first region of rs with lo >= key.
func searchLo(rs []*region, key int64) int {
	i, j := 0, len(rs)
	for i < j {
		h := int(uint(i+j) >> 1)
		if rs[h].lo >= key {
			j = h
		} else {
			i = h + 1
		}
	}
	return i
}

// seek returns overlapStart(rs, lo), trusting the buffer's cursor when it
// (or its successor — the sequential-streaming step) still identifies the
// answer. The validation re-derives the overlapStart condition exactly, so
// a stale cursor can only cost the binary-search fallback, never a wrong
// index.
// seekWindow bounds how far seek walks linearly from the cursor before
// giving up and binary-searching: evictions and removals shift a buffer's
// indexes by a few slots between one stream's operations, so the answer is
// usually within a short distance of the stale cursor.
const seekWindow = 8

func (c *cacheState) seek(buf uint64, rs []*region, lo int64) int {
	i := c.cur(buf)
	if i >= len(rs) {
		i = len(rs) - 1
	}
	if i >= 0 {
		if rs[i].hi > lo {
			// First candidate: walk left to the earliest region with hi > lo.
			for k := 0; k < seekWindow; k++ {
				if i == 0 || rs[i-1].hi <= lo {
					return i
				}
				i--
			}
		} else {
			// Walk right to the first region with hi > lo.
			for k := 0; k < seekWindow; k++ {
				i++
				if i == len(rs) || rs[i].hi > lo {
					return i
				}
			}
		}
	}
	return overlapStart(rs, lo)
}

// explodeAt dissolves the merged region r, located at index ri of its
// buffer's sorted slice, back into one plain region per recorded segment,
// at the same LRU position and in segment (recency) order — exactly the
// regions an unmerged tracker would hold. Returns the region of the newest
// segment. No-op on plain regions.
func (c *cacheState) explodeAt(r *region, ri int) *region {
	if len(r.segs) == 0 {
		return r
	}
	segs := r.segs
	r.segs = nil
	rs := c.regs(r.buf)
	// Widen r's slot into a window of len(segs) slots with one splice.
	k := len(segs)
	rs = append(rs, make([]*region, k-1)...)
	copy(rs[ri+k:], rs[ri+1:])
	window := rs[ri : ri+k]
	// The oldest segment reuses r itself, keeping its LRU links; younger
	// segments are threaded in immediately after it, oldest to newest.
	// Slice placement is by address: segments of a streaming merge arrive
	// already lo-sorted, so the insertion step below is O(1) per segment
	// in the common case.
	r.lo, r.hi = segs[0][0], segs[0][1]
	window[0] = r
	last := r
	for j := 1; j < k; j++ {
		nr := c.alloc(r.buf, segs[j][0], segs[j][1], r.dirty)
		c.lruInsertAfter(nr, last)
		last = nr
		pos := j
		for pos > 0 && window[pos-1].lo > nr.lo {
			window[pos] = window[pos-1]
			pos--
		}
		window[pos] = nr
	}
	c.setRegs(r.buf, rs)
	return last
}

// explode is explodeAt for callers that do not know r's slice index.
func (c *cacheState) explode(r *region) *region {
	if len(r.segs) == 0 {
		return r
	}
	rs := c.regs(r.buf)
	ri := searchLo(rs, r.lo)
	return c.explodeAt(r, ri)
}

// lookup returns how many bytes of [lo, hi) of buffer b are cached.
func (c *cacheState) lookup(buf uint64, lo, hi int64) int64 {
	rs := c.regs(buf)
	i := c.seek(buf, rs, lo)
	var cached int64
	for j := i; j < len(rs) && rs[j].lo < hi; j++ {
		a, b := max64(rs[j].lo, lo), min64(rs[j].hi, hi)
		cached += b - a
	}
	c.setCur(buf, i)
	return cached
}

// lookupDirty returns how many bytes of [lo, hi) are cached dirty.
func (c *cacheState) lookupDirty(buf uint64, lo, hi int64) int64 {
	rs := c.regs(buf)
	i := c.seek(buf, rs, lo)
	var dirty int64
	for j := i; j < len(rs) && rs[j].lo < hi; j++ {
		if !rs[j].dirty {
			continue
		}
		a, b := max64(rs[j].lo, lo), min64(rs[j].hi, hi)
		dirty += b - a
	}
	c.setCur(buf, i)
	return dirty
}

// lookupBoth returns lookup and lookupDirty of [lo, hi) in a single pass —
// the fused per-chunk query of Model.Load.
func (c *cacheState) lookupBoth(buf uint64, lo, hi int64) (cached, dirty int64) {
	rs := c.regs(buf)
	i := c.seek(buf, rs, lo)
	for j := i; j < len(rs) && rs[j].lo < hi; j++ {
		a, b := max64(rs[j].lo, lo), min64(rs[j].hi, hi)
		cached += b - a
		if rs[j].dirty {
			dirty += b - a
		}
	}
	c.setCur(buf, i)
	return cached, dirty
}

// insert makes [lo, hi) of buffer b cache-resident with the given dirty
// state, evicting LRU regions as needed. It returns the number of dirty
// bytes written back by evictions (including dirty bytes of overlapped
// older regions whose contents are superseded: those are NOT counted, the
// new store subsumes them).
func (c *cacheState) insert(buf uint64, lo, hi int64, dirty bool) (writeback int64) {
	if lo >= hi {
		return 0
	}
	// A region larger than the whole cache leaves only its tail resident
	// (streaming through the cache evicts its own head).
	if hi-lo > c.capacity {
		lo = hi - c.capacity
	}
	// Fast paths: a re-touch of an exactly-tracked range with unchanged
	// dirty state. Both shortcuts reproduce the slow path's *logical*
	// effect (remove the range's regions, re-insert one plain region at
	// the MRU position) without the explode / slice-splice / re-merge
	// churn, which is what makes streaming chunk loops O(1).
	rs := c.regs(buf)
	if i := c.seek(buf, rs, lo); i < len(rs) {
		if r := rs[i]; r.dirty == dirty {
			if r.lo == lo && r.hi == hi {
				// The whole region is re-touched: logically its
				// constituent segments are all removed and replaced by one
				// plain MRU region covering the same range.
				r.segs = nil
				if c.lruBack != r {
					c.lruRemove(r)
					c.lruPushBack(r)
				}
				c.setCur(buf, i)
				c.mergeChain(buf, r, i)
				return 0
			}
			if r == c.lruBack && len(r.segs) > 0 && r.lo <= lo && hi <= r.hi {
				if s := r.segs[len(r.segs)-1]; s[0] == lo && s[1] == hi {
					// Re-touch of the newest segment of the MRU region:
					// logically that segment is removed and re-inserted at
					// the MRU position it already occupies — the identity.
					c.setCur(buf, i)
					return 0
				}
			}
		}
	}
	ri := c.remove(buf, lo, hi)
	r := c.alloc(buf, lo, hi, dirty)
	c.lruPushBack(r)
	rs = c.regs(buf)
	rs = append(rs, nil)
	copy(rs[ri+1:], rs[ri:])
	rs[ri] = r
	c.setRegs(buf, rs)
	c.used += r.len()
	shifted := false
	for c.used > c.capacity {
		victim := c.lruFront
		if len(victim.segs) > 0 {
			// Restore per-segment granularity so victims are evicted with
			// the same capacity re-checks as an unmerged tracker.
			c.explode(victim)
			if victim.buf == buf {
				shifted = true
			}
			continue
		}
		if victim == r && c.nregions == 1 {
			break // cannot evict the region we just inserted entirely
		}
		wasDirty, vlen := victim.dirty, victim.len()
		if victim.buf == buf {
			shifted = true
		}
		c.evict(victim)
		if wasDirty {
			writeback += vlen
		}
	}
	if shifted {
		// Evictions (or victim explodes) in this buffer moved r's index.
		rs = c.regs(buf)
		ri = searchLo(rs, r.lo)
	}
	c.mergeChain(buf, r, ri)
	return writeback
}

// mergeChain fuses r (at index ri of its buffer's sorted slice) into its
// LRU predecessor while that predecessor is an address-adjacent region of
// the same buffer with the same dirty state (see the type comment; chained
// because a bridging insert can expose another adjacent predecessor).
func (c *cacheState) mergeChain(buf uint64, r *region, ri int) {
	for {
		q := r.prev
		if q == nil || q.buf != buf || q.dirty != r.dirty || (q.hi != r.lo && q.lo != r.hi) {
			break
		}
		qn, rn := len(q.segs), len(r.segs)
		if qn == 0 {
			qn = 1
		}
		if rn == 0 {
			rn = 1
		}
		if qn+rn > maxSegs {
			break
		}
		rs := c.regs(buf)
		// Regions are disjoint and sorted, so an address-adjacent q is r's
		// immediate slice neighbor; keep a search fallback for safety.
		qi := ri - 1
		if q.lo == r.hi {
			qi = ri + 1
		}
		if qi < 0 || qi >= len(rs) || rs[qi] != q {
			qi = searchLo(rs, q.lo)
		}
		segs := q.segs
		if segs == nil {
			segs = [][2]int64{{q.lo, q.hi}}
		}
		if r.segs == nil {
			segs = append(segs, [2]int64{r.lo, r.hi})
		} else {
			segs = append(segs, r.segs...)
		}
		if q.hi == r.lo {
			r.lo = q.lo
		} else {
			r.hi = q.hi
		}
		r.segs = segs
		q.segs = nil // ownership moved to r; keep release from recycling it
		c.setRegs(buf, append(rs[:qi], rs[qi+1:]...))
		if qi < ri {
			ri--
		}
		c.lruRemove(q)
		c.release(q)
	}
	c.setCur(buf, ri)
}

// invalidate drops [lo, hi) of buffer b from the cache without write-back
// (a non-temporal store supersedes any cached copy).
func (c *cacheState) invalidate(buf uint64, lo, hi int64) {
	c.remove(buf, lo, hi)
}

// invalidateBuffer drops every cached region of the buffer.
func (c *cacheState) invalidateBuffer(buf uint64) {
	for _, r := range c.regs(buf) {
		c.lruRemove(r)
		c.used -= r.len()
		c.release(r)
	}
	c.setRegs(buf, nil)
}

// remove deletes [lo, hi) from the tracked regions of buffer b, splitting
// regions that partially overlap. Split fragments keep the original
// recency position and dirty bit. Merged regions overlapping the range are
// exploded first so fragments land at their exact unmerged recency slots.
// It returns the index at which a region starting at lo now belongs (the
// insertion point insert uses).
func (c *cacheState) remove(buf uint64, lo, hi int64) int {
	rs := c.regs(buf)
	start := c.seek(buf, rs, lo)
	for i := start; i < len(rs) && rs[i].lo < hi; i++ {
		if len(rs[i].segs) > 0 {
			c.explodeAt(rs[i], i)
			rs = c.regs(buf)
		}
	}
	// Explosions may have dropped finer-grained regions in front of the
	// old start whose hi no longer clears lo; step past them.
	for start < len(rs) && rs[start].hi <= lo {
		start++
	}
	c.setCur(buf, start)
	if start == len(rs) || rs[start].lo >= hi {
		return start
	}
	if r := rs[start]; r.lo < lo && r.hi > hi {
		// One region covers the hole entirely: split it in two.
		c.used -= hi - lo
		tail := c.alloc(buf, hi, r.hi, r.dirty)
		c.lruInsertAfter(tail, r)
		r.hi = lo
		rs = append(rs, nil)
		copy(rs[start+2:], rs[start+1:])
		rs[start+1] = tail
		c.setRegs(buf, rs)
		return start + 1
	}
	i := start
	if r := rs[i]; r.lo < lo { // overlaps from the left: trim its tail
		c.used -= r.hi - lo
		r.hi = lo
		i++
	}
	j := i
	for j < len(rs) && rs[j].hi <= hi { // fully covered: drop
		c.lruRemove(rs[j])
		c.used -= rs[j].len()
		c.release(rs[j])
		j++
	}
	if j < len(rs) && rs[j].lo < hi { // overlaps from the right: trim its head
		c.used -= hi - rs[j].lo
		rs[j].lo = hi
	}
	if i != j {
		if i == 0 {
			// Head drop: advance the slice start instead of memmoving the
			// tail down — streaming eviction/removal always trims here.
			rs = rs[j:]
		} else {
			rs = append(rs[:i], rs[j:]...)
		}
		c.setRegs(buf, rs)
	}
	return i
}

// evict removes a whole plain region from the cache (LRU victim) and
// recycles it.
func (c *cacheState) evict(r *region) {
	c.lruRemove(r)
	c.used -= r.len()
	rs := c.regs(r.buf)
	// A streaming buffer's LRU order visits its regions in address order,
	// so after the previous eviction spliced index i, this victim usually
	// sits at index i of the same buffer again; validate before trusting.
	i := -1
	if r.buf == c.evictBuf {
		if j := int(c.evictIdx); j < len(rs) && rs[j] == r {
			i = j
		}
	}
	if i < 0 {
		if rs[0] == r {
			i = 0
		} else {
			i = searchLo(rs, r.lo)
		}
	}
	if i == 0 {
		// Head drop (see remove): no memmove for in-address-order victims.
		c.setRegs(r.buf, rs[1:])
	} else {
		c.setRegs(r.buf, append(rs[:i], rs[i+1:]...))
	}
	c.evictBuf, c.evictIdx = r.buf, int32(i)
	c.release(r)
}

// occupancy returns the number of cached bytes (for tests/diagnostics).
func (c *cacheState) occupancy() int64 { return c.used }

// checkInvariants verifies internal consistency (test helper).
func (c *cacheState) checkInvariants() error {
	var total int64
	count := 0
	for buf, regions := range c.byBuf {
		var prev int64 = -1
		for _, r := range regions {
			if r.buf != uint64(buf) {
				return fmt.Errorf("region %+v indexed under buf %d", r, buf)
			}
			if r.lo >= r.hi {
				return fmt.Errorf("empty region %+v in buf %d", r, buf)
			}
			if r.lo < prev {
				return fmt.Errorf("regions of buf %d out of order or overlapping", buf)
			}
			if len(r.segs) > 0 {
				var segTotal int64
				for _, s := range r.segs {
					if s[0] >= s[1] || s[0] < r.lo || s[1] > r.hi {
						return fmt.Errorf("segment %v outside region [%d,%d) of buf %d", s, r.lo, r.hi, buf)
					}
					segTotal += s[1] - s[0]
				}
				if segTotal != r.len() {
					return fmt.Errorf("segments of region [%d,%d) sum to %d, want %d", r.lo, r.hi, segTotal, r.len())
				}
			}
			prev = r.hi
			total += r.len()
			count++
		}
	}
	if total != c.used {
		return fmt.Errorf("used = %d but regions sum to %d", c.used, total)
	}
	lruCount := 0
	for r := c.lruFront; r != nil; r = r.next {
		lruCount++
		if lruCount > count {
			return fmt.Errorf("lru list longer than region count %d (cycle?)", count)
		}
	}
	if count != lruCount || count != c.nregions {
		return fmt.Errorf("region count %d != lru len %d (nregions %d)", count, lruCount, c.nregions)
	}
	if c.used > c.capacity {
		return fmt.Errorf("used %d exceeds capacity %d", c.used, c.capacity)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
