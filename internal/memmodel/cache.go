package memmodel

import (
	"fmt"
	"sort"
)

// cacheState tracks, for one socket, which byte ranges of which buffers are
// currently cache-resident. Tracking is region-granular rather than
// line-granular: collectives access memory in contiguous slice-sized ranges,
// so a handful of intervals per buffer suffices and the tracker stays O(1)
// per operation in practice. internal/cachesim provides a line-granular
// simulator used to validate this approximation.
//
// Regions are kept on an intrusive recency list (LRU at the front; no
// per-node allocations). Inserting a region that overlaps existing ones
// trims the old regions; inserting beyond capacity evicts from the LRU end,
// reporting how many dirty bytes were written back so the caller can charge
// DRAM traffic. Evicted and trimmed-away region objects are recycled
// through a free list, and per-buffer indexes are sorted by lo and searched
// with binary search.
//
// Fragmentation control: a freshly inserted region merges with the region
// used immediately before it (its LRU predecessor) when the two are
// address-adjacent in the same buffer with the same dirty state, so
// streaming access keeps one growing region instead of one per chunk. The
// merge is purely representational — the merged region records its
// constituent segments in recency order, and any operation that could
// observe granularity (LRU eviction, partial removal) first explodes the
// region back into exactly the plain regions an unmerged tracker would
// hold. Simulated times, traffic counters and residency decisions are
// therefore bit-identical with and without merging (golden-determinism
// tests in internal/bench enforce this).
type cacheState struct {
	socket   int
	capacity int64
	used     int64

	// Intrusive LRU list: lruFront is the next victim, lruBack the most
	// recently used region. nregions counts list members.
	lruFront *region
	lruBack  *region
	nregions int

	// free chains recycled region objects through their next pointers.
	free *region

	byBuf map[uint64][]*region // per-buffer, sorted by lo
}

// region is a cached byte range [lo, hi) of one buffer.
type region struct {
	buf        uint64
	lo, hi     int64
	dirty      bool
	prev, next *region // intrusive LRU links (next also chains the free list)

	// segs, when non-empty, lists the merged constituent sub-ranges in
	// recency order (oldest first). The segments tile [lo, hi) exactly.
	// A plain (unmerged) region has segs == nil.
	segs [][2]int64
}

// maxSegs bounds how many constituent sub-ranges a merged region may
// carry. Merging is purely representational (explode restores the exact
// unmerged state), so the cap cannot change simulated behavior; it only
// bounds the cost of an explode and prevents a merge/explode thrash
// cycle under eviction pressure, where a single unbounded merged region
// would be exploded and fully re-merged on every insert.
const maxSegs = 64

func (r *region) len() int64 { return r.hi - r.lo }

func newCacheState(socket int, capacity int64) *cacheState {
	if capacity <= 0 {
		panic("memmodel: cache capacity must be positive")
	}
	return &cacheState{
		socket:   socket,
		capacity: capacity,
		byBuf:    make(map[uint64][]*region),
	}
}

// alloc returns a region initialized to the given range, recycling a freed
// object when one is available.
func (c *cacheState) alloc(buf uint64, lo, hi int64, dirty bool) *region {
	r := c.free
	if r != nil {
		c.free = r.next
		*r = region{buf: buf, lo: lo, hi: hi, dirty: dirty}
	} else {
		r = &region{buf: buf, lo: lo, hi: hi, dirty: dirty}
	}
	return r
}

// release puts a region (already off the LRU list and out of byBuf) onto
// the free list.
func (c *cacheState) release(r *region) {
	*r = region{next: c.free}
	c.free = r
}

// lruPushBack appends r as the most recently used region.
func (c *cacheState) lruPushBack(r *region) {
	r.prev, r.next = c.lruBack, nil
	if c.lruBack != nil {
		c.lruBack.next = r
	} else {
		c.lruFront = r
	}
	c.lruBack = r
	c.nregions++
}

// lruInsertAfter links r immediately after `after` in recency order.
func (c *cacheState) lruInsertAfter(r, after *region) {
	r.prev, r.next = after, after.next
	if after.next != nil {
		after.next.prev = r
	} else {
		c.lruBack = r
	}
	after.next = r
	c.nregions++
}

// lruRemove unlinks r from the recency list.
func (c *cacheState) lruRemove(r *region) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		c.lruFront = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		c.lruBack = r.prev
	}
	r.prev, r.next = nil, nil
	c.nregions--
}

// insertSorted splices r into the lo-sorted per-buffer index.
func insertSorted(rs []*region, r *region) []*region {
	i := sort.Search(len(rs), func(j int) bool { return rs[j].lo >= r.lo })
	rs = append(rs, nil)
	copy(rs[i+1:], rs[i:])
	rs[i] = r
	return rs
}

// overlapStart returns the index of the first region of rs that may overlap
// [lo, ...): regions are disjoint and sorted by lo, so their hi values are
// sorted too and binary search applies.
func overlapStart(rs []*region, lo int64) int {
	return sort.Search(len(rs), func(i int) bool { return rs[i].hi > lo })
}

// explode dissolves a merged region back into one plain region per
// recorded segment, at the same LRU position and in segment (recency)
// order — exactly the regions an unmerged tracker would hold. Returns the
// region of the newest segment. No-op on plain regions.
func (c *cacheState) explode(r *region) *region {
	if len(r.segs) == 0 {
		return r
	}
	segs := r.segs
	r.segs = nil
	rs := c.byBuf[r.buf]
	i := sort.Search(len(rs), func(j int) bool { return rs[j].lo >= r.lo })
	rs = append(rs[:i], rs[i+1:]...)
	// The oldest segment reuses r itself, keeping its LRU links; younger
	// segments are threaded in immediately after it, oldest to newest.
	r.lo, r.hi = segs[0][0], segs[0][1]
	rs = insertSorted(rs, r)
	last := r
	for _, s := range segs[1:] {
		nr := c.alloc(r.buf, s[0], s[1], r.dirty)
		c.lruInsertAfter(nr, last)
		rs = insertSorted(rs, nr)
		last = nr
	}
	c.byBuf[r.buf] = rs
	return last
}

// lookup returns how many bytes of [lo, hi) of buffer b are cached.
func (c *cacheState) lookup(buf uint64, lo, hi int64) int64 {
	rs := c.byBuf[buf]
	var cached int64
	for i := overlapStart(rs, lo); i < len(rs) && rs[i].lo < hi; i++ {
		a, b := max64(rs[i].lo, lo), min64(rs[i].hi, hi)
		cached += b - a
	}
	return cached
}

// lookupDirty returns how many bytes of [lo, hi) are cached dirty.
func (c *cacheState) lookupDirty(buf uint64, lo, hi int64) int64 {
	rs := c.byBuf[buf]
	var dirty int64
	for i := overlapStart(rs, lo); i < len(rs) && rs[i].lo < hi; i++ {
		if !rs[i].dirty {
			continue
		}
		a, b := max64(rs[i].lo, lo), min64(rs[i].hi, hi)
		dirty += b - a
	}
	return dirty
}

// insert makes [lo, hi) of buffer b cache-resident with the given dirty
// state, evicting LRU regions as needed. It returns the number of dirty
// bytes written back by evictions (including dirty bytes of overlapped
// older regions whose contents are superseded: those are NOT counted, the
// new store subsumes them).
func (c *cacheState) insert(buf uint64, lo, hi int64, dirty bool) (writeback int64) {
	if lo >= hi {
		return 0
	}
	// A region larger than the whole cache leaves only its tail resident
	// (streaming through the cache evicts its own head).
	if hi-lo > c.capacity {
		lo = hi - c.capacity
	}
	c.remove(buf, lo, hi)
	r := c.alloc(buf, lo, hi, dirty)
	c.lruPushBack(r)
	c.byBuf[buf] = insertSorted(c.byBuf[buf], r)
	c.used += r.len()
	for c.used > c.capacity {
		victim := c.lruFront
		if len(victim.segs) > 0 {
			// Restore per-segment granularity so victims are evicted with
			// the same capacity re-checks as an unmerged tracker.
			c.explode(victim)
			continue
		}
		if victim == r && c.nregions == 1 {
			break // cannot evict the region we just inserted entirely
		}
		wasDirty, vlen := victim.dirty, victim.len()
		c.evict(victim)
		if wasDirty {
			writeback += vlen
		}
	}
	// Fragmentation control: fuse r into its LRU predecessor's range when
	// adjacent and same-dirty (see the type comment; chained because a
	// bridging insert can expose another adjacent predecessor).
	for {
		q := r.prev
		if q == nil || q.buf != buf || q.dirty != r.dirty || (q.hi != r.lo && q.lo != r.hi) {
			break
		}
		qn, rn := len(q.segs), len(r.segs)
		if qn == 0 {
			qn = 1
		}
		if rn == 0 {
			rn = 1
		}
		if qn+rn > maxSegs {
			break
		}
		qs := c.byBuf[buf]
		qi := sort.Search(len(qs), func(j int) bool { return qs[j].lo >= q.lo })
		c.byBuf[buf] = append(qs[:qi], qs[qi+1:]...)
		segs := q.segs
		if segs == nil {
			segs = [][2]int64{{q.lo, q.hi}}
		}
		if r.segs == nil {
			segs = append(segs, [2]int64{r.lo, r.hi})
		} else {
			segs = append(segs, r.segs...)
		}
		if q.hi == r.lo {
			r.lo = q.lo
		} else {
			r.hi = q.hi
		}
		r.segs = segs
		q.segs = nil // ownership moved to r; keep release from recycling it
		c.lruRemove(q)
		c.release(q)
	}
	return writeback
}

// invalidate drops [lo, hi) of buffer b from the cache without write-back
// (a non-temporal store supersedes any cached copy).
func (c *cacheState) invalidate(buf uint64, lo, hi int64) {
	c.remove(buf, lo, hi)
}

// invalidateBuffer drops every cached region of the buffer.
func (c *cacheState) invalidateBuffer(buf uint64) {
	for _, r := range c.byBuf[buf] {
		c.lruRemove(r)
		c.used -= r.len()
		c.release(r)
	}
	delete(c.byBuf, buf)
}

// remove deletes [lo, hi) from the tracked regions of buffer b, splitting
// regions that partially overlap. Split fragments keep the original
// recency position and dirty bit. Merged regions overlapping the range are
// exploded first so fragments land at their exact unmerged recency slots.
func (c *cacheState) remove(buf uint64, lo, hi int64) {
	for {
		rs := c.byBuf[buf]
		exploded := false
		for i := overlapStart(rs, lo); i < len(rs) && rs[i].lo < hi; i++ {
			if len(rs[i].segs) > 0 {
				c.explode(rs[i])
				exploded = true
				break // index shifted; rescan
			}
		}
		if !exploded {
			break
		}
	}
	rs := c.byBuf[buf]
	start := overlapStart(rs, lo)
	if start == len(rs) || rs[start].lo >= hi {
		return
	}
	if r := rs[start]; r.lo < lo && r.hi > hi {
		// One region covers the hole entirely: split it in two.
		c.used -= hi - lo
		tail := c.alloc(buf, hi, r.hi, r.dirty)
		c.lruInsertAfter(tail, r)
		r.hi = lo
		rs = append(rs, nil)
		copy(rs[start+2:], rs[start+1:])
		rs[start+1] = tail
		c.byBuf[buf] = rs
		return
	}
	i := start
	if r := rs[i]; r.lo < lo { // overlaps from the left: trim its tail
		c.used -= r.hi - lo
		r.hi = lo
		i++
	}
	j := i
	for j < len(rs) && rs[j].hi <= hi { // fully covered: drop
		c.lruRemove(rs[j])
		c.used -= rs[j].len()
		c.release(rs[j])
		j++
	}
	if j < len(rs) && rs[j].lo < hi { // overlaps from the right: trim its head
		c.used -= hi - rs[j].lo
		rs[j].lo = hi
	}
	if i != j {
		rs = append(rs[:i], rs[j:]...)
	}
	if len(rs) == 0 {
		delete(c.byBuf, buf)
	} else {
		c.byBuf[buf] = rs
	}
}

// evict removes a whole plain region from the cache (LRU victim) and
// recycles it.
func (c *cacheState) evict(r *region) {
	c.lruRemove(r)
	c.used -= r.len()
	rs := c.byBuf[r.buf]
	i := sort.Search(len(rs), func(j int) bool { return rs[j].lo >= r.lo })
	rs = append(rs[:i], rs[i+1:]...)
	if len(rs) == 0 {
		delete(c.byBuf, r.buf)
	} else {
		c.byBuf[r.buf] = rs
	}
	c.release(r)
}

// occupancy returns the number of cached bytes (for tests/diagnostics).
func (c *cacheState) occupancy() int64 { return c.used }

// checkInvariants verifies internal consistency (test helper).
func (c *cacheState) checkInvariants() error {
	var total int64
	count := 0
	for buf, regions := range c.byBuf {
		var prev int64 = -1
		for _, r := range regions {
			if r.lo >= r.hi {
				return fmt.Errorf("empty region %+v in buf %d", r, buf)
			}
			if r.lo < prev {
				return fmt.Errorf("regions of buf %d out of order or overlapping", buf)
			}
			if len(r.segs) > 0 {
				var segTotal int64
				for _, s := range r.segs {
					if s[0] >= s[1] || s[0] < r.lo || s[1] > r.hi {
						return fmt.Errorf("segment %v outside region [%d,%d) of buf %d", s, r.lo, r.hi, buf)
					}
					segTotal += s[1] - s[0]
				}
				if segTotal != r.len() {
					return fmt.Errorf("segments of region [%d,%d) sum to %d, want %d", r.lo, r.hi, segTotal, r.len())
				}
			}
			prev = r.hi
			total += r.len()
			count++
		}
	}
	if total != c.used {
		return fmt.Errorf("used = %d but regions sum to %d", c.used, total)
	}
	lruCount := 0
	for r := c.lruFront; r != nil; r = r.next {
		lruCount++
		if lruCount > count {
			return fmt.Errorf("lru list longer than region count %d (cycle?)", count)
		}
	}
	if count != lruCount || count != c.nregions {
		return fmt.Errorf("region count %d != lru len %d (nregions %d)", count, lruCount, c.nregions)
	}
	if c.used > c.capacity {
		return fmt.Errorf("used %d exceeds capacity %d", c.used, c.capacity)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
