// Package memmodel implements the memory-system cost model that stands in
// for the real multi-core hardware of the paper's evaluation platforms.
//
// Every data operation a collective performs — loads, temporal stores
// (write-allocate, with Request-For-Ownership on a miss), non-temporal
// stores (cache bypass) and fused reductions — is charged to the acting
// rank's virtual clock based on where the data currently resides (cache or
// DRAM, local or remote socket) and on calibrated bandwidths from
// internal/topo. A region-granular residency tracker per socket models the
// write-allocate cache: it answers "how much of this range is cached?",
// allocates on loads and temporal stores, evicts least-recently-used
// regions when capacity is exceeded (charging write-back traffic for dirty
// ones) and is bypassed/invalidated by non-temporal stores.
//
// The model also maintains the counters the paper's analysis is built on:
// logical data-access volume (DAV: bytes loaded + stored, the quantity in
// Tables 1-3), copy volume V, and DRAM traffic (including RFO line fills
// and write-backs, the quantity behind Table 4 and Figs. 12-14).
package memmodel

import "fmt"

// StoreKind selects between write-allocate and cache-bypassing stores.
type StoreKind int

const (
	// Temporal is a regular store: write-allocate, RFO on miss.
	Temporal StoreKind = iota
	// NonTemporal bypasses the cache and writes straight to DRAM.
	NonTemporal
)

// String returns "temporal" or "non-temporal".
func (k StoreKind) String() string {
	if k == NonTemporal {
		return "non-temporal"
	}
	return "temporal"
}

// Space says which address space a buffer lives in.
type Space int

const (
	// Private memory belongs to a single process (its send/recv buffers).
	Private Space = iota
	// Shared memory is a process-shared segment (copy-in/copy-out target).
	Shared
)

// String returns "private" or "shared".
func (s Space) String() string {
	if s == Shared {
		return "shared"
	}
	return "private"
}

// Buffer is a modelled memory buffer. Element type is float64 (8 bytes), the
// payload type of every experiment in the repository. Data may be nil when
// the buffer is used in model-only (timing) mode; all cost accounting works
// identically either way.
type Buffer struct {
	// ID is unique within a Model, used as the residency-tracking key.
	ID uint64
	// Name is a diagnostic label ("rank3/sendbuf", "shm/slice").
	Name string
	// Space distinguishes private from shared memory.
	Space Space
	// Home is the socket whose DRAM physically backs the buffer
	// (first-touch NUMA placement).
	Home int
	// Elems is the length in float64 elements.
	Elems int64
	// Pinned marks the buffer as permanently cache-resident: accesses run
	// at cache speed, generate no DRAM traffic and do not occupy residency
	// capacity. It models small, heavily-reused transport rings (the
	// send/recv staging of shared-memory MPI) whose physical footprint is a
	// few chunks even when the logical message is large.
	Pinned bool
	// Data holds real payload when non-nil (len == Elems).
	Data []float64
}

// ElemSize is the size of one buffer element in bytes.
const ElemSize = 8

// Bytes returns the buffer size in bytes.
func (b *Buffer) Bytes() int64 { return b.Elems * ElemSize }

// Real reports whether the buffer carries actual data.
func (b *Buffer) Real() bool { return b.Data != nil }

// Slice returns the real data in [off, off+n) elements, panicking on
// model-only buffers or out-of-range access. Collectives use it through the
// DataMover abstraction in internal/coll.
func (b *Buffer) Slice(off, n int64) []float64 {
	if b.Data == nil {
		panic(fmt.Sprintf("memmodel: Slice of model-only buffer %q", b.Name))
	}
	b.CheckRange(off, n)
	return b.Data[off : off+n]
}

// CheckRange panics unless [off, off+n) elements lie within the buffer.
func (b *Buffer) CheckRange(off, n int64) {
	if off < 0 || n < 0 || off+n > b.Elems {
		panic(fmt.Sprintf("memmodel: range [%d,%d) out of buffer %q (%d elems)",
			off, off+n, b.Name, b.Elems))
	}
}
