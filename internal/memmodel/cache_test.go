package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheLookupEmpty(t *testing.T) {
	c := newCacheState(0, 1024)
	if got := c.lookup(1, 0, 100); got != 0 {
		t.Fatalf("lookup on empty cache = %d, want 0", got)
	}
}

func TestCacheInsertAndLookup(t *testing.T) {
	c := newCacheState(0, 1024)
	c.insert(1, 0, 100, false)
	if got := c.lookup(1, 0, 100); got != 100 {
		t.Fatalf("lookup = %d, want 100", got)
	}
	if got := c.lookup(1, 50, 150); got != 50 {
		t.Fatalf("partial lookup = %d, want 50", got)
	}
	if got := c.lookup(2, 0, 100); got != 0 {
		t.Fatalf("other buffer lookup = %d, want 0", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheOverlappingInsertNoDoubleCount(t *testing.T) {
	c := newCacheState(0, 10240)
	c.insert(1, 0, 100, false)
	c.insert(1, 50, 150, false)
	if got := c.lookup(1, 0, 150); got != 150 {
		t.Fatalf("lookup = %d, want 150", got)
	}
	if c.occupancy() != 150 {
		t.Fatalf("occupancy = %d, want 150", c.occupancy())
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheInsertSplitsCoveringRegion(t *testing.T) {
	c := newCacheState(0, 10240)
	c.insert(1, 0, 300, true)
	c.insert(1, 100, 200, false) // punches a clean hole in a dirty region
	if got := c.lookupDirty(1, 0, 300); got != 200 {
		t.Fatalf("dirty bytes = %d, want 200", got)
	}
	if got := c.lookup(1, 0, 300); got != 300 {
		t.Fatalf("cached bytes = %d, want 300", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheLRUEvictionAndWriteback(t *testing.T) {
	c := newCacheState(0, 200)
	if wb := c.insert(1, 0, 100, true); wb != 0 {
		t.Fatalf("writeback = %d, want 0", wb)
	}
	if wb := c.insert(2, 0, 100, false); wb != 0 {
		t.Fatalf("writeback = %d, want 0", wb)
	}
	// Inserting 100 more evicts buffer 1 (LRU, dirty) -> 100 bytes back.
	if wb := c.insert(3, 0, 100, false); wb != 100 {
		t.Fatalf("writeback = %d, want 100", wb)
	}
	if got := c.lookup(1, 0, 100); got != 0 {
		t.Fatalf("evicted buffer still cached: %d bytes", got)
	}
	if got := c.lookup(2, 0, 100); got != 100 {
		t.Fatalf("buffer 2 should survive, cached %d", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheCleanEvictionNoWriteback(t *testing.T) {
	c := newCacheState(0, 100)
	c.insert(1, 0, 100, false)
	if wb := c.insert(2, 0, 100, false); wb != 0 {
		t.Fatalf("clean eviction produced writeback %d", wb)
	}
}

func TestCacheStreamingRegionLargerThanCapacity(t *testing.T) {
	c := newCacheState(0, 100)
	wb := c.insert(1, 0, 1000, true)
	if c.occupancy() > 100 {
		t.Fatalf("occupancy %d exceeds capacity", c.occupancy())
	}
	// Only the tail should remain.
	if got := c.lookup(1, 900, 1000); got != 100 {
		t.Fatalf("tail cached = %d, want 100", got)
	}
	if got := c.lookup(1, 0, 900); got != 0 {
		t.Fatalf("head cached = %d, want 0", got)
	}
	_ = wb
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newCacheState(0, 1024)
	c.insert(1, 0, 200, true)
	c.invalidate(1, 50, 150)
	if got := c.lookup(1, 0, 200); got != 100 {
		t.Fatalf("after invalidate, cached = %d, want 100", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheInvalidateBuffer(t *testing.T) {
	c := newCacheState(0, 1024)
	c.insert(1, 0, 200, true)
	c.insert(2, 0, 200, true)
	c.invalidateBuffer(1)
	if got := c.lookup(1, 0, 200); got != 0 {
		t.Fatalf("buffer 1 still cached: %d", got)
	}
	if got := c.lookup(2, 0, 200); got != 200 {
		t.Fatalf("buffer 2 lost: %d", got)
	}
	if c.occupancy() != 200 {
		t.Fatalf("occupancy = %d, want 200", c.occupancy())
	}
}

func TestCacheRecencyOrder(t *testing.T) {
	c := newCacheState(0, 300)
	c.insert(1, 0, 100, false)
	c.insert(2, 0, 100, false)
	c.insert(3, 0, 100, false)
	// Re-insert buffer 1 (most recent now), then overflow: buffer 2 is LRU.
	c.insert(1, 0, 100, false)
	c.insert(4, 0, 100, false)
	if got := c.lookup(2, 0, 100); got != 0 {
		t.Fatalf("LRU buffer 2 should be evicted, cached %d", got)
	}
	if got := c.lookup(1, 0, 100); got != 100 {
		t.Fatalf("recently used buffer 1 evicted")
	}
}

func TestCacheRandomOpsInvariants(t *testing.T) {
	// Property: any interleaving of inserts/invalidates/lookups keeps the
	// tracker internally consistent and under capacity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCacheState(0, 4096)
		for i := 0; i < 300; i++ {
			buf := uint64(rng.Intn(5) + 1)
			lo := int64(rng.Intn(8192))
			hi := lo + int64(rng.Intn(1024)+1)
			switch rng.Intn(4) {
			case 0, 1:
				c.insert(buf, lo, hi, rng.Intn(2) == 0)
			case 2:
				c.invalidate(buf, lo, hi)
			case 3:
				got := c.lookup(buf, lo, hi)
				if got < 0 || got > hi-lo {
					return false
				}
			}
			if err := c.checkInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheLookupNeverExceedsRange(t *testing.T) {
	f := func(lo8, len8 uint8) bool {
		c := newCacheState(0, 1<<20)
		c.insert(1, 0, 1000, false)
		lo := int64(lo8)
		hi := lo + int64(len8) + 1
		got := c.lookup(1, lo, hi)
		return got >= 0 && got <= hi-lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
