// Package dav provides the closed-form data-access-volume (DAV) formulas of
// the paper's Tables 1-3, plus this repository's own derivations where the
// paper's constant terms are ambiguous. The collective implementations in
// internal/coll are tested against these formulas: the memmodel counters
// measured during a run must equal the closed form exactly.
//
// All functions return bytes per node for a message of s bytes, p processes
// and (where applicable) m sockets or branching degree k.
package dav

// RingReduceScatter is Table 1's Ring row: 5*s*(p-1).
//
// Derivation (shared-memory two-copy transport): p-1 steps; per step each
// rank copies one s/p slice into staging (2 units) and fuses receive+reduce
// on another (3 units): 5*(s/p) per rank-step, p ranks.
func RingReduceScatter(s int64, p int) int64 {
	return 5 * s * int64(p-1)
}

// RabenseifnerReduceScatter is Table 1's Rabenseifner row:
// 5*s*p*(1/2 + 1/4 + ... + 1/p) = 5*s*(p-1) for power-of-two p (recursive
// halving: the exchanged volume halves each of the log2(p) steps).
func RabenseifnerReduceScatter(s int64, p int) int64 {
	total := int64(0)
	for chunk := s / 2; ; chunk /= 2 {
		total += 5 * chunk * int64(p)
		if chunk*int64(p) <= s { // reached the 1/p term
			break
		}
	}
	return total
}

// DPMLReduceScatter is Table 1's DPML row: s*(5p-1).
//
// Copy-in of every send buffer (2sp) + parallel reduction of p-1 operand
// pairs per block into shared memory (3s(p-1)) + per-rank copy-out of its
// block (2s).
func DPMLReduceScatter(s int64, p int) int64 {
	return s * int64(5*p-1)
}

// MAReduceScatter is Table 1's YHCCL row: s*(3p-1) — the proven optimum
// 2s of copy volume plus 3s(p-1) of reduction accesses.
func MAReduceScatter(s int64, p int) int64 {
	return s * int64(3*p-1)
}

// SocketMAReduceScatter is the socket-aware variant (§3.3): s*(3p+2m-3).
func SocketMAReduceScatter(s int64, p, m int) int64 {
	return s * int64(3*p+2*m-3)
}

// RingAllreduce is Table 2's Ring row: 7*s*(p-1) — ring reduce-scatter
// (5s(p-1)) whose final reduced slices land in shared memory, followed by
// copy-out of the p-1 non-local blocks per rank (2s(p-1)).
func RingAllreduce(s int64, p int) int64 {
	return 7 * s * int64(p-1)
}

// RabenseifnerAllreduce is Table 2's Rabenseifner row (recursive halving +
// doubling): 7*s*p*(1/2 + ... + 1/p) = 7*s*(p-1) for power-of-two p.
func RabenseifnerAllreduce(s int64, p int) int64 {
	total := int64(0)
	for chunk := s / 2; ; chunk /= 2 {
		total += 7 * chunk * int64(p)
		if chunk*int64(p) <= s {
			break
		}
	}
	return total
}

// DPMLAllreduce is Table 2's DPML row: s*(7p-1). This repository's
// implementation measures s*(7p-3): the paper's extra 2s corresponds to the
// reducing rank re-copying its own block, which our implementation (like
// Fig. 2a) does not need. See EXPERIMENTS.md.
func DPMLAllreduce(s int64, p int) int64 {
	return s * int64(7*p-1)
}

// DPMLAllreduceImpl is the DAV our DPML implementation achieves: s*(7p-3).
func DPMLAllreduceImpl(s int64, p int) int64 {
	return s * int64(7*p-3)
}

// RGAllreduce is Table 2's RG row:
// s*p*(5k/(k+1) + 3k/(k+1)^2 + ... + 3k/p + 2).
func RGAllreduce(s int64, p, k int) int64 {
	return int64(float64(s) * float64(p) * (rgSum(p, k) + 2))
}

// RGReduce is Table 3's RG row: s*p*(5k/(k+1) + 3k/(k+1)^2 + ... + 3k/p).
func RGReduce(s int64, p, k int) int64 {
	return int64(float64(s) * float64(p) * rgSum(p, k))
}

// rgSum evaluates 5k/(k+1) + 3k/(k+1)^2 + ... + 3k/p.
func rgSum(p, k int) float64 {
	sum := 5 * float64(k) / float64(k+1)
	for lvl := (k + 1) * (k + 1); lvl <= p; lvl *= k + 1 {
		sum += 3 * float64(k) / float64(lvl)
	}
	return sum
}

// MAAllreduce is Table 2's YHCCL (MA reduction) row: s*(5p-1) — MA
// reduce-scatter into shared memory (3p-1) plus full copy-out by every rank
// (2p).
func MAAllreduce(s int64, p int) int64 {
	return s * int64(5*p-1)
}

// SocketMAAllreduce is Table 2's socket-aware row: s*(5p+2m-3).
func SocketMAAllreduce(s int64, p, m int) int64 {
	return s * int64(5*p+2*m-3)
}

// DPMLReduce is Table 3's DPML row: s*(5p+1). Our implementation measures
// s*(5p-1) (copy-in 2sp + reduce 3s(p-1) + root copy-out 2s); the paper's
// +2s again appears to double-count the first operand. See EXPERIMENTS.md.
func DPMLReduce(s int64, p int) int64 {
	return s * int64(5*p+1)
}

// DPMLReduceImpl is the DAV our DPML reduce achieves: s*(5p-1).
func DPMLReduceImpl(s int64, p int) int64 {
	return s * int64(5*p-1)
}

// MAReduce is Table 3's YHCCL (MA reduction) row: s*(3p+1) — MA
// reduce-scatter into shared memory plus the root's copy-out (2s).
func MAReduce(s int64, p int) int64 {
	return s * int64(3*p+1)
}

// SocketMAReduce is Table 3's socket-aware row: s*(3p+2m-1).
func SocketMAReduce(s int64, p, m int) int64 {
	return s * int64(3*p+2*m-1)
}

// RingAllreduceImpl is the DAV our ring all-reduce achieves:
// 7s(p-1) + 2s — ring reduce-scatter (5s(p-1)) plus the shared-memory
// block gather (each rank publishes its block, 2s, and copies the other
// p-1 blocks out, 2s(p-1)). The paper's Table 2 lists 7s(p-1); the +2s is
// the publish step its accounting folds into the reduce-scatter phase.
func RingAllreduceImpl(s int64, p int) int64 {
	return 7*s*int64(p-1) + 2*s
}

// RabenseifnerAllreduceImpl equals RingAllreduceImpl for power-of-two p:
// recursive halving (5s(p-1)) plus the same shared-memory gather.
func RabenseifnerAllreduceImpl(s int64, p int) int64 {
	return RingAllreduceImpl(s, p)
}

// XPMEMAllreduce is the kernel-assisted single-copy ring all-reduce the
// paper compares against (§5.5): 5*s*(p-1) — 3s(p-1) for the direct-access
// reduce-scatter plus 2s(p-1) for the direct-access all-gather.
func XPMEMAllreduce(s int64, p int) int64 {
	return 5 * s * int64(p-1)
}

// PipelinedBcast is the DAV of the shared-memory pipelined broadcast: the
// root copies s in (2s), every non-root copies s out (2s each).
func PipelinedBcast(s int64, p int) int64 {
	return 2*s + 2*s*int64(p-1)
}

// PipelinedAllgather: every rank copies its s in (2sp total) and copies the
// aggregate s*p out (2sp^2 total... per node: 2*s*p + 2*s*p*p with s the
// per-rank contribution).
func PipelinedAllgather(s int64, p int) int64 {
	return 2*s*int64(p) + 2*s*int64(p)*int64(p)
}

// Predicted dispatches to the closed form this repository's implementation
// of (collective, family) achieves, for a message of s bytes over p
// processes, m sockets and RG degree k. It is the family-level entry the
// plan tuner uses to stamp PredictedDAV onto cache entries; ok is false for
// families without a closed form (searched graph variants predict through
// plan.Graph.DAVBytes instead, two-level small-message reductions through
// measurement).
func Predicted(collective, family string, s int64, p, m, k int) (int64, bool) {
	switch collective {
	case "reduce-scatter":
		switch family {
		case "ring":
			return RingReduceScatter(s, p), true
		case "rabenseifner":
			return RabenseifnerReduceScatter(s, p), true
		case "dpml":
			return DPMLReduceScatter(s, p), true
		case "ma":
			return MAReduceScatter(s, p), true
		case "socket-ma":
			return SocketMAReduceScatter(s, p, m), true
		}
	case "allreduce":
		switch family {
		case "ring":
			return RingAllreduceImpl(s, p), true
		case "rabenseifner":
			return RabenseifnerAllreduceImpl(s, p), true
		case "dpml":
			return DPMLAllreduceImpl(s, p), true
		case "rg":
			return RGAllreduce(s, p, k), true
		case "ma":
			return MAAllreduce(s, p), true
		case "socket-ma":
			return SocketMAAllreduce(s, p, m), true
		case "xpmem":
			return XPMEMAllreduce(s, p), true
		}
	case "reduce":
		switch family {
		case "dpml":
			return DPMLReduceImpl(s, p), true
		case "rg":
			return RGReduce(s, p, k), true
		case "ma":
			return MAReduce(s, p), true
		case "socket-ma":
			return SocketMAReduce(s, p, m), true
		}
	case "bcast":
		switch family {
		case "pipelined", "yhccl":
			return PipelinedBcast(s, p), true
		}
	case "allgather":
		switch family {
		case "pipelined", "yhccl":
			return PipelinedAllgather(s, p), true
		}
	}
	return 0, false
}
