package dav

import (
	"testing"
	"testing/quick"
)

const mb = int64(1) << 20

func TestRingEqualsRabenseifnerForPow2(t *testing.T) {
	// Both reduce-scatter forms collapse to 5s(p-1) for power-of-two p.
	for _, p := range []int{2, 4, 8, 16, 64} {
		ring := RingReduceScatter(mb, p)
		rab := RabenseifnerReduceScatter(mb, p)
		if ring != rab {
			t.Errorf("p=%d: ring %d != rabenseifner %d", p, ring, rab)
		}
	}
}

func TestYHCCLBeatsBaselinesFromP4(t *testing.T) {
	// Paper §3.4/§3.5: the flat MA forms have the smallest DAV for p >= 4;
	// the socket-aware forms pay +2(m-1)s and win from p = 8 on.
	for _, p := range []int{4, 8, 16, 32, 64} {
		if ma := MAAllreduce(mb, p); ma >= RingAllreduce(mb, p) ||
			ma >= DPMLAllreduce(mb, p) || ma >= RGAllreduce(mb, p, 2) {
			t.Errorf("p=%d: MA allreduce DAV %d not smallest (ring %d dpml %d rg %d)",
				p, ma, RingAllreduce(mb, p), DPMLAllreduce(mb, p), RGAllreduce(mb, p, 2))
		}
		if mr := MAReduce(mb, p); mr >= DPMLReduce(mb, p) || mr > RGReduce(mb, p, 2) {
			t.Errorf("p=%d: MA reduce DAV %d not smallest (dpml %d rg %d)",
				p, mr, DPMLReduce(mb, p), RGReduce(mb, p, 2))
		}
		if rs := MAReduceScatter(mb, p); rs >= RingReduceScatter(mb, p) || rs >= DPMLReduceScatter(mb, p) {
			t.Errorf("p=%d: MA reduce-scatter DAV %d not smallest", p, rs)
		}
	}
	for _, p := range []int{8, 16, 32, 64} {
		m := 2
		if ma := SocketMAAllreduce(mb, p, m); ma >= RingAllreduce(mb, p) ||
			ma >= DPMLAllreduce(mb, p) || ma >= RGAllreduce(mb, p, 2) {
			t.Errorf("p=%d: socket-MA allreduce DAV %d not smallest", p, ma)
		}
		// RG reduce's shallow tree is very lean on DAV at small p; the
		// socket-aware form overtakes it from p = 16.
		if p >= 16 {
			if mr := SocketMAReduce(mb, p, m); mr >= DPMLReduce(mb, p) || mr >= RGReduce(mb, p, 2) {
				t.Errorf("p=%d: socket-MA reduce DAV %d not smallest", p, mr)
			}
		}
	}
}

func TestMAEliminatesAbout40PercentVsDPML(t *testing.T) {
	// §2.2/abstract: redundant movements are ~40% of accesses; MA removes
	// 2s(p) - 2s of DPML's 5sp-1 — the ratio approaches 2/5 for large p.
	p := 64
	saving := float64(DPMLReduceScatter(mb, p)-MAReduceScatter(mb, p)) /
		float64(DPMLReduceScatter(mb, p))
	if saving < 0.35 || saving > 0.45 {
		t.Errorf("MA saves %.1f%% of DPML's DAV, want ~40%%", saving*100)
	}
}

func TestSocketAwareTradeoff(t *testing.T) {
	// Socket-aware MA pays +2(m-1)s DAV over flat MA.
	p, m := 64, 2
	diff := SocketMAReduceScatter(mb, p, m) - MAReduceScatter(mb, p)
	if diff != 2*mb*int64(m-1) {
		t.Errorf("socket-aware overhead = %d, want %d", diff, 2*mb*int64(m-1))
	}
}

func TestRGFormulaGrowsWithDegree(t *testing.T) {
	// A larger branching degree makes more ranks leaves that must copy in
	// (the 5k/(k+1) term grows toward 5), so DAV increases with k.
	p := 64
	if RGAllreduce(mb, p, 2) >= RGAllreduce(mb, p, 8) {
		t.Error("RG DAV should grow with branching degree")
	}
}

func TestAllFormulasScaleLinearlyInS(t *testing.T) {
	f := func(raw uint16) bool {
		s := int64(raw)*64 + 64
		p := 8
		checks := []struct{ a, b int64 }{
			{RingReduceScatter(2*s, p), 2 * RingReduceScatter(s, p)},
			{DPMLAllreduce(2*s, p), 2 * DPMLAllreduce(s, p)},
			{MAAllreduce(2*s, p), 2 * MAAllreduce(s, p)},
			{SocketMAReduce(2*s, p, 2), 2 * SocketMAReduce(s, p, 2)},
			{XPMEMAllreduce(2*s, p), 2 * XPMEMAllreduce(s, p)},
			{PipelinedBcast(2*s, p), 2 * PipelinedBcast(s, p)},
			{PipelinedAllgather(2*s, p), 2 * PipelinedAllgather(s, p)},
		}
		for _, c := range checks {
			if c.a != c.b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedForms(t *testing.T) {
	p := 8
	if got, want := PipelinedBcast(mb, p), 2*mb+2*mb*int64(p-1); got != want {
		t.Errorf("bcast DAV = %d, want %d", got, want)
	}
	if got, want := PipelinedAllgather(mb, p), 2*mb*int64(p)+2*mb*int64(p)*int64(p); got != want {
		t.Errorf("allgather DAV = %d, want %d", got, want)
	}
	if got, want := XPMEMAllreduce(mb, p), 5*mb*int64(p-1); got != want {
		t.Errorf("xpmem DAV = %d, want %d", got, want)
	}
	if RingAllreduceImpl(mb, p) != RabenseifnerAllreduceImpl(mb, p) {
		t.Error("ring and rabenseifner impl forms should coincide for pow2 p")
	}
	if RabenseifnerAllreduce(mb, 8) != 7*mb*7 {
		t.Errorf("rabenseifner allreduce closed form: %d", RabenseifnerAllreduce(mb, 8))
	}
	if got := RGAllreduce(mb, 9, 2) - RGReduce(mb, 9, 2); got != 2*mb*9 {
		t.Errorf("RG allreduce - reduce = %d, want 2sp", got)
	}
}

func TestImplVariantsCloseToPaper(t *testing.T) {
	// Our derived constants differ from the paper's tables by at most 2s.
	p := 64
	if d := DPMLAllreduce(mb, p) - DPMLAllreduceImpl(mb, p); d != 2*mb {
		t.Errorf("DPML allreduce delta = %d, want 2s", d)
	}
	if d := DPMLReduce(mb, p) - DPMLReduceImpl(mb, p); d != 2*mb {
		t.Errorf("DPML reduce delta = %d, want 2s", d)
	}
}
