package chaos

import (
	"fmt"
	"io"
	"runtime"
	"sort"

	"yhccl/internal/cluster"
	"yhccl/internal/fault"
	"yhccl/internal/resilient"
	"yhccl/internal/topo"
)

// Cluster-scale chaos: the recovery sweep one level up. Instead of ranks
// inside one machine, whole nodes of a 4k-16k rank event-engine world
// fail — crashes, degraded inter-node lanes, stragglers, transient phase
// corruption — and the cluster supervisor must end every case in a
// classified state: clean-pass, recovered (by recompile, reroute or
// retry), degraded-but-diagnosed, or unrecoverable-but-diagnosed. The
// gate additionally holds the event engine to its flat-memory claim while
// faults are armed: per-rank allocation budgets identical to the healthy
// scale gate, and zero goroutine growth.

// ClusterCase is one cell of the cluster sweep.
type ClusterCase struct {
	Name    string
	Nodes   int
	PerNode int
	Job     resilient.ClusterJob
	Plan    *fault.ClusterPlan
}

func (c ClusterCase) Ranks() int { return c.Nodes * c.PerNode }

func (c ClusterCase) String() string {
	plan := "healthy"
	if !c.Plan.Empty() {
		plan = c.Plan.Name
	}
	return fmt.Sprintf("%s @%dx%d plan=%s", c.Job, c.Nodes, c.PerNode, plan)
}

// Class is the case's fault class — the key of the cluster gate.
func (c ClusterCase) Class() string {
	if c.Plan.Empty() {
		return "healthy"
	}
	return c.Plan.Class()
}

// ClusterResult pairs a case with the supervisor's verdict and the
// measured memory footprint of the whole supervised run (compile, arming,
// every attempt).
type ClusterResult struct {
	Case   ClusterCase
	Report resilient.ClusterReport
	// Runs is the number of armed executions the supervisor performed
	// (initial attempt, retries, recompiles and reroute probes).
	Runs int
	// BytesPerRun / AllocsPerRun are allocation deltas normalized per rank
	// per armed run — directly comparable to the healthy scale gate's
	// per-rank budgets.
	BytesPerRun    float64
	AllocsPerRun   float64
	GoroutineDelta int
}

// RunCluster executes one case under the cluster supervisor and never
// panics: a raw panic escaping the stack is classified UNDIAGNOSED.
func RunCluster(c ClusterCase) (res ClusterResult) {
	res.Case = c
	defer func() {
		if r := recover(); r != nil {
			res.Report = resilient.ClusterReport{
				Job:     c.Job,
				Outcome: resilient.Undiagnosed,
				Err:     fmt.Errorf("chaos: unattributed panic: %v", r),
			}
		}
	}()

	cl := cluster.New(topo.NodeA(), c.Nodes, c.PerNode, cluster.IB100())
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	g0 := runtime.NumGoroutine()
	res.Report = resilient.SuperviseCluster(cl, c.Job, c.Plan, resilient.DefaultClusterPolicy())
	g1 := runtime.NumGoroutine()
	runtime.ReadMemStats(&m1)

	res.Runs = len(res.Report.Attempts)
	if res.Runs == 0 {
		res.Runs = 1
	}
	denom := float64(c.Ranks() * res.Runs)
	res.BytesPerRun = float64(m1.TotalAlloc-m0.TotalAlloc) / denom
	res.AllocsPerRun = float64(m1.Mallocs-m0.Mallocs) / denom
	res.GoroutineDelta = g1 - g0
	return res
}

// SweepCluster runs every case in order.
func SweepCluster(cases []ClusterCase) []ClusterResult {
	out := make([]ClusterResult, len(cases))
	for i, c := range cases {
		out[i] = RunCluster(c)
	}
	return out
}

// Flat-memory budgets under faults: identical to the healthy scale gate's
// per-rank budgets, applied per armed run. A per-node goroutine, an
// O(steps) allocation per rank, or a fault wrapper that copies per-rank
// state blows these immediately.
const (
	clusterMaxBytesPerRun  = 512
	clusterMaxAllocsPerRun = 8
)

// DefaultClusterCases builds the sweep: per-class hand-written plans plus
// a seeded band, at 64x64 (4096 ranks) and — unless quick — 256x64
// (16384 ranks).
func DefaultClusterCases(quick bool) []ClusterCase {
	shapes := []struct{ nodes, perNode int }{{64, 64}}
	if !quick {
		shapes = append(shapes, struct{ nodes, perNode int }{256, 64})
	}
	seeds := 8
	if quick {
		seeds = 4
	}

	var cases []ClusterCase
	for _, sh := range shapes {
		hier := resilient.ClusterJob{Coll: cluster.CollAllreduce, Alg: cluster.YHCCLHierarchical, Elems: 1 << 16}
		// Reroute only beats a degraded ring in the latency-dominated
		// regime, where the ring serializes 2(N-1) hops through the slow
		// lane; at bandwidth-bound sizes the ring is per-lane optimal and
		// the honest outcome is degraded-pass.
		ringSmall := resilient.ClusterJob{Coll: cluster.CollAllreduce, Alg: cluster.LeaderRing, Elems: 1 << 10}
		add := func(name string, job resilient.ClusterJob, pl *fault.ClusterPlan) {
			cases = append(cases, ClusterCase{
				Name: name, Nodes: sh.nodes, PerNode: sh.perNode, Job: job, Plan: pl,
			})
		}
		add("healthy", hier, nil)
		add("crash-early", hier, &fault.ClusterPlan{Name: "crash-early",
			Crashes: []fault.NodeCrash{{Node: 3, AtTick: 0}}})
		add("crash-mid", hier, &fault.ClusterPlan{Name: "crash-mid",
			Crashes: []fault.NodeCrash{{Node: sh.nodes / 2, AtTick: 50_000}}})
		add("degrade-latency", ringSmall, &fault.ClusterPlan{Name: "degrade-latency",
			LinkDegrades: []fault.LinkDegrade{{Node: 2, Factor: 12}}})
		add("degrade-bandwidth", hier, &fault.ClusterPlan{Name: "degrade-bandwidth",
			LinkDegrades: []fault.LinkDegrade{{Node: 5, Factor: 4}}})
		add("straggler", hier, &fault.ClusterPlan{Name: "straggler",
			Stragglers: []fault.NodeStraggler{{Node: 7, Factor: 4}}})
		add("corrupt-inter", hier, &fault.ClusterPlan{Name: "corrupt-inter",
			Corruptions: []fault.PhaseCorrupt{{Node: 9, Phase: 1}}})
		shape := fault.ClusterShape{Nodes: sh.nodes, PerNode: sh.perNode}
		for seed := 1; seed <= seeds; seed++ {
			pl := fault.GenClusterPlan(uint64(seed), shape, 1_000_000)
			add(pl.Name, hier, pl)
		}
	}
	return cases
}

// ClusterRecoveryGate returns one violation string per unacceptable
// result: any UNDIAGNOSED outcome anywhere, any unrecoverable node-crash
// or link-degrade case (those classes the policy chain must always
// survive — by recompile, reroute, or a diagnosed degraded pass), a
// healthy case that is not a clean pass, and any case that breaks the
// flat-memory budgets while faults are armed.
func ClusterRecoveryGate(results []ClusterResult) []string {
	var bad []string
	for _, r := range results {
		switch r.Report.Outcome {
		case resilient.Undiagnosed:
			bad = append(bad, fmt.Sprintf("UNDIAGNOSED: %s: %v", r.Case, r.Report.Err))
		case resilient.Unrecoverable:
			if cl := r.Case.Class(); cl == "node-crash" || cl == "link-degrade" {
				bad = append(bad, fmt.Sprintf("unrecoverable %s plan: %s: %v", cl, r.Case, r.Report.Err))
			}
		}
		if r.Case.Class() == "healthy" && r.Report.Outcome != resilient.CleanPass {
			bad = append(bad, fmt.Sprintf("healthy case not clean: %s: %s", r.Case, r.Report.Outcome))
		}
		switch {
		case r.BytesPerRun > clusterMaxBytesPerRun:
			bad = append(bad, fmt.Sprintf("memory: %s: %.0f B/rank/run exceeds budget %d (per-rank state is not flat under faults)",
				r.Case, r.BytesPerRun, clusterMaxBytesPerRun))
		case r.AllocsPerRun > clusterMaxAllocsPerRun:
			bad = append(bad, fmt.Sprintf("memory: %s: %.2f allocs/rank/run exceeds budget %d",
				r.Case, r.AllocsPerRun, clusterMaxAllocsPerRun))
		case r.GoroutineDelta > 2:
			bad = append(bad, fmt.Sprintf("memory: %s: goroutine count grew by %d (arming must not spawn goroutines)",
				r.Case, r.GoroutineDelta))
		}
	}
	return bad
}

// ReportCluster renders the sweep — one line per case, the per-class
// outcome table, and the gate verdict — and returns the number of gate
// violations.
func ReportCluster(w io.Writer, results []ClusterResult) int {
	for _, r := range results {
		line := fmt.Sprintf("%-24s  %s  runs=%d  %4.0f B/rank/run %5.2f allocs/rank/run",
			r.Report.Outcome, r.Case, r.Runs, r.BytesPerRun, r.AllocsPerRun)
		if len(r.Report.ExcludedNodes) > 0 {
			line += fmt.Sprintf(" excluded=%v", r.Report.ExcludedNodes)
		}
		if len(r.Report.RejoinedNodes) > 0 {
			line += fmt.Sprintf(" rejoined=%v epoch=%d", r.Report.RejoinedNodes, r.Report.FinalEpoch)
		}
		if r.Report.FinalAlg != "" && r.Report.FinalAlg != r.Case.Job.Alg {
			line += fmt.Sprintf(" rerouted=%s", r.Report.FinalAlg)
		}
		if r.Report.Err != nil {
			line += fmt.Sprintf("\n             %v", r.Report.Err)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprint(w, "\n", ClusterTable(results))
	bad := ClusterRecoveryGate(results)
	for _, v := range bad {
		fmt.Fprintf(w, "GATE VIOLATION: %s\n", v)
	}
	if len(bad) == 0 {
		fmt.Fprintln(w, "cluster recovery gate: PASS")
	}
	return len(bad)
}

// ClusterTable renders the per-fault-class outcome table.
func ClusterTable(results []ClusterResult) string {
	type tally struct {
		total, clean, recovered, degraded, unrecoverable, undiagnosed int
	}
	byClass := map[string]*tally{}
	for _, r := range results {
		cl := r.Case.Class()
		t := byClass[cl]
		if t == nil {
			t = &tally{}
			byClass[cl] = t
		}
		t.total++
		switch {
		case r.Report.Outcome == resilient.CleanPass:
			t.clean++
		case r.Report.Outcome == resilient.DegradedPass,
			r.Report.Outcome == resilient.DegradedPassShrunk:
			t.degraded++
		case r.Report.Outcome.Recovered():
			t.recovered++
		case r.Report.Outcome == resilient.Unrecoverable:
			t.unrecoverable++
		default:
			t.undiagnosed++
		}
	}
	classes := make([]string, 0, len(byClass))
	for cl := range byClass {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	s := fmt.Sprintf("%-14s %6s %6s %10s %9s %14s %12s\n",
		"class", "cases", "clean", "recovered", "degraded", "unrecoverable", "UNDIAGNOSED")
	for _, cl := range classes {
		t := byClass[cl]
		s += fmt.Sprintf("%-14s %6d %6d %10d %9d %14d %12d\n",
			cl, t.total, t.clean, t.recovered, t.degraded, t.unrecoverable, t.undiagnosed)
	}
	return s
}
