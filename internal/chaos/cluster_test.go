package chaos

import (
	"bytes"
	"strings"
	"testing"

	"yhccl/internal/resilient"
)

// The quick sweep (4096 ranks) must pass the gate: zero UNDIAGNOSED,
// zero unrecoverable node-crash/link-degrade, budgets held under faults.
func TestClusterSweepQuickGate(t *testing.T) {
	results := SweepCluster(DefaultClusterCases(true))
	var buf bytes.Buffer
	if n := ReportCluster(&buf, results); n != 0 {
		t.Fatalf("cluster gate violations:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "cluster recovery gate: PASS") {
		t.Fatalf("report missing pass verdict:\n%s", buf.String())
	}
}

// The hand-written cases must land in their designed outcome classes.
func TestClusterSweepExpectedOutcomes(t *testing.T) {
	results := SweepCluster(DefaultClusterCases(true))
	want := map[string]resilient.Outcome{
		"healthy":           resilient.CleanPass,
		"crash-early":       resilient.RecoveredRecompile,
		"degrade-latency":   resilient.RecoveredReroute,
		"degrade-bandwidth": resilient.DegradedPass,
		"corrupt-inter":     resilient.RecoveredClusterRetry,
	}
	seen := map[string]bool{}
	for _, r := range results {
		if w, ok := want[r.Case.Name]; ok {
			seen[r.Case.Name] = true
			if r.Report.Outcome != w {
				t.Errorf("%s: outcome %s, want %s (err: %v)",
					r.Case, r.Report.Outcome, w, r.Report.Err)
			}
		}
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("case %q missing from the default sweep", name)
		}
	}
}

// A mid-run crash must actually fire (not land past the makespan) and be
// recovered by recompile.
func TestClusterSweepMidCrashFires(t *testing.T) {
	for _, r := range SweepCluster(DefaultClusterCases(true)) {
		if r.Case.Name != "crash-mid" {
			continue
		}
		if r.Report.Outcome != resilient.RecoveredRecompile {
			t.Fatalf("crash-mid: outcome %s, want recovered-by-recompile (err: %v)",
				r.Report.Outcome, r.Report.Err)
		}
		if len(r.Report.ExcludedNodes) != 1 {
			t.Fatalf("crash-mid: excluded %v, want exactly one node", r.Report.ExcludedNodes)
		}
		return
	}
	t.Fatal("crash-mid case missing from the default sweep")
}

// Two cold sweeps render byte-identical reports: the cluster chaos layer
// adds no nondeterminism on top of the armed engine.
func TestClusterSweepDeterministic(t *testing.T) {
	cases := DefaultClusterCases(true)
	render := func() string {
		var buf bytes.Buffer
		results := SweepCluster(cases)
		for _, r := range results {
			// Memory measurements vary run to run; render everything else.
			buf.WriteString(r.Case.String())
			buf.WriteString(" -> ")
			buf.WriteString(r.Report.String())
			buf.WriteByte('\n')
		}
		buf.WriteString(ClusterTable(results))
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("cluster sweep diverged across cold runs:\n%s\n---\n%s", a, b)
	}
}
