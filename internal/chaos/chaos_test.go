package chaos

import (
	"errors"
	"strings"
	"testing"

	"yhccl/internal/coll"
	"yhccl/internal/fault"
	"yhccl/internal/mpi"
)

// TestSweepNeverHangsNeverUnattributed is the acceptance gate: for every
// collective × fault plan in the default sweep, the run either produces
// bit-correct output, fails with a diagnosis naming the victim rank, or has
// its corruption caught by self-validation. The package test timeout
// enforces "zero hangs"; the Undiagnosed bucket enforces "zero unattributed
// panics, zero silently wrong answers".
func TestSweepNeverHangsNeverUnattributed(t *testing.T) {
	results := Sweep(DefaultCases())
	for _, res := range results {
		if !res.Acceptable() {
			t.Errorf("%s: %s: %v", res.Case, res.Outcome, res.Err)
		}
	}
	// The sweep must actually exercise all three acceptable outcomes —
	// a sweep where nothing fails is not testing fault handling.
	counts := map[Outcome]int{}
	for _, res := range results {
		counts[res.Outcome]++
	}
	if counts[CleanPass] == 0 || counts[DiagnosedFailure] == 0 || counts[ValidationCaught] == 0 {
		t.Errorf("sweep outcome spread degenerate: %v", counts)
	}
}

func TestHealthyCasePassesClean(t *testing.T) {
	res := Run(Case{Collective: "allreduce", Algo: "ring", Ranks: 8, Elems: 4096})
	if res.Outcome != CleanPass {
		t.Fatalf("healthy case: %s (%v)", res.Outcome, res.Err)
	}
	if res.Makespan <= 0 {
		t.Error("healthy case has no makespan")
	}
}

func TestStragglerCompletesCorrectlyButSlower(t *testing.T) {
	healthy := Run(Case{Collective: "allreduce", Algo: "ring", Ranks: 8, Elems: 4096})
	slow := Run(Case{Collective: "allreduce", Algo: "ring", Ranks: 8, Elems: 4096,
		Plan: &fault.Plan{Name: "s", Stragglers: []fault.Straggler{{Rank: 3, Factor: 16}}}})
	if slow.Outcome != CleanPass {
		t.Fatalf("straggler must not break correctness: %s (%v)", slow.Outcome, slow.Err)
	}
	if slow.Makespan <= healthy.Makespan {
		t.Errorf("straggler makespan %g not above healthy %g", slow.Makespan, healthy.Makespan)
	}
}

func TestStallDiagnosedNamingVictim(t *testing.T) {
	res := Run(Case{Collective: "allreduce", Algo: "yhccl", Ranks: 8, Elems: 4096,
		Plan: &fault.Plan{Name: "st", Stalls: []fault.Stall{{Rank: 1, At: 0}}}})
	if res.Outcome != DiagnosedFailure {
		t.Fatalf("stall: %s (%v)", res.Outcome, res.Err)
	}
	if !strings.Contains(res.Err.Error(), "rank1") {
		t.Errorf("victim not named: %v", res.Err)
	}
	var re *mpi.RunError
	if !errors.As(res.Err, &re) {
		t.Fatalf("diagnosis is %T, want *mpi.RunError", res.Err)
	}
}

func TestCrashDiagnosedNamingVictim(t *testing.T) {
	res := Run(Case{Collective: "bcast", Algo: "pipelined", Ranks: 8, Elems: 4096,
		Plan: &fault.Plan{Name: "cr", Stalls: []fault.Stall{{Rank: 7, At: 0, Crash: true}}}})
	if res.Outcome != DiagnosedFailure {
		t.Fatalf("crash: %s (%v)", res.Outcome, res.Err)
	}
	if !strings.Contains(res.Err.Error(), "rank7") || !strings.Contains(res.Err.Error(), "injected crash") {
		t.Errorf("crash not attributed: %v", res.Err)
	}
}

func TestCorruptionCaughtWithChunkAttribution(t *testing.T) {
	res := Run(Case{Collective: "allreduce", Algo: "ring", Ranks: 8, Elems: 4096,
		Plan: &fault.Plan{Name: "fl", Corruptions: []fault.Corruption{
			{Rank: 2, SharedWrite: 0, Elem: 13, Bit: 51}}}})
	if res.Outcome != ValidationCaught {
		t.Fatalf("corruption: %s (%v)", res.Outcome, res.Err)
	}
	var ve *coll.ValidationError
	if !errors.As(res.Err, &ve) {
		t.Fatalf("diagnosis is %T, want *coll.ValidationError", res.Err)
	}
}

func TestCaseDeterministicUnderInjection(t *testing.T) {
	for _, c := range []Case{
		{Collective: "allreduce", Algo: "ring", Ranks: 8, Elems: 4096,
			Plan: &fault.Plan{Name: "s", Stragglers: []fault.Straggler{{Rank: 1, Factor: 5}}}},
		{Collective: "allreduce", Algo: "yhccl", Ranks: 8, Elems: 4096,
			Plan: fault.GenPlan(3, 8, 2e-4)},
	} {
		a, b := Run(c), Run(c)
		if a.Outcome != b.Outcome || a.Makespan != b.Makespan {
			t.Errorf("%s: nondeterministic: %s/%x vs %s/%x", c, a.Outcome, a.Makespan, b.Outcome, b.Makespan)
		}
		if (a.Err == nil) != (b.Err == nil) || (a.Err != nil && a.Err.Error() != b.Err.Error()) {
			t.Errorf("%s: error diverged: %v vs %v", c, a.Err, b.Err)
		}
	}
}

func TestUnknownAlgoIsCleanError(t *testing.T) {
	res := Run(Case{Collective: "allreduce", Algo: "no-such", Ranks: 4, Elems: 64})
	if res.Outcome != Undiagnosed || res.Err == nil {
		t.Fatalf("bad case should be flagged: %s (%v)", res.Outcome, res.Err)
	}
}

func TestReportTalliesOutcomes(t *testing.T) {
	results := Sweep([]Case{
		{Collective: "allreduce", Algo: "ring", Ranks: 4, Elems: 512},
		{Collective: "allreduce", Algo: "ring", Ranks: 4, Elems: 512,
			Plan: &fault.Plan{Name: "st", Stalls: []fault.Stall{{Rank: 1, At: 0}}}},
	})
	var b strings.Builder
	bad := Report(&b, results)
	if bad != 0 {
		t.Errorf("%d undiagnosed in a 2-case sanity sweep:\n%s", bad, b.String())
	}
	out := b.String()
	for _, want := range []string{"clean-pass", "diagnosed-failure", "2 cases"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
