package chaos

import (
	"fmt"
	"io"
	"sort"

	"yhccl/internal/coll"
	"yhccl/internal/mpi"
	"yhccl/internal/resilient"
	"yhccl/internal/topo"
)

// Recovery sweep: the diagnose-only sweep upgraded with the resilient
// supervisor. The bar moves from "everything must be diagnosed" to
// "everything must be diagnosed AND every recoverable plan must end in a
// verified-correct result": transient bit flips must recover by retry,
// stragglers by quarantine (or algorithm fallback), crashes and stalls by
// communicator shrink. The only acceptable terminal failures are
// unrecoverable-but-diagnosed runs of fault classes the gate does not
// require recovery for (e.g. heavy mixed seeded plans).

// RecoverySpares is the number of spare cores every recovery-sweep machine
// reserves for straggler quarantine.
const RecoverySpares = 4

// RecoveryResult pairs a case with the supervisor's verdict on it.
type RecoveryResult struct {
	Case   Case
	Report resilient.Report
}

// Class is the case's fault class ("healthy", "straggler", "stall",
// "crash", "bitflip", "mixed") — the key of the recovery gate.
func (r RecoveryResult) Class() string { return r.Case.Plan.Class() }

// RunRecover executes one case under the resilient supervisor and never
// panics: a raw panic escaping the stack is classified UNDIAGNOSED.
func RunRecover(c Case) (res RecoveryResult) {
	res.Case = c
	defer func() {
		if r := recover(); r != nil {
			res.Report = resilient.Report{
				Job:     c.Collective + "/" + c.Algo,
				Outcome: resilient.Undiagnosed,
				Err:     fmt.Errorf("chaos: unattributed panic: %v", r),
			}
		}
	}()

	m := mpi.NewMachineWithSpares(topo.NodeA(), c.Ranks, RecoverySpares, true)
	if err := m.SetFaultPlan(c.Plan); err != nil {
		res.Report = resilient.Report{
			Job:     c.Collective + "/" + c.Algo,
			Outcome: resilient.Undiagnosed,
			Err:     fmt.Errorf("chaos: bad plan: %w", err),
		}
		return res
	}
	job := resilient.Job{
		Name:     c.Collective + "/" + c.Algo,
		MaxDepth: coll.MaxFallbackDepth(c.Collective, c.Algo),
		Bind: func(m *mpi.Machine, depth, salt int) (func(*mpi.Rank), func() error, error) {
			b, err := c.bind(m, depth, salt)
			if err != nil {
				return nil, nil, err
			}
			return b.run, func() error { return b.verr }, nil
		},
	}
	res.Report = resilient.Supervise(m, job, resilient.DefaultPolicy())
	return res
}

// SweepRecover runs every case in order under the supervisor.
func SweepRecover(cases []Case) []RecoveryResult {
	out := make([]RecoveryResult, len(cases))
	for i, c := range cases {
		out[i] = RunRecover(c)
	}
	return out
}

// RecoveryGate returns one violation string per unacceptable result:
// any UNDIAGNOSED outcome anywhere (the PR 3 invariant), and any
// unrecoverable run of a fault class the policy chain must always handle —
// transient bit flips and single stragglers.
func RecoveryGate(results []RecoveryResult) []string {
	var bad []string
	for _, r := range results {
		switch r.Report.Outcome {
		case resilient.Undiagnosed:
			bad = append(bad, fmt.Sprintf("UNDIAGNOSED: %s: %v", r.Case, r.Report.Err))
		case resilient.Unrecoverable:
			if cl := r.Class(); cl == "bitflip" || cl == "straggler" {
				bad = append(bad, fmt.Sprintf("unrecoverable %s plan: %s: %v", cl, r.Case, r.Report.Err))
			}
		}
	}
	return bad
}

// ReportRecovery renders the sweep — one line per case, a per-fault-class
// recovery-rate table, and the gate verdict — and returns the number of
// gate violations.
func ReportRecovery(w io.Writer, results []RecoveryResult) int {
	for _, r := range results {
		line := fmt.Sprintf("%-27s  %s", r.Report.Outcome, r.Case)
		if len(r.Report.Excluded) > 0 {
			line += fmt.Sprintf(" excluded=%v", r.Report.Excluded)
		}
		if len(r.Report.Remapped) > 0 {
			line += fmt.Sprintf(" remapped=%v", r.Report.Remapped)
		}
		if r.Report.Depth > 0 {
			line += fmt.Sprintf(" depth=%d", r.Report.Depth)
		}
		if r.Report.Err != nil {
			line += fmt.Sprintf("\n             %v", r.Report.Err)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprint(w, "\n", RecoveryTable(results))
	bad := RecoveryGate(results)
	for _, v := range bad {
		fmt.Fprintf(w, "GATE VIOLATION: %s\n", v)
	}
	if len(bad) == 0 {
		fmt.Fprintln(w, "recovery gate: PASS")
	}
	return len(bad)
}

// RecoveryTable renders the per-fault-class recovery-rate table: for each
// class, how many cases ended in each outcome and the recovery rate over
// the cases that needed recovering.
func RecoveryTable(results []RecoveryResult) string {
	type tally struct {
		total, clean, recovered, unrecoverable, undiagnosed int
	}
	byClass := map[string]*tally{}
	for _, r := range results {
		cl := r.Class()
		t := byClass[cl]
		if t == nil {
			t = &tally{}
			byClass[cl] = t
		}
		t.total++
		switch {
		case r.Report.Outcome == resilient.CleanPass:
			t.clean++
		case r.Report.Outcome.Recovered():
			t.recovered++
		case r.Report.Outcome == resilient.Unrecoverable:
			t.unrecoverable++
		default:
			t.undiagnosed++
		}
	}
	classes := make([]string, 0, len(byClass))
	for cl := range byClass {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	s := fmt.Sprintf("%-10s %6s %6s %10s %14s %12s %9s\n",
		"class", "cases", "clean", "recovered", "unrecoverable", "UNDIAGNOSED", "recovery")
	for _, cl := range classes {
		t := byClass[cl]
		rate := "-"
		if needed := t.total - t.clean; needed > 0 {
			rate = fmt.Sprintf("%d/%d", t.recovered, needed)
		}
		s += fmt.Sprintf("%-10s %6d %6d %10d %14d %12d %9s\n",
			cl, t.total, t.clean, t.recovered, t.unrecoverable, t.undiagnosed, rate)
	}
	return s
}
