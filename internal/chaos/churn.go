package chaos

import (
	"fmt"
	"io"

	"yhccl/internal/cluster"
	"yhccl/internal/fault"
	"yhccl/internal/resilient"
	"yhccl/internal/topo"
)

// Membership churn: the elastic-membership stress one level up from the
// cluster sweep. Each cycle is a full crash -> recompile -> heal -> rejoin
// round at 4096 ranks, generated from a seed so the whole gate replays
// byte-for-byte. The contract is strict: every cycle must end
// recovered-by-rejoin at full membership and exactly two epochs up
// (recompile, rejoin), under the same flat-memory budgets the cluster
// sweep enforces, with zero goroutine growth.

// ChurnGate runs `cycles` seeded crash->heal->rejoin rounds and writes the
// per-cycle report and verdict to w. Returns the number of violations.
func ChurnGate(w io.Writer, cycles int, seed uint64) int {
	if cycles < 8 {
		cycles = 8
	}
	nodes, perNode := 64, 64
	job := resilient.ClusterJob{Coll: cluster.CollAllreduce, Alg: cluster.YHCCLHierarchical, Elems: 1 << 16}

	// The crash tick is drawn from the first half of the healthy makespan,
	// so every generated crash is guaranteed to fire mid-run.
	healthy := resilient.SuperviseCluster(
		cluster.New(topo.NodeA(), nodes, perNode, cluster.IB100()),
		job, nil, resilient.DefaultClusterPolicy())
	if healthy.Outcome != resilient.CleanPass {
		fmt.Fprintf(w, "GATE VIOLATION: healthy reference run not clean: %s: %v\n",
			healthy.Outcome, healthy.Err)
		return 1
	}
	horizon := int64(healthy.Makespan)
	shape := fault.ClusterShape{Nodes: nodes, PerNode: perNode}

	fmt.Fprintf(w, "churn gate: %d crash->heal->rejoin cycles @%dx%d seed=%d (healthy makespan %d ticks)\n\n",
		cycles, nodes, perNode, seed, horizon)

	var bad []string
	var results []ClusterResult
	for i := 0; i < cycles; i++ {
		pl := fault.GenChurnPlan(seed+uint64(i), shape, horizon)
		c := ClusterCase{Name: pl.Name, Nodes: nodes, PerNode: perNode, Job: job, Plan: pl}
		r := RunCluster(c)
		results = append(results, r)
		rep := r.Report
		fmt.Fprintf(w, "cycle %2d  %-22s %s runs=%d epoch=%d nodes=%d %4.0f B/rank/run %5.2f allocs/rank/run\n",
			i, pl.Name, rep.Outcome, r.Runs, rep.FinalEpoch, rep.FinalNodes, r.BytesPerRun, r.AllocsPerRun)

		if rep.Outcome != resilient.RecoveredRejoin {
			bad = append(bad, fmt.Sprintf("cycle %d (%s): outcome %s, want recovered-by-rejoin: %v",
				i, pl.Name, rep.Outcome, rep.Err))
		}
		if rep.FinalNodes != nodes {
			bad = append(bad, fmt.Sprintf("cycle %d (%s): finished at %d nodes, want full %d",
				i, pl.Name, rep.FinalNodes, nodes))
		}
		if rep.Outcome == resilient.RecoveredRejoin && rep.FinalEpoch != 2 {
			bad = append(bad, fmt.Sprintf("cycle %d (%s): final epoch %d, want 2 (recompile, rejoin)",
				i, pl.Name, rep.FinalEpoch))
		}
		// Flat memory across the full churn cycle: the same per-rank budgets
		// the cluster sweep holds, plus zero goroutine growth.
		if r.BytesPerRun > clusterMaxBytesPerRun {
			bad = append(bad, fmt.Sprintf("cycle %d (%s): %.0f B/rank/run exceeds budget %d",
				i, pl.Name, r.BytesPerRun, clusterMaxBytesPerRun))
		}
		if r.AllocsPerRun > clusterMaxAllocsPerRun {
			bad = append(bad, fmt.Sprintf("cycle %d (%s): %.2f allocs/rank/run exceeds budget %d",
				i, pl.Name, r.AllocsPerRun, clusterMaxAllocsPerRun))
		}
		if r.GoroutineDelta > 0 {
			bad = append(bad, fmt.Sprintf("cycle %d (%s): goroutine count grew by %d across the churn cycle",
				i, pl.Name, r.GoroutineDelta))
		}
	}

	fmt.Fprint(w, "\n", ClusterTable(results))
	for _, v := range bad {
		fmt.Fprintf(w, "GATE VIOLATION: %s\n", v)
	}
	if len(bad) == 0 {
		fmt.Fprintln(w, "churn gate: PASS")
	}
	return len(bad)
}
