// Package chaos sweeps fault plans across the collective algorithms and
// classifies each run: did it complete with bit-correct output, fail
// cleanly with a diagnosis naming the injected fault's victim, or — the
// only unacceptable outcome — produce a wrong answer or an unattributed
// failure? The sweep is the robustness gate every algorithm change must
// pass: never a hang, never an unattributed panic, never a silently wrong
// result.
//
// Everything is deterministic: plans are plain data (or derived from seeds
// via fault.GenPlan), the simulator is virtual-time ordered, and repeated
// runs of a case produce identical outcomes and makespans.
package chaos

import (
	"fmt"
	"io"
	"strings"

	"yhccl/internal/coll"
	"yhccl/internal/fault"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// Case is one cell of the sweep: a collective algorithm under a fault plan.
type Case struct {
	Collective string // "allreduce", "reduce-scatter", "reduce", "bcast", "allgather"
	Algo       string // registry name within the collective
	Ranks      int
	Elems      int64 // per the collective's convention (block size for reduce-scatter)
	Plan       *fault.Plan
}

func (c Case) String() string {
	plan := "healthy"
	if !c.Plan.Empty() {
		plan = c.Plan.Name
	}
	return fmt.Sprintf("%s/%s p=%d n=%d plan=%s", c.Collective, c.Algo, c.Ranks, c.Elems, plan)
}

// Outcome classifies one run.
type Outcome int

const (
	// CleanPass: the run completed and every rank's output validated.
	CleanPass Outcome = iota
	// DiagnosedFailure: the run failed with an error naming the fault's
	// victim rank (a stall diagnosed as deadlock, an attributed crash).
	DiagnosedFailure
	// ValidationCaught: the run completed but self-validation caught the
	// corrupted output, locating the diverging rank and chunk.
	ValidationCaught
	// Undiagnosed: the unacceptable bucket — a wrong answer nobody caught,
	// a failure that does not name its victim, or a raw panic.
	Undiagnosed
)

func (o Outcome) String() string {
	switch o {
	case CleanPass:
		return "clean-pass"
	case DiagnosedFailure:
		return "diagnosed-failure"
	case ValidationCaught:
		return "validation-caught"
	case Undiagnosed:
		return "UNDIAGNOSED"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Result is the classified outcome of one case.
type Result struct {
	Case     Case
	Outcome  Outcome
	Makespan float64 // 0 when the run failed
	Err      error   // the diagnosis (run or validation error); nil on CleanPass
}

// Acceptable reports whether the outcome is one of the three allowed ones.
func (r Result) Acceptable() bool { return r.Outcome != Undiagnosed }

// Run executes one case and classifies it. It never panics: a raw panic
// escaping the machine layer is caught and classified Undiagnosed.
func Run(c Case) (res Result) {
	res = Result{Case: c}
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = Undiagnosed
			res.Err = fmt.Errorf("chaos: unattributed panic: %v", r)
		}
	}()

	m := mpi.NewMachine(topo.NodeA(), c.Ranks, true)
	if err := m.SetFaultPlan(c.Plan); err != nil {
		res.Outcome = Undiagnosed
		res.Err = fmt.Errorf("chaos: bad plan: %w", err)
		return res
	}
	body, err := c.body(m)
	if err != nil {
		res.Outcome = Undiagnosed
		res.Err = err
		return res
	}

	makespan, runErr := m.Run(body.run)
	switch {
	case runErr != nil:
		res.Err = runErr
		if namesVictim(runErr, c.Plan) {
			res.Outcome = DiagnosedFailure
		} else {
			res.Outcome = Undiagnosed
		}
	case body.verr != nil:
		res.Err = body.verr
		if c.Plan != nil && len(c.Plan.Corruptions) > 0 {
			res.Outcome = ValidationCaught
		} else {
			res.Outcome = Undiagnosed // wrong answer with no fault to blame
		}
	default:
		res.Outcome = CleanPass
		res.Makespan = makespan
	}
	return res
}

// caseBody binds a case's collective dispatch and captures the first
// validation failure any rank reports.
type caseBody struct {
	run  func(r *mpi.Rank)
	verr error
}

// body binds the case at the head of its fallback chain with the canonical
// fill pattern — the shape the plain (diagnose-only) sweep runs.
func (c Case) body(m *mpi.Machine) (*caseBody, error) {
	return c.bind(m, 0, 0)
}

// bind builds the case's per-rank body for the given machine (whose size
// may differ from c.Ranks after a communicator shrink), fallback depth
// along the collective's resilient chain, and fill-pattern salt. Depth 0
// with salt 0 dispatches exactly what the plain sweep runs.
func (c Case) bind(m *mpi.Machine, depth, salt int) (*caseBody, error) {
	p := m.Size()
	bases := coll.SumBasesSalted(p, salt)
	b := &caseBody{}
	check := func(err error) {
		if err != nil && b.verr == nil {
			b.verr = err
		}
	}
	n := c.Elems
	o := coll.Options{FallbackDepth: depth}
	switch c.Collective {
	case "allreduce":
		name, alg, err := coll.ResilientAR(c.Algo, o)
		if err != nil {
			return nil, err
		}
		opName := c.Collective + "/" + name
		b.run = func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, bases[r.ID()])
			alg(r, r.World(), sb, rb, n, mpi.Sum, o)
			check(coll.ValidateAllreduceSum(opName, r.ID(), rb, n, bases))
		}
	case "reduce-scatter":
		name, alg, err := coll.ResilientRS(c.Algo, o)
		if err != nil {
			return nil, err
		}
		opName := c.Collective + "/" + name
		b.run = func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", int64(p)*n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, bases[r.ID()])
			alg(r, r.World(), sb, rb, n, mpi.Sum, o)
			check(coll.ValidateReduceScatterSum(opName, r.ID(), rb, n, bases))
		}
	case "reduce":
		name, alg, err := coll.ResilientReduce(c.Algo, o)
		if err != nil {
			return nil, err
		}
		opName := c.Collective + "/" + name
		b.run = func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, bases[r.ID()])
			alg(r, r.World(), sb, rb, n, mpi.Sum, 0, o)
			check(coll.ValidateReduceSum(opName, r.ID(), 0, rb, n, bases))
		}
	case "bcast":
		name, alg, err := coll.ResilientBcast(c.Algo, o)
		if err != nil {
			return nil, err
		}
		opName := c.Collective + "/" + name
		rootBase := 777 + float64(salt*17)
		b.run = func(r *mpi.Rank) {
			buf := r.NewBuffer("buf", n)
			if r.ID() == 0 {
				r.FillPattern(buf, rootBase)
			}
			alg(r, r.World(), buf, n, 0, o)
			check(coll.ValidateBcast(opName, r.ID(), buf, n, rootBase))
		}
	case "allgather":
		name, alg, err := coll.ResilientAG(c.Algo, o)
		if err != nil {
			return nil, err
		}
		opName := c.Collective + "/" + name
		b.run = func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", int64(p)*n)
			r.FillPattern(sb, bases[r.ID()])
			alg(r, r.World(), sb, rb, n, o)
			check(coll.ValidateAllgather(opName, r.ID(), rb, n, bases))
		}
	default:
		return nil, fmt.Errorf("chaos: unknown collective %q", c.Collective)
	}
	return b, nil
}

// namesVictim reports whether a failed run's diagnosis names at least one
// rank the plan could have victimized. Only stalls and crashes can fail a
// run; stragglers and corruptions must never surface here.
func namesVictim(err error, pl *fault.Plan) bool {
	if pl.Empty() {
		return false
	}
	msg := err.Error()
	for _, s := range pl.Stalls {
		if strings.Contains(msg, fmt.Sprintf("rank%d", s.Rank)) {
			return true
		}
	}
	return false
}

// Sweep runs every case in order.
func Sweep(cases []Case) []Result {
	out := make([]Result, len(cases))
	for i, c := range cases {
		out[i] = Run(c)
	}
	return out
}

// Report renders a sweep's results, one line per case, plus a summary
// tallying outcomes. It returns the number of unacceptable results.
func Report(w io.Writer, results []Result) int {
	counts := map[Outcome]int{}
	for _, r := range results {
		counts[r.Outcome]++
		line := fmt.Sprintf("%-11s  %s", r.Outcome, r.Case)
		if r.Err != nil {
			line += fmt.Sprintf("\n             %v", r.Err)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "\n%d cases: %d clean, %d diagnosed, %d caught by validation, %d UNDIAGNOSED\n",
		len(results), counts[CleanPass], counts[DiagnosedFailure],
		counts[ValidationCaught], counts[Undiagnosed])
	return counts[Undiagnosed]
}

// DefaultPlans returns the hand-written fault plans the default sweep pairs
// with every collective: a healthy baseline, a heavy straggler, an
// immediate stall, an immediate crash, and an early-write bit flip.
func DefaultPlans(p int) []*fault.Plan {
	return []*fault.Plan{
		nil,
		{Name: "straggle1x8", Stragglers: []fault.Straggler{{Rank: 1 % p, Factor: 8}}},
		{Name: "stall1@0", Stalls: []fault.Stall{{Rank: 1 % p, At: 0}}},
		{Name: "crashlast@0", Stalls: []fault.Stall{{Rank: p - 1, At: 0, Crash: true}}},
		{Name: "flip2w0", Corruptions: []fault.Corruption{{Rank: 2 % p, SharedWrite: 0, Elem: 13, Bit: 51}}},
	}
}

// DefaultCases builds the default sweep: every allreduce algorithm against
// every default plan, the other collectives against a representative
// subset, plus a band of seed-generated plans exercising fault combinations
// the hand-written ones don't.
func DefaultCases() []Case {
	const p, n = 8, 4096
	var cases []Case
	add := func(collective, algo string, plans ...*fault.Plan) {
		for _, pl := range plans {
			cases = append(cases, Case{Collective: collective, Algo: algo, Ranks: p, Elems: n, Plan: pl})
		}
	}
	plans := DefaultPlans(p)
	for _, algo := range []string{"yhccl", "ring", "rabenseifner", "two-level", "xpmem"} {
		add("allreduce", algo, plans...)
	}
	for _, algo := range []string{"binomial", "pipelined"} {
		add("bcast", algo, plans[0], plans[2], plans[3])
	}
	add("reduce", "yhccl", plans[0], plans[2])
	for _, algo := range []string{"ring", "socket-ma"} {
		add("reduce-scatter", algo, plans[0], plans[4])
	}
	add("allgather", "ring", plans[0], plans[1])
	// Seeded band: replayable pseudo-random plans (the horizon matches the
	// virtual-time scale of these runs so stalls can land mid-collective).
	for seed := uint64(1); seed <= 8; seed++ {
		add("allreduce", "yhccl", fault.GenPlan(seed, p, 2e-4))
	}
	return cases
}
