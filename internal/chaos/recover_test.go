package chaos

import (
	"fmt"
	"strings"
	"testing"

	"yhccl/internal/fault"
	"yhccl/internal/resilient"
)

// TestRecoverySweepGate is the PR's acceptance gate: the full default sweep
// under the resilient supervisor must have zero UNDIAGNOSED runs (the PR 3
// invariant, preserved) and zero unrecoverable runs for the transient
// bit-flip and single-straggler classes.
func TestRecoverySweepGate(t *testing.T) {
	results := SweepRecover(DefaultCases())
	for _, v := range RecoveryGate(results) {
		t.Error(v)
	}
	// The sweep must actually exercise every recovery mechanism: a sweep
	// where nothing needed retry/remap/shrink is not testing recovery.
	counts := map[resilient.Outcome]int{}
	for _, r := range results {
		counts[r.Report.Outcome]++
	}
	for _, want := range []resilient.Outcome{
		resilient.CleanPass, resilient.RecoveredRetry,
		resilient.RecoveredRemap, resilient.RecoveredShrink,
	} {
		if counts[want] == 0 {
			t.Errorf("default sweep never produced %s; outcomes: %v", want, counts)
		}
	}
}

// TestRecoveredAlwaysValidates is the "recovery never corrupts results"
// property: every recovered-* classification means the final attempt
// completed AND passed the exact integer-ramp self-validation (the
// validator runs inside every rank's body; a completed attempt with a nil
// error has been checked element-exactly on every rank).
func TestRecoveredAlwaysValidates(t *testing.T) {
	results := SweepRecover(DefaultCases())
	recovered := 0
	for _, r := range results {
		if !r.Report.Outcome.Recovered() {
			continue
		}
		recovered++
		if r.Report.Err != nil {
			t.Errorf("%s: recovered (%s) but report carries error: %v",
				r.Case, r.Report.Outcome, r.Report.Err)
		}
		if n := len(r.Report.Attempts); n == 0 {
			t.Errorf("%s: recovered with no attempts", r.Case)
		} else {
			last := r.Report.Attempts[n-1]
			if last.Err != nil {
				t.Errorf("%s: recovered but final attempt failed: %v", r.Case, last.Err)
			}
			if last.Makespan <= 0 {
				t.Errorf("%s: recovered final attempt has no makespan", r.Case)
			}
		}
		if r.Report.Makespan <= 0 {
			t.Errorf("%s: recovered with no makespan", r.Case)
		}
	}
	if recovered == 0 {
		t.Fatal("property test vacuous: nothing recovered")
	}
}

// seededCases builds the determinism band: one supervised case per seed.
func seededCases(seeds []uint64) []Case {
	const p, n = 8, 4096
	cases := make([]Case, len(seeds))
	for i, s := range seeds {
		cases[i] = Case{Collective: "allreduce", Algo: "yhccl",
			Ranks: p, Elems: n, Plan: fault.GenPlan(s, p, 2e-4)}
	}
	return cases
}

// renderFull serializes everything observable about a recovery sweep —
// classification, per-attempt actions and makespans, and the complete fault
// event logs — so byte equality means the sweep replayed identically.
func renderFull(results []RecoveryResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%s -> %s excluded=%v remapped=%v depth=%d\n",
			r.Case, r.Report.Outcome, r.Report.Excluded, r.Report.Remapped, r.Report.Depth)
		for _, at := range r.Report.Attempts {
			fmt.Fprintf(&b, "  [%s] depth=%d salt=%d ranks=%d t=%v err=%v\n",
				at.Action, at.Depth, at.Salt, at.Ranks, at.Makespan, at.Err)
			for _, ev := range at.Faults {
				fmt.Fprintf(&b, "    %s\n", ev)
			}
		}
	}
	return b.String()
}

// TestChaosDeterminism: the same GenPlan seeds swept twice yield
// byte-identical event logs and classifications; different seeds change at
// least the victim set.
func TestChaosDeterminism(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	first := renderFull(SweepRecover(seededCases(seeds)))
	second := renderFull(SweepRecover(seededCases(seeds)))
	if first != second {
		t.Errorf("same seeds, different sweeps:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}

	// Different seeds must vary what gets hit: across the band there is
	// more than one distinct victim set.
	victimSets := map[string]bool{}
	for _, c := range seededCases(seeds) {
		victimSets[fmt.Sprint(c.Plan.Victims())] = true
	}
	if len(victimSets) < 2 {
		t.Errorf("all %d seeds produced the same victim set", len(seeds))
	}
}
