package plan

import (
	"strings"
	"testing"

	"yhccl/internal/dav"
	"yhccl/internal/schedule"
)

func TestBucketEdges(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3},
		{1024, 10}, {1025, 11}, {64 << 10, 16}, {64<<10 + 1, 17},
		{256 << 20, 28},
	}
	for _, c := range cases {
		if got := Bucket(c.bytes); got != c.want {
			t.Errorf("Bucket(%d) = %d, want %d", c.bytes, got, c.want)
		}
		if c.bytes > 1 && BucketSize(Bucket(c.bytes)) < c.bytes {
			t.Errorf("BucketSize(Bucket(%d)) = %d < %d", c.bytes, BucketSize(Bucket(c.bytes)), c.bytes)
		}
	}
}

func mkPlans(coll string, buckets ...int) []Plan {
	out := make([]Plan, 0, len(buckets))
	for _, b := range buckets {
		out = append(out, Plan{
			Collective: coll, Bucket: b, SizeBytes: BucketSize(b),
			Params: Params{Family: "socket-ma"}, Source: "seed",
		})
	}
	return out
}

func TestTableLookupClampsToEdges(t *testing.T) {
	plans := mkPlans("allreduce", 16, 17, 18)
	plans[0].Params.Family = "two-level"
	tab, err := NewTable(plans)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Entries() != 3 {
		t.Fatalf("Entries = %d, want 3", tab.Entries())
	}
	// Below range clamps to the smallest bucket, above to the largest.
	if p := tab.Lookup(Allreduce, 8); p.Bucket != 16 {
		t.Errorf("tiny message got bucket %d, want 16", p.Bucket)
	}
	if p := tab.Lookup(Allreduce, 1<<30); p.Bucket != 18 {
		t.Errorf("huge message got bucket %d, want 18", p.Bucket)
	}
	if p := tab.Lookup(Allreduce, (64<<10)+1); p.Bucket != 17 {
		t.Errorf("128K-bucket message got bucket %d, want 17", p.Bucket)
	}
	// Untuned collective returns nil.
	if p := tab.Lookup(Bcast, 1<<20); p != nil {
		t.Errorf("untuned collective returned %+v, want nil", p)
	}
	if sw, ok := tab.SwitchBytes(Allreduce); !ok || sw != BucketSize(16) {
		t.Errorf("SwitchBytes = %d, %v; want %d, true", sw, ok, BucketSize(16))
	}
}

func TestTableLookupZeroAllocs(t *testing.T) {
	tab, err := NewTable(mkPlans("allreduce", 13, 14, 15, 16, 17, 18))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if tab.Lookup(Allreduce, 1<<20) == nil {
			t.Fatal("nil plan")
		}
	})
	if allocs != 0 {
		t.Errorf("Lookup allocates %.1f/op, want 0", allocs)
	}
}

func TestTableRejectsDuplicatesAndGaps(t *testing.T) {
	if _, err := NewTable(mkPlans("allreduce", 16, 16)); err == nil {
		t.Error("duplicate bucket accepted")
	}
	if _, err := NewTable(mkPlans("allreduce", 16, 18)); err == nil {
		t.Error("bucket gap accepted")
	}
	bad := mkPlans("allreduce", 16)
	bad[0].Collective = "alltoall"
	if _, err := NewTable(bad); err == nil {
		t.Error("unknown collective accepted")
	}
}

func TestParseCollRoundTrip(t *testing.T) {
	for _, c := range Colls() {
		got, err := ParseColl(c.String())
		if err != nil || got != c {
			t.Errorf("ParseColl(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseColl("alltoall"); err == nil {
		t.Error("ParseColl accepted unknown name")
	}
}

func TestParamsString(t *testing.T) {
	p := Params{Family: "socket-ma", SliceKB: 128, Policy: "nt-copy", Fanout: 4}
	if got := p.String(); got != "socket-ma/I=128K/nt-copy/f=4" {
		t.Errorf("String = %q", got)
	}
	if p.IsDefault() {
		t.Error("searched params reported as default")
	}
	if !(Params{Family: "ring"}).IsDefault() {
		t.Error("bare family not default")
	}
}

// Graph lowered from the MA schedule must price exactly at Table 1's
// s(3p-1) (reduce-scatter) and Table 2's s(5p-1) (all-reduce); the pure
// copy DAGs must match the pipelined closed forms.
func TestGraphDAVMatchesClosedForms(t *testing.T) {
	const s = int64(1 << 20)
	for _, p := range []int{2, 4, 8, 16} {
		block := s / int64(p)
		g, err := FromSchedule(schedule.MA(p))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if got, want := g.DAVBytes(block), dav.MAReduceScatter(s, p); got != want {
			t.Errorf("p=%d MA RS graph DAV = %d, want %d", p, got, want)
		}
		if got, want := g.CopyVolumeBytes(block), 2*s; got != want {
			t.Errorf("p=%d MA RS copy volume = %d, want %d (optimal)", p, got, want)
		}
		ar, err := AllreduceFromSchedule(schedule.MA(p))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if got, want := ar.DAVBytes(block), dav.MAAllreduce(s, p); got != want {
			t.Errorf("p=%d MA AR graph DAV = %d, want %d", p, got, want)
		}
		if got, want := BcastGraph(p, 0).DAVBytes(s), dav.PipelinedBcast(s, p); got != want {
			t.Errorf("p=%d bcast graph DAV = %d, want %d", p, got, want)
		}
		if got, want := AllgatherGraph(p).DAVBytes(s), dav.PipelinedAllgather(s, p); got != want {
			t.Errorf("p=%d allgather graph DAV = %d, want %d", p, got, want)
		}
	}
}

func TestGraphLoweringValidates(t *testing.T) {
	for _, p := range []int{2, 3, 4, 7, 8, 16} {
		for name, sch := range map[string]schedule.Schedule{
			"ma": schedule.MA(p), "dpml": schedule.DPML(p),
		} {
			if _, err := FromSchedule(sch); err != nil {
				t.Errorf("p=%d %s reduce-scatter: %v", p, name, err)
			}
			if _, err := AllreduceFromSchedule(sch); err != nil {
				t.Errorf("p=%d %s all-reduce: %v", p, name, err)
			}
		}
	}
}

// The MA chain's critical path grows like p; the fanout variant's like
// p/f + f. The gap is what the synthesizer exploits at small messages.
func TestGraphCriticalPath(t *testing.T) {
	const p = 16
	ma, err := FromSchedule(schedule.MA(p))
	if err != nil {
		t.Fatal(err)
	}
	fan, err := FromSchedule(schedule.Fanout(p, 4))
	if err != nil {
		t.Fatal(err)
	}
	if ma.CriticalPath() <= fan.CriticalPath() {
		t.Errorf("MA critical path %d not longer than fanout-4's %d",
			ma.CriticalPath(), fan.CriticalPath())
	}
}

func TestGraphValidateCatchesBrokenDAGs(t *testing.T) {
	cases := map[string]*Graph{
		"read-before-produce": {P: 2, Blocks: 1, Slots: 1, Steps: []Step{
			{R: 0, Kind: OpCopyOut, Block: 0, Src: 0},
		}},
		"double-produce": {P: 2, Blocks: 1, Slots: 1, Steps: []Step{
			{R: 0, Kind: OpCopyIn, Block: 0, Dst: 0},
			{R: 1, Kind: OpCopyIn, Block: 0, Dst: 0},
		}},
		"slot-range": {P: 2, Blocks: 1, Slots: 1, Steps: []Step{
			{R: 0, Kind: OpCopyIn, Block: 0, Dst: 3},
		}},
		"rank-range": {P: 2, Blocks: 1, Slots: 1, Steps: []Step{
			{R: 5, Kind: OpCopyIn, Block: 0, Dst: 0},
		}},
	}
	for name, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken graph", name)
		} else if !strings.HasPrefix(err.Error(), "plan: ") {
			t.Errorf("%s: error %q not namespaced", name, err)
		}
	}
}
