// Package plan is the collective-schedule compiler's intermediate
// representation and persistent tuned-plan store. It generalizes the §3.1
// sliced-reduction formalism of internal/schedule in two directions:
//
//   - Graph: a chunk-level copy/reduce DAG that also covers broadcast,
//     all-gather and all-reduce (not just reduce-scatter trees), with a
//     predicted data-access volume per Equation 1's accounting;
//   - Plan/Table/Cache: the outcome of an offline schedule search — per
//     (topology, ranks, collective, message-size bucket) the winning
//     algorithm family and its tuned parameters — serialized to a
//     versioned, checksummed JSON cache that runtime dispatch consults as
//     an O(1), allocation-free table lookup.
//
// The package deliberately depends only on the low layers (topo, schedule,
// memmodel's version constant): internal/coll lowers Graphs onto the
// machine and resolves Params into executable algorithms; internal/tune
// runs the search that fills the cache.
package plan

import (
	"fmt"
	"math/bits"
)

// Coll identifies a collective with a dense index (table dimension).
type Coll int

// The collectives the synthesizer covers.
const (
	Allreduce Coll = iota
	ReduceScatter
	Reduce
	Bcast
	Allgather
	NumColls
)

var collNames = [NumColls]string{"allreduce", "reduce-scatter", "reduce", "bcast", "allgather"}

// String returns the collective's canonical name.
func (c Coll) String() string {
	if c < 0 || c >= NumColls {
		return fmt.Sprintf("coll(%d)", int(c))
	}
	return collNames[c]
}

// ParseColl maps a canonical name back to its index.
func ParseColl(name string) (Coll, error) {
	for i, n := range collNames {
		if n == name {
			return Coll(i), nil
		}
	}
	return 0, fmt.Errorf("plan: unknown collective %q", name)
}

// Colls lists every collective in table order.
func Colls() []Coll {
	out := make([]Coll, NumColls)
	for i := range out {
		out[i] = Coll(i)
	}
	return out
}

// Params are the tunable knobs of one synthesized schedule: the seed
// algorithm family plus the searched dimensions (pipeline chunking, copy
// policy, tree fan-out). The zero value of every searched field means
// "family default", so a Params holding only a Family names a hand-written
// seed exactly.
type Params struct {
	// Family is the algorithm family ("socket-ma", "ring", "rg",
	// "fanout", ...). Families are resolved to executable code by
	// internal/coll; "fanout" lowers a schedule.Fanout graph through the
	// generic DAG executor.
	Family string `json:"family"`
	// SliceKB overrides Imax, the pipeline slice bound, in KB (0 = the
	// node default).
	SliceKB int64 `json:"slice_kb,omitempty"`
	// Policy overrides the copy policy ("t-copy", "nt-copy", "memmove",
	// "adaptive"; "" = family default, i.e. adaptive).
	Policy string `json:"policy,omitempty"`
	// RGDegree overrides the RG tree branching degree (0 = default 2).
	RGDegree int `json:"rg_degree,omitempty"`
	// Fanout is the parallel-chain count of a searched fanout schedule
	// (family "fanout" only).
	Fanout int `json:"fanout,omitempty"`
}

// IsDefault reports whether the params carry no searched overrides — i.e.
// they name a hand-written seed configuration.
func (p Params) IsDefault() bool {
	return p.SliceKB == 0 && p.Policy == "" && p.RGDegree == 0 && p.Fanout == 0
}

// String renders the params compactly for logs and tables.
func (p Params) String() string {
	s := p.Family
	if p.SliceKB != 0 {
		s += fmt.Sprintf("/I=%dK", p.SliceKB)
	}
	if p.Policy != "" {
		s += "/" + p.Policy
	}
	if p.RGDegree != 0 {
		s += fmt.Sprintf("/k=%d", p.RGDegree)
	}
	if p.Fanout != 0 {
		s += fmt.Sprintf("/f=%d", p.Fanout)
	}
	return s
}

// Plan is one tuned-cache entry: the winning schedule for a collective at
// one message-size bucket, plus the search evidence (predicted time, the
// best hand-written seed it had to beat, and whether the winner was a
// searched variant).
type Plan struct {
	// Collective names the operation ("allreduce", ...).
	Collective string `json:"collective"`
	// Bucket covers message sizes in (2^(Bucket-1), 2^Bucket] bytes.
	Bucket int `json:"bucket"`
	// SizeBytes is the anchor size the bucket was tuned at (its upper
	// edge for measured buckets).
	SizeBytes int64 `json:"size_bytes"`
	// Params is the winning configuration.
	Params Params `json:"params"`
	// PredictedSeconds is the cost-model makespan of the winner.
	PredictedSeconds float64 `json:"predicted_seconds"`
	// PredictedDAV is the closed-form data-access volume of the winner in
	// bytes, when a formula is known (0 otherwise).
	PredictedDAV int64 `json:"predicted_dav_bytes,omitempty"`
	// BestSeed names the fastest hand-written seed at this point and
	// BestSeedSeconds its cost-model makespan — the bar the gate checks.
	BestSeed        string  `json:"best_seed"`
	BestSeedSeconds float64 `json:"best_seed_seconds"`
	// Source is "seed" when a hand-written default won, "searched" when a
	// tuned variant strictly beat every seed, or "extrapolated" when a
	// quick-budget run filled this bucket from its nearest anchor.
	Source string `json:"source"`
}

// Bucket returns the size bucket of a message of the given bytes: the
// smallest b with bytes <= 2^b. Messages of zero or one byte share bucket 0.
func Bucket(bytes int64) int {
	if bytes <= 1 {
		return 0
	}
	return bits.Len64(uint64(bytes - 1))
}

// BucketSize returns the anchor (upper-edge) size of a bucket in bytes.
func BucketSize(bucket int) int64 { return int64(1) << bucket }

// Table is the runtime form of a loaded cache: a dense per-collective
// array indexed by size bucket. Lookup is O(1) and allocation-free — the
// per-call dispatch cost of a tuned communicator.
type Table struct {
	// byColl[c] spans buckets [minBucket[c], minBucket[c]+len-1].
	byColl    [NumColls][]*Plan
	minBucket [NumColls]int
	entries   int
}

// NewTable indexes a set of plans for dispatch. Entries with unknown
// collectives or duplicate (collective, bucket) keys are rejected.
func NewTable(plans []Plan) (*Table, error) {
	t := &Table{}
	minB := [NumColls]int{}
	maxB := [NumColls]int{}
	seen := [NumColls]bool{}
	for i := range plans {
		c, err := ParseColl(plans[i].Collective)
		if err != nil {
			return nil, err
		}
		b := plans[i].Bucket
		if !seen[c] {
			minB[c], maxB[c], seen[c] = b, b, true
			continue
		}
		if b < minB[c] {
			minB[c] = b
		}
		if b > maxB[c] {
			maxB[c] = b
		}
	}
	for c := range seen {
		if seen[c] {
			t.byColl[c] = make([]*Plan, maxB[c]-minB[c]+1)
			t.minBucket[c] = minB[c]
		}
	}
	for i := range plans {
		c, _ := ParseColl(plans[i].Collective)
		slot := &t.byColl[c][plans[i].Bucket-t.minBucket[c]]
		if *slot != nil {
			return nil, fmt.Errorf("plan: duplicate entry for %s bucket %d", plans[i].Collective, plans[i].Bucket)
		}
		*slot = &plans[i]
		t.entries++
	}
	for c := range t.byColl {
		for b, p := range t.byColl[c] {
			if p == nil {
				return nil, fmt.Errorf("plan: %s bucket %d missing (tuned range must be contiguous)",
					Coll(c), b+t.minBucket[c])
			}
		}
	}
	return t, nil
}

// Entries returns how many plans the table holds.
func (t *Table) Entries() int { return t.entries }

// Lookup returns the plan governing a message of the given bytes,
// clamping to the tuned range's edge buckets (a 1 KB message uses the
// smallest tuned bucket's plan; a 1 GB message the largest). Returns nil
// when the collective has no tuned plans at all. Allocation-free.
func (t *Table) Lookup(c Coll, bytes int64) *Plan {
	plans := t.byColl[c]
	if len(plans) == 0 {
		return nil
	}
	b := Bucket(bytes) - t.minBucket[c]
	if b < 0 {
		b = 0
	}
	if b >= len(plans) {
		b = len(plans) - 1
	}
	return plans[b]
}

// Buckets returns the tuned bucket range [lo, hi] for a collective
// (ok=false when untuned).
func (t *Table) Buckets(c Coll) (lo, hi int, ok bool) {
	if len(t.byColl[c]) == 0 {
		return 0, 0, false
	}
	return t.minBucket[c], t.minBucket[c] + len(t.byColl[c]) - 1, true
}

// smallMessageFamilies is the parallel-reduction class the paper's §5.1
// switch selects below the threshold: algorithms that split blocks across
// all cores instead of avoiding movement (two-level itself plus the DPML
// and RG parallel reductions, which share its structure).
var smallMessageFamilies = map[string]bool{"two-level": true, "dpml": true, "rg": true}

// SwitchBytes derives the small/large algorithm switch point of a
// collective from its tuned plans: the largest message size whose winning
// family is still in the parallel-reduction small-message class (the
// movement-avoiding families take over above it). Returns ok=false when
// the collective is untuned or the small-message class never wins.
func (t *Table) SwitchBytes(c Coll) (int64, bool) {
	plans := t.byColl[c]
	last := int64(0)
	for _, p := range plans {
		if smallMessageFamilies[p.Params.Family] {
			last = p.SizeBytes
		}
	}
	return last, last > 0
}
