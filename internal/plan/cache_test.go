package plan

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"yhccl/internal/topo"
)

func testCache(t *testing.T) *Cache {
	t.Helper()
	node, err := topo.Preset("NodeA")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(node, 64, 42)
	c.Plans = []Plan{
		{Collective: "allreduce", Bucket: 21, SizeBytes: 2 << 20,
			Params:           Params{Family: "socket-ma", SliceKB: 256, Policy: "nt-copy"},
			PredictedSeconds: 1.25e-3, PredictedDAV: 666_894_336,
			BestSeed: "socket-ma", BestSeedSeconds: 1.3e-3, Source: "searched"},
		{Collective: "allreduce", Bucket: 20, SizeBytes: 1 << 20,
			Params: Params{Family: "two-level"}, PredictedSeconds: 9e-4,
			BestSeed: "two-level", BestSeedSeconds: 9e-4, Source: "seed"},
		{Collective: "bcast", Bucket: 20, SizeBytes: 1 << 20,
			Params: Params{Family: "pipelined"}, PredictedSeconds: 4e-4,
			BestSeed: "pipelined", BestSeedSeconds: 4e-4, Source: "seed"},
	}
	return c
}

// Plan -> JSON -> Plan must round-trip bit-exactly, including every
// searched parameter, across the full cross product of field settings.
func TestPlanJSONRoundTripExact(t *testing.T) {
	families := []string{"ring", "socket-ma", "fanout"}
	sources := []string{"seed", "searched", "extrapolated"}
	i := 0
	for _, fam := range families {
		for _, src := range sources {
			for _, kb := range []int64{0, 64, 512} {
				for _, pol := range []string{"", "t-copy", "nt-copy"} {
					p := Plan{
						Collective: Coll(i % int(NumColls)).String(), Bucket: 13 + i,
						SizeBytes: int64(1) << (13 + i%15),
						Params:    Params{Family: fam, SliceKB: kb, Policy: pol, RGDegree: i % 5, Fanout: i % 7},
						PredictedSeconds: 1e-6 * float64(i+1), PredictedDAV: int64(i) * 1e6,
						BestSeed: fam, BestSeedSeconds: 1.1e-6 * float64(i+1), Source: src,
					}
					raw, err := json.Marshal(p)
					if err != nil {
						t.Fatal(err)
					}
					var back Plan
					if err := json.Unmarshal(raw, &back); err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(p, back) {
						t.Fatalf("round-trip mismatch:\n  in:  %+v\n  out: %+v", p, back)
					}
					i++
				}
			}
		}
	}
}

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := testCache(t)
	path, err := c.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := topo.Preset("NodeA")
	got, err := Load(dir, node, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("loaded cache differs:\n  saved:  %+v\n  loaded: %+v", c, got)
	}
	// Saving the same logical content twice (even with plans pre-shuffled)
	// must produce byte-identical files — the determinism the golden gate
	// depends on.
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c2 := testCache(t)
	c2.Plans[0], c2.Plans[2] = c2.Plans[2], c2.Plans[0]
	if _, err := c2.Save(dir); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("re-saving equal plan sets produced different bytes")
	}
	tab, err := got.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Entries() != 3 {
		t.Fatalf("Entries = %d, want 3", tab.Entries())
	}
}

func TestCacheLoadRejections(t *testing.T) {
	node, _ := topo.Preset("NodeA")
	nodeB, _ := topo.Preset("NodeB")

	save := func(t *testing.T, mutate func(*Cache)) string {
		t.Helper()
		dir := t.TempDir()
		c := testCache(t)
		if mutate != nil {
			mutate(c)
		}
		if _, err := c.Save(dir); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("missing-file", func(t *testing.T) {
		if _, err := Load(t.TempDir(), node, 64); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("err = %v, want fs.ErrNotExist", err)
		}
	})
	t.Run("format-version", func(t *testing.T) {
		dir := save(t, func(c *Cache) { c.FormatVersion = FormatVersion + 1 })
		if _, err := Load(dir, node, 64); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("cost-model-version", func(t *testing.T) {
		dir := save(t, func(c *Cache) { c.CostModelVersion = 999 })
		if _, err := Load(dir, node, 64); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("topology-fingerprint", func(t *testing.T) {
		// Tuned for NodeA, loaded on a machine whose NodeA was recalibrated.
		dir := save(t, nil)
		recal := *node
		recal.DRAMBandwidthPerSocket *= 1.01
		if _, err := Load(dir, &recal, 64); !errors.Is(err, ErrTopology) {
			t.Fatalf("err = %v, want ErrTopology", err)
		}
	})
	t.Run("rank-count", func(t *testing.T) {
		// A p=48 cache renamed to pose as the p=64 one: checksum verifies,
		// but the recorded rank count must still reject it.
		dir := save(t, func(c *Cache) { c.Ranks = 48 })
		from := filepath.Join(dir, FileName("NodeA", 48))
		to := filepath.Join(dir, FileName("NodeA", 64))
		if err := os.Rename(from, to); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, node, 64); !errors.Is(err, ErrTopology) {
			t.Fatalf("err = %v, want ErrTopology", err)
		}
	})
	t.Run("other-machine", func(t *testing.T) {
		// A NodeA cache renamed to pose as NodeB's.
		dir := save(t, nil)
		from := filepath.Join(dir, FileName("NodeA", 64))
		to := filepath.Join(dir, FileName("NodeB", 64))
		if err := os.Rename(from, to); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, nodeB, 64); !errors.Is(err, ErrTopology) {
			t.Fatalf("err = %v, want ErrTopology", err)
		}
	})
	t.Run("corrupted-body", func(t *testing.T) {
		dir := save(t, nil)
		path := filepath.Join(dir, FileName("NodeA", 64))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a plan's family in place: valid JSON, wrong checksum.
		tampered := bytes.Replace(raw, []byte(`"socket-ma"`), []byte(`"socket-mb"`), 1)
		if bytes.Equal(raw, tampered) {
			t.Fatal("tamper target not found")
		}
		if err := os.WriteFile(path, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, node, 64); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("truncated-file", func(t *testing.T) {
		dir := save(t, nil)
		path := filepath.Join(dir, FileName("NodeA", 64))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, node, 64); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
}
