package plan

import (
	"fmt"

	"yhccl/internal/schedule"
)

// This file is the chunk-level copy/reduce DAG — the compiler IR between
// the §3.1 schedule formalism (reduction trees for reduce-scatter) and the
// machine. A Graph covers the whole collective family: reduce-scatter
// (lowered from a schedule.Schedule), all-reduce (reduce-scatter plus a
// full copy-out stage), broadcast and all-gather (pure copy DAGs). The
// generic executor in internal/coll walks the step list; the DAV method
// prices the graph by the paper's Equation 1 accounting, which tests
// cross-check against both the closed forms of internal/dav and the
// counters a real execution accumulates.

// OpKind is the kind of one DAG step.
type OpKind uint8

const (
	// OpCopyIn copies the executor's private block into a shared slot
	// (2 access units per byte: one load, one store).
	OpCopyIn OpKind = iota
	// OpReduce combines two operands into a shared slot — or straight into
	// the executor's receive buffer when Dst == ToRecv (3 units per byte).
	OpReduce
	// OpCopyOut copies a shared slot into the executor's receive buffer
	// (2 units per byte).
	OpCopyOut
)

// ToRecv as a Dst directs an OpReduce result into the executor's receive
// buffer instead of a shared slot (the Fig. 6 last-node optimization).
const ToRecv = int32(-1)

// Operand is one input of an OpReduce step: the executor's own private
// block (Own) or a previously produced shared slot.
type Operand struct {
	// Own selects the executor's private send-buffer block (read in
	// place, no copy — the movement-avoiding trick).
	Own bool `json:"own,omitempty"`
	// Slot is the shared slot read when !Own.
	Slot int32 `json:"slot,omitempty"`
}

// Step is one node of the DAG.
type Step struct {
	// R is the executing rank.
	R int32 `json:"r"`
	// Kind selects the operation.
	Kind OpKind `json:"kind"`
	// Block is the n-element block the step works on: the tree index for
	// reduce-scatter/all-reduce, the contributing rank for all-gather, 0
	// for broadcast. It addresses the executor's private buffers; slots
	// are addressed by Dst/Src.
	Block int32 `json:"block"`
	// Dst is the produced slot (OpCopyIn, OpReduce; ToRecv allowed for
	// OpReduce). Src is the consumed slot (OpCopyOut).
	Dst int32 `json:"dst,omitempty"`
	Src int32 `json:"src,omitempty"`
	// A and B are OpReduce's operands.
	A Operand `json:"a,omitempty"`
	B Operand `json:"b,omitempty"`
}

// Graph is a complete chunk-level collective schedule.
type Graph struct {
	// P is the rank count the graph is compiled for.
	P int
	// Blocks is how many n-element blocks the payload is split into.
	Blocks int
	// Slots is the shared-slot count (each holds one pipeline chunk).
	Slots int
	// Steps is the DAG in a topological order: every slot is produced by
	// an earlier step than any consumer. Each rank executes its steps in
	// this order, which makes the execution deadlock-free by induction.
	Steps []Step
}

// Validate checks executor ranges, single-assignment of slots, and that
// every consumed slot was produced by an earlier step.
func (g *Graph) Validate() error {
	if g.P <= 0 || g.Blocks <= 0 {
		return fmt.Errorf("plan: graph needs positive P and Blocks (have %d, %d)", g.P, g.Blocks)
	}
	produced := make([]bool, g.Slots)
	useSlot := func(j int, s int32) error {
		if s < 0 || int(s) >= g.Slots {
			return fmt.Errorf("plan: step %d reads slot %d out of range [0,%d)", j, s, g.Slots)
		}
		if !produced[s] {
			return fmt.Errorf("plan: step %d reads slot %d before it is produced", j, s)
		}
		return nil
	}
	for j, st := range g.Steps {
		if st.R < 0 || int(st.R) >= g.P {
			return fmt.Errorf("plan: step %d executor %d out of range", j, st.R)
		}
		if st.Block < 0 || int(st.Block) >= g.Blocks {
			return fmt.Errorf("plan: step %d block %d out of range", j, st.Block)
		}
		switch st.Kind {
		case OpCopyIn, OpReduce:
			if st.Kind == OpReduce {
				for _, op := range [2]Operand{st.A, st.B} {
					if !op.Own {
						if err := useSlot(j, op.Slot); err != nil {
							return err
						}
					}
				}
				if st.Dst == ToRecv {
					continue
				}
			}
			if st.Dst < 0 || int(st.Dst) >= g.Slots {
				return fmt.Errorf("plan: step %d writes slot %d out of range [0,%d)", j, st.Dst, g.Slots)
			}
			if produced[st.Dst] {
				return fmt.Errorf("plan: slot %d produced twice (step %d)", st.Dst, j)
			}
			produced[st.Dst] = true
		case OpCopyOut:
			if err := useSlot(j, st.Src); err != nil {
				return err
			}
		default:
			return fmt.Errorf("plan: step %d has unknown kind %d", j, st.Kind)
		}
	}
	return nil
}

// DAVBytes prices the graph for blocks of blockBytes each, by the paper's
// access-unit accounting: copies cost 2 units per byte, reductions 3.
func (g *Graph) DAVBytes(blockBytes int64) int64 {
	total := int64(0)
	for _, st := range g.Steps {
		switch st.Kind {
		case OpCopyIn, OpCopyOut:
			total += 2 * blockBytes
		case OpReduce:
			total += 3 * blockBytes
		}
	}
	return total
}

// CopyVolumeBytes is the paper's V for the graph: bytes moved between
// private and shared memory by explicit copies (2 units per copied byte).
func (g *Graph) CopyVolumeBytes(blockBytes int64) int64 {
	v := int64(0)
	for _, st := range g.Steps {
		if st.Kind == OpCopyIn || st.Kind == OpCopyOut {
			v += 2 * blockBytes
		}
	}
	return v
}

// CriticalPath returns the longest dependency chain in steps — the
// latency proxy that distinguishes a p-1-deep MA chain from a fanout
// variant's p/f + f depth.
func (g *Graph) CriticalPath() int {
	depth := make([]int, g.Slots)
	longest := 0
	at := func(op Operand) int {
		if op.Own {
			return 0
		}
		return depth[op.Slot]
	}
	for _, st := range g.Steps {
		d := 1
		switch st.Kind {
		case OpReduce:
			if a := at(st.A); a >= d {
				d = a + 1
			}
			if b := at(st.B); b >= d {
				d = b + 1
			}
		case OpCopyOut:
			d = depth[st.Src] + 1
		}
		if st.Kind != OpCopyOut && st.Dst != ToRecv {
			depth[st.Dst] = d
		}
		if d > longest {
			longest = d
		}
	}
	return longest
}

// FromSchedule lowers a validated §3.1 reduce-scatter schedule into a
// Graph: one copy-in per foreign slice use, the tree's reductions in phase
// order, and a copy-out for any block whose final reduction ran on a rank
// other than its owner (owners executing their own final write straight to
// the receive buffer, as in Fig. 6).
func FromSchedule(s schedule.Schedule) (*Graph, error) {
	p := len(s)
	if err := s.Validate(p); err != nil {
		return nil, err
	}
	g := &Graph{P: p, Blocks: p}
	// Slot numbering: per tree i, slots for copied-in slices first (one
	// per foreign slice actually copied), then one per node result.
	type key struct{ tree, idx int }
	sliceSlot := map[key]int32{}
	nodeSlot := map[key]int32{}
	alloc := func() int32 { s := int32(g.Slots); g.Slots++; return s }

	// Phase by node index j so that the interleaving matches the phased
	// executor: copy-ins feeding phase-j nodes, then the phase-j nodes.
	for j := 0; j < p-1; j++ {
		for i := 0; i < p; i++ {
			n := s[i][j]
			for _, op := range [2]schedule.Operand{n.A, n.B} {
				if op.IsSlice && op.X != n.R {
					slot := alloc()
					sliceSlot[key{i, op.X}] = slot
					g.Steps = append(g.Steps, Step{
						R: int32(op.X), Kind: OpCopyIn, Block: int32(i), Dst: slot,
					})
				}
			}
		}
		for i := 0; i < p; i++ {
			n := s[i][j]
			operand := func(op schedule.Operand) Operand {
				if op.IsSlice {
					if op.X == n.R {
						return Operand{Own: true}
					}
					return Operand{Slot: sliceSlot[key{i, op.X}]}
				}
				return Operand{Slot: nodeSlot[key{i, op.Ref}]}
			}
			st := Step{R: int32(n.R), Kind: OpReduce, Block: int32(i), A: operand(n.A), B: operand(n.B)}
			if j == p-2 && n.R == i {
				st.Dst = ToRecv
			} else {
				slot := alloc()
				nodeSlot[key{i, j}] = slot
				st.Dst = slot
			}
			g.Steps = append(g.Steps, st)
		}
	}
	// Copy-outs for blocks finalized on a foreign rank.
	for i := 0; i < p; i++ {
		if final := s[i][p-2]; final.R != i {
			g.Steps = append(g.Steps, Step{
				R: int32(i), Kind: OpCopyOut, Block: int32(i), Src: nodeSlot[key{i, p - 2}],
			})
		}
	}
	return g, g.Validate()
}

// AllreduceFromSchedule lowers a reduce-scatter schedule into an
// all-reduce graph: every block's final reduction lands in a shared slot,
// and every rank copies every block out — the MA all-reduce composition
// (Table 2: reduce-scatter's 3p-1 units plus 2p of copy-out).
func AllreduceFromSchedule(s schedule.Schedule) (*Graph, error) {
	p := len(s)
	g, err := FromSchedule(s)
	if err != nil {
		return nil, err
	}
	// Redirect direct-to-recv finals into slots so all ranks can read them.
	finalSlot := make([]int32, p)
	for i := range finalSlot {
		finalSlot[i] = -2
	}
	outSteps := g.Steps[:0]
	for _, st := range g.Steps {
		if st.Kind == OpCopyOut {
			continue // replaced by the full copy-out stage below
		}
		if st.Kind == OpReduce && st.Dst == ToRecv {
			slot := int32(g.Slots)
			g.Slots++
			st.Dst = slot
		}
		outSteps = append(outSteps, st)
	}
	g.Steps = outSteps
	// Record each block's final slot (the last producing step per block).
	lastProducer := make([]int32, p)
	for i := range lastProducer {
		lastProducer[i] = -1
	}
	for _, st := range g.Steps {
		if st.Kind == OpReduce {
			lastProducer[st.Block] = st.Dst
		}
	}
	for r := 0; r < p; r++ {
		for i := 0; i < p; i++ {
			g.Steps = append(g.Steps, Step{
				R: int32(r), Kind: OpCopyOut, Block: int32(i), Src: lastProducer[i],
			})
		}
	}
	return g, g.Validate()
}

// BcastGraph is the broadcast copy DAG: the root publishes its buffer into
// a shared slot, every other rank copies it out (DAV 2s + 2s(p-1)).
func BcastGraph(p, root int) *Graph {
	g := &Graph{P: p, Blocks: 1, Slots: 1}
	g.Steps = append(g.Steps, Step{R: int32(root), Kind: OpCopyIn, Block: 0, Dst: 0})
	for r := 0; r < p; r++ {
		if r != root {
			g.Steps = append(g.Steps, Step{R: int32(r), Kind: OpCopyOut, Block: 0, Src: 0})
		}
	}
	return g
}

// AllgatherGraph is the all-gather copy DAG: every rank publishes its
// block, every rank copies every block out (DAV 2sp + 2sp^2 per node).
func AllgatherGraph(p int) *Graph {
	g := &Graph{P: p, Blocks: p, Slots: p}
	for r := 0; r < p; r++ {
		g.Steps = append(g.Steps, Step{R: int32(r), Kind: OpCopyIn, Block: int32(r), Dst: int32(r)})
	}
	for r := 0; r < p; r++ {
		for b := 0; b < p; b++ {
			g.Steps = append(g.Steps, Step{R: int32(r), Kind: OpCopyOut, Block: int32(b), Src: int32(b)})
		}
	}
	return g
}
