package plan

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"yhccl/internal/memmodel"
	"yhccl/internal/topo"
)

// FormatVersion is the cache file layout version. Bump on any
// serialization change; readers reject other versions.
const FormatVersion = 1

// Sentinel errors for cache rejection, so callers can distinguish "stale,
// re-tune" from "corrupt, warn" — both degrade to hand-tuned dispatch.
var (
	// ErrVersion marks a format or cost-model version mismatch.
	ErrVersion = errors.New("plan: cache version mismatch")
	// ErrChecksum marks a corrupted or hand-edited cache body.
	ErrChecksum = errors.New("plan: cache checksum mismatch")
	// ErrTopology marks a cache tuned for a different machine.
	ErrTopology = errors.New("plan: cache topology mismatch")
)

// Cache is the on-disk tuned-plan store for one machine configuration.
type Cache struct {
	// FormatVersion and CostModelVersion gate loading: a cache tuned
	// against an older cost model is stale, not wrong — it is rejected so
	// the owner re-tunes.
	FormatVersion    int `json:"format_version"`
	CostModelVersion int `json:"cost_model_version"`
	// Topology/TopoFingerprint/Ranks/Sockets/Dtype are the machine key.
	TopoFingerprint uint64 `json:"topo_fingerprint"`
	Topology        string `json:"topology"`
	Ranks           int    `json:"ranks"`
	Sockets         int    `json:"sockets"`
	Dtype           string `json:"dtype"`
	// Seed is the search seed the tuner ran with (recorded so a cold
	// re-tune can reproduce the cache byte-for-byte).
	Seed uint64 `json:"seed"`
	// Plans holds the entries sorted by (collective, bucket).
	Plans []Plan `json:"plans"`
	// Checksum is the FNV-64a of the canonical body (computed with this
	// field empty), hex-encoded.
	Checksum string `json:"checksum,omitempty"`
}

// NewCache starts an empty cache keyed to a machine.
func NewCache(node *topo.Node, ranks int, seed uint64) *Cache {
	return &Cache{
		FormatVersion:    FormatVersion,
		CostModelVersion: memmodel.Version,
		TopoFingerprint:  TopoFingerprint(node),
		Topology:         node.Name,
		Ranks:            ranks,
		Sockets:          node.Sockets,
		Dtype:            "float64",
		Seed:             seed,
	}
}

// TopoFingerprint hashes every field of the node description, so a cache
// tuned on a recalibrated topology (same name, different bandwidths) is
// invalidated.
func TopoFingerprint(node *topo.Node) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%v|%g|%g|%g|%g|%g|%g|%g|%g",
		node.Name, node.Sockets, node.CoresPerSocket,
		node.L2PerCore, node.L3PerSocket, node.L3Inclusive,
		node.DRAMBandwidthPerSocket, node.DRAMBandwidthPerCore,
		node.CacheBandwidthPerCore, node.L3BandwidthPerSocket,
		node.CrossSocketFactor, node.SyncLatencyIntra, node.SyncLatencyInter,
		node.ReducePerCoreBandwidth)
	return h.Sum64()
}

// Sort orders the plans canonically; Save calls it so equal plan sets
// serialize to equal bytes.
func (c *Cache) Sort() {
	sort.Slice(c.Plans, func(i, j int) bool {
		if c.Plans[i].Collective != c.Plans[j].Collective {
			return c.Plans[i].Collective < c.Plans[j].Collective
		}
		return c.Plans[i].Bucket < c.Plans[j].Bucket
	})
}

// checksum computes the canonical-body hash: the cache marshaled with an
// empty Checksum field.
func (c *Cache) checksum() (string, error) {
	cp := *c
	cp.Checksum = ""
	body, err := json.Marshal(&cp)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// FileName is the per-machine cache file name within a plans directory.
func FileName(topology string, ranks int) string {
	return fmt.Sprintf("%s_p%d.json", topology, ranks)
}

// Save writes the cache to dir (created if missing), canonically sorted
// and checksummed. The write is atomic (temp file + rename) so a crashed
// tuner never leaves a torn cache behind.
func (c *Cache) Save(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	c.Sort()
	sum, err := c.checksum()
	if err != nil {
		return "", err
	}
	c.Checksum = sum
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return "", err
	}
	out = append(out, '\n')
	path := filepath.Join(dir, FileName(c.Topology, c.Ranks))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads and verifies the cache for a machine from dir: format and
// cost-model versions must match the running binary, the checksum must
// verify, and the topology fingerprint must match the node. Any failure
// returns a wrapped sentinel error; callers degrade to hand-tuned
// dispatch.
func Load(dir string, node *topo.Node, ranks int) (*Cache, error) {
	path := filepath.Join(dir, FileName(node.Name, ranks))
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Cache
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrChecksum, path, err)
	}
	if c.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: %s has format %d, want %d", ErrVersion, path, c.FormatVersion, FormatVersion)
	}
	if c.CostModelVersion != memmodel.Version {
		return nil, fmt.Errorf("%w: %s tuned against cost model v%d, running v%d (re-tune)",
			ErrVersion, path, c.CostModelVersion, memmodel.Version)
	}
	want, err := c.checksum()
	if err != nil {
		return nil, err
	}
	if c.Checksum != want {
		return nil, fmt.Errorf("%w: %s records %s, body hashes to %s", ErrChecksum, path, c.Checksum, want)
	}
	if c.TopoFingerprint != TopoFingerprint(node) || c.Ranks != ranks {
		return nil, fmt.Errorf("%w: %s tuned for %s p=%d fp=%016x, machine is %s p=%d fp=%016x",
			ErrTopology, path, c.Topology, c.Ranks, c.TopoFingerprint,
			node.Name, ranks, TopoFingerprint(node))
	}
	return &c, nil
}

// Table indexes the cache's plans for dispatch.
func (c *Cache) Table() (*Table, error) { return NewTable(c.Plans) }

// DefaultDir locates the repository's plans/ directory by walking up from
// the working directory to the module root (go.mod). Falls back to
// "plans" relative to the working directory.
func DefaultDir() string {
	dir, err := os.Getwd()
	if err != nil {
		return "plans"
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "plans")
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "plans"
		}
		dir = parent
	}
}
