package shm

import (
	"testing"

	"yhccl/internal/memmodel"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

func testModel() *memmodel.Model {
	node := topo.NodeA()
	cores := make([]int, node.Cores())
	for i := range cores {
		cores[i] = i
	}
	return memmodel.New(node, cores)
}

func TestArenaAllocShapes(t *testing.T) {
	m := testModel()
	a := NewArena(m, "test", true)
	b := a.Alloc("seg", 1, 100)
	if b.Space != memmodel.Shared {
		t.Errorf("space = %v, want shared", b.Space)
	}
	if b.Home != 1 {
		t.Errorf("home = %d, want 1", b.Home)
	}
	if !b.Real() || b.Elems != 100 {
		t.Errorf("buffer not real or wrong size")
	}
	p := a.AllocPinned("ring", 0, 10)
	if !p.Pinned {
		t.Error("AllocPinned did not pin")
	}
}

func TestArenaModelOnlyMode(t *testing.T) {
	m := testModel()
	a := NewArena(m, "test", false)
	if a.Alloc("seg", 0, 100).Real() {
		t.Error("model-only arena allocated real data")
	}
}

func TestFlagChargesCoherenceLatency(t *testing.T) {
	m := testModel()
	node := m.Node
	f := NewFlag(m, "f", 0) // owned by core 0 (socket 0)
	e := sim.NewEngine()
	var intraT, interT float64
	e.Spawn("setter", func(p *sim.Proc) {
		p.Advance(1e-6)
		f.Set(p, 1)
	})
	e.Spawn("intra", func(p *sim.Proc) {
		f.Wait(p, 1, 1) // waiter on core 1, same socket
		intraT = p.Now()
	})
	e.Spawn("inter", func(p *sim.Proc) {
		f.Wait(p, 32, 1) // waiter on core 32, other socket
		interT = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 1e-6 + node.SyncLatencyIntra; !close(intraT, want) {
		t.Errorf("intra waiter released at %g, want %g", intraT, want)
	}
	if want := 1e-6 + node.SyncLatencyInter; !close(interT, want) {
		t.Errorf("inter waiter released at %g, want %g", interT, want)
	}
	if m.Counters().SyncCount != 2 {
		t.Errorf("sync count = %d, want 2", m.Counters().SyncCount)
	}
}

func TestBarrierLatencyScalesWithLogP(t *testing.T) {
	m := testModel()
	bSmall := MustBarrier(m, "b2", []int{0, 1})
	bBig := MustBarrier(m, "b32", intRange(32))
	e := sim.NewEngine()
	var t2 float64
	for i := 0; i < 2; i++ {
		e.Spawn("p", func(p *sim.Proc) {
			bSmall.Arrive(p)
			t2 = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e2 := sim.NewEngine()
	var t32 float64
	for i := 0; i < 32; i++ {
		e2.Spawn("p", func(p *sim.Proc) {
			bBig.Arrive(p)
			t32 = p.Now()
		})
	}
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if t32 <= t2 {
		t.Errorf("32-party barrier (%g) should cost more than 2-party (%g)", t32, t2)
	}
}

func TestBarrierCrossSocketCostsMore(t *testing.T) {
	m := testModel()
	intra := MustBarrier(m, "intra", []int{0, 1, 2, 3})
	inter := MustBarrier(m, "inter", []int{0, 1, 32, 33})
	run := func(b *Barrier, parties int) float64 {
		e := sim.NewEngine()
		var end float64
		for i := 0; i < parties; i++ {
			e.Spawn("p", func(p *sim.Proc) {
				b.Arrive(p)
				end = p.Now()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	if ti, tx := run(intra, 4), run(inter, 4); tx <= ti {
		t.Errorf("cross-socket barrier (%g) should cost more than intra (%g)", tx, ti)
	}
}

// TestBarrierEmptyCoreSet pins the regression: an empty core set used to
// panic from inside NewBarrier; it now returns a descriptive error naming
// the barrier, and MustBarrier panics with that same error.
func TestBarrierEmptyCoreSet(t *testing.T) {
	m := testModel()
	b, err := NewBarrier(m, "world/barrier", nil)
	if b != nil || err == nil {
		t.Fatalf("NewBarrier(empty) = %v, %v; want nil, error", b, err)
	}
	want := `shm: barrier "world/barrier" over empty core set`
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err.Error(), want)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustBarrier(empty) should panic")
		}
		if perr, ok := r.(error); !ok || perr.Error() != want {
			t.Errorf("MustBarrier panic = %v, want %q", r, want)
		}
	}()
	MustBarrier(m, "world/barrier", nil)
}

func TestFlagWaitTimeout(t *testing.T) {
	m := testModel()
	f := NewFlag(m, "f", 0)
	e := sim.NewEngine()
	var got, timedOut bool
	e.Spawn("setter", func(p *sim.Proc) {
		p.Advance(1e-6)
		f.Set(p, 1)
	})
	e.Spawn("patient", func(p *sim.Proc) {
		got = f.WaitTimeout(p, 1, 1, 1.0) // deadline far past the set
	})
	e.Spawn("hasty", func(p *sim.Proc) {
		timedOut = !f.WaitTimeout(p, 2, 2, 1e-9) // threshold never reached
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("patient waiter should see the flag")
	}
	if !timedOut {
		t.Error("hasty waiter should time out")
	}
}

func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12 || d < 1e-9*b
}
