// Package shm models the process-shared memory mechanism that intra-node
// MPI collectives are built on: shared segments for copy-in/copy-out, the
// per-process atomic flags used for signalling between reduction steps, and
// the node barrier.
//
// All synchronization latencies are charged through the memmodel, mirroring
// the cache-coherence cost of polling a flag line owned by another core.
package shm

import (
	"fmt"

	"yhccl/internal/memmodel"
	"yhccl/internal/sim"
)

// Arena allocates shared buffers from a model with explicit NUMA homing.
type Arena struct {
	model *memmodel.Model
	name  string
	seq   int
	real  bool
}

// NewArena returns an arena labelled name; real selects whether buffers
// carry actual data.
func NewArena(model *memmodel.Model, name string, real bool) *Arena {
	return &Arena{model: model, name: name, real: real}
}

// Alloc returns a shared buffer of n elements homed on the given socket
// (first-touch placement decided by the algorithm).
func (a *Arena) Alloc(label string, home int, n int64) *memmodel.Buffer {
	a.seq++
	return a.model.NewBuffer(
		fmt.Sprintf("%s/%s#%d", a.name, label, a.seq),
		memmodel.Shared, home, n, a.real)
}

// AllocPinned returns a shared buffer modelled as permanently
// cache-resident (a reused transport ring; see memmodel.Buffer.Pinned).
func (a *Arena) AllocPinned(label string, home int, n int64) *memmodel.Buffer {
	b := a.Alloc(label, home, n)
	b.Pinned = true
	return b
}

// Flag is a shared synchronization cell owned by (homed at) one core. A
// wait by another core pays the coherence latency between the two cores.
// Values only grow, exactly like the epoch counters real shared-memory
// collectives use to avoid resetting flags between steps.
type Flag struct {
	f         *sim.Flag
	model     *memmodel.Model
	ownerCore int
}

// NewFlag creates a flag owned by ownerCore.
func NewFlag(model *memmodel.Model, name string, ownerCore int) *Flag {
	return &Flag{f: sim.NewFlag(name), model: model, ownerCore: ownerCore}
}

// Value returns the current value.
func (f *Flag) Value() uint64 { return f.f.Value() }

// Set raises the flag to v; the setter pays the local store latency
// (negligible, folded into zero) and waiters are released with coherence
// latency from their own core.
func (f *Flag) Set(p *sim.Proc, v uint64) {
	p.Set(f.f, v)
}

// Incr raises the flag by one.
func (f *Flag) Incr(p *sim.Proc) {
	p.Incr(f.f)
}

// Wait blocks p (running on waiterCore) until the flag reaches v, charging
// the coherence latency between waiterCore and the flag's owner core.
func (f *Flag) Wait(p *sim.Proc, waiterCore int, v uint64) {
	f.model.CountSync()
	p.Wait(f.f, v, f.model.SyncLatency(waiterCore, f.ownerCore))
}

// WaitTimeout is Wait bounded by a virtual-time deadline: it reports false
// if the flag has not reached v within timeout virtual seconds, resuming
// the waiter at exactly the deadline instead of hanging. The timeout is a
// discrete virtual-time event, so runs stay replayable.
func (f *Flag) WaitTimeout(p *sim.Proc, waiterCore int, v uint64, timeout float64) bool {
	f.model.CountSync()
	return p.WaitTimeout(f.f, v, f.model.SyncLatency(waiterCore, f.ownerCore), timeout)
}

// Barrier synchronizes a fixed group of cores. The release latency models a
// flag-tree barrier: 2*ceil(log2(parties)) one-way flag propagations at the
// worst pairwise distance among the participants.
type Barrier struct {
	b       *sim.Barrier
	model   *memmodel.Model
	latency float64
}

// NewBarrier builds a barrier over the given cores. It returns an error for
// an empty core set — the one caller misuse that used to panic from deep
// inside a collective with no indication of which communicator was at fault.
func NewBarrier(model *memmodel.Model, name string, cores []int) (*Barrier, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("shm: barrier %q over empty core set", name)
	}
	worst := 0.0
	for _, a := range cores {
		for _, b := range cores {
			if l := model.SyncLatency(a, b); l > worst {
				worst = l
			}
		}
	}
	depth := 0
	for n := 1; n < len(cores); n *= 2 {
		depth++
	}
	return &Barrier{
		b:       sim.NewBarrier(name, len(cores)),
		model:   model,
		latency: 2 * float64(depth) * worst,
	}, nil
}

// MustBarrier is NewBarrier for callers whose core set is known non-empty
// by construction (e.g. a communicator's own members).
func MustBarrier(model *memmodel.Model, name string, cores []int) *Barrier {
	b, err := NewBarrier(model, name, cores)
	if err != nil {
		panic(err)
	}
	return b
}

// Arrive blocks until all participants arrive; everyone leaves at
// max(arrival) + barrier latency.
func (b *Barrier) Arrive(p *sim.Proc) {
	b.model.CountSync()
	p.Arrive(b.b, b.latency)
}

// Parties returns the participant count.
func (b *Barrier) Parties() int { return b.b.Parties() }
