package fault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenClusterPlanDeterministicAndValid(t *testing.T) {
	shape := ClusterShape{Nodes: 64, PerNode: 64}
	for seed := uint64(0); seed < 64; seed++ {
		a := GenClusterPlan(seed, shape, 1_000_000)
		b := GenClusterPlan(seed, shape, 1_000_000)
		if a.String() != b.String() {
			t.Fatalf("seed %d: plans diverge:\n%s\n%s", seed, a, b)
		}
		if err := a.Validate(shape); err != nil {
			t.Fatalf("seed %d: generated plan invalid: %v", seed, err)
		}
		if a.Empty() {
			t.Fatalf("seed %d: generated plan is empty", seed)
		}
	}
}

func TestGenClusterPlanCoversAllClasses(t *testing.T) {
	shape := ClusterShape{Nodes: 64, PerNode: 64}
	classes := map[string]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		classes[GenClusterPlan(seed, shape, 1_000_000).Class()] = true
	}
	for _, want := range []string{"node-crash", "link-degrade", "node-straggler", "phase-corrupt"} {
		if !classes[want] {
			t.Fatalf("64 seeds never produced class %q (got %v)", want, classes)
		}
	}
}

func TestClusterPlanValidate(t *testing.T) {
	shape := ClusterShape{Nodes: 4, PerNode: 8}
	bad := []*ClusterPlan{
		{Crashes: []NodeCrash{{Node: 4, AtTick: 0}}},
		{Crashes: []NodeCrash{{Node: 0, AtTick: -1}}},
		{LinkDegrades: []LinkDegrade{{Node: 0, Factor: 0.5}}},
		{Stragglers: []NodeStraggler{{Node: -1, Factor: 2}}},
		{Corruptions: []PhaseCorrupt{{Node: 0, Phase: 3}}},
		{Shape: ClusterShape{Nodes: 8, PerNode: 8}, Crashes: []NodeCrash{{Node: 0}}},
	}
	for i, pl := range bad {
		if err := pl.Validate(shape); err == nil {
			t.Fatalf("bad plan %d accepted: %s", i, pl)
		}
	}
	if err := (*ClusterPlan)(nil).Validate(shape); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
}

func TestClusterPlanRestrictNodes(t *testing.T) {
	pl := &ClusterPlan{
		Name:         "r",
		Shape:        ClusterShape{Nodes: 4, PerNode: 8},
		Crashes:      []NodeCrash{{Node: 1, AtTick: 5}},
		LinkDegrades: []LinkDegrade{{Node: 3, Factor: 2}},
		Stragglers:   []NodeStraggler{{Node: 0, Factor: 3}},
		Corruptions:  []PhaseCorrupt{{Node: 2, Phase: 1}},
	}
	// Node 1 dies: survivors keep firing under renumbered ids.
	out := pl.RestrictNodes([]int{0, 2, 3})
	if len(out.Crashes) != 0 {
		t.Fatalf("dead node's crash survived: %v", out.Crashes)
	}
	if len(out.LinkDegrades) != 1 || out.LinkDegrades[0].Node != 2 {
		t.Fatalf("degrade not renumbered 3->2: %v", out.LinkDegrades)
	}
	if len(out.Stragglers) != 1 || out.Stragglers[0].Node != 0 {
		t.Fatalf("straggler not kept at 0: %v", out.Stragglers)
	}
	if len(out.Corruptions) != 1 || out.Corruptions[0].Node != 1 {
		t.Fatalf("corruption not renumbered 2->1: %v", out.Corruptions)
	}
	if out.Shape != (ClusterShape{Nodes: 3, PerNode: 8}) {
		t.Fatalf("shape not shrunk: %v", out.Shape)
	}
	if err := out.Validate(out.Shape); err != nil {
		t.Fatalf("restricted plan invalid: %v", err)
	}
}

func TestClusterPlanWithoutFiredCorruptions(t *testing.T) {
	pl := &ClusterPlan{Corruptions: []PhaseCorrupt{{Node: 1, Phase: 0}, {Node: 2, Phase: 1}}}
	out := pl.WithoutFiredCorruptions([]ClusterEvent{
		{Kind: "phase-corrupt", Node: 2, Phase: 1, Tick: 99},
	})
	if len(out.Corruptions) != 1 || out.Corruptions[0].Node != 1 {
		t.Fatalf("fired corruption not consumed: %v", out.Corruptions)
	}
}

func TestPlanFileRoundTrip(t *testing.T) {
	dir := t.TempDir()

	rank := GenPlan(7, 8, 2e-4)
	rankPath := filepath.Join(dir, "rank.json")
	if err := SavePlan(rankPath, rank, 8); err != nil {
		t.Fatal(err)
	}
	rf, err := LoadPlanFile(rankPath)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Cluster != nil || rf.Rank == nil || rf.Ranks != 8 {
		t.Fatalf("rank file decoded wrong: %+v", rf)
	}
	if rf.Rank.String() != rank.String() {
		t.Fatalf("rank plan changed across round trip:\n%s\n%s", rf.Rank, rank)
	}

	cl := GenClusterPlan(7, ClusterShape{Nodes: 64, PerNode: 64}, 1_000_000)
	clPath := filepath.Join(dir, "cluster.json")
	if err := SaveClusterPlan(clPath, cl); err != nil {
		t.Fatal(err)
	}
	cf, err := LoadPlanFile(clPath)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Rank != nil || cf.Cluster == nil {
		t.Fatalf("cluster file decoded wrong: %+v", cf)
	}
	if cf.Cluster.String() != cl.String() {
		t.Fatalf("cluster plan changed across round trip:\n%s\n%s", cf.Cluster, cl)
	}
}

func TestPlanFileRejectsTampering(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := SavePlan(path, GenPlan(3, 8, 2e-4), 8); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the body: the checksum must catch it.
	tampered := []byte(string(body))
	for i := range tampered {
		if tampered[i] == '8' {
			tampered[i] = '9'
			break
		}
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlanFile(path); !errors.Is(err, ErrPlanChecksum) {
		t.Fatalf("tampered file loaded: %v", err)
	}

	// Wrong version is a typed error too.
	if err := SavePlan(path, GenPlan(3, 8, 2e-4), 8); err != nil {
		t.Fatal(err)
	}
	body, _ = os.ReadFile(path)
	body = []byte(strings.Replace(string(body), `"format_version": 1`, `"format_version": 99`, 1))
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlanFile(path); !errors.Is(err, ErrPlanVersion) {
		t.Fatalf("wrong-version file loaded: %v", err)
	}
}
