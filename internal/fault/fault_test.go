package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestEmptyPlan(t *testing.T) {
	var pl *Plan
	if !pl.Empty() {
		t.Error("nil plan should be empty")
	}
	if !(&Plan{Name: "x"}).Empty() {
		t.Error("plan with no faults should be empty")
	}
	if (&Plan{Stalls: []Stall{{Rank: 0}}}).Empty() {
		t.Error("plan with a stall is not empty")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"straggler rank high", Plan{Stragglers: []Straggler{{Rank: 8, Factor: 2}}}, "outside world"},
		{"straggler rank negative", Plan{Stragglers: []Straggler{{Rank: -1, Factor: 2}}}, "outside world"},
		{"straggler zero factor", Plan{Stragglers: []Straggler{{Rank: 0, Factor: 0}}}, "invalid factor"},
		{"straggler NaN factor", Plan{Stragglers: []Straggler{{Rank: 0, Factor: math.NaN()}}}, "invalid factor"},
		{"stall rank high", Plan{Stalls: []Stall{{Rank: 99}}}, "outside world"},
		{"stall negative time", Plan{Stalls: []Stall{{Rank: 0, At: -1}}}, "invalid time"},
		{"corruption rank high", Plan{Corruptions: []Corruption{{Rank: 8}}}, "outside world"},
		{"corruption bad bit", Plan{Corruptions: []Corruption{{Rank: 0, Bit: 64}}}, "bit 64"},
		{"corruption negative elem", Plan{Corruptions: []Corruption{{Rank: 0, Elem: -2}}}, "negative element"},
	}
	for _, c := range cases {
		err := c.plan.Validate(8)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
	good := Plan{
		Stragglers:  []Straggler{{Rank: 1, Factor: 3}},
		Stalls:      []Stall{{Rank: 2, At: 1e-5, Crash: true}},
		Corruptions: []Corruption{{Rank: 3, SharedWrite: 2, Elem: 100, Bit: 52}},
	}
	if err := good.Validate(8); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestInjectorLookups(t *testing.T) {
	in := NewInjector(&Plan{
		Stragglers: []Straggler{{Rank: 2, Factor: 4}},
		Stalls:     []Stall{{Rank: 5, At: 0.5, Crash: true}},
	})
	in.BeginRun(8)
	if f := in.SlowdownFor(2); f != 4 {
		t.Errorf("SlowdownFor(2) = %v, want 4", f)
	}
	if f := in.SlowdownFor(3); f != 0 {
		t.Errorf("SlowdownFor(3) = %v, want 0", f)
	}
	if s, ok := in.StallFor(5); !ok || s.At != 0.5 || !s.Crash {
		t.Errorf("StallFor(5) = %+v,%v, want crash at 0.5", s, ok)
	}
	if _, ok := in.StallFor(0); ok {
		t.Error("StallFor(0) should find nothing")
	}
	evs := in.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (straggler + crash armed)", len(evs))
	}
	if evs[0].Kind != "straggler" || evs[0].Rank != 2 {
		t.Errorf("event 0 = %v", evs[0])
	}
	if evs[1].Kind != "crash" || evs[1].Rank != 5 {
		t.Errorf("event 1 = %v", evs[1])
	}
}

func TestNilPlanInjectorIsNoop(t *testing.T) {
	in := NewInjector(nil)
	in.BeginRun(4)
	if in.SlowdownFor(0) != 0 {
		t.Error("nil plan must not slow ranks")
	}
	if _, ok := in.StallFor(0); ok {
		t.Error("nil plan must not stall ranks")
	}
	buf := []float64{1, 2, 3}
	if in.CorruptShared(0, 0, "b", buf) {
		t.Error("nil plan must not corrupt")
	}
	if !reflect.DeepEqual(buf, []float64{1, 2, 3}) {
		t.Error("buffer mutated by no-op injector")
	}
}

func TestCorruptSharedCountsPerRankWrites(t *testing.T) {
	in := NewInjector(&Plan{Corruptions: []Corruption{
		{Rank: 1, SharedWrite: 2, Elem: 0, Bit: 0},
	}})
	in.BeginRun(4)
	buf := []float64{2}
	// Rank 0's writes must not consume rank 1's counter.
	for i := 0; i < 5; i++ {
		if in.CorruptShared(0, 0, "b", buf) {
			t.Fatal("rank 0 write corrupted")
		}
	}
	if in.CorruptShared(1, 1.0, "b", buf) { // write #0
		t.Fatal("write 0 corrupted, want write 2")
	}
	if in.CorruptShared(1, 1.1, "b", buf) { // write #1
		t.Fatal("write 1 corrupted, want write 2")
	}
	if !in.CorruptShared(1, 1.2, "b", buf) { // write #2
		t.Fatal("write 2 not corrupted")
	}
	// Bit 0 of 2.0 flips the mantissa LSB: value changes but stays finite.
	if buf[0] == 2 || math.IsNaN(buf[0]) {
		t.Errorf("flip produced %v", buf[0])
	}
	if in.CorruptShared(1, 1.3, "b", buf) { // write #3: one-shot
		t.Fatal("corruption fired twice")
	}
	evs := in.Events()
	if len(evs) != 1 || evs[0].Kind != "bitflip" || evs[0].Clock != 1.2 {
		t.Errorf("events = %v, want one bitflip at t=1.2", evs)
	}
}

func TestCorruptSharedElemClamped(t *testing.T) {
	in := NewInjector(&Plan{Corruptions: []Corruption{
		{Rank: 0, SharedWrite: 0, Elem: 1000, Bit: 63},
	}})
	in.BeginRun(1)
	buf := []float64{1, 2, 3} // elem 1000 % 3 = 1
	if !in.CorruptShared(0, 0, "b", buf) {
		t.Fatal("flip did not land")
	}
	if buf[0] != 1 || buf[2] != 3 {
		t.Error("flip hit the wrong element")
	}
	if buf[1] != -2 { // bit 63 is the sign bit
		t.Errorf("sign flip gave %v, want -2", buf[1])
	}
}

func TestBeginRunResetsState(t *testing.T) {
	in := NewInjector(&Plan{Corruptions: []Corruption{
		{Rank: 0, SharedWrite: 0, Elem: 0, Bit: 0},
	}})
	buf := []float64{1}
	in.BeginRun(2)
	if !in.CorruptShared(0, 0, "b", buf) {
		t.Fatal("first run: flip missing")
	}
	in.BeginRun(2)
	if len(in.Events()) != 0 {
		t.Error("BeginRun kept stale events")
	}
	if !in.CorruptShared(0, 0, "b", buf) {
		t.Fatal("second run: write counter not reset")
	}
}

func TestGenPlanDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := GenPlan(seed, 8, 1e-3)
		b := GenPlan(seed, 8, 1e-3)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plans differ:\n%v\n%v", seed, a, b)
		}
		if err := a.Validate(8); err != nil {
			t.Fatalf("seed %d: generated invalid plan: %v", seed, err)
		}
		if a.Empty() {
			t.Fatalf("seed %d: generated empty plan", seed)
		}
	}
}

func TestGenPlanCoversAllKinds(t *testing.T) {
	var sawStraggler, sawStall, sawCrash, sawFlip bool
	for seed := uint64(0); seed < 200; seed++ {
		pl := GenPlan(seed, 8, 1e-3)
		if len(pl.Stragglers) > 0 {
			sawStraggler = true
		}
		for _, s := range pl.Stalls {
			if s.Crash {
				sawCrash = true
			} else {
				sawStall = true
			}
		}
		if len(pl.Corruptions) > 0 {
			sawFlip = true
		}
	}
	if !sawStraggler || !sawStall || !sawCrash || !sawFlip {
		t.Errorf("200 seeds missed a fault kind: straggler=%v stall=%v crash=%v flip=%v",
			sawStraggler, sawStall, sawCrash, sawFlip)
	}
}

func TestPlanClass(t *testing.T) {
	cases := []struct {
		plan *Plan
		want string
	}{
		{nil, "healthy"},
		{&Plan{}, "healthy"},
		{&Plan{Stragglers: []Straggler{{Rank: 0, Factor: 2}}}, "straggler"},
		{&Plan{Stalls: []Stall{{Rank: 0}}}, "stall"},
		{&Plan{Stalls: []Stall{{Rank: 0, Crash: true}}}, "crash"},
		{&Plan{Corruptions: []Corruption{{Rank: 0}}}, "bitflip"},
		{&Plan{Stragglers: []Straggler{{Rank: 0, Factor: 2}},
			Corruptions: []Corruption{{Rank: 1}}}, "mixed"},
		{&Plan{Stalls: []Stall{{Rank: 0}, {Rank: 1, Crash: true}}}, "mixed"},
	}
	for _, c := range cases {
		if got := c.plan.Class(); got != c.want {
			t.Errorf("Class(%v) = %q, want %q", c.plan, got, c.want)
		}
	}
}

func TestPlanVictims(t *testing.T) {
	pl := &Plan{
		Stragglers:  []Straggler{{Rank: 5, Factor: 2}},
		Stalls:      []Stall{{Rank: 1}},
		Corruptions: []Corruption{{Rank: 5}, {Rank: 3}},
	}
	if got := pl.Victims(); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Errorf("Victims() = %v, want [1 3 5]", got)
	}
	if (&Plan{}).Victims() != nil {
		t.Error("empty plan has victims")
	}
}

func TestPlanRestrict(t *testing.T) {
	pl := &Plan{
		Name:        "r",
		Stragglers:  []Straggler{{Rank: 0, Factor: 2}, {Rank: 3, Factor: 4}},
		Stalls:      []Stall{{Rank: 2, At: 0.5}},
		Corruptions: []Corruption{{Rank: 1, Bit: 5}},
	}
	// Rank 2 excluded: survivors 0,1,3 become new ranks 0,1,2.
	got := pl.Restrict([]int{0, 1, 3})
	want := &Plan{
		Name:        "r",
		Stragglers:  []Straggler{{Rank: 0, Factor: 2}, {Rank: 2, Factor: 4}},
		Corruptions: []Corruption{{Rank: 1, Bit: 5}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Restrict = %v, want %v", got, want)
	}
	if err := got.Validate(3); err != nil {
		t.Errorf("restricted plan invalid: %v", err)
	}
	if (&Plan{}).Restrict([]int{0}) != nil {
		t.Error("restricting an empty plan should give nil")
	}
}

func TestPlanWithoutFiredCorruptions(t *testing.T) {
	pl := &Plan{
		Name:        "t",
		Stragglers:  []Straggler{{Rank: 0, Factor: 2}},
		Corruptions: []Corruption{{Rank: 1, Bit: 5}, {Rank: 2, Bit: 6}},
	}
	got := pl.WithoutFiredCorruptions([]Event{
		{Kind: "bitflip", Rank: 1},
		{Kind: "straggler", Rank: 2}, // non-flip events must not drop rank 2's flip
	})
	if len(got.Corruptions) != 1 || got.Corruptions[0].Rank != 2 {
		t.Errorf("corruptions after drop = %v, want only rank 2", got.Corruptions)
	}
	if len(got.Stragglers) != 1 {
		t.Error("stragglers must survive the drop")
	}
	// No fired flips: plan returned unchanged (same pointer is fine).
	if pl.WithoutFiredCorruptions(nil) != pl {
		t.Error("no-op drop should return the plan unchanged")
	}
}

func TestPlanWithoutStraggler(t *testing.T) {
	pl := &Plan{
		Stragglers: []Straggler{{Rank: 1, Factor: 2}, {Rank: 4, Factor: 8}},
		Stalls:     []Stall{{Rank: 0, At: 1}},
	}
	got := pl.WithoutStraggler(1)
	if len(got.Stragglers) != 1 || got.Stragglers[0].Rank != 4 {
		t.Errorf("stragglers = %v, want only rank 4", got.Stragglers)
	}
	if len(got.Stalls) != 1 {
		t.Error("stalls must survive")
	}
}

func TestLogStragglerMatchesSlowdownForFormat(t *testing.T) {
	pl := &Plan{Stragglers: []Straggler{{Rank: 2, Factor: 4}}}
	a := NewInjector(pl)
	a.BeginRun(8)
	a.SlowdownFor(2)
	b := NewInjector(pl)
	b.BeginRun(8)
	b.LogStraggler(2, 4)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Errorf("LogStraggler event %v differs from SlowdownFor event %v",
			b.Events(), a.Events())
	}
}

func TestPlanString(t *testing.T) {
	pl := &Plan{
		Name:        "demo",
		Stragglers:  []Straggler{{Rank: 1, Factor: 4}},
		Stalls:      []Stall{{Rank: 2, At: 0.5, Crash: true}},
		Corruptions: []Corruption{{Rank: 3, SharedWrite: 1, Elem: 7, Bit: 52}},
	}
	s := pl.String()
	for _, want := range []string{"demo", "straggler(rank1 x4)", "crash(rank2 at t=0.5)", "bitflip(rank3 write#1 elem7 bit52)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
