// Package fault is a deterministic, seed-driven fault-plan engine for the
// simulated collectives. A Plan is a replayable description of what goes
// wrong during one machine run: which ranks run slow (stragglers), which
// rank stalls or crashes at a chosen virtual time, and which shared-memory
// write gets a bit flipped. Plans are plain data — no wall-clock randomness
// is involved anywhere, so a run under a given plan is bit-identical every
// time, and the golden determinism suite is untouched when no plan is set.
//
// The package deliberately knows nothing about MPI or collectives: the mpi
// machine consumes a Plan through an Injector, translating stragglers into
// sim.Proc slowdown factors, stalls into sim virtual-time stall events, and
// corruptions into bit flips applied on a victim rank's Nth shared-memory
// write. Everything the injector actually did during a run is recorded in
// an event log for diagnosis.
package fault

import (
	"fmt"
	"math"
	"sort"
)

// Straggler slows one rank down: every virtual-time charge on the rank's
// proc is multiplied by Factor (> 1 means slower; the paper's skewed-arrival
// scenario).
type Straggler struct {
	Rank   int
	Factor float64
}

// Stall freezes one rank at virtual time At. With Crash false the rank
// blocks forever (the run ends in a diagnosed deadlock naming the rank);
// with Crash true the rank panics with an attributed injected-crash error.
type Stall struct {
	Rank  int
	At    float64
	Crash bool
}

// Corruption flips bit Bit of float64 element Elem during the victim rank's
// SharedWrite'th write into shared memory (0-based, counted per run). The
// flip lands after the rank computes its store values and before any peer
// can read them, modelling silent datapath corruption in a shared buffer.
type Corruption struct {
	Rank        int
	SharedWrite uint64
	Elem        int
	Bit         uint // 0..63; bit of the IEEE-754 representation
}

// Plan is a complete, replayable fault scenario for one run.
type Plan struct {
	Name        string
	Seed        uint64 // seed the plan was generated from, 0 if hand-written
	Stragglers  []Straggler
	Stalls      []Stall
	Corruptions []Corruption
}

// Empty reports whether the plan injects nothing.
func (pl *Plan) Empty() bool {
	return pl == nil || (len(pl.Stragglers) == 0 && len(pl.Stalls) == 0 && len(pl.Corruptions) == 0)
}

// String renders a compact human-readable summary of the plan.
func (pl *Plan) String() string {
	if pl.Empty() {
		return "fault: empty plan"
	}
	s := fmt.Sprintf("fault plan %q:", pl.Name)
	for _, st := range pl.Stragglers {
		s += fmt.Sprintf(" straggler(rank%d x%g)", st.Rank, st.Factor)
	}
	for _, st := range pl.Stalls {
		kind := "stall"
		if st.Crash {
			kind = "crash"
		}
		s += fmt.Sprintf(" %s(rank%d at t=%g)", kind, st.Rank, st.At)
	}
	for _, c := range pl.Corruptions {
		s += fmt.Sprintf(" bitflip(rank%d write#%d elem%d bit%d)", c.Rank, c.SharedWrite, c.Elem, c.Bit)
	}
	return s
}

// Validate checks the plan against a world of the given size, rejecting
// out-of-range ranks and non-finite or non-positive parameters before they
// can produce a confusing run.
func (pl *Plan) Validate(ranks int) error {
	if pl == nil {
		return nil
	}
	for _, s := range pl.Stragglers {
		if s.Rank < 0 || s.Rank >= ranks {
			return fmt.Errorf("%w: straggler rank %d outside world of %d", ErrPlanRange, s.Rank, ranks)
		}
		if !(s.Factor > 0) || math.IsInf(s.Factor, 0) {
			return fmt.Errorf("fault: straggler rank %d has invalid factor %v", s.Rank, s.Factor)
		}
	}
	for _, s := range pl.Stalls {
		if s.Rank < 0 || s.Rank >= ranks {
			return fmt.Errorf("%w: stall rank %d outside world of %d", ErrPlanRange, s.Rank, ranks)
		}
		if s.At < 0 || math.IsNaN(s.At) {
			return fmt.Errorf("fault: stall rank %d at invalid time %v", s.Rank, s.At)
		}
	}
	for _, c := range pl.Corruptions {
		if c.Rank < 0 || c.Rank >= ranks {
			return fmt.Errorf("%w: corruption rank %d outside world of %d", ErrPlanRange, c.Rank, ranks)
		}
		if c.Elem < 0 {
			return fmt.Errorf("fault: corruption rank %d has negative element %d", c.Rank, c.Elem)
		}
		if c.Bit > 63 {
			return fmt.Errorf("fault: corruption rank %d flips bit %d (want 0..63)", c.Rank, c.Bit)
		}
	}
	return nil
}

// Class buckets a plan by the fault kinds it contains: "healthy" for an
// empty plan, one of "straggler", "stall", "crash", "bitflip" when a single
// kind is present, and "mixed" otherwise. The recovery gate is keyed per
// class: transient classes (bitflip) and slow-core classes (straggler) must
// always be recoverable, while mixed seeded plans are only required to end
// diagnosed.
func (pl *Plan) Class() string {
	if pl.Empty() {
		return "healthy"
	}
	kinds := make(map[string]bool, 3)
	if len(pl.Stragglers) > 0 {
		kinds["straggler"] = true
	}
	for _, s := range pl.Stalls {
		if s.Crash {
			kinds["crash"] = true
		} else {
			kinds["stall"] = true
		}
	}
	if len(pl.Corruptions) > 0 {
		kinds["bitflip"] = true
	}
	if len(kinds) != 1 {
		return "mixed"
	}
	for k := range kinds {
		return k
	}
	return "mixed"
}

// Victims returns the sorted, deduplicated set of ranks the plan targets.
func (pl *Plan) Victims() []int {
	if pl.Empty() {
		return nil
	}
	seen := map[int]bool{}
	for _, s := range pl.Stragglers {
		seen[s.Rank] = true
	}
	for _, s := range pl.Stalls {
		seen[s.Rank] = true
	}
	for _, c := range pl.Corruptions {
		seen[c.Rank] = true
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Restrict maps the plan onto a shrunken world: survivors lists the old rank
// ids that remain, in their new order, so a fault on survivors[i] is
// renumbered to rank i and faults on excluded ranks are dropped. This is how
// a supervisor re-arms a plan after a ULFM-style communicator shrink — the
// surviving faults keep firing, the dead rank's faults die with it.
func (pl *Plan) Restrict(survivors []int) *Plan {
	if pl.Empty() {
		return nil
	}
	newRank := make(map[int]int, len(survivors))
	for i, r := range survivors {
		newRank[r] = i
	}
	out := &Plan{Name: pl.Name, Seed: pl.Seed}
	for _, s := range pl.Stragglers {
		if nr, ok := newRank[s.Rank]; ok {
			s.Rank = nr
			out.Stragglers = append(out.Stragglers, s)
		}
	}
	for _, s := range pl.Stalls {
		if nr, ok := newRank[s.Rank]; ok {
			s.Rank = nr
			out.Stalls = append(out.Stalls, s)
		}
	}
	for _, c := range pl.Corruptions {
		if nr, ok := newRank[c.Rank]; ok {
			c.Rank = nr
			out.Corruptions = append(out.Corruptions, c)
		}
	}
	return out
}

// WithoutFiredCorruptions returns a copy of the plan with the corruption
// dropped for every rank an event log shows already received its bit flip.
// This is the transient-fault semantics supervised retry relies on: a
// transient flip that landed once does not land again on the retry, so the
// retried run can complete with a verified-correct result.
func (pl *Plan) WithoutFiredCorruptions(events []Event) *Plan {
	if pl.Empty() {
		return pl
	}
	fired := map[int]bool{}
	for _, ev := range events {
		if ev.Kind == "bitflip" {
			fired[ev.Rank] = true
		}
	}
	if len(fired) == 0 {
		return pl
	}
	out := &Plan{Name: pl.Name, Seed: pl.Seed,
		Stragglers: pl.Stragglers, Stalls: pl.Stalls}
	for _, c := range pl.Corruptions {
		if !fired[c.Rank] {
			out.Corruptions = append(out.Corruptions, c)
		}
	}
	return out
}

// WithoutStraggler returns a copy of the plan with the given rank's
// straggler dropped — used after a quarantine remaps the rank off its slow
// core, so a later re-arming of the plan does not chase the rank onto its
// healthy spare.
func (pl *Plan) WithoutStraggler(rank int) *Plan {
	if pl.Empty() {
		return pl
	}
	out := &Plan{Name: pl.Name, Seed: pl.Seed,
		Stalls: pl.Stalls, Corruptions: pl.Corruptions}
	for _, s := range pl.Stragglers {
		if s.Rank != rank {
			out.Stragglers = append(out.Stragglers, s)
		}
	}
	return out
}

// Event records one fault the injector actually fired during a run, for
// post-mortem diagnosis ("was the wrong answer the injected flip, or a real
// bug?").
type Event struct {
	Kind   string  // "straggler", "stall", "crash", "bitflip"
	Rank   int
	Clock  float64 // virtual time the fault fired (stragglers: 0, armed at spawn)
	Detail string
}

func (ev Event) String() string {
	return fmt.Sprintf("%s rank%d at t=%g: %s", ev.Kind, ev.Rank, ev.Clock, ev.Detail)
}

// Injector applies one Plan to one machine run. It keeps the per-run mutable
// state — shared-write counters per rank and the fired-event log — so a
// single Plan can drive many runs by calling BeginRun before each.
//
// The simulator is single-threaded by construction (procs are coroutines),
// so the injector needs no locking.
type Injector struct {
	plan        *Plan
	writeCounts []uint64
	events      []Event
}

// NewInjector builds an injector for the plan (which may be nil or empty:
// every hook then becomes a no-op answer).
func NewInjector(plan *Plan) *Injector {
	return &Injector{plan: plan}
}

// Plan returns the plan the injector applies.
func (in *Injector) Plan() *Plan { return in.plan }

// BeginRun resets the per-run state for a world of the given size.
func (in *Injector) BeginRun(ranks int) {
	if cap(in.writeCounts) < ranks {
		in.writeCounts = make([]uint64, ranks)
	} else {
		in.writeCounts = in.writeCounts[:ranks]
		for i := range in.writeCounts {
			in.writeCounts[i] = 0
		}
	}
	in.events = in.events[:0]
}

// SlowdownFor returns the straggler factor for rank, or 0 if the rank runs
// at full speed. Firing is logged once per run.
func (in *Injector) SlowdownFor(rank int) float64 {
	if in.plan == nil {
		return 0
	}
	for _, s := range in.plan.Stragglers {
		if s.Rank == rank {
			in.log(Event{Kind: "straggler", Rank: rank,
				Detail: fmt.Sprintf("virtual time stretched x%g", s.Factor)})
			return s.Factor
		}
	}
	return 0
}

// LogStraggler records that a straggler slowdown was armed on the given
// rank. The machine layer arms slowdowns by physical core (so quarantining
// a rank onto a spare core escapes them) and reports the firing here; the
// event format matches what SlowdownFor logs.
func (in *Injector) LogStraggler(rank int, factor float64) {
	in.log(Event{Kind: "straggler", Rank: rank,
		Detail: fmt.Sprintf("virtual time stretched x%g", factor)})
}

// StallFor returns the stall scheduled for rank, if any.
func (in *Injector) StallFor(rank int) (Stall, bool) {
	if in.plan == nil {
		return Stall{}, false
	}
	for _, s := range in.plan.Stalls {
		if s.Rank == rank {
			kind := "stall"
			if s.Crash {
				kind = "crash"
			}
			in.log(Event{Kind: kind, Rank: rank, Clock: s.At,
				Detail: fmt.Sprintf("armed for t=%g", s.At)})
			return s, true
		}
	}
	return Stall{}, false
}

// CorruptShared is called by the mpi layer after rank writes n elements of
// data into a shared-memory buffer at virtual time now. It advances the
// rank's write counter and, if a corruption in the plan matches this write,
// flips the planned bit of the planned element (clamped into the write's
// length) in place. Returns true if a flip landed.
func (in *Injector) CorruptShared(rank int, now float64, bufName string, data []float64) bool {
	if in.plan == nil || len(in.plan.Corruptions) == 0 {
		return false
	}
	if rank >= len(in.writeCounts) {
		// BeginRun not called for a world this large; count nothing.
		return false
	}
	seq := in.writeCounts[rank]
	in.writeCounts[rank]++
	flipped := false
	for _, c := range in.plan.Corruptions {
		if c.Rank != rank || c.SharedWrite != seq || len(data) == 0 {
			continue
		}
		elem := c.Elem % len(data)
		bits := math.Float64bits(data[elem]) ^ (1 << c.Bit)
		data[elem] = math.Float64frombits(bits)
		in.log(Event{Kind: "bitflip", Rank: rank, Clock: now,
			Detail: fmt.Sprintf("buffer %q write#%d elem %d bit %d", bufName, seq, elem, c.Bit)})
		flipped = true
	}
	return flipped
}

// Events returns what actually fired this run, in firing order.
func (in *Injector) Events() []Event { return in.events }

func (in *Injector) log(ev Event) { in.events = append(in.events, ev) }

// splitmix64 is the standard 64-bit mixing PRNG step; small, seedable, and
// entirely deterministic — exactly what replayable plan generation needs.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4a6cabf4b9d89
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n).
func (s *splitmix64) intn(n int) int {
	return int(s.next() % uint64(n))
}

// GenPlan derives a replayable fault plan from a seed for a world of the
// given size. The same (seed, ranks, horizon) always yields the same plan.
// Roughly: each seed picks one or two fault kinds; stragglers get factors
// in [1.5, 8), stalls land uniformly inside the virtual-time horizon, and
// bit flips target an early shared write with a mantissa-or-exponent bit.
// Victim ranks are distinct across the kinds so diagnoses stay readable.
func GenPlan(seed uint64, ranks int, horizon float64) *Plan {
	if ranks <= 0 {
		return &Plan{Name: fmt.Sprintf("seed%d", seed), Seed: seed}
	}
	rng := splitmix64(seed)
	rng.next() // decorrelate consecutive seeds
	pl := &Plan{Name: fmt.Sprintf("seed%d", seed), Seed: seed}

	victims := rng.intn(ranks) // base offset; kinds pick distinct offsets from it
	victim := func(k int) int { return (victims + k) % ranks }

	kinds := 1 + rng.intn(2)
	for k := 0; k < kinds; k++ {
		switch rng.intn(3) {
		case 0:
			pl.Stragglers = append(pl.Stragglers, Straggler{
				Rank:   victim(k),
				Factor: 1.5 + 6.5*rng.float64(),
			})
		case 1:
			crash := rng.intn(4) == 0 // crashes rarer than stalls
			pl.Stalls = append(pl.Stalls, Stall{
				Rank:  victim(k),
				At:    rng.float64() * horizon,
				Crash: crash,
			})
		case 2:
			pl.Corruptions = append(pl.Corruptions, Corruption{
				Rank:        victim(k),
				SharedWrite: uint64(rng.intn(8)),
				Elem:        rng.intn(1 << 12),
				Bit:         uint(rng.intn(64)),
			})
		}
	}
	dedupe(pl)
	return pl
}

// dedupe keeps at most one fault of each kind per rank (later generations
// can collide when kinds pick the same victim) and orders faults by rank so
// plan rendering is stable.
func dedupe(pl *Plan) {
	seenS := map[int]bool{}
	str := pl.Stragglers[:0]
	for _, s := range pl.Stragglers {
		if !seenS[s.Rank] {
			seenS[s.Rank] = true
			str = append(str, s)
		}
	}
	pl.Stragglers = str
	seenT := map[int]bool{}
	st := pl.Stalls[:0]
	for _, s := range pl.Stalls {
		if !seenT[s.Rank] {
			seenT[s.Rank] = true
			st = append(st, s)
		}
	}
	pl.Stalls = st
	seenC := map[int]bool{}
	cor := pl.Corruptions[:0]
	for _, c := range pl.Corruptions {
		if !seenC[c.Rank] {
			seenC[c.Rank] = true
			cor = append(cor, c)
		}
	}
	pl.Corruptions = cor
	sort.Slice(pl.Stragglers, func(i, j int) bool { return pl.Stragglers[i].Rank < pl.Stragglers[j].Rank })
	sort.Slice(pl.Stalls, func(i, j int) bool { return pl.Stalls[i].Rank < pl.Stalls[j].Rank })
	sort.Slice(pl.Corruptions, func(i, j int) bool { return pl.Corruptions[i].Rank < pl.Corruptions[j].Rank })
}
