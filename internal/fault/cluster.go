// Cluster-level fault plans. Rank-level plans (fault.go) target individual
// procs on one machine; at 4k-262k ranks the unit of failure is the *node*:
// a whole node crashes, its NIC lane degrades, its clock runs slow, or one
// phase of the compiled schedule emits a corrupted payload. A ClusterPlan is
// the same kind of plain, replayable data as a Plan — no wall-clock
// randomness, Validate before arming, and an event log of what actually
// fired — but its faults are keyed by node id and integer event-engine
// ticks instead of rank id and float virtual time.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

var (
	// ErrPlanShape marks a plan applied to a world of a different shape than
	// the one it was generated for.
	ErrPlanShape = errors.New("fault: plan/shape mismatch")
	// ErrPlanRange marks a plan whose fault addresses a node, rank, tick or
	// phase outside the target world.
	ErrPlanRange = errors.New("fault: plan fault out of range")
)

// ClusterShape describes the world a cluster plan targets: Nodes homogeneous
// nodes of PerNode ranks each. Plans are validated against a shape before
// they are armed so a saved plan cannot silently target the wrong sweep.
type ClusterShape struct {
	Nodes   int
	PerNode int
}

// Ranks returns the world size the shape describes.
func (sh ClusterShape) Ranks() int { return sh.Nodes * sh.PerNode }

func (sh ClusterShape) String() string {
	return fmt.Sprintf("%dx%d", sh.Nodes, sh.PerNode)
}

// NodeCrash poisons every state machine on one node at a virtual tick: steps
// that would complete at or after AtTick never complete, the calendar drains,
// and the run ends with a diagnosis naming the dead node.
type NodeCrash struct {
	Node   int
	AtTick int64
}

// LinkDegrade multiplies the cost of every inter-node hop that touches the
// node's NIC lane (hops executed by the node's ranks, or whose producer sits
// on the node) by Factor > 1 — a congested or renegotiated-down link.
type LinkDegrade struct {
	Node   int
	Factor float64
}

// NodeStraggler dilates virtual time for everything scheduled on one node:
// every step duration charged to the node's ranks is multiplied by Factor
// > 1. This is the node-level analogue of a rank Straggler (a thermally
// throttled or OS-jittered node).
type NodeStraggler struct {
	Node   int
	Factor float64
}

// PhaseCorrupt marks the payload a node contributes to one phase of the
// compiled schedule as transiently corrupted: the run completes but its
// result diverges at that node/phase. Phase indexes the canonical
// three-phase cluster composition: 0 = intra phase A (node-local reduce),
// 1 = inter phase (cross-node exchange), 2 = intra phase C (node-local
// bcast/gather). Like rank-level bit flips, the fault is transient — it is
// consumed by the run it fires in and a retry runs clean.
type PhaseCorrupt struct {
	Node  int
	Phase int
}

// ClusterPhases is the number of phases in the compiled cluster composition
// a PhaseCorrupt can target.
const ClusterPhases = 3

// NodeHeal returns a crashed node to service: once the supervised runs have
// accumulated AtTick of virtual time, the next recovery point rejoins the
// node to the membership (fresh cluster over the enlarged world, epoch bump)
// instead of leaving the cluster permanently shrunk. Heals are consumed by
// the supervisor between runs, never by the run itself — a heal alone
// injects nothing.
type NodeHeal struct {
	Node   int
	AtTick int64
}

// LinkHeal restores a degraded NIC lane: once the supervised runs have
// accumulated AtTick of virtual time, the lane's LinkDegrade stops applying
// and a reroute taken to dodge it is undone (the original algorithm is
// recompiled). Like NodeHeal, it is a supervisor-level event.
type LinkHeal struct {
	Node   int
	AtTick int64
}

// ClusterPhaseName names a PhaseCorrupt phase index for diagnostics.
func ClusterPhaseName(phase int) string {
	switch phase {
	case 0:
		return "intra-reduce"
	case 1:
		return "inter"
	case 2:
		return "intra-gather"
	}
	return fmt.Sprintf("phase%d", phase)
}

// ClusterPlan is a complete, replayable node-level fault scenario for one
// compiled-schedule run on the event engine.
type ClusterPlan struct {
	Name         string
	Seed         uint64 // seed the plan was generated from, 0 if hand-written
	Shape        ClusterShape
	Crashes      []NodeCrash
	LinkDegrades []LinkDegrade
	Stragglers   []NodeStraggler
	Corruptions  []PhaseCorrupt

	// Heals and LinkHeals are supervisor-level recovery events (see NodeHeal
	// and LinkHeal); they inject nothing into a run. Tagged omitempty so
	// heal-free plans keep the exact on-disk canonical body (and checksum)
	// they had before heals existed.
	Heals     []NodeHeal `json:"Heals,omitempty"`
	LinkHeals []LinkHeal `json:"LinkHeals,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (pl *ClusterPlan) Empty() bool {
	return pl == nil || (len(pl.Crashes) == 0 && len(pl.LinkDegrades) == 0 &&
		len(pl.Stragglers) == 0 && len(pl.Corruptions) == 0)
}

// String renders a compact human-readable summary of the plan.
func (pl *ClusterPlan) String() string {
	if pl.Empty() {
		return "fault: empty cluster plan"
	}
	s := fmt.Sprintf("cluster fault plan %q (%s):", pl.Name, pl.Shape)
	for _, c := range pl.Crashes {
		s += fmt.Sprintf(" node-crash(node%d at tick %d)", c.Node, c.AtTick)
	}
	for _, d := range pl.LinkDegrades {
		s += fmt.Sprintf(" link-degrade(node%d x%g)", d.Node, d.Factor)
	}
	for _, st := range pl.Stragglers {
		s += fmt.Sprintf(" node-straggler(node%d x%g)", st.Node, st.Factor)
	}
	for _, c := range pl.Corruptions {
		s += fmt.Sprintf(" phase-corrupt(node%d %s)", c.Node, ClusterPhaseName(c.Phase))
	}
	for _, h := range pl.Heals {
		s += fmt.Sprintf(" node-heal(node%d at tick %d)", h.Node, h.AtTick)
	}
	for _, h := range pl.LinkHeals {
		s += fmt.Sprintf(" link-heal(node%d at tick %d)", h.Node, h.AtTick)
	}
	return s
}

// Validate checks the plan against a cluster shape, rejecting out-of-range
// nodes, invalid factors, and shape mismatches before they can confuse a run.
func (pl *ClusterPlan) Validate(shape ClusterShape) error {
	if pl == nil {
		return nil
	}
	if pl.Shape != (ClusterShape{}) && pl.Shape != shape {
		return fmt.Errorf("%w: cluster plan targets shape %s, world is %s", ErrPlanShape, pl.Shape, shape)
	}
	nodes := shape.Nodes
	for _, c := range pl.Crashes {
		if c.Node < 0 || c.Node >= nodes {
			return fmt.Errorf("%w: node-crash node %d outside cluster of %d nodes", ErrPlanRange, c.Node, nodes)
		}
		if c.AtTick < 0 {
			return fmt.Errorf("%w: node-crash node %d at negative tick %d", ErrPlanRange, c.Node, c.AtTick)
		}
	}
	for _, d := range pl.LinkDegrades {
		if d.Node < 0 || d.Node >= nodes {
			return fmt.Errorf("%w: link-degrade node %d outside cluster of %d nodes", ErrPlanRange, d.Node, nodes)
		}
		if !(d.Factor >= 1) || math.IsInf(d.Factor, 0) {
			return fmt.Errorf("fault: link-degrade node %d has invalid factor %v (want >= 1)", d.Node, d.Factor)
		}
	}
	for _, st := range pl.Stragglers {
		if st.Node < 0 || st.Node >= nodes {
			return fmt.Errorf("%w: node-straggler node %d outside cluster of %d nodes", ErrPlanRange, st.Node, nodes)
		}
		if !(st.Factor >= 1) || math.IsInf(st.Factor, 0) {
			return fmt.Errorf("fault: node-straggler node %d has invalid factor %v (want >= 1)", st.Node, st.Factor)
		}
	}
	for _, c := range pl.Corruptions {
		if c.Node < 0 || c.Node >= nodes {
			return fmt.Errorf("%w: phase-corrupt node %d outside cluster of %d nodes", ErrPlanRange, c.Node, nodes)
		}
		if c.Phase < 0 || c.Phase >= ClusterPhases {
			return fmt.Errorf("%w: phase-corrupt node %d targets phase %d (want 0..%d)", ErrPlanRange, c.Node, c.Phase, ClusterPhases-1)
		}
	}
	for _, h := range pl.Heals {
		if h.Node < 0 || h.Node >= nodes {
			return fmt.Errorf("%w: node-heal node %d outside cluster of %d nodes", ErrPlanRange, h.Node, nodes)
		}
		if h.AtTick < 0 {
			return fmt.Errorf("%w: node-heal node %d at negative tick %d", ErrPlanRange, h.Node, h.AtTick)
		}
	}
	for _, h := range pl.LinkHeals {
		if h.Node < 0 || h.Node >= nodes {
			return fmt.Errorf("%w: link-heal node %d outside cluster of %d nodes", ErrPlanRange, h.Node, nodes)
		}
		if h.AtTick < 0 {
			return fmt.Errorf("%w: link-heal node %d at negative tick %d", ErrPlanRange, h.Node, h.AtTick)
		}
	}
	return nil
}

// Class buckets a plan by the fault kinds it contains: "healthy" for an
// empty plan, one of "node-crash", "link-degrade", "node-straggler",
// "phase-corrupt" when a single kind is present, and "mixed" otherwise. The
// cluster recovery gate is keyed per class: node-crash and link-degrade must
// always be recoverable (recompile / reroute), phase-corrupt by bounded
// retry, while mixed seeded plans are only required to end diagnosed.
func (pl *ClusterPlan) Class() string {
	if pl.Empty() {
		return "healthy"
	}
	kinds := 0
	name := ""
	if len(pl.Crashes) > 0 {
		kinds, name = kinds+1, "node-crash"
	}
	if len(pl.LinkDegrades) > 0 {
		kinds, name = kinds+1, "link-degrade"
	}
	if len(pl.Stragglers) > 0 {
		kinds, name = kinds+1, "node-straggler"
	}
	if len(pl.Corruptions) > 0 {
		kinds, name = kinds+1, "phase-corrupt"
	}
	if kinds != 1 {
		return "mixed"
	}
	return name
}

// VictimNodes returns the sorted, deduplicated set of nodes the plan targets.
func (pl *ClusterPlan) VictimNodes() []int {
	if pl.Empty() {
		return nil
	}
	seen := map[int]bool{}
	for _, c := range pl.Crashes {
		seen[c.Node] = true
	}
	for _, d := range pl.LinkDegrades {
		seen[d.Node] = true
	}
	for _, st := range pl.Stragglers {
		seen[st.Node] = true
	}
	for _, c := range pl.Corruptions {
		seen[c.Node] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// RestrictNodes maps the plan onto a recompiled cluster: survivors lists the
// old node ids that remain, in their new order, so a fault on survivors[i]
// is renumbered to node i and faults on excluded nodes are dropped. This is
// the node-level analogue of Plan.Restrict — after the supervisor recompiles
// the schedule around a dead node, the surviving nodes' faults keep firing
// under their new ids and the dead node's faults die with it.
func (pl *ClusterPlan) RestrictNodes(survivors []int) *ClusterPlan {
	if pl.Empty() {
		return nil
	}
	newNode := make(map[int]int, len(survivors))
	for i, n := range survivors {
		newNode[n] = i
	}
	out := &ClusterPlan{Name: pl.Name, Seed: pl.Seed}
	if pl.Shape != (ClusterShape{}) {
		out.Shape = ClusterShape{Nodes: len(survivors), PerNode: pl.Shape.PerNode}
	}
	for _, c := range pl.Crashes {
		if nn, ok := newNode[c.Node]; ok {
			c.Node = nn
			out.Crashes = append(out.Crashes, c)
		}
	}
	for _, d := range pl.LinkDegrades {
		if nn, ok := newNode[d.Node]; ok {
			d.Node = nn
			out.LinkDegrades = append(out.LinkDegrades, d)
		}
	}
	for _, st := range pl.Stragglers {
		if nn, ok := newNode[st.Node]; ok {
			st.Node = nn
			out.Stragglers = append(out.Stragglers, st)
		}
	}
	for _, c := range pl.Corruptions {
		if nn, ok := newNode[c.Node]; ok {
			c.Node = nn
			out.Corruptions = append(out.Corruptions, c)
		}
	}
	// Heals follow the same renumber-or-drop rule. Note that the supervisor
	// deliberately keys heals by ORIGINAL node id against the base plan (a
	// heal's whole point is to target a node that has left the membership),
	// so it never reads them through a restricted copy.
	for _, h := range pl.Heals {
		if nn, ok := newNode[h.Node]; ok {
			h.Node = nn
			out.Heals = append(out.Heals, h)
		}
	}
	for _, h := range pl.LinkHeals {
		if nn, ok := newNode[h.Node]; ok {
			h.Node = nn
			out.LinkHeals = append(out.LinkHeals, h)
		}
	}
	return out
}

// WithoutFiredCorruptions returns a copy of the plan with the phase
// corruption dropped for every (node, phase) an event log shows already
// fired. Transient semantics: a corruption that landed once does not land
// again on the bounded retry, so the retried run completes clean.
func (pl *ClusterPlan) WithoutFiredCorruptions(events []ClusterEvent) *ClusterPlan {
	if pl.Empty() {
		return pl
	}
	fired := map[[2]int]bool{}
	for _, ev := range events {
		if ev.Kind == "phase-corrupt" {
			fired[[2]int{ev.Node, ev.Phase}] = true
		}
	}
	if len(fired) == 0 {
		return pl
	}
	out := &ClusterPlan{Name: pl.Name, Seed: pl.Seed, Shape: pl.Shape,
		Crashes: pl.Crashes, LinkDegrades: pl.LinkDegrades, Stragglers: pl.Stragglers,
		Heals: pl.Heals, LinkHeals: pl.LinkHeals}
	for _, c := range pl.Corruptions {
		if !fired[[2]int{c.Node, c.Phase}] {
			out.Corruptions = append(out.Corruptions, c)
		}
	}
	return out
}

// ClusterEvent records one cluster fault that actually fired (or was armed)
// during an event-engine run. Tick is the engine tick the event is pinned
// to: arming events carry tick 0, crashes the poison tick, corruptions the
// completion tick of the corrupted phase step.
type ClusterEvent struct {
	Kind   string // "node-crash", "link-degrade", "node-straggler", "phase-corrupt"
	Node   int
	Phase  int // phase-corrupt only; -1 otherwise
	Tick   int64
	Detail string
}

func (ev ClusterEvent) String() string {
	return fmt.Sprintf("%s node%d at tick %d: %s", ev.Kind, ev.Node, ev.Tick, ev.Detail)
}

// ClusterInjector applies one ClusterPlan to one event-engine run, keeping
// the fired-event log. Arming and firing are both fully deterministic, so
// two cold runs of the same plan produce byte-identical logs.
type ClusterInjector struct {
	plan   *ClusterPlan
	events []ClusterEvent
}

// NewClusterInjector builds an injector for the plan (which may be nil or
// empty: every hook then becomes a no-op).
func NewClusterInjector(plan *ClusterPlan) *ClusterInjector {
	return &ClusterInjector{plan: plan}
}

// Plan returns the plan the injector applies.
func (in *ClusterInjector) Plan() *ClusterPlan { return in.plan }

// BeginRun resets the per-run event log.
func (in *ClusterInjector) BeginRun() { in.events = in.events[:0] }

// LogArmed records that a persistent node fault (link-degrade or
// node-straggler) was armed on the run, mirroring how rank-level straggler
// arming is logged at spawn.
func (in *ClusterInjector) LogArmed(kind string, node int, factor float64) {
	in.log(ClusterEvent{Kind: kind, Node: node, Phase: -1,
		Detail: fmt.Sprintf("armed x%g", factor)})
}

// LogCrash records that a node's state machines were poisoned at tick.
func (in *ClusterInjector) LogCrash(node int, tick int64, ranksDead int) {
	in.log(ClusterEvent{Kind: "node-crash", Node: node, Phase: -1, Tick: tick,
		Detail: fmt.Sprintf("poisoned %d ranks", ranksDead)})
}

// LogCorrupt records that a node's phase payload was corrupted at the tick
// the phase step completed.
func (in *ClusterInjector) LogCorrupt(node, phase int, tick int64) {
	in.log(ClusterEvent{Kind: "phase-corrupt", Node: node, Phase: phase, Tick: tick,
		Detail: fmt.Sprintf("payload diverges in %s phase", ClusterPhaseName(phase))})
}

// Events returns what actually fired this run, in firing order.
func (in *ClusterInjector) Events() []ClusterEvent { return in.events }

func (in *ClusterInjector) log(ev ClusterEvent) { in.events = append(in.events, ev) }

// GenClusterPlan derives a replayable cluster fault plan from a seed for the
// given shape. The same (seed, shape, horizonTicks) always yields the same
// plan. Each seed picks one or two fault kinds with distinct victim nodes:
// crashes land uniformly inside the tick horizon, link degrades get factors
// in [2, 16), node stragglers in [1.5, 8), and phase corruptions pick a
// uniform phase of the three-phase composition.
func GenClusterPlan(seed uint64, shape ClusterShape, horizonTicks int64) *ClusterPlan {
	pl := &ClusterPlan{Name: fmt.Sprintf("cseed%d", seed), Seed: seed, Shape: shape}
	if shape.Nodes <= 0 {
		return pl
	}
	rng := splitmix64(seed)
	rng.next() // decorrelate consecutive seeds

	base := rng.intn(shape.Nodes) // base offset; kinds pick distinct offsets
	victim := func(k int) int { return (base + k) % shape.Nodes }

	kinds := 1 + rng.intn(2)
	for k := 0; k < kinds; k++ {
		switch rng.intn(4) {
		case 0:
			at := int64(0)
			if horizonTicks > 0 {
				at = int64(rng.float64() * float64(horizonTicks))
			}
			pl.Crashes = append(pl.Crashes, NodeCrash{Node: victim(k), AtTick: at})
		case 1:
			pl.LinkDegrades = append(pl.LinkDegrades, LinkDegrade{
				Node:   victim(k),
				Factor: 2 + 14*rng.float64(),
			})
		case 2:
			pl.Stragglers = append(pl.Stragglers, NodeStraggler{
				Node:   victim(k),
				Factor: 1.5 + 6.5*rng.float64(),
			})
		case 3:
			pl.Corruptions = append(pl.Corruptions, PhaseCorrupt{
				Node:  victim(k),
				Phase: rng.intn(ClusterPhases),
			})
		}
	}
	dedupeCluster(pl)
	return pl
}

// GenChurnPlan derives a replayable crash→heal churn scenario from a seed:
// one node crashes inside the first half of the tick horizon and is healed
// immediately (heal tick 0, so the first recovery point after the recompiled
// run rejoins it). The same (seed, shape, horizonTicks) always yields the
// same plan. Kept separate from GenClusterPlan so the existing seeded-plan
// corpus stays byte-reproducible.
func GenChurnPlan(seed uint64, shape ClusterShape, horizonTicks int64) *ClusterPlan {
	pl := &ClusterPlan{Name: fmt.Sprintf("churn%d", seed), Seed: seed, Shape: shape}
	if shape.Nodes <= 0 {
		return pl
	}
	rng := splitmix64(seed)
	rng.next() // decorrelate consecutive seeds, as GenClusterPlan does
	victim := rng.intn(shape.Nodes)
	at := int64(0)
	if horizonTicks > 0 {
		at = int64(rng.float64() * float64(horizonTicks) / 2)
	}
	pl.Crashes = append(pl.Crashes, NodeCrash{Node: victim, AtTick: at})
	pl.Heals = append(pl.Heals, NodeHeal{Node: victim, AtTick: 0})
	return pl
}

// dedupeCluster keeps at most one fault of each kind per node and orders
// faults by node so plan rendering is stable.
func dedupeCluster(pl *ClusterPlan) {
	seenC := map[int]bool{}
	cr := pl.Crashes[:0]
	for _, c := range pl.Crashes {
		if !seenC[c.Node] {
			seenC[c.Node] = true
			cr = append(cr, c)
		}
	}
	pl.Crashes = cr
	seenD := map[int]bool{}
	dg := pl.LinkDegrades[:0]
	for _, d := range pl.LinkDegrades {
		if !seenD[d.Node] {
			seenD[d.Node] = true
			dg = append(dg, d)
		}
	}
	pl.LinkDegrades = dg
	seenS := map[int]bool{}
	st := pl.Stragglers[:0]
	for _, s := range pl.Stragglers {
		if !seenS[s.Node] {
			seenS[s.Node] = true
			st = append(st, s)
		}
	}
	pl.Stragglers = st
	seenP := map[int]bool{}
	co := pl.Corruptions[:0]
	for _, c := range pl.Corruptions {
		if !seenP[c.Node] {
			seenP[c.Node] = true
			co = append(co, c)
		}
	}
	pl.Corruptions = co
	sort.Slice(pl.Crashes, func(i, j int) bool { return pl.Crashes[i].Node < pl.Crashes[j].Node })
	sort.Slice(pl.LinkDegrades, func(i, j int) bool { return pl.LinkDegrades[i].Node < pl.LinkDegrades[j].Node })
	sort.Slice(pl.Stragglers, func(i, j int) bool { return pl.Stragglers[i].Node < pl.Stragglers[j].Node })
	sort.Slice(pl.Corruptions, func(i, j int) bool { return pl.Corruptions[i].Node < pl.Corruptions[j].Node })
}
