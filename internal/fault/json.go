// Saved fault plans. Chaos failures used to be reproducible only by
// re-deriving the generating seed; a PlanFile pins the exact plan (rank- or
// cluster-level) plus the world it targets to disk so `yhcclbench
// -fault-plan <file>` can replay it verbatim. Files follow the same
// discipline as the tuned-plan caches under plans/: a format version gates
// loading and an FNV-64a checksum of the canonical body rejects corrupted
// or hand-edited files with a typed error instead of a confusing run.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
)

// PlanFormatVersion is the saved-plan file layout version. Bump on any
// incompatible change to PlanFile or the plan structs it embeds.
const PlanFormatVersion = 1

var (
	// ErrPlanVersion marks a saved-plan format version mismatch.
	ErrPlanVersion = errors.New("fault: plan file version mismatch")
	// ErrPlanChecksum marks a corrupted or hand-edited saved plan.
	ErrPlanChecksum = errors.New("fault: plan file checksum mismatch")
)

// PlanFile is the on-disk form of one saved fault plan. Exactly one of Rank
// and Cluster is set; Ranks (rank plans) or the cluster plan's Shape records
// the world the plan was generated for, so a replay can rebuild it.
type PlanFile struct {
	FormatVersion int `json:"format_version"`

	// Rank-level plan and the world size it targets.
	Ranks int   `json:"ranks,omitempty"`
	Rank  *Plan `json:"rank,omitempty"`

	// Cluster-level plan (carries its own ClusterShape).
	Cluster *ClusterPlan `json:"cluster,omitempty"`

	// Checksum is the FNV-64a of the canonical body (computed with this
	// field empty), hex-encoded.
	Checksum string `json:"checksum,omitempty"`
}

// checksum hashes the canonical JSON body with the Checksum field empty.
func (f *PlanFile) checksum() (string, error) {
	cp := *f
	cp.Checksum = ""
	body, err := json.Marshal(&cp)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// validate checks whichever plan the file carries against its recorded world.
func (f *PlanFile) validate() error {
	switch {
	case f.Rank != nil && f.Cluster != nil:
		return fmt.Errorf("fault: plan file sets both rank and cluster plans")
	case f.Rank != nil:
		if f.Ranks <= 0 {
			return fmt.Errorf("fault: rank plan file records world of %d ranks", f.Ranks)
		}
		return f.Rank.Validate(f.Ranks)
	case f.Cluster != nil:
		if f.Cluster.Shape.Nodes <= 0 || f.Cluster.Shape.PerNode <= 0 {
			return fmt.Errorf("fault: cluster plan file records invalid shape %s", f.Cluster.Shape)
		}
		return f.Cluster.Validate(f.Cluster.Shape)
	}
	return fmt.Errorf("fault: plan file carries no plan")
}

// SavePlan writes a rank-level plan for a world of the given size.
func SavePlan(path string, pl *Plan, ranks int) error {
	return savePlanFile(path, &PlanFile{Ranks: ranks, Rank: pl})
}

// SaveClusterPlan writes a cluster-level plan (the plan's Shape is the
// recorded world).
func SaveClusterPlan(path string, pl *ClusterPlan) error {
	return savePlanFile(path, &PlanFile{Cluster: pl})
}

func savePlanFile(path string, f *PlanFile) error {
	f.FormatVersion = PlanFormatVersion
	if err := f.validate(); err != nil {
		return err
	}
	sum, err := f.checksum()
	if err != nil {
		return err
	}
	f.Checksum = sum
	body, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}

// LoadPlanFile reads and verifies a saved plan: format version, checksum,
// and plan validity against the recorded world all gate loading.
func LoadPlanFile(path string) (*PlanFile, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f PlanFile
	if err := json.Unmarshal(body, &f); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrPlanChecksum, path, err)
	}
	if f.FormatVersion != PlanFormatVersion {
		return nil, fmt.Errorf("%w: %s has format %d, want %d",
			ErrPlanVersion, path, f.FormatVersion, PlanFormatVersion)
	}
	want, err := f.checksum()
	if err != nil {
		return nil, err
	}
	if f.Checksum != want {
		return nil, fmt.Errorf("%w: %s records %s, body hashes to %s",
			ErrPlanChecksum, path, f.Checksum, want)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}
