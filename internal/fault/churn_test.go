package fault

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenChurnPlanDeterministic(t *testing.T) {
	shape := ClusterShape{Nodes: 64, PerNode: 64}
	a := GenChurnPlan(7, shape, 1_000_000)
	b := GenChurnPlan(7, shape, 1_000_000)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if len(a.Crashes) != 1 || len(a.Heals) != 1 {
		t.Fatalf("churn plan shape: %s", a)
	}
	if a.Crashes[0].Node != a.Heals[0].Node {
		t.Fatalf("heal targets node %d, crash node %d", a.Heals[0].Node, a.Crashes[0].Node)
	}
	if err := a.Validate(shape); err != nil {
		t.Fatal(err)
	}
	if a.Class() != "node-crash" {
		t.Fatalf("churn plan class = %q, want node-crash (heals add no fault kind)", a.Class())
	}
	// Different seeds eventually pick different victims.
	other := GenChurnPlan(8, shape, 1_000_000)
	if other.String() == a.String() {
		t.Fatal("seeds 7 and 8 produced identical churn plans")
	}
}

func TestHealValidationTypedErrors(t *testing.T) {
	shape := ClusterShape{Nodes: 4, PerNode: 8}
	cases := []*ClusterPlan{
		{Name: "bad-node", Heals: []NodeHeal{{Node: 9, AtTick: 0}}},
		{Name: "bad-tick", Heals: []NodeHeal{{Node: 1, AtTick: -5}}},
		{Name: "bad-link", LinkHeals: []LinkHeal{{Node: -1, AtTick: 0}}},
	}
	for _, pl := range cases {
		err := pl.Validate(shape)
		if err == nil {
			t.Fatalf("%s: accepted", pl.Name)
		}
		if !errors.Is(err, ErrPlanRange) {
			t.Errorf("%s: error %v does not wrap ErrPlanRange", pl.Name, err)
		}
	}
	mismatch := &ClusterPlan{Name: "shape", Shape: ClusterShape{Nodes: 8, PerNode: 8},
		Crashes: []NodeCrash{{Node: 0}}}
	err := mismatch.Validate(shape)
	if !errors.Is(err, ErrPlanShape) {
		t.Errorf("shape mismatch error %v does not wrap ErrPlanShape", err)
	}
}

func TestRankPlanRangeTypedError(t *testing.T) {
	pl := &Plan{Name: "r", Corruptions: []Corruption{{Rank: 12}}}
	if err := pl.Validate(4); !errors.Is(err, ErrPlanRange) {
		t.Errorf("rank range error %v does not wrap ErrPlanRange", err)
	}
}

func TestRestrictNodesCarriesHeals(t *testing.T) {
	pl := &ClusterPlan{
		Name:      "h",
		Shape:     ClusterShape{Nodes: 4, PerNode: 8},
		Crashes:   []NodeCrash{{Node: 1, AtTick: 10}},
		Heals:     []NodeHeal{{Node: 1, AtTick: 0}, {Node: 3, AtTick: 5}},
		LinkHeals: []LinkHeal{{Node: 3, AtTick: 7}},
	}
	out := pl.RestrictNodes([]int{0, 2, 3}) // node 1 excluded
	if len(out.Heals) != 1 || out.Heals[0].Node != 2 || out.Heals[0].AtTick != 5 {
		t.Fatalf("restricted heals = %+v", out.Heals)
	}
	if len(out.LinkHeals) != 1 || out.LinkHeals[0].Node != 2 {
		t.Fatalf("restricted link heals = %+v", out.LinkHeals)
	}
}

// Heal-free plans must keep the exact canonical JSON body they had before
// heals existed, so every previously saved plan file still loads with a
// matching checksum.
func TestHealFreePlanBodyUnchanged(t *testing.T) {
	pl := &ClusterPlan{Name: "old", Shape: ClusterShape{Nodes: 4, PerNode: 8},
		Crashes: []NodeCrash{{Node: 2, AtTick: 100}}}
	body, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "Heals") {
		t.Fatalf("heal-free plan body mentions heals: %s", body)
	}
}

func TestSaveLoadClusterPlanWithHeals(t *testing.T) {
	pl := GenChurnPlan(3, ClusterShape{Nodes: 8, PerNode: 16}, 500_000)
	path := filepath.Join(t.TempDir(), "churn.json")
	if err := SaveClusterPlan(path, pl); err != nil {
		t.Fatal(err)
	}
	f, err := LoadPlanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cluster == nil || len(f.Cluster.Heals) != 1 {
		t.Fatalf("loaded plan lost its heal: %+v", f.Cluster)
	}
	if f.Cluster.String() != pl.String() {
		t.Fatalf("round trip diverged:\n%s\n%s", f.Cluster, pl)
	}
}
