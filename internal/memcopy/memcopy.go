// Package memcopy implements the data-copy primitives of the paper's §4:
// t-copy (temporal stores), nt-copy (non-temporal stores), the glibc-style
// memmove whose NT switch looks only at the copy size, and adaptive-copy
// (Algorithm 1), which additionally receives the collective algorithm's
// characteristics — whether the stored data is temporal and the working-set
// size W — and compares W against the available cache capacity C.
//
// Note on Algorithm 1: the paper's pseudocode as printed selects t-copy for
// "t == true and W > C", which contradicts both the surrounding text
// ("if the stored data is temporal ... writing the data to the cache ...
// will utilize the cache"; "we should use nt-copy for the sliced large data
// copy where the stored data is not to be used soon") and §5.4 ("YHCCL
// switches from t-copy to nt-copy when W > C and non-temporal flag
// t == 1"). We implement the behaviour the text and the evaluation
// describe: a non-temporal store is used iff the destination data is
// non-temporal AND the working set exceeds the available cache.
package memcopy

import (
	"fmt"

	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// Policy selects the copy implementation.
type Policy int

const (
	// Memmove models the C-library copy: NT stores iff the single copy's
	// size reaches MemmoveNTThreshold, regardless of reuse.
	Memmove Policy = iota
	// TCopy always uses temporal (write-allocate) stores.
	TCopy
	// NTCopy always uses non-temporal stores.
	NTCopy
	// Adaptive is the paper's adaptive-copy (Algorithm 1).
	Adaptive
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Memmove:
		return "memmove"
	case TCopy:
		return "t-copy"
	case NTCopy:
		return "nt-copy"
	case Adaptive:
		return "adaptive"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses a policy name as used by the CLI tools.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "memmove":
		return Memmove, nil
	case "t-copy", "tcopy", "t":
		return TCopy, nil
	case "nt-copy", "ntcopy", "nt":
		return NTCopy, nil
	case "adaptive", "yhccl":
		return Adaptive, nil
	}
	return 0, fmt.Errorf("memcopy: unknown policy %q", s)
}

// MemmoveNTThreshold is the copy size (bytes) above which the modelled
// C-library memmove switches to non-temporal stores (glibc's
// x86_shared_non_temporal_threshold ballpark; the paper observes the 2 MB
// switch on its platforms).
const MemmoveNTThreshold int64 = 2 << 20

// Hints carries the collective-algorithm characteristics that adaptive-copy
// consumes (Algorithm 1's t, W and C arguments).
type Hints struct {
	// NonTemporal is the paper's flag t: true when the stored data will not
	// be reused soon (e.g. copy-out to receive buffers), false when it will
	// (e.g. copy-in to shared memory that the next reduction reads).
	NonTemporal bool
	// WorkSet is the algorithm's working-set size W in bytes (send buffer +
	// receive buffer + auxiliary shared memory).
	WorkSet int64
	// AvailableCache is C in bytes (topo.Node.AvailableCache).
	AvailableCache int64
}

// Decide returns the store kind the policy picks for a copy of the given
// size in bytes under the given hints.
func Decide(p Policy, copyBytes int64, h Hints) memmodel.StoreKind {
	switch p {
	case TCopy:
		return memmodel.Temporal
	case NTCopy:
		return memmodel.NonTemporal
	case Memmove:
		if copyBytes >= MemmoveNTThreshold {
			return memmodel.NonTemporal
		}
		return memmodel.Temporal
	case Adaptive:
		if h.NonTemporal && h.WorkSet > h.AvailableCache {
			return memmodel.NonTemporal
		}
		return memmodel.Temporal
	}
	panic(fmt.Sprintf("memcopy: unknown policy %d", p))
}

// Copy copies n elements from src[sOff] to dst[dOff] on rank r using the
// store kind the policy selects. It is the adaptive-copy entry point used
// by every pipelined collective.
func Copy(r *mpi.Rank, p Policy, dst *memmodel.Buffer, dOff int64,
	src *memmodel.Buffer, sOff, n int64, h Hints) {
	r.CopyElems(dst, dOff, src, sOff, n, Decide(p, n*memmodel.ElemSize, h))
}
