package memcopy

import (
	"testing"

	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

func TestDecideTable(t *testing.T) {
	const mb = int64(1) << 20
	cases := []struct {
		name  string
		p     Policy
		bytes int64
		h     Hints
		want  memmodel.StoreKind
	}{
		{"tcopy always temporal", TCopy, 64 * mb, Hints{NonTemporal: true, WorkSet: 100 * mb, AvailableCache: mb}, memmodel.Temporal},
		{"ntcopy always nt", NTCopy, 1, Hints{}, memmodel.NonTemporal},
		{"memmove small temporal", Memmove, 2*mb - 1, Hints{}, memmodel.Temporal},
		{"memmove large nt", Memmove, 2 * mb, Hints{NonTemporal: false}, memmodel.NonTemporal},
		{"adaptive temporal data stays cached", Adaptive, 64 * mb, Hints{NonTemporal: false, WorkSet: 100 * mb, AvailableCache: mb}, memmodel.Temporal},
		{"adaptive small workset stays cached", Adaptive, 64 * mb, Hints{NonTemporal: true, WorkSet: mb, AvailableCache: 2 * mb}, memmodel.Temporal},
		{"adaptive nt when big and nontemporal", Adaptive, 4096, Hints{NonTemporal: true, WorkSet: 100 * mb, AvailableCache: mb}, memmodel.NonTemporal},
		{"adaptive boundary W == C temporal", Adaptive, 4096, Hints{NonTemporal: true, WorkSet: mb, AvailableCache: mb}, memmodel.Temporal},
	}
	for _, c := range cases {
		if got := Decide(c.p, c.bytes, c.h); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		Memmove: "memmove", TCopy: "t-copy", NTCopy: "nt-copy", Adaptive: "adaptive",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if got := Policy(99).String(); got != "policy(99)" {
		t.Errorf("unknown policy string = %q", got)
	}
}

func TestDecideUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Decide(Policy(99), 1, Hints{})
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"memmove": Memmove, "t-copy": TCopy, "tcopy": TCopy,
		"nt-copy": NTCopy, "nt": NTCopy, "adaptive": Adaptive, "yhccl": Adaptive,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) should fail")
	}
}

// slicedCopyBandwidth copies `total` elements in `slice`-element chunks
// under the policy and returns the effective copy bandwidth in bytes/s
// (2 bytes of useful movement per copied byte, STREAM COPY convention).
func slicedCopyBandwidth(t *testing.T, policy Policy, sliceElems int64) float64 {
	t.Helper()
	node := topo.NodeA()
	m := mpi.NewMachine(node, 1, false)
	// 384 MB per buffer: the 768 MB working set dwarfs even NodeA's 256 MB
	// of L3, so capacity misses dominate (the Table 4 regime).
	total := int64(48) << 20
	h := Hints{NonTemporal: true, WorkSet: 2 * total * memmodel.ElemSize, AvailableCache: node.AvailableCache(1)}
	elapsed := m.MustRun(func(r *mpi.Rank) {
		src := r.NewBuffer("src", total)
		dst := r.NewBuffer("dst", total)
		for off := int64(0); off < total; off += sliceElems {
			n := sliceElems
			if off+n > total {
				n = total - off
			}
			Copy(r, policy, dst, off, src, off, n, h)
		}
	})
	return float64(2*total*memmodel.ElemSize) / elapsed
}

func TestTable4BandwidthOrdering(t *testing.T) {
	// Table 4 at 512 KB slices: nt-copy >> t-copy ~ memmove.
	slice := int64(512 << 10 / memmodel.ElemSize)
	bwNT := slicedCopyBandwidth(t, NTCopy, slice)
	bwT := slicedCopyBandwidth(t, TCopy, slice)
	bwMM := slicedCopyBandwidth(t, Memmove, slice)
	if bwNT <= bwT {
		t.Errorf("nt-copy (%.1f GB/s) should beat t-copy (%.1f GB/s) on sliced large copies", bwNT/1e9, bwT/1e9)
	}
	ratio := bwNT / bwT
	if ratio < 1.3 || ratio > 1.7 {
		t.Errorf("nt/t bandwidth ratio = %.2f, want ~1.5 (paper's 50%% gain)", ratio)
	}
	if diff := bwMM/bwT - 1; diff > 0.05 || diff < -0.05 {
		t.Errorf("memmove at 512 KB slices (%.1f GB/s) should match t-copy (%.1f GB/s)", bwMM/1e9, bwT/1e9)
	}
}

func TestTable4MemmoveJumpsAtThreshold(t *testing.T) {
	// Table 4's 2 MB row: memmove switches to NT stores and catches nt-copy.
	slice := int64(2 << 20 / memmodel.ElemSize)
	bwMM := slicedCopyBandwidth(t, Memmove, slice)
	bwNT := slicedCopyBandwidth(t, NTCopy, slice)
	if rel := bwMM / bwNT; rel < 0.95 || rel > 1.05 {
		t.Errorf("memmove at 2 MB slices = %.1f GB/s, want ~nt-copy %.1f GB/s", bwMM/1e9, bwNT/1e9)
	}
}

func TestAdaptiveMatchesBestOfBoth(t *testing.T) {
	node := topo.NodeA()
	C := node.AvailableCache(1)

	// Large working set, non-temporal destination: adaptive == nt-copy.
	slice := int64(512 << 10 / memmodel.ElemSize)
	bwAdaptive := slicedCopyBandwidth(t, Adaptive, slice)
	bwNT := slicedCopyBandwidth(t, NTCopy, slice)
	if rel := bwAdaptive / bwNT; rel < 0.99 || rel > 1.01 {
		t.Errorf("adaptive on large workset = %.1f GB/s, want nt-copy %.1f GB/s", bwAdaptive/1e9, bwNT/1e9)
	}

	// Small working set: adaptive must choose temporal stores so the
	// destination stays cached for the next reader.
	m := mpi.NewMachine(node, 1, false)
	small := int64(1 << 14) // 128 KB
	h := Hints{NonTemporal: true, WorkSet: 3 * small * memmodel.ElemSize, AvailableCache: C}
	var reloadT float64
	m.MustRun(func(r *mpi.Rank) {
		src := r.NewBuffer("src", small)
		dst := r.NewBuffer("dst", small)
		Copy(r, Adaptive, dst, 0, src, 0, small, h)
		t0 := r.Now()
		r.Load(dst, 0, small)
		reloadT = r.Now() - t0
	})
	cacheT := float64(small*memmodel.ElemSize) / m.Model.CacheBandwidthPerRank(0)
	if reloadT > cacheT*1.01 {
		t.Errorf("after adaptive small copy, reload took %.3g (cache would be %.3g): destination was not cached", reloadT, cacheT)
	}
}

func TestCopyMovesRealData(t *testing.T) {
	m := mpi.NewMachine(topo.NodeA(), 1, true)
	m.MustRun(func(r *mpi.Rank) {
		src := r.NewBuffer("src", 100)
		dst := r.NewBuffer("dst", 100)
		r.FillPattern(src, 42)
		Copy(r, Adaptive, dst, 0, src, 0, 100, Hints{})
		if dst.Slice(99, 1)[0] != 42+99 {
			t.Error("adaptive copy did not move data")
		}
	})
}
