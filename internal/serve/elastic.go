package serve

import (
	"fmt"
	"io"
	"sort"

	"yhccl/internal/topo"
)

// Elastic capacity: the serving mirror of cluster membership churn. A
// CapacityEvent removes cores from or returns cores to the scheduler's
// pool at a planned virtual time. Shrink honors leases — an admitted job
// is never killed; its cores drain and retire when the lease ends, and
// placement re-solves over what remains. Grow returns cores and widens
// re-admission immediately. Every applied event bumps the scheduler's
// capacity epoch, logged so a churned schedule is replayable and
// auditable line by line.

// CapacityEvent is one planned capacity change.
type CapacityEvent struct {
	// At is the virtual time the change takes effect.
	At float64
	// Remove lists core ids leaving service: free cores go offline now,
	// leased cores drain (retire when their current lease completes).
	Remove []int
	// Add lists core ids returning to service: offline cores rejoin the
	// free pool now; draining cores have their drain cancelled.
	Add []int
}

func (ev CapacityEvent) validate(node *topo.Node) error {
	for _, c := range append(append([]int{}, ev.Remove...), ev.Add...) {
		if c < 0 || c >= node.Cores() {
			return fmt.Errorf("serve: capacity event at t=%.9f names core %d outside %s's %d cores",
				ev.At, c, node.Name, node.Cores())
		}
	}
	if ev.At < 0 {
		return fmt.Errorf("serve: capacity event at negative time %.9f", ev.At)
	}
	return nil
}

// Capacity returns the number of cores that are (or will again be)
// available for admission: total minus offline minus draining.
func (s *Scheduler) Capacity() int {
	return s.node.Cores() - len(s.offline) - len(s.draining)
}

// Epochs returns how many capacity events have been applied.
func (s *Scheduler) Epochs() int { return s.epoch }

// applyCapacity applies one capacity event: retire/drain removed cores,
// return added ones, shed queued jobs that can never fit the new
// capacity, then re-solve admission.
func (s *Scheduler) applyCapacity(ev CapacityEvent) {
	s.epoch++
	for _, c := range ev.Remove {
		if s.offline[c] || s.draining[c] {
			continue
		}
		sk := s.node.SocketOf(c)
		if removeCore(&s.freeBySocket[sk], c) {
			s.offline[c] = true
		} else {
			s.draining[c] = true
		}
	}
	for _, c := range ev.Add {
		switch {
		case s.offline[c]:
			delete(s.offline, c)
			sk := s.node.SocketOf(c)
			s.freeBySocket[sk] = append(s.freeBySocket[sk], c)
			sort.Ints(s.freeBySocket[sk])
		case s.draining[c]:
			// Drain cancelled: the core stays leased and returns to the
			// pool normally when the lease ends.
			delete(s.draining, c)
		}
	}
	s.logf("t=%.9f capacity epoch=%d remove=%v add=%v online=%d draining=%d",
		s.clock, s.epoch, ev.Remove, ev.Add, s.Capacity(), len(s.draining))
	// Queued jobs that can never fit the shrunken machine would block the
	// FIFO head forever: shed them now, with the reason on record.
	kept := s.queue[:0]
	for _, j := range s.queue {
		if j.spec.Ranks > s.Capacity() {
			s.logf("t=%.9f shed job=%d class=%s reason=capacity ranks=%d online=%d",
				s.clock, j.id, j.spec.Name, j.spec.Ranks, s.Capacity())
			s.results = append(s.results, JobResult{
				ID: j.id, Class: j.spec.Name, Ranks: j.spec.Ranks,
				Arrive: j.arrive, Shed: true, Deadline: j.spec.Deadline,
			})
			continue
		}
		kept = append(kept, j)
	}
	s.queue = kept
	// Re-solve admission: a grow widens what fits right now.
	if s.admitFromQueue() {
		s.recomputeRates()
	}
}

// removeCore deletes one core id from a sorted free list; reports whether
// it was present (i.e. the core was free, not leased).
func removeCore(free *[]int, c int) bool {
	f := *free
	i := sort.SearchInts(f, c)
	if i < len(f) && f[i] == c {
		*free = append(f[:i], f[i+1:]...)
		return true
	}
	return false
}

// SaturatingRate is the offered load (jobs per virtual second) at which
// the reference mix saturates NodeA — the knee the overload and churn
// gates scale from.
const SaturatingRate = 1600

// ChurnConfig parameterizes the serving churn gate.
type ChurnConfig struct {
	Seed   uint64
	Jobs   int
	Cycles int // shrink+grow cycles spread over the stream (min 8)
	// LoadMult scales SaturatingRate (the gate's contract is 1.2x).
	LoadMult float64
	// DrainCores is how many cores each shrink takes (the top ids of the
	// last socket); defaults to 8.
	DrainCores int
}

// ChurnGate drives the deadline-carrying overload mix at LoadMult times
// the saturating rate through repeated capacity shrink/grow cycles and
// holds the scheduler to the churn contract: every cycle applies exactly
// two capacity epochs (down, up), no tenant goes UNDIAGNOSED, and no
// admitted job misses its deadline — capacity loss is paid by shedding
// and longer queues, never by serving an accepted job late or killing a
// lease. The load point is written to w.
func ChurnGate(w io.Writer, node *topo.Node, cfg ChurnConfig) error {
	if cfg.Cycles < 8 {
		cfg.Cycles = 8
	}
	if cfg.LoadMult <= 0 {
		cfg.LoadMult = 1.2
	}
	if cfg.DrainCores <= 0 {
		cfg.DrainCores = 8
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 600
	}
	if cfg.DrainCores >= node.Cores()/2 {
		return fmt.Errorf("serve churn gate: draining %d of %d cores is not a churn test",
			cfg.DrainCores, node.Cores())
	}
	rate := cfg.LoadMult * SaturatingRate
	scfg := StreamConfig{
		Seed:        cfg.Seed,
		Mix:         OverloadMix(),
		Jobs:        cfg.Jobs,
		Rate:        rate,
		QueueBudget: OverloadQueueBudget,
	}
	arrivals, err := GenStream(scfg)
	if err != nil {
		return err
	}
	// Shrink at the quarter point and grow back at the three-quarter point
	// of each cycle's slice of the arrival window: half of every cycle
	// runs shrunken, half runs whole.
	span := arrivals[len(arrivals)-1].At
	drain := make([]int, cfg.DrainCores)
	for i := range drain {
		drain[i] = node.Cores() - cfg.DrainCores + i
	}
	var events []CapacityEvent
	for i := 0; i < cfg.Cycles; i++ {
		base := span * float64(i) / float64(cfg.Cycles)
		step := span / float64(cfg.Cycles)
		events = append(events,
			CapacityEvent{At: base + 0.25*step, Remove: drain},
			CapacityEvent{At: base + 0.75*step, Add: drain})
	}

	s := NewScheduler(node, PlaceAuto)
	s.SetQueueBudget(scfg.QueueBudget)
	results, err := s.RunWithEvents(arrivals, events)
	if err != nil {
		return err
	}
	lp := summarize(results, rate, PlaceAuto, s.EventLog())

	fmt.Fprintf(w, "churn point: node=%s rate=%.0f jobs/s (%.1fx saturating) cycles=%d drain=%d cores seed=%d jobs=%d\n\n",
		node.Name, rate, cfg.LoadMult, cfg.Cycles, cfg.DrainCores, cfg.Seed, cfg.Jobs)
	fmt.Fprint(w, Render([]LoadPoint{lp}))
	fmt.Fprintf(w, "\nadmitted=%d shed=%d deadline-violations=%d capacity-epochs=%d\n",
		lp.Jobs, lp.Shed, lp.DeadlineViolations, s.Epochs())

	var violations []string
	if got, want := s.Epochs(), 2*cfg.Cycles; got != want {
		violations = append(violations,
			fmt.Sprintf("applied %d capacity epochs, want %d (2 per cycle)", got, want))
	}
	if lp.Undiag > 0 {
		violations = append(violations, fmt.Sprintf("%d UNDIAGNOSED jobs under churn", lp.Undiag))
	}
	if lp.DeadlineViolations > 0 {
		violations = append(violations,
			fmt.Sprintf("%d admitted jobs missed their deadline under churn", lp.DeadlineViolations))
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(w, "GATE VIOLATION: %s\n", v)
		}
		return fmt.Errorf("serve churn gate: %d violations", len(violations))
	}
	fmt.Fprintln(w, "serve churn gate: PASS")
	return nil
}
