// Package serve turns the calibrated single-job simulator into a
// multi-tenant serving system: an admission/placement scheduler leases
// cores to concurrent jobs on one simulated machine, co-tenants contend
// for socket DRAM/L3 bandwidth and LLC capacity through
// memmodel.NewShared, and an open-loop arrival harness drives a seeded,
// deterministic mixed stream of job classes reporting per-class p50/p99
// makespan and aggregate throughput versus offered load.
//
// The scheduler is a fluid (processor-sharing) simulation over the exact
// cost model: a job's work is its measured solo-contended service time,
// its progress rate under a tenancy is work/S(ext) where S(ext) is the
// service time measured on a machine sharing the job's sockets with ext
// co-tenant ranks, and rates are piecewise constant between admission and
// completion events — so the whole schedule is deterministic, replayable
// from one seed, and every service time comes from the same simulator the
// paper figures use (memoized per distinct contention state).
package serve

import "fmt"

// Placement selects how a job's ranks map onto sockets.
type Placement int

const (
	// PlaceAuto picks per job: spread for DRAM-bound large messages
	// (>= AutoSpreadBytes, where aggregate cross-socket DRAM bandwidth
	// wins), pack otherwise (cheap intra-socket synchronization wins).
	PlaceAuto Placement = iota
	// PlacePack keeps the job on as few sockets as possible (best-fit
	// socket first, spill in socket order).
	PlacePack
	// PlaceSpread balances the job's ranks across sockets round-robin.
	PlaceSpread
)

// AutoSpreadBytes is the PlaceAuto switch: jobs moving at least this many
// bytes per rank are treated as DRAM-bound and spread.
const AutoSpreadBytes = 1 << 20

func (p Placement) String() string {
	switch p {
	case PlaceAuto:
		return "auto"
	case PlacePack:
		return "pack"
	case PlaceSpread:
		return "spread"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// ParsePlacement converts a CLI flag value to a Placement.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "auto", "":
		return PlaceAuto, nil
	case "pack":
		return PlacePack, nil
	case "spread":
		return PlaceSpread, nil
	}
	return PlaceAuto, fmt.Errorf("serve: unknown placement %q (auto|pack|spread)", s)
}

// JobSpec is the single declarative job description consumed by the
// scheduler, the yhcclbench -serve harness and examples/serving: what the
// job runs (collective, algorithm, message size, call count), what it
// needs (rank count), how it prefers to be placed, and how often it shows
// up in a mixed arrival stream. No per-tool ad-hoc structs.
type JobSpec struct {
	// Name is the job-class label used in reports ("dnn-storm", ...).
	Name string
	// Collective and Alg name the operation exactly as the unified facade
	// request does ("allreduce"/"yhccl", ...); Alg "" selects the default.
	Collective string
	Alg        string
	// MsgBytes is the per-rank message size of one collective call.
	MsgBytes int64
	// Calls is how many back-to-back collective calls one job issues (a
	// DNN storm is many; an OSU micro-flow is one).
	Calls int
	// Ranks is the number of exclusively leased cores the job needs.
	Ranks int
	// Placement is the job's placement hint (the scheduler may override).
	Placement Placement
	// Weight is the class's relative arrival probability in a mixed
	// stream (the arrival law: classes are drawn weight-proportionally,
	// interarrivals are exponential in the offered rate).
	Weight float64
	// FaultSeed, when non-zero, runs the job under the resilient
	// supervisor with the fault plan fault.GenPlan derives from the seed:
	// the tenant must recover (or at worst diagnose) without perturbing
	// its neighbors' leases.
	FaultSeed uint64
	// Deadline is the job's submission-to-completion budget in virtual
	// seconds (0 = none). The scheduler never drops an admitted job for
	// missing its deadline — violations are counted and gated instead, so
	// an overloaded system must protect deadlines by shedding at
	// admission, not by aborting work in flight.
	Deadline float64
}

// Validate checks a spec for the scheduler's requirements.
func (j JobSpec) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("serve: job spec with empty Name")
	}
	switch j.Collective {
	case "allreduce", "reduce-scatter", "reduce", "bcast", "allgather", "alltoall":
	default:
		return fmt.Errorf("serve: job %q: unsupported collective %q", j.Name, j.Collective)
	}
	if j.MsgBytes < 8 {
		return fmt.Errorf("serve: job %q: MsgBytes %d below one element", j.Name, j.MsgBytes)
	}
	if j.Calls <= 0 {
		return fmt.Errorf("serve: job %q: Calls must be positive", j.Name)
	}
	if j.Ranks < 2 {
		return fmt.Errorf("serve: job %q: Ranks must be at least 2", j.Name)
	}
	if j.Weight < 0 {
		return fmt.Errorf("serve: job %q: negative Weight", j.Name)
	}
	if j.Deadline < 0 {
		return fmt.Errorf("serve: job %q: negative Deadline", j.Name)
	}
	return nil
}

// DefaultMix is the reference mixed workload: DNN all-reduce storms
// (large, DRAM-bound, many calls), miniAMR-style halo phases (medium
// personalized exchanges), and OSU micro-flows (tiny latency-bound
// one-shots, arriving most often).
func DefaultMix() []JobSpec {
	return []JobSpec{
		{
			Name:       "dnn-storm",
			Collective: "allreduce",
			MsgBytes:   4 << 20,
			Calls:      8,
			Ranks:      8,
			Placement:  PlaceAuto,
			Weight:     1,
		},
		{
			Name:       "miniamr-halo",
			Collective: "alltoall",
			MsgBytes:   64 << 10,
			Calls:      6,
			Ranks:      4,
			Placement:  PlaceAuto,
			Weight:     1,
		},
		{
			Name:       "osu-micro",
			Collective: "allreduce",
			MsgBytes:   8 << 10,
			Calls:      1,
			Ranks:      2,
			Placement:  PlacePack,
			Weight:     2,
		},
	}
}
