package serve

import (
	"bytes"
	"strings"
	"testing"

	"yhccl/internal/topo"
)

// With no capacity events, RunWithEvents is Run: identical results and a
// byte-identical event log.
func TestRunWithEventsNoEventsIdentical(t *testing.T) {
	node := topo.NodeA()
	cfg := StreamConfig{Seed: 5, Mix: testMix(), Jobs: 80, Rate: 400}
	arrivals, err := GenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(withEvents bool) string {
		s := NewScheduler(node, PlaceAuto)
		s.SetServiceOracle(slowOracle)
		if withEvents {
			if _, err := s.RunWithEvents(arrivals, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := s.Run(arrivals); err != nil {
				t.Fatal(err)
			}
		}
		return strings.Join(s.EventLog(), "\n")
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("event-free RunWithEvents diverged from Run:\n%s\n---\n%s", a, b)
	}
}

// Shrinking cores out from under a running job never kills it: the lease
// runs to completion, then the cores retire instead of rejoining the pool.
func TestCapacityShrinkDrainsLeases(t *testing.T) {
	node := topo.NodeA()
	spec := testMix()[2] // osu-micro: pack placement, lands on cores 0,1
	arrivals := []Arrival{{At: 0, Spec: spec}}
	// Remove the job's own cores (0,1) mid-service plus two free ones.
	events := []CapacityEvent{{At: 1e-3, Remove: []int{0, 1, 62, 63}}}
	s := NewScheduler(node, PlaceAuto)
	s.SetServiceOracle(slowOracle)
	results, err := s.RunWithEvents(arrivals, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Shed {
		t.Fatalf("leased job did not complete: %+v", results)
	}
	want := slowOracle(spec, nil, nil)
	if got := results[0].Makespan(); got != want {
		t.Fatalf("drained job makespan %.9f, want undisturbed %.9f", got, want)
	}
	if got := s.Capacity(); got != node.Cores()-4 {
		t.Fatalf("capacity after drain %d, want %d", got, node.Cores()-4)
	}
	if s.Epochs() != 1 {
		t.Fatalf("epochs %d, want 1", s.Epochs())
	}
	log := strings.Join(s.EventLog(), "\n")
	if !strings.Contains(log, "retire job=0 cores=[0 1]") {
		t.Fatalf("no retire record for the drained lease:\n%s", log)
	}
	if !strings.Contains(log, "capacity epoch=1") {
		t.Fatalf("no capacity epoch record:\n%s", log)
	}
}

// A queued job that can never fit the shrunken machine is shed with the
// reason on record — it must not block the FIFO head forever.
func TestCapacityShedsUnfittableJobs(t *testing.T) {
	node := topo.NodeC() // 24 cores
	big := testMix()[0]
	big.Ranks = 20
	hog := testMix()[0]
	hog.Ranks = 24
	arrivals := []Arrival{
		{At: 0, Spec: hog},    // holds the whole machine
		{At: 1e-4, Spec: big}, // queues behind it
		{At: 3e-3, Spec: big}, // arrives after the shrink: shed at submit
	}
	// Shrink 8 cores while the hog runs: capacity 16 < 20.
	events := []CapacityEvent{{At: 2e-3, Remove: []int{16, 17, 18, 19, 20, 21, 22, 23}}}
	s := NewScheduler(node, PlaceAuto)
	s.SetServiceOracle(slowOracle)
	results, err := s.RunWithEvents(arrivals, events)
	if err != nil {
		t.Fatal(err)
	}
	shed := 0
	for _, r := range results {
		if r.Shed {
			shed++
		}
	}
	if shed != 2 {
		t.Fatalf("%d jobs shed, want 2 (queued + arriving): %+v", shed, results)
	}
	log := strings.Join(s.EventLog(), "\n")
	if strings.Count(log, "reason=capacity") != 2 {
		t.Fatalf("capacity sheds not on record:\n%s", log)
	}
}

// A grow event re-solves admission immediately: a job waiting for cores a
// shrink took away is admitted at exactly the grow tick.
func TestCapacityGrowReadmits(t *testing.T) {
	node := topo.NodeC()
	// 12 ranks fits the shrunken capacity (16), so the job waits queued
	// through the shrink window instead of being shed; only the grow frees
	// enough cores to admit it. The shrink applies at t=0, before the
	// blocker's arrival (events precede arrivals at ties), so free cores
	// stay below 12 until the grow.
	spec := testMix()[0]
	spec.Ranks = 12
	events := []CapacityEvent{
		{At: 0, Remove: []int{16, 17, 18, 19, 20, 21, 22, 23}},
		{At: 0.05, Add: []int{16, 17, 18, 19, 20, 21, 22, 23}},
	}
	// The blocker holds 8 of the 16 online cores until t=0.16.
	blocker := testMix()[0]
	blocker.Ranks = 8
	arrivals := []Arrival{
		{At: 0, Spec: blocker},
		{At: 1e-4, Spec: spec},
	}
	s := NewScheduler(node, PlaceAuto)
	s.SetServiceOracle(slowOracle)
	results, err := s.RunWithEvents(arrivals, events)
	if err != nil {
		t.Fatal(err)
	}
	var bigRes *JobResult
	for i := range results {
		if results[i].Ranks == 12 {
			bigRes = &results[i]
		}
	}
	if bigRes == nil || bigRes.Shed {
		t.Fatalf("12-rank job lost: %+v", results)
	}
	if bigRes.Admit != 0.05 {
		t.Fatalf("12-rank job admitted at %.9f, want exactly the grow tick 0.05", bigRes.Admit)
	}
	if s.Epochs() != 2 {
		t.Fatalf("epochs %d, want 2", s.Epochs())
	}
}

// Cancelling a drain (grow names a draining core) keeps the lease and
// returns the core to the pool at completion as if nothing happened.
func TestCapacityDrainCancelled(t *testing.T) {
	node := topo.NodeA()
	spec := testMix()[0]
	spec.Ranks = 2
	arrivals := []Arrival{{At: 0, Spec: spec}}
	events := []CapacityEvent{
		{At: 1e-3, Remove: []int{0, 1}},
		{At: 2e-3, Add: []int{0, 1}},
	}
	s := NewScheduler(node, PlaceAuto)
	s.SetServiceOracle(slowOracle)
	if _, err := s.RunWithEvents(arrivals, events); err != nil {
		t.Fatal(err)
	}
	if got := s.Capacity(); got != node.Cores() {
		t.Fatalf("capacity %d after drain-cancel, want full %d", got, node.Cores())
	}
	if log := strings.Join(s.EventLog(), "\n"); strings.Contains(log, "retire") {
		t.Fatalf("cancelled drain still retired cores:\n%s", log)
	}
}

// The churned schedule is deterministic: two cold gate runs produce
// byte-identical output.
func TestChurnDeterministic(t *testing.T) {
	node := topo.NodeA()
	cfg := StreamConfig{Seed: 21, Mix: testMix(), Jobs: 150, Rate: 600, QueueBudget: 8}
	arrivals, err := GenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := arrivals[len(arrivals)-1].At
	var events []CapacityEvent
	for i := 0; i < 4; i++ {
		base := span * float64(i) / 4
		events = append(events,
			CapacityEvent{At: base + 0.1*span/4, Remove: []int{60, 61, 62, 63}},
			CapacityEvent{At: base + 0.6*span/4, Add: []int{60, 61, 62, 63}})
	}
	run := func() string {
		s := NewScheduler(node, PlaceAuto)
		s.SetServiceOracle(slowOracle)
		s.SetQueueBudget(cfg.QueueBudget)
		if _, err := s.RunWithEvents(arrivals, events); err != nil {
			t.Fatal(err)
		}
		return strings.Join(s.EventLog(), "\n")
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("churned schedule diverged across cold runs:\n%s\n---\n%s", a, b)
	}
}

// The sim-backed churn gate at the contract point (1.2x saturating, 8
// cycles) passes: zero UNDIAGNOSED, zero admitted-deadline misses, two
// epochs per cycle. Small stream — the full-size point runs in make
// chaos-churn.
func TestChurnGateSim(t *testing.T) {
	var buf bytes.Buffer
	err := ChurnGate(&buf, topo.NodeA(), ChurnConfig{Seed: 7, Jobs: 200, Cycles: 8, LoadMult: 1.2})
	if err != nil {
		t.Fatalf("churn gate failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "serve churn gate: PASS") {
		t.Fatalf("no PASS line:\n%s", buf.String())
	}
}

// Fault-seeded tenants charge failed supervisor attempts at the virtual
// time they actually burned, so retries can push a job past its deadline
// — and the result must say so.
func TestFaultRetriesChargeDeadline(t *testing.T) {
	node := topo.NodeA()
	healthy := JobSpec{
		Name: "h", Collective: "allreduce", Alg: "yhccl",
		MsgBytes: 64 << 10, Calls: 2, Ranks: 4, Weight: 1,
	}
	s := NewScheduler(node, PlaceAuto)
	hres, err := s.Run([]Arrival{{At: 0, Spec: healthy}})
	if err != nil {
		t.Fatal(err)
	}
	solo := hres[0].Makespan()

	// Find a seed whose plan actually costs supervisor attempts.
	seeded := healthy
	seeded.Name = "f"
	var faulty float64
	for seed := uint64(1); seed < 64; seed++ {
		seeded.FaultSeed = seed
		s2 := NewScheduler(node, PlaceAuto)
		fres, err := s2.Run([]Arrival{{At: 0, Spec: seeded}})
		if err != nil {
			t.Fatal(err)
		}
		if fres[0].Makespan() > solo*1.2 {
			faulty = fres[0].Makespan()
			break
		}
	}
	if faulty == 0 {
		t.Fatal("no seed in [1,64) produced measurable retry cost")
	}
	// A deadline between the healthy and the faulted service time: the
	// healthy twin meets it, the retrying tenant misses it — because the
	// failed attempts charged their real elapsed time.
	deadline := (solo + faulty) / 2
	seeded.Deadline = deadline
	s3 := NewScheduler(node, PlaceAuto)
	fres, err := s3.Run([]Arrival{{At: 0, Spec: seeded}})
	if err != nil {
		t.Fatal(err)
	}
	if !fres[0].DeadlineMiss() {
		t.Fatalf("retrying tenant (makespan %.9f) did not miss deadline %.9f", fres[0].Makespan(), deadline)
	}
	healthy.Deadline = deadline
	s4 := NewScheduler(node, PlaceAuto)
	hres2, err := s4.Run([]Arrival{{At: 0, Spec: healthy}})
	if err != nil {
		t.Fatal(err)
	}
	if hres2[0].DeadlineMiss() {
		t.Fatalf("healthy twin (makespan %.9f) missed deadline %.9f", hres2[0].Makespan(), deadline)
	}
}
