package serve

import (
	"fmt"

	"yhccl/internal/coll"
	"yhccl/internal/fault"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/resilient"
	"yhccl/internal/topo"
)

// Service-time measurement: the scheduler's fluid rates come from real sim
// runs of the job body on a machine with exactly the job's per-socket rank
// shape and the current co-tenant counts folded into the bandwidth shares
// (mpi.NewMachineWithContention). Measurements are memoized per distinct
// (spec, shape, contention) state — the binding is canonicalized to the
// lowest cores of each socket, so two jobs with the same shape share one
// measurement no matter which cores they actually lease.

// Oracle replaces the sim-backed service-time measurement (used by
// scheduler micro-benchmarks that exercise admission/placement logic
// without paying for simulation). It must be deterministic.
type Oracle func(spec JobSpec, perSocket, ext []int) float64

// measured is one memoized measurement: the service time and, for
// fault-seeded jobs, the supervisor's verdict.
type measured struct {
	t   float64
	out resilient.Outcome
}

// measurer memoizes sim-backed service times for one node.
type measurer struct {
	node   *topo.Node
	memo   map[string]measured
	oracle Oracle
}

func newMeasurer(node *topo.Node) *measurer {
	return &measurer{node: node, memo: make(map[string]measured)}
}

// key canonicalizes a measurement request.
func measureKey(spec JobSpec, perSocket, ext []int) string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%v|%v",
		spec.Collective, spec.Alg, spec.MsgBytes, spec.Calls, spec.FaultSeed, perSocket, ext)
}

// canonicalCores turns a per-socket shape into a deterministic binding on
// the lowest cores of each socket.
func canonicalCores(node *topo.Node, perSocket []int) []int {
	var cores []int
	for s, k := range perSocket {
		base := s * node.CoresPerSocket
		for i := 0; i < k; i++ {
			cores = append(cores, base+i)
		}
	}
	return cores
}

// service returns the job's total service time (all Calls) on its shape
// under the given per-socket co-tenant counts. Healthy jobs are measured
// model-only; fault-seeded jobs run supervised on real data (bit-flip
// validation needs payloads) via faultService.
func (ms *measurer) service(spec JobSpec, perSocket, ext []int) float64 {
	return ms.measure(spec, perSocket, ext).t
}

// measure is the memoized entry behind service and outcome.
func (ms *measurer) measure(spec JobSpec, perSocket, ext []int) measured {
	if ms.oracle != nil {
		return measured{t: ms.oracle(spec, perSocket, ext), out: resilient.CleanPass}
	}
	k := measureKey(spec, perSocket, ext)
	if m, ok := ms.memo[k]; ok {
		return m
	}
	var m measured
	if spec.FaultSeed != 0 {
		m.t, m.out = ms.faultService(spec, perSocket, ext)
	} else {
		m = measured{t: ms.healthyService(spec, perSocket, ext), out: resilient.CleanPass}
	}
	ms.memo[k] = m
	return m
}

// healthyService measures the full Calls-loop once, cold, on a contended
// machine. Cold-start costs appear identically in every contention state,
// so solo/co-tenant ratios — all the scheduler consumes — stay meaningful.
func (ms *measurer) healthyService(spec JobSpec, perSocket, ext []int) float64 {
	m := mpi.NewMachineWithContention(ms.node, canonicalCores(ms.node, perSocket), ext, false)
	body, err := healthyBody(spec, m.Size())
	if err != nil {
		panic(err) // specs are validated at submission; this is a scheduler bug
	}
	return m.MustRun(body)
}

// healthyBody builds the model-only per-rank loop for a spec: Calls
// back-to-back collective calls with OSU-style buffer re-warming between
// iterations.
func healthyBody(spec JobSpec, p int) (func(*mpi.Rank), error) {
	n := spec.MsgBytes / memmodel.ElemSize
	if n < 1 {
		n = 1
	}
	calls := spec.Calls
	alg := spec.Alg
	if alg == "" {
		alg = "yhccl"
	}
	o := coll.Options{}
	pp := int64(p)
	switch spec.Collective {
	case "allreduce":
		f, err := coll.Lookup(coll.AllreduceAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("serve/sb", n)
			rb := r.PersistentBuffer("serve/rb", n)
			for i := 0; i < calls; i++ {
				r.Warm(sb, 0, n)
				f(r, r.World(), sb, rb, n, mpi.Sum, o)
			}
		}, nil
	case "reduce-scatter":
		f, err := coll.Lookup(coll.ReduceScatterAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("serve/sb", n*pp)
			rb := r.PersistentBuffer("serve/rb", n)
			for i := 0; i < calls; i++ {
				r.Warm(sb, 0, n*pp)
				f(r, r.World(), sb, rb, n, mpi.Sum, o)
			}
		}, nil
	case "reduce":
		f, err := coll.Lookup(coll.ReduceAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("serve/sb", n)
			rb := r.PersistentBuffer("serve/rb", n)
			for i := 0; i < calls; i++ {
				r.Warm(sb, 0, n)
				f(r, r.World(), sb, rb, n, mpi.Sum, 0, o)
			}
		}, nil
	case "bcast":
		f, err := coll.Lookup(coll.BcastAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			buf := r.PersistentBuffer("serve/buf", n)
			for i := 0; i < calls; i++ {
				if r.ID() == 0 {
					r.Warm(buf, 0, n)
				}
				f(r, r.World(), buf, n, 0, o)
			}
		}, nil
	case "allgather":
		f, err := coll.Lookup(coll.AllgatherAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("serve/sb", n)
			rb := r.PersistentBuffer("serve/rb", n*pp)
			for i := 0; i < calls; i++ {
				r.Warm(sb, 0, n)
				f(r, r.World(), sb, rb, n, o)
			}
		}, nil
	case "alltoall":
		f, err := coll.Lookup(coll.AlltoallAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("serve/sb", n*pp)
			rb := r.PersistentBuffer("serve/rb", n*pp)
			for i := 0; i < calls; i++ {
				r.Warm(sb, 0, n*pp)
				f(r, r.World(), sb, rb, n, o)
			}
		}, nil
	}
	return nil, fmt.Errorf("serve: unsupported collective %q", spec.Collective)
}

// faultService measures a fault-seeded tenant: one validated collective
// call runs under the resilient supervisor (real data, the seed's
// GenPlan), and the remaining Calls-1 are charged at the healthy
// per-call time — the fault fires once, recovery happens once. Failed
// attempts charge the virtual time they actually burned before being
// diagnosed (Attempt.Elapsed) — not a flat healthy call — so deadline
// accounting sees the true cost of every retry. Returns the total service
// time and the supervisor's outcome.
func (ms *measurer) faultService(spec JobSpec, perSocket, ext []int) (float64, resilient.Outcome) {
	healthySpec := spec
	healthySpec.FaultSeed = 0
	healthy := ms.service(healthySpec, perSocket, ext)
	perCall := healthy / float64(spec.Calls)

	cores := canonicalCores(ms.node, perSocket)
	m := mpi.NewMachineWithContention(ms.node, cores, ext, true)
	plan := fault.GenPlan(spec.FaultSeed, len(cores), perCall)
	if err := m.SetFaultPlan(plan); err != nil {
		panic(fmt.Sprintf("serve: bad generated plan: %v", err))
	}
	alg := spec.Alg
	if alg == "" {
		alg = "yhccl"
	}
	job := resilient.Job{
		Name:     spec.Name,
		MaxDepth: coll.MaxFallbackDepth(spec.Collective, alg),
		Bind: func(m *mpi.Machine, depth, salt int) (func(*mpi.Rank), func() error, error) {
			b, err := faultBody(spec, m, depth, salt)
			if err != nil {
				return nil, nil, err
			}
			return b.run, func() error { return b.verr }, nil
		},
	}
	pol := resilient.DefaultPolicy()
	pol.AllowRemap = false // leased cores come with no spares to quarantine onto
	rep := resilient.Supervise(m, job, pol)

	total := 0.0
	for _, a := range rep.Attempts {
		switch {
		case a.Makespan > 0:
			total += a.Makespan
		case a.Elapsed > 0:
			total += a.Elapsed
		default:
			// Diagnosed before any rank advanced (e.g. bind failure):
			// charge one healthy call as the floor.
			total += perCall
		}
	}
	total += float64(spec.Calls-1) * perCall
	return total, rep.Outcome
}

// outcome returns the supervisor outcome of a fault-seeded job under the
// given contention (memoized with the service time); healthy jobs are
// CleanPass.
func (ms *measurer) outcome(spec JobSpec, perSocket, ext []int) resilient.Outcome {
	if spec.FaultSeed == 0 || ms.oracle != nil {
		return resilient.CleanPass
	}
	return ms.measure(spec, perSocket, ext).out
}

// faultBody is the chaos-style validated single-call body: fill-pattern
// bases salted per attempt, resilient dispatch at the given depth, exact
// self-validation capturing the first divergence.
type bodyState struct {
	run  func(*mpi.Rank)
	verr error
}

func faultBody(spec JobSpec, m *mpi.Machine, depth, salt int) (*bodyState, error) {
	p := m.Size()
	bases := coll.SumBasesSalted(p, salt)
	b := &bodyState{}
	check := func(err error) {
		if err != nil && b.verr == nil {
			b.verr = err
		}
	}
	n := spec.MsgBytes / memmodel.ElemSize
	if n < 1 {
		n = 1
	}
	alg := spec.Alg
	if alg == "" {
		alg = "yhccl"
	}
	o := coll.Options{FallbackDepth: depth}
	switch spec.Collective {
	case "allreduce":
		name, f, err := coll.ResilientAR(alg, o)
		if err != nil {
			return nil, err
		}
		opName := spec.Collective + "/" + name
		b.run = func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, bases[r.ID()])
			f(r, r.World(), sb, rb, n, mpi.Sum, o)
			check(coll.ValidateAllreduceSum(opName, r.ID(), rb, n, bases))
		}
	case "reduce-scatter":
		name, f, err := coll.ResilientRS(alg, o)
		if err != nil {
			return nil, err
		}
		opName := spec.Collective + "/" + name
		b.run = func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", int64(p)*n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, bases[r.ID()])
			f(r, r.World(), sb, rb, n, mpi.Sum, o)
			check(coll.ValidateReduceScatterSum(opName, r.ID(), rb, n, bases))
		}
	case "reduce":
		name, f, err := coll.ResilientReduce(alg, o)
		if err != nil {
			return nil, err
		}
		opName := spec.Collective + "/" + name
		b.run = func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, bases[r.ID()])
			f(r, r.World(), sb, rb, n, mpi.Sum, 0, o)
			check(coll.ValidateReduceSum(opName, r.ID(), 0, rb, n, bases))
		}
	case "bcast":
		name, f, err := coll.ResilientBcast(alg, o)
		if err != nil {
			return nil, err
		}
		opName := spec.Collective + "/" + name
		rootBase := 777 + float64(salt*17)
		b.run = func(r *mpi.Rank) {
			buf := r.NewBuffer("buf", n)
			if r.ID() == 0 {
				r.FillPattern(buf, rootBase)
			}
			f(r, r.World(), buf, n, 0, o)
			check(coll.ValidateBcast(opName, r.ID(), buf, n, rootBase))
		}
	case "allgather":
		name, f, err := coll.ResilientAG(alg, o)
		if err != nil {
			return nil, err
		}
		opName := spec.Collective + "/" + name
		b.run = func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", n)
			rb := r.NewBuffer("rb", int64(p)*n)
			r.FillPattern(sb, bases[r.ID()])
			f(r, r.World(), sb, rb, n, o)
			check(coll.ValidateAllgather(opName, r.ID(), rb, n, bases))
		}
	default:
		return nil, fmt.Errorf("serve: fault-seeded job on unsupported collective %q", spec.Collective)
	}
	return b, nil
}
