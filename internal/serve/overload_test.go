package serve

import (
	"bytes"
	"strings"
	"testing"

	"yhccl/internal/topo"
)

// slowOracle makes every job take long enough that an overloaded stream
// builds a real queue.
func slowOracle(spec JobSpec, perSocket, ext []int) float64 {
	return 1e-2 * float64(spec.Ranks) * float64(spec.Calls)
}

// A bounded queue sheds the excess deterministically: admitted+shed
// accounts for every arrival, the event log records each shed, and two
// cold runs agree byte for byte.
func TestQueueBudgetSheds(t *testing.T) {
	node := topo.NodeA()
	cfg := StreamConfig{Seed: 11, Mix: testMix(), Jobs: 120, Rate: 500, QueueBudget: 4}
	run := func() (LoadPoint, string) {
		lp, err := RunLoad(node, PlaceAuto, cfg, slowOracle)
		if err != nil {
			t.Fatal(err)
		}
		return lp, strings.Join(lp.EventLog, "\n")
	}
	lp, logA := run()
	if lp.Shed == 0 {
		t.Fatal("overloaded bounded queue shed nothing")
	}
	if lp.Jobs+lp.Shed != cfg.Jobs {
		t.Fatalf("admitted %d + shed %d != %d arrivals", lp.Jobs, lp.Shed, cfg.Jobs)
	}
	if got := strings.Count(logA, " shed "); got != lp.Shed {
		t.Fatalf("event log records %d sheds, load point %d", got, lp.Shed)
	}
	_, logB := run()
	if logA != logB {
		t.Fatalf("shedding diverged across cold runs:\n%s\n---\n%s", logA, logB)
	}
}

// Without a budget the same stream queues without bound and admitted
// jobs blow their deadlines; with the budget the queue is cut and every
// admitted job meets its deadline — the gate sees exactly that.
func TestDeadlinesNeedShedding(t *testing.T) {
	node := topo.NodeA()
	mix := testMix()
	for i := range mix {
		mix[i].Deadline = 0.5
	}
	unbounded := StreamConfig{Seed: 11, Mix: mix, Jobs: 120, Rate: 500}
	lpU, err := RunLoad(node, PlaceAuto, unbounded, slowOracle)
	if err != nil {
		t.Fatal(err)
	}
	if lpU.DeadlineViolations == 0 {
		t.Fatal("unbounded queue under overload missed no deadlines — test premise broken")
	}
	if vs := Gate([]LoadPoint{lpU}, 0); len(vs) == 0 {
		t.Fatal("gate ignored deadline violations")
	}

	bounded := unbounded
	bounded.QueueBudget = 4
	lpB, err := RunLoad(node, PlaceAuto, bounded, slowOracle)
	if err != nil {
		t.Fatal(err)
	}
	if lpB.DeadlineViolations != 0 {
		t.Fatalf("bounded queue still missed %d deadlines", lpB.DeadlineViolations)
	}
	if vs := Gate([]LoadPoint{lpB}, 0); len(vs) != 0 {
		t.Fatalf("gate failed the bounded run: %v", vs)
	}
}

// A zero budget means unbounded: nothing is shed, behavior is unchanged.
func TestZeroQueueBudgetUnbounded(t *testing.T) {
	node := topo.NodeA()
	cfg := StreamConfig{Seed: 11, Mix: testMix(), Jobs: 60, Rate: 500}
	lp, err := RunLoad(node, PlaceAuto, cfg, slowOracle)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Shed != 0 || lp.Jobs != cfg.Jobs {
		t.Fatalf("unbounded run shed jobs: admitted=%d shed=%d", lp.Jobs, lp.Shed)
	}
}

// The sim-backed overload gate passes at 1.5x the saturating rate of the
// reference sweep.
func TestOverloadGate(t *testing.T) {
	var buf bytes.Buffer
	if err := OverloadGate(&buf, topo.NodeA(), 42, 150, 2.0); err != nil {
		t.Fatalf("overload gate failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "serve overload gate: PASS") {
		t.Fatalf("missing pass verdict:\n%s", out)
	}
	if !strings.Contains(out, "shed=") {
		t.Fatalf("report missing shed stats:\n%s", out)
	}
}
