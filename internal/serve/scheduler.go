package serve

import (
	"fmt"
	"math"
	"sort"

	"yhccl/internal/resilient"
	"yhccl/internal/topo"
)

// Scheduler is the admission/placement engine: jobs arrive, wait FIFO for
// enough free cores (head-of-line blocking — no job overtakes, so ordering
// is deterministic), lease cores exclusively under a placement policy, and
// progress at fluid rates set by who shares their sockets. Time is virtual
// and entirely event-driven: rates only change at admissions and
// completions, so between events every job's remaining work drains
// linearly and the next completion is solved in closed form.
type Scheduler struct {
	node     *topo.Node
	override Placement // PlaceAuto respects each job's hint
	ms       *measurer

	freeBySocket [][]int // ascending free core IDs per socket
	queue        []*job  // FIFO admission queue
	running      []*job  // admission order
	clock        float64
	log          []string
	results      []JobResult
	// queueBudget caps the admission queue length (0 = unbounded). An
	// arrival that would push the queue past the budget is shed — rejected
	// deterministically at submission (reject-newest: queued jobs keep
	// their FIFO position, the newcomer is turned away).
	queueBudget int

	// Elastic capacity (RunWithEvents). offline holds cores currently out
	// of service; draining holds leased cores due offline when their lease
	// ends — admitted jobs are never killed, the lease runs to completion
	// and the core retires instead of returning to the pool. epoch counts
	// capacity changes applied. All empty/zero on the plain Run path, which
	// stays byte-identical.
	offline  map[int]bool
	draining map[int]bool
	epoch    int
}

// job is one admitted or queued request.
type job struct {
	id        int
	spec      JobSpec
	arrive    float64
	admit     float64
	cores     []int
	perSocket []int
	work      float64 // solo service time on its placement shape
	remaining float64 // work units left
	rate      float64 // work units per virtual second under current tenancy
	outcome   resilient.Outcome
}

// Arrival schedules one job submission at a virtual time.
type Arrival struct {
	At   float64
	Spec JobSpec
}

// JobResult is the completed-job record the harness aggregates.
type JobResult struct {
	ID     int
	Class  string
	Ranks  int
	Arrive float64
	Admit  float64
	Done   float64
	// Outcome is the resilient supervisor's verdict for fault-seeded
	// tenants (CleanPass for healthy jobs).
	Outcome resilient.Outcome
	// Shed marks a job rejected at admission by the queue budget; only
	// ID/Class/Ranks/Arrive are meaningful then.
	Shed bool
	// Deadline is the spec's submission-to-completion budget (0 = none).
	Deadline float64
}

// DeadlineMiss reports whether an admitted job finished past its deadline.
func (r JobResult) DeadlineMiss() bool {
	return !r.Shed && r.Deadline > 0 && r.Makespan() > r.Deadline
}

// Makespan is the job's submission-to-completion time (queueing included).
func (r JobResult) Makespan() float64 { return r.Done - r.Arrive }

// Wait is the time spent queued before admission.
func (r JobResult) Wait() float64 { return r.Admit - r.Arrive }

// NewScheduler builds a scheduler for one node. placement overrides every
// job's hint when not PlaceAuto (the pack-vs-spread comparison switch).
func NewScheduler(node *topo.Node, placement Placement) *Scheduler {
	s := &Scheduler{
		node:     node,
		override: placement,
		ms:       newMeasurer(node),
		offline:  map[int]bool{},
		draining: map[int]bool{},
	}
	s.freeBySocket = make([][]int, node.Sockets)
	for sk := 0; sk < node.Sockets; sk++ {
		base := sk * node.CoresPerSocket
		for c := 0; c < node.CoresPerSocket; c++ {
			s.freeBySocket[sk] = append(s.freeBySocket[sk], base+c)
		}
	}
	return s
}

// SetServiceOracle replaces sim-backed service measurement with a pure
// function — for scheduler micro-benchmarks only.
func (s *Scheduler) SetServiceOracle(o Oracle) { s.ms.oracle = o }

// SetQueueBudget bounds the admission queue (0 = unbounded, the default).
func (s *Scheduler) SetQueueBudget(n int) { s.queueBudget = n }

// EventLog returns the admission/placement event log: one line per
// arrival, admission and completion, with fixed formatting so identical
// streams produce byte-identical logs.
func (s *Scheduler) EventLog() []string { return s.log }

// Clock returns the current virtual time (end-of-stream time after Run).
func (s *Scheduler) Clock() float64 { return s.clock }

// Run executes an arrival stream to completion and returns the per-job
// results in completion order. Arrivals must be sorted by time.
func (s *Scheduler) Run(arrivals []Arrival) ([]JobResult, error) {
	return s.RunWithEvents(arrivals, nil)
}

// RunWithEvents executes an arrival stream under a planned sequence of
// capacity changes. Tie order is completions, then capacity events, then
// arrivals: a leaving tenant frees cores a capacity change may retire and
// an arriving job may need. With no events the schedule — and the event
// log — is byte-identical to Run.
func (s *Scheduler) RunWithEvents(arrivals []Arrival, events []CapacityEvent) ([]JobResult, error) {
	for i, a := range arrivals {
		if err := a.Spec.Validate(); err != nil {
			return nil, err
		}
		if a.Spec.Ranks > s.node.Cores() {
			return nil, fmt.Errorf("serve: job %q needs %d ranks; %s has %d cores",
				a.Spec.Name, a.Spec.Ranks, s.node.Name, s.node.Cores())
		}
		if i > 0 && a.At < arrivals[i-1].At {
			return nil, fmt.Errorf("serve: arrivals not sorted at index %d", i)
		}
	}
	for i, ev := range events {
		if err := ev.validate(s.node); err != nil {
			return nil, err
		}
		if i > 0 && ev.At < events[i-1].At {
			return nil, fmt.Errorf("serve: capacity events not sorted at index %d", i)
		}
	}
	ai, ei := 0, 0
	for ai < len(arrivals) || len(s.running) > 0 || len(s.queue) > 0 {
		tc, cj := s.nextCompletion()
		ta, te := math.Inf(1), math.Inf(1)
		if ai < len(arrivals) {
			ta = arrivals[ai].At
		}
		if ei < len(events) {
			te = events[ei].At
		}
		switch {
		case cj != nil && tc <= ta && tc <= te:
			// Completions before arrivals at ties: a leaving tenant frees
			// cores the arriving one may need.
			s.advanceTo(tc)
			s.complete(cj)
			s.admitFromQueue()
			s.recomputeRates()
		case ei < len(events) && te <= ta:
			// A pending grow event can be the only thing that unblocks a
			// queued job on a shrunken machine, so events are part of the
			// main loop, not a side channel.
			s.advanceTo(te)
			s.applyCapacity(events[ei])
			ei++
		case ai < len(arrivals):
			s.advanceTo(ta)
			s.submit(arrivals[ai], ai)
			ai++
			if s.admitFromQueue() {
				s.recomputeRates()
			}
		default:
			// Nothing running, nothing arriving, no capacity pending, but
			// jobs queued: cannot happen — a job that can never fit the
			// current capacity is shed, not queued.
			return nil, fmt.Errorf("serve: scheduler stuck with %d queued jobs", len(s.queue))
		}
	}
	return s.results, nil
}

// advanceTo drains every running job's remaining work at its current rate
// up to virtual time t.
func (s *Scheduler) advanceTo(t float64) {
	dt := t - s.clock
	if dt > 0 {
		for _, j := range s.running {
			j.remaining -= dt * j.rate
		}
	}
	s.clock = t
}

// nextCompletion returns the earliest completion time over running jobs
// (ties broken by job id, guaranteed by admission-order iteration).
func (s *Scheduler) nextCompletion() (float64, *job) {
	t := math.Inf(1)
	var pick *job
	for _, j := range s.running {
		rem := j.remaining
		if rem < 0 {
			rem = 0
		}
		at := s.clock + rem/j.rate
		if at < t {
			t, pick = at, j
		}
	}
	return t, pick
}

// submit logs an arrival and queues the job — or sheds it when the queue
// is at budget.
func (s *Scheduler) submit(a Arrival, idx int) {
	j := &job{id: idx, spec: a.Spec, arrive: a.At}
	s.logf("t=%.9f arrive job=%d class=%s ranks=%d", s.clock, j.id, j.spec.Name, j.spec.Ranks)
	if (len(s.offline) > 0 || len(s.draining) > 0) && j.spec.Ranks > s.Capacity() {
		// The shrunken machine can never hold this job: shed at submission
		// rather than blocking the FIFO queue forever.
		s.logf("t=%.9f shed job=%d class=%s reason=capacity ranks=%d online=%d",
			s.clock, j.id, j.spec.Name, j.spec.Ranks, s.Capacity())
		s.results = append(s.results, JobResult{
			ID: j.id, Class: j.spec.Name, Ranks: j.spec.Ranks,
			Arrive: j.arrive, Shed: true, Deadline: j.spec.Deadline,
		})
		return
	}
	if s.queueBudget > 0 && len(s.queue) >= s.queueBudget {
		s.logf("t=%.9f shed job=%d class=%s queued=%d budget=%d",
			s.clock, j.id, j.spec.Name, len(s.queue), s.queueBudget)
		s.results = append(s.results, JobResult{
			ID: j.id, Class: j.spec.Name, Ranks: j.spec.Ranks,
			Arrive: j.arrive, Shed: true, Deadline: j.spec.Deadline,
		})
		return
	}
	s.queue = append(s.queue, j)
}

// admitFromQueue admits queue-head jobs while they fit, in strict FIFO
// order. Returns whether any admission happened.
func (s *Scheduler) admitFromQueue() bool {
	admitted := false
	for len(s.queue) > 0 {
		j := s.queue[0]
		cores, perSocket, ok := s.place(j.spec)
		if !ok {
			break // head-of-line blocking keeps admission order deterministic
		}
		s.queue = s.queue[1:]
		j.cores, j.perSocket = cores, perSocket
		j.admit = s.clock
		j.work = s.ms.service(j.spec, perSocket, zeros(s.node.Sockets))
		j.remaining = j.work
		j.outcome = s.ms.outcome(j.spec, perSocket, zeros(s.node.Sockets))
		s.running = append(s.running, j)
		s.logf("t=%.9f admit job=%d class=%s place=%s sockets=%v wait=%.9f",
			s.clock, j.id, j.spec.Name, s.effective(j.spec), perSocket, j.admit-j.arrive)
		admitted = true
	}
	return admitted
}

// complete retires a job: frees its lease, logs, records the result.
func (s *Scheduler) complete(j *job) {
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	var retired []int
	for _, c := range j.cores {
		if len(s.draining) > 0 && s.draining[c] {
			// The lease ran to completion; the core retires instead of
			// returning to the pool.
			delete(s.draining, c)
			s.offline[c] = true
			retired = append(retired, c)
			continue
		}
		sk := s.node.SocketOf(c)
		s.freeBySocket[sk] = append(s.freeBySocket[sk], c)
	}
	for sk := range s.freeBySocket {
		sort.Ints(s.freeBySocket[sk])
	}
	if len(retired) > 0 {
		s.logf("t=%.9f retire job=%d cores=%v online=%d", s.clock, j.id, retired, s.Capacity())
	}
	res := JobResult{
		ID: j.id, Class: j.spec.Name, Ranks: j.spec.Ranks,
		Arrive: j.arrive, Admit: j.admit, Done: s.clock,
		Outcome: j.outcome, Deadline: j.spec.Deadline,
	}
	s.results = append(s.results, res)
	s.logf("t=%.9f complete job=%d class=%s makespan=%.9f outcome=%s",
		s.clock, j.id, j.spec.Name, res.Makespan(), j.outcome)
}

// recomputeRates refreshes every running job's fluid rate (and, for
// fault-seeded tenants, the supervised outcome) for the current tenancy:
// ext[s] is the number of co-tenant ranks sharing socket s.
func (s *Scheduler) recomputeRates() {
	for _, j := range s.running {
		ext := zeros(s.node.Sockets)
		for _, k := range s.running {
			if k == j {
				continue
			}
			for sk, c := range k.perSocket {
				ext[sk] += c
			}
		}
		st := s.ms.service(j.spec, j.perSocket, ext)
		j.rate = j.work / st
		j.outcome = s.ms.outcome(j.spec, j.perSocket, ext)
	}
}

// effective resolves the placement policy for a spec: the scheduler
// override first, then the job hint, then the auto rule.
func (s *Scheduler) effective(spec JobSpec) Placement {
	p := spec.Placement
	if s.override != PlaceAuto {
		p = s.override
	}
	if p == PlaceAuto {
		if spec.MsgBytes >= AutoSpreadBytes {
			return PlaceSpread
		}
		return PlacePack
	}
	return p
}

// place maps a spec onto free cores under its effective policy. Returns
// the leased cores, the per-socket rank counts, and whether it fits now.
func (s *Scheduler) place(spec JobSpec) ([]int, []int, bool) {
	free := 0
	for _, f := range s.freeBySocket {
		free += len(f)
	}
	if spec.Ranks > free {
		return nil, nil, false
	}
	counts := zeros(s.node.Sockets)
	switch s.effective(spec) {
	case PlaceSpread:
		// Balance: each rank goes to the socket with the most free cores
		// left (ties to the lower index).
		left := make([]int, s.node.Sockets)
		for sk, f := range s.freeBySocket {
			left[sk] = len(f)
		}
		for k := 0; k < spec.Ranks; k++ {
			best := 0
			for sk := 1; sk < len(left); sk++ {
				if left[sk] > left[best] {
					best = sk
				}
			}
			counts[best]++
			left[best]--
		}
	default: // PlacePack
		// Best-fit: the fullest socket that still holds the whole job;
		// otherwise spill across sockets in index order.
		best := -1
		for sk, f := range s.freeBySocket {
			if len(f) >= spec.Ranks && (best < 0 || len(f) < len(s.freeBySocket[best])) {
				best = sk
			}
		}
		if best >= 0 {
			counts[best] = spec.Ranks
		} else {
			need := spec.Ranks
			for sk := 0; sk < s.node.Sockets && need > 0; sk++ {
				take := len(s.freeBySocket[sk])
				if take > need {
					take = need
				}
				counts[sk] = take
				need -= take
			}
		}
	}
	var cores []int
	for sk, k := range counts {
		cores = append(cores, s.freeBySocket[sk][:k]...)
		s.freeBySocket[sk] = s.freeBySocket[sk][k:]
	}
	return cores, counts, true
}

func (s *Scheduler) logf(format string, args ...any) {
	s.log = append(s.log, fmt.Sprintf(format, args...))
}

func zeros(n int) []int { return make([]int, n) }
