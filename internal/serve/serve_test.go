package serve

import (
	"strings"
	"testing"

	"yhccl/internal/resilient"
	"yhccl/internal/topo"
)

// testMix is a scaled-down DefaultMix keeping sim-backed tests fast.
func testMix() []JobSpec {
	return []JobSpec{
		{Name: "dnn-storm", Collective: "allreduce", MsgBytes: 1 << 20, Calls: 2, Ranks: 8, Placement: PlaceAuto, Weight: 1},
		{Name: "miniamr-halo", Collective: "alltoall", MsgBytes: 16 << 10, Calls: 2, Ranks: 4, Placement: PlaceAuto, Weight: 1},
		{Name: "osu-micro", Collective: "allreduce", MsgBytes: 8 << 10, Calls: 1, Ranks: 2, Placement: PlacePack, Weight: 2},
	}
}

// TestSchedulerDeterminism pins the seed-replayable contract: two cold
// runs of the same seeded stream produce byte-identical event logs.
func TestSchedulerDeterminism(t *testing.T) {
	node := topo.NodeA()
	cfg := StreamConfig{Seed: 42, Mix: testMix(), Jobs: 12, Rate: 50}
	run := func() string {
		lp, err := RunLoad(node, PlaceAuto, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(lp.EventLog, "\n")
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("cold runs diverge:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if !strings.Contains(a, "arrive") || !strings.Contains(a, "admit") || !strings.Contains(a, "complete") {
		t.Fatalf("event log missing expected events:\n%s", a)
	}
}

// TestGenStreamDeterminism pins the arrival law: same config, same
// stream; weights actually steer the class draw.
func TestGenStreamDeterminism(t *testing.T) {
	cfg := StreamConfig{Seed: 7, Mix: testMix(), Jobs: 200, Rate: 10}
	a, err := GenStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenStream(cfg)
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	counts := make(map[string]int)
	for i := range a {
		if a[i].At != b[i].At || a[i].Spec.Name != b[i].Spec.Name {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		counts[a[i].Spec.Name]++
	}
	for _, spec := range testMix() {
		if counts[spec.Name] == 0 {
			t.Errorf("class %s never drawn in %d jobs", spec.Name, cfg.Jobs)
		}
	}
	// osu-micro has twice the weight of dnn-storm: it must be drawn more.
	if counts["osu-micro"] <= counts["dnn-storm"] {
		t.Errorf("weight-2 class drawn %d times, weight-1 class %d times",
			counts["osu-micro"], counts["dnn-storm"])
	}
}

// TestCoTenancySlower proves contention reaches the schedule: the same job
// finishes strictly later when a neighbor shares its socket than solo.
func TestCoTenancySlower(t *testing.T) {
	node := topo.NodeA()
	spec := JobSpec{Name: "a", Collective: "allreduce", MsgBytes: 2 << 20, Calls: 2, Ranks: 8, Placement: PlacePack, Weight: 1}
	neighbor := JobSpec{Name: "b", Collective: "alltoall", MsgBytes: 2 << 20, Calls: 4, Ranks: 8, Placement: PlacePack, Weight: 1}

	solo := NewScheduler(node, PlaceAuto)
	rs, err := solo.Run([]Arrival{{At: 0, Spec: spec}})
	if err != nil {
		t.Fatal(err)
	}
	co := NewScheduler(node, PlaceAuto)
	rc, err := co.Run([]Arrival{{At: 0, Spec: spec}, {At: 0, Spec: neighbor}})
	if err != nil {
		t.Fatal(err)
	}
	var coA JobResult
	for _, r := range rc {
		if r.ID == 0 {
			coA = r
		}
	}
	if !(rs[0].Makespan() < coA.Makespan()) {
		t.Errorf("co-tenant makespan %v not strictly above solo %v", coA.Makespan(), rs[0].Makespan())
	}
	if coA.Wait() != 0 {
		t.Errorf("job a queued %v despite free cores", coA.Wait())
	}
}

// TestPackVsSpreadDiffer proves the placement override changes the
// schedule: the same stream under pack and spread yields different leases
// and different makespans.
func TestPackVsSpreadDiffer(t *testing.T) {
	node := topo.NodeA()
	spec := JobSpec{Name: "wide", Collective: "allreduce", MsgBytes: 4 << 20, Calls: 2, Ranks: 8, Placement: PlaceAuto, Weight: 1}
	run := func(p Placement) (JobResult, string) {
		s := NewScheduler(node, p)
		rs, err := s.Run([]Arrival{{At: 0, Spec: spec}})
		if err != nil {
			t.Fatal(err)
		}
		return rs[0], strings.Join(s.EventLog(), "\n")
	}
	pack, plog := run(PlacePack)
	spread, slog := run(PlaceSpread)
	if plog == slog {
		t.Errorf("pack and spread produced identical event logs:\n%s", plog)
	}
	if pack.Makespan() == spread.Makespan() {
		t.Errorf("pack and spread makespans identical: %v", pack.Makespan())
	}
	if !strings.Contains(plog, "sockets=[8 0]") {
		t.Errorf("pack log missing single-socket lease:\n%s", plog)
	}
	if !strings.Contains(slog, "sockets=[4 4]") {
		t.Errorf("spread log missing balanced lease:\n%s", slog)
	}
}

// TestQueueingUnderLoad proves admission control works: when a job cannot
// fit it queues (head-of-line) and is admitted at a completion.
func TestQueueingUnderLoad(t *testing.T) {
	node := topo.NodeB() // 48 cores
	// Each job wants 32 cores: the second must wait for the first.
	spec := JobSpec{Name: "big", Collective: "allreduce", MsgBytes: 64 << 10, Calls: 1, Ranks: 32, Placement: PlaceSpread, Weight: 1}
	s := NewScheduler(node, PlaceAuto)
	rs, err := s.Run([]Arrival{{At: 0, Spec: spec}, {At: 0, Spec: spec}})
	if err != nil {
		t.Fatal(err)
	}
	var first, second JobResult
	for _, r := range rs {
		if r.ID == 0 {
			first = r
		} else {
			second = r
		}
	}
	if first.Wait() != 0 {
		t.Errorf("first job waited %v on an empty machine", first.Wait())
	}
	if second.Wait() <= 0 {
		t.Errorf("second job did not queue: wait %v", second.Wait())
	}
	if second.Admit != first.Done {
		t.Errorf("second job admitted at %v, want first completion %v", second.Admit, first.Done)
	}
}

// TestFaultIsolation proves one tenant's injected faults recover without
// perturbing its neighbor's schedule: the neighbor's event-log lines are
// byte-identical whether or not the long-running co-tenant is faulty.
func TestFaultIsolation(t *testing.T) {
	node := topo.NodeA()
	faulty := JobSpec{Name: "chaos", Collective: "allreduce", MsgBytes: 256 << 10, Calls: 4, Ranks: 4, Placement: PlacePack, Weight: 1, FaultSeed: 3}
	neighbor := JobSpec{Name: "calm", Collective: "allreduce", MsgBytes: 32 << 10, Calls: 1, Ranks: 2, Placement: PlacePack, Weight: 1}

	run := func(seed uint64) ([]JobResult, []string) {
		f := faulty
		f.FaultSeed = seed
		s := NewScheduler(node, PlaceAuto)
		rs, err := s.Run([]Arrival{{At: 0, Spec: f}, {At: 0, Spec: neighbor}})
		if err != nil {
			t.Fatal(err)
		}
		return rs, s.EventLog()
	}
	faultRes, faultLog := run(3)
	cleanRes, cleanLog := run(0)

	neighborLines := func(log []string) []string {
		var out []string
		for _, l := range log {
			if strings.Contains(l, "job=1") {
				out = append(out, l)
			}
		}
		return out
	}
	fn, cn := neighborLines(faultLog), neighborLines(cleanLog)
	if strings.Join(fn, "\n") != strings.Join(cn, "\n") {
		t.Errorf("neighbor schedule perturbed by co-tenant faults:\nfaulty run:\n%s\nclean run:\n%s",
			strings.Join(fn, "\n"), strings.Join(cn, "\n"))
	}

	byID := func(rs []JobResult, id int) JobResult {
		for _, r := range rs {
			if r.ID == id {
				return r
			}
		}
		t.Fatalf("job %d missing from results", id)
		return JobResult{}
	}
	fj, cj := byID(faultRes, 0), byID(cleanRes, 0)
	if fj.Outcome == resilient.Undiagnosed {
		t.Errorf("faulty tenant UNDIAGNOSED (outcome %s)", fj.Outcome)
	}
	if fj.Outcome == resilient.CleanPass {
		t.Errorf("fault seed 3 injected nothing (outcome %s)", fj.Outcome)
	}
	if !(cj.Makespan() < fj.Makespan()) {
		t.Errorf("faulty run %v not slower than clean run %v", fj.Makespan(), cj.Makespan())
	}
	// The faulty tenant must outlive the neighbor so the neighbor's whole
	// schedule ran under identical co-tenancy in both runs.
	if !(byID(cleanRes, 1).Done < cj.Done) {
		t.Errorf("test premise broken: neighbor outlived the long-running tenant")
	}
}

// TestSweepAndGate runs the harness at three offered loads with a pure
// oracle and checks the aggregate metrics and the gate.
func TestSweepAndGate(t *testing.T) {
	node := topo.NodeA()
	// Service scales with ranks and contention: enough structure for
	// queueing at high load.
	oracle := func(spec JobSpec, perSocket, ext []int) float64 {
		s := 1e-3 * float64(spec.Ranks) * float64(spec.Calls)
		for sk := range perSocket {
			if perSocket[sk] > 0 && ext[sk] > 0 {
				s *= 1 + 0.1*float64(ext[sk])
			}
		}
		return s
	}
	rates := []float64{5, 20, 80}
	points, err := Sweep(node, PlaceAuto, testMix(), 42, 30, rates, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d load points, want 3", len(points))
	}
	for i, lp := range points {
		if lp.Jobs != 30 {
			t.Errorf("point %d completed %d jobs, want 30", i, lp.Jobs)
		}
		if lp.Throughput <= 0 || lp.P50 <= 0 || lp.P99 < lp.P50 {
			t.Errorf("point %d has degenerate stats: %+v", i, lp)
		}
		if len(lp.Classes) != 3 {
			t.Errorf("point %d has %d classes, want 3", i, len(lp.Classes))
		}
	}
	// Higher offered load cannot lower p99 on the same stream seed.
	if points[2].P99 < points[0].P99 {
		t.Errorf("p99 fell with load: %v at rate %v vs %v at rate %v",
			points[2].P99, rates[2], points[0].P99, rates[0])
	}
	if v := Gate(points, 0); len(v) != 0 {
		t.Errorf("gate without budget reported violations: %v", v)
	}
	if v := Gate(points, 1e-12); len(v) == 0 {
		t.Errorf("gate with impossible budget passed")
	}
	if out := Render(points); !strings.Contains(out, "tput(j/s)") || !strings.Contains(out, "dnn-storm") {
		t.Errorf("render output malformed:\n%s", out)
	}
}
