package serve

import (
	"fmt"
	"io"

	"yhccl/internal/topo"
)

// Overload robustness: past the queueing knee an open-loop stream grows
// the queue without bound, and with it every admitted job's wait. The
// serving answer is admission control — bound the queue, shed the excess
// deterministically, and keep every job the system *did* accept inside
// its deadline. The overload gate drives the reference mix at 1.5x the
// saturating rate of the default sweep and holds the scheduler to that
// contract: sheds happen (the budget is real), p99 stays bounded, and no
// admitted job misses its deadline.

// OverloadRate is the overload operating point: 1.5x the saturating rate
// of the reference sweep (1600 jobs/s — the knee of the default mix on
// NodeA sits near 1000 jobs/s).
const OverloadRate = 2400

// OverloadQueueBudget is the admission-queue bound the overload gate
// runs under. At the overload rate the queue pins at the budget, so the
// worst-case wait of any admitted job is the budget's drain time — that
// is what makes per-class deadlines honorable at all under overload.
const OverloadQueueBudget = 16

// OverloadMix is the reference mix with per-class deadlines attached:
// generous multiples of each class's saturated makespan, tight enough
// that an unbounded queue blows them within a few hundred arrivals.
func OverloadMix() []JobSpec {
	mix := DefaultMix()
	for i := range mix {
		switch mix[i].Name {
		case "dnn-storm":
			mix[i].Deadline = 1.0
		default:
			mix[i].Deadline = 0.5
		}
	}
	return mix
}

// OverloadGate runs the overload point and returns the first violated
// invariant: the queue budget must actually shed (a gate that never
// sheds is not testing overload), p99 over admitted jobs must stay
// within budget, no admitted job may miss its deadline, and no tenant
// may go UNDIAGNOSED. The load point is written to w.
func OverloadGate(w io.Writer, node *topo.Node, seed uint64, jobs int, p99Budget float64) error {
	cfg := StreamConfig{
		Seed:        seed,
		Mix:         OverloadMix(),
		Jobs:        jobs,
		Rate:        OverloadRate,
		QueueBudget: OverloadQueueBudget,
	}
	lp, err := RunLoad(node, PlaceAuto, cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "overload point: node=%s rate=%.0f jobs/s queue-budget=%d seed=%d jobs=%d\n\n",
		node.Name, cfg.Rate, cfg.QueueBudget, seed, jobs)
	fmt.Fprint(w, Render([]LoadPoint{lp}))
	fmt.Fprintf(w, "\nadmitted=%d shed=%d (%.1f%%) deadline-violations=%d\n",
		lp.Jobs, lp.Shed, 100*float64(lp.Shed)/float64(lp.Jobs+lp.Shed), lp.DeadlineViolations)
	if lp.Shed == 0 {
		return fmt.Errorf("serve overload gate: offered rate %.0f shed nothing — not an overload point", cfg.Rate)
	}
	if vs := Gate([]LoadPoint{lp}, p99Budget); len(vs) > 0 {
		for _, v := range vs {
			fmt.Fprintf(w, "GATE VIOLATION: %s\n", v)
		}
		return fmt.Errorf("serve overload gate: %d violations", len(vs))
	}
	fmt.Fprintln(w, "serve overload gate: PASS")
	return nil
}
