package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"yhccl/internal/resilient"
	"yhccl/internal/topo"
)

// Open-loop arrival harness: a seeded PRNG draws exponential interarrivals
// at an offered rate and weight-proportional job classes, the scheduler
// runs the stream to completion, and the harness aggregates per-class
// p50/p99 makespans and aggregate throughput. Everything downstream of the
// seed is deterministic, so a load point is replayable byte-for-byte.

// splitmix64 is the stream PRNG (same generator internal/fault uses, kept
// private there).
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// StreamConfig parameterizes one open-loop arrival stream.
type StreamConfig struct {
	Seed uint64
	// Mix is the set of job classes; classes are drawn with probability
	// proportional to their Weight.
	Mix []JobSpec
	// Jobs is the stream length.
	Jobs int
	// Rate is the offered load in job arrivals per virtual second;
	// interarrivals are exponential with mean 1/Rate.
	Rate float64
	// QueueBudget bounds the scheduler's admission queue (0 = unbounded):
	// arrivals past the budget are shed deterministically (reject-newest)
	// instead of queuing without bound under overload.
	QueueBudget int
}

// GenStream draws a deterministic arrival stream from the config.
func GenStream(cfg StreamConfig) ([]Arrival, error) {
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("serve: stream needs a positive job count")
	}
	if !(cfg.Rate > 0) {
		return nil, fmt.Errorf("serve: stream needs a positive offered rate")
	}
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("serve: stream needs a non-empty mix")
	}
	totalW := 0.0
	for _, spec := range cfg.Mix {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		totalW += spec.Weight
	}
	if !(totalW > 0) {
		return nil, fmt.Errorf("serve: mix has no positive weight")
	}
	rng := splitmix64{state: cfg.Seed}
	rng.next() // discard the first output: low-entropy seeds warm up
	t := 0.0
	arrivals := make([]Arrival, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		t += -math.Log(1-rng.float64()) / cfg.Rate
		v := rng.float64() * totalW
		pick := cfg.Mix[len(cfg.Mix)-1]
		for _, spec := range cfg.Mix {
			if v < spec.Weight {
				pick = spec
				break
			}
			v -= spec.Weight
		}
		arrivals = append(arrivals, Arrival{At: t, Spec: pick})
	}
	return arrivals, nil
}

// ClassStats aggregates one job class at one load point.
type ClassStats struct {
	Name string
	Jobs int
	P50  float64 // median submission-to-completion makespan
	P99  float64
}

// LoadPoint is the harness output for one offered rate.
type LoadPoint struct {
	Rate       float64
	Jobs       int
	Makespan   float64 // virtual time of the last completion
	Throughput float64 // aggregate throughput: Jobs / Makespan
	P50        float64 // across all classes
	P99        float64
	Classes    []ClassStats // sorted by class name
	Outcomes   map[resilient.Outcome]int
	Undiag     int // jobs the supervisor could not diagnose
	// Shed counts arrivals rejected by the queue budget; Jobs and the
	// percentiles cover admitted jobs only.
	Shed int
	// DeadlineViolations counts admitted jobs that finished past their
	// spec deadline.
	DeadlineViolations int
	EventLog           []string
	Placement          Placement
}

// percentile returns the nearest-rank q-quantile of a sorted slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// RunLoad generates one stream and runs it through a fresh scheduler.
func RunLoad(node *topo.Node, placement Placement, cfg StreamConfig, oracle Oracle) (LoadPoint, error) {
	arrivals, err := GenStream(cfg)
	if err != nil {
		return LoadPoint{}, err
	}
	s := NewScheduler(node, placement)
	if oracle != nil {
		s.SetServiceOracle(oracle)
	}
	s.SetQueueBudget(cfg.QueueBudget)
	results, err := s.Run(arrivals)
	if err != nil {
		return LoadPoint{}, err
	}
	return summarize(results, cfg.Rate, placement, s.EventLog()), nil
}

// summarize folds completed-job results into a LoadPoint.
func summarize(results []JobResult, rate float64, placement Placement, log []string) LoadPoint {
	lp := LoadPoint{
		Rate:      rate,
		Outcomes:  make(map[resilient.Outcome]int),
		EventLog:  log,
		Placement: placement,
	}
	var all []float64
	byClass := make(map[string][]float64)
	for _, r := range results {
		if r.Shed {
			lp.Shed++
			continue
		}
		lp.Jobs++
		ms := r.Makespan()
		all = append(all, ms)
		byClass[r.Class] = append(byClass[r.Class], ms)
		if r.Done > lp.Makespan {
			lp.Makespan = r.Done
		}
		lp.Outcomes[r.Outcome]++
		if r.Outcome == resilient.Undiagnosed {
			lp.Undiag++
		}
		if r.DeadlineMiss() {
			lp.DeadlineViolations++
		}
	}
	sort.Float64s(all)
	lp.P50 = percentile(all, 0.50)
	lp.P99 = percentile(all, 0.99)
	if lp.Makespan > 0 {
		lp.Throughput = float64(lp.Jobs) / lp.Makespan
	}
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ms := byClass[name]
		sort.Float64s(ms)
		lp.Classes = append(lp.Classes, ClassStats{
			Name: name,
			Jobs: len(ms),
			P50:  percentile(ms, 0.50),
			P99:  percentile(ms, 0.99),
		})
	}
	return lp
}

// Sweep runs the same seeded mix at several offered rates (one fresh
// scheduler per point — measurements do not leak across points, though
// within a point they are memoized).
func Sweep(node *topo.Node, placement Placement, mix []JobSpec, seed uint64, jobs int, rates []float64, oracle Oracle) ([]LoadPoint, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("serve: sweep needs at least one offered rate")
	}
	points := make([]LoadPoint, 0, len(rates))
	for _, rate := range rates {
		lp, err := RunLoad(node, placement, StreamConfig{Seed: seed, Mix: mix, Jobs: jobs, Rate: rate}, oracle)
		if err != nil {
			return nil, err
		}
		points = append(points, lp)
	}
	return points, nil
}

// Gate checks serving invariants over a sweep: every fault-seeded tenant
// must at least diagnose (zero UNDIAGNOSED anywhere), the aggregate p99
// makespan at every load point must stay within budget, and no admitted
// job may finish past its deadline — under overload the scheduler must
// protect latency by shedding at admission, never by serving admitted
// jobs late. Returns the violations (empty means pass).
func Gate(points []LoadPoint, p99Budget float64) []string {
	var violations []string
	for _, lp := range points {
		if lp.Undiag > 0 {
			violations = append(violations,
				fmt.Sprintf("rate=%.3f: %d UNDIAGNOSED jobs", lp.Rate, lp.Undiag))
		}
		if p99Budget > 0 && lp.P99 > p99Budget {
			violations = append(violations,
				fmt.Sprintf("rate=%.3f: p99 %.6fs exceeds budget %.6fs", lp.Rate, lp.P99, p99Budget))
		}
		if lp.DeadlineViolations > 0 {
			violations = append(violations,
				fmt.Sprintf("rate=%.3f: %d admitted jobs missed their deadline", lp.Rate, lp.DeadlineViolations))
		}
	}
	return violations
}

// Render formats a sweep as the throughput-vs-offered-load table used by
// the CLI and EXPERIMENTS.md.
func Render(points []LoadPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s %6s %6s %12s %12s %12s %12s\n",
		"rate(j/s)", "place", "jobs", "shed", "tput(j/s)", "p50(s)", "p99(s)", "span(s)")
	for _, lp := range points {
		fmt.Fprintf(&b, "%-10.3f %-9s %6d %6d %12.4f %12.6f %12.6f %12.4f\n",
			lp.Rate, lp.Placement, lp.Jobs, lp.Shed, lp.Throughput, lp.P50, lp.P99, lp.Makespan)
		for _, c := range lp.Classes {
			fmt.Fprintf(&b, "  %-17s %6d %12s %12.6f %12.6f\n",
				c.Name, c.Jobs, "", c.P50, c.P99)
		}
	}
	return b.String()
}
