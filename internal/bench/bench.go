// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation, each regenerating the corresponding series
// from the simulated machines. Runners return structured Figures (so the
// test suite can assert the shapes the paper reports) and print
// OSU-benchmark-style tables.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// Series is one curve of a figure.
type Series struct {
	// Name is the legend label ("Socket-aware MA (ours)", "DPML", ...).
	Name string
	// Y holds the measured values, one per figure X point.
	Y []float64
}

// Figure is a regenerated table/figure.
type Figure struct {
	// ID is the experiment id ("fig9a", "table4", ...).
	ID string
	// Title describes the experiment.
	Title string
	// XLabel and XValues define the sweep axis (message bytes, node
	// counts, ...).
	XLabel  string
	XValues []int64
	// YLabel describes the measured quantity.
	YLabel string
	// Series are the per-algorithm curves.
	Series []Series
	// Baseline, if non-empty, names the series others are shown relative
	// to when printing (the paper's "relative time overhead").
	Baseline string
	// Notes carry reproduction caveats shown under the table.
	Notes []string
}

// Runner regenerates one experiment. quick trims the sweep for tests.
type Runner func(quick bool) (*Figure, error)

// registry maps experiment ids to runners in display order.
var registry []struct {
	id     string
	title  string
	runner Runner
}

func register(id, title string, r Runner) {
	registry = append(registry, struct {
		id     string
		title  string
		runner Runner
	}{id, title, r})
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Describe returns the experiment titles keyed by id.
func Describe() map[string]string {
	out := make(map[string]string, len(registry))
	for _, e := range registry {
		out[e.id] = e.title
	}
	return out
}

// Run executes one experiment by id.
func Run(id string, quick bool) (*Figure, error) {
	for _, e := range registry {
		if e.id == id {
			return e.runner(quick)
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// find returns the series with the given name.
func (f *Figure) find(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// Value returns series `name` at x index i (helper for tests).
func (f *Figure) Value(name string, i int) (float64, bool) {
	s := f.find(name)
	if s == nil || i >= len(s.Y) {
		return 0, false
	}
	return s.Y[i], true
}

// Fprint renders the figure as an aligned table. When Baseline is set, the
// baseline column shows absolute values and the others the ratio to it
// (the paper's relative-overhead presentation).
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
	base := f.find(f.Baseline)
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		name := s.Name
		if base != nil && s.Name != f.Baseline {
			name += " (rel)"
		}
		cols = append(cols, name)
	}
	rows := make([][]string, len(f.XValues))
	for i, x := range f.XValues {
		row := []string{formatX(f.XLabel, x)}
		for _, s := range f.Series {
			v := s.Y[i]
			if base != nil && s.Name != f.Baseline && base.Y[i] != 0 {
				row = append(row, fmt.Sprintf("%.2fx", v/base.Y[i]))
			} else {
				row = append(row, formatY(f.YLabel, v))
			}
		}
		rows[i] = row
	}
	printAligned(w, cols, rows)
	if f.Baseline != "" {
		fmt.Fprintf(w, "baseline column %q in %s; others relative to it\n", f.Baseline, f.YLabel)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// FprintCSV renders the figure as CSV (one row per X value, one column per
// series) for plotting tools.
func (f *Figure) FprintCSV(w io.Writer) {
	fmt.Fprintf(w, "x")
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%q", s.Name)
	}
	fmt.Fprintln(w)
	for i, x := range f.XValues {
		fmt.Fprintf(w, "%d", x)
		for _, s := range f.Series {
			fmt.Fprintf(w, ",%g", s.Y[i])
		}
		fmt.Fprintln(w)
	}
}

func formatX(label string, x int64) string {
	if strings.Contains(label, "bytes") || strings.Contains(label, "Msg") {
		return ByteSize(x)
	}
	return fmt.Sprintf("%d", x)
}

func formatY(label string, v float64) string {
	switch {
	case strings.Contains(label, "us"):
		return fmt.Sprintf("%.1f", v*1e6)
	case strings.Contains(label, "GB/s"):
		return fmt.Sprintf("%.1f", v/1e9)
	case strings.Contains(label, "img/s"):
		return fmt.Sprintf("%.1f", v)
	case strings.Contains(label, "seconds"):
		return fmt.Sprintf("%.3f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// ByteSize renders 65536 as "64KB".
func ByteSize(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}

func printAligned(w io.Writer, cols []string, rows [][]string) {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(cols)
	for _, r := range rows {
		line(r)
	}
}

// msgSizes returns the paper's 64 KB - 256 MB sweep (13 points), or a
// 3-point subset in quick mode. The quick large point is 64 MB: NodeA's
// 294 MB of cache absorbs anything smaller, hiding the large-message
// regime the paper's headline results live in.
func msgSizes(quick bool) []int64 {
	if quick {
		return []int64{64 << 10, 2 << 20, 64 << 20}
	}
	var out []int64
	for s := int64(64 << 10); s <= 256<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// smallMsgSizes is the 8 KB - 8 MB all-gather sweep.
func smallMsgSizes(quick bool) []int64 {
	if quick {
		return []int64{8 << 10, 256 << 10, 2 << 20}
	}
	var out []int64
	for s := int64(8 << 10); s <= 8<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// steadyState runs body twice on the machine (warm-up + measured) and
// returns the measured makespan, mirroring the OSU iteration loop: the
// first run's makespan is discarded, it exists only to populate the
// residency trackers; the second run then starts from the steady-state
// cache contents an application's iteration loop would see.
//
// The contract this depends on: the body must allocate through
// PersistentBuffer (or otherwise reuse buffers), so the regions the warm-up
// run left resident are the same regions the measured run touches. A body
// that allocates fresh buffers per run would silently measure a cold run —
// the warm-up's residency would belong to orphaned buffer IDs. That
// mistake is cheap to detect: a correct body leaves data resident when the
// warm-up finishes, so an empty tracker means the contract is broken.
func steadyState(m *mpi.Machine, body func(r *mpi.Rank)) float64 {
	m.MustRun(body)
	warmed := int64(0)
	for s := 0; s < m.Node.Sockets; s++ {
		warmed += m.Model.CacheOccupancy(s)
	}
	if warmed == 0 {
		panic("bench: steadyState warm-up run left no cache residency; " +
			"the body must reuse buffers (PersistentBuffer) so the measured " +
			"run starts warm")
	}
	return m.MustRun(body)
}

// arRunner builds a steady-state all-reduce measurement for one algorithm
// at message size sBytes.
func measureAllreduce(node *topo.Node, p int, alg coll.ARFunc, sBytes int64, o coll.Options) float64 {
	n := sBytes / memmodel.ElemSize
	m := mpi.NewMachine(node, p, false)
	return steadyState(m, func(r *mpi.Rank) {
		sb := r.PersistentBuffer("bench/sb", n)
		rb := r.PersistentBuffer("bench/rb", n)
		r.Warm(sb, 0, n) // the application updates buffers each iteration
		r.Warm(rb, 0, n)
		alg(r, r.World(), sb, rb, n, mpi.Sum, o)
	})
}

// measureReduceScatter measures a reduce-scatter at total message sBytes.
func measureReduceScatter(node *topo.Node, p int, alg coll.RSFunc, sBytes int64, o coll.Options) float64 {
	n := sBytes / memmodel.ElemSize / int64(p)
	if n < 1 {
		n = 1
	}
	m := mpi.NewMachine(node, p, false)
	return steadyState(m, func(r *mpi.Rank) {
		sb := r.PersistentBuffer("bench/sb", n*int64(p))
		rb := r.PersistentBuffer("bench/rb", n)
		r.Warm(sb, 0, n*int64(p))
		r.Warm(rb, 0, n)
		alg(r, r.World(), sb, rb, n, mpi.Sum, o)
	})
}

// measureReduce measures a rooted reduce at message sBytes.
func measureReduce(node *topo.Node, p int, alg coll.ReduceFunc, sBytes int64, o coll.Options) float64 {
	n := sBytes / memmodel.ElemSize
	m := mpi.NewMachine(node, p, false)
	return steadyState(m, func(r *mpi.Rank) {
		sb := r.PersistentBuffer("bench/sb", n)
		rb := r.PersistentBuffer("bench/rb", n)
		r.Warm(sb, 0, n)
		r.Warm(rb, 0, n)
		alg(r, r.World(), sb, rb, n, mpi.Sum, 0, o)
	})
}

// measureBcast measures a broadcast at message sBytes.
func measureBcast(node *topo.Node, p int, alg coll.BcastFunc, sBytes int64, o coll.Options) float64 {
	n := sBytes / memmodel.ElemSize
	m := mpi.NewMachine(node, p, false)
	return steadyState(m, func(r *mpi.Rank) {
		buf := r.PersistentBuffer("bench/buf", n)
		r.Warm(buf, 0, n)
		alg(r, r.World(), buf, n, 0, o)
	})
}

// measureAllgather measures an all-gather at per-rank contribution sBytes.
func measureAllgather(node *topo.Node, p int, alg coll.AGFunc, sBytes int64, o coll.Options) float64 {
	n := sBytes / memmodel.ElemSize
	m := mpi.NewMachine(node, p, false)
	return steadyState(m, func(r *mpi.Rank) {
		sb := r.PersistentBuffer("bench/sb", n)
		rb := r.PersistentBuffer("bench/rb", n*int64(p))
		r.Warm(sb, 0, n)
		alg(r, r.World(), sb, rb, n, o)
	})
}

// sweep fills a Figure series by applying measure to each size.
func sweep(sizes []int64, measure func(sBytes int64) float64) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = measure(s)
	}
	return out
}

// sortedKeys returns map keys in sorted order (stable table columns).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
