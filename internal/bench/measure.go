package bench

import (
	"yhccl/internal/coll"
	"yhccl/internal/topo"
)

// Exported measurement entry points for the plan tuner (internal/tune).
// These are the exact harness the figures use — same steady-state warm-up
// contract, same machine construction — so a tuner candidate measured here
// and a figure baseline measured by the sweep see identical simulated
// times. That identity is what makes the "synthesized plans beat or match
// every hand-written algorithm" gate hold exactly on ties: the tuner's
// seed candidates ARE the figure baselines, measured by the same code.

// NodeOptions returns the paper's per-node tuning (Imax 256 KB on NodeA,
// 128 KB on NodeB, §5.3) — the option base every figure sweep uses.
func NodeOptions(node *topo.Node) coll.Options { return nodeOptions(node) }

// MsgSizes returns the 64 KB - 256 MB reduction sweep (13 points), or the
// 3-point quick subset.
func MsgSizes(quick bool) []int64 { return msgSizes(quick) }

// SmallMsgSizes returns the 8 KB - 8 MB all-gather sweep (11 points), or
// the 3-point quick subset.
func SmallMsgSizes(quick bool) []int64 { return smallMsgSizes(quick) }

// MeasureAllreduce measures an all-reduce algorithm at message sBytes on a
// fresh machine, returning the steady-state simulated seconds.
func MeasureAllreduce(node *topo.Node, p int, alg coll.ARFunc, sBytes int64, o coll.Options) float64 {
	return measureAllreduce(node, p, alg, sBytes, o)
}

// MeasureReduceScatter measures a reduce-scatter at total message sBytes.
func MeasureReduceScatter(node *topo.Node, p int, alg coll.RSFunc, sBytes int64, o coll.Options) float64 {
	return measureReduceScatter(node, p, alg, sBytes, o)
}

// MeasureReduce measures a rooted reduce at message sBytes.
func MeasureReduce(node *topo.Node, p int, alg coll.ReduceFunc, sBytes int64, o coll.Options) float64 {
	return measureReduce(node, p, alg, sBytes, o)
}

// MeasureBcast measures a broadcast at message sBytes.
func MeasureBcast(node *topo.Node, p int, alg coll.BcastFunc, sBytes int64, o coll.Options) float64 {
	return measureBcast(node, p, alg, sBytes, o)
}

// MeasureAllgather measures an all-gather at per-rank contribution sBytes.
func MeasureAllgather(node *topo.Node, p int, alg coll.AGFunc, sBytes int64, o coll.Options) float64 {
	return measureAllgather(node, p, alg, sBytes, o)
}
