package bench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yhccl/internal/apps/miniamr"
	"yhccl/internal/cluster"
	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/plan"
	"yhccl/internal/schedule"
	"yhccl/internal/topo"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/determinism.golden from the current implementation")

// goldenCase is one collective execution whose simulated time and traffic
// counters are fingerprinted bit-for-bit.
type goldenCase struct {
	name  string
	bytes int64
	run   func(r *mpi.Rank, n int64)
}

// goldenFingerprint runs a fixed set of collectives on NodeA and returns
// one line per case: the simulated makespans of a cold and a warm
// iteration (hex float64, so every mantissa bit counts) plus every
// traffic counter. Any scheduler or residency-tracker change that alters
// simulated behavior in the slightest shows up here.
func goldenFingerprint(t testing.TB) string {
	t.Helper()
	node := topo.NodeA()
	const p = 16
	o := coll.Options{}
	cases := []goldenCase{
		{"allreduce-yhccl", 64 << 10, func(r *mpi.Rank, n int64) {
			sb := r.PersistentBuffer("g/sb", n)
			rb := r.PersistentBuffer("g/rb", n)
			r.Warm(sb, 0, n)
			coll.AllreduceYHCCL(r, r.World(), sb, rb, n, mpi.Sum, o)
		}},
		{"allreduce-yhccl-large", 16 << 20, func(r *mpi.Rank, n int64) {
			sb := r.PersistentBuffer("g/sb", n)
			rb := r.PersistentBuffer("g/rb", n)
			r.Warm(sb, 0, n)
			coll.AllreduceYHCCL(r, r.World(), sb, rb, n, mpi.Sum, o)
		}},
		{"allreduce-dpml", 2 << 20, func(r *mpi.Rank, n int64) {
			sb := r.PersistentBuffer("g/sb", n)
			rb := r.PersistentBuffer("g/rb", n)
			r.Warm(sb, 0, n)
			coll.AllreduceDPML(r, r.World(), sb, rb, n, mpi.Sum, o)
		}},
		{"allreduce-ring", 2 << 20, func(r *mpi.Rank, n int64) {
			sb := r.PersistentBuffer("g/sb", n)
			rb := r.PersistentBuffer("g/rb", n)
			r.Warm(sb, 0, n)
			coll.AllreduceRing(r, r.World(), sb, rb, n, mpi.Sum, o)
		}},
		{"reducescatter-yhccl", 8 << 20, func(r *mpi.Rank, n int64) {
			pp := int64(r.Size())
			sb := r.PersistentBuffer("g/sb", n)
			rb := r.PersistentBuffer("g/rb", n/pp+1)
			r.Warm(sb, 0, n)
			coll.ReduceScatterYHCCL(r, r.World(), sb, rb, n/pp, mpi.Sum, o)
		}},
		{"bcast-binomial", 4 << 20, func(r *mpi.Rank, n int64) {
			buf := r.PersistentBuffer("g/buf", n)
			r.Warm(buf, 0, n)
			coll.BcastBinomial(r, r.World(), buf, n, 0, o)
		}},
		{"allgather-ring", 1 << 20, func(r *mpi.Rank, n int64) {
			pp := int64(r.Size())
			sb := r.PersistentBuffer("g/sb", n)
			rb := r.PersistentBuffer("g/rb", n*pp)
			r.Warm(sb, 0, n)
			coll.AllgatherRing(r, r.World(), sb, rb, n, o)
		}},
		// p2p pins the shared-memory transport itself (Send/Recv staging
		// loops plus the fused receive+reduce), the charge-generating path
		// under every send/recv-based baseline.
		{"p2p-sendrecv", 2 << 20, func(r *mpi.Rank, n int64) {
			sb := r.PersistentBuffer("g/sb", n)
			rb := r.PersistentBuffer("g/rb", n)
			r.Warm(sb, 0, n)
			c := r.World()
			me := c.CommRank(r.ID())
			peer := me ^ 1
			if me%2 == 0 {
				r.Send(c, peer, sb, 0, n)
				r.Recv(c, peer, rb, 0, n, memmodel.Temporal)
				r.Send(c, peer, sb, 0, n)
			} else {
				r.Recv(c, peer, rb, 0, n, memmodel.Temporal)
				r.Send(c, peer, sb, 0, n)
				r.RecvReduce(c, peer, rb, 0, n, mpi.Sum)
			}
		}},
	}
	// A synthesized plan (the tuner's searched asymmetric-fanout family,
	// lowered through the §3.1 formalism) executed via the graph executor:
	// pins the whole plan→coll lowering path bit-for-bit, so the golden
	// gate covers tuned dispatch the same way it covers the hand-written
	// algorithms. The cache bytes themselves are pinned by internal/tune's
	// byte-identical cold-run test.
	fanoutGraph, err := plan.AllreduceFromSchedule(schedule.Fanout(p, 4))
	if err != nil {
		t.Fatalf("building golden plan graph: %v", err)
	}
	cases = append(cases, goldenCase{"allreduce-plan-fanout", 2 << 20, func(r *mpi.Rank, n int64) {
		sb := r.PersistentBuffer("g/sb", n)
		rb := r.PersistentBuffer("g/rb", n)
		r.Warm(sb, 0, n)
		coll.AllreduceGraph(r, r.World(), fanoutGraph, sb, rb, n, mpi.Sum, o)
	}})
	var sb strings.Builder
	for _, tc := range cases {
		n := tc.bytes / memmodel.ElemSize
		m := mpi.NewMachine(node, p, false)
		cold := m.MustRun(func(r *mpi.Rank) { tc.run(r, n) })
		warm := m.MustRun(func(r *mpi.Rank) { tc.run(r, n) })
		c := m.Model.Counters()
		fmt.Fprintf(&sb, "%s cold=%x warm=%x dav=%d copy=%d dram=%d rfo=%d wb=%d nt=%d xs=%d sync=%d\n",
			tc.name, cold, warm, c.DAV(), c.CopyVolume, c.DRAMTraffic,
			c.RFOBytes, c.WritebackBytes, c.NTStoreBytes, c.CrossSocketBytes, c.SyncCount)
	}
	// Hierarchical multi-node all-reduce: internal/cluster composes the
	// intra-node socket-MA phases with the analytic inter-node ring, all on
	// one persistent representative machine.
	{
		cl := cluster.New(node, 4, p, cluster.IB100())
		n := int64(2<<20) / memmodel.ElemSize
		cold := cl.MustAllreduceTime(cluster.YHCCLHierarchical, n)
		warm := cl.MustAllreduceTime(cluster.YHCCLHierarchical, n)
		c := cl.Machine().Model.Counters()
		fmt.Fprintf(&sb, "cluster-yhccl cold=%x warm=%x dav=%d copy=%d dram=%d rfo=%d wb=%d nt=%d xs=%d sync=%d\n",
			cold, warm, c.DAV(), c.CopyVolume, c.DRAMTraffic,
			c.RFOBytes, c.WritebackBytes, c.NTStoreBytes, c.CrossSocketBytes, c.SyncCount)
	}
	// One MiniAMR step: the application driver layers a real (data-carrying)
	// validation machine on top of the timing model, so both the modelled
	// times and the stencil checksum are pinned bit-for-bit.
	{
		cfg := miniamr.DefaultConfig(2)
		cfg.PerNode = p
		cfg.Timesteps = 1
		cfg.RefineCount = 2048
		cfg.GridDim = 8
		res, err := miniamr.Run(cfg, cluster.YHCCLHierarchical)
		if err != nil {
			t.Fatalf("miniamr golden step: %v", err)
		}
		fmt.Fprintf(&sb, "miniamr-step total=%x comm=%x checksum=%x\n",
			res.TotalTime, res.CommTime, res.Checksum)
	}
	return sb.String()
}

// TestGoldenDeterminism compares the fingerprint against the recorded
// golden file. The file was recorded before the direct-handoff scheduler
// and the residency-tracker rewrite, so this test proves those changes
// preserve simulated behavior exactly. Regenerate (only for intentional
// model changes) with: go test ./internal/bench -run TestGoldenDeterminism -update-golden
func TestGoldenDeterminism(t *testing.T) {
	got := goldenFingerprint(t)
	path := filepath.Join("testdata", "determinism.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to record): %v", err)
	}
	if got != string(want) {
		t.Errorf("simulated behavior diverged from recorded golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenRunTwiceIdentical runs the fingerprint twice in-process and
// requires bit-identical results: the engine must be deterministic
// regardless of Go scheduler interleaving, goroutine reuse or allocator
// state.
func TestGoldenRunTwiceIdentical(t *testing.T) {
	a := goldenFingerprint(t)
	b := goldenFingerprint(t)
	if a != b {
		t.Errorf("two identical runs diverged:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestFigureDeterminism regenerates quick figure sweeps twice and requires
// every series value to be bit-identical, guarding the scheduler fast
// paths across the full experiment harness (flags, barriers, residency,
// DAV counters all folded into the Y values).
func TestFigureDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweeps in -short mode")
	}
	for _, id := range []string{"fig9a", "fig11a"} {
		id := id
		t.Run(id, func(t *testing.T) {
			f1, err := Run(id, true)
			if err != nil {
				t.Fatal(err)
			}
			f2, err := Run(id, true)
			if err != nil {
				t.Fatal(err)
			}
			if len(f1.Series) != len(f2.Series) {
				t.Fatalf("series count differs: %d vs %d", len(f1.Series), len(f2.Series))
			}
			for i, s1 := range f1.Series {
				s2 := f2.Series[i]
				if s1.Name != s2.Name {
					t.Fatalf("series %d name differs: %q vs %q", i, s1.Name, s2.Name)
				}
				for j, v1 := range s1.Y {
					if v1 != s2.Y[j] {
						t.Errorf("%s: series %q x[%d]: %x vs %x (not bit-identical)",
							id, s1.Name, j, v1, s2.Y[j])
					}
				}
			}
		})
	}
}
