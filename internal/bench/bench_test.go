package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"yhccl/internal/topo"
)

// figCache memoizes quick-mode experiment results: runs are deterministic,
// and several tests inspect the same figure.
var figCache = map[string]*Figure{}

// get runs an experiment in quick mode (cached) and fails the test on
// error.
func get(t *testing.T, id string) *Figure {
	t.Helper()
	if f, ok := figCache[id]; ok {
		return f
	}
	f, err := Run(id, true)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	figCache[id] = f
	return f
}

// at returns series value or fails.
func at(t *testing.T, f *Figure, name string, i int) float64 {
	t.Helper()
	v, ok := f.Value(name, i)
	if !ok {
		t.Fatalf("%s: missing series %q point %d", f.ID, name, i)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "table1", "table2", "table3", "table4", "table5",
		"fig9a", "fig9b", "fig10a", "fig10b", "fig11a", "fig11b",
		"fig12a", "fig12b", "fig13a", "fig13b", "fig14a", "fig14b",
		"fig15a", "fig15b", "fig15c", "fig15d", "fig15e",
		"fig16a", "fig16b", "fig17", "fig18a", "fig18b",
		"abl-slice", "abl-socket", "abl-cacherule", "abl-switch", "abl-rgdegree",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(Describe()) != len(IDs()) {
		t.Error("Describe incomplete")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", true); err == nil {
		t.Fatal("expected error")
	}
}

func TestFig9SocketMAWinsLarge(t *testing.T) {
	f := get(t, "fig9a")
	last := len(f.XValues) - 1 // 8 MB in quick mode
	ours := at(t, f, "Socket-aware MA (ours)", last)
	for _, base := range []string{"DPML", "Ring", "Rabenseifner"} {
		if v := at(t, f, base, last); v <= ours {
			t.Errorf("fig9a large: %s (%.3g) should be slower than socket-MA (%.3g)", base, v, ours)
		}
	}
	// The paper's band: ~1.8-4.2x average speedup on large messages.
	if sp := at(t, f, "DPML", last) / ours; sp < 1.5 || sp > 8 {
		t.Errorf("fig9a: DPML speedup %.2fx out of the plausible band", sp)
	}
}

func TestFig9AverageGainsOverDPML(t *testing.T) {
	// The paper reports average large-message speedups over DPML on both
	// nodes (4.18x NodeA, 2.21x NodeB). We assert real average gains on
	// both; the exact NodeA/NodeB ordering depends on where in the sweep
	// the cache-capacity crossovers fall.
	fa, fb := get(t, "fig9a"), get(t, "fig9b")
	gain := func(f *Figure) float64 {
		// Geometric mean of DPML/socket-MA over the >=2MB points (the
		// paper's averages cover the large-message regime).
		prod, cnt := 1.0, 0
		for i, x := range f.XValues {
			if x < 2<<20 {
				continue
			}
			prod *= at(t, f, "DPML", i) / at(t, f, "Socket-aware MA (ours)", i)
			cnt++
		}
		return math.Pow(prod, 1/float64(cnt))
	}
	spA, spB := gain(fa), gain(fb)
	if spB <= 1 {
		t.Errorf("fig9b: no average gain over DPML (%.2fx)", spB)
	}
	if spA <= 1 {
		t.Errorf("fig9a: no average gain over DPML (%.2fx)", spA)
	}
}

func TestFig10And11OursWinLarge(t *testing.T) {
	for _, id := range []string{"fig10a", "fig11a"} {
		f := get(t, id)
		last := len(f.XValues) - 1
		ours := at(t, f, "Socket-aware MA (ours)", last)
		for _, s := range f.Series {
			if s.Name == "Socket-aware MA (ours)" || s.Name == "MA (ours)" {
				continue
			}
			if s.Y[last] <= ours {
				t.Errorf("%s large: %s (%.3g) should be slower than socket-MA (%.3g)", id, s.Name, s.Y[last], ours)
			}
		}
	}
}

func TestFig12AdaptiveShape(t *testing.T) {
	// The paper's Fig. 12 shape: adaptive == t-copy on small messages
	// (both all-temporal), decisively beats t-copy and memmove on large
	// messages, and tracks nt-copy within a small margin at large sizes
	// (see EXPERIMENTS.md on the copy-in RFO pipeline artifact).
	f := get(t, "fig12a")
	small, large := 0, len(f.XValues)-1
	aS := at(t, f, "YHCCL (adaptive)", small)
	if tS := at(t, f, "t-copy", small); aS != tS {
		t.Errorf("fig12a small: adaptive (%.4g) should equal t-copy (%.4g)", aS, tS)
	}
	if ntS := at(t, f, "nt-copy", small); aS >= ntS {
		t.Errorf("fig12a small: adaptive (%.4g) should beat nt-copy (%.4g)", aS, ntS)
	}
	aL := at(t, f, "YHCCL (adaptive)", large)
	if tL := at(t, f, "t-copy", large); tL/aL < 1.1 {
		t.Errorf("fig12a large: adaptive gains only %.2fx over t-copy", tL/aL)
	}
	if mmL := at(t, f, "Memmove", large); mmL/aL < 1.1 {
		t.Errorf("fig12a large: adaptive gains only %.2fx over memmove", mmL/aL)
	}
	if ntL := at(t, f, "nt-copy", large); aL > ntL*1.15 {
		t.Errorf("fig12a large: adaptive (%.4g) strays >15%% from nt-copy (%.4g)", aL, ntL)
	}
}

func TestFig13Fig14AdaptiveWinsLarge(t *testing.T) {
	for _, id := range []string{"fig13a", "fig14a"} {
		f := get(t, id)
		last := len(f.XValues) - 1
		a := at(t, f, "YHCCL (adaptive)", last)
		if v := at(t, f, "t-copy", last); v <= a {
			t.Errorf("%s: t-copy (%.4g) should lose to adaptive (%.4g) on large", id, v, a)
		}
		if v := at(t, f, "Memmove", last); a > v*1.001 {
			t.Errorf("%s: adaptive (%.4g) should not lose to memmove (%.4g)", id, a, v)
		}
	}
}

func TestFig15YHCCLWinsLargeAllreduce(t *testing.T) {
	f := get(t, "fig15c")
	last := len(f.XValues) - 1
	ours := at(t, f, "YHCCL", last)
	slower := 0
	for _, s := range f.Series {
		if s.Name == "YHCCL" {
			continue
		}
		sp := s.Y[last] / ours
		if sp > 1 {
			slower++
		}
		if sp > 15 {
			t.Errorf("fig15c: speedup vs %s = %.1fx implausible", s.Name, sp)
		}
	}
	if slower < len(f.Series)-2 {
		t.Errorf("fig15c large: YHCCL should beat nearly all stand-ins, beat only %d", slower)
	}
}

func TestFig3SmallSlicesSlower(t *testing.T) {
	f := get(t, "fig3")
	y := f.Series[0].Y
	// Slices: 256K, 512K, 1M, 2M, 4M. The 2 MB point (memmove NT kicks in)
	// must be clearly faster than the 256 KB point.
	if y[0] <= y[3] {
		t.Errorf("fig3: 256 KB slices (%.4g) should be slower than 2 MB (%.4g)", y[0], y[3])
	}
	if ratio := y[0] / y[3]; ratio < 1.2 {
		t.Errorf("fig3: small-slice penalty only %.2fx, want >= 1.2x", ratio)
	}
}

func TestTable4Shape(t *testing.T) {
	f := get(t, "table4")
	nt := f.find("nt-copy").Y
	tc := f.find("t-copy").Y
	mm := f.find("memmove").Y
	// 512 KB row: nt >> t, memmove ~ t.
	if nt[0] <= tc[0]*1.3 {
		t.Errorf("table4 @512KB: nt (%.3g) should be ~1.5x t-copy (%.3g)", nt[0], tc[0])
	}
	if rel := mm[0] / tc[0]; rel < 0.9 || rel > 1.1 {
		t.Errorf("table4 @512KB: memmove (%.3g) should match t-copy (%.3g)", mm[0], tc[0])
	}
	// 2 MB row: memmove jumps to ~nt.
	if rel := mm[2] / nt[2]; rel < 0.9 || rel > 1.1 {
		t.Errorf("table4 @2MB: memmove (%.3g) should match nt-copy (%.3g)", mm[2], nt[2])
	}
}

func TestTable5Shape(t *testing.T) {
	f := get(t, "table5")
	cma := f.find("DMA copy (CMA)").Y
	ad := f.find("adaptive-copy").Y
	if ad[0] >= cma[0] || ad[1] >= cma[1] {
		t.Errorf("table5: adaptive (%v) should beat CMA (%v) in both patterns", ad, cma)
	}
	if cma[0] <= cma[1] {
		t.Errorf("table5: one-to-all CMA (%.4g) should be slower than ring CMA (%.4g) (lock contention)", cma[0], cma[1])
	}
}

func TestDAVTablesFormulaMatchesMeasured(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		f := get(t, id)
		formula := f.find("formula").Y
		measured := f.find("measured").Y
		for i := range formula {
			if formula[i] != measured[i] {
				t.Errorf("%s row %d: formula %.0f != measured %.0f", id, i, formula[i], measured[i])
			}
		}
	}
}

func TestFig16aScalability(t *testing.T) {
	f := get(t, "fig16a")
	last := len(f.XValues) - 1 // p = 64
	ours := at(t, f, "YHCCL", last)
	for _, s := range f.Series {
		if s.Name == "YHCCL" {
			continue
		}
		if s.Y[last] <= ours {
			t.Errorf("fig16a p=64: %s (%.4g) should be slower than YHCCL (%.4g)", s.Name, s.Y[last], ours)
		}
	}
	// Hashmi's XPMEM wins at p = 2 (smaller DAV gap, paper §5.5).
	if x, y := at(t, f, "Hashmi's XPMEM", 0), at(t, f, "YHCCL", 0); x >= y {
		t.Errorf("fig16a p=2: XPMEM (%.4g) should beat YHCCL (%.4g)", x, y)
	}
}

func TestFig16bMultiNode(t *testing.T) {
	f := get(t, "fig16b")
	last := len(f.XValues) - 1
	ours := at(t, f, "YHCCL", last)
	for _, s := range f.Series {
		if s.Name == "YHCCL" {
			continue
		}
		sp := s.Y[last] / ours
		if sp <= 1 {
			t.Errorf("fig16b large: %s should lose to YHCCL (%.2fx)", s.Name, sp)
		}
		if sp > 12 {
			t.Errorf("fig16b: speedup vs %s = %.1fx beyond the paper's 8.8x", s.Name, sp)
		}
	}
	// Small message: the tree stand-in wins.
	if tree, y := at(t, f, "MVAPICH2", 0), at(t, f, "YHCCL", 0); tree >= y {
		t.Errorf("fig16b small: tree (%.4g) should beat YHCCL (%.4g)", tree, y)
	}
}

func TestFig17MiniAMR(t *testing.T) {
	f := get(t, "fig17")
	open := f.find("Open MPI").Y
	yh := f.find("YHCCL").Y
	for i := range open {
		if yh[i] >= open[i] {
			t.Errorf("fig17 @%d nodes: YHCCL (%.3g) should beat Open MPI (%.3g)", f.XValues[i], yh[i], open[i])
		}
		sp := open[i] / yh[i]
		if sp > 2.5 {
			t.Errorf("fig17 @%d nodes: speedup %.2fx beyond the paper's 1.67x band", f.XValues[i], sp)
		}
	}
}

func TestFig18CNN(t *testing.T) {
	for _, id := range []string{"fig18a", "fig18b"} {
		f := get(t, id)
		open := f.find("Open MPI").Y
		yh := f.find("YHCCL").Y
		last := len(open) - 1
		if yh[last] <= open[last] {
			t.Errorf("%s @256 nodes: YHCCL (%.1f img/s) should beat Open MPI (%.1f)", id, yh[last], open[last])
		}
		if sp := yh[last] / open[last]; sp < 1.5 || sp > 2.4 {
			t.Errorf("%s: speedup at scale %.2fx, want the paper's ~1.8-2.0x band", id, sp)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	for _, id := range []string{"abl-slice", "abl-socket", "abl-cacherule", "abl-switch", "abl-rgdegree"} {
		f := get(t, id)
		if len(f.Series) == 0 || len(f.Series[0].Y) == 0 {
			t.Errorf("%s produced no data", id)
		}
	}
}

func TestAblationSocketCrossover(t *testing.T) {
	// Socket-aware must win at the 1 MB point (sync-bound regime benefits).
	f := get(t, "abl-socket")
	sock := f.find("socket-aware").Y
	flat := f.find("flat MA").Y
	if sock[1] >= flat[1] {
		t.Errorf("abl-socket @1MB: socket-aware (%.4g) should beat flat (%.4g)", sock[1], flat[1])
	}
}

func TestPredictedSwitchPoints(t *testing.T) {
	// Our self-consistent W > C solution: 2048 KB on NodeA, 1088 KB on
	// NodeB (the paper's 2176/1152 KB omit the m factor; see
	// EXPERIMENTS.md).
	if got := PredictedSwitchBytes(topo.NodeA(), 64); got != 2048<<10 {
		t.Errorf("NodeA switch = %s, want 2048KB", ByteSize(got))
	}
	if got := PredictedSwitchBytes(topo.NodeB(), 48); got != 1088<<10 {
		t.Errorf("NodeB switch = %s, want 1088KB", ByteSize(got))
	}
}

func TestFprintRendersTable(t *testing.T) {
	f := get(t, "fig9a")
	var buf bytes.Buffer
	f.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"fig9a", "64KB", "Socket-aware MA (ours)", "DPML (rel)", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestByteSize(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		64 << 10:  "64KB",
		2 << 20:   "2MB",
		1 << 30:   "1GB",
		3<<10 + 1: "3073B",
	}
	for in, want := range cases {
		if got := ByteSize(in); got != want {
			t.Errorf("ByteSize(%d) = %s, want %s", in, got, want)
		}
	}
}

func TestFprintCSV(t *testing.T) {
	f := &Figure{
		ID: "x", XValues: []int64{1, 2},
		Series: []Series{{Name: "a", Y: []float64{0.5, 1.5}}, {Name: "b", Y: []float64{2, 3}}},
	}
	var buf bytes.Buffer
	f.FprintCSV(&buf)
	want := "x,\"a\",\"b\"\n1,0.5,2\n2,1.5,3\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}
