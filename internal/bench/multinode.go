package bench

import (
	"yhccl/internal/apps/dnn"
	"yhccl/internal/apps/miniamr"
	"yhccl/internal/cluster"
	"yhccl/internal/memmodel"
	"yhccl/internal/topo"
)

// Fig. 16b (multi-node all-reduce), Fig. 17 (MiniAMR) and Fig. 18 (CNN
// training throughput).

func init() {
	register("fig16b", "Multi-node all-reduce, 16 nodes x 64 ranks (NodeA)", fig16b)
	register("fig17", "MiniAMR total time, 1-64 nodes x 64 ranks", fig17)
	register("fig18a", "ResNet-50 training throughput, 1-256 nodes x 24 ranks (Cluster C)", fig18(dnn.ResNet50, "fig18a"))
	register("fig18b", "VGG-16 training throughput, 1-256 nodes x 24 ranks (Cluster C)", fig18(dnn.VGG16, "fig18b"))
}

func fig16b(quick bool) (*Figure, error) {
	// The paper's Fig. 16b sweeps 16 KB - 256 MB; the tree-based
	// implementations' advantage lives at the bottom of that range.
	sizes := []int64{16 << 10, 2 << 20, 64 << 20}
	if !quick {
		sizes = nil
		for s := int64(16 << 10); s <= 256<<20; s *= 2 {
			sizes = append(sizes, s)
		}
	}
	c := cluster.New(topo.NodeA(), 16, 64, cluster.IB100())
	algs := []struct {
		name string
		alg  cluster.Algorithm
	}{
		{"YHCCL", cluster.YHCCLHierarchical},
		{"Intel MPI", cluster.LeaderRing},
		{"MVAPICH2", cluster.LeaderTree},
		{"MPICH", cluster.FlatRing},
		{"OMPI-hcoll", cluster.LeaderTree},
	}
	f := &Figure{
		ID: "fig16b", Title: "Multi-node all-reduce (16 nodes x 64 ranks, 1024 procs)",
		XLabel: "Msg bytes", XValues: sizes, YLabel: "time (us)", Baseline: "YHCCL",
		Notes: []string{"tree-based stand-ins win on small messages, as in the paper"},
	}
	for _, a := range algs {
		a := a
		f.Series = append(f.Series, Series{Name: a.name, Y: sweep(sizes, func(s int64) float64 {
			return c.MustAllreduceTime(a.alg, s/memmodel.ElemSize)
		})})
	}
	return f, nil
}

func fig17(quick bool) (*Figure, error) {
	nodeCounts := []int{1, 2, 4, 8, 16, 32, 64}
	if quick {
		nodeCounts = []int{1, 8, 64}
	}
	f := &Figure{
		ID: "fig17", Title: "MiniAMR total time (64 ranks/node, refine=40000, 20 steps)",
		XLabel: "nodes", YLabel: "time (seconds)",
	}
	var open, yh Series
	open.Name, yh.Name = "Open MPI", "YHCCL"
	for _, nodes := range nodeCounts {
		f.XValues = append(f.XValues, int64(nodes))
		cfg := miniamr.DefaultConfig(nodes)
		if quick {
			cfg.Timesteps = 3
			cfg.GridDim = 6
		}
		ro, err := miniamr.Run(cfg, cluster.LeaderRing)
		if err != nil {
			return nil, err
		}
		ry, err := miniamr.Run(cfg, cluster.YHCCLHierarchical)
		if err != nil {
			return nil, err
		}
		open.Y = append(open.Y, ro.TotalTime)
		yh.Y = append(yh.Y, ry.TotalTime)
	}
	f.Series = []Series{open, yh}
	return f, nil
}

func fig18(model func() dnn.Model, id string) Runner {
	return func(quick bool) (*Figure, error) {
		nodeCounts := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
		if quick {
			nodeCounts = []int{1, 16, 256}
		}
		m := model()
		f := &Figure{
			ID: id, Title: m.Name + " training throughput (24 ranks/node, Cluster C)",
			XLabel: "nodes", YLabel: "throughput (img/s)",
		}
		var open, yh Series
		open.Name, yh.Name = "Open MPI", "YHCCL"
		for _, nodes := range nodeCounts {
			f.XValues = append(f.XValues, int64(nodes))
			cfg := dnn.DefaultConfig(nodes)
			ro, err := dnn.Throughput(cfg, m, cluster.FlatRing)
			if err != nil {
				return nil, err
			}
			ry, err := dnn.Throughput(cfg, m, cluster.YHCCLHierarchical)
			if err != nil {
				return nil, err
			}
			open.Y = append(open.Y, ro.ImagesPerSecond)
			yh.Y = append(yh.Y, ry.ImagesPerSecond)
		}
		f.Series = []Series{open, yh}
		return f, nil
	}
}
