package bench

import (
	"yhccl/internal/coll"
	"yhccl/internal/topo"
)

// Fig. 15: YHCCL against the state-of-the-art MPI implementations on NodeA
// (p=64), one panel per collective. The production libraries are
// represented by the algorithm family each uses intra-node (see DESIGN.md
// §1 and EXPERIMENTS.md):
//
//	Intel MPI  -> RG pipelined tree (Jain et al. is Intel's framework)
//	MVAPICH2   -> socket-aware two-level parallel reduction
//	MPICH      -> Rabenseifner / binomial over two-copy shm send/recv
//	Open MPI   -> ring / linear over CMA kernel copies
//	XPMEM      -> Hashmi's direct-access collectives
//
// The buffers are re-touched before every iteration ("we update the
// sending and receiving buffers before each iteration", §5.5), which is
// why kernel-assisted baselines cannot ride a warm cache.

func init() {
	register("fig15a", "Reduce-scatter vs state-of-the-art stand-ins, NodeA p=64", fig15ReduceScatter)
	register("fig15b", "Reduce vs state-of-the-art stand-ins, NodeA p=64", fig15Reduce)
	register("fig15c", "All-reduce vs state-of-the-art stand-ins, NodeA p=64", fig15Allreduce)
	register("fig15d", "Broadcast vs state-of-the-art stand-ins, NodeA p=64", fig15Bcast)
	register("fig15e", "All-gather vs state-of-the-art stand-ins, NodeA p=64", fig15Allgather)
}

const fig15P = 64

func fig15Node() *topo.Node { return topo.NodeA() }

func fig15ReduceScatter(quick bool) (*Figure, error) {
	sizes := msgSizes(quick)
	algs := []struct {
		name string
		f    coll.RSFunc
	}{
		{"YHCCL", coll.ReduceScatterYHCCL},
		{"DPML", coll.ReduceScatterDPML},
		{"Intel MPI", coll.ReduceScatterRabenseifner},
		{"MVAPICH2", coll.ReduceScatterTwoLevel},
		{"MPICH", coll.ReduceScatterRing},
		{"Open MPI", coll.ReduceScatterRing},
		{"XPMEM", coll.ReduceScatterXPMEM},
	}
	f := &Figure{
		ID: "fig15a", Title: "Reduce-scatter vs state-of-the-art (NodeA, p=64)",
		XLabel: "Msg bytes", XValues: sizes, YLabel: "time (us)", Baseline: "YHCCL",
	}
	for _, a := range algs {
		a := a
		f.Series = append(f.Series, Series{Name: a.name, Y: sweep(sizes, func(s int64) float64 {
			return measureReduceScatter(fig15Node(), fig15P, a.f, s, coll.Options{})
		})})
	}
	return f, nil
}

func fig15Reduce(quick bool) (*Figure, error) {
	sizes := msgSizes(quick)
	algs := []struct {
		name string
		f    coll.ReduceFunc
	}{
		{"YHCCL", coll.ReduceYHCCL},
		{"RG", coll.ReduceRG},
		{"Intel MPI", coll.ReduceRG},
		{"MVAPICH2", coll.ReduceTwoLevel},
		{"MPICH", coll.ReduceDPML},
		{"Open MPI", coll.ReduceDPML},
		{"XPMEM", coll.ReduceXPMEM},
	}
	f := &Figure{
		ID: "fig15b", Title: "Reduce vs state-of-the-art (NodeA, p=64)",
		XLabel: "Msg bytes", XValues: sizes, YLabel: "time (us)", Baseline: "YHCCL",
	}
	for _, a := range algs {
		a := a
		f.Series = append(f.Series, Series{Name: a.name, Y: sweep(sizes, func(s int64) float64 {
			return measureReduce(fig15Node(), fig15P, a.f, s, coll.Options{})
		})})
	}
	return f, nil
}

func fig15Allreduce(quick bool) (*Figure, error) {
	sizes := msgSizes(quick)
	algs := []struct {
		name string
		f    coll.ARFunc
	}{
		{"YHCCL", coll.AllreduceYHCCL},
		{"DPML", coll.AllreduceDPML},
		{"RG", coll.AllreduceRG},
		{"Intel MPI", coll.AllreduceRG},
		{"MVAPICH2", coll.AllreduceTwoLevel},
		{"MPICH", coll.AllreduceRabenseifner},
		{"Open MPI", coll.AllreduceCMA},
		{"XPMEM", coll.AllreduceXPMEM},
	}
	f := &Figure{
		ID: "fig15c", Title: "All-reduce vs state-of-the-art (NodeA, p=64)",
		XLabel: "Msg bytes", XValues: sizes, YLabel: "time (us)", Baseline: "YHCCL",
	}
	for _, a := range algs {
		a := a
		f.Series = append(f.Series, Series{Name: a.name, Y: sweep(sizes, func(s int64) float64 {
			return measureAllreduce(fig15Node(), fig15P, a.f, s, coll.Options{})
		})})
	}
	return f, nil
}

func fig15Bcast(quick bool) (*Figure, error) {
	sizes := msgSizes(quick)
	algs := []struct {
		name string
		f    coll.BcastFunc
	}{
		{"YHCCL", coll.BcastPipelined},
		{"Intel MPI", coll.BcastBinomial},
		{"MVAPICH2", coll.BcastBinomial},
		{"MPICH", coll.BcastBinomial},
		{"Open MPI", coll.BcastCMA},
		{"XPMEM", coll.BcastXPMEM},
	}
	f := &Figure{
		ID: "fig15d", Title: "Broadcast vs state-of-the-art (NodeA, p=64)",
		XLabel: "Msg bytes", XValues: sizes, YLabel: "time (us)", Baseline: "YHCCL",
		Notes: []string{"XPMEM overtakes YHCCL past the memmove NT threshold (paper §5.5)"},
	}
	for _, a := range algs {
		a := a
		f.Series = append(f.Series, Series{Name: a.name, Y: sweep(sizes, func(s int64) float64 {
			return measureBcast(fig15Node(), fig15P, a.f, s, coll.Options{})
		})})
	}
	return f, nil
}

func fig15Allgather(quick bool) (*Figure, error) {
	sizes := smallMsgSizes(quick)
	algs := []struct {
		name string
		f    coll.AGFunc
	}{
		{"YHCCL", coll.AllgatherPipelined},
		{"Intel MPI", coll.AllgatherRing},
		{"MVAPICH2", coll.AllgatherRing},
		{"MPICH", coll.AllgatherRing},
		{"Open MPI", coll.AllgatherRing},
		{"XPMEM", coll.AllgatherXPMEM},
	}
	f := &Figure{
		ID: "fig15e", Title: "All-gather vs state-of-the-art (NodeA, p=64)",
		XLabel: "Msg bytes", XValues: sizes, YLabel: "time (us)", Baseline: "YHCCL",
	}
	for _, a := range algs {
		a := a
		f.Series = append(f.Series, Series{Name: a.name, Y: sweep(sizes, func(s int64) float64 {
			return measureAllgather(fig15Node(), fig15P, a.f, s, coll.Options{})
		})})
	}
	return f, nil
}
