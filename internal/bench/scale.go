package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"yhccl/internal/cluster"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// Cluster-scale sweeps on the event-calendar engine: fig16b's experiment
// extended along the rank axis instead of the message axis, with per-rank
// memory footprints measured (not asserted) so the flat-memory claim is
// checkable in CI.

// engineKind is the simulation core scale experiments run on. The event
// engine is the default — it is what makes 262144+ rank worlds fit; the
// coroutine engine can be selected (yhcclbench -engine) for crossover
// studies but caps the world size it will attempt.
var engineKind = sim.EngineEvent

// SetEngine selects the engine scale experiments run on.
func SetEngine(k sim.EngineKind) { engineKind = k }

// Engine returns the currently selected scale engine.
func Engine() sim.EngineKind { return engineKind }

// coroutineRankCap bounds worlds the coroutine engine is asked to hold: one
// goroutine stack (8 KB+) per rank makes half-million-rank worlds
// pointlessly painful; that regime belongs to the event engine.
const coroutineRankCap = 65536

// Footprint is one measured scale run.
type Footprint struct {
	Ranks           int
	Events          uint64
	MakespanSeconds float64
	WallSeconds     float64
	BytesPerRank    float64
	AllocsPerRank   float64
	GoroutineDelta  int
}

// measureScale compiles one collective, executes it on the selected engine
// and measures the run's allocation and goroutine footprint via
// runtime.ReadMemStats deltas.
func measureScale(c *cluster.Cluster, alg cluster.Algorithm, n int64, o cluster.ScheduleOptions) (Footprint, error) {
	prog, err := c.CompileAllreduce(alg, n, o)
	if err != nil {
		return Footprint{}, err
	}
	ranks := prog.Ranks()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	g0 := runtime.NumGoroutine()
	start := time.Now()
	res, err := sim.RunProgram(engineKind, prog)
	if err != nil {
		return Footprint{}, err
	}
	wall := time.Since(start)
	g1 := runtime.NumGoroutine()
	runtime.ReadMemStats(&m1)
	return Footprint{
		Ranks:           ranks,
		Events:          res.Events,
		MakespanSeconds: res.Makespan.Seconds(),
		WallSeconds:     wall.Seconds(),
		BytesPerRank:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ranks),
		AllocsPerRank:   float64(m1.Mallocs-m0.Mallocs) / float64(ranks),
		GoroutineDelta:  g1 - g0,
	}, nil
}

func (fp Footprint) note(label string) string {
	return fmt.Sprintf("%s @ %d ranks: %.0f B/rank, %.2f allocs/rank, goroutine delta %+d, %d events, wall %.1fs",
		label, fp.Ranks, fp.BytesPerRank, fp.AllocsPerRank, fp.GoroutineDelta, fp.Events, fp.WallSeconds)
}

func init() {
	register("fig16scale", "Cluster all-reduce vs world size, 64 ranks/node (NodeA), event engine", fig16scale)
}

// fig16scale sweeps the fig16b experiment along the rank axis: 64 MB
// all-reduce at 16k - 262k ranks, one series per composition. Inter-node
// ring phases are coarsened to 128 macro-steps per rank, which preserves
// makespans exactly (uniform hop durations) while bounding event counts.
func fig16scale(quick bool) (*Figure, error) {
	nodeCounts := []int{256, 1024, 4096} // x64 ranks: 16384, 65536, 262144
	if quick {
		nodeCounts = []int{256, 1024}
	}
	const msgElems = (64 << 20) / 8 // 64 MB of float64
	opts := cluster.ScheduleOptions{RingSteps: 128}
	algs := []struct {
		name string
		alg  cluster.Algorithm
	}{
		{"YHCCL", cluster.YHCCLHierarchical},
		{"Intel MPI", cluster.LeaderRing},
		{"MVAPICH2", cluster.LeaderTree},
	}
	f := &Figure{
		ID: "fig16scale", Title: "Multi-node all-reduce at scale (64 MB, 64 ranks/node)",
		XLabel: "ranks", YLabel: "time (us)", Baseline: "YHCCL",
		Notes: []string{
			fmt.Sprintf("engine=%s; inter-node rings coarsened to %d macro-steps (makespan-exact)", engineKind, opts.RingSteps),
		},
	}
	for range algs {
		f.Series = append(f.Series, Series{})
	}
	for _, nodes := range nodeCounts {
		ranks := nodes * 64
		if engineKind == sim.EngineCoroutine && ranks > coroutineRankCap {
			f.Notes = append(f.Notes, fmt.Sprintf("%d ranks skipped: beyond the coroutine engine's %d-rank cap", ranks, coroutineRankCap))
			continue
		}
		f.XValues = append(f.XValues, int64(ranks))
		c := cluster.New(topo.NodeA(), nodes, 64, cluster.IB100())
		for i, a := range algs {
			fp, err := measureScale(c, a.alg, msgElems, opts)
			if err != nil {
				return nil, fmt.Errorf("fig16scale %s @ %d ranks: %w", a.name, ranks, err)
			}
			f.Series[i].Name = a.name
			f.Series[i].Y = append(f.Series[i].Y, fp.MakespanSeconds)
			if a.alg == cluster.YHCCLHierarchical {
				f.Notes = append(f.Notes, fp.note(a.name))
			}
		}
	}
	return f, nil
}

// ScaleGate is the CI smoke: a 65536-rank hierarchical sweep and a
// 262144-rank leader-tree run must complete on the event engine within
// wall-clock and per-rank memory budgets, with zero goroutine growth. It
// writes its measurements to w and returns the first budget violation.
func ScaleGate(w io.Writer) error {
	if engineKind != sim.EngineEvent {
		return fmt.Errorf("scale gate runs on the event engine (selected: %s)", engineKind)
	}
	const msgElems = (64 << 20) / 8
	checks := []struct {
		label       string
		nodes       int
		alg         cluster.Algorithm
		maxWall     float64 // seconds
		maxPerRank  float64 // allocated bytes per rank
		maxAllocsPR float64
	}{
		// Budgets are ~4x current measurements — loose enough for slow CI
		// hosts, tight enough that a goroutine (8 KB stack) or an O(steps)
		// allocation per rank blows them immediately.
		{"yhccl/65536", 1024, cluster.YHCCLHierarchical, 60, 512, 8},
		{"leader-tree/262144", 4096, cluster.LeaderTree, 60, 512, 8},
	}
	for _, ck := range checks {
		c := cluster.New(topo.NodeA(), ck.nodes, 64, cluster.IB100())
		fp, err := measureScale(c, ck.alg, msgElems, cluster.ScheduleOptions{RingSteps: 128})
		if err != nil {
			return fmt.Errorf("scale gate %s: %w", ck.label, err)
		}
		fmt.Fprintf(w, "scale %-20s %8d ranks  %10d events  wall %6.1fs  %7.0f B/rank  %5.2f allocs/rank  goroutines %+d\n",
			ck.label, fp.Ranks, fp.Events, fp.WallSeconds, fp.BytesPerRank, fp.AllocsPerRank, fp.GoroutineDelta)
		switch {
		case fp.WallSeconds > ck.maxWall:
			return fmt.Errorf("scale gate %s: wall %.1fs exceeds budget %.0fs", ck.label, fp.WallSeconds, ck.maxWall)
		case fp.BytesPerRank > ck.maxPerRank:
			return fmt.Errorf("scale gate %s: %.0f allocated bytes/rank exceeds budget %.0f (per-rank state is not flat)", ck.label, fp.BytesPerRank, ck.maxPerRank)
		case fp.AllocsPerRank > ck.maxAllocsPR:
			return fmt.Errorf("scale gate %s: %.2f allocs/rank exceeds budget %.2f", ck.label, fp.AllocsPerRank, ck.maxAllocsPR)
		case fp.GoroutineDelta > 2:
			return fmt.Errorf("scale gate %s: goroutine count grew by %d (ranks must not spawn goroutines)", ck.label, fp.GoroutineDelta)
		}
	}
	fmt.Fprintln(w, "scale gate: all budgets met")
	return nil
}
