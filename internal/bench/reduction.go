package bench

import (
	"fmt"

	"yhccl/internal/coll"
	"yhccl/internal/topo"
)

// Figs. 9-11: the movement-avoiding reduction family against DPML, Ring,
// Rabenseifner and RG on NodeA (p=64) and NodeB (p=48), plus Fig. 16a's
// single-node scalability sweep.

func init() {
	register("fig9a", "Reduce-scatter algorithm comparison, NodeA p=64", figReduceScatter(topo.NodeA(), 64))
	register("fig9b", "Reduce-scatter algorithm comparison, NodeB p=48", figReduceScatter(topo.NodeB(), 48))
	register("fig10a", "Reduce algorithm comparison, NodeA p=64", figReduce(topo.NodeA(), 64))
	register("fig10b", "Reduce algorithm comparison, NodeB p=48", figReduce(topo.NodeB(), 48))
	register("fig11a", "All-reduce algorithm comparison, NodeA p=64", figAllreduce(topo.NodeA(), 64))
	register("fig11b", "All-reduce algorithm comparison, NodeB p=48", figAllreduce(topo.NodeB(), 48))
	register("fig16a", "Single-node all-reduce scalability, NodeA p=2..64 @ 64MB", figScalability)
}

// nodeOptions returns the paper's per-node tuning (Imax 256 KB on NodeA,
// 128 KB on NodeB, §5.3).
func nodeOptions(node *topo.Node) coll.Options {
	o := coll.Options{}
	if node.Name == "NodeB" {
		o.SliceMaxBytes = 128 << 10
	}
	return o
}

func figReduceScatter(node *topo.Node, p int) Runner {
	return func(quick bool) (*Figure, error) {
		sizes := msgSizes(quick)
		o := nodeOptions(node)
		algs := []struct {
			name string
			f    coll.RSFunc
		}{
			{"Socket-aware MA (ours)", coll.ReduceScatterSocketMA},
			{"MA (ours)", coll.ReduceScatterMA},
			{"DPML", coll.ReduceScatterDPML},
			{"Ring", coll.ReduceScatterRing},
			{"Rabenseifner", coll.ReduceScatterRabenseifner},
		}
		f := &Figure{
			ID:       fmt.Sprintf("fig9%s", nodeSuffix(node)),
			Title:    fmt.Sprintf("Reduce-scatter comparison (%s, p=%d)", node.Name, p),
			XLabel:   "Msg bytes",
			XValues:  sizes,
			YLabel:   "time (us)",
			Baseline: "Socket-aware MA (ours)",
		}
		for _, a := range algs {
			a := a
			f.Series = append(f.Series, Series{Name: a.name, Y: sweep(sizes, func(s int64) float64 {
				return measureReduceScatter(node, p, a.f, s, o)
			})})
		}
		return f, nil
	}
}

func figReduce(node *topo.Node, p int) Runner {
	return func(quick bool) (*Figure, error) {
		sizes := msgSizes(quick)
		o := nodeOptions(node)
		algs := []struct {
			name string
			f    coll.ReduceFunc
		}{
			{"Socket-aware MA (ours)", coll.ReduceSocketMA},
			{"MA (ours)", coll.ReduceMA},
			{"DPML", coll.ReduceDPML},
			{"RG", coll.ReduceRG},
		}
		f := &Figure{
			ID:       fmt.Sprintf("fig10%s", nodeSuffix(node)),
			Title:    fmt.Sprintf("Reduce comparison (%s, p=%d)", node.Name, p),
			XLabel:   "Msg bytes",
			XValues:  sizes,
			YLabel:   "time (us)",
			Baseline: "Socket-aware MA (ours)",
		}
		for _, a := range algs {
			a := a
			f.Series = append(f.Series, Series{Name: a.name, Y: sweep(sizes, func(s int64) float64 {
				return measureReduce(node, p, a.f, s, o)
			})})
		}
		return f, nil
	}
}

func figAllreduce(node *topo.Node, p int) Runner {
	return func(quick bool) (*Figure, error) {
		sizes := msgSizes(quick)
		o := nodeOptions(node)
		algs := []struct {
			name string
			f    coll.ARFunc
		}{
			{"Socket-aware MA (ours)", coll.AllreduceSocketMA},
			{"MA (ours)", coll.AllreduceMA},
			{"DPML", coll.AllreduceDPML},
			{"RG", coll.AllreduceRG},
			{"Ring", coll.AllreduceRing},
			{"Rabenseifner", coll.AllreduceRabenseifner},
		}
		f := &Figure{
			ID:       fmt.Sprintf("fig11%s", nodeSuffix(node)),
			Title:    fmt.Sprintf("All-reduce comparison (%s, p=%d)", node.Name, p),
			XLabel:   "Msg bytes",
			XValues:  sizes,
			YLabel:   "time (us)",
			Baseline: "Socket-aware MA (ours)",
		}
		for _, a := range algs {
			a := a
			f.Series = append(f.Series, Series{Name: a.name, Y: sweep(sizes, func(s int64) float64 {
				return measureAllreduce(node, p, a.f, s, o)
			})})
		}
		return f, nil
	}
}

// figScalability is Fig. 16a: all-reduce at 64 MB over p = 2..64 on NodeA.
func figScalability(quick bool) (*Figure, error) {
	node := topo.NodeA()
	ps := []int{2, 4, 8, 16, 32, 64}
	if quick {
		ps = []int{2, 8, 64}
	}
	const s = 64 << 20
	algs := []struct {
		name string
		f    coll.ARFunc
	}{
		{"YHCCL", coll.AllreduceYHCCL},
		{"DPML", coll.AllreduceDPML},
		{"RG", coll.AllreduceRG},
		{"Open MPI (ring)", coll.AllreduceRing},
		{"MPICH (Rabenseifner)", coll.AllreduceRabenseifner},
		{"Hashmi's XPMEM", coll.AllreduceXPMEM},
	}
	f := &Figure{
		ID:     "fig16a",
		Title:  "Single-node all-reduce scalability (NodeA, 64 MB)",
		XLabel: "processes",
		YLabel: "time (us)",
		Notes:  []string{"ranks 2..32 occupy socket 0 only under block binding, as on the real machine"},
	}
	for _, p := range ps {
		f.XValues = append(f.XValues, int64(p))
	}
	for _, a := range algs {
		ys := make([]float64, len(ps))
		for i, p := range ps {
			ys[i] = measureAllreduce(node, p, a.f, s, coll.Options{})
		}
		f.Series = append(f.Series, Series{Name: a.name, Y: ys})
	}
	return f, nil
}

func nodeSuffix(node *topo.Node) string {
	if node.Name == "NodeB" {
		return "b"
	}
	return "a"
}
