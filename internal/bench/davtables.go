package bench

import (
	"yhccl/internal/coll"
	"yhccl/internal/dav"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// Tables 1-3: the data-access-volume comparison. Each table prints the
// closed-form DAV per algorithm at a representative size together with the
// DAV actually measured by the memory model while running the algorithm —
// the reproduction's strongest internal check.

func init() {
	register("table1", "DAV of reduce-scatter algorithms (formula vs measured), p=8", table1)
	register("table2", "DAV of all-reduce algorithms (formula vs measured), p=8", table2)
	register("table3", "DAV of reduce algorithms (formula vs measured), p=8", table3)
}

// measuredDAV runs the collective once on a fresh real machine and
// returns the model's logical DAV counter.
func measuredDAV(run func(m *mpi.Machine)) int64 {
	m := mpi.NewMachine(topo.NodeA(), 8, true)
	run(m)
	return m.Model.Counters().DAV()
}

func table1(quick bool) (*Figure, error) {
	const p = 8
	n := int64(4096)
	s := int64(p) * n * memmodel.ElemSize
	type row struct {
		name    string
		formula int64
		alg     coll.RSFunc
	}
	rows := []row{
		{"Ring", dav.RingReduceScatter(s, p), coll.ReduceScatterRing},
		{"Rabenseifner", dav.RabenseifnerReduceScatter(s, p), coll.ReduceScatterRabenseifner},
		{"DPML", dav.DPMLReduceScatter(s, p), coll.ReduceScatterDPML},
		{"YHCCL (MA)", dav.MAReduceScatter(s, p), coll.ReduceScatterMA},
		{"YHCCL (socket-MA)", dav.SocketMAReduceScatter(s, p, 2), nil},
	}
	f := &Figure{
		ID: "table1", Title: "Reduce-scatter DAV per node (s = 256 KB, p = 8)",
		XLabel: "algorithm index", YLabel: "bytes",
		Notes: []string{"socket-MA measured on an explicit 2-socket binding"},
	}
	var formula, measured Series
	formula.Name, measured.Name = "formula", "measured"
	for i, r := range rows {
		f.XValues = append(f.XValues, int64(i))
		formula.Y = append(formula.Y, float64(r.formula))
		var got int64
		if r.alg != nil {
			alg := r.alg
			got = measuredDAV(func(m *mpi.Machine) {
				m.MustRun(func(rk *mpi.Rank) {
					sb := rk.NewBuffer("sb", int64(p)*n)
					rb := rk.NewBuffer("rb", n)
					alg(rk, rk.World(), sb, rb, n, mpi.Sum, coll.Options{})
				})
			})
		} else {
			m := mpi.NewMachineWithBinding(topo.NodeA(), []int{0, 1, 2, 3, 32, 33, 34, 35}, true)
			m.MustRun(func(rk *mpi.Rank) {
				sb := rk.NewBuffer("sb", int64(p)*n)
				rb := rk.NewBuffer("rb", n)
				coll.ReduceScatterSocketMA(rk, rk.World(), sb, rb, n, mpi.Sum, coll.Options{})
			})
			got = m.Model.Counters().DAV()
		}
		measured.Y = append(measured.Y, float64(got))
		f.Notes = append(f.Notes, r.name)
	}
	f.Series = []Series{formula, measured}
	return f, nil
}

func table2(quick bool) (*Figure, error) {
	const p = 8
	n := int64(8192)
	s := n * memmodel.ElemSize
	type row struct {
		name    string
		formula int64
		alg     coll.ARFunc
	}
	rows := []row{
		{"Ring (impl: 7s(p-1)+2s)", dav.RingAllreduceImpl(s, p), coll.AllreduceRing},
		{"Rabenseifner (impl)", dav.RabenseifnerAllreduceImpl(s, p), coll.AllreduceRabenseifner},
		{"DPML (impl: 7p-3)", dav.DPMLAllreduceImpl(s, p), coll.AllreduceDPML},
		{"RG (k=2)", dav.RGReduce(s, 9, 2) + 2*s*9, nil}, // measured separately at p=9
		{"YHCCL (MA)", dav.MAAllreduce(s, p), coll.AllreduceMA},
		{"XPMEM", dav.XPMEMAllreduce(s, p), coll.AllreduceXPMEM},
	}
	f := &Figure{
		ID: "table2", Title: "All-reduce DAV per node (s = 64 KB, p = 8)",
		XLabel: "algorithm index", YLabel: "bytes",
		Notes: []string{"RG row computed at p=9, k=2 (exact for p a power of k+1)"},
	}
	var formula, measured Series
	formula.Name, measured.Name = "formula", "measured"
	for i, r := range rows {
		f.XValues = append(f.XValues, int64(i))
		formula.Y = append(formula.Y, float64(r.formula))
		var got int64
		if r.alg != nil {
			alg := r.alg
			got = measuredDAV(func(m *mpi.Machine) {
				m.MustRun(func(rk *mpi.Rank) {
					sb := rk.NewBuffer("sb", n)
					rb := rk.NewBuffer("rb", n)
					alg(rk, rk.World(), sb, rb, n, mpi.Sum, coll.Options{})
				})
			})
		} else {
			m := mpi.NewMachine(topo.NodeA(), 9, true)
			m.MustRun(func(rk *mpi.Rank) {
				sb := rk.NewBuffer("sb", n)
				rb := rk.NewBuffer("rb", n)
				coll.AllreduceRG(rk, rk.World(), sb, rb, n, mpi.Sum, coll.Options{})
			})
			got = m.Model.Counters().DAV()
		}
		measured.Y = append(measured.Y, float64(got))
		f.Notes = append(f.Notes, r.name)
	}
	f.Series = []Series{formula, measured}
	return f, nil
}

func table3(quick bool) (*Figure, error) {
	const p = 8
	n := int64(8192)
	s := n * memmodel.ElemSize
	type row struct {
		name    string
		formula int64
		alg     coll.ReduceFunc
	}
	rows := []row{
		{"DPML (impl: 5p-1)", dav.DPMLReduceImpl(s, p), coll.ReduceDPML},
		{"YHCCL (MA)", dav.MAReduce(s, p), coll.ReduceMA},
	}
	f := &Figure{
		ID: "table3", Title: "Reduce DAV per node (s = 64 KB, p = 8)",
		XLabel: "algorithm index", YLabel: "bytes",
	}
	var formula, measured Series
	formula.Name, measured.Name = "formula", "measured"
	for i, r := range rows {
		f.XValues = append(f.XValues, int64(i))
		formula.Y = append(formula.Y, float64(r.formula))
		alg := r.alg
		got := measuredDAV(func(m *mpi.Machine) {
			m.MustRun(func(rk *mpi.Rank) {
				sb := rk.NewBuffer("sb", n)
				rb := rk.NewBuffer("rb", n)
				alg(rk, rk.World(), sb, rb, n, mpi.Sum, 0, coll.Options{})
			})
		})
		measured.Y = append(measured.Y, float64(got))
		f.Notes = append(f.Notes, r.name)
	}
	f.Series = []Series{formula, measured}
	return f, nil
}
