package bench

import (
	"fmt"

	"yhccl/internal/coll"
	"yhccl/internal/memcopy"
	"yhccl/internal/topo"
)

// Figs. 12-14: the same YHCCL collective run with the four copy policies —
// adaptive (the contribution), t-copy, nt-copy and threshold memmove —
// isolating the value of the fine-grained NT-store heuristic.

func init() {
	register("fig12a", "Adaptive all-reduce vs fixed copy kinds, NodeA p=64", figAdaptive("fig12a", topo.NodeA(), 64, collectiveAllreduce))
	register("fig12b", "Adaptive all-reduce vs fixed copy kinds, NodeB p=48", figAdaptive("fig12b", topo.NodeB(), 48, collectiveAllreduce))
	register("fig13a", "Adaptive pipelined broadcast vs fixed copy kinds, NodeA p=64", figAdaptive("fig13a", topo.NodeA(), 64, collectiveBcast))
	register("fig13b", "Adaptive pipelined broadcast vs fixed copy kinds, NodeB p=48", figAdaptive("fig13b", topo.NodeB(), 48, collectiveBcast))
	register("fig14a", "Adaptive pipelined all-gather vs fixed copy kinds, NodeA p=64", figAdaptive("fig14a", topo.NodeA(), 64, collectiveAllgather))
	register("fig14b", "Adaptive pipelined all-gather vs fixed copy kinds, NodeB p=48", figAdaptive("fig14b", topo.NodeB(), 48, collectiveAllgather))
}

type policyCollective int

const (
	collectiveAllreduce policyCollective = iota
	collectiveBcast
	collectiveAllgather
)

// measureWithPolicy runs the collective with a forced copy policy.
func measureWithPolicy(kind policyCollective, node *topo.Node, p int, pol memcopy.Policy, sBytes int64) float64 {
	o := nodeOptions(node).WithPolicy(pol)
	switch kind {
	case collectiveAllreduce:
		return measureAllreduce(node, p, coll.AllreduceSocketMA, sBytes, o)
	case collectiveBcast:
		return measureBcast(node, p, coll.BcastPipelined, sBytes, o)
	case collectiveAllgather:
		return measureAllgather(node, p, coll.AllgatherPipelined, sBytes, o)
	}
	panic("bench: unknown policy collective")
}

func figAdaptive(id string, node *topo.Node, p int, kind policyCollective) Runner {
	return func(quick bool) (*Figure, error) {
		var sizes []int64
		if kind == collectiveAllgather {
			sizes = smallMsgSizes(quick)
		} else {
			sizes = msgSizes(quick)
		}
		policies := []struct {
			name string
			pol  memcopy.Policy
		}{
			{"YHCCL (adaptive)", memcopy.Adaptive},
			{"t-copy", memcopy.TCopy},
			{"nt-copy", memcopy.NTCopy},
			{"Memmove", memcopy.Memmove},
		}
		title := map[policyCollective]string{
			collectiveAllreduce: "all-reduce",
			collectiveBcast:     "pipelined broadcast",
			collectiveAllgather: "pipelined all-gather",
		}[kind]
		f := &Figure{
			ID:       id,
			Title:    fmt.Sprintf("Adaptive %s vs fixed copy kinds (%s, p=%d)", title, node.Name, p),
			XLabel:   "Msg bytes",
			XValues:  sizes,
			YLabel:   "time (us)",
			Baseline: "YHCCL (adaptive)",
		}
		if kind == collectiveAllreduce {
			f.Notes = append(f.Notes, fmt.Sprintf(
				"predicted t->nt switch point: %s (W > C rule, C = %s)",
				ByteSize(PredictedSwitchBytes(node, p)), ByteSize(node.AvailableCache(p))))
		}
		for _, pp := range policies {
			pp := pp
			f.Series = append(f.Series, Series{Name: pp.name, Y: sweep(sizes, func(s int64) float64 {
				return measureWithPolicy(kind, node, p, pp.pol, s)
			})})
		}
		return f, nil
	}
}

// PredictedSwitchBytes solves W > C for the socket-aware MA all-reduce
// (§5.4): W = 2sp + m*p*Imax, so s > (C - m*p*Imax) / (2p). The paper
// computes 2176 KB on NodeA (p=64) and 1152 KB on NodeB (p=48).
func PredictedSwitchBytes(node *topo.Node, p int) int64 {
	imax := nodeOptions(node).SliceMaxBytes
	if imax == 0 {
		imax = coll.DefaultSliceMaxBytes
	}
	C := node.AvailableCache(p)
	m := int64(node.Sockets)
	return (C - m*int64(p)*imax) / (2 * int64(p))
}

