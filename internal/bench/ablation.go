package bench

import (
	"fmt"

	"yhccl/internal/coll"
	"yhccl/internal/topo"
)

// Ablation studies for the design choices DESIGN.md §4 calls out. These go
// beyond the paper's figures: they quantify each knob in isolation.

func init() {
	register("abl-slice", "Ablation: MA slice size Imax, NodeA p=64 all-reduce", ablSlice)
	register("abl-socket", "Ablation: socket-aware vs flat MA across sizes, NodeB p=48", ablSocket)
	register("abl-cacherule", "Ablation: available-cache rule C=c'+p*c'' vs inclusive C=c'", ablCacheRule)
	register("abl-switch", "Ablation: small-message switch threshold, NodeB p=48", ablSwitch)
	register("abl-rgdegree", "Ablation: RG branching degree k, NodeA p=64 all-reduce", ablRGDegree)
}

// ablSlice sweeps Imax for the socket-aware MA all-reduce at 16 MB.
func ablSlice(quick bool) (*Figure, error) {
	node := topo.NodeA()
	const s = 16 << 20
	imaxes := []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	if quick {
		imaxes = []int64{64 << 10, 256 << 10, 1 << 20}
	}
	f := &Figure{
		ID: "abl-slice", Title: "MA slice size ablation (NodeA p=64, 16 MB all-reduce)",
		XLabel: "Imax bytes", XValues: imaxes, YLabel: "time (us)",
		Notes: []string{"the paper's 256 KB sits at/near the optimum: small slices pay sync, big slices spill the cache"},
	}
	ys := make([]float64, len(imaxes))
	for i, imax := range imaxes {
		ys[i] = measureAllreduce(node, 64, coll.AllreduceSocketMA, s, coll.Options{SliceMaxBytes: imax})
	}
	f.Series = []Series{{Name: "socket-MA all-reduce", Y: ys}}
	return f, nil
}

// ablSocket compares flat MA and socket-aware MA across sizes.
func ablSocket(quick bool) (*Figure, error) {
	node := topo.NodeB()
	sizes := msgSizes(quick)
	f := &Figure{
		ID: "abl-socket", Title: "Socket-aware vs flat MA (NodeB p=48 all-reduce)",
		XLabel: "Msg bytes", XValues: sizes, YLabel: "time (us)", Baseline: "socket-aware",
		Notes: []string{"socket-aware pays +2(m-1)s DAV for p/m-deep sync chains instead of p-deep"},
	}
	f.Series = append(f.Series, Series{Name: "socket-aware", Y: sweep(sizes, func(s int64) float64 {
		return measureAllreduce(node, 48, coll.AllreduceSocketMA, s, nodeOptions(node))
	})})
	f.Series = append(f.Series, Series{Name: "flat MA", Y: sweep(sizes, func(s int64) float64 {
		return measureAllreduce(node, 48, coll.AllreduceMA, s, nodeOptions(node))
	})})
	return f, nil
}

// ablCacheRule contrasts the non-inclusive C = c' + p*c” machine with a
// hypothetical inclusive-LLC twin (C = c'): the NT switch fires earlier
// and mid-size messages change behaviour.
func ablCacheRule(quick bool) (*Figure, error) {
	normal := topo.NodeA()
	inclusive := topo.NodeA()
	inclusive.Name = "NodeA-inclusive"
	inclusive.L3Inclusive = true
	sizes := msgSizes(quick)
	f := &Figure{
		ID: "abl-cacherule", Title: "Available-cache rule ablation (NodeA p=64 all-reduce, adaptive copy)",
		XLabel: "Msg bytes", XValues: sizes, YLabel: "time (us)",
		Notes: []string{
			fmt.Sprintf("C(non-inclusive) = %s, C(inclusive) = %s",
				ByteSize(normal.AvailableCache(64)), ByteSize(inclusive.AvailableCache(64))),
		},
	}
	f.Series = append(f.Series, Series{Name: "non-inclusive rule", Y: sweep(sizes, func(s int64) float64 {
		return measureAllreduce(normal, 64, coll.AllreduceSocketMA, s, coll.Options{})
	})})
	f.Series = append(f.Series, Series{Name: "inclusive rule", Y: sweep(sizes, func(s int64) float64 {
		return measureAllreduce(inclusive, 64, coll.AllreduceSocketMA, s, coll.Options{})
	})})
	return f, nil
}

// ablSwitch sweeps the two-level/MA switch threshold and reports the
// resulting time at small and mid sizes.
func ablSwitch(quick bool) (*Figure, error) {
	node := topo.NodeB()
	thresholds := []int64{-1, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	if quick {
		thresholds = []int64{-1, 256 << 10, 4 << 20}
	}
	sizes := []int64{16 << 10, 128 << 10, 1 << 20}
	f := &Figure{
		ID: "abl-switch", Title: "Algorithm-switch threshold ablation (NodeB p=48 all-reduce)",
		XLabel: "threshold bytes (-1 = never switch)", XValues: thresholds, YLabel: "time (us)",
	}
	for _, s := range sizes {
		s := s
		ys := make([]float64, len(thresholds))
		for i, th := range thresholds {
			ys[i] = measureAllreduce(node, 48, coll.AllreduceYHCCL, s, coll.Options{SwitchSmallBytes: th})
		}
		f.Series = append(f.Series, Series{Name: "msg " + ByteSize(s), Y: ys})
	}
	return f, nil
}

// ablRGDegree sweeps the RG branching degree.
func ablRGDegree(quick bool) (*Figure, error) {
	node := topo.NodeA()
	degrees := []int64{1, 2, 3, 7}
	const s = 8 << 20
	f := &Figure{
		ID: "abl-rgdegree", Title: "RG branching degree ablation (NodeA p=64, 8 MB all-reduce)",
		XLabel: "degree k", XValues: degrees, YLabel: "time (us)",
	}
	ys := make([]float64, len(degrees))
	for i, k := range degrees {
		ys[i] = measureAllreduce(node, 64, coll.AllreduceRG, s, coll.Options{RGDegree: int(k)})
	}
	f.Series = []Series{{Name: "RG all-reduce", Y: ys}}
	return f, nil
}
