package bench

import (
	"fmt"

	"yhccl/internal/coll"
	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// Micro-experiments: Fig. 3 (copy-out overhead vs slice size), Table 4
// (sliced STREAM copy bandwidths) and Table 5 (CMA vs adaptive-copy).

func init() {
	register("fig3", "Copy-out overhead for reduction vs slice size, NodeA 64 ranks", fig3CopyOut)
	register("table4", "Sliced-copy bandwidth: memmove vs t-copy vs nt-copy, NodeA", table4SlicedCopy)
	register("table5", "CMA DMA-copy vs adaptive-copy, 32 MB patterns, NodeA", table5CMA)
}

// fig3CopyOut reproduces Fig. 3: each of 64 ranks copies `total` bytes
// from shared memory to its private buffer with the C-library memmove,
// chunked at the given slice size. Below memmove's 2 MB NT threshold the
// copies write-allocate and the RFO + write-back traffic inflates the
// time; at 2 MB the NT path kicks in.
func fig3CopyOut(quick bool) (*Figure, error) {
	node := topo.NodeA()
	const p = 64
	total := int64(256) << 20 // per-rank bytes, as in the paper
	if quick {
		total = 16 << 20
	}
	slices := []int64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
	f := &Figure{
		ID:      "fig3",
		Title:   "Copy-out overhead for reduction (NodeA, 64 ranks)",
		XLabel:  "Slice bytes",
		XValues: slices,
		YLabel:  "time (us)",
		Notes:   []string{"memmove switches to NT stores at 2 MB: smaller slices pay RFO + write-back"},
	}
	ys := make([]float64, len(slices))
	for i, slice := range slices {
		m := mpi.NewMachine(node, p, false)
		n := total / memmodel.ElemSize
		sliceElems := slice / memmodel.ElemSize
		ys[i] = m.MustRun(func(r *mpi.Rank) {
			src := r.World().Shared("fig3/src", 0, n)
			dst := r.PersistentBuffer("fig3/dst", n)
			for off := int64(0); off < n; off += sliceElems {
				ln := sliceElems
				if off+ln > n {
					ln = n - off
				}
				memcopy.Copy(r, memcopy.Memmove, dst, off, src, off, ln, memcopy.Hints{})
			}
		})
	}
	f.Series = []Series{{Name: "memmove copy-out", Y: ys}}
	return f, nil
}

// table4SlicedCopy reproduces Table 4: copy a large array in slices with
// the three copy implementations and report the effective copy bandwidth
// (2 bytes moved per copied byte, STREAM convention).
func table4SlicedCopy(quick bool) (*Figure, error) {
	node := topo.NodeA()
	total := int64(16) << 30 // the paper's 16 GB array (model-only)
	if quick {
		total = 1 << 30
	}
	slices := []int64{512 << 10, 1 << 20, 2 << 20}
	f := &Figure{
		ID:      "table4",
		Title:   "Sliced-copy memory bandwidth (NodeA)",
		XLabel:  "Slice bytes",
		XValues: slices,
		YLabel:  "bandwidth (GB/s)",
	}
	impls := []struct {
		name string
		pol  memcopy.Policy
	}{
		{"memmove", memcopy.Memmove},
		{"t-copy", memcopy.TCopy},
		{"nt-copy", memcopy.NTCopy},
	}
	// One rank per core streams its share of the array concurrently, as in
	// the redesigned STREAM COPY of §4.1.
	const p = 64
	perRank := total / p / memmodel.ElemSize
	for _, im := range impls {
		ys := make([]float64, len(slices))
		for i, slice := range slices {
			sliceElems := slice / memmodel.ElemSize
			m := mpi.NewMachine(node, p, false)
			h := memcopy.Hints{NonTemporal: true, WorkSet: 2 * total, AvailableCache: node.AvailableCache(p)}
			t := m.MustRun(func(r *mpi.Rank) {
				src := r.PersistentBuffer("t4/src", perRank)
				dst := r.PersistentBuffer("t4/dst", perRank)
				for off := int64(0); off < perRank; off += sliceElems {
					ln := sliceElems
					if off+ln > perRank {
						ln = perRank - off
					}
					memcopy.Copy(r, im.pol, dst, off, src, off, ln, h)
				}
			})
			ys[i] = float64(2*total) / t
		}
		f.Series = append(f.Series, Series{Name: im.name, Y: ys})
	}
	return f, nil
}

// table5CMA reproduces Table 5: one-to-all and ring copies of 32 MB per
// message, CMA kernel copy vs adaptive-copy through shared memory.
func table5CMA(quick bool) (*Figure, error) {
	node := topo.NodeA()
	p := 64
	if quick {
		p = 16
	}
	msg := int64(32<<20) / memmodel.ElemSize
	f := &Figure{
		ID:      "table5",
		Title:   "CMA copy vs adaptive-copy (32 MB per message, NodeA)",
		XLabel:  "pattern (0 = one-to-all, 1 = ring)",
		XValues: []int64{0, 1},
		YLabel:  "time (seconds)",
		Notes: []string{
			"one-to-all: rank 0's pages attached by p-1 readers (lock contention)",
			"ring: rank i to rank (i+1) mod p",
		},
	}

	oneToAllCMA := func() float64 {
		m := mpi.NewMachine(node, p, false)
		return m.MustRun(func(r *mpi.Rank) {
			buf := r.PersistentBuffer("t5/buf", msg)
			c := r.World()
			c.Publish(r, "t5/src", buf)
			c.Barrier().Arrive(r.Proc())
			if r.ID() != 0 {
				coll.CMACopy(r, buf, 0, c.Peer("t5/src", 0), 0, msg, p-1)
			}
		})
	}
	ringCMA := func() float64 {
		m := mpi.NewMachine(node, p, false)
		return m.MustRun(func(r *mpi.Rank) {
			src := r.PersistentBuffer("t5/src", msg)
			dst := r.PersistentBuffer("t5/dst", msg)
			c := r.World()
			c.Publish(r, "t5/ring", src)
			c.Barrier().Arrive(r.Proc())
			prev := (c.CommRank(r.ID()) + p - 1) % p
			coll.CMACopy(r, dst, 0, c.Peer("t5/ring", prev), 0, msg, 1)
		})
	}
	adaptive := func(label string) float64 {
		// Table 5's setup: the sending buffers are allocated in shared
		// memory with MPI_Win_allocate_shared, so the transfer is a single
		// adaptive-copy from the window straight into the private receive
		// buffer — no staging pass.
		m := mpi.NewMachine(node, p, false)
		h := memcopy.Hints{NonTemporal: true, WorkSet: 2 * msg * int64(p) * memmodel.ElemSize, AvailableCache: node.AvailableCache(p)}
		return m.MustRun(func(r *mpi.Rank) {
			c := r.World()
			me := c.CommRank(r.ID())
			c.Shared(p2pSegLabel(me), c.SocketOf(me), msg) // allocate my window
			dst := r.PersistentBuffer("t5a/dst", msg)
			c.Barrier().Arrive(r.Proc())
			if label == "one-to-all" {
				if me != 0 {
					src := c.Shared(p2pSegLabel(0), c.SocketOf(0), msg)
					memcopy.Copy(r, memcopy.Adaptive, dst, 0, src, 0, msg, h)
				}
			} else {
				prev := (me + p - 1) % p
				src := c.Shared(p2pSegLabel(prev), c.SocketOf(prev), msg)
				memcopy.Copy(r, memcopy.Adaptive, dst, 0, src, 0, msg, h)
			}
		})
	}

	f.Series = []Series{
		{Name: "DMA copy (CMA)", Y: []float64{oneToAllCMA(), ringCMA()}},
		{Name: "adaptive-copy", Y: []float64{adaptive("one-to-all"), adaptive("ring")}},
	}
	return f, nil
}

func p2pSegLabel(rank int) string {
	return fmt.Sprintf("t5a/ring-seg/%d", rank)
}
