package schedule

import "testing"

func TestDPMLScheduleValidAndVolume(t *testing.T) {
	// DPML's copy volume is 2(p-1) units per tree: every slice except the
	// executor's own is copied in. Total = 2p(p-1) units = ... in the
	// paper's byte terms, V = 2s(p-1)/... per-tree 2(p-1)I.
	for p := 2; p <= 8; p++ {
		s := DPML(p)
		if err := s.Validate(p); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// Tree i executed by process i uses its own slice once: p-1 foreign
		// slices -> 2(p-1) units.
		for i, tree := range s {
			if got, want := tree.TotalCopyUnits(), 2*(p-1); got != want {
				t.Errorf("p=%d tree %d: %d units, want %d", p, i, got, want)
			}
		}
	}
}

func TestMAScheduleValidAndOptimal(t *testing.T) {
	// The movement-avoiding schedule achieves exactly 2 units per tree
	// (one copy-in), hence 2p total = the paper's V = 2s.
	for p := 2; p <= 8; p++ {
		s := MA(p)
		if err := s.Validate(p); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, tree := range s {
			if got := tree.TotalCopyUnits(); got != 2 {
				t.Errorf("p=%d tree %d: %d units, want 2", p, i, got)
			}
		}
		if got, want := s.TotalCopyUnits(), 2*p; got != want {
			t.Errorf("p=%d: schedule total %d, want %d", p, got, want)
		}
	}
}

func TestTheorem31LowerBound(t *testing.T) {
	// Exhaustive verification of Theorem 3.1 for small p: no valid
	// reduction tree has copy volume below 2I, and 2I is attained.
	for p := 2; p <= 5; p++ {
		if got := MinTreeCopyUnits(p); got != 2 {
			t.Errorf("p=%d: exhaustive minimum = %d units, theorem says 2", p, got)
		}
	}
}

func TestEquationOneCases(t *testing.T) {
	// Directly exercise Equation 1's four cases.
	tree := Tree{
		{R: 1, A: Slice(0), B: Slice(1)}, // foreign + own: 2
		{R: 2, A: Ref(0), B: Slice(2)},   // shm + own: 0
		{R: 0, A: Ref(1), B: Slice(3)},   // shm + foreign: 2
	}
	wants := []int{2, 0, 2}
	for j, want := range wants {
		if got := tree.CopyUnits(j); got != want {
			t.Errorf("node %d: %d units, want %d", j, got, want)
		}
	}
	// Both operands foreign slices: 4 units.
	worst := Tree{{R: 2, A: Slice(0), B: Slice(1)}}
	if got := worst.CopyUnits(0); got != 4 {
		t.Errorf("double-foreign node: %d units, want 4", got)
	}
}

func TestValidateRejectsMalformedTrees(t *testing.T) {
	p := 3
	cases := []struct {
		name string
		tree Tree
	}{
		{"wrong length", Tree{{R: 0, A: Slice(0), B: Slice(1)}}},
		{"slice reused", Tree{
			{R: 0, A: Slice(0), B: Slice(1)},
			{R: 0, A: Slice(0), B: Slice(2)},
		}},
		{"forward reference", Tree{
			{R: 0, A: Ref(1), B: Slice(0)},
			{R: 0, A: Slice(1), B: Slice(2)},
		}},
		{"slice missing", Tree{
			{R: 0, A: Slice(0), B: Slice(1)},
			{R: 0, A: Ref(0), B: Slice(1)},
		}},
		{"executor out of range", Tree{
			{R: 5, A: Slice(0), B: Slice(1)},
			{R: 0, A: Ref(0), B: Slice(2)},
		}},
		{"result unconsumed", Tree{
			{R: 0, A: Slice(0), B: Slice(1)},
			{R: 0, A: Slice(2), B: Slice(0)},
		}},
	}
	for _, c := range cases {
		if err := c.tree.Validate(p); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestScheduleValidateLength(t *testing.T) {
	s := MA(4)
	if err := s[:3].Validate(4); err == nil {
		t.Error("short schedule accepted")
	}
}

func TestDPMLMASavingMatchesPaper(t *testing.T) {
	// §2.2: "redundant data movements can account for 40% of the total
	// data accesses". Total accesses per tree = reduction accesses
	// 3(p-1) units + copies; DPML copies 2(p-1), MA copies 2.
	p := 64
	dpmlTotal := 3*(p-1) + 2*(p-1)
	maTotal := 3*(p-1) + 2
	saving := float64(dpmlTotal-maTotal) / float64(dpmlTotal)
	if saving < 0.35 || saving > 0.45 {
		t.Errorf("copy elimination saves %.0f%% of accesses, want ~40%%", saving*100)
	}
}
