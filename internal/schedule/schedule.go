// Package schedule implements the paper's §3.1 formalism of the sliced
// reduction problem: a reduction algorithm is a sequence of p binary
// reduction trees T_i = [T_{i,1} .. T_{i,p-1}], each node T_{i,j} = [r,a,b]
// an operation executed by process r over two operands that are either
// previous nodes' results (already in shared memory) or slices of some
// process's send buffer.
//
// The package provides Equation 1 (the copy data-access volume of a node),
// the constraint set C (Equation 2), the schedules of the algorithms the
// paper discusses (DPML and the movement-avoiding schedule of Fig. 5), and
// an exhaustive search that verifies Theorem 3.1 — sum V(T_{i,j}) >= 2I for
// every valid tree — computationally for small p.
//
// Volumes are expressed in units of I (one slice): a copy moves one slice
// in and out of shared memory, costing 2 units.
package schedule

import (
	"fmt"
)

// Operand is one input of a reduction node: either the slice s_{X,i} from
// process X's send buffer, or the result of a previous node (Ref).
type Operand struct {
	// IsSlice selects between a send-buffer slice and a node reference.
	IsSlice bool
	// X is the owning process of the slice (0-based), when IsSlice.
	X int
	// Ref is the 0-based index of a previous node in the tree, when
	// !IsSlice.
	Ref int
}

// Slice returns the send-buffer-slice operand of process x.
func Slice(x int) Operand { return Operand{IsSlice: true, X: x} }

// Ref returns the previous-result operand of node j.
func Ref(j int) Operand { return Operand{Ref: j} }

// Node is T_{i,j} = [r, a, b]: process R reduces A and B; the result is
// stored in shared memory.
type Node struct {
	R    int
	A, B Operand
}

// Tree is one reduction tree T_i (p-1 nodes for p processes).
type Tree []Node

// CopyUnits evaluates Equation 1 for node j of the tree, in units of I:
// an operand that is a slice owned by a process other than the executor
// must first be copied to shared memory (2 units); shared-memory results
// and the executor's own slice are free.
func (t Tree) CopyUnits(j int) int {
	n := t[j]
	units := 0
	for _, op := range []Operand{n.A, n.B} {
		if op.IsSlice && op.X != n.R {
			units += 2
		}
	}
	return units
}

// TotalCopyUnits is sum_j V(T_{i,j}) in units of I.
func (t Tree) TotalCopyUnits() int {
	total := 0
	for j := range t {
		total += t.CopyUnits(j)
	}
	return total
}

// Validate checks the constraint set C (Equation 2) for a tree over p
// processes: p-1 nodes; executors in range; operands are previous nodes or
// slices; and all 2(p-1) operands are pairwise distinct — which forces the
// tree to consume every slice exactly once and every intermediate result
// exactly once.
func (t Tree) Validate(p int) error {
	if len(t) != p-1 {
		return fmt.Errorf("schedule: tree has %d nodes, want p-1 = %d", len(t), p-1)
	}
	seenSlice := make([]bool, p)
	seenRef := make([]bool, p-1)
	for j, n := range t {
		if n.R < 0 || n.R >= p {
			return fmt.Errorf("schedule: node %d executor %d out of range", j, n.R)
		}
		for _, op := range []Operand{n.A, n.B} {
			if op.IsSlice {
				if op.X < 0 || op.X >= p {
					return fmt.Errorf("schedule: node %d slice owner %d out of range", j, op.X)
				}
				if seenSlice[op.X] {
					return fmt.Errorf("schedule: slice of process %d used twice", op.X)
				}
				seenSlice[op.X] = true
			} else {
				if op.Ref < 0 || op.Ref >= j {
					return fmt.Errorf("schedule: node %d references node %d (not previous)", j, op.Ref)
				}
				if seenRef[op.Ref] {
					return fmt.Errorf("schedule: result of node %d used twice", op.Ref)
				}
				seenRef[op.Ref] = true
			}
		}
	}
	for x, seen := range seenSlice {
		if !seen {
			return fmt.Errorf("schedule: slice of process %d never reduced", x)
		}
	}
	for j := 0; j < p-2; j++ {
		if !seenRef[j] {
			return fmt.Errorf("schedule: result of node %d never consumed", j)
		}
	}
	return nil
}

// Schedule is a full algorithm: one tree per slice group G_i.
type Schedule []Tree

// Validate checks every tree.
func (s Schedule) Validate(p int) error {
	if len(s) != p {
		return fmt.Errorf("schedule: %d trees, want p = %d", len(s), p)
	}
	for i, t := range s {
		if err := t.Validate(p); err != nil {
			return fmt.Errorf("tree %d: %w", i, err)
		}
	}
	return nil
}

// TotalCopyUnits is the optimization objective of Equation 3 in units of I.
func (s Schedule) TotalCopyUnits() int {
	total := 0
	for _, t := range s {
		total += t.TotalCopyUnits()
	}
	return total
}

// DPML returns the DPML schedule [13] as formalized in §3.1: tree i is
// executed entirely by process i, whose operands are everyone's slices —
// so every slice of another process must be copied in.
// T_i = [[i, s_0i, s_1i], [i, ref0, s_2i], ..., [i, ref(p-3), s_(p-1)i]].
func DPML(p int) Schedule {
	s := make(Schedule, p)
	for i := 0; i < p; i++ {
		t := make(Tree, p-1)
		t[0] = Node{R: i, A: Slice(0), B: Slice(1)}
		for j := 1; j < p-1; j++ {
			t[j] = Node{R: i, A: Ref(j - 1), B: Slice(j + 1)}
		}
		s[i] = t
	}
	return s
}

// MA returns the movement-avoiding schedule of Fig. 5: for tree i, rank
// (i-1) mod p copies its slice in, then a descending chain of executors
// (i-2), (i-3), ..., and finally rank i itself each fold their OWN slice
// into the running result — so only the first node needs a copy-in, and
// the last reduction is executed by the block's owner (who can write the
// result straight into its receive buffer, as in Fig. 6).
func MA(p int) Schedule {
	s := make(Schedule, p)
	for i := 0; i < p; i++ {
		t := make(Tree, p-1)
		e := func(j int) int { return ((i-2-j)%p + p) % p }
		t[0] = Node{R: e(0), A: Slice((i - 1 + p) % p), B: Slice(e(0))}
		for j := 1; j < p-1; j++ {
			t[j] = Node{R: e(j), A: Ref(j - 1), B: Slice(e(j))}
		}
		s[i] = t
	}
	return s
}

// Fanout returns a searched family between MA and DPML: for each tree, f
// parallel movement-avoiding chains (each folding its members' own slices,
// so each chain costs the one copy-in of its head slice — 2f units per tree
// against MA's 2) followed by a combining chain over the f partial results,
// executed by the block's owner so the final write can go straight to the
// receive buffer. The trade: critical path drops from MA's p-1 to about
// p/f + f reductions, which is what wins at small messages where the chain
// latency, not the copy volume, dominates. Fanout(p, 1) degenerates to an
// MA-equivalent chain. f is clamped to [1, p/2] so every chain reduces at
// least two slices.
func Fanout(p, f int) Schedule {
	if f < 1 {
		f = 1
	}
	if f > p/2 {
		f = p / 2
	}
	s := make(Schedule, p)
	for i := 0; i < p; i++ {
		// Order the slices with the owner last, so the final fold (or the
		// final combine) is executed by rank i.
		order := make([]int, p)
		for j := 0; j < p; j++ {
			order[j] = (i + 1 + j) % p
		}
		t := make(Tree, 0, p-1)
		chainEnd := make([]int, 0, f)
		for c := 0; c < f; c++ {
			lo, hi := c*p/f, (c+1)*p/f
			members := order[lo:hi]
			t = append(t, Node{R: members[1], A: Slice(members[0]), B: Slice(members[1])})
			for _, r := range members[2:] {
				t = append(t, Node{R: r, A: Ref(len(t) - 1), B: Slice(r)})
			}
			chainEnd = append(chainEnd, len(t)-1)
		}
		acc := chainEnd[0]
		for c := 1; c < f; c++ {
			t = append(t, Node{R: i, A: Ref(acc), B: Ref(chainEnd[c])})
			acc = len(t) - 1
		}
		s[i] = t
	}
	return s
}

// MinTreeCopyUnits exhaustively searches all valid trees for p processes
// and returns the minimum of sum_j V(T_{i,j}) — the quantity Theorem 3.1
// bounds below by 2. Exponential; intended for p <= 6.
func MinTreeCopyUnits(p int) int {
	best := 1 << 30
	var nodes Tree
	usedSlice := make([]bool, p)
	usedRef := make([]bool, p-1)

	// operands available at step j: unused slices + unused refs < j.
	var rec func(j, cost int)
	rec = func(j, cost int) {
		if cost >= best {
			return
		}
		if j == p-1 {
			if cost < best {
				best = cost
			}
			return
		}
		var ops []Operand
		for x := 0; x < p; x++ {
			if !usedSlice[x] {
				ops = append(ops, Slice(x))
			}
		}
		for rj := 0; rj < j; rj++ {
			if !usedRef[rj] {
				ops = append(ops, Ref(rj))
			}
		}
		use := func(op Operand, v bool) {
			if op.IsSlice {
				usedSlice[op.X] = v
			} else {
				usedRef[op.Ref] = v
			}
		}
		for ai := 0; ai < len(ops); ai++ {
			for bi := ai + 1; bi < len(ops); bi++ {
				a, b := ops[ai], ops[bi]
				for r := 0; r < p; r++ {
					n := Node{R: r, A: a, B: b}
					nodes = append(nodes, n)
					use(a, true)
					use(b, true)
					rec(j+1, cost+nodes.CopyUnits(j))
					use(a, false)
					use(b, false)
					nodes = nodes[:len(nodes)-1]
				}
			}
		}
	}
	rec(0, 0)
	return best
}
