package topo

import (
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, n := range []*Node{NodeA(), NodeB(), NodeC()} {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestPresetLookup(t *testing.T) {
	for _, name := range []string{"NodeA", "NodeB", "NodeC", "a", "b", "c"} {
		if _, err := Preset(name); err != nil {
			t.Errorf("Preset(%q): %v", name, err)
		}
	}
	if _, err := Preset("NodeX"); err == nil {
		t.Error("Preset(NodeX) should fail")
	}
}

func TestCoreCounts(t *testing.T) {
	cases := []struct {
		n    *Node
		want int
	}{{NodeA(), 64}, {NodeB(), 48}, {NodeC(), 24}}
	for _, c := range cases {
		if got := c.n.Cores(); got != c.want {
			t.Errorf("%s cores = %d, want %d", c.n.Name, got, c.want)
		}
	}
}

func TestSocketOfBlockBinding(t *testing.T) {
	n := NodeA()
	if s := n.SocketOf(0); s != 0 {
		t.Errorf("core 0 on socket %d, want 0", s)
	}
	if s := n.SocketOf(31); s != 0 {
		t.Errorf("core 31 on socket %d, want 0", s)
	}
	if s := n.SocketOf(32); s != 1 {
		t.Errorf("core 32 on socket %d, want 1", s)
	}
	if s := n.SocketOf(63); s != 1 {
		t.Errorf("core 63 on socket %d, want 1", s)
	}
}

func TestSocketOfOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NodeA().SocketOf(64)
}

func TestAvailableCacheRule(t *testing.T) {
	// Paper §5.4 quotes C = 294912 KB on NodeA (p=64) and 116736 KB on
	// NodeB (p=48): C(non-inclusive) = node L3 + p*L2.
	a := NodeA()
	if got := a.AvailableCache(64); got != 294912*1024 {
		t.Errorf("NodeA available cache = %d KB, want 294912 KB", got/1024)
	}
	b := NodeB()
	if got := b.AvailableCache(48); got != 116736*1024 {
		t.Errorf("NodeB available cache = %d KB, want 116736 KB", got/1024)
	}
	c := NodeC()
	if got := c.AvailableCache(24); got != 2*c.L3PerSocket {
		t.Errorf("inclusive L3: available cache = %d, want %d", got, 2*c.L3PerSocket)
	}
}

func TestAvailableCacheMonotoneInP(t *testing.T) {
	f := func(p8 uint8) bool {
		p := int(p8%64) + 1
		a := NodeA()
		return a.AvailableCache(p+1) >= a.AvailableCache(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadNodes(t *testing.T) {
	mod := func(f func(n *Node)) *Node {
		n := NodeA()
		f(n)
		return n
	}
	bad := []*Node{
		mod(func(n *Node) { n.Sockets = 0 }),
		mod(func(n *Node) { n.CoresPerSocket = -1 }),
		mod(func(n *Node) { n.L2PerCore = 0 }),
		mod(func(n *Node) { n.DRAMBandwidthPerSocket = 0 }),
		mod(func(n *Node) { n.CrossSocketFactor = 0 }),
		mod(func(n *Node) { n.CrossSocketFactor = 1.5 }),
		mod(func(n *Node) { n.SyncLatencyIntra = 0 }),
		mod(func(n *Node) { n.SyncLatencyInter = n.SyncLatencyIntra / 2 }),
		mod(func(n *Node) { n.ReducePerCoreBandwidth = 0 }),
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted an invalid node", i)
		}
	}
}
