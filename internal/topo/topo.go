// Package topo describes the shared-memory multi-core machines the paper
// evaluates on: socket/core layout, cache hierarchy and raw memory/cache
// bandwidths. The three nodes from §5.2.1 (NodeA, NodeB, NodeC/ClusterC) are
// provided as presets; custom machines can be described for what-if studies.
//
// Bandwidth numbers are calibrated so that the model reproduces the paper's
// own measurements (Table 4 sliced-copy bandwidths, Fig. 12 DAB figures),
// not datasheet peaks. See DESIGN.md §1 for the calibration rationale.
package topo

import (
	"errors"
	"fmt"
)

// CacheLine is the cache line size in bytes, shared by every modelled CPU.
const CacheLine = 64

// Node describes one shared-memory computing node.
type Node struct {
	// Name identifies the preset (e.g. "NodeA").
	Name string
	// Sockets is the number of CPU sockets (NUMA domains).
	Sockets int
	// CoresPerSocket is the number of physical cores per socket.
	CoresPerSocket int

	// L2PerCore is the private second-level cache size per core in bytes.
	L2PerCore int64
	// L3PerSocket is the shared last-level cache size per socket in bytes.
	L3PerSocket int64
	// L3Inclusive records whether the L3 duplicates L2 contents. On
	// non-inclusive parts the available cache is C = L3 + p*L2 (paper §4.2).
	L3Inclusive bool

	// DRAMBandwidthPerSocket is the sustainable DRAM traffic per socket in
	// bytes/second (reads+writes combined, as the memory controller sees it).
	DRAMBandwidthPerSocket float64
	// DRAMBandwidthPerCore caps how much DRAM traffic a single core can
	// generate (limited by outstanding line fills), bytes/second.
	DRAMBandwidthPerCore float64
	// CacheBandwidthPerCore is the per-core streaming bandwidth to/from the
	// private cache hierarchy in bytes/second.
	CacheBandwidthPerCore float64
	// L3BandwidthPerSocket is the aggregate shared-cache bandwidth per
	// socket in bytes/second.
	L3BandwidthPerSocket float64
	// CrossSocketFactor scales effective bandwidth for accesses whose data
	// is homed on a remote socket (xGMI/UPI limited), in (0, 1].
	CrossSocketFactor float64

	// SyncLatencyIntra is the one-way flag-propagation latency between two
	// cores on the same socket, in seconds.
	SyncLatencyIntra float64
	// SyncLatencyInter is the same between sockets.
	SyncLatencyInter float64

	// ReducePerCoreBandwidth caps the per-core arithmetic throughput of a
	// streaming reduction kernel (SIMD FMA limited), bytes of operand
	// processed per second.
	ReducePerCoreBandwidth float64
}

// Cores returns the total number of cores on the node.
func (n *Node) Cores() int { return n.Sockets * n.CoresPerSocket }

// SocketOf returns the socket index of a core under block (compact) binding:
// cores [0, CoresPerSocket) on socket 0, and so on. This mirrors the
// process-core binding the paper's artifact checks with lscpu (§C.2 S8).
func (n *Node) SocketOf(core int) int {
	if core < 0 || core >= n.Cores() {
		panic(fmt.Sprintf("topo: core %d out of range on %s (%d cores)", core, n.Name, n.Cores()))
	}
	return core / n.CoresPerSocket
}

// AvailableCache returns the cache capacity usable by p cooperating
// processes, following the paper's rule (§4.2): non-inclusive LLC gives
// C = c' + p*c”, inclusive gives C = c'.
func (n *Node) AvailableCache(p int) int64 {
	c := n.L3PerSocket * int64(n.Sockets)
	if !n.L3Inclusive {
		c += int64(p) * n.L2PerCore
	}
	return c
}

// Validate reports whether the description is internally consistent.
func (n *Node) Validate() error {
	switch {
	case n.Sockets <= 0:
		return errors.New("topo: Sockets must be positive")
	case n.CoresPerSocket <= 0:
		return errors.New("topo: CoresPerSocket must be positive")
	case n.L2PerCore <= 0 || n.L3PerSocket <= 0:
		return errors.New("topo: cache sizes must be positive")
	case n.DRAMBandwidthPerSocket <= 0 || n.CacheBandwidthPerCore <= 0 || n.L3BandwidthPerSocket <= 0 || n.DRAMBandwidthPerCore <= 0:
		return errors.New("topo: bandwidths must be positive")
	case n.CrossSocketFactor <= 0 || n.CrossSocketFactor > 1:
		return errors.New("topo: CrossSocketFactor must be in (0,1]")
	case n.SyncLatencyIntra <= 0 || n.SyncLatencyInter < n.SyncLatencyIntra:
		return errors.New("topo: sync latencies must satisfy 0 < intra <= inter")
	case n.ReducePerCoreBandwidth <= 0:
		return errors.New("topo: ReducePerCoreBandwidth must be positive")
	}
	return nil
}

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = 1e9 // bandwidths use decimal GB/s
)

// NodeA models the paper's 2 x 32-core AMD EPYC 7452 node: 256 MB of
// non-inclusive L3 node-wide (the paper's C = c' + p*c” = 294912 KB implies
// c' = 256 MB total, i.e. 128 MB per socket), 512 KB L2 per core, 16
// DDR4-3200 channels. DRAM bandwidth is calibrated from Table 4: nt-copy
// sustains ~237 GB/s of copy bandwidth, i.e. ~474 GB/s raw traffic per node.
func NodeA() *Node {
	return &Node{
		Name:                   "NodeA",
		Sockets:                2,
		CoresPerSocket:         32,
		L2PerCore:              512 * kb,
		L3PerSocket:            128 * mb,
		L3Inclusive:            false,
		DRAMBandwidthPerSocket: 237 * gb, // raw traffic; node total 474 GB/s
		DRAMBandwidthPerCore:   21 * gb,
		CacheBandwidthPerCore:  45 * gb,
		L3BandwidthPerSocket:   640 * gb,
		CrossSocketFactor:      0.55,
		SyncLatencyIntra:       250e-9,
		SyncLatencyInter:       750e-9,
		ReducePerCoreBandwidth: 38 * gb,
	}
}

// NodeB models the 2 x 24-core Intel Xeon Platinum 8163 node: 66 MB of
// non-inclusive L3 node-wide (33 MB per socket; the paper's C = 116736 KB
// = 66 MB + 48 MB L2), 1 MB L2 per core, 12 DDR4-2666 channels, 3x UPI.
func NodeB() *Node {
	return &Node{
		Name:                   "NodeB",
		Sockets:                2,
		CoresPerSocket:         24,
		L2PerCore:              1 * mb,
		L3PerSocket:            33 * mb,
		L3Inclusive:            false,
		DRAMBandwidthPerSocket: 95 * gb, // node total 190 GB/s
		DRAMBandwidthPerCore:   14 * gb,
		CacheBandwidthPerCore:  40 * gb,
		L3BandwidthPerSocket:   400 * gb,
		CrossSocketFactor:      0.5,
		SyncLatencyIntra:       300e-9,
		SyncLatencyInter:       900e-9,
		ReducePerCoreBandwidth: 30 * gb,
	}
}

// NodeC models the Cluster C node: 2 x 12-core Intel Xeon E5-2692 v2 with
// 30 MB of inclusive L3 per socket (paper: shared 60 MB inclusive node-wide).
func NodeC() *Node {
	return &Node{
		Name:                   "NodeC",
		Sockets:                2,
		CoresPerSocket:         12,
		L2PerCore:              256 * kb,
		L3PerSocket:            30 * mb,
		L3Inclusive:            true,
		DRAMBandwidthPerSocket: 45 * gb,
		DRAMBandwidthPerCore:   9 * gb,
		CacheBandwidthPerCore:  28 * gb,
		L3BandwidthPerSocket:   200 * gb,
		CrossSocketFactor:      0.5,
		SyncLatencyIntra:       350e-9,
		SyncLatencyInter:       1000e-9,
		ReducePerCoreBandwidth: 18 * gb,
	}
}

// Preset returns a node preset by name ("NodeA", "NodeB", "NodeC").
func Preset(name string) (*Node, error) {
	switch name {
	case "NodeA", "nodea", "A", "a":
		return NodeA(), nil
	case "NodeB", "nodeb", "B", "b":
		return NodeB(), nil
	case "NodeC", "nodec", "C", "c":
		return NodeC(), nil
	}
	return nil, fmt.Errorf("topo: unknown node preset %q", name)
}
