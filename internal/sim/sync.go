package sim

import (
	"fmt"
	"math"
)

// Flag is a monotonically increasing synchronization cell, modelling the
// atomic "flag held by each process" that shared-memory collectives use to
// signal between reduction steps (paper §3.3). A waiter blocks until the
// flag value reaches a threshold; when released, its clock is raised to the
// setter's clock plus the signal latency, modelling the cache-coherence
// propagation delay of the flag line.
type Flag struct {
	name    string
	val     uint64
	setTime float64
	waiters []flagWaiter
}

type flagWaiter struct {
	p         *Proc
	threshold uint64
	latency   float64
}

// NewFlag returns a flag with value 0.
func NewFlag(name string) *Flag {
	return &Flag{name: name}
}

// Value returns the current flag value.
func (f *Flag) Value() uint64 { return f.val }

// Set raises the flag to v (panics if v would decrease it) and wakes any
// waiters whose threshold is now satisfied.
func (p *Proc) Set(f *Flag, v uint64) {
	if v < f.val {
		panic(fmt.Sprintf("sim: flag %q set backwards %d -> %d", f.name, f.val, v))
	}
	f.val = v
	f.setTime = p.clock
	remaining := f.waiters[:0]
	for _, w := range f.waiters {
		if f.val >= w.threshold {
			w.p.unblock(f.setTime + w.latency)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
}

// Incr increments the flag by one.
func (p *Proc) Incr(f *Flag) { p.Set(f, f.val+1) }

// Wait blocks p until the flag reaches at least v. The latency parameter is
// the one-way signal propagation cost charged to the waiter when it observes
// the flag (0 if the flag was already set — the waiter still pays latency,
// modelling the load of the remote flag line). A wait on an already
// satisfied flag never parks: it costs one Advance, which inside the
// engine's run-ahead window is a single comparison.
func (p *Proc) Wait(f *Flag, v uint64, latency float64) {
	if f.val >= v {
		// Flag already set: pay only the flag-line load.
		p.Advance(latency)
		return
	}
	f.waiters = append(f.waiters, flagWaiter{p: p, threshold: v, latency: latency})
	p.block(f)
}

// WaitTimeout is Wait bounded by a virtual-time deadline of now+timeout
// seconds: instead of hanging forever on a flag that never reaches v, the
// waiter resumes at exactly the deadline and WaitTimeout reports false.
// The timeout is a discrete virtual-time event, so bounded waits replay
// deterministically; there is no wall-clock involvement.
func (p *Proc) WaitTimeout(f *Flag, v uint64, latency, timeout float64) bool {
	if timeout < 0 || math.IsNaN(timeout) {
		panic(fmt.Sprintf("sim: flag %q wait with invalid timeout %v", f.name, timeout))
	}
	if f.val >= v {
		p.Advance(latency)
		return true
	}
	f.waiters = append(f.waiters, flagWaiter{p: p, threshold: v, latency: latency})
	return !p.blockTimeout(f, p.clock+timeout)
}

// cancelWait drops p from the waiter list when its bounded wait expires, so
// a later Set cannot wake a proc that already resumed.
func (f *Flag) cancelWait(p *Proc) {
	for i, w := range f.waiters {
		if w.p == p {
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			return
		}
	}
}

// blockedReason renders a waiter's condition for deadlock diagnostics.
func (f *Flag) blockedReason(p *Proc) string {
	for _, w := range f.waiters {
		if w.p == p {
			return fmt.Sprintf("flag %q >= %d (now %d)", f.name, w.threshold, f.val)
		}
	}
	return fmt.Sprintf("flag %q (now %d)", f.name, f.val)
}

// Barrier is a reusable sense-reversing barrier over a fixed set of
// participants. Arrival order is resolved in virtual-time order by the
// engine; all participants leave with clock = max(arrival clocks) + latency.
type Barrier struct {
	name    string
	parties int
	arrived int
	maxTime float64
	waiting []*Proc
	epoch   uint64
}

// NewBarrier returns a barrier for the given number of participants.
func NewBarrier(name string, parties int) *Barrier {
	if parties <= 0 {
		panic("sim: barrier needs at least one party")
	}
	return &Barrier{name: name, parties: parties}
}

// Parties returns the number of participants.
func (b *Barrier) Parties() int { return b.parties }

// Epoch returns how many times the barrier has completed.
func (b *Barrier) Epoch() uint64 { return b.epoch }

// Arrive blocks p until all parties have arrived. Every participant leaves
// with its clock set to max(arrival clocks) + latency, modelling a
// tree/flag-based barrier whose cost is folded into latency by the caller.
func (p *Proc) Arrive(b *Barrier, latency float64) {
	if p.clock > b.maxTime {
		b.maxTime = p.clock
	}
	b.arrived++
	if b.arrived < b.parties {
		b.waiting = append(b.waiting, p)
		p.block(b)
		return
	}
	// Last arrival releases everyone.
	release := b.maxTime + latency
	for _, w := range b.waiting {
		w.unblock(release)
	}
	b.waiting = b.waiting[:0]
	b.arrived = 0
	b.maxTime = 0
	b.epoch++
	p.AdvanceTo(release)
}

// blockedReason renders a waiter's condition for deadlock diagnostics.
func (b *Barrier) blockedReason(p *Proc) string {
	return fmt.Sprintf("barrier %q (%d/%d arrived)", b.name, b.arrived, b.parties)
}
