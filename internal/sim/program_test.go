package sim

import (
	"errors"
	"runtime"
	"testing"
)

// tableProgram is an explicit-table Program for tests.
type tableProgram struct {
	durs [][]Tick     // [rank][step]
	deps [][][][2]int // [rank][step] -> list of (depRank, depStep)
}

func (p *tableProgram) Ranks() int             { return len(p.durs) }
func (p *tableProgram) Steps(rank int) int     { return len(p.durs[rank]) }
func (p *tableProgram) Duration(r, s int) Tick { return p.durs[r][s] }
func (p *tableProgram) Deps(r, s int, visit func(int, int) bool) {
	for _, d := range p.deps[r][s] {
		if !visit(d[0], d[1]) {
			return
		}
	}
}

func bothEngines(t *testing.T, p Program) (ProgramResult, ProgramResult) {
	t.Helper()
	ev, err := RunProgramEvent(p)
	if err != nil {
		t.Fatalf("event engine: %v", err)
	}
	co, err := RunProgramCoroutine(p)
	if err != nil {
		t.Fatalf("coroutine engine: %v", err)
	}
	return ev, co
}

// TestProgramChainGolden: two ranks, rank 1's steps chase rank 0's.
// C0 = [10, 30]; rank1 step0 waits C0[1]=30, +5 => 35; step1 +7 => 42.
func TestProgramChainGolden(t *testing.T) {
	p := &tableProgram{
		durs: [][]Tick{{10, 20}, {5, 7}},
		deps: [][][][2]int{
			{{}, {}},
			{{{0, 1}}, {}},
		},
	}
	ev, co := bothEngines(t, p)
	if ev.Makespan != 42 || co.Makespan != 42 {
		t.Fatalf("makespans event=%d coroutine=%d, want 42", ev.Makespan, co.Makespan)
	}
	if ev.StepsRun != 4 || ev.Events != 4 {
		t.Fatalf("event stats %+v, want 4 steps/events", ev)
	}
}

// TestProgramDiamondGolden: rank 3 joins on ranks 1 and 2, which both wait
// on rank 0. C0=[8]; C1 = 8+3 = 11; C2 = 8+9 = 17; C3 = max(11,17)+1 = 18.
func TestProgramDiamondGolden(t *testing.T) {
	p := &tableProgram{
		durs: [][]Tick{{8}, {3}, {9}, {1}},
		deps: [][][][2]int{
			{{}},
			{{{0, 0}}},
			{{{0, 0}}},
			{{{1, 0}, {2, 0}}},
		},
	}
	ev, co := bothEngines(t, p)
	if ev.Makespan != 18 || co.Makespan != 18 {
		t.Fatalf("makespans event=%d coroutine=%d, want 18", ev.Makespan, co.Makespan)
	}
}

// TestProgramZeroStepRanks: ranks with no steps finish at time zero and
// must not deadlock either engine.
func TestProgramZeroStepRanks(t *testing.T) {
	p := &tableProgram{
		durs: [][]Tick{{}, {4}, {}},
		deps: [][][][2]int{{}, {{}}, {}},
	}
	ev, co := bothEngines(t, p)
	if ev.Makespan != 4 || co.Makespan != 4 {
		t.Fatalf("makespans event=%d coroutine=%d, want 4", ev.Makespan, co.Makespan)
	}
}

// TestProgramNegativeDepStep: depStep < 0 means ready at time zero.
func TestProgramNegativeDepStep(t *testing.T) {
	p := &tableProgram{
		durs: [][]Tick{{6}, {2}},
		deps: [][][][2]int{
			{{{1, -1}}},
			{{}},
		},
	}
	ev, co := bothEngines(t, p)
	if ev.Makespan != 6 || co.Makespan != 6 {
		t.Fatalf("makespans event=%d coroutine=%d, want 6", ev.Makespan, co.Makespan)
	}
}

// randomProgram builds a seeded acyclic program: step s may depend only on
// steps with strictly smaller index (of any rank), so the DAG is layered.
func randomProgram(seed uint64, ranks, maxSteps int) *tableProgram {
	rng := seed
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	p := &tableProgram{
		durs: make([][]Tick, ranks),
		deps: make([][][][2]int, ranks),
	}
	for r := 0; r < ranks; r++ {
		steps := next(maxSteps + 1)
		p.durs[r] = make([]Tick, steps)
		p.deps[r] = make([][][2]int, steps)
		for s := 0; s < steps; s++ {
			p.durs[r][s] = Tick(1 + next(1000))
			for d := next(4); d > 0 && s > 0; d-- {
				// Acyclic by construction: deps only reach strictly earlier
				// step indices (clamped to existing targets below).
				p.deps[r][s] = append(p.deps[r][s], [2]int{next(ranks), next(s)})
			}
		}
	}
	// Clamp dep steps to targets that exist; redirect the rest to "ready".
	for r := range p.deps {
		for s := range p.deps[r] {
			for i, d := range p.deps[r][s] {
				if d[1] >= len(p.durs[d[0]]) {
					p.deps[r][s][i][1] = len(p.durs[d[0]]) - 1
				}
			}
		}
	}
	return p
}

// TestProgramRandomParity: exact tick equality on randomized layered DAGs.
func TestProgramRandomParity(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		p := randomProgram(seed, 3+int(seed%13), 6)
		ev, co := bothEngines(t, p)
		if ev.Makespan != co.Makespan {
			t.Fatalf("seed %d: event %d != coroutine %d ticks", seed, ev.Makespan, co.Makespan)
		}
		ev2, err := RunProgramEvent(p)
		if err != nil || ev2.Makespan != ev.Makespan || ev2.Events != ev.Events {
			t.Fatalf("seed %d: event rerun diverged (%v)", seed, err)
		}
	}
}

// TestProgramDeadlock: a dependency cycle is reported, not hung.
func TestProgramDeadlock(t *testing.T) {
	p := &tableProgram{
		durs: [][]Tick{{1}, {1}},
		deps: [][][][2]int{
			{{{1, 0}}},
			{{{0, 0}}},
		},
	}
	_, err := RunProgramEvent(p)
	var dl *ProgramDeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("event engine: got %v, want ProgramDeadlockError", err)
	}
	if dl.Finished != 0 || dl.Total != 2 || len(dl.Waiting) == 0 {
		t.Fatalf("deadlock detail %+v", dl)
	}
	if _, err := RunProgramCoroutine(p); err == nil {
		t.Fatal("coroutine engine did not report the cycle")
	}
}

// TestProgramFlatMemory: a wide program on the event engine creates no
// per-rank goroutines.
func TestProgramFlatMemory(t *testing.T) {
	const ranks = 100000
	p := &chainProgram{ranks: ranks}
	before := runtime.NumGoroutine()
	res, err := RunProgramEvent(p)
	if err != nil {
		t.Fatal(err)
	}
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines grew %d -> %d under the event engine", before, after)
	}
	if res.StepsRun != ranks {
		t.Fatalf("steps run %d, want %d", res.StepsRun, ranks)
	}
	if res.Makespan != ranks {
		t.Fatalf("makespan %d, want %d", res.Makespan, ranks)
	}
}

// chainProgram: rank r runs one unit step after rank r-1 — a maximally
// serial dependency chain, procedurally generated (no tables).
type chainProgram struct{ ranks int }

func (p *chainProgram) Ranks() int             { return p.ranks }
func (p *chainProgram) Steps(int) int          { return 1 }
func (p *chainProgram) Duration(int, int) Tick { return 1 }
func (p *chainProgram) Deps(rank, _ int, visit func(int, int) bool) {
	if rank > 0 {
		visit(rank-1, 0)
	}
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EngineKind
	}{{"coroutine", EngineCoroutine}, {"coro", EngineCoroutine}, {"EVENT", EngineEvent}, {" calendar ", EngineEvent}} {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseEngine("quantum"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if EngineEvent.String() != "event" || EngineCoroutine.String() != "coroutine" {
		t.Fatal("String spellings changed")
	}
}

func BenchmarkProgramEvent(b *testing.B) {
	p := &chainProgram{ranks: 4096}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunProgramEvent(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProgramCoroutine(b *testing.B) {
	p := &chainProgram{ranks: 4096}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunProgramCoroutine(p); err != nil {
			b.Fatal(err)
		}
	}
}
