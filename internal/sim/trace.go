package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// Tracer records simulation events for post-mortem inspection. Events are
// exported in the Chrome trace-event format (chrome://tracing, Perfetto),
// with one "thread" per simulated process and virtual time mapped to
// microseconds.
type Tracer struct {
	events []traceEvent
	// scale converts virtual seconds to trace microseconds.
	scale float64
}

// traceEvent is one Chrome trace-event entry.
type traceEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur,omitempty"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
}

// NewTracer creates a tracer; virtual seconds are exported as microseconds.
func NewTracer() *Tracer {
	return &Tracer{scale: 1e6}
}

// Span records a named interval [from, to) on proc p's timeline.
func (t *Tracer) Span(p *Proc, name string, from, to float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Phase: "X",
		TS: from * t.scale, Dur: (to - from) * t.scale,
		PID: 0, TID: p.id,
	})
}

// Instant records a point event at proc p's current time.
func (t *Tracer) Instant(p *Proc, name string) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Phase: "i",
		TS: p.clock * t.scale, PID: 0, TID: p.id,
	})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int { return len(t.events) }

// WriteJSON emits the trace in Chrome trace-event JSON array format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, e := range t.events {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// TracedAdvance advances p by dt and records the interval under name.
// It is the instrumented variant of Advance for callers that carry a
// Tracer (nil tracers are free).
func (p *Proc) TracedAdvance(t *Tracer, name string, dt float64) {
	from := p.clock
	p.Advance(dt)
	if t != nil {
		t.Span(p, name, from, p.clock)
	}
}

// String summarizes the tracer for diagnostics.
func (t *Tracer) String() string {
	return fmt.Sprintf("sim.Tracer{%d events}", len(t.events))
}
