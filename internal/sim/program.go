// Compiled step programs: the shared schedule representation both engines
// execute.
//
// A Program describes, per rank, an ordered sequence of steps; each step has
// an integer-tick duration and dependencies on other ranks' step
// completions. Step/chunk-structured collectives (MA chains, RG trees,
// socket-aware compositions, inter-node rings) compile to this form
// directly, with the step logic computed procedurally from (rank, step) so
// nothing proportional to ranks x steps is ever materialized.
//
// The completion-time semantics are defined once, engine-independently:
//
//	C[r][s] = max(C[r][s-1], max over deps d of C[d]) + Duration(r, s)
//
// Both interpreters realize exactly this recurrence with exact integer
// arithmetic — the event engine natively on ticks, the coroutine engine by
// advancing float clocks in whole-tick units (integers below 2^53 are exact
// in float64) — so a parity gate can demand tick-identical makespans.
package sim

import (
	"fmt"
	"strings"
)

// Program is a compiled step schedule over a set of ranks.
//
// Steps of one rank execute strictly in order. Deps must call visit for
// each dependency of (rank, step) in a fixed deterministic order; a
// dependency with depStep < 0 means "ready at time zero" and is skipped.
// Implementations must be pure: the same (rank, step) always yields the
// same durations and dependencies.
type Program interface {
	// Ranks returns the number of ranks (state machines).
	Ranks() int
	// Steps returns how many steps the given rank executes.
	Steps(rank int) int
	// Duration returns the integer-tick cost of one step.
	Duration(rank, step int) Tick
	// Deps enumerates the dependencies of one step. visit returns false to
	// stop the enumeration early.
	Deps(rank, step int, visit func(depRank, depStep int) bool)
}

// EngineKind selects the simulation core a program runs on.
type EngineKind int

const (
	// EngineCoroutine is the iter.Pull coroutine engine: one goroutine
	// stack per rank, the exact reference for intra-node runs.
	EngineCoroutine EngineKind = iota
	// EngineEvent is the event-calendar engine: flat O(1) memory per rank,
	// zero goroutines per rank, the scale substrate.
	EngineEvent
)

// String returns the -engine flag spelling.
func (k EngineKind) String() string {
	switch k {
	case EngineCoroutine:
		return "coroutine"
	case EngineEvent:
		return "event"
	}
	return fmt.Sprintf("engine(%d)", int(k))
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (EngineKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "coroutine", "coro", "goroutine":
		return EngineCoroutine, nil
	case "event", "calendar", "ev":
		return EngineEvent, nil
	}
	return 0, fmt.Errorf("sim: unknown engine %q (want coroutine or event)", s)
}

// ProgramResult reports one program execution.
type ProgramResult struct {
	// Makespan is the latest step completion tick.
	Makespan Tick
	// StepsRun is the total number of steps completed across all ranks.
	StepsRun uint64
	// Events is the number of calendar events dispatched (event engine
	// only; zero under the coroutine engine).
	Events uint64
}

// RunProgram executes a program on the selected engine.
func RunProgram(kind EngineKind, p Program) (ProgramResult, error) {
	switch kind {
	case EngineCoroutine:
		return RunProgramCoroutine(p)
	case EngineEvent:
		return RunProgramEvent(p)
	}
	return ProgramResult{}, fmt.Errorf("sim: unknown engine kind %d", int(kind))
}

// ProgramDeadlockError reports a program whose dependency graph cannot
// complete: some ranks remain waiting with an empty calendar.
type ProgramDeadlockError struct {
	Finished int
	Total    int
	// Waiting samples up to eight stuck ranks as "rank@step->dep".
	Waiting []string
}

func (e *ProgramDeadlockError) Error() string {
	return fmt.Sprintf("sim: program deadlock, %d of %d ranks finished; waiting: %s",
		e.Finished, e.Total, strings.Join(e.Waiting, ", "))
}

// programRunner is the event-engine interpreter state: a few words per rank
// and at most one calendar entry per rank. The waiter lists are intrusive
// (index-linked through waitNext), so steady-state execution allocates
// nothing.
type programRunner struct {
	prog     Program
	engine   *EventEngine
	done     []int32 // completed step count per rank
	waitHead []int32 // first rank waiting on this rank (-1 none)
	waitNext []int32 // next waiter in the list this rank is enqueued on
	waitNeed []int32 // done-count the waiting rank requires of its target
	finished int

	// attempt scratch, threaded through the pre-bound visit closure so the
	// per-step dependency scan allocates nothing.
	scanRank    int32
	scanBlocked int32
	scanNeed    int32
	visitFn     func(depRank, depStep int) bool
	handleFn    func(now Tick, actor, data int32)
	makespan    Tick

	// Optional fault arming (program_fault.go). All nil/zero on the healthy
	// path, where the added branches are never taken — completion times are
	// bit-identical to an unarmed run.
	crash     []Tick // poison tick per rank, -1 = healthy
	dead      []bool // ranks whose state machine was poisoned
	deadCount int
	horizon   Tick // no-progress watchdog; 0 = none
	halted    bool
	haltNow   Tick
	notify    func(rank, step int32, now Tick)
	onDead    func(rank int32, at Tick)
}

// RunProgramEvent executes a program on the event-calendar engine: no
// goroutines, flat per-rank state (done counter + one intrusive wait link),
// one completion event in flight per rank.
func RunProgramEvent(p Program) (ProgramResult, error) {
	return runProgramEvent(p, nil)
}

func runProgramEvent(p Program, f *ProgramFaults) (ProgramResult, error) {
	R := p.Ranks()
	r := &programRunner{
		prog:     p,
		engine:   NewEventEngine(),
		done:     make([]int32, R),
		waitHead: make([]int32, R),
		waitNext: make([]int32, R),
		waitNeed: make([]int32, R),
	}
	for i := 0; i < R; i++ {
		r.waitHead[i] = -1
		r.waitNext[i] = -1
	}
	if f != nil {
		if f.CrashTick != nil {
			if len(f.CrashTick) != R {
				return ProgramResult{}, fmt.Errorf("sim: crash ticks for %d ranks, program has %d", len(f.CrashTick), R)
			}
			r.crash = f.CrashTick
			r.dead = make([]bool, R)
		}
		r.horizon = f.Horizon
		r.notify = f.OnComplete
		r.onDead = f.OnDead
	}
	r.visitFn = r.visit
	r.handleFn = r.handle
	for i := 0; i < R; i++ {
		r.attempt(int32(i), 0)
	}
	r.engine.Run(r.handleFn)
	if r.finished != R {
		if f != nil {
			return ProgramResult{}, r.halt()
		}
		return ProgramResult{}, r.deadlock()
	}
	return ProgramResult{
		Makespan: r.makespan,
		StepsRun: r.engine.Processed(),
		Events:   r.engine.Processed(),
	}, nil
}

// visit is the dependency-scan callback: it records the first unmet
// dependency and stops the enumeration there (the sequential-wait order the
// coroutine reference uses; by the max-recurrence this cannot change
// completion times, only the wake bookkeeping).
func (r *programRunner) visit(depRank, depStep int) bool {
	if depStep < 0 || r.done[depRank] > int32(depStep) {
		return true // met (or ready at time zero)
	}
	r.scanBlocked = int32(depRank)
	r.scanNeed = int32(depStep + 1)
	return false
}

// attempt tries to start rank's next step at the current tick: if every
// dependency is complete the completion event is posted; otherwise the rank
// parks on the intrusive waiter list of the first unmet dependency.
func (r *programRunner) attempt(rank int32, now Tick) {
	s := r.done[rank]
	if int(s) >= r.prog.Steps(int(rank)) {
		r.finished++
		return
	}
	r.scanRank = rank
	r.scanBlocked = -1
	r.prog.Deps(int(rank), int(s), r.visitFn)
	if q := r.scanBlocked; q >= 0 {
		r.waitNeed[rank] = r.scanNeed
		r.waitNext[rank] = r.waitHead[q]
		r.waitHead[q] = rank
		return
	}
	fin := now + r.prog.Duration(int(rank), int(s))
	if r.crash != nil {
		if t := r.crash[rank]; t >= 0 && fin >= t {
			// The rank's machine is poisoned before this step can complete:
			// the step vanishes in flight and the rank posts nothing more.
			if !r.dead[rank] {
				r.dead[rank] = true
				r.deadCount++
				if r.onDead != nil {
					r.onDead(rank, t)
				}
			}
			return
		}
	}
	r.engine.Post(fin, rank, 0)
}

// handle processes one step-completion event: bump the rank's done count,
// wake now-eligible waiters (each re-scans its remaining dependencies), and
// start the rank's own next step.
func (r *programRunner) handle(now Tick, actor, _ int32) {
	if r.halted {
		return // draining the calendar after the watchdog fired
	}
	if r.horizon > 0 && now > r.horizon {
		r.halted = true
		r.haltNow = now
		return
	}
	r.done[actor]++
	if r.notify != nil {
		r.notify(actor, r.done[actor]-1, now)
	}
	if now > r.makespan {
		r.makespan = now
	}
	// Detach the waiter list before waking: a woken rank may immediately
	// re-register on this same list (it needs a later step of this rank),
	// and mutating the live list mid-walk would corrupt it.
	w := r.waitHead[actor]
	r.waitHead[actor] = -1
	for w >= 0 {
		next := r.waitNext[w]
		r.waitNext[w] = -1
		if r.waitNeed[w] <= r.done[actor] {
			r.attempt(w, now)
		} else {
			r.waitNext[w] = r.waitHead[actor]
			r.waitHead[actor] = w
		}
		w = next
	}
	r.attempt(actor, now)
}

// deadlock builds the diagnostic for an unfinishable program.
func (r *programRunner) deadlock() error {
	e := &ProgramDeadlockError{Finished: r.finished, Total: r.prog.Ranks()}
	for q := range r.waitHead {
		for w := r.waitHead[q]; w >= 0 && len(e.Waiting) < 8; w = r.waitNext[w] {
			e.Waiting = append(e.Waiting,
				fmt.Sprintf("rank%d@%d->rank%d@%d", w, r.done[w], q, r.waitNeed[w]-1))
		}
		if len(e.Waiting) >= 8 {
			break
		}
	}
	return e
}

// RunProgramCoroutine executes a program on the coroutine engine: one proc
// per rank interpreting its step sequence, with per-rank flags counting
// completed steps. This is the exact reference the event engine is gated
// against — both advance clocks in whole-tick units, and a flag release
// raises the waiter's clock to the setter's completion tick, realizing the
// same max-recurrence.
func RunProgramCoroutine(p Program) (ProgramResult, error) {
	R := p.Ranks()
	e := NewEngine()
	flags := make([]*Flag, R)
	for i := range flags {
		flags[i] = NewFlag(fmt.Sprintf("prog/rank%d", i))
	}
	var steps uint64
	for i := 0; i < R; i++ {
		rank := i
		e.Spawn(fmt.Sprintf("rank%d", rank), func(proc *Proc) {
			S := p.Steps(rank)
			for s := 0; s < S; s++ {
				p.Deps(rank, s, func(depRank, depStep int) bool {
					if depStep >= 0 {
						proc.Wait(flags[depRank], uint64(depStep+1), 0)
					}
					return true
				})
				proc.Advance(float64(p.Duration(rank, s)))
				proc.Incr(flags[rank])
				steps++
			}
		})
	}
	if err := e.Run(); err != nil {
		return ProgramResult{}, err
	}
	return ProgramResult{Makespan: Tick(e.MaxClock()), StepsRun: steps}, nil
}
