package sim

import (
	"bytes"
	"fmt"
	"testing"
)

func TestToTicks(t *testing.T) {
	if got := ToTicks(1e-9); got != 1000 {
		t.Fatalf("1ns = %d ticks, want 1000", got)
	}
	if got := ToTicks(0); got != 0 {
		t.Fatalf("0s = %d ticks, want 0", got)
	}
	if got := ToTicks(2.5); got != Tick(2.5e12) {
		t.Fatalf("2.5s = %d ticks", got)
	}
	if s := Tick(3e12).Seconds(); s != 3.0 {
		t.Fatalf("3e12 ticks = %v s, want 3", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	ToTicks(-1e-9)
}

// TestEventOrderGolden pins the (tick, seq) dispatch order: ties break by
// post order.
func TestEventOrderGolden(t *testing.T) {
	e := NewEventEngine()
	ticks := []Tick{5, 3, 5, 1, 3}
	for i, tk := range ticks {
		e.Post(tk, int32(i), 0)
	}
	var order []int32
	end := e.Run(func(_ Tick, actor, _ int32) { order = append(order, actor) })
	want := []int32{3, 1, 4, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
	if end != 5 {
		t.Fatalf("final time %d, want 5", end)
	}
	if e.Processed() != 5 {
		t.Fatalf("processed %d, want 5", e.Processed())
	}
}

// eventTrace runs a self-expanding cascade (each event spawns children from
// a deterministic LCG) and returns the full dispatch trace as bytes.
func eventTrace(seed uint64) []byte {
	var buf bytes.Buffer
	e := NewEventEngine()
	rng := seed
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	for i := int32(0); i < 16; i++ {
		e.Post(Tick(next(50)), i, 0)
	}
	budget := 2000
	e.Run(func(now Tick, actor, data int32) {
		fmt.Fprintf(&buf, "%d:%d:%d\n", now, actor, data)
		if budget > 0 && next(3) > 0 {
			budget--
			e.After(Tick(next(40)), actor+100, data+1)
		}
	})
	return buf.Bytes()
}

// TestEventDeterminism: same seed, byte-identical traces across runs.
func TestEventDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		a, b := eventTrace(seed), eventTrace(seed)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: traces differ (%d vs %d bytes)", seed, len(a), len(b))
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
	}
	if bytes.Equal(eventTrace(1), eventTrace(2)) {
		t.Fatal("different seeds produced identical traces (trace not sensitive)")
	}
}

func TestPostIntoPastPanics(t *testing.T) {
	e := NewEventEngine()
	e.Post(10, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("posting into the past did not panic")
		}
	}()
	e.Run(func(now Tick, _, _ int32) {
		e.Post(now-1, 1, 0)
	})
}

func TestRunReentryPanics(t *testing.T) {
	e := NewEventEngine()
	e.Post(1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("re-entering Run did not panic")
		}
	}()
	e.Run(func(Tick, int32, int32) {
		e.Run(func(Tick, int32, int32) {})
	})
}

func BenchmarkEventPostPop(b *testing.B) {
	e := NewEventEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Keep a rolling calendar of 1024 entries, cluster-typical depth.
		e.Post(e.now+Tick(i%97), int32(i&1023), 0)
		if e.Pending() >= 1024 {
			ev := e.calendar.pop()
			e.now = ev.tick
		}
	}
}
