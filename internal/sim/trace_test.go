package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer()
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		p.TracedAdvance(tr, "work", 1e-6)
		tr.Instant(p, "marker")
		p.TracedAdvance(tr, "more", 2e-6)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("events = %d, want 3", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events", len(events))
	}
	if events[0]["name"] != "work" || events[0]["ph"] != "X" {
		t.Errorf("first event = %v", events[0])
	}
	if dur := events[0]["dur"].(float64); dur < 0.99 || dur > 1.01 {
		t.Errorf("span duration = %v us, want 1", dur)
	}
	if events[1]["ph"] != "i" {
		t.Errorf("instant phase = %v", events[1]["ph"])
	}
}

func TestNilTracerIsFree(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		p.TracedAdvance(nil, "work", 1e-6)
		var tr *Tracer
		tr.Span(p, "x", 0, 1) // must not panic
		tr.Instant(p, "y")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerString(t *testing.T) {
	tr := NewTracer()
	if !strings.Contains(tr.String(), "0 events") {
		t.Errorf("String() = %s", tr.String())
	}
}
