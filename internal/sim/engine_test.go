package sim

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSingleProcAdvance(t *testing.T) {
	e := NewEngine()
	var end float64
	e.Spawn("p0", func(p *Proc) {
		p.Advance(1.5)
		p.Advance(2.5)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 4.0 {
		t.Fatalf("clock = %v, want 4.0", end)
	}
	if e.MaxClock() != 4.0 {
		t.Fatalf("MaxClock = %v, want 4.0", e.MaxClock())
	}
}

func TestVirtualTimeOrdering(t *testing.T) {
	// The proc with the smaller clock must always run first, regardless of
	// spawn order. We record the interleaving of "ticks".
	e := NewEngine()
	var order []string
	e.Spawn("slow", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Advance(10)
			order = append(order, "slow")
		}
	})
	e.Spawn("fast", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Advance(1)
			order = append(order, "fast")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, ",")
	want := "fast,fast,fast,slow,slow,slow"
	if got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) { p.Advance(-1) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	_ = e.Run()
}

func TestFlagSignalRaisesWaiterClock(t *testing.T) {
	e := NewEngine()
	f := NewFlag("f")
	var waiterTime float64
	e.Spawn("setter", func(p *Proc) {
		p.Advance(5)
		p.Set(f, 1)
	})
	e.Spawn("waiter", func(p *Proc) {
		p.Wait(f, 1, 0.25)
		waiterTime = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waiterTime != 5.25 {
		t.Fatalf("waiter released at %v, want 5.25", waiterTime)
	}
}

func TestFlagAlreadySetChargesOnlyLatency(t *testing.T) {
	e := NewEngine()
	f := NewFlag("f")
	var waiterTime float64
	e.Spawn("setter", func(p *Proc) {
		p.Set(f, 3)
	})
	e.Spawn("waiter", func(p *Proc) {
		p.Advance(10)
		p.Wait(f, 2, 0.5)
		waiterTime = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waiterTime != 10.5 {
		t.Fatalf("waiter time = %v, want 10.5", waiterTime)
	}
}

func TestFlagMultipleWaitersDifferentThresholds(t *testing.T) {
	e := NewEngine()
	f := NewFlag("f")
	released := map[uint64]float64{}
	for _, thr := range []uint64{1, 2, 3} {
		thr := thr
		e.Spawn("w", func(p *Proc) {
			p.Wait(f, thr, 0)
			released[thr] = p.Now()
		})
	}
	e.Spawn("setter", func(p *Proc) {
		p.Advance(1)
		p.Set(f, 1)
		p.Advance(1)
		p.Set(f, 2)
		p.Advance(1)
		p.Set(f, 3)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for thr, want := range map[uint64]float64{1: 1, 2: 2, 3: 3} {
		if released[thr] != want {
			t.Errorf("waiter(>=%d) released at %v, want %v", thr, released[thr], want)
		}
	}
}

func TestFlagBackwardsSetPanics(t *testing.T) {
	e := NewEngine()
	f := NewFlag("f")
	e.Spawn("p", func(p *Proc) {
		p.Set(f, 2)
		p.Set(f, 1)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards flag set")
		}
	}()
	_ = e.Run()
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	e := NewEngine()
	b := NewBarrier("b", 3)
	times := make([]float64, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Advance(float64(i + 1)) // arrive at 1, 2, 3
			p.Arrive(b, 0.5)
			times[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, ti := range times {
		if ti != 3.5 {
			t.Errorf("proc %d left barrier at %v, want 3.5", i, ti)
		}
	}
	if b.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", b.Epoch())
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine()
	b := NewBarrier("b", 2)
	var last float64
	for i := 0; i < 2; i++ {
		e.Spawn("p", func(p *Proc) {
			for round := 0; round < 5; round++ {
				p.Advance(1)
				p.Arrive(b, 0)
			}
			last = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 5 {
		t.Fatalf("final clock = %v, want 5", last)
	}
	if b.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", b.Epoch())
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	f := NewFlag("never")
	e.Spawn("stuck", func(p *Proc) {
		p.Wait(f, 1, 0)
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("unhelpful deadlock error: %v", err)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	// Two identical runs must produce the identical event trace.
	run := func() []int {
		e := NewEngine()
		var trace []int
		f := NewFlag("f")
		for i := 0; i < 8; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Advance(float64(i%3) * 0.1)
				trace = append(trace, i)
				p.Set(f, f.Value()+1)
				p.Wait(f, 8, 0)
				trace = append(trace, 100+i)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		p.Advance(1)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate to Run caller")
		}
	}()
	_ = e.Run()
}

func TestOnlyOneProcRunsAtATime(t *testing.T) {
	e := NewEngine()
	var running int32
	for i := 0; i < 16; i++ {
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < 50; j++ {
				if atomic.AddInt32(&running, 1) != 1 {
					t.Error("two procs running concurrently")
				}
				atomic.AddInt32(&running, -1)
				p.Advance(0.001)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestYieldSkipPreservesVirtualTimeOrder(t *testing.T) {
	// The skip-yield fast path must never let a proc execute an event
	// while another runnable proc has a strictly earlier clock. We record
	// (clock, id) event pairs and verify a proc only ran while being the
	// minimum.
	e := NewEngine()
	type ev struct {
		id    int
		clock float64
	}
	var events []ev
	clocks := make([]float64, 4)
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Advance(float64((i*7+j*3)%5+1) * 0.01)
				events = append(events, ev{i, p.Now()})
				clocks[i] = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Replay: simulate per-proc event queues and check each event's clock
	// was <= every other proc's NEXT event clock at that moment.
	next := make([]int, 4)
	perProc := make([][]float64, 4)
	for _, v := range events {
		perProc[v.id] = append(perProc[v.id], v.clock)
	}
	for _, v := range events {
		for other := 0; other < 4; other++ {
			if other == v.id || next[other] >= len(perProc[other]) {
				continue
			}
			// The other proc's next event must not be earlier than the
			// event that just ran (else ordering was violated).
			if perProc[other][next[other]] < v.clock-1e-12 {
				t.Fatalf("proc %d ran at %.4f while proc %d's next event was %.4f",
					v.id, v.clock, other, perProc[other][next[other]])
			}
		}
		next[v.id]++
	}
}

func TestMaxClockIsMakespanProperty(t *testing.T) {
	// Property: for any set of per-proc advance sequences, MaxClock equals
	// the max of the per-proc sums.
	f := func(durs [][]uint8) bool {
		if len(durs) == 0 || len(durs) > 8 {
			return true
		}
		e := NewEngine()
		want := 0.0
		for _, ds := range durs {
			if len(ds) > 32 {
				ds = ds[:32]
			}
			sum := 0.0
			for _, d := range ds {
				sum += float64(d) / 255.0
			}
			if sum > want {
				want = sum
			}
			ds := ds
			e.Spawn("p", func(p *Proc) {
				for _, d := range ds {
					p.Advance(float64(d) / 255.0)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		got := e.MaxClock()
		return got > want-1e-9 && got < want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestProcPanicLeavesNoGoroutines(t *testing.T) {
	// A panicking proc must not strand the other procs' coroutine
	// goroutines in their suspended state: Run's teardown unwinds all of
	// them before re-raising.
	runtime.GC()
	before := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		e := NewEngine()
		f := NewFlag("never")
		for i := 0; i < 8; i++ {
			e.Spawn("blocked", func(p *Proc) { p.Wait(f, 1, 0) })
		}
		for i := 0; i < 8; i++ {
			e.Spawn("looping", func(p *Proc) {
				for j := 0; j < 100; j++ {
					p.Advance(0.5)
				}
			})
		}
		e.Spawn("bad", func(p *Proc) {
			p.Advance(1)
			panic("boom")
		})
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic to propagate")
				}
			}()
			_ = e.Run()
		}()
	}
	waitForGoroutines(t, before)
}

func TestDeadlockLeavesNoGoroutines(t *testing.T) {
	// Likewise a deadlocked run must unwind its permanently blocked procs.
	runtime.GC()
	before := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		e := NewEngine()
		f := NewFlag("never")
		for i := 0; i < 8; i++ {
			e.Spawn("stuck", func(p *Proc) {
				p.Advance(float64(i))
				p.Wait(f, 1, 0)
			})
		}
		if err := e.Run(); err == nil {
			t.Fatal("expected deadlock error")
		}
	}
	waitForGoroutines(t, before)
}

func TestKilledProcsRunDeferredFunctions(t *testing.T) {
	// Teardown unwinds proc goroutines via Goexit, so body defers (resource
	// cleanup in rank code) still execute.
	var cleanups int32
	e := NewEngine()
	f := NewFlag("never")
	for i := 0; i < 4; i++ {
		e.Spawn("stuck", func(p *Proc) {
			defer atomic.AddInt32(&cleanups, 1)
			p.Wait(f, 1, 0)
		})
	}
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt32(&cleanups) != 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := atomic.LoadInt32(&cleanups); got != 4 {
		t.Fatalf("%d of 4 deferred cleanups ran on teardown", got)
	}
}

// waitForGoroutines polls until the goroutine count returns to the baseline
// (teardown waits for proc goroutines, but the final runtime exit of a
// goroutine is asynchronous to the WaitGroup).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), baseline)
}

func TestHeapIndexResetOnPop(t *testing.T) {
	// Popped procs must not keep a stale heap index: makeRunnable relies on
	// heapIndex == -1 to reject double-pushes.
	e := NewEngine()
	ps := make([]*Proc, 5)
	for i := range ps {
		ps[i] = &Proc{id: i, name: "p", engine: e, heapIndex: -1, clock: float64(5 - i)}
	}
	for _, p := range ps {
		e.makeRunnable(p)
	}
	for i := 0; i < len(ps); i++ {
		p := e.runnable.pop()
		if p.heapIndex != -1 {
			t.Fatalf("popped proc %q has stale heapIndex %d, want -1", p.name, p.heapIndex)
		}
	}
}

func TestDoublePushPanics(t *testing.T) {
	e := NewEngine()
	p := &Proc{name: "p", engine: e, heapIndex: -1}
	e.makeRunnable(p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double push")
		}
	}()
	e.makeRunnable(p)
}
