package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestSlowdownStretchesAdvance(t *testing.T) {
	e := NewEngine()
	var fastEnd, slowEnd float64
	e.Spawn("fast", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(1)
		}
		fastEnd = p.Now()
	})
	slow := e.Spawn("slow", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(1)
		}
		slowEnd = p.Now()
	})
	slow.SetSlowdown(3)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fastEnd != 10 {
		t.Errorf("fast proc ended at %v, want 10", fastEnd)
	}
	if slowEnd != 30 {
		t.Errorf("slow proc ended at %v, want 30 (3x slowdown)", slowEnd)
	}
}

func TestSlowdownDeterministic(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		var clocks []float64
		for i := 0; i < 4; i++ {
			i := i
			p := e.Spawn("p", func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Advance(0.5 + float64(i)*0.1)
				}
				clocks = append(clocks, p.Now())
			})
			if i == 2 {
				p.SetSlowdown(7.5)
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return clocks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("injected runs diverged at %d: %x vs %x", i, a[i], b[i])
		}
	}
}

func TestInjectedStallDiagnosedAsDeadlock(t *testing.T) {
	e := NewEngine()
	f := NewFlag("f")
	victim := e.Spawn("victim", func(p *Proc) {
		p.Advance(1)
		p.Set(f, 1) // never reached: the stall fires at t=0.5
	})
	victim.InjectStallAt(0.5, false, "fault: injected stall (plan chaos-1)")
	e.Spawn("waiter", func(p *Proc) {
		p.Wait(f, 1, 0)
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock from injected stall")
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error is %T, want *DeadlockError", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "victim") || !strings.Contains(msg, "injected stall") {
		t.Errorf("stall not attributed to victim: %v", msg)
	}
	if !strings.Contains(msg, "chaos-1") {
		t.Errorf("plan label lost from diagnosis: %v", msg)
	}
}

func TestInjectedCrashAttributed(t *testing.T) {
	e := NewEngine()
	f := NewFlag("f")
	victim := e.Spawn("rank3", func(p *Proc) {
		p.Advance(1)
		p.Set(f, 1)
	})
	victim.InjectStallAt(0.25, true, "plan chaos-2")
	e.Spawn("rank0", func(p *Proc) { p.Wait(f, 1, 0) })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected injected crash to propagate")
		}
		pp, ok := r.(*ProcPanic)
		if !ok {
			t.Fatalf("panic value is %T, want *ProcPanic", r)
		}
		if pp.ProcName != "rank3" {
			t.Errorf("attributed to %q, want rank3", pp.ProcName)
		}
		if pp.Clock < 0.25 {
			t.Errorf("crash clock %v, want >= 0.25", pp.Clock)
		}
		var ic *InjectedCrash
		if !errors.As(pp, &ic) {
			t.Errorf("cannot unwrap to *InjectedCrash: %v", pp.Value)
		}
		if len(pp.Snapshot) != 2 {
			t.Errorf("snapshot has %d procs, want 2", len(pp.Snapshot))
		}
	}()
	_ = e.Run()
}

// TestProcPanicWrapped pins satellite 1: a plain panic in a proc body is
// re-raised through iter.Pull wrapped with the proc's name and virtual
// clock, which the raw re-raise used to lose.
func TestProcPanicWrapped(t *testing.T) {
	e := NewEngine()
	e.Spawn("rank7", func(p *Proc) {
		p.Advance(2.5)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		pp, ok := r.(*ProcPanic)
		if !ok {
			t.Fatalf("panic value is %T, want *ProcPanic", r)
		}
		if pp.ProcName != "rank7" || pp.Clock != 2.5 || pp.Value != "boom" {
			t.Errorf("attribution = %q t=%v value=%v, want rank7 t=2.5 boom", pp.ProcName, pp.Clock, pp.Value)
		}
		if !strings.Contains(pp.Error(), `proc "rank7" panicked at t=2.5`) {
			t.Errorf("unhelpful message: %v", pp.Error())
		}
		if len(pp.Stack) == 0 {
			t.Error("stack trace lost")
		}
	}()
	_ = e.Run()
}

// TestDeadlockMessageExactFormat pins satellite 3: the per-proc entries of
// the deadlock summary are ordered by spawn id and the message format is
// stable for golden files.
func TestDeadlockMessageExactFormat(t *testing.T) {
	e := NewEngine()
	f := NewFlag("f")
	// Spawn in an order whose name-lexicographic sort would differ from
	// spawn order (rank10 < rank2 lexicographically).
	e.Spawn("rank2", func(p *Proc) { p.Wait(f, 1, 0) })
	e.Spawn("rank10", func(p *Proc) { p.Wait(f, 2, 0) })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock")
	}
	want := `sim: deadlock, 2 of 2 procs blocked: rank2(flag "f" >= 1 (now 0)), rank10(flag "f" >= 2 (now 0))`
	if err.Error() != want {
		t.Errorf("deadlock message drifted:\n got: %s\nwant: %s", err.Error(), want)
	}
}

func TestWaitTimeoutExpiresAtDeadline(t *testing.T) {
	e := NewEngine()
	f := NewFlag("never")
	var ok bool
	var end float64
	e.Spawn("waiter", func(p *Proc) {
		p.Advance(1)
		ok = p.WaitTimeout(f, 1, 0.125, 2)
		end = p.Now()
	})
	e.Spawn("other", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("wait on a never-set flag should time out")
	}
	if end != 3 {
		t.Errorf("waiter resumed at %v, want exactly 3 (deadline)", end)
	}
	if len(f.waiters) != 0 {
		t.Errorf("%d stale waiters left on flag after timeout", len(f.waiters))
	}
}

func TestWaitTimeoutSatisfiedBeforeDeadline(t *testing.T) {
	e := NewEngine()
	f := NewFlag("f")
	var ok bool
	var end float64
	e.Spawn("setter", func(p *Proc) {
		p.Advance(1)
		p.Set(f, 1)
		p.Advance(10)
	})
	e.Spawn("waiter", func(p *Proc) {
		ok = p.WaitTimeout(f, 1, 0.5, 100)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("wait should be satisfied by the setter")
	}
	if end != 1.5 {
		t.Errorf("waiter released at %v, want 1.5 (set time + latency)", end)
	}
}

// TestWaitTimeoutAvoidsDeadlock is the bounded-wait contract: a flag wait
// that would deadlock the run instead times out and lets the run finish.
func TestWaitTimeoutAvoidsDeadlock(t *testing.T) {
	e := NewEngine()
	f := NewFlag("never")
	timedOut := false
	e.Spawn("waiter", func(p *Proc) {
		timedOut = !p.WaitTimeout(f, 1, 0, 5)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("bounded wait must not deadlock: %v", err)
	}
	if !timedOut {
		t.Error("expected timeout")
	}
}

func TestWaitTimeoutDeterministicInterleaving(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		f := NewFlag("f")
		var clocks []float64
		e.Spawn("late-setter", func(p *Proc) {
			p.Advance(7)
			p.Set(f, 1)
		})
		for i := 0; i < 3; i++ {
			i := i
			e.Spawn("w", func(p *Proc) {
				// Deadlines 2, 4, 6 all precede the set at 7: all time out.
				p.WaitTimeout(f, 1, 0, float64(2*(i+1)))
				clocks = append(clocks, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return clocks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timeout runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if got := a[0]; got != 2 {
		t.Errorf("first timeout resumed at %v, want 2", got)
	}
}

func TestWatchdogDetectsLivelock(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(10_000)
	fa, fb := NewFlag("a"), NewFlag("b")
	// Two procs ping-ponging flags with zero latency: virtual time never
	// advances, the run would spin forever without the watchdog.
	e.Spawn("ping", func(p *Proc) {
		for i := uint64(1); ; i++ {
			p.Set(fa, i)
			p.Wait(fb, i, 0)
		}
	})
	e.Spawn("pong", func(p *Proc) {
		for i := uint64(1); ; i++ {
			p.Wait(fa, i, 0)
			p.Set(fb, i)
		}
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected livelock diagnosis")
	}
	var ll *LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("error is %T, want *LivelockError", err)
	}
	if !strings.Contains(err.Error(), "no virtual-time progress") {
		t.Errorf("unhelpful livelock error: %v", err)
	}
	if len(ll.Procs) != 2 {
		t.Errorf("livelock snapshot has %d procs, want 2", len(ll.Procs))
	}
}

func TestWatchdogDoesNotFireOnHealthyRun(t *testing.T) {
	e := NewEngine()
	e.SetWatchdog(100)
	b := NewBarrier("b", 8)
	for i := 0; i < 8; i++ {
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Advance(0.001)
				p.Arrive(b, 0.0005)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("watchdog misfired on healthy run: %v", err)
	}
}

func TestStallLeavesNoGoroutines(t *testing.T) {
	// An injected stall ends in engine teardown; the stalled proc's
	// coroutine must be unwound like any other blocked proc's.
	e := NewEngine()
	v := e.Spawn("victim", func(p *Proc) {
		p.Advance(1)
	})
	v.InjectStallAt(0, false, "")
	e.Spawn("other", func(p *Proc) { p.Advance(5) })
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock from stall")
	}
	// terminate() ran inside Run; nothing to assert beyond no hang here —
	// the goroutine-leak property is covered by waitForGoroutines tests.
}
