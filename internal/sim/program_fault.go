// Fault arming for the event-engine program interpreter. The healthy
// interpreter (program.go) assumes every posted step eventually completes;
// an armed run relaxes exactly that: per-rank poison ticks make steps vanish
// in flight (a crashed node's state machines stop posting), a horizon
// watchdog bounds virtual time, and completion hooks let the caller observe
// step completions (for deterministic corruption firing) without touching
// the interpreter's hot path. All hooks are nil-guarded: RunProgramEvent
// passes no faults and stays bit-identical to the pre-fault interpreter.
package sim

import (
	"fmt"
	"strings"
)

// ProgramFaults arms deterministic faults on one event-engine program run.
// The zero value (or nil) arms nothing.
type ProgramFaults struct {
	// CrashTick poisons rank r's state machine at CrashTick[r]: a step whose
	// completion would land at or after that tick never completes, and the
	// rank posts nothing more. Entries < 0 mean healthy. When non-nil the
	// slice length must equal the program's rank count.
	CrashTick []Tick
	// Horizon is the no-progress watchdog: the run halts deterministically
	// if virtual time passes this tick (0 = no horizon). A halted run drains
	// the calendar without acting and reports HorizonHit.
	Horizon Tick
	// OnComplete, when non-nil, observes every step completion at its exact
	// completion tick (used to fire phase corruptions deterministically).
	OnComplete func(rank, step int32, now Tick)
	// OnDead, when non-nil, observes the first poisoned step of each rank,
	// reported at the rank's poison tick.
	OnDead func(rank int32, at Tick)
}

// ProgramHaltError reports an armed program run that could not finish:
// ranks died at their poison ticks, the watchdog horizon was exceeded, or
// survivors ended up waiting forever on dead producers.
type ProgramHaltError struct {
	Finished int
	Total    int
	// DeadCount is how many ranks' state machines were poisoned; Dead is
	// the per-rank poisoned flag (nil when no crash faults were armed).
	DeadCount int
	Dead      []bool
	// HorizonHit reports the watchdog fired, at tick Now.
	HorizonHit bool
	Now        Tick
	// Waiting samples up to eight stuck ranks as "rank@step->rank@step".
	Waiting []string
}

func (e *ProgramHaltError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: armed program halted, %d of %d ranks finished", e.Finished, e.Total)
	if e.DeadCount > 0 {
		fmt.Fprintf(&b, "; %d ranks poisoned", e.DeadCount)
	}
	if e.HorizonHit {
		fmt.Fprintf(&b, "; watchdog horizon exceeded at tick %d", e.Now)
	}
	if len(e.Waiting) > 0 {
		fmt.Fprintf(&b, "; waiting: %s", strings.Join(e.Waiting, ", "))
	}
	return b.String()
}

// RunProgramEventArmed executes a program on the event-calendar engine with
// fault arming. With a nil or zero ProgramFaults it behaves exactly like
// RunProgramEvent except that an unfinishable run reports *ProgramHaltError
// instead of *ProgramDeadlockError.
func RunProgramEventArmed(p Program, f *ProgramFaults) (ProgramResult, error) {
	if f == nil {
		f = &ProgramFaults{}
	}
	return runProgramEvent(p, f)
}

// halt builds the structured diagnostic for an unfinishable armed run.
func (r *programRunner) halt() error {
	e := &ProgramHaltError{
		Finished:   r.finished,
		Total:      r.prog.Ranks(),
		DeadCount:  r.deadCount,
		Dead:       r.dead,
		HorizonHit: r.halted,
		Now:        r.haltNow,
	}
	for q := range r.waitHead {
		for w := r.waitHead[q]; w >= 0 && len(e.Waiting) < 8; w = r.waitNext[w] {
			e.Waiting = append(e.Waiting,
				fmt.Sprintf("rank%d@%d->rank%d@%d", w, r.done[w], q, r.waitNeed[w]-1))
		}
		if len(e.Waiting) >= 8 {
			break
		}
	}
	return e
}
