// Package sim implements a deterministic discrete-event engine for simulating
// parallel processes with per-process virtual clocks.
//
// Each simulated process (Proc) runs as a coroutine (iter.Pull), and the
// engine enforces that exactly one process executes at a time and always
// resumes the runnable process with the smallest virtual clock. Events are
// therefore processed in simulated-time order, which makes runs fully
// deterministic: the same program produces the same clocks, the same
// cache-residency decisions and the same counter values on every run,
// regardless of the Go scheduler.
//
// Control transfers through the engine loop with coroutine switches: when a
// process parks, it suspends its coroutine back into the loop, which resumes
// the earliest runnable process. A coroutine switch (runtime.coroswitch) is a
// direct goroutine swap that never enters the Go scheduler, so the
// two-switch round trip through the loop costs a fraction of a single
// channel handoff (which must park, lock a run queue, and re-ready the
// goroutine, checking timers along the way). A process that is still the
// earliest runnable one skips parking entirely and keeps executing with zero
// switches.
//
// The engine is the substrate for the MPI-rank runtime in internal/mpi: a
// rank advances its clock when it performs (modelled) memory operations and
// blocks on flags/barriers when it synchronizes with other ranks.
package sim

import (
	"fmt"
	"iter"
	"math"
	"sort"
	"strings"
)

// State describes the lifecycle of a Proc.
type State int

const (
	// Ready means the proc can be scheduled.
	Ready State = iota
	// Running means the proc is the one currently executing.
	Running
	// Blocked means the proc is waiting on a flag or barrier.
	Blocked
	// Done means the proc body returned.
	Done
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// killSignal is panicked through a suspended proc's body when the engine
// tears the run down, so deferred functions still execute while the
// coroutine unwinds. The coroutine wrapper swallows it.
type killSignal struct{}

// Proc is a simulated process with a virtual clock.
type Proc struct {
	id     int
	name   string
	engine *Engine
	body   func(p *Proc)

	clock float64 // seconds of virtual time
	state State

	// next resumes the proc's coroutine (runs it until its next suspend or
	// until the body returns, when it reports false); stop tears the
	// coroutine down, unwinding a suspended body. Both are only called from
	// the engine loop's goroutine.
	next func() (struct{}, bool)
	stop func()

	// suspendTo yields the proc's coroutine back to the engine loop. It
	// reports false when the engine is tearing the run down.
	suspendTo func(struct{}) bool

	// blockedOn identifies what a Blocked proc is waiting for. The
	// human-readable description is built only if a deadlock is reported,
	// so the block hot path does no formatting or allocation.
	blockedOn blocker
	heapIndex int // position in the runnable heap, -1 when off-heap

	// seq breaks clock ties deterministically (FIFO by last-yield order).
	seq uint64
}

// ID returns the process id assigned at spawn time (dense, starting at 0).
func (p *Proc) ID() int { return p.id }

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the process's current virtual time in seconds.
func (p *Proc) Now() float64 { return p.clock }

// Advance moves the process's virtual clock forward by dt seconds and yields
// to the engine so that other processes with earlier clocks may run.
// Negative or NaN dt panics: the cost model must never produce one.
func (p *Proc) Advance(dt float64) {
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("sim: proc %q advanced by invalid dt %v", p.name, dt))
	}
	p.clock += dt
	p.yield()
}

// AdvanceTo moves the clock forward to at least t (no-op if already past).
func (p *Proc) AdvanceTo(t float64) {
	if t > p.clock {
		p.clock = t
	}
	p.yield()
}

// Yield gives other processes a chance to run without advancing the clock.
func (p *Proc) Yield() { p.yield() }

// yield relinquishes control — unless this proc is still running ahead of
// every runnable proc, in which case parking would only buy an immediate
// resume. The run-ahead test compares against e.horizon, the cached clock
// of the earliest runnable proc: within the window the op completes with a
// single float comparison — no heap peek, no coroutine switch. The cache
// cannot go stale inside the window because exactly one proc executes at a
// time, so the heap only changes through this proc's own actions (which
// refresh it). Skipping the switch preserves virtual-time order exactly: we
// only keep running while no runnable proc has an earlier clock. When one
// does, this proc re-enters the runnable heap (its key is larger than
// everything there, so the sift-up is a single comparison) and suspends to
// the engine loop, which resumes the heap minimum — the same proc the old
// root held, since p cannot be the minimum.
func (p *Proc) yield() {
	e := p.engine
	if p.clock <= e.horizon {
		return
	}
	p.state = Ready
	e.seqGen++
	p.seq = e.seqGen
	e.runnable.push(p)
	e.updateHorizon()
	p.suspend()
}

// blocker is something a proc can block on; it renders the proc's wait
// condition lazily, only when blockedSummary diagnoses a deadlock.
type blocker interface {
	blockedReason(p *Proc) string
}

// block parks the proc in the Blocked state; it will not be scheduled until
// some other proc calls unblock on it. Control suspends to the engine loop,
// which resumes the earliest runnable proc or diagnoses the deadlock if
// nothing is runnable.
func (p *Proc) block(on blocker) {
	p.state = Blocked
	p.blockedOn = on
	p.suspend()
	p.blockedOn = nil
}

// suspend returns control to the engine loop until this proc is resumed. If
// the engine tore the run down while the proc was suspended, the body is
// unwound instead (deferred functions still run; the coroutine wrapper
// swallows the signal).
func (p *Proc) suspend() {
	if !p.suspendTo(struct{}{}) {
		panic(killSignal{})
	}
	p.state = Running
}

// unblock marks a blocked proc runnable, raising its clock to at least t.
// Must be called from the currently running proc (or the engine).
func (p *Proc) unblock(t float64) {
	if p.state != Blocked {
		panic(fmt.Sprintf("sim: unblock of proc %q in state %s", p.name, p.state))
	}
	if t > p.clock {
		p.clock = t
	}
	p.state = Ready
	p.engine.makeRunnable(p)
}

// Engine owns a set of Procs and schedules them in virtual-time order.
type Engine struct {
	procs    []*Proc
	runnable procHeap
	started  bool
	finished int
	seqGen   uint64

	// horizon caches the clock of the runnable heap's minimum (+Inf when
	// the heap is empty): the virtual time up to which the running proc may
	// advance without yielding. Every heap mutation refreshes it via
	// updateHorizon, so the per-op yield check is one comparison.
	horizon float64
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{horizon: math.Inf(1)}
}

// updateHorizon re-derives the run-ahead horizon from the heap minimum.
// Called after every heap mutation.
func (e *Engine) updateHorizon() {
	if len(e.runnable) > 0 {
		e.horizon = e.runnable[0].clock
	} else {
		e.horizon = math.Inf(1)
	}
}

// Spawn registers a new process with the given body. It must be called
// before Run. The body runs as a coroutine under engine control.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	if e.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:        len(e.procs),
		name:      name,
		engine:    e,
		body:      body,
		state:     Ready,
		heapIndex: -1,
	}
	e.procs = append(e.procs, p)
	return p
}

// start materializes p's coroutine. The iterator function does not run
// until the engine first resumes the proc; a teardown before that simply
// never starts the body (stop on an unstarted iterator is a no-op on it).
func (p *Proc) start() {
	p.next, p.stop = iter.Pull(func(yield func(struct{}) bool) {
		p.suspendTo = yield
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); ok {
					return // teardown unwind: the engine owns all state
				}
				panic(r) // re-raised by iter.Pull inside the engine's next()
			}
		}()
		p.body(p)
	})
}

// Procs returns all spawned processes.
func (e *Engine) Procs() []*Proc { return e.procs }

// makeRunnable pushes p onto the runnable heap with a fresh tie-break
// sequence number. Double-pushing a proc would corrupt the schedule, so an
// on-heap proc (heapIndex >= 0) is rejected loudly.
func (e *Engine) makeRunnable(p *Proc) {
	if p.heapIndex != -1 {
		panic(fmt.Sprintf("sim: proc %q pushed onto runnable heap twice (index %d)", p.name, p.heapIndex))
	}
	e.seqGen++
	p.seq = e.seqGen
	e.runnable.push(p)
	e.updateHorizon()
}

// Run executes all processes to completion in virtual-time order.
// It returns an error if the simulation deadlocks (some processes remain
// blocked with nothing runnable) or if a process panicked. Either way, no
// proc coroutine outlives Run: teardown unwinds every suspended proc.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	for _, p := range e.procs {
		p.start()
		e.makeRunnable(p)
	}
	// The scheduling loop: always resume the earliest runnable proc. A
	// proc's panic propagates out of next() onto this goroutine; tear the
	// other coroutines down, then re-raise it to the caller.
	defer func() {
		if r := recover(); r != nil {
			e.terminate()
			panic(r)
		}
	}()
	for len(e.runnable) > 0 {
		p := e.runnable.pop()
		e.updateHorizon()
		p.state = Running
		if _, alive := p.next(); !alive {
			p.state = Done
			e.finished++
		}
	}
	if e.finished != len(e.procs) {
		err := fmt.Errorf("sim: deadlock, %d of %d procs blocked: %s",
			len(e.procs)-e.finished, len(e.procs), e.blockedSummary())
		e.terminate()
		return err
	}
	return nil
}

// terminate unwinds every unfinished proc coroutine (running its deferred
// functions) so that failed runs do not leak suspended coroutines. stop
// blocks until the coroutine has fully unwound.
func (e *Engine) terminate() {
	for _, p := range e.procs {
		if p.state == Done || p.stop == nil {
			continue
		}
		p.stop()
		p.state = Done
	}
}

// blockedSummary lists blocked processes and their reasons for diagnostics.
func (e *Engine) blockedSummary() string {
	var blocked []string
	for _, p := range e.procs {
		if p.state == Blocked {
			reason := "unknown"
			if p.blockedOn != nil {
				reason = p.blockedOn.blockedReason(p)
			}
			blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, reason))
		}
	}
	sort.Strings(blocked)
	return strings.Join(blocked, ", ")
}

// MaxClock returns the largest clock across all processes; after Run this is
// the simulated makespan.
func (e *Engine) MaxClock() float64 {
	max := 0.0
	for _, p := range e.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// procHeap is a 4-ary min-heap of procs ordered by (clock, seq). It is a
// concrete implementation (no container/heap interface dispatch) because
// push/pop sit on the per-switch hot path, and 4-ary rather than binary
// because pop's sift-down is bounded by tree depth, which a branching
// factor of 4 halves (a 16-proc machine sifts through 2 levels, not 4).
// The (clock, seq) key is copied into the entry at push time so sift
// compares read contiguous memory instead of chasing Proc pointers; the
// copy is safe because a parked proc's clock and seq are frozen until it
// leaves the heap. The key is a strict total order — seq values are unique
// — so the pop sequence is fully determined by the heap's contents, never
// by its internal layout or arity.
type heapEntry struct {
	clock float64
	seq   uint64
	p     *Proc
}

type procHeap []heapEntry

func (h procHeap) less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].seq < h[j].seq
}

func (h procHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].p.heapIndex = i
	h[j].p.heapIndex = j
}

func (h procHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h procHeap) siftDown(i int) {
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		m := first
		for c := first + 1; c < last; c++ {
			if h.less(c, m) {
				m = c
			}
		}
		if !h.less(m, i) {
			break
		}
		h.swap(i, m)
		i = m
	}
}

// push adds p to the heap.
func (h *procHeap) push(p *Proc) {
	p.heapIndex = len(*h)
	*h = append(*h, heapEntry{clock: p.clock, seq: p.seq, p: p})
	h.siftUp(p.heapIndex)
}

// pop removes and returns the earliest proc.
func (h *procHeap) pop() *Proc {
	old := *h
	p := old[0].p
	n := len(old) - 1
	old[0] = old[n]
	old[0].p.heapIndex = 0
	old[n] = heapEntry{}
	*h = old[:n]
	h.siftDown(0)
	p.heapIndex = -1
	return p
}
