// Package sim implements a deterministic discrete-event engine for simulating
// parallel processes with per-process virtual clocks.
//
// Each simulated process (Proc) runs as a coroutine (iter.Pull), and the
// engine enforces that exactly one process executes at a time and always
// resumes the runnable process with the smallest virtual clock. Events are
// therefore processed in simulated-time order, which makes runs fully
// deterministic: the same program produces the same clocks, the same
// cache-residency decisions and the same counter values on every run,
// regardless of the Go scheduler.
//
// Control transfers through the engine loop with coroutine switches: when a
// process parks, it suspends its coroutine back into the loop, which resumes
// the earliest runnable process. A coroutine switch (runtime.coroswitch) is a
// direct goroutine swap that never enters the Go scheduler, so the
// two-switch round trip through the loop costs a fraction of a single
// channel handoff (which must park, lock a run queue, and re-ready the
// goroutine, checking timers along the way). A process that is still the
// earliest runnable one skips parking entirely and keeps executing with zero
// switches.
//
// The engine is the substrate for the MPI-rank runtime in internal/mpi: a
// rank advances its clock when it performs (modelled) memory operations and
// blocks on flags/barriers when it synchronizes with other ranks.
package sim

import (
	"fmt"
	"iter"
	"math"
	"runtime/debug"
	"strings"
)

// State describes the lifecycle of a Proc.
type State int

const (
	// Ready means the proc can be scheduled.
	Ready State = iota
	// Running means the proc is the one currently executing.
	Running
	// Blocked means the proc is waiting on a flag or barrier.
	Blocked
	// Done means the proc body returned.
	Done
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// killSignal is panicked through a suspended proc's body when the engine
// tears the run down, so deferred functions still execute while the
// coroutine unwinds. The coroutine wrapper swallows it.
type killSignal struct{}

// Proc is a simulated process with a virtual clock.
type Proc struct {
	id     int
	name   string
	engine *Engine
	body   func(p *Proc)

	clock float64 // seconds of virtual time
	state State

	// next resumes the proc's coroutine (runs it until its next suspend or
	// until the body returns, when it reports false); stop tears the
	// coroutine down, unwinding a suspended body. Both are only called from
	// the engine loop's goroutine.
	next func() (struct{}, bool)
	stop func()

	// suspendTo yields the proc's coroutine back to the engine loop. It
	// reports false when the engine is tearing the run down.
	suspendTo func(struct{}) bool

	// blockedOn identifies what a Blocked proc is waiting for. The
	// human-readable description is built only if a deadlock is reported,
	// so the block hot path does no formatting or allocation.
	blockedOn blocker
	heapIndex int // position in the runnable heap, -1 when off-heap

	// seq breaks clock ties deterministically (FIFO by last-yield order).
	seq uint64

	// fault carries injected fault state (nil in healthy runs, so the
	// Advance hot path pays a single pointer compare).
	fault *procFault

	// timerSeq identifies this proc's pending bounded-wait timer (0 when
	// none); timedOut reports whether the last blockTimeout expired.
	timerSeq uint64
	timedOut bool
}

// procFault is the per-proc injected-fault state. Slowdown stretches every
// Advance; the stall/crash trigger fires once when the clock first reaches
// stallAt. All decisions are functions of virtual time only, so injected
// runs replay bit-identically.
type procFault struct {
	slowdown   float64 // multiplier applied to Advance durations (0 = none)
	stallArmed bool
	stallAt    float64
	crash      bool
	reason     string
}

// maybeFire triggers the armed stall or crash once the proc's clock has
// reached the programmed virtual time.
func (f *procFault) maybeFire(p *Proc) {
	if !f.stallArmed || p.clock < f.stallAt {
		return
	}
	f.stallArmed = false
	if f.crash {
		panic(&InjectedCrash{Reason: f.reason, Clock: p.clock})
	}
	p.block(stalledOn{reason: f.reason})
}

// stalledOn is the permanent blocker of a fault-injected stalled proc; the
// deadlock diagnosis renders its reason so the victim is named.
type stalledOn struct{ reason string }

func (s stalledOn) blockedReason(p *Proc) string {
	if s.reason == "" {
		return "fault: injected stall"
	}
	return s.reason
}

// InjectedCrash is the panic value of a fault-injected crash. It unwinds
// the victim's body like any real panic, so the engine's attribution and
// teardown paths are exercised identically.
type InjectedCrash struct {
	Reason string
	Clock  float64
}

func (c *InjectedCrash) Error() string {
	if c.Reason == "" {
		return fmt.Sprintf("fault: injected crash at t=%g", c.Clock)
	}
	return fmt.Sprintf("fault: injected crash at t=%g: %s", c.Clock, c.Reason)
}

// SetSlowdown makes every subsequent Advance of this proc take factor times
// as long in virtual time (a deterministic straggler). factor must be
// positive; 1 restores full speed.
func (p *Proc) SetSlowdown(factor float64) {
	if factor <= 0 || math.IsNaN(factor) {
		panic(fmt.Sprintf("sim: proc %q slowdown factor %v must be positive", p.name, factor))
	}
	if p.fault == nil {
		p.fault = &procFault{}
	}
	p.fault.slowdown = factor
}

// InjectStallAt arranges for the proc to stall (block forever, diagnosed by
// the deadlock report) or, with crash, to panic with an InjectedCrash, the
// first time its virtual clock reaches t.
func (p *Proc) InjectStallAt(t float64, crash bool, reason string) {
	if t < 0 || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: proc %q stall time %v must be non-negative", p.name, t))
	}
	if p.fault == nil {
		p.fault = &procFault{}
	}
	p.fault.stallArmed = true
	p.fault.stallAt = t
	p.fault.crash = crash
	p.fault.reason = reason
}

// ID returns the process id assigned at spawn time (dense, starting at 0).
func (p *Proc) ID() int { return p.id }

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the process's current virtual time in seconds.
func (p *Proc) Now() float64 { return p.clock }

// Advance moves the process's virtual clock forward by dt seconds and yields
// to the engine so that other processes with earlier clocks may run.
// Negative or NaN dt panics: the cost model must never produce one.
// An injected slowdown stretches dt; an armed stall/crash fires here.
func (p *Proc) Advance(dt float64) {
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("sim: proc %q advanced by invalid dt %v", p.name, dt))
	}
	if f := p.fault; f != nil {
		if f.slowdown > 0 {
			dt *= f.slowdown
		}
		p.clock += dt
		f.maybeFire(p)
	} else {
		p.clock += dt
	}
	p.yield()
}

// AdvanceTo moves the clock forward to at least t (no-op if already past).
func (p *Proc) AdvanceTo(t float64) {
	if t > p.clock {
		p.clock = t
	}
	if f := p.fault; f != nil {
		f.maybeFire(p)
	}
	p.yield()
}

// State returns the proc's lifecycle state (diagnostics).
func (p *Proc) State() State { return p.state }

// BlockedReason renders what a Blocked proc is waiting for ("" otherwise).
func (p *Proc) BlockedReason() string {
	if p.state == Blocked && p.blockedOn != nil {
		return p.blockedOn.blockedReason(p)
	}
	return ""
}

// Yield gives other processes a chance to run without advancing the clock.
func (p *Proc) Yield() { p.yield() }

// yield relinquishes control — unless this proc is still running ahead of
// every runnable proc, in which case parking would only buy an immediate
// resume. The run-ahead test compares against e.horizon, the cached clock
// of the earliest runnable proc: within the window the op completes with a
// single float comparison — no heap peek, no coroutine switch. The cache
// cannot go stale inside the window because exactly one proc executes at a
// time, so the heap only changes through this proc's own actions (which
// refresh it). Skipping the switch preserves virtual-time order exactly: we
// only keep running while no runnable proc has an earlier clock. When one
// does, this proc re-enters the runnable heap (its key is larger than
// everything there, so the sift-up is a single comparison) and suspends to
// the engine loop, which resumes the heap minimum — the same proc the old
// root held, since p cannot be the minimum.
func (p *Proc) yield() {
	e := p.engine
	if p.clock <= e.horizon {
		return
	}
	p.state = Ready
	e.seqGen++
	p.seq = e.seqGen
	e.runnable.push(p)
	e.updateHorizon()
	p.suspend()
}

// blocker is something a proc can block on; it renders the proc's wait
// condition lazily, only when blockedSummary diagnoses a deadlock.
type blocker interface {
	blockedReason(p *Proc) string
}

// block parks the proc in the Blocked state; it will not be scheduled until
// some other proc calls unblock on it. Control suspends to the engine loop,
// which resumes the earliest runnable proc or diagnoses the deadlock if
// nothing is runnable.
func (p *Proc) block(on blocker) {
	p.state = Blocked
	p.blockedOn = on
	p.suspend()
	p.blockedOn = nil
}

// waitCanceler is implemented by blockers that must drop a waiter when its
// bounded wait times out (otherwise a later release would unblock a proc
// that already resumed).
type waitCanceler interface {
	cancelWait(p *Proc)
}

// blockTimeout is block with a virtual-time deadline: if nothing unblocks
// the proc before the deadline, the engine wakes it at exactly deadline and
// blockTimeout reports true. The timeout is a discrete event in virtual
// time (no wall clock), so bounded waits replay deterministically.
func (p *Proc) blockTimeout(on blocker, deadline float64) (timedOut bool) {
	e := p.engine
	e.seqGen++
	p.timerSeq = e.seqGen
	p.timedOut = false
	e.timers = append(e.timers, simTimer{deadline: deadline, seq: p.timerSeq, p: p})
	e.updateHorizon()
	p.block(on)
	if p.timedOut {
		p.timedOut = false
		p.timerSeq = 0
		return true
	}
	// Woken by a normal release: cancel the pending timer.
	for i := range e.timers {
		if e.timers[i].p == p && e.timers[i].seq == p.timerSeq {
			e.timers[i] = e.timers[len(e.timers)-1]
			e.timers = e.timers[:len(e.timers)-1]
			break
		}
	}
	p.timerSeq = 0
	e.updateHorizon()
	return false
}

// suspend returns control to the engine loop until this proc is resumed. If
// the engine tore the run down while the proc was suspended, the body is
// unwound instead (deferred functions still run; the coroutine wrapper
// swallows the signal).
func (p *Proc) suspend() {
	if !p.suspendTo(struct{}{}) {
		panic(killSignal{})
	}
	p.state = Running
}

// unblock marks a blocked proc runnable, raising its clock to at least t.
// Must be called from the currently running proc (or the engine).
func (p *Proc) unblock(t float64) {
	if p.state != Blocked {
		panic(fmt.Sprintf("sim: unblock of proc %q in state %s", p.name, p.state))
	}
	if t > p.clock {
		p.clock = t
	}
	p.state = Ready
	p.engine.makeRunnable(p)
}

// simTimer is a pending bounded-wait deadline: a discrete event at a
// virtual time, cancelled lazily (seq must still match the proc's).
type simTimer struct {
	deadline float64
	seq      uint64
	p        *Proc
}

// DefaultWatchdogSwitches is the no-progress watchdog threshold used by
// callers that enable livelock detection without tuning it: the number of
// consecutive scheduler switches without the minimum virtual clock
// advancing after which the run is diagnosed as livelocked. Healthy runs
// stay orders of magnitude below it (same-instant wake storms are bounded
// by the proc count), so enabling the watchdog never perturbs them.
const DefaultWatchdogSwitches = 2 << 20

// Engine owns a set of Procs and schedules them in virtual-time order.
type Engine struct {
	procs    []*Proc
	runnable procHeap
	started  bool
	finished int
	seqGen   uint64

	// horizon caches the clock of the runnable heap's minimum (+Inf when
	// the heap is empty), folded with the earliest pending timer deadline:
	// the virtual time up to which the running proc may advance without
	// yielding. Every heap or timer mutation refreshes it via
	// updateHorizon, so the per-op yield check is one comparison.
	horizon float64

	// timers holds pending bounded-wait deadlines (usually empty; a linear
	// scan keeps the common path allocation- and branch-free).
	timers []simTimer

	// watchdog is the no-progress threshold (0 disables detection);
	// idleSwitches counts scheduler switches since lastMin last advanced.
	watchdog     int
	idleSwitches int
	lastMin      float64
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{horizon: math.Inf(1), lastMin: math.Inf(-1)}
}

// SetWatchdog enables no-progress (livelock) detection: if the minimum
// virtual clock fails to advance across n consecutive scheduler switches,
// Run returns a *LivelockError diagnosing every proc instead of spinning
// forever. n <= 0 disables the watchdog. The count is of discrete scheduler
// events, not wall time, so detection is deterministic.
func (e *Engine) SetWatchdog(n int) {
	if n < 0 {
		n = 0
	}
	e.watchdog = n
}

// earliestTimer returns the index of the earliest pending timer (deadline,
// then seq), or -1 when none are pending.
func (e *Engine) earliestTimer() int {
	if len(e.timers) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(e.timers); i++ {
		ti, tb := e.timers[i], e.timers[best]
		if ti.deadline < tb.deadline || (ti.deadline == tb.deadline && ti.seq < tb.seq) {
			best = i
		}
	}
	return best
}

// updateHorizon re-derives the run-ahead horizon from the heap minimum and
// the earliest timer deadline. Called after every heap or timer mutation.
func (e *Engine) updateHorizon() {
	h := math.Inf(1)
	if len(e.runnable) > 0 {
		h = e.runnable[0].clock
	}
	if len(e.timers) > 0 {
		if t := e.timers[e.earliestTimer()].deadline; t < h {
			h = t
		}
	}
	e.horizon = h
}

// Spawn registers a new process with the given body. It must be called
// before Run. The body runs as a coroutine under engine control.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	if e.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:        len(e.procs),
		name:      name,
		engine:    e,
		body:      body,
		state:     Ready,
		heapIndex: -1,
	}
	e.procs = append(e.procs, p)
	return p
}

// start materializes p's coroutine. The iterator function does not run
// until the engine first resumes the proc; a teardown before that simply
// never starts the body (stop on an unstarted iterator is a no-op on it).
//
// A body panic is re-raised through iter.Pull inside the engine's next(),
// where the raw stack no longer says which simulated proc died; it is
// therefore wrapped in a *ProcPanic carrying the proc's name, virtual
// clock and the original value plus stack before re-raising.
func (p *Proc) start() {
	p.next, p.stop = iter.Pull(func(yield func(struct{}) bool) {
		p.suspendTo = yield
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); ok {
					return // teardown unwind: the engine owns all state
				}
				panic(&ProcPanic{
					ProcID:   p.id,
					ProcName: p.name,
					Clock:    p.clock,
					Value:    r,
					Stack:    debug.Stack(),
				})
			}
		}()
		p.body(p)
	})
}

// Procs returns all spawned processes.
func (e *Engine) Procs() []*Proc { return e.procs }

// makeRunnable pushes p onto the runnable heap with a fresh tie-break
// sequence number. Double-pushing a proc would corrupt the schedule, so an
// on-heap proc (heapIndex >= 0) is rejected loudly.
func (e *Engine) makeRunnable(p *Proc) {
	if p.heapIndex != -1 {
		panic(fmt.Sprintf("sim: proc %q pushed onto runnable heap twice (index %d)", p.name, p.heapIndex))
	}
	e.seqGen++
	p.seq = e.seqGen
	e.runnable.push(p)
	e.updateHorizon()
}

// Run executes all processes to completion in virtual-time order.
// It returns a *DeadlockError if the simulation deadlocks (some processes
// remain blocked with nothing runnable) and a *LivelockError if the
// watchdog detects no virtual-time progress. A process panic is re-raised
// to the caller wrapped in a *ProcPanic attributing the failing proc.
// Either way, no proc coroutine outlives Run: teardown unwinds every
// suspended proc.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	for _, p := range e.procs {
		p.start()
		e.makeRunnable(p)
	}
	// The scheduling loop: always resume the earliest runnable proc. A
	// proc's panic propagates out of next() onto this goroutine; snapshot
	// the other procs' states for attribution, tear the coroutines down,
	// then re-raise it to the caller.
	defer func() {
		if r := recover(); r != nil {
			if pp, ok := r.(*ProcPanic); ok && pp.Snapshot == nil {
				pp.Snapshot = e.snapshot()
			}
			e.terminate()
			panic(r)
		}
	}()
	for {
		// A bounded wait whose deadline precedes every runnable proc's
		// clock expires now: the waiter resumes at exactly its deadline.
		if i := e.earliestTimer(); i >= 0 {
			tm := e.timers[i]
			if len(e.runnable) == 0 || tm.deadline < e.runnable[0].clock {
				e.timers[i] = e.timers[len(e.timers)-1]
				e.timers = e.timers[:len(e.timers)-1]
				if tm.p.state == Blocked && tm.p.timerSeq == tm.seq {
					tm.p.timedOut = true
					if c, ok := tm.p.blockedOn.(waitCanceler); ok {
						c.cancelWait(tm.p)
					}
					tm.p.unblock(tm.deadline)
				}
				e.updateHorizon()
				continue
			}
		}
		if len(e.runnable) == 0 {
			break
		}
		if e.watchdog > 0 {
			if min := e.runnable[0].clock; min > e.lastMin {
				e.lastMin = min
				e.idleSwitches = 0
			} else if e.idleSwitches++; e.idleSwitches >= e.watchdog {
				err := &LivelockError{
					Switches: e.idleSwitches,
					Clock:    e.lastMin,
					Procs:    e.snapshot(),
				}
				e.terminate()
				return err
			}
		}
		p := e.runnable.pop()
		e.updateHorizon()
		p.state = Running
		if _, alive := p.next(); !alive {
			p.state = Done
			e.finished++
		}
	}
	if e.finished != len(e.procs) {
		err := &DeadlockError{Total: len(e.procs), Blocked: e.blockedStatuses()}
		e.terminate()
		return err
	}
	return nil
}

// terminate unwinds every unfinished proc coroutine (running its deferred
// functions) so that failed runs do not leak suspended coroutines. stop
// blocks until the coroutine has fully unwound.
func (e *Engine) terminate() {
	for _, p := range e.procs {
		if p.state == Done || p.stop == nil {
			continue
		}
		p.stop()
		p.state = Done
	}
}

// ProcStatus is the diagnostic snapshot of one proc: identity, lifecycle
// state, virtual clock, and (for blocked procs) what it is waiting on.
type ProcStatus struct {
	ID     int
	Name   string
	State  State
	Clock  float64
	Reason string
}

// String renders "name(reason)" for blocked procs and "name[state]"
// otherwise.
func (s ProcStatus) String() string {
	if s.Reason != "" {
		return fmt.Sprintf("%s(%s)", s.Name, s.Reason)
	}
	return fmt.Sprintf("%s[%s]", s.Name, s.State)
}

// snapshot captures every proc's status in spawn (id) order — a
// deterministic ordering independent of name formatting or map iteration.
func (e *Engine) snapshot() []ProcStatus {
	out := make([]ProcStatus, 0, len(e.procs))
	for _, p := range e.procs {
		st := ProcStatus{ID: p.id, Name: p.name, State: p.state, Clock: p.clock}
		if p.state == Blocked && p.blockedOn != nil {
			st.Reason = p.blockedOn.blockedReason(p)
		}
		out = append(out, st)
	}
	return out
}

// blockedStatuses captures only the blocked procs, in spawn order.
func (e *Engine) blockedStatuses() []ProcStatus {
	var out []ProcStatus
	for _, s := range e.snapshot() {
		if s.State == Blocked {
			if s.Reason == "" {
				s.Reason = "unknown"
			}
			out = append(out, s)
		}
	}
	return out
}

// DeadlockError reports a run in which some procs remained blocked with
// nothing runnable. Blocked is ordered by proc spawn id, so the message is
// stable across runs (golden-file friendly).
type DeadlockError struct {
	Total   int
	Blocked []ProcStatus
}

func (e *DeadlockError) Error() string {
	parts := make([]string, len(e.Blocked))
	for i, s := range e.Blocked {
		parts[i] = fmt.Sprintf("%s(%s)", s.Name, s.Reason)
	}
	return fmt.Sprintf("sim: deadlock, %d of %d procs blocked: %s",
		len(e.Blocked), e.Total, strings.Join(parts, ", "))
}

// LivelockError reports a run the watchdog diagnosed as making no
// virtual-time progress (procs kept switching without the minimum clock
// advancing — a livelock rather than a full deadlock).
type LivelockError struct {
	Switches int
	Clock    float64
	Procs    []ProcStatus
}

func (e *LivelockError) Error() string {
	var parts []string
	for _, s := range e.Procs {
		if s.State != Done {
			parts = append(parts, s.String())
		}
	}
	return fmt.Sprintf("sim: livelock, no virtual-time progress in %d scheduler switches at t=%g: %s",
		e.Switches, e.Clock, strings.Join(parts, ", "))
}

// ProcPanic attributes a proc body's panic: which proc died, at what
// virtual time, the original panic value and stack, and (once Run's
// recovery handler sees it) a snapshot of every other proc's state.
type ProcPanic struct {
	ProcID   int
	ProcName string
	Clock    float64
	Value    any
	Stack    []byte
	Snapshot []ProcStatus
}

func (pp *ProcPanic) Error() string {
	return fmt.Sprintf("sim: proc %q panicked at t=%g: %v", pp.ProcName, pp.Clock, pp.Value)
}

// Unwrap exposes the original panic value when it was an error, so
// errors.Is/As reach through the attribution layer.
func (pp *ProcPanic) Unwrap() error {
	if err, ok := pp.Value.(error); ok {
		return err
	}
	return nil
}

// MaxClock returns the largest clock across all processes; after Run this is
// the simulated makespan.
func (e *Engine) MaxClock() float64 {
	max := 0.0
	for _, p := range e.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// procHeap is a 4-ary min-heap of procs ordered by (clock, seq). It is a
// concrete implementation (no container/heap interface dispatch) because
// push/pop sit on the per-switch hot path, and 4-ary rather than binary
// because pop's sift-down is bounded by tree depth, which a branching
// factor of 4 halves (a 16-proc machine sifts through 2 levels, not 4).
// The (clock, seq) key is copied into the entry at push time so sift
// compares read contiguous memory instead of chasing Proc pointers; the
// copy is safe because a parked proc's clock and seq are frozen until it
// leaves the heap. The key is a strict total order — seq values are unique
// — so the pop sequence is fully determined by the heap's contents, never
// by its internal layout or arity.
type heapEntry struct {
	clock float64
	seq   uint64
	p     *Proc
}

type procHeap []heapEntry

func (h procHeap) less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].seq < h[j].seq
}

func (h procHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].p.heapIndex = i
	h[j].p.heapIndex = j
}

func (h procHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h procHeap) siftDown(i int) {
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		m := first
		for c := first + 1; c < last; c++ {
			if h.less(c, m) {
				m = c
			}
		}
		if !h.less(m, i) {
			break
		}
		h.swap(i, m)
		i = m
	}
}

// push adds p to the heap.
func (h *procHeap) push(p *Proc) {
	p.heapIndex = len(*h)
	*h = append(*h, heapEntry{clock: p.clock, seq: p.seq, p: p})
	h.siftUp(p.heapIndex)
}

// pop removes and returns the earliest proc.
func (h *procHeap) pop() *Proc {
	old := *h
	p := old[0].p
	n := len(old) - 1
	old[0] = old[n]
	old[0].p.heapIndex = 0
	old[n] = heapEntry{}
	*h = old[:n]
	h.siftDown(0)
	p.heapIndex = -1
	return p
}
