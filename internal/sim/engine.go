// Package sim implements a deterministic discrete-event engine for simulating
// parallel processes with per-process virtual clocks.
//
// Each simulated process (Proc) runs in its own goroutine, but the engine
// enforces that exactly one process executes at a time and always resumes the
// runnable process with the smallest virtual clock. Events are therefore
// processed in simulated-time order, which makes runs fully deterministic:
// the same program produces the same clocks, the same cache-residency
// decisions and the same counter values on every run, regardless of the Go
// scheduler.
//
// The engine is the substrate for the MPI-rank runtime in internal/mpi: a
// rank advances its clock when it performs (modelled) memory operations and
// blocks on flags/barriers when it synchronizes with other ranks.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"
)

// State describes the lifecycle of a Proc.
type State int

const (
	// Ready means the proc can be scheduled.
	Ready State = iota
	// Running means the proc is the one currently executing.
	Running
	// Blocked means the proc is waiting on a flag or barrier.
	Blocked
	// Done means the proc body returned.
	Done
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Proc is a simulated process with a virtual clock.
type Proc struct {
	id     int
	name   string
	engine *Engine

	clock float64 // seconds of virtual time
	state State

	resume chan struct{} // engine -> proc handoff
	parked chan struct{} // proc -> engine handoff

	blockReason string
	heapIndex   int

	// seq breaks clock ties deterministically (FIFO by last-yield order).
	seq uint64
}

// ID returns the process id assigned at spawn time (dense, starting at 0).
func (p *Proc) ID() int { return p.id }

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the process's current virtual time in seconds.
func (p *Proc) Now() float64 { return p.clock }

// Advance moves the process's virtual clock forward by dt seconds and yields
// to the engine so that other processes with earlier clocks may run.
// Negative or NaN dt panics: the cost model must never produce one.
func (p *Proc) Advance(dt float64) {
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("sim: proc %q advanced by invalid dt %v", p.name, dt))
	}
	p.clock += dt
	p.yield()
}

// AdvanceTo moves the clock forward to at least t (no-op if already past).
func (p *Proc) AdvanceTo(t float64) {
	if t > p.clock {
		p.clock = t
	}
	p.yield()
}

// Yield gives other processes a chance to run without advancing the clock.
func (p *Proc) Yield() { p.yield() }

// yield hands control back to the engine loop — unless this proc is still
// the earliest runnable one, in which case parking would only buy an
// immediate resume. Skipping the handoff preserves virtual-time order
// exactly (we only keep running while no runnable proc has an earlier
// clock) and removes the dominant per-operation cost for compute-heavy
// stretches.
func (p *Proc) yield() {
	e := p.engine
	if e.current == p && (e.runnable.Len() == 0 || p.clock <= e.runnable[0].clock) {
		return
	}
	p.state = Ready
	p.parked <- struct{}{}
	<-p.resume
	p.state = Running
}

// block parks the proc in the Blocked state; it will not be scheduled until
// some other proc calls unblock on it.
func (p *Proc) block(reason string) {
	p.state = Blocked
	p.blockReason = reason
	p.parked <- struct{}{}
	<-p.resume
	p.state = Running
	p.blockReason = ""
}

// unblock marks a blocked proc runnable, raising its clock to at least t.
// Must be called from the currently running proc (or the engine).
func (p *Proc) unblock(t float64) {
	if p.state != Blocked {
		panic(fmt.Sprintf("sim: unblock of proc %q in state %s", p.name, p.state))
	}
	if t > p.clock {
		p.clock = t
	}
	p.state = Ready
	p.engine.makeRunnable(p)
}

// Engine owns a set of Procs and schedules them in virtual-time order.
type Engine struct {
	procs    []*Proc
	runnable procHeap
	started  bool
	finished int
	seqGen   uint64

	// current is the proc executing right now (nil while the engine loop
	// itself runs).
	current *Proc

	panicVal interface{}
	panicned bool
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{}
}

// Spawn registers a new process with the given body. It must be called
// before Run. The body runs in its own goroutine under engine control.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	if e.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:     len(e.procs),
		name:   name,
		engine: e,
		state:  Ready,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		p.state = Running
		defer func() {
			if r := recover(); r != nil {
				e.panicVal = r
				e.panicned = true
			}
			p.state = Done
			p.parked <- struct{}{}
		}()
		body(p)
	}()
	return p
}

// Procs returns all spawned processes.
func (e *Engine) Procs() []*Proc { return e.procs }

// makeRunnable pushes p onto the runnable heap.
func (e *Engine) makeRunnable(p *Proc) {
	e.seqGen++
	p.seq = e.seqGen
	heap.Push(&e.runnable, p)
}

// Run executes all processes to completion in virtual-time order.
// It returns an error if the simulation deadlocks (some processes remain
// blocked with nothing runnable) or if a process panicked.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	for _, p := range e.procs {
		e.makeRunnable(p)
	}
	for e.runnable.Len() > 0 {
		p := heap.Pop(&e.runnable).(*Proc)
		e.current = p
		p.resume <- struct{}{}
		<-p.parked
		e.current = nil
		if e.panicned {
			pv := e.panicVal
			e.panicned = false
			panic(pv) // re-raise proc panics on the caller's goroutine
		}
		switch p.state {
		case Ready:
			e.makeRunnable(p)
		case Blocked:
			// stays off the heap until unblocked
		case Done:
			e.finished++
		}
	}
	if e.finished != len(e.procs) {
		return fmt.Errorf("sim: deadlock, %d of %d procs blocked: %s",
			len(e.procs)-e.finished, len(e.procs), e.blockedSummary())
	}
	return nil
}

// blockedSummary lists blocked processes and their reasons for diagnostics.
func (e *Engine) blockedSummary() string {
	var blocked []string
	for _, p := range e.procs {
		if p.state == Blocked {
			blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, p.blockReason))
		}
	}
	sort.Strings(blocked)
	return strings.Join(blocked, ", ")
}

// MaxClock returns the largest clock across all processes; after Run this is
// the simulated makespan.
func (e *Engine) MaxClock() float64 {
	max := 0.0
	for _, p := range e.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// procHeap orders procs by (clock, seq).
type procHeap []*Proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].seq < h[j].seq
}
func (h procHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *procHeap) Push(x interface{}) {
	p := x.(*Proc)
	p.heapIndex = len(*h)
	*h = append(*h, p)
}
func (h *procHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}
