// Package sim implements a deterministic discrete-event engine for simulating
// parallel processes with per-process virtual clocks.
//
// Each simulated process (Proc) runs in its own goroutine, but the engine
// enforces that exactly one process executes at a time and always resumes the
// runnable process with the smallest virtual clock. Events are therefore
// processed in simulated-time order, which makes runs fully deterministic:
// the same program produces the same clocks, the same cache-residency
// decisions and the same counter values on every run, regardless of the Go
// scheduler.
//
// Control transfers proc-to-proc directly: when a process parks, it pops the
// next earliest runnable process off the heap and wakes it on that process's
// resume channel, so a switch costs one channel handoff instead of a round
// trip through a central scheduler goroutine. The Run caller's goroutine is
// only involved at the start of a run and when the runnable heap empties
// (completion, deadlock or a propagated panic). A process that is still the
// earliest runnable one skips parking entirely and keeps executing with zero
// channel operations.
//
// The engine is the substrate for the MPI-rank runtime in internal/mpi: a
// rank advances its clock when it performs (modelled) memory operations and
// blocks on flags/barriers when it synchronizes with other ranks.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// State describes the lifecycle of a Proc.
type State int

const (
	// Ready means the proc can be scheduled.
	Ready State = iota
	// Running means the proc is the one currently executing.
	Running
	// Blocked means the proc is waiting on a flag or barrier.
	Blocked
	// Done means the proc body returned.
	Done
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Proc is a simulated process with a virtual clock.
type Proc struct {
	id     int
	name   string
	engine *Engine

	clock float64 // seconds of virtual time
	state State

	resume chan struct{} // wakes this proc (from another proc or the engine)

	blockReason string
	heapIndex   int // position in the runnable heap, -1 when off-heap

	// seq breaks clock ties deterministically (FIFO by last-yield order).
	seq uint64

	// killed is set by the engine during teardown (panic or deadlock);
	// a woken proc must unwind instead of resuming its body.
	killed bool
}

// ID returns the process id assigned at spawn time (dense, starting at 0).
func (p *Proc) ID() int { return p.id }

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the process's current virtual time in seconds.
func (p *Proc) Now() float64 { return p.clock }

// Advance moves the process's virtual clock forward by dt seconds and yields
// to the engine so that other processes with earlier clocks may run.
// Negative or NaN dt panics: the cost model must never produce one.
func (p *Proc) Advance(dt float64) {
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("sim: proc %q advanced by invalid dt %v", p.name, dt))
	}
	p.clock += dt
	p.yield()
}

// AdvanceTo moves the clock forward to at least t (no-op if already past).
func (p *Proc) AdvanceTo(t float64) {
	if t > p.clock {
		p.clock = t
	}
	p.yield()
}

// Yield gives other processes a chance to run without advancing the clock.
func (p *Proc) Yield() { p.yield() }

// yield relinquishes control — unless this proc is still the earliest
// runnable one, in which case parking would only buy an immediate resume.
// Skipping the handoff preserves virtual-time order exactly (we only keep
// running while no runnable proc has an earlier clock) and removes the
// dominant per-operation cost for compute-heavy stretches. When another
// proc has a strictly earlier clock, control transfers to it directly:
// this proc re-enters the runnable heap and wakes the earliest proc on its
// resume channel, with no engine-goroutine round trip.
func (p *Proc) yield() {
	e := p.engine
	if len(e.runnable) == 0 || p.clock <= e.runnable[0].clock {
		return
	}
	// The heap minimum has a strictly earlier clock than p, so swapping p
	// in for the root (one sift-down instead of a push plus a pop) can
	// never hand control back to p itself.
	p.state = Ready
	e.seqGen++
	p.seq = e.seqGen
	next := e.runnable.replaceRoot(p)
	next.resume <- struct{}{}
	p.park()
}

// block parks the proc in the Blocked state; it will not be scheduled until
// some other proc calls unblock on it. Control transfers directly to the
// earliest runnable proc, or to the engine loop if nothing is runnable
// (which then reports the deadlock).
func (p *Proc) block(reason string) {
	p.state = Blocked
	p.blockReason = reason
	p.engine.switchToNext()
	p.park()
	p.blockReason = ""
}

// park waits until this proc is handed control again, then marks it
// Running. If the engine tore the run down while we were parked, unwind
// the goroutine instead (deferred functions still run; the spawn wrapper
// recognizes the killed state and exits quietly).
func (p *Proc) park() {
	<-p.resume
	if p.killed {
		runtime.Goexit()
	}
	p.state = Running
}

// unblock marks a blocked proc runnable, raising its clock to at least t.
// Must be called from the currently running proc (or the engine).
func (p *Proc) unblock(t float64) {
	if p.state != Blocked {
		panic(fmt.Sprintf("sim: unblock of proc %q in state %s", p.name, p.state))
	}
	if t > p.clock {
		p.clock = t
	}
	p.state = Ready
	p.engine.makeRunnable(p)
}

// Engine owns a set of Procs and schedules them in virtual-time order.
type Engine struct {
	procs    []*Proc
	runnable procHeap
	started  bool
	finished int
	seqGen   uint64

	// park wakes the Run caller when control must return to the engine:
	// the runnable heap emptied or a proc panicked.
	park chan struct{}

	// wg tracks spawned proc goroutines so teardown can prove they all
	// unwound (no leaks after a panic or deadlock).
	wg sync.WaitGroup

	panicVal interface{}
	panicned bool
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{park: make(chan struct{})}
}

// Spawn registers a new process with the given body. It must be called
// before Run. The body runs in its own goroutine under engine control.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	if e.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:        len(e.procs),
		name:      name,
		engine:    e,
		state:     Ready,
		resume:    make(chan struct{}),
		heapIndex: -1,
	}
	e.procs = append(e.procs, p)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		<-p.resume
		if p.killed {
			return // engine teardown before this proc ever ran
		}
		defer func() {
			if p.killed {
				return // teardown unwind (Goexit): the engine owns all state
			}
			if r := recover(); r != nil {
				e.panicVal = r
				e.panicned = true
				p.state = Done
				e.park <- struct{}{} // panics always return to the Run caller
				return
			}
			p.state = Done
			e.finished++
			e.switchToNext()
		}()
		p.state = Running
		body(p)
	}()
	return p
}

// Procs returns all spawned processes.
func (e *Engine) Procs() []*Proc { return e.procs }

// makeRunnable pushes p onto the runnable heap with a fresh tie-break
// sequence number. Double-pushing a proc would corrupt the schedule, so an
// on-heap proc (heapIndex >= 0) is rejected loudly.
func (e *Engine) makeRunnable(p *Proc) {
	if p.heapIndex != -1 {
		panic(fmt.Sprintf("sim: proc %q pushed onto runnable heap twice (index %d)", p.name, p.heapIndex))
	}
	e.seqGen++
	p.seq = e.seqGen
	e.runnable.push(p)
}

// switchToNext hands control to the earliest runnable proc, waking it on
// its resume channel; if nothing is runnable, control returns to the
// engine loop (run complete, or deadlock for it to diagnose). Called by
// the parking proc itself — the single channel send IS the context
// switch, there is no intermediary.
func (e *Engine) switchToNext() {
	if len(e.runnable) > 0 {
		next := e.runnable.pop()
		next.resume <- struct{}{}
		return
	}
	e.park <- struct{}{}
}

// Run executes all processes to completion in virtual-time order.
// It returns an error if the simulation deadlocks (some processes remain
// blocked with nothing runnable) or if a process panicked. Either way, no
// proc goroutine outlives Run: teardown wakes every parked proc with the
// killed flag and waits for all of them to unwind.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	for _, p := range e.procs {
		e.makeRunnable(p)
	}
	if len(e.procs) > 0 {
		// Hand control to the earliest proc; it comes back here only when
		// the runnable heap empties or a proc panics.
		e.switchToNext()
		<-e.park
	}
	if e.panicned {
		pv := e.panicVal
		e.panicned = false
		e.terminate()
		panic(pv) // re-raise proc panics on the caller's goroutine
	}
	if e.finished != len(e.procs) {
		err := fmt.Errorf("sim: deadlock, %d of %d procs blocked: %s",
			len(e.procs)-e.finished, len(e.procs), e.blockedSummary())
		e.terminate()
		return err
	}
	return nil
}

// terminate wakes every unfinished proc goroutine with the killed flag set
// so it unwinds (running its deferred functions), then waits until all
// goroutines have exited. Called after a panic or deadlock so that failed
// runs do not leak parked goroutines.
func (e *Engine) terminate() {
	for _, p := range e.procs {
		if p.state == Done {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
	}
	e.wg.Wait()
}

// blockedSummary lists blocked processes and their reasons for diagnostics.
func (e *Engine) blockedSummary() string {
	var blocked []string
	for _, p := range e.procs {
		if p.state == Blocked {
			blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, p.blockReason))
		}
	}
	sort.Strings(blocked)
	return strings.Join(blocked, ", ")
}

// MaxClock returns the largest clock across all processes; after Run this is
// the simulated makespan.
func (e *Engine) MaxClock() float64 {
	max := 0.0
	for _, p := range e.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// procHeap is a binary min-heap of procs ordered by (clock, seq). It is a
// concrete implementation (no container/heap interface dispatch) because
// push/pop/replaceRoot sit on the per-yield hot path. The (clock, seq) key
// is a strict total order — seq values are unique — so the pop sequence is
// fully determined by the heap's contents, never by its internal layout.
type procHeap []*Proc

func (h procHeap) less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].seq < h[j].seq
}

func (h procHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}

func (h procHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h procHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		m := left
		if right := left + 1; right < n && h.less(right, left) {
			m = right
		}
		if !h.less(m, i) {
			break
		}
		h.swap(i, m)
		i = m
	}
}

// push adds p to the heap.
func (h *procHeap) push(p *Proc) {
	p.heapIndex = len(*h)
	*h = append(*h, p)
	h.siftUp(p.heapIndex)
}

// pop removes and returns the earliest proc.
func (h *procHeap) pop() *Proc {
	old := *h
	p := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[0].heapIndex = 0
	old[n] = nil
	*h = old[:n]
	h.siftDown(0)
	p.heapIndex = -1
	return p
}

// replaceRoot swaps p in for the current minimum and returns that minimum:
// one sift-down instead of a push followed by a pop. The single-element
// case (two procs alternating, the common collective pattern) skips the
// sift-down call entirely.
func (h procHeap) replaceRoot(p *Proc) *Proc {
	old := h[0]
	h[0] = p
	p.heapIndex = 0
	if len(h) > 1 {
		h.siftDown(0)
	}
	old.heapIndex = -1
	return old
}
