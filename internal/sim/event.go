// Event-calendar simulation core.
//
// The coroutine engine (engine.go) spends one goroutine stack per simulated
// process — fast per switch, but memory-bound at a few thousand procs. The
// event engine in this file is the scale substrate: virtual time is an
// integer 64-bit tick clock, pending work lives in one central calendar (the
// same inline-key 4-ary heap layout the coroutine engine's runnable queue
// uses), and the simulated entities are compact state machines that post
// events instead of blocking coroutines. Memory per actor is flat — a few
// words of state plus at most one calendar entry — and no goroutines are
// created, so cluster-scale worlds (16k–1M ranks) fit in one process.
//
// Determinism: events are totally ordered by (tick, seq), where seq is the
// post order. Ticks are integers, so there is no float accumulation and the
// calendar pop sequence is a pure function of the posted events, exactly as
// the coroutine engine's (clock, seq) heap key is.
package sim

import (
	"fmt"
	"math"
)

// Tick is integer virtual time. One tick is one picosecond, so a 64-bit
// tick clock spans ~106 days of simulated time — far beyond any sweep —
// while still resolving sub-nanosecond cost-model terms exactly.
type Tick int64

// TicksPerSecond converts between seconds (the coroutine engine's float
// clock unit) and ticks.
const TicksPerSecond = 1e12

// ToTicks converts a duration in seconds to the nearest tick. Negative or
// NaN durations panic: the cost model must never produce one.
func ToTicks(sec float64) Tick {
	if sec < 0 || math.IsNaN(sec) {
		panic(fmt.Sprintf("sim: invalid duration %v s", sec))
	}
	return Tick(math.Round(sec * TicksPerSecond))
}

// Seconds converts a tick count back to seconds.
func (t Tick) Seconds() float64 { return float64(t) / TicksPerSecond }

// EventEngine is a discrete-event simulator core: a central calendar of
// (tick, seq)-ordered events dispatched to a handler. Actors are identified
// by dense int32 ids; the 32-bit data word rides along for the handler's
// use. The engine holds no per-actor state — callers own it — so the
// per-actor footprint is exactly what the caller's state machine needs.
type EventEngine struct {
	calendar  eventHeap
	seqGen    uint64
	now       Tick
	processed uint64
	running   bool
}

// NewEventEngine returns an empty engine at tick 0.
func NewEventEngine() *EventEngine { return &EventEngine{} }

// Now returns the current virtual time (the tick of the event being
// processed, 0 before Run).
func (e *EventEngine) Now() Tick { return e.now }

// Processed returns how many events have been dispatched.
func (e *EventEngine) Processed() uint64 { return e.processed }

// Pending returns how many events are waiting in the calendar.
func (e *EventEngine) Pending() int { return len(e.calendar) }

// Post schedules an event for the given actor at absolute tick t. Posting
// into the past panics: virtual time only moves forward.
func (e *EventEngine) Post(t Tick, actor, data int32) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event posted into the past (t=%d, now=%d)", t, e.now))
	}
	e.seqGen++
	e.calendar.push(eventEntry{tick: t, seq: e.seqGen, actor: actor, data: data})
}

// After schedules an event d ticks from now (d must be non-negative).
func (e *EventEngine) After(d Tick, actor, data int32) {
	if d < 0 {
		panic(fmt.Sprintf("sim: event posted with negative delay %d", d))
	}
	e.Post(e.now+d, actor, data)
}

// Run dispatches events in (tick, seq) order until the calendar is empty.
// The handler may post further events (at or after the current tick). Run
// returns the final virtual time.
func (e *EventEngine) Run(handle func(now Tick, actor, data int32)) Tick {
	if e.running {
		panic("sim: EventEngine.Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.calendar) > 0 {
		ev := e.calendar.pop()
		e.now = ev.tick
		e.processed++
		handle(ev.tick, ev.actor, ev.data)
	}
	return e.now
}

// eventEntry is one calendar entry with the ordering key inline, so heap
// sifts compare contiguous memory (same layout rationale as heapEntry in
// the coroutine engine's runnable queue).
type eventEntry struct {
	tick  Tick
	seq   uint64
	actor int32
	data  int32
}

// eventHeap is a 4-ary min-heap ordered by (tick, seq) — the event
// calendar. 4-ary halves pop's sift depth versus binary, which dominates at
// cluster scale where the calendar holds one entry per in-flight rank.
type eventHeap []eventEntry

func (h eventHeap) less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev eventEntry) {
	*h = append(*h, ev)
	i := len(*h) - 1
	hh := *h
	for i > 0 {
		parent := (i - 1) / 4
		if !hh.less(i, parent) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
}

func (h *eventHeap) pop() eventEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = eventEntry{}
	*h = old[:n]
	hh := *h
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		m := first
		for c := first + 1; c < last; c++ {
			if hh.less(c, m) {
				m = c
			}
		}
		if !hh.less(m, i) {
			break
		}
		hh[i], hh[m] = hh[m], hh[i]
		i = m
	}
	return top
}
