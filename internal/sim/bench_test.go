package sim

import (
	"math/rand"
	"testing"
)

// BenchmarkEngineYield measures the cost of one Advance that forces a
// control transfer to another proc: two procs advance in a strictly
// alternating pattern, so every operation makes the other proc the
// earliest runnable one.
func BenchmarkEngineYield(b *testing.B) {
	e := NewEngine()
	n := b.N
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Advance(2) // clocks 2, 4, 6, ...
		}
	})
	e.Spawn("b", func(p *Proc) {
		p.Advance(1) // offset to 1, then 3, 5, ...
		for i := 0; i < n; i++ {
			p.Advance(2)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineYieldFast measures the skip-yield fast path: a single
// proc advancing repeatedly never needs a handoff.
func BenchmarkEngineYieldFast(b *testing.B) {
	e := NewEngine()
	n := b.N
	e.Spawn("solo", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Advance(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineFlagWait measures a two-proc flag ping-pong: each round
// is one Set, one Wait-release and the associated control transfers.
func BenchmarkEngineFlagWait(b *testing.B) {
	e := NewEngine()
	fa, fb := NewFlag("a"), NewFlag("b")
	n := b.N
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Advance(0.001)
			p.Incr(fa)
			p.Wait(fb, uint64(i+1), 0.001)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Wait(fa, uint64(i+1), 0.001)
			p.Advance(0.001)
			p.Incr(fb)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineBarrier measures an 8-party barrier round trip.
func BenchmarkEngineBarrier(b *testing.B) {
	const parties = 8
	e := NewEngine()
	bar := NewBarrier("bench", parties)
	n := b.N
	for i := 0; i < parties; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < n; j++ {
				p.Advance(float64(i+1) * 0.001)
				p.Arrive(bar, 0.001)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineMixed measures a randomized mix of advances and flag
// synchronization across 16 procs — closer to a collective's control flow.
func BenchmarkEngineMixed(b *testing.B) {
	const procs = 16
	e := NewEngine()
	f := NewFlag("f")
	bar := NewBarrier("bar", procs)
	rng := rand.New(rand.NewSource(42))
	durs := make([]float64, 1024)
	for i := range durs {
		durs[i] = rng.Float64() * 0.01
	}
	n := b.N
	for i := 0; i < procs; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < n; j++ {
				p.Advance(durs[(i*131+j)%len(durs)])
				if i == 0 {
					p.Set(f, uint64(j+1))
				} else {
					p.Wait(f, uint64(j+1), 0.0001)
				}
				p.Arrive(bar, 0.0001)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
