package cluster

import (
	"errors"
	"fmt"
	"testing"

	"yhccl/internal/fault"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

func testCluster(t *testing.T, nodes, perNode int) *Cluster {
	t.Helper()
	return New(topo.NodeA(), nodes, perNode, IB100())
}

func compileT(t *testing.T, c *Cluster, coll string, alg Algorithm, n int64) sim.Program {
	t.Helper()
	prog, err := c.Compile(coll, alg, n, ScheduleOptions{})
	if err != nil {
		t.Fatalf("compile %s/%s: %v", coll, alg, err)
	}
	return prog
}

// An empty or nil plan must leave the armed path bit-identical to the
// healthy event-engine run — same makespan, same event count.
func TestArmedHealthyBitIdentical(t *testing.T) {
	c := testCluster(t, 8, 8)
	for _, alg := range Algorithms() {
		for _, coll := range []string{CollAllreduce, CollBcast, CollAllgather} {
			prog := compileT(t, c, coll, alg, 1<<16)
			want, err := sim.RunProgramEvent(prog)
			if err != nil {
				t.Fatalf("%s/%s healthy: %v", coll, alg, err)
			}
			for _, plan := range []*fault.ClusterPlan{nil, {Name: "empty"}} {
				run, err := RunArmed(prog, plan, 0)
				if err != nil {
					t.Fatalf("%s/%s armed empty: %v", coll, alg, err)
				}
				if run.Res.Makespan != want.Makespan || run.Res.Events != want.Events {
					t.Fatalf("%s/%s: armed empty run diverged: %+v vs %+v", coll, alg, run.Res, want)
				}
				if len(run.Events) != 0 {
					t.Fatalf("%s/%s: empty plan fired events %v", coll, alg, run.Events)
				}
			}
		}
	}
}

func TestNodeCrashPoisonsAndDiagnoses(t *testing.T) {
	c := testCluster(t, 8, 8)
	prog := compileT(t, c, CollAllreduce, YHCCLHierarchical, 1<<16)
	plan := &fault.ClusterPlan{Name: "crash2", Crashes: []fault.NodeCrash{{Node: 2, AtTick: 0}}}
	run, err := RunArmed(prog, plan, 0)
	if err == nil {
		t.Fatalf("crashed run completed: %+v", run.Res)
	}
	var cerr *ClusterRunError
	if !errors.As(err, &cerr) {
		t.Fatalf("want *ClusterRunError, got %T: %v", err, err)
	}
	if len(cerr.DeadNodes) != 1 || cerr.DeadNodes[0] != 2 {
		t.Fatalf("diagnosis names dead nodes %v, want [2]", cerr.DeadNodes)
	}
	if cerr.RanksPoisoned == 0 {
		t.Fatalf("no state machines reported poisoned: %v", cerr)
	}
	found := false
	for _, ev := range run.Events {
		if ev.Kind == "node-crash" && ev.Node == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("event log missing node-crash for node 2: %v", run.Events)
	}
}

func TestLateCrashNeverFires(t *testing.T) {
	c := testCluster(t, 8, 8)
	prog := compileT(t, c, CollAllreduce, YHCCLHierarchical, 1<<16)
	healthy, err := sim.RunProgramEvent(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Crash scheduled far beyond the makespan: the run completes untouched.
	plan := &fault.ClusterPlan{Name: "late",
		Crashes: []fault.NodeCrash{{Node: 2, AtTick: int64(healthy.Makespan) * 10}}}
	run, err := RunArmed(prog, plan, 0)
	if err != nil {
		t.Fatalf("late crash halted the run: %v", err)
	}
	if run.Res.Makespan != healthy.Makespan {
		t.Fatalf("late crash changed makespan: %d vs %d", run.Res.Makespan, healthy.Makespan)
	}
}

func TestLinkDegradeAndStragglerSlowButComplete(t *testing.T) {
	c := testCluster(t, 8, 8)
	for _, alg := range []Algorithm{YHCCLHierarchical, LeaderRing, LeaderTree, FlatRing} {
		prog := compileT(t, c, CollAllreduce, alg, 1<<18)
		healthy, err := sim.RunProgramEvent(prog)
		if err != nil {
			t.Fatal(err)
		}
		for name, plan := range map[string]*fault.ClusterPlan{
			"degrade":   {Name: "deg", LinkDegrades: []fault.LinkDegrade{{Node: 3, Factor: 8}}},
			"straggler": {Name: "str", Stragglers: []fault.NodeStraggler{{Node: 3, Factor: 4}}},
		} {
			run, err := RunArmed(prog, plan, 0)
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, name, err)
			}
			if run.Res.Makespan <= healthy.Makespan {
				t.Fatalf("%s/%s: makespan %d not slower than healthy %d",
					alg, name, run.Res.Makespan, healthy.Makespan)
			}
			if len(run.Events) == 0 {
				t.Fatalf("%s/%s: no arming events logged", alg, name)
			}
		}
	}
}

func TestPhaseCorruptFiresAndDiagnoses(t *testing.T) {
	c := testCluster(t, 8, 8)
	prog := compileT(t, c, CollAllreduce, YHCCLHierarchical, 1<<16)
	healthy, err := sim.RunProgramEvent(prog)
	if err != nil {
		t.Fatal(err)
	}
	for phase := 0; phase < fault.ClusterPhases; phase++ {
		plan := &fault.ClusterPlan{Name: fmt.Sprintf("corrupt-p%d", phase),
			Corruptions: []fault.PhaseCorrupt{{Node: 5, Phase: phase}}}
		run, err := RunArmed(prog, plan, 0)
		var cerr *ClusterRunError
		if !errors.As(err, &cerr) {
			t.Fatalf("phase %d: want *ClusterRunError, got %v", phase, err)
		}
		if cerr.CorruptNode != 5 || cerr.CorruptPhase != phase {
			t.Fatalf("phase %d: diagnosis names node %d phase %d",
				phase, cerr.CorruptNode, cerr.CorruptPhase)
		}
		// Corruption changes the payload, not the schedule: timing is intact.
		if run.Res.Makespan != healthy.Makespan {
			t.Fatalf("phase %d: corruption changed makespan %d vs %d",
				phase, run.Res.Makespan, healthy.Makespan)
		}
		if len(run.Events) != 1 || run.Events[0].Kind != "phase-corrupt" || run.Events[0].Tick <= 0 {
			t.Fatalf("phase %d: bad event log %v", phase, run.Events)
		}
	}
}

func TestWatchdogHorizon(t *testing.T) {
	c := testCluster(t, 8, 8)
	prog := compileT(t, c, CollAllreduce, YHCCLHierarchical, 1<<16)
	plan := &fault.ClusterPlan{Name: "slow", Stragglers: []fault.NodeStraggler{{Node: 0, Factor: 8}}}
	_, err := RunArmed(prog, plan, 2) // two ticks: nothing real finishes
	var cerr *ClusterRunError
	if !errors.As(err, &cerr) || !cerr.HorizonHit {
		t.Fatalf("want horizon diagnosis, got %v", err)
	}
}

// Same plan, two cold runs: byte-identical injector logs and identical
// makespans, for every cluster fault class.
func TestArmedDeterminism(t *testing.T) {
	c := testCluster(t, 8, 8)
	prog := compileT(t, c, CollAllreduce, YHCCLHierarchical, 1<<16)
	plans := []*fault.ClusterPlan{
		{Name: "crash", Crashes: []fault.NodeCrash{{Node: 1, AtTick: 1000}}},
		{Name: "degrade", LinkDegrades: []fault.LinkDegrade{{Node: 2, Factor: 6}}},
		{Name: "straggler", Stragglers: []fault.NodeStraggler{{Node: 3, Factor: 3}}},
		{Name: "corrupt", Corruptions: []fault.PhaseCorrupt{{Node: 4, Phase: 1}}},
	}
	for _, plan := range plans {
		run1, err1 := RunArmed(prog, plan, 0)
		run2, err2 := RunArmed(prog, plan, 0)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: errors diverge: %v vs %v", plan.Name, err1, err2)
		}
		if err1 != nil && err1.Error() != err2.Error() {
			t.Fatalf("%s: diagnoses diverge:\n%v\n%v", plan.Name, err1, err2)
		}
		if run1.Res.Makespan != run2.Res.Makespan {
			t.Fatalf("%s: makespans diverge: %d vs %d", plan.Name, run1.Res.Makespan, run2.Res.Makespan)
		}
		log1 := fmt.Sprintf("%v", run1.Events)
		log2 := fmt.Sprintf("%v", run2.Events)
		if log1 != log2 {
			t.Fatalf("%s: event logs diverge:\n%s\n%s", plan.Name, log1, log2)
		}
	}
}

func TestRunArmedValidatesPlan(t *testing.T) {
	c := testCluster(t, 4, 8)
	prog := compileT(t, c, CollAllreduce, YHCCLHierarchical, 1<<12)
	plan := &fault.ClusterPlan{Name: "oob", Crashes: []fault.NodeCrash{{Node: 99, AtTick: 0}}}
	if _, err := RunArmed(prog, plan, 0); err == nil {
		t.Fatal("out-of-range plan accepted")
	}
	wrongShape := &fault.ClusterPlan{Name: "shape",
		Shape:   fault.ClusterShape{Nodes: 16, PerNode: 2},
		Crashes: []fault.NodeCrash{{Node: 1, AtTick: 0}}}
	if _, err := RunArmed(prog, wrongShape, 0); err == nil {
		t.Fatal("wrong-shape plan accepted")
	}
}
