package cluster

import (
	"fmt"

	"yhccl/internal/memmodel"
	"yhccl/internal/plan"
	"yhccl/internal/sim"
)

// Lowering of synthesized plan graphs onto the event-schedule substrate.
//
// A plan.Graph is the tuner's chunk-level copy/reduce DAG for one node.
// CompileGraph turns it into a sim.Program: one program step per DAG step,
// executed by its assigned rank in the graph's global topological order.
// In-rank sequencing is the Program contract's implicit C[r][s-1] term;
// only cross-rank producer->consumer edges become explicit dependencies.
// Durations come from the same progCosts copy/reduce pricing the
// hand-written intra-node templates use, so a synthesized plan and a
// hand-written schedule of identical structure compile to tick-identical
// programs — and both engines must agree on the makespan (the parity gate
// extends over these programs too).

// graphStep is one lowered DAG step: its duration plus the cross-rank
// dependencies, resolved to (rank, local step) coordinates.
type graphStep struct {
	dur  sim.Tick
	deps []gdep
}

type gdep struct{ rank, step int }

// graphProgram implements sim.Program for a lowered plan.Graph.
type graphProgram struct {
	ranks int
	// steps[r] is rank r's ordered step list.
	steps [][]graphStep
}

func (gp *graphProgram) Ranks() int          { return gp.ranks }
func (gp *graphProgram) Steps(rank int) int  { return len(gp.steps[rank]) }
func (gp *graphProgram) Duration(rank, step int) sim.Tick {
	return gp.steps[rank][step].dur
}

func (gp *graphProgram) Deps(rank, step int, visit func(depRank, depStep int) bool) {
	for _, d := range gp.steps[rank][step].deps {
		if !visit(d.rank, d.step) {
			return
		}
	}
}

// CompileGraph lowers a synthesized plan graph over n elements per block
// into an event-schedule program. The graph is an intra-node schedule, so
// the cluster must be single-node with PerNode == g.P.
func (c *Cluster) CompileGraph(g *plan.Graph, n int64, _ ScheduleOptions) (sim.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: message must have at least 1 element")
	}
	if c.Nodes != 1 {
		return nil, fmt.Errorf("cluster: plan graphs are intra-node schedules (cluster has %d nodes)", c.Nodes)
	}
	if g == nil {
		return nil, fmt.Errorf("cluster: nil plan graph")
	}
	if g.P != c.PerNode {
		return nil, fmt.Errorf("cluster: graph compiled for %d ranks, cluster binds %d per node", g.P, c.PerNode)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	blockBytes := float64(n * memmodel.ElemSize)
	costs := newProgCosts(c.Node, c.Net, g.P, blockBytes*float64(g.Blocks))

	gp := &graphProgram{ranks: g.P, steps: make([][]graphStep, g.P)}
	// producer[slot] = (rank, local step) of the step that wrote the slot.
	type prodAt struct{ rank, step int }
	producer := make([]prodAt, g.Slots)
	for i := range producer {
		producer[i] = prodAt{-1, -1}
	}
	for _, st := range g.Steps {
		r := int(st.R)
		gs := graphStep{}
		// A consumed slot on another rank is a cross-rank dependency and —
		// when the producing rank sits on the other socket — a cross-socket
		// transfer, priced with the progCosts cross factor.
		cross := false
		consume := func(slot int32) {
			p := producer[slot]
			if p.rank < 0 {
				return
			}
			if p.rank != r {
				gs.deps = append(gs.deps, gdep{p.rank, p.step})
			}
			if crossSocket(c.Node, r, p.rank) {
				cross = true
			}
		}
		switch st.Kind {
		case plan.OpCopyIn:
			gs.dur = costs.copyT(blockBytes, false)
		case plan.OpReduce:
			for _, op := range [2]plan.Operand{st.A, st.B} {
				if !op.Own {
					consume(op.Slot)
				}
			}
			gs.dur = costs.reduceT(blockBytes, cross)
		case plan.OpCopyOut:
			consume(st.Src)
			gs.dur = costs.copyT(blockBytes, cross)
		}
		local := len(gp.steps[r])
		gp.steps[r] = append(gp.steps[r], gs)
		if (st.Kind == plan.OpCopyIn || st.Kind == plan.OpReduce) && st.Dst != plan.ToRecv {
			producer[st.Dst] = prodAt{r, local}
		}
	}
	return gp, nil
}
