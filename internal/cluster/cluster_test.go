package cluster

import (
	"testing"

	"yhccl/internal/topo"
)

func TestEffectiveBandwidthSaturates(t *testing.T) {
	n := IB100()
	if n.EffectiveBandwidth(1) >= n.LinkBandwidth/2 {
		t.Errorf("one lane should not reach half link bandwidth: %g", n.EffectiveBandwidth(1))
	}
	if n.EffectiveBandwidth(64) < 0.9*n.LinkBandwidth {
		t.Errorf("64 lanes should approach link bandwidth: %g", n.EffectiveBandwidth(64))
	}
	for l := 1; l < 64; l++ {
		if n.EffectiveBandwidth(l+1) <= n.EffectiveBandwidth(l) {
			t.Fatalf("effective bandwidth not monotone at %d lanes", l)
		}
	}
}

func TestRingTimeScalesWithNodes(t *testing.T) {
	n := IB100()
	m := int64(64 << 20)
	t4 := n.RingAllreduceTime(m, 4, 64)
	t16 := n.RingAllreduceTime(m, 16, 64)
	if t16 <= t4 {
		t.Errorf("ring time should grow with node count: %g vs %g", t16, t4)
	}
	if n.RingAllreduceTime(m, 1, 64) != 0 {
		t.Error("single node has no inter-node cost")
	}
}

func TestTreeBeatsRingOnSmallMessages(t *testing.T) {
	n := IB100()
	nodes := 16
	small := int64(4 << 10)
	large := int64(64 << 20)
	if n.TreeAllreduceTime(small, nodes) >= n.RingAllreduceTime(small, nodes, 1) {
		t.Error("tree should beat single-lane ring on 4 KB")
	}
	if n.TreeAllreduceTime(large, nodes) <= n.RingAllreduceTime(large, nodes, 64) {
		t.Error("multi-lane ring should beat tree on 64 MB")
	}
}

func TestYHCCLHierarchicalWinsLargeMulitNode(t *testing.T) {
	// Fig. 16b: 16 nodes x 64 ranks, large messages: YHCCL 1.4-8.8x over
	// the leader/flat compositions.
	c := New(topo.NodeA(), 16, 64, IB100())
	n := int64(16 << 20 / 8) // 16 MB
	ty := c.MustAllreduceTime(YHCCLHierarchical, n)
	for _, alg := range []Algorithm{LeaderRing, LeaderTree, FlatRing} {
		tb := c.MustAllreduceTime(alg, n)
		if ty >= tb {
			t.Errorf("YHCCL (%.4g) should beat %s (%.4g) on 16 MB", ty, alg, tb)
		}
		if sp := tb / ty; sp > 12 {
			t.Errorf("speedup vs %s is %.1fx, implausibly large", alg, sp)
		}
	}
}

func TestLeaderTreeWinsSmallMultiNode(t *testing.T) {
	// Fig. 16b small-message regime: tree-based implementations win.
	c := New(topo.NodeA(), 16, 64, IB100())
	n := int64(16 << 10 / 8) // 16 KB
	ty := c.MustAllreduceTime(YHCCLHierarchical, n)
	tt := c.MustAllreduceTime(LeaderTree, n)
	if tt >= ty {
		t.Errorf("leader-tree (%.4g) should beat YHCCL (%.4g) on 16 KB", tt, ty)
	}
}

func TestUnknownAlgorithmError(t *testing.T) {
	c := New(topo.NodeA(), 2, 4, IB100())
	if _, err := c.AllreduceTime(Algorithm("bogus"), 100); err == nil {
		t.Error("expected error")
	}
}

func TestAlgorithmsList(t *testing.T) {
	if len(Algorithms()) != 4 {
		t.Errorf("algorithm list = %v", Algorithms())
	}
}

func TestClusterDeterministic(t *testing.T) {
	mk := func() float64 {
		c := New(topo.NodeB(), 8, 48, IB100())
		return c.MustAllreduceTime(YHCCLHierarchical, 1<<18)
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("nondeterministic cluster timing: %v vs %v", a, b)
	}
}

func TestMultiNodeBcast(t *testing.T) {
	c := New(topo.NodeA(), 16, 64, IB100())
	n := int64(8 << 20 / 8) // 8 MB
	ty, err := c.BcastTime(YHCCLHierarchical, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{LeaderTree, FlatRing} {
		tb, err := c.BcastTime(alg, n)
		if err != nil {
			t.Fatal(err)
		}
		if ty >= tb {
			t.Errorf("bcast: YHCCL (%.4g) should beat %s (%.4g) at 8 MB", ty, alg, tb)
		}
	}
	if _, err := c.BcastTime(Algorithm("nope"), n); err == nil {
		t.Error("unknown bcast algorithm accepted")
	}
}

func TestMultiNodeAllgather(t *testing.T) {
	c := New(topo.NodeA(), 8, 64, IB100())
	n := int64(256 << 10 / 8) // 256 KB contributed per rank
	ty, err := c.AllgatherTime(YHCCLHierarchical, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{LeaderRing, FlatRing} {
		tb, err := c.AllgatherTime(alg, n)
		if err != nil {
			t.Fatal(err)
		}
		if ty >= tb {
			t.Errorf("allgather: YHCCL (%.4g) should beat %s (%.4g)", ty, alg, tb)
		}
	}
	if _, err := c.AllgatherTime(Algorithm("nope"), n); err == nil {
		t.Error("unknown all-gather algorithm accepted")
	}
}

func TestMultiNodeSingleNodeNoInter(t *testing.T) {
	c := New(topo.NodeB(), 1, 48, IB100())
	tb, err := c.BcastTime(YHCCLHierarchical, 1<<16)
	if err != nil || tb <= 0 {
		t.Fatalf("bcast on one node: %v %v", tb, err)
	}
	tg, err := c.AllgatherTime(YHCCLHierarchical, 1<<12)
	if err != nil || tg <= 0 {
		t.Fatalf("allgather on one node: %v %v", tg, err)
	}
}
