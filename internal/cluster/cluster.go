// Package cluster models multi-node execution for the paper's large-scale
// experiments (Figs. 16b, 17, 18): identical shared-memory nodes joined by
// an InfiniBand-class network.
//
// Intra-node phases run on the full discrete-event machine of internal/mpi
// (one representative node — the nodes execute the same program in
// lockstep). Inter-node phases use an analytic network model with
// multi-lane saturation: a single communicating process pair cannot fill
// an IB link; several concurrent pairs can (Träff & Hunold [52], which the
// paper cites for exactly this effect). YHCCL's hierarchical all-reduce
// keeps all p processes communicating between nodes simultaneously, while
// leader-based designs funnel inter-node traffic through one process.
package cluster

import (
	"fmt"
	"math"

	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// Network describes the inter-node fabric.
type Network struct {
	// LinkBandwidth is the per-node injection bandwidth in bytes/s
	// (e.g. 12.5e9 for 100 Gb/s InfiniBand).
	LinkBandwidth float64
	// Latency is the one-way small-message latency in seconds.
	Latency float64
	// SaturationLanes controls the lane-efficiency curve: L concurrent
	// streams achieve LinkBandwidth * L/(L+SaturationLanes). One stream on
	// a 100 Gb/s link reaches ~25% of peak; 16+ streams approach peak.
	SaturationLanes float64
}

// IB100 returns a 100 Gb/s InfiniBand-class network. Latency is the
// per-step software+wire cost an MPI rendezvous pays, not raw wire time.
func IB100() Network {
	return Network{LinkBandwidth: 12.5e9, Latency: 3e-6, SaturationLanes: 3}
}

// IB56 returns a 56 Gb/s FDR network (Cluster C vintage).
func IB56() Network {
	return Network{LinkBandwidth: 7e9, Latency: 4e-6, SaturationLanes: 3}
}

// EffectiveBandwidth returns the aggregate bandwidth L concurrent lanes
// extract from one node's link.
func (n Network) EffectiveBandwidth(lanes int) float64 {
	if lanes <= 0 {
		return 0
	}
	l := float64(lanes)
	return n.LinkBandwidth * l / (l + n.SaturationLanes)
}

// RingAllreduceTime is the standard ring all-reduce cost of m bytes across
// N nodes with `lanes` concurrent per-node streams (each lane carries
// m/lanes bytes): 2(N-1) steps moving (m/lanes)/N bytes per lane, all lanes
// sharing the effective link bandwidth.
func (n Network) RingAllreduceTime(m int64, nodes, lanes int) float64 {
	if nodes <= 1 || m <= 0 {
		return 0
	}
	steps := 2 * (nodes - 1)
	bytesPerStep := float64(m) / float64(nodes)
	return float64(steps) * (bytesPerStep/n.EffectiveBandwidth(lanes) + n.Latency)
}

// TreeAllreduceTime is a binomial reduce+broadcast over single-lane links
// (the leader-based pattern of hcoll/MVAPICH2 for small messages).
func (n Network) TreeAllreduceTime(m int64, nodes int) float64 {
	if nodes <= 1 || m <= 0 {
		return 0
	}
	depth := int(math.Ceil(math.Log2(float64(nodes))))
	per := float64(m)/n.EffectiveBandwidth(1) + n.Latency
	return 2 * float64(depth) * per
}

// Cluster is N identical nodes with perNode ranks each.
type Cluster struct {
	Node    *topo.Node
	Nodes   int
	PerNode int
	Net     Network

	// Epoch is the membership epoch this cluster was built for: 0 for a
	// fresh cluster; the supervisor stamps each recompiled or rejoined
	// cluster with a successor epoch so reports can name the membership a
	// result came from. Plain data — the event path never reads it.
	Epoch int

	// machine is the representative node, reused across calls so that
	// communicator state persists like a real job.
	machine *mpi.Machine
	// engine selects the simulation core Scheduled* methods run compiled
	// programs on (EngineCoroutine by default — the exact reference).
	engine sim.EngineKind
}

// New builds a cluster. Model-only machines are used (timing studies).
func New(node *topo.Node, nodes, perNode int, net Network) *Cluster {
	return &Cluster{
		Node:    node,
		Nodes:   nodes,
		PerNode: perNode,
		Net:     net,
		machine: mpi.NewMachine(node, perNode, false),
	}
}

// Ranks returns the total process count.
func (c *Cluster) Ranks() int { return c.Nodes * c.PerNode }

// Machine exposes the representative node (for counter inspection).
func (c *Cluster) Machine() *mpi.Machine { return c.machine }

// Algorithm selects a multi-node all-reduce composition.
type Algorithm string

const (
	// YHCCLHierarchical: intra-node socket-MA reduce-scatter, inter-node
	// ring all-reduce with all p ranks as lanes, intra-node all-gather
	// copy-out (§5.5 "multi-node performance evaluation").
	YHCCLHierarchical Algorithm = "yhccl"
	// LeaderRing: intra-node reduce to a leader (CMA ring), single-lane
	// inter-node ring, intra-node broadcast — the Open MPI/Intel MPI
	// pattern.
	LeaderRing Algorithm = "leader-ring"
	// LeaderTree: leader reduction with a binomial inter-node tree
	// (hcoll / MVAPICH2), strongest on small messages.
	LeaderTree Algorithm = "leader-tree"
	// FlatRing: a ring over all P ranks with no node awareness — the
	// behaviour of MPICH and of Open MPI's default tuned ring at scale:
	// 2(P-1) synchronous steps, each gated by the slowest (inter-node,
	// single-lane) hop.
	FlatRing Algorithm = "flat-ring"
)

// Algorithms lists the selectable compositions.
func Algorithms() []Algorithm {
	return []Algorithm{YHCCLHierarchical, LeaderRing, LeaderTree, FlatRing}
}

// AllreduceTime returns the simulated seconds of one all-reduce of n
// float64 elements per rank under the given composition.
func (c *Cluster) AllreduceTime(alg Algorithm, n int64) (float64, error) {
	bytes := n * memmodel.ElemSize
	switch alg {
	case YHCCLHierarchical:
		// Intra reduce-scatter leaves s/p per rank; all p ranks then run
		// the inter-node ring concurrently (p lanes); intra all-gather.
		intra := c.steadyIntra("car", n, coll.AllreduceYHCCL)
		inter := c.Net.RingAllreduceTime(bytes, c.Nodes, c.PerNode)
		return intra + inter, nil
	case LeaderRing:
		intra := c.steadyIntra("clr", n, coll.AllreduceCMA)
		inter := c.Net.RingAllreduceTime(bytes, c.Nodes, 1)
		return intra + inter, nil
	case LeaderTree:
		// MVAPICH2/hcoll-style: socket-aware two-level shm reduction
		// intra-node, binomial tree across nodes.
		intra := c.steadyIntra("clt", n, coll.AllreduceTwoLevel)
		inter := c.Net.TreeAllreduceTime(bytes, c.Nodes)
		return intra + inter, nil
	case FlatRing:
		// Flat ring over P ranks: every one of the 2(P-1) steps pays the
		// single-lane inter-node hop that gates the ring, plus the
		// intra-node two-copy transport work (5 access units per block:
		// copy-in, fused receive+reduce) every rank performs per step.
		P := c.Ranks()
		if P <= 1 {
			return 0, nil
		}
		block := float64(bytes) / float64(P)
		interHop := block/c.Net.EffectiveBandwidth(1) + c.Net.Latency
		memHop := 5 * block / c.machine.Model.CacheBandwidthPerRank(0)
		return float64(2*(P-1)) * (interHop + memHop), nil
	}
	return 0, fmt.Errorf("cluster: unknown algorithm %q", alg)
}

// steadyIntra measures the steady-state intra-node time of one all-reduce:
// a warm-up run (which also absorbs any dirty cache state a previously
// measured algorithm left behind) followed by the measured run, on
// persistent warm buffers — the OSU iteration discipline.
func (c *Cluster) steadyIntra(label string, n int64, alg func(r *mpi.Rank, cm *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o coll.Options)) float64 {
	body := func(r *mpi.Rank) {
		sb := r.PersistentBuffer(fmt.Sprintf("%s/sb/%d", label, n), n)
		rb := r.PersistentBuffer(fmt.Sprintf("%s/rb/%d", label, n), n)
		r.Warm(sb, 0, n)
		r.Warm(rb, 0, n)
		alg(r, r.World(), sb, rb, n, mpi.Sum, coll.Options{})
	}
	c.machine.MustRun(body)
	return c.machine.MustRun(body)
}

// AllreduceTimeTensors models a Horovod-style fused gradient exchange:
// the message is split into `tensors` buckets, each all-reduced
// separately (paying per-bucket latency).
func (c *Cluster) AllreduceTimeTensors(alg Algorithm, totalElems int64, tensors int) (float64, error) {
	if tensors <= 0 {
		tensors = 1
	}
	per, err := c.AllreduceTime(alg, ceilDiv64(totalElems, int64(tensors)))
	if err != nil {
		return 0, err
	}
	return per * float64(tensors), nil
}

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }

// MustAllreduceTime panics on unknown algorithms.
func (c *Cluster) MustAllreduceTime(alg Algorithm, n int64) float64 {
	t, err := c.AllreduceTime(alg, n)
	if err != nil {
		panic(err)
	}
	return t
}
