package cluster

import (
	"fmt"

	"yhccl/internal/plan"
	"yhccl/internal/schedule"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// The engine parity gate: every config both engines can run must produce
// tick-identical makespans. Compiled programs are deterministic and both
// interpreters realize the same max-recurrence with exact integer
// arithmetic, so the comparison is equality on ticks, not a tolerance.

// ParityCase is one config of the shared engine-comparison matrix.
type ParityCase struct {
	Name  string
	Clust *Cluster
	Coll  string
	Alg   Algorithm
	Elems int64
	Opts  ScheduleOptions
	// Graph, when non-nil, compiles through CompileGraph instead of the
	// algorithm compiler — the parity gate over synthesized plan DAGs.
	Graph *plan.Graph
}

// parityNode is a small two-socket machine (2 x 2 cores) so the matrix can
// exercise the socket-aware schedule without simulating 64 locals per node.
func parityNode() *topo.Node {
	n := topo.NodeA()
	n.Name = "ParityNode"
	n.CoresPerSocket = 2
	return n
}

// ParityCases returns the shared config matrix: every collective x
// algorithm x intra-kind combination the compiler accepts, across node
// counts that exercise the degenerate (N=1), even and odd ring/tree shapes,
// plus a ring-coarsening case. Rank counts stay small enough for the
// coroutine engine to be comfortable — this is the correctness gate, not
// the scale sweep.
func ParityCases() []ParityCase {
	type shape struct {
		node    *topo.Node
		nodes   int
		perNode int
		intra   IntraKind
	}
	shapes := []shape{
		{topo.NodeA(), 1, 1, IntraAuto},
		{topo.NodeA(), 1, 8, IntraMA},
		{topo.NodeA(), 2, 1, IntraAuto},
		{topo.NodeA(), 3, 8, IntraMA},
		{topo.NodeA(), 4, 8, IntraMA},
		{parityNode(), 4, 4, IntraAuto}, // socket-aware for yhccl, RG for leaders
		{topo.NodeA(), 2, 64, IntraAuto},
	}
	sizes := []int64{2048, 262144} // 16 KB and 2 MB
	var cases []ParityCase
	for _, sh := range shapes {
		cl := New(sh.node, sh.nodes, sh.perNode, IB100())
		for _, alg := range Algorithms() {
			intra := sh.intra
			if alg == LeaderRing || alg == LeaderTree || alg == FlatRing {
				intra = IntraAuto
			}
			for _, coll := range []string{CollAllreduce, CollBcast, CollAllgather} {
				for _, n := range sizes {
					cases = append(cases, ParityCase{
						Name: fmt.Sprintf("%s/%s/%dx%d/%s/n%d",
							coll, alg, sh.nodes, sh.perNode, sh.node.Name, n),
						Clust: cl,
						Coll:  coll,
						Alg:   alg,
						Elems: n,
						Opts:  ScheduleOptions{Intra: intra},
					})
				}
			}
		}
	}
	// Ring coarsening must preserve parity too (both engines execute the
	// same coarsened program).
	coarse := New(topo.NodeA(), 16, 8, IB100())
	for _, alg := range []Algorithm{YHCCLHierarchical, LeaderRing, FlatRing} {
		intra := IntraMA
		if alg == LeaderRing {
			intra = IntraAuto // leader compositions reduce through RG
		}
		cases = append(cases, ParityCase{
			Name:  fmt.Sprintf("allreduce/%s/16x8/coarse8/n65536", alg),
			Clust: coarse,
			Coll:  CollAllreduce,
			Alg:   alg,
			Elems: 65536,
			Opts:  ScheduleOptions{Intra: intra, RingSteps: 8},
		})
	}
	// Synthesized plan graphs: the tuner's DAG shapes (chain lowering,
	// asymmetric fanout, pure copy DAGs) compiled through CompileGraph must
	// hold the same tick-identical parity as hand-written programs.
	mustGraph := func(g *plan.Graph, err error) *plan.Graph {
		if err != nil {
			panic(err)
		}
		return g
	}
	graphs := []struct {
		name  string
		p     int
		graph *plan.Graph
	}{
		{"plan-ma-rs", 8, mustGraph(plan.FromSchedule(schedule.MA(8)))},
		{"plan-fanout-rs", 8, mustGraph(plan.FromSchedule(schedule.Fanout(8, 2)))},
		{"plan-fanout-ar", 8, mustGraph(plan.AllreduceFromSchedule(schedule.Fanout(8, 4)))},
		{"plan-bcast", 8, plan.BcastGraph(8, 0)},
		{"plan-allgather", 4, plan.AllgatherGraph(4)},
		{"plan-socket-rs", 4, mustGraph(plan.FromSchedule(schedule.MA(4)))},
	}
	for _, gc := range graphs {
		node := topo.NodeA()
		if gc.name == "plan-socket-rs" {
			node = parityNode() // 2x2: exercises the cross-socket pricing
		}
		for _, n := range sizes {
			cases = append(cases, ParityCase{
				Name:  fmt.Sprintf("graph/%s/1x%d/n%d", gc.name, gc.p, n),
				Clust: New(node, 1, gc.p, IB100()),
				Coll:  CollAllreduce, // unused: Graph selects the compiler
				Elems: n,
				Graph: gc.graph,
			})
		}
	}
	return cases
}

// ParityResult records one verified config.
type ParityResult struct {
	Name     string
	Makespan sim.Tick
	Events   uint64
}

// VerifyParity compiles every case once and executes it on both engines,
// demanding tick-identical makespans, plus a second event-engine run
// demanding a bit-identical repeat (determinism). It returns the per-case
// results on success and the first divergence as an error.
func VerifyParity(cases []ParityCase) ([]ParityResult, error) {
	results := make([]ParityResult, 0, len(cases))
	for _, pc := range cases {
		var prog sim.Program
		var err error
		if pc.Graph != nil {
			prog, err = pc.Clust.CompileGraph(pc.Graph, pc.Elems, pc.Opts)
		} else {
			prog, err = pc.Clust.Compile(pc.Coll, pc.Alg, pc.Elems, pc.Opts)
		}
		if err != nil {
			return nil, fmt.Errorf("parity %s: compile: %w", pc.Name, err)
		}
		ev, err := sim.RunProgramEvent(prog)
		if err != nil {
			return nil, fmt.Errorf("parity %s: event engine: %w", pc.Name, err)
		}
		co, err := sim.RunProgramCoroutine(prog)
		if err != nil {
			return nil, fmt.Errorf("parity %s: coroutine engine: %w", pc.Name, err)
		}
		if ev.Makespan != co.Makespan {
			return nil, fmt.Errorf("parity %s: makespan divergence: event %d ticks vs coroutine %d ticks (Δ %d)",
				pc.Name, ev.Makespan, co.Makespan, ev.Makespan-co.Makespan)
		}
		if ev.StepsRun != co.StepsRun {
			return nil, fmt.Errorf("parity %s: step-count divergence: event %d vs coroutine %d",
				pc.Name, ev.StepsRun, co.StepsRun)
		}
		ev2, err := sim.RunProgramEvent(prog)
		if err != nil {
			return nil, fmt.Errorf("parity %s: event engine rerun: %w", pc.Name, err)
		}
		if ev2.Makespan != ev.Makespan || ev2.Events != ev.Events {
			return nil, fmt.Errorf("parity %s: event engine nondeterminism: %d/%d vs %d/%d",
				pc.Name, ev.Makespan, ev.Events, ev2.Makespan, ev2.Events)
		}
		results = append(results, ParityResult{Name: pc.Name, Makespan: ev.Makespan, Events: ev.Events})
	}
	return results, nil
}
