package cluster

import (
	"fmt"
	"math"

	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
)

// Multi-node broadcast and all-gather compositions, completing the
// hierarchical story: YHCCL's multi-lane decomposition (scatter the
// message across a node's ranks, move the pieces in parallel lanes,
// reassemble intra-node) against the leader-based binomial pattern.

// BcastTime models one broadcast of n elements per rank.
func (c *Cluster) BcastTime(alg Algorithm, n int64) (float64, error) {
	bytes := n * memmodel.ElemSize
	switch alg {
	case YHCCLHierarchical:
		// Root node scatters the message across its p ranks; the pieces
		// cross the fabric on p lanes down a binomial node tree; every
		// node reassembles with the intra-node pipelined bcast + allgather
		// (the multi-lane decomposition of Träff & Hunold the paper cites).
		intra := c.steadyBcast("cbc", n, coll.BcastPipelined)
		depth := math.Ceil(math.Log2(float64(c.Nodes)))
		inter := depth * (float64(bytes)/c.Net.EffectiveBandwidth(c.PerNode) + c.Net.Latency)
		if c.Nodes == 1 {
			inter = 0
		}
		return intra + inter, nil
	case LeaderTree, LeaderRing:
		// Leader-based: binomial tree over single-lane links, then the
		// CMA one-to-all broadcast inside each node.
		intra := c.steadyBcast("cbl", n, coll.BcastCMA)
		inter := c.Net.TreeAllreduceTime(bytes, c.Nodes) / 2 // one direction only
		return intra + inter, nil
	case FlatRing:
		// Node-oblivious binomial over all P ranks: log2(P) rounds, each
		// gated by a single-lane inter-node hop.
		P := c.Ranks()
		if P <= 1 {
			return 0, nil
		}
		depth := math.Ceil(math.Log2(float64(P)))
		per := float64(bytes)/c.Net.EffectiveBandwidth(1) + c.Net.Latency +
			2*float64(bytes)/c.machine.Model.CacheBandwidthPerRank(0)
		return depth * per, nil
	}
	return 0, fmt.Errorf("cluster: unknown bcast algorithm %q", alg)
}

// AllgatherTime models one all-gather of n elements contributed per rank
// (every rank ends with n * Ranks()).
func (c *Cluster) AllgatherTime(alg Algorithm, n int64) (float64, error) {
	perNodeBytes := n * memmodel.ElemSize * int64(c.PerNode)
	total := perNodeBytes * int64(c.Nodes)
	switch alg {
	case YHCCLHierarchical:
		// Intra-node all-gather assembles each node's contribution; the
		// node blocks then circulate on a multi-lane inter-node ring while
		// ranks copy arrivals out of shared memory.
		intra := c.steadyAllgather("cag", n, coll.AllgatherPipelined)
		inter := 0.0
		if c.Nodes > 1 {
			steps := float64(c.Nodes - 1)
			inter = steps * (float64(perNodeBytes)/c.Net.EffectiveBandwidth(c.PerNode) + c.Net.Latency)
			// Copy-out of the remotely received blocks.
			inter += float64(total-perNodeBytes) / c.machine.Model.CacheBandwidthPerRank(0)
		}
		return intra + inter, nil
	case LeaderTree, LeaderRing:
		// Leaders gather intra-node, exchange on a single-lane ring, then
		// broadcast the assembled result inside each node (CMA).
		intra := c.steadyAllgather("cal", n, coll.AllgatherRing)
		inter := 0.0
		if c.Nodes > 1 {
			steps := float64(c.Nodes - 1)
			inter = steps * (float64(perNodeBytes)/c.Net.EffectiveBandwidth(1) + c.Net.Latency)
			inter += float64(total) / c.machine.Model.CacheBandwidthPerRank(0) // leader redistributes
		}
		return intra + inter, nil
	case FlatRing:
		P := c.Ranks()
		if P <= 1 {
			return 0, nil
		}
		block := n * memmodel.ElemSize
		per := float64(block)/c.Net.EffectiveBandwidth(1) + c.Net.Latency +
			4*float64(block)/c.machine.Model.CacheBandwidthPerRank(0)
		return float64(P-1) * per, nil
	}
	return 0, fmt.Errorf("cluster: unknown all-gather algorithm %q", alg)
}

// steadyBcast measures the steady-state intra-node broadcast.
func (c *Cluster) steadyBcast(label string, n int64, alg coll.BcastFunc) float64 {
	body := func(r *mpi.Rank) {
		buf := r.PersistentBuffer(fmt.Sprintf("%s/buf/%d", label, n), n)
		r.Warm(buf, 0, n)
		alg(r, r.World(), buf, n, 0, coll.Options{})
	}
	c.machine.MustRun(body)
	return c.machine.MustRun(body)
}

// steadyAllgather measures the steady-state intra-node all-gather.
func (c *Cluster) steadyAllgather(label string, n int64, alg coll.AGFunc) float64 {
	body := func(r *mpi.Rank) {
		sb := r.PersistentBuffer(fmt.Sprintf("%s/sb/%d", label, n), n)
		rb := r.PersistentBuffer(fmt.Sprintf("%s/rb/%d", label, n), n*int64(c.PerNode))
		r.Warm(sb, 0, n)
		alg(r, r.World(), sb, rb, n, coll.Options{})
	}
	c.machine.MustRun(body)
	return c.machine.MustRun(body)
}
