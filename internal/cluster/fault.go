// Fault arming for compiled cluster schedules. A fault.ClusterPlan is
// lowered onto a compiled program as pure arithmetic: node straggler
// dilation and link-degrade repricing become a Duration wrapper (the
// dependency structure is untouched, so the armed run stays a valid
// execution of the same schedule), node crashes become per-rank poison
// ticks consumed by the armed event interpreter, and phase corruptions
// become completion hooks that fire at the exact tick the victim node's
// phase step completes. With an empty plan the wrapper is bypassed entirely
// and the run is bit-identical to the healthy path — the 183-case parity
// matrix never sees any of this machinery.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"yhccl/internal/fault"
	"yhccl/internal/sim"
)

// nodePhased is implemented by compiled cluster programs that expose their
// node and phase structure to the fault armer.
type nodePhased interface {
	sim.Program
	// Shape returns the node decomposition of the program's rank space.
	Shape() fault.ClusterShape
	// PhaseOf buckets a step into the canonical composition phases:
	// 0 = intra phase A, 1 = inter-node, 2 = intra phase C.
	PhaseOf(rank, step int) int
	// InterTicks returns the portion of the step's duration carried on an
	// inter-node lane (0 for pure intra steps) — the part a degraded link
	// reprices.
	InterTicks(rank, step int) sim.Tick
	// InterSrcNode returns the node on the far end of the lane an
	// inter-node step uses (-1 for intra steps).
	InterSrcNode(rank, step int) int
}

// --- nodePhased implementations for the compiled program kinds ---

func (cp *clusterProgram) Shape() fault.ClusterShape {
	return fault.ClusterShape{Nodes: cp.nodes, PerNode: cp.perNode}
}

func (cp *clusterProgram) PhaseOf(rank, step int) int {
	node, local := rank/cp.perNode, rank%cp.perNode
	la := cp.lenA(node, local)
	if step < la {
		return 0
	}
	if step < la+cp.lenB(node, local) {
		return 1
	}
	return 2
}

func (cp *clusterProgram) InterTicks(rank, step int) sim.Tick {
	node, local := rank/cp.perNode, rank%cp.perNode
	la := cp.lenA(node, local)
	if step < la || step >= la+cp.lenB(node, local) {
		return 0
	}
	g := step - la
	switch cp.inter.kind {
	case interRingAll, interRingLeader:
		return sim.Tick(cp.inter.hopsIn(g)) * cp.inter.hopDur
	default:
		// Tree-shaped phases pay one wire hop per step; reduceDur/extraDur
		// are node-local compute.
		return cp.inter.hopDur
	}
}

func (cp *clusterProgram) InterSrcNode(rank, step int) int {
	node, local := rank/cp.perNode, rank%cp.perNode
	la := cp.lenA(node, local)
	if step < la || step >= la+cp.lenB(node, local) {
		return -1
	}
	g := step - la
	switch cp.inter.kind {
	case interRingAll, interRingLeader:
		return (node - 1 + cp.nodes) % cp.nodes
	case interTreeLeader:
		if g < cp.recvCount(node) {
			return node + cp.recvRound(node, g)
		}
		return node - 1<<(bits.Len(uint(node))-1)
	case interTreeBcastLeader, interLaneTree:
		return node - 1<<(bits.Len(uint(node))-1)
	}
	return -1
}

func (fp *flatRingProgram) Shape() fault.ClusterShape {
	return fault.ClusterShape{Nodes: fp.ranks / fp.perNode, PerNode: fp.perNode}
}

func (fp *flatRingProgram) interStep(rank int) bool {
	return rank%fp.perNode == 0 && fp.ranks > fp.perNode
}

func (fp *flatRingProgram) PhaseOf(rank, _ int) int {
	if fp.interStep(rank) {
		return 1
	}
	return 0
}

func (fp *flatRingProgram) InterTicks(rank, step int) sim.Tick {
	if !fp.interStep(rank) {
		return 0
	}
	lo, hi := fp.hopRange(step)
	return sim.Tick(hi-lo) * fp.interExtra
}

func (fp *flatRingProgram) InterSrcNode(rank, _ int) int {
	if !fp.interStep(rank) {
		return -1
	}
	return ((rank - 1 + fp.ranks) % fp.ranks) / fp.perNode
}

func (ft *flatTreeProgram) Shape() fault.ClusterShape {
	return fault.ClusterShape{Nodes: ft.ranks / ft.perNode, PerNode: ft.perNode}
}

func (ft *flatTreeProgram) crossNode(rank int) bool {
	return ft.src(rank)/ft.perNode != rank/ft.perNode
}

func (ft *flatTreeProgram) PhaseOf(rank, _ int) int {
	if ft.crossNode(rank) {
		return 1
	}
	return 0
}

func (ft *flatTreeProgram) InterTicks(rank, _ int) sim.Tick {
	if ft.crossNode(rank) {
		return ft.interDur
	}
	return 0
}

func (ft *flatTreeProgram) InterSrcNode(rank, _ int) int {
	if ft.crossNode(rank) {
		return ft.src(rank) / ft.perNode
	}
	return -1
}

// armedProgram reprices a compiled program under a cluster plan: link
// degradation inflates the inter-lane portion of affected hops, node
// straggler dilation stretches every step charged to the node. Dependencies,
// step counts and rank space are untouched.
type armedProgram struct {
	nodePhased
	perNode int
	// linkFactor[node] > 1 degrades the node's lane; 0/1 = healthy.
	linkFactor []float64
	// dilate[node] > 1 stretches the node's virtual time; 0/1 = healthy.
	dilate []float64
}

func (ap *armedProgram) Duration(rank, step int) sim.Tick {
	d := ap.nodePhased.Duration(rank, step)
	node := rank / ap.perNode
	if it := ap.nodePhased.InterTicks(rank, step); it > 0 {
		f := ap.linkFactor[node]
		if src := ap.nodePhased.InterSrcNode(rank, step); src >= 0 && ap.linkFactor[src] > f {
			f = ap.linkFactor[src]
		}
		if f > 1 {
			// Ceil so a degraded lane is never free, even on tiny hops.
			d += sim.Tick(math.Ceil(float64(it) * (f - 1)))
		}
	}
	if dil := ap.dilate[node]; dil > 1 {
		d = sim.Tick(math.Ceil(float64(d) * dil))
	}
	return d
}

// ClusterRunError is the deterministic diagnosis of a faulty cluster run:
// it names the dead nodes (crash), the degraded lanes and straggler nodes
// that were armed, and the node/phase where the result diverged (transient
// corruption). A run that completes slow-but-correct under degradation does
// not error; a poisoned or diverging run does.
type ClusterRunError struct {
	Plan *fault.ClusterPlan

	// DeadNodes are nodes whose state machines were poisoned mid-run.
	DeadNodes []int
	// RanksPoisoned counts individual state machines that died.
	RanksPoisoned int

	// DegradedLanes / StragglerNodes report what was armed on the run.
	DegradedLanes  []int
	StragglerNodes []int

	// CorruptNode/CorruptPhase name the diverging phase (-1 when none).
	CorruptNode  int
	CorruptPhase int

	// HorizonHit reports the no-progress watchdog fired at tick HaltTick.
	HorizonHit bool
	HaltTick   sim.Tick

	Finished int
	Total    int
	// Waiting samples stuck dependency edges ("rank@step->rank@step").
	Waiting []string
}

func (e *ClusterRunError) Error() string {
	s := "cluster: "
	switch {
	case len(e.DeadNodes) > 0:
		s += fmt.Sprintf("run halted: dead node(s) %v, %d state machines poisoned, %d of %d ranks finished",
			e.DeadNodes, e.RanksPoisoned, e.Finished, e.Total)
	case e.HorizonHit:
		s += fmt.Sprintf("no progress: watchdog horizon exceeded at tick %d, %d of %d ranks finished",
			e.HaltTick, e.Finished, e.Total)
	case e.CorruptNode >= 0:
		s += fmt.Sprintf("result diverges at node %d in the %s phase (transient corruption)",
			e.CorruptNode, fault.ClusterPhaseName(e.CorruptPhase))
	default:
		s += fmt.Sprintf("run halted, %d of %d ranks finished", e.Finished, e.Total)
	}
	if len(e.DegradedLanes) > 0 {
		s += fmt.Sprintf("; degraded lane(s) %v", e.DegradedLanes)
	}
	if len(e.StragglerNodes) > 0 {
		s += fmt.Sprintf("; straggler node(s) %v", e.StragglerNodes)
	}
	if len(e.Waiting) > 0 {
		s += fmt.Sprintf("; waiting: %v", e.Waiting)
	}
	return s
}

// ArmedRun reports one fault-armed execution of a compiled program.
type ArmedRun struct {
	Res    sim.ProgramResult
	Events []fault.ClusterEvent
	// Corrupt events fired: the run completed but its result diverges at
	// CorruptNode/CorruptPhase (-1 when clean).
	CorruptNode  int
	CorruptPhase int
}

// corruptTargets picks, per corruption, the (rank, step) whose completion
// marks the victim node's contribution to the target phase: the last step in
// that phase of the node's lowest-numbered rank that has one. If the node
// runs no step in the requested phase the other phases are tried in a fixed
// order, so a corruption armed on a real node always fires somewhere.
func corruptTargets(np nodePhased, plan *fault.ClusterPlan) map[[2]int32]fault.PhaseCorrupt {
	if len(plan.Corruptions) == 0 {
		return nil
	}
	shape := np.Shape()
	out := make(map[[2]int32]fault.PhaseCorrupt, len(plan.Corruptions))
	for _, c := range plan.Corruptions {
		found := false
		for _, ph := range [...]int{c.Phase, 1, 0, 2} {
			if found {
				break
			}
			for local := 0; local < shape.PerNode && !found; local++ {
				rank := c.Node*shape.PerNode + local
				for step := np.Steps(rank) - 1; step >= 0; step-- {
					if np.PhaseOf(rank, step) == ph {
						out[[2]int32{int32(rank), int32(step)}] = c
						found = true
						break
					}
				}
			}
		}
	}
	return out
}

// RunArmed executes a compiled program on the event engine under a cluster
// fault plan. prog must come from one of the Compile* entry points (it has
// to expose its node structure); plan may be nil or empty, in which case the
// program runs unwrapped and the makespan is bit-identical to the healthy
// path. horizon, when > 0, arms the no-progress watchdog.
//
// The returned ArmedRun always carries the injector event log. The error is
// a *ClusterRunError when the run was poisoned (node crash), tripped the
// watchdog, or completed with a diverging phase (corruption); degraded-lane
// and straggler runs complete slow-but-correct with a nil error.
func RunArmed(prog sim.Program, plan *fault.ClusterPlan, horizon sim.Tick) (ArmedRun, error) {
	run := ArmedRun{CorruptNode: -1, CorruptPhase: -1}
	np, ok := prog.(nodePhased)
	if !ok {
		return run, fmt.Errorf("cluster: program %T does not expose node structure for fault arming", prog)
	}
	shape := np.Shape()
	if err := plan.Validate(shape); err != nil {
		return run, err
	}
	inj := fault.NewClusterInjector(plan)
	inj.BeginRun()

	exec := sim.Program(np)
	var faults *sim.ProgramFaults
	if !plan.Empty() {
		linkFactor := make([]float64, shape.Nodes)
		dilate := make([]float64, shape.Nodes)
		armedDils := false
		for _, d := range plan.LinkDegrades {
			linkFactor[d.Node] = d.Factor
			inj.LogArmed("link-degrade", d.Node, d.Factor)
			armedDils = true
		}
		for _, st := range plan.Stragglers {
			dilate[st.Node] = st.Factor
			inj.LogArmed("node-straggler", st.Node, st.Factor)
			armedDils = true
		}
		if armedDils {
			exec = &armedProgram{nodePhased: np, perNode: shape.PerNode,
				linkFactor: linkFactor, dilate: dilate}
		}
		faults = &sim.ProgramFaults{Horizon: horizon}
		if len(plan.Crashes) > 0 {
			crash := make([]sim.Tick, shape.Ranks())
			for i := range crash {
				crash[i] = -1
			}
			for _, c := range plan.Crashes {
				for local := 0; local < shape.PerNode; local++ {
					crash[c.Node*shape.PerNode+local] = sim.Tick(c.AtTick)
				}
			}
			faults.CrashTick = crash
			crashLogged := make([]bool, shape.Nodes)
			faults.OnDead = func(rank int32, at sim.Tick) {
				node := int(rank) / shape.PerNode
				if !crashLogged[node] {
					crashLogged[node] = true
					inj.LogCrash(node, int64(at), shape.PerNode)
				}
			}
		}
		if targets := corruptTargets(np, plan); targets != nil {
			faults.OnComplete = func(rank, step int32, now sim.Tick) {
				if c, ok := targets[[2]int32{rank, step}]; ok {
					inj.LogCorrupt(c.Node, c.Phase, int64(now))
					if run.CorruptNode < 0 {
						run.CorruptNode, run.CorruptPhase = c.Node, c.Phase
					}
				}
			}
		}
	} else if horizon > 0 {
		faults = &sim.ProgramFaults{Horizon: horizon}
	}

	var res sim.ProgramResult
	var err error
	if faults == nil {
		res, err = sim.RunProgramEvent(exec)
	} else {
		res, err = sim.RunProgramEventArmed(exec, faults)
	}
	run.Res = res
	run.Events = inj.Events()

	if err != nil {
		var halt *sim.ProgramHaltError
		if errors.As(err, &halt) {
			return run, diagnoseHalt(plan, shape, halt, run)
		}
		return run, err
	}
	if run.CorruptNode >= 0 {
		return run, &ClusterRunError{
			Plan:           plan,
			CorruptNode:    run.CorruptNode,
			CorruptPhase:   run.CorruptPhase,
			DegradedLanes:  degradedLanes(plan),
			StragglerNodes: stragglerNodes(plan),
			Finished:       shape.Ranks(),
			Total:          shape.Ranks(),
		}
	}
	return run, nil
}

func degradedLanes(plan *fault.ClusterPlan) []int {
	if plan == nil {
		return nil
	}
	out := make([]int, 0, len(plan.LinkDegrades))
	for _, d := range plan.LinkDegrades {
		out = append(out, d.Node)
	}
	return out
}

func stragglerNodes(plan *fault.ClusterPlan) []int {
	if plan == nil {
		return nil
	}
	out := make([]int, 0, len(plan.Stragglers))
	for _, st := range plan.Stragglers {
		out = append(out, st.Node)
	}
	return out
}

// diagnoseHalt folds a structured sim halt into the cluster-level diagnosis.
func diagnoseHalt(plan *fault.ClusterPlan, shape fault.ClusterShape, halt *sim.ProgramHaltError, run ArmedRun) *ClusterRunError {
	e := &ClusterRunError{
		Plan:           plan,
		RanksPoisoned:  halt.DeadCount,
		DegradedLanes:  degradedLanes(plan),
		StragglerNodes: stragglerNodes(plan),
		CorruptNode:    run.CorruptNode,
		CorruptPhase:   run.CorruptPhase,
		HorizonHit:     halt.HorizonHit,
		HaltTick:       halt.Now,
		Finished:       halt.Finished,
		Total:          halt.Total,
		Waiting:        halt.Waiting,
	}
	if halt.Dead != nil {
		seen := map[int]bool{}
		for rank, dead := range halt.Dead {
			if dead {
				seen[rank/shape.PerNode] = true
			}
		}
		for n := range seen {
			e.DeadNodes = append(e.DeadNodes, n)
		}
		sort.Ints(e.DeadNodes)
	}
	if len(e.DeadNodes) == 0 && !halt.HorizonHit {
		// Survivors stalled without any machine dying here: the plan's
		// crashed nodes never even started (poisoned at tick 0 while parked).
		for _, c := range plan.Crashes {
			e.DeadNodes = append(e.DeadNodes, c.Node)
		}
		sort.Ints(e.DeadNodes)
	}
	return e
}
