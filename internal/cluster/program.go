package cluster

import (
	"fmt"
	"math/bits"

	"yhccl/internal/memmodel"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// Event-schedule compilation of the cluster collectives.
//
// The analytic path (cluster.go, collectives.go) simulates one
// representative node on the coroutine engine and closes over the fabric
// with a formula. This file instead compiles each hierarchical collective —
// the intra-node MA chain / socket-aware / RG tree step schedules composed
// with inter-node ring and binomial-tree phases — into a sim.Program: every
// one of the Nodes x PerNode ranks becomes a compact state machine whose
// steps carry precomputed integer-tick durations and O(1) dependencies
// computed procedurally from (rank, step). Nothing proportional to
// ranks x steps is materialized (the intra-node templates are shared by all
// nodes), so 262144+ rank worlds run on the event engine in flat memory,
// while the identical program replayed on the coroutine engine is the
// tick-exact parity reference.

// IntraKind selects the intra-node step schedule a hierarchical program
// composes from.
type IntraKind string

const (
	// IntraAuto picks IntraSocket when the binding splits evenly across
	// sockets (hierarchical algorithms) and IntraMA otherwise.
	IntraAuto IntraKind = ""
	// IntraMA is the movement-avoiding chain (paper Fig. 5): a wavefront of
	// p reduction chains, one block per rank.
	IntraMA IntraKind = "ma"
	// IntraSocket is the socket-aware composition: MA reduce-scatter per
	// socket, a cross-socket combine chain, then a socket-local all-gather.
	IntraSocket IntraKind = "socket"
	// IntraRG is the RG pipelined tree (leader-based reduce to local rank
	// 0), used by the leader compositions.
	IntraRG IntraKind = "rg"
)

// ScheduleOptions tune program compilation.
type ScheduleOptions struct {
	// Intra selects the intra-node schedule (IntraAuto by default).
	Intra IntraKind
	// RingSteps, when positive, coarsens inter-node ring phases to at most
	// this many macro-steps per rank: consecutive hops are folded into one
	// step whose duration is the sum of the folded hops, and the
	// neighbour-dependency wavefront is kept at macro granularity. Both
	// engines execute the coarsened program, so parity is unaffected; at
	// 262144+ ranks this bounds the event count of ring phases.
	RingSteps int
	// RGDegree is the RG tree branching degree (default 2, as in coll).
	RGDegree int
}

func (o ScheduleOptions) withDefaults() ScheduleOptions {
	if o.RGDegree <= 0 {
		o.RGDegree = 2
	}
	return o
}

// progCosts converts the topology and fabric description into the
// integer-tick step costs the compiled programs carry. The terms mirror the
// analytic model: copies move 2 bytes of traffic per payload byte, reductions
// 3 (two reads, one write), cross-socket accesses are scaled by the xGMI/UPI
// factor, and every step pays the one-way flag-propagation sync latency.
// Per-core bandwidth is two-regime, following the paper's central cache
// argument: when the working set fits in the available cache the per-core
// cache-hierarchy (or SIMD reduce) bandwidth applies; when it spills, each
// core is throttled to its share of the socket's DRAM bandwidth. Inter-node
// hops pay the rendezvous latency plus the lane's share of the effective
// (saturation-curve) link bandwidth.
type progCosts struct {
	node     *topo.Node
	net      Network
	copyBW   float64
	reduceBW float64
}

func newProgCosts(node *topo.Node, net Network, p int, msgBytes float64) progCosts {
	active := p
	if active > node.CoresPerSocket {
		active = node.CoresPerSocket
	}
	dramShare := node.DRAMBandwidthPerSocket / float64(active)
	if dramShare > node.DRAMBandwidthPerCore {
		dramShare = node.DRAMBandwidthPerCore
	}
	c := progCosts{
		node: node, net: net,
		copyBW:   node.CacheBandwidthPerCore,
		reduceBW: node.ReducePerCoreBandwidth,
	}
	// Working set: every rank's send buffer plus the shared result.
	if ws := (float64(p) + 1) * msgBytes; ws > float64(node.AvailableCache(p)) {
		if dramShare < c.copyBW {
			c.copyBW = dramShare
		}
		if dramShare < c.reduceBW {
			c.reduceBW = dramShare
		}
	}
	return c
}

func (c progCosts) copyT(bytes float64, cross bool) sim.Tick {
	bw, sync := c.copyBW, c.node.SyncLatencyIntra
	if cross {
		bw *= c.node.CrossSocketFactor
		sync = c.node.SyncLatencyInter
	}
	return sim.ToTicks(sync + 2*bytes/bw)
}

func (c progCosts) reduceT(bytes float64, cross bool) sim.Tick {
	bw, sync := c.reduceBW, c.node.SyncLatencyIntra
	if cross {
		bw *= c.node.CrossSocketFactor
		sync = c.node.SyncLatencyInter
	}
	return sim.ToTicks(sync + 3*bytes/bw)
}

// laneT is one inter-node hop carrying `bytes` on one of `lanes` concurrent
// per-node streams: EffectiveBandwidth(lanes) is the whole link's yield, so
// a single lane gets a 1/lanes share of it.
func (c progCosts) laneT(bytes float64, lanes int) sim.Tick {
	return sim.ToTicks(c.net.Latency + bytes*float64(lanes)/c.net.EffectiveBandwidth(lanes))
}

// tmplDep is one dependency inside an intra-node template: the target local
// rank and its phase-relative step. Step -1 means "that rank's last step of
// the previous phase" and resolves per-node at query time.
type tmplDep struct {
	local int32
	step  int32
}

// tmplStep is one templated step: a duration and its dependencies.
type tmplStep struct {
	dur  sim.Tick
	deps []tmplDep
}

// intraTemplate is one intra-node phase: per local rank, an ordered step
// list. Nodes are homogeneous, so a single template serves every node; the
// per-rank runtime state stays O(1).
type intraTemplate struct {
	steps [][]tmplStep
}

func (t *intraTemplate) len(local int) int {
	if t == nil {
		return 0
	}
	return len(t.steps[local])
}

// localSockets groups locals 0..p-1 by the socket their block-bound core
// sits on and reports (ranks per socket, socket count) if the partition is
// even with at least two sockets, else ok=false.
func localSockets(node *topo.Node, p int) (perSocket, sockets int, ok bool) {
	counts := make(map[int]int)
	for l := 0; l < p; l++ {
		counts[node.SocketOf(l)]++
	}
	if len(counts) < 2 {
		return 0, 0, false
	}
	per := -1
	for _, n := range counts {
		if per == -1 {
			per = n
		} else if n != per {
			return 0, 0, false
		}
	}
	return per, len(counts), true
}

func crossSocket(node *topo.Node, a, b int) bool {
	return node.SocketOf(a) != node.SocketOf(b)
}

// maReduceScatter builds the MA wavefront reduce-scatter over p locals:
// step 0 is the copy-in feeding the chain whose last executor is the next
// rank; steps 1..p-1 are the descending-executor chain reductions, each
// depending on the next rank's previous step. Rank l's final step produces
// the fully reduced block l.
func maReduceScatter(node *topo.Node, p int, blockBytes float64, c progCosts) *intraTemplate {
	if p <= 1 {
		return nil
	}
	t := &intraTemplate{steps: make([][]tmplStep, p)}
	for l := 0; l < p; l++ {
		next := (l + 1) % p
		cross := crossSocket(node, l, next)
		steps := make([]tmplStep, p)
		steps[0] = tmplStep{dur: c.copyT(blockBytes, false)}
		for j := 1; j < p; j++ {
			steps[j] = tmplStep{
				dur:  c.reduceT(blockBytes, cross),
				deps: []tmplDep{{local: int32(next), step: int32(j - 1)}},
			}
		}
		t.steps[l] = steps
	}
	return t
}

// maAllgather builds the block all-gather: p-1 copy-out steps per local,
// step k copying block (l+k+1) mod p once its owner's previous phase ended.
func maAllgather(node *topo.Node, p int, blockBytes float64, c progCosts) *intraTemplate {
	if p <= 1 {
		return nil
	}
	t := &intraTemplate{steps: make([][]tmplStep, p)}
	for l := 0; l < p; l++ {
		steps := make([]tmplStep, p-1)
		for k := 0; k < p-1; k++ {
			src := (l + k + 1) % p
			steps[k] = tmplStep{
				dur:  c.copyT(blockBytes, crossSocket(node, l, src)),
				deps: []tmplDep{{local: int32(src), step: -1}},
			}
		}
		t.steps[l] = steps
	}
	return t
}

// socketReduceScatter builds the socket-aware reduce-scatter: an MA
// wavefront inside each socket (blocks of msg/perSocket), then a chain of
// cross-socket combines so every rank's block is reduced over all p locals.
func socketReduceScatter(node *topo.Node, p, perSocket, sockets int, blockBytes float64, c progCosts) *intraTemplate {
	t := &intraTemplate{steps: make([][]tmplStep, p)}
	for l := 0; l < p; l++ {
		sock, ls := l/perSocket, l%perSocket
		next := sock*perSocket + (ls+1)%perSocket
		steps := make([]tmplStep, 0, perSocket+sockets-1)
		if perSocket > 1 {
			steps = append(steps, tmplStep{dur: c.copyT(blockBytes, false)})
			for j := 1; j < perSocket; j++ {
				steps = append(steps, tmplStep{
					dur:  c.reduceT(blockBytes, false),
					deps: []tmplDep{{local: int32(next), step: int32(j - 1)}},
				})
			}
		}
		for k := 1; k < sockets; k++ {
			peer := ((sock+k)%sockets)*perSocket + ls
			peerLast := int32(perSocket - 1) // peer's MA-final step index
			if perSocket == 1 {
				peerLast = -1 // peer has no MA phase; its data is phase input
			}
			steps = append(steps, tmplStep{
				dur:  c.reduceT(blockBytes, true),
				deps: []tmplDep{{local: int32(peer), step: peerLast}},
			})
		}
		t.steps[l] = steps
	}
	return t
}

// socketAllgather gathers the socket's blocks locally (after the
// cross-socket combine, one socket's blocks tile the full message).
func socketAllgather(node *topo.Node, p, perSocket int, blockBytes float64, c progCosts) *intraTemplate {
	if perSocket <= 1 {
		return nil
	}
	t := &intraTemplate{steps: make([][]tmplStep, p)}
	for l := 0; l < p; l++ {
		sock, ls := l/perSocket, l%perSocket
		steps := make([]tmplStep, perSocket-1)
		for k := 0; k < perSocket-1; k++ {
			src := sock*perSocket + (ls+k+1)%perSocket
			steps[k] = tmplStep{
				dur:  c.copyT(blockBytes, false),
				deps: []tmplDep{{local: int32(src), step: -1}},
			}
		}
		t.steps[l] = steps
	}
	return t
}

// rgGroups reproduces coll's RG grouping (consecutive groups of degree+1,
// parents regroup until one root remains) and returns each local's children
// in level-flattened reduction order.
func rgGroups(p, degree int) (children [][]int) {
	children = make([][]int, p)
	current := make([]int, p)
	for i := range current {
		current[i] = i
	}
	for len(current) > 1 {
		var next []int
		for g := 0; g < len(current); g += degree + 1 {
			hi := g + degree + 1
			if hi > len(current) {
				hi = len(current)
			}
			par := current[g]
			children[par] = append(children[par], current[g+1:hi]...)
			next = append(next, par)
		}
		current = next
	}
	return children
}

// rgReduce builds the RG tree reduce of the full message to local rank 0:
// pure children publish their buffer (one copy step); parents fold each
// child's slot in level order, depending on the child's last step.
func rgReduce(node *topo.Node, p, degree int, msgBytes float64, c progCosts) *intraTemplate {
	if p <= 1 {
		return nil
	}
	children := rgGroups(p, degree)
	t := &intraTemplate{steps: make([][]tmplStep, p)}
	for l := 0; l < p; l++ {
		if len(children[l]) == 0 {
			t.steps[l] = []tmplStep{{dur: c.copyT(msgBytes, false)}}
			continue
		}
		steps := make([]tmplStep, len(children[l]))
		for i, kid := range children[l] {
			kidLast := len(children[kid]) // leaf: 1 step -> last index 0; parent: len(kids)-1
			if kidLast == 0 {
				kidLast = 1
			}
			steps[i] = tmplStep{
				dur:  c.reduceT(msgBytes, crossSocket(node, l, kid)),
				deps: []tmplDep{{local: int32(kid), step: int32(kidLast - 1)}},
			}
		}
		t.steps[l] = steps
	}
	return t
}

// binomialBcast builds the intra-node binomial broadcast from local 0:
// every other local performs one copy-out once its binomial source holds
// the data (the source's receive step, or the previous phase's end for the
// root). Shared-memory broadcast is receiver-driven, so concurrent
// copy-outs from one source are legitimate.
func binomialBcast(node *topo.Node, p int, msgBytes float64, c progCosts) *intraTemplate {
	if p <= 1 {
		return nil
	}
	t := &intraTemplate{steps: make([][]tmplStep, p)}
	t.steps[0] = nil
	for l := 1; l < p; l++ {
		src := l - 1<<(bits.Len(uint(l))-1)
		dep := tmplDep{local: int32(src), step: 0}
		if src == 0 {
			dep.step = -1
		}
		t.steps[l] = []tmplStep{{
			dur:  c.copyT(msgBytes, crossSocket(node, l, src)),
			deps: []tmplDep{dep},
		}}
	}
	return t
}

// binomialGather builds the leader gather for all-gather: in round k, local
// l with l mod 2^(k+1) == 0 absorbs the segment accumulated by l + 2^k
// (doubling segment sizes), finishing with local 0 holding all p blocks.
func binomialGather(node *topo.Node, p int, perRankBytes float64, c progCosts) *intraTemplate {
	if p <= 1 {
		return nil
	}
	t := &intraTemplate{steps: make([][]tmplStep, p)}
	recvSteps := make([]int, p)
	for l := 0; l < p; l++ {
		var steps []tmplStep
		for k := 0; ; k++ {
			stride := 1 << k
			if l%(2*stride) != 0 {
				break
			}
			src := l + stride
			if src >= p {
				if stride >= p {
					break
				}
				continue
			}
			segRanks := stride
			if src+segRanks > p {
				segRanks = p - src
			}
			srcLast := int32(recvSteps[src] - 1) // its own receives precede its send
			dep := tmplDep{local: int32(src), step: srcLast}
			if recvSteps[src] == 0 {
				dep.step = -1
			}
			steps = append(steps, tmplStep{
				dur:  c.copyT(float64(segRanks)*perRankBytes, crossSocket(node, l, src)),
				deps: []tmplDep{dep},
			})
			recvSteps[l] = len(steps)
		}
		t.steps[l] = steps
	}
	return t
}

// interKind enumerates the inter-node phase shapes.
type interKind int

const (
	interNone interKind = iota
	// interRingAll: every rank runs hopsTotal ring hops (folded into macro
	// steps) over the node dimension on its own lane.
	interRingAll
	// interRingLeader: only local 0 runs the ring.
	interRingLeader
	// interTreeLeader: leaders run a binomial reduce then a binomial
	// broadcast over the node dimension.
	interTreeLeader
	// interTreeBcastLeader: leaders run only the binomial broadcast.
	interTreeBcastLeader
	// interLaneTree: a binomial broadcast over nodes carried on PerNode
	// concurrent lanes (every local receives its piece from the same local
	// on the source node).
	interLaneTree
)

// interSpec is the compiled inter-node phase.
type interSpec struct {
	kind      interKind
	hopsTotal int
	macro     int
	hopDur    sim.Tick
	reduceDur sim.Tick
	extraDur  sim.Tick
}

// macroSteps caps hops at the coarsening limit.
func macroSteps(hops, cap_ int) int {
	if hops <= 0 {
		return 0
	}
	if cap_ > 0 && hops > cap_ {
		return cap_
	}
	return hops
}

// hopsIn returns how many underlying hops macro step g covers (earlier
// macro steps take the remainder, preserving the total).
func (s *interSpec) hopsIn(g int) int {
	base, rem := s.hopsTotal/s.macro, s.hopsTotal%s.macro
	if g < rem {
		return base + 1
	}
	return base
}

// clusterProgram is a compiled hierarchical collective over
// nodes x perNode ranks: intra-node template phase A, inter-node phase B,
// intra-node template phase C. All step queries are O(1) arithmetic plus
// template lookups shared across nodes.
type clusterProgram struct {
	nodes, perNode int
	tmplA, tmplC   *intraTemplate
	aOnlyNode0     bool
	inter          interSpec
}

func (cp *clusterProgram) Ranks() int { return cp.nodes * cp.perNode }

func (cp *clusterProgram) lenA(node, local int) int {
	if cp.aOnlyNode0 && node != 0 {
		return 0
	}
	return cp.tmplA.len(local)
}

// recvCount returns how many binomial-reduce rounds node m receives in.
func (cp *clusterProgram) recvCount(m int) int {
	n := 0
	for stride := 1; m%(2*stride) == 0 && stride < cp.nodes; stride *= 2 {
		if m+stride < cp.nodes {
			n++
		}
	}
	return n
}

// recvRound returns the stride of node m's k-th binomial receive.
func (cp *clusterProgram) recvRound(m, k int) int {
	for stride := 1; m%(2*stride) == 0 && stride < cp.nodes; stride *= 2 {
		if m+stride < cp.nodes {
			if k == 0 {
				return stride
			}
			k--
		}
	}
	panic("cluster: recvRound out of range")
}

func (cp *clusterProgram) lenB(node, local int) int {
	switch cp.inter.kind {
	case interRingAll:
		return cp.inter.macro
	case interRingLeader:
		if local == 0 {
			return cp.inter.macro
		}
	case interTreeLeader:
		if local == 0 {
			n := cp.recvCount(node)
			if node > 0 {
				n++ // the broadcast receive
			}
			return n
		}
	case interTreeBcastLeader:
		if local == 0 && node > 0 {
			return 1
		}
	case interLaneTree:
		if node > 0 {
			return 1
		}
	}
	return 0
}

func (cp *clusterProgram) Steps(rank int) int {
	node, local := rank/cp.perNode, rank%cp.perNode
	return cp.lenA(node, local) + cp.lenB(node, local) + cp.tmplC.len(local)
}

func (cp *clusterProgram) Duration(rank, step int) sim.Tick {
	node, local := rank/cp.perNode, rank%cp.perNode
	la := cp.lenA(node, local)
	if step < la {
		return cp.tmplA.steps[local][step].dur
	}
	lb := cp.lenB(node, local)
	if step < la+lb {
		g := step - la
		switch cp.inter.kind {
		case interRingAll, interRingLeader:
			return sim.Tick(cp.inter.hopsIn(g)) * cp.inter.hopDur
		case interTreeLeader:
			if g < cp.recvCount(node) {
				return cp.inter.hopDur + cp.inter.reduceDur
			}
			return cp.inter.hopDur + cp.inter.extraDur
		default: // interTreeBcastLeader, interLaneTree
			return cp.inter.hopDur + cp.inter.extraDur
		}
	}
	return cp.tmplC.steps[local][step-la-lb].dur
}

func (cp *clusterProgram) Deps(rank, step int, visit func(depRank, depStep int) bool) {
	node, local := rank/cp.perNode, rank%cp.perNode
	la := cp.lenA(node, local)
	emit := func(depRank, depStep int) bool {
		if depStep < 0 {
			return true // ready at time zero
		}
		return visit(depRank, depStep)
	}
	if step < la {
		for _, d := range cp.tmplA.steps[local][step].deps {
			// Phase A has no predecessor phase; step -1 deps are free.
			if d.step >= 0 && !emit(node*cp.perNode+int(d.local), int(d.step)) {
				return
			}
		}
		return
	}
	lb := cp.lenB(node, local)
	if step < la+lb {
		g := step - la
		switch cp.inter.kind {
		case interRingAll, interRingLeader:
			prev := (node - 1 + cp.nodes) % cp.nodes
			emit(prev*cp.perNode+local, cp.lenA(prev, local)+g-1)
		case interTreeLeader:
			if g < cp.recvCount(node) {
				pn := node + cp.recvRound(node, g)
				emit(pn*cp.perNode, cp.lenA(pn, 0)+cp.recvCount(pn)-1)
			} else {
				sn := node - 1<<(bits.Len(uint(node))-1)
				srcB := cp.recvCount(sn)
				if sn > 0 {
					srcB++
				}
				emit(sn*cp.perNode, cp.lenA(sn, 0)+srcB-1)
			}
		case interTreeBcastLeader:
			sn := node - 1<<(bits.Len(uint(node))-1)
			srcB := 0
			if sn > 0 {
				srcB = 1
			}
			emit(sn*cp.perNode, cp.lenA(sn, 0)+srcB-1)
		case interLaneTree:
			sn := node - 1<<(bits.Len(uint(node))-1)
			srcB := 0
			if sn > 0 {
				srcB = 1
			}
			emit(sn*cp.perNode+local, cp.lenA(sn, local)+srcB-1)
		}
		return
	}
	for _, d := range cp.tmplC.steps[local][step-la-lb].deps {
		q := int(d.local)
		qOff := cp.lenA(node, q) + cp.lenB(node, q)
		ds := qOff + int(d.step)
		if d.step < 0 {
			ds = qOff - 1
		}
		if !emit(node*cp.perNode+q, ds) {
			return
		}
	}
}

// flatRingProgram is the node-oblivious ring over all P ranks (MPICH-style
// fallback): hop h of rank r depends on hop h-1 of rank r-1. The first
// reduceHops hops fold blocks (reduce-scatter half); the rest copy
// (all-gather half). Boundary ranks (local 0) pay the inter-node hop.
type flatRingProgram struct {
	ranks, perNode int
	hopsTotal      int
	reduceHops     int
	macro          int
	intraCopy      sim.Tick
	intraReduce    sim.Tick
	interExtra     sim.Tick
}

func (fp *flatRingProgram) Ranks() int { return fp.ranks }

func (fp *flatRingProgram) Steps(int) int {
	if fp.ranks <= 1 {
		return 0
	}
	return fp.macro
}

func (fp *flatRingProgram) hopRange(g int) (lo, hi int) {
	base, rem := fp.hopsTotal/fp.macro, fp.hopsTotal%fp.macro
	lo = g*base + min(g, rem)
	hi = lo + base
	if g < rem {
		hi++
	}
	return lo, hi
}

func (fp *flatRingProgram) Duration(rank, step int) sim.Tick {
	lo, hi := fp.hopRange(step)
	nRed := 0
	if lo < fp.reduceHops {
		nRed = min(hi, fp.reduceHops) - lo
	}
	nCopy := (hi - lo) - nRed
	d := sim.Tick(nRed)*fp.intraReduce + sim.Tick(nCopy)*fp.intraCopy
	if rank%fp.perNode == 0 && fp.ranks > fp.perNode {
		d += sim.Tick(hi-lo) * fp.interExtra
	}
	return d
}

func (fp *flatRingProgram) Deps(rank, step int, visit func(depRank, depStep int) bool) {
	if step == 0 {
		return // hop 0 consumes the predecessor's initial data
	}
	visit((rank-1+fp.ranks)%fp.ranks, step-1)
}

// flatTreeProgram is the node-oblivious binomial broadcast over all P
// ranks: every non-root rank performs one receive from its binomial source.
type flatTreeProgram struct {
	ranks, perNode int
	intraDur       sim.Tick
	interDur       sim.Tick
}

func (ft *flatTreeProgram) Ranks() int { return ft.ranks }

func (ft *flatTreeProgram) Steps(rank int) int {
	if rank == 0 {
		return 0
	}
	return 1
}

func (ft *flatTreeProgram) src(rank int) int {
	return rank - 1<<(bits.Len(uint(rank))-1)
}

func (ft *flatTreeProgram) Duration(rank, _ int) sim.Tick {
	if ft.src(rank)/ft.perNode != rank/ft.perNode {
		return ft.interDur
	}
	return ft.intraDur
}

func (ft *flatTreeProgram) Deps(rank, _ int, visit func(depRank, depStep int) bool) {
	if s := ft.src(rank); s != 0 {
		visit(s, 0)
	}
}

// resolveIntra picks and validates the intra-node kind.
func (c *Cluster) resolveIntra(o ScheduleOptions, leaderBased bool) (IntraKind, int, int, error) {
	perSocket, sockets, sockOK := localSockets(c.Node, c.PerNode)
	kind := o.Intra
	if kind == IntraAuto {
		switch {
		case leaderBased:
			kind = IntraRG
		case sockOK:
			kind = IntraSocket
		default:
			kind = IntraMA
		}
	}
	if kind == IntraSocket && !sockOK {
		return "", 0, 0, fmt.Errorf("cluster: socket intra schedule needs an even multi-socket binding (%d ranks on %s)", c.PerNode, c.Node.Name)
	}
	return kind, perSocket, sockets, nil
}

// CompileAllreduce compiles one all-reduce of n elements per rank into an
// event-schedule program over all Nodes x PerNode ranks.
func (c *Cluster) CompileAllreduce(alg Algorithm, n int64, o ScheduleOptions) (sim.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: message must have at least 1 element")
	}
	o = o.withDefaults()
	msg := float64(n * memmodel.ElemSize)
	p, N := c.PerNode, c.Nodes
	costs := newProgCosts(c.Node, c.Net, p, msg)
	switch alg {
	case YHCCLHierarchical:
		kind, perSocket, sockets, err := c.resolveIntra(o, false)
		if err != nil {
			return nil, err
		}
		cp := &clusterProgram{nodes: N, perNode: p}
		var block float64
		switch kind {
		case IntraMA:
			block = msg / float64(p)
			cp.tmplA = maReduceScatter(c.Node, p, block, costs)
			cp.tmplC = maAllgather(c.Node, p, block, costs)
		case IntraSocket:
			block = msg / float64(perSocket)
			cp.tmplA = socketReduceScatter(c.Node, p, perSocket, sockets, block, costs)
			cp.tmplC = socketAllgather(c.Node, p, perSocket, block, costs)
		default:
			return nil, fmt.Errorf("cluster: intra kind %q is leader-based; yhccl needs ma or socket", kind)
		}
		if N > 1 {
			hops := 2 * (N - 1)
			cp.inter = interSpec{
				kind:      interRingAll,
				hopsTotal: hops,
				macro:     macroSteps(hops, o.RingSteps),
				hopDur:    costs.laneT(msg/float64(p)/float64(N), p),
			}
		}
		return cp, nil
	case LeaderRing, LeaderTree:
		kind, _, _, err := c.resolveIntra(o, true)
		if err != nil {
			return nil, err
		}
		if kind != IntraRG {
			return nil, fmt.Errorf("cluster: leader compositions reduce through the RG tree (got intra %q)", kind)
		}
		cp := &clusterProgram{
			nodes: N, perNode: p,
			tmplA: rgReduce(c.Node, p, o.RGDegree, msg, costs),
			tmplC: binomialBcast(c.Node, p, msg, costs),
		}
		if N > 1 {
			if alg == LeaderRing {
				hops := 2 * (N - 1)
				cp.inter = interSpec{
					kind:      interRingLeader,
					hopsTotal: hops,
					macro:     macroSteps(hops, o.RingSteps),
					hopDur:    costs.laneT(msg/float64(N), 1),
				}
			} else {
				cp.inter = interSpec{
					kind:      interTreeLeader,
					hopDur:    costs.laneT(msg, 1),
					reduceDur: costs.reduceT(msg, false),
					extraDur:  costs.copyT(msg, false),
				}
			}
		}
		return cp, nil
	case FlatRing:
		P := N * p
		if P <= 1 {
			return &flatRingProgram{ranks: P, perNode: p, macro: 0}, nil
		}
		hops := 2 * (P - 1)
		block := msg / float64(P)
		return &flatRingProgram{
			ranks: P, perNode: p,
			hopsTotal:   hops,
			reduceHops:  P - 1,
			macro:       macroSteps(hops, o.RingSteps),
			intraCopy:   costs.copyT(block, false),
			intraReduce: costs.reduceT(block, false),
			interExtra:  costs.laneT(block, 1),
		}, nil
	}
	return nil, fmt.Errorf("cluster: unknown algorithm %q", alg)
}

// CompileBcast compiles one broadcast of n elements (rooted at global rank
// 0) into an event-schedule program.
func (c *Cluster) CompileBcast(alg Algorithm, n int64, o ScheduleOptions) (sim.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: message must have at least 1 element")
	}
	o = o.withDefaults()
	msg := float64(n * memmodel.ElemSize)
	p, N := c.PerNode, c.Nodes
	costs := newProgCosts(c.Node, c.Net, p, msg)
	switch alg {
	case YHCCLHierarchical:
		// Root node scatters into p pieces, the pieces descend a binomial
		// node tree on p concurrent lanes, every node reassembles locally.
		piece := msg / float64(p)
		cp := &clusterProgram{nodes: N, perNode: p, aOnlyNode0: true}
		if p > 1 {
			scatter := &intraTemplate{steps: make([][]tmplStep, p)}
			for l := 0; l < p; l++ {
				scatter.steps[l] = []tmplStep{{dur: costs.copyT(piece, crossSocket(c.Node, l, 0))}}
			}
			cp.tmplA = scatter
			cp.tmplC = maAllgather(c.Node, p, piece, costs)
		}
		if N > 1 {
			cp.inter = interSpec{kind: interLaneTree, hopDur: costs.laneT(piece, p)}
		}
		return cp, nil
	case LeaderRing, LeaderTree:
		cp := &clusterProgram{
			nodes: N, perNode: p,
			tmplC: binomialBcast(c.Node, p, msg, costs),
		}
		if N > 1 {
			cp.inter = interSpec{
				kind:     interTreeBcastLeader,
				hopDur:   costs.laneT(msg, 1),
				extraDur: costs.copyT(msg, false),
			}
		}
		return cp, nil
	case FlatRing:
		return &flatTreeProgram{
			ranks: N * p, perNode: p,
			intraDur: costs.copyT(msg, false),
			interDur: costs.laneT(msg, 1) + costs.copyT(msg, false),
		}, nil
	}
	return nil, fmt.Errorf("cluster: unknown bcast algorithm %q", alg)
}

// CompileAllgather compiles one all-gather of n elements contributed per
// rank into an event-schedule program.
func (c *Cluster) CompileAllgather(alg Algorithm, n int64, o ScheduleOptions) (sim.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: message must have at least 1 element")
	}
	o = o.withDefaults()
	contrib := float64(n * memmodel.ElemSize)
	p, N := c.PerNode, c.Nodes
	costs := newProgCosts(c.Node, c.Net, p, contrib)
	switch alg {
	case YHCCLHierarchical:
		// Intra-node all-gather assembles the node block; node blocks then
		// circulate on a multi-lane ring, each rank copying its lane's
		// arrivals out of shared memory.
		cp := &clusterProgram{
			nodes: N, perNode: p,
			tmplA: maAllgather(c.Node, p, contrib, costs),
		}
		if N > 1 {
			hops := N - 1
			cp.inter = interSpec{
				kind:      interRingAll,
				hopsTotal: hops,
				macro:     macroSteps(hops, o.RingSteps),
				hopDur:    costs.laneT(contrib, p) + costs.copyT(contrib, false),
			}
		}
		return cp, nil
	case LeaderRing, LeaderTree:
		// Leaders gather intra-node, exchange node blocks on a single-lane
		// ring, then broadcast the assembled result locally.
		total := contrib * float64(N*p)
		cp := &clusterProgram{
			nodes: N, perNode: p,
			tmplA: binomialGather(c.Node, p, contrib, costs),
			tmplC: binomialBcast(c.Node, p, total, costs),
		}
		if N > 1 {
			hops := N - 1
			cp.inter = interSpec{
				kind:      interRingLeader,
				hopsTotal: hops,
				macro:     macroSteps(hops, o.RingSteps),
				hopDur:    costs.laneT(contrib*float64(p), 1),
			}
		}
		return cp, nil
	case FlatRing:
		P := N * p
		if P <= 1 {
			return &flatRingProgram{ranks: P, perNode: p, macro: 0}, nil
		}
		hops := P - 1
		return &flatRingProgram{
			ranks: P, perNode: p,
			hopsTotal:  hops,
			reduceHops: 0,
			macro:      macroSteps(hops, o.RingSteps),
			intraCopy:  costs.copyT(contrib, false),
			interExtra: costs.laneT(contrib, 1),
		}, nil
	}
	return nil, fmt.Errorf("cluster: unknown all-gather algorithm %q", alg)
}

// Collective names accepted by Compile and ScheduledTime.
const (
	CollAllreduce = "allreduce"
	CollBcast     = "bcast"
	CollAllgather = "allgather"
)

// Compile dispatches on the collective name.
func (c *Cluster) Compile(coll string, alg Algorithm, n int64, o ScheduleOptions) (sim.Program, error) {
	switch coll {
	case CollAllreduce:
		return c.CompileAllreduce(alg, n, o)
	case CollBcast:
		return c.CompileBcast(alg, n, o)
	case CollAllgather:
		return c.CompileAllgather(alg, n, o)
	}
	return nil, fmt.Errorf("cluster: unknown collective %q", coll)
}

// ScheduledTime compiles the collective and executes the program on the
// cluster's selected engine (see SetEngine), returning simulated seconds.
func (c *Cluster) ScheduledTime(coll string, alg Algorithm, n int64, o ScheduleOptions) (float64, error) {
	prog, err := c.Compile(coll, alg, n, o)
	if err != nil {
		return 0, err
	}
	return c.machine.RunProgram(prog, c.engine)
}

// ScheduledAllreduceTime is ScheduledTime for the all-reduce.
func (c *Cluster) ScheduledAllreduceTime(alg Algorithm, n int64, o ScheduleOptions) (float64, error) {
	return c.ScheduledTime(CollAllreduce, alg, n, o)
}

// SetEngine selects the simulation core Scheduled* methods run on
// (coroutine by default — the exact reference; event for cluster scale).
func (c *Cluster) SetEngine(kind sim.EngineKind) { c.engine = kind }

// Engine returns the selected simulation core.
func (c *Cluster) Engine() sim.EngineKind { return c.engine }

// ProgramEvents estimates how many calendar events a compiled program
// dispatches (one per step); useful for budgeting scale sweeps.
func ProgramEvents(p sim.Program) uint64 {
	var total uint64
	R := p.Ranks()
	for r := 0; r < R; r++ {
		total += uint64(p.Steps(r))
	}
	return total
}
