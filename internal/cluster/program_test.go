package cluster

import (
	"runtime"
	"strings"
	"testing"

	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// TestEngineParity is the gate: tick-identical makespans on every config of
// the shared matrix, plus event-engine rerun determinism.
func TestEngineParity(t *testing.T) {
	results, err := VerifyParity(ParityCases())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("empty parity matrix")
	}
	for _, r := range results {
		// A lone rank (1x1 world) legitimately finishes at tick 0; everything
		// else must take time.
		if r.Makespan < 0 || (r.Makespan == 0 && !strings.Contains(r.Name, "/1x1/")) {
			t.Fatalf("%s: bad makespan %d", r.Name, r.Makespan)
		}
	}
}

// TestScheduledTimeEngines: the engine switch changes the substrate, not
// the answer.
func TestScheduledTimeEngines(t *testing.T) {
	c := New(topo.NodeA(), 4, 8, IB100())
	opts := ScheduleOptions{Intra: IntraMA}
	if c.Engine() != sim.EngineCoroutine {
		t.Fatalf("default engine %v, want coroutine", c.Engine())
	}
	tCo, err := c.ScheduledAllreduceTime(YHCCLHierarchical, 65536, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.SetEngine(sim.EngineEvent)
	tEv, err := c.ScheduledAllreduceTime(YHCCLHierarchical, 65536, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tCo != tEv {
		t.Fatalf("engines disagree: coroutine %v s vs event %v s", tCo, tEv)
	}
	if tEv <= 0 {
		t.Fatalf("non-positive scheduled time %v", tEv)
	}
}

// TestScheduledVsAnalyticSanity: the compiled schedule and the analytic
// model are different formulations of the same machine; demand agreement
// within a loose factor, not equality.
func TestScheduledVsAnalyticSanity(t *testing.T) {
	c := New(topo.NodeA(), 16, 64, IB100())
	c.SetEngine(sim.EngineEvent)
	const n = 1 << 20 // 8 MB
	for _, alg := range []Algorithm{YHCCLHierarchical, LeaderRing, LeaderTree} {
		sched, err := c.ScheduledAllreduceTime(alg, n, ScheduleOptions{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		analytic, err := c.AllreduceTime(alg, n)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if ratio := sched / analytic; ratio < 0.2 || ratio > 5 {
			t.Fatalf("%s: scheduled %.3gs vs analytic %.3gs (ratio %.2f) — models diverged",
				alg, sched, analytic, ratio)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	c := New(topo.NodeA(), 2, 8, IB100())
	if _, err := c.CompileAllreduce("martian", 1024, ScheduleOptions{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := c.CompileAllreduce(YHCCLHierarchical, 0, ScheduleOptions{}); err == nil {
		t.Fatal("empty message accepted")
	}
	// 8 ranks block-bound to NodeA all land on socket 0: socket intra invalid.
	if _, err := c.CompileAllreduce(YHCCLHierarchical, 1024, ScheduleOptions{Intra: IntraSocket}); err == nil {
		t.Fatal("uneven socket binding accepted")
	}
	if _, err := c.CompileAllreduce(YHCCLHierarchical, 1024, ScheduleOptions{Intra: IntraRG}); err == nil {
		t.Fatal("leader intra accepted for yhccl")
	}
	if _, err := c.Compile("scan", YHCCLHierarchical, 1024, ScheduleOptions{}); err == nil {
		t.Fatal("unknown collective accepted")
	}
}

// TestRingCoarsening: folding ring hops into macro steps preserves the
// makespan exactly when hop durations are uniform (they are, per lane).
func TestRingCoarsening(t *testing.T) {
	c := New(topo.NodeA(), 32, 8, IB100())
	c.SetEngine(sim.EngineEvent)
	exact, err := c.ScheduledAllreduceTime(YHCCLHierarchical, 65536, ScheduleOptions{Intra: IntraMA})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := c.ScheduledAllreduceTime(YHCCLHierarchical, 65536, ScheduleOptions{Intra: IntraMA, RingSteps: 7})
	if err != nil {
		t.Fatal(err)
	}
	if exact != coarse {
		t.Fatalf("coarsening changed the makespan: exact %v s vs coarse %v s", exact, coarse)
	}
}

// TestDegenerateShapes: single-node and single-rank worlds compile and run.
func TestDegenerateShapes(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, shape := range []struct{ nodes, per int }{{1, 1}, {1, 4}, {2, 1}} {
			c := New(topo.NodeA(), shape.nodes, shape.per, IB100())
			c.SetEngine(sim.EngineEvent)
			for _, coll := range []string{CollAllreduce, CollBcast, CollAllgather} {
				sec, err := c.ScheduledTime(coll, alg, 4096, ScheduleOptions{Intra: IntraAuto})
				if err != nil {
					t.Fatalf("%s/%s %dx%d: %v", coll, alg, shape.nodes, shape.per, err)
				}
				if sec < 0 {
					t.Fatalf("%s/%s %dx%d: negative time", coll, alg, shape.nodes, shape.per)
				}
				if shape.nodes == 1 && shape.per == 1 && sec != 0 {
					t.Fatalf("%s/%s 1x1: lone rank took %v s, want 0", coll, alg, sec)
				}
			}
		}
	}
}

// TestProgramEvents: the event estimate matches what the engine dispatches.
func TestProgramEvents(t *testing.T) {
	c := New(topo.NodeA(), 8, 16, IB100())
	prog, err := c.CompileAllreduce(YHCCLHierarchical, 65536, ScheduleOptions{Intra: IntraMA})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunProgramEvent(prog)
	if err != nil {
		t.Fatal(err)
	}
	if want := ProgramEvents(prog); res.Events != want {
		t.Fatalf("dispatched %d events, estimate %d", res.Events, want)
	}
}

// TestClusterScaleSmoke: a 65536-rank hierarchical world and a 262144-rank
// leader-tree world run on the event engine without growing the goroutine
// count — the flat-memory claim, asserted.
func TestClusterScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short")
	}
	before := runtime.NumGoroutine()

	c := New(topo.NodeA(), 1024, 64, IB100())
	c.SetEngine(sim.EngineEvent)
	sec, err := c.ScheduledAllreduceTime(YHCCLHierarchical, 1<<23, ScheduleOptions{RingSteps: 128})
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatal("non-positive makespan at 65536 ranks")
	}

	big := New(topo.NodeA(), 4096, 64, IB100())
	big.SetEngine(sim.EngineEvent)
	sec2, err := big.ScheduledAllreduceTime(LeaderTree, 1<<23, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sec2 <= 0 {
		t.Fatal("non-positive makespan at 262144 ranks")
	}

	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew %d -> %d during event-engine scale runs", before, after)
	}
}

// TestParityCaseNames: names are unique (simbench keys on them).
func TestParityCaseNames(t *testing.T) {
	seen := map[string]bool{}
	for _, pc := range ParityCases() {
		if seen[pc.Name] {
			t.Fatalf("duplicate parity case %q", pc.Name)
		}
		seen[pc.Name] = true
		if strings.ContainsAny(pc.Name, " \t") {
			t.Fatalf("parity case name %q contains whitespace", pc.Name)
		}
	}
}
