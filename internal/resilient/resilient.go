// Package resilient closes the loop from diagnosis to recovery: a
// supervisor wraps mpi.Machine.Run, classifies each failure using the
// diagnostics the fault-injection stack already produces (RunError victim
// attribution, exact self-validation), and applies a policy chain until the
// collective ends in a verified-correct result or the policy is exhausted:
//
//  1. bounded retry with deterministic virtual-time backoff — transient
//     faults (bit flips caught by validation) are re-run with a fresh fill
//     pattern and the fired corruption removed from the plan;
//  2. straggler quarantine — a rank identified as slow (fault events or
//     per-rank progress snapshots) is remapped onto a spare core, or, when
//     no spare is left, the collective switches to a straggler-tolerant
//     algorithm down its fallback chain;
//  3. ULFM-style communicator shrink — on a rank crash or permanent stall
//     the world is rebuilt over the survivors and the collective re-runs on
//     the shrunken communicator, with the caller told which original ranks
//     were excluded.
//
// Everything happens in deterministic virtual time: backoff is a modelled
// Compute charge, remaps and shrinks are deterministic rebinds, and with no
// faults armed the supervisor adds zero charges, so golden determinism
// tests stay bit-identical with the supervisor attached.
package resilient

import (
	"errors"
	"fmt"
	"strings"

	"yhccl/internal/fault"
	"yhccl/internal/mpi"
	"yhccl/internal/sim"
)

// Outcome classifies a supervised run by the last recovery action that was
// needed to reach a verified-correct result (or by how recovery failed).
type Outcome string

const (
	// CleanPass: the first attempt completed and validated.
	CleanPass Outcome = "clean-pass"
	// RecoveredRetry: a plain re-run (fresh fill pattern, fired transients
	// dropped) produced a verified result.
	RecoveredRetry Outcome = "recovered-after-retry"
	// RecoveredRemap: quarantining a slow rank onto a spare core produced a
	// verified result at full speed.
	RecoveredRemap Outcome = "recovered-by-remap"
	// RecoveredShrink: excluding crashed/stalled ranks and re-running over
	// the survivor communicator produced a verified result.
	RecoveredShrink Outcome = "recovered-by-shrink"
	// RecoveredFallback: switching to a more conservative algorithm down the
	// fallback chain produced a verified (possibly degraded) result.
	RecoveredFallback Outcome = "recovered-by-fallback"
	// Unrecoverable: every applicable policy step was exhausted, but each
	// failure was properly diagnosed (named its victim).
	Unrecoverable Outcome = "unrecoverable-but-diagnosed"
	// Undiagnosed: the unacceptable bucket — a failure that does not name
	// its victim, or a wrong answer with no fault to blame.
	Undiagnosed Outcome = "UNDIAGNOSED"
)

// Recovered reports whether o is one of the recovered-* outcomes (rank- or
// cluster-level; see cluster.go for the cluster outcomes).
func (o Outcome) Recovered() bool {
	switch o {
	case RecoveredRetry, RecoveredRemap, RecoveredShrink, RecoveredFallback,
		RecoveredRecompile, RecoveredReroute, RecoveredClusterRetry,
		RecoveredRejoin:
		return true
	}
	return false
}

// Policy bounds the supervisor's recovery chain.
type Policy struct {
	// MaxAttempts caps total Run invocations (initial attempt included).
	MaxAttempts int
	// MaxRetries caps plain re-runs for validation-caught transients.
	MaxRetries int
	// BackoffBase is the virtual-time backoff unit: before attempt k (k>0)
	// every rank is charged k*BackoffBase seconds of Compute. Attempt 0
	// charges nothing, keeping the clean path bit-identical.
	BackoffBase float64
	// AllowRemap enables straggler quarantine onto spare cores.
	AllowRemap bool
	// AllowShrink enables communicator shrink on crash/stall.
	AllowShrink bool
	// MaxFallback caps how far down the algorithm fallback chain the
	// supervisor may go (also clamped by Job.MaxDepth).
	MaxFallback int
	// MinSurvivors refuses shrinks that would leave fewer ranks than this.
	MinSurvivors int
}

// DefaultPolicy returns the policy the chaos recovery sweep uses.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:  6,
		MaxRetries:   2,
		BackoffBase:  1e-5,
		AllowRemap:   true,
		AllowShrink:  true,
		MaxFallback:  2,
		MinSurvivors: 2,
	}
}

// Job is a re-runnable collective task. Bind builds the per-rank body for
// the given machine (whose size may have shrunk), fallback depth along the
// job's algorithm chain, and fill-pattern salt; validate, called after a
// completed run, returns the first self-validation failure (validate may be
// nil when the job has no validation). Bind is called fresh for every
// attempt so bodies never see stale buffers or communicators.
type Job struct {
	Name     string
	MaxDepth int
	Bind     func(m *mpi.Machine, depth, salt int) (body func(*mpi.Rank), validate func() error, err error)
}

// Attempt records one supervised Run invocation.
type Attempt struct {
	// Action is what the supervisor did before this attempt: "initial",
	// "retry", "remap", "shrink", or "fallback".
	Action string
	// Depth and Salt are the Bind parameters used.
	Depth, Salt int
	// Ranks is the machine size for this attempt.
	Ranks int
	// Makespan of a successful run (0 on failure).
	Makespan float64
	// Elapsed is the virtual time this attempt consumed whether or not it
	// succeeded: the makespan on success AND on validation failure (the
	// wrong run still completed), and the furthest rank clock on a run
	// failure. Deadline accounting charges Elapsed, not Makespan — failed
	// attempts burn real time.
	Elapsed float64
	// Err is the run or validation error (nil on success).
	Err error
	// Faults are the injector events that fired during this attempt.
	Faults []fault.Event
}

// Report is the supervisor's verdict on a job.
type Report struct {
	Job      string
	Outcome  Outcome
	Attempts []Attempt
	// Excluded lists the ORIGINAL rank ids removed by shrinks, in exclusion
	// order — the caller's ULFM "who is gone" answer.
	Excluded []int
	// Remapped maps an original rank id to the spare core it was
	// quarantined onto.
	Remapped map[int]int
	// Depth is the fallback depth of the final attempt.
	Depth int
	// Makespan of the final successful attempt (0 if none).
	Makespan float64
	// Err is the last failure when the job did not recover.
	Err error
	// Final is the machine the last attempt ran on (the shrunken machine
	// after a shrink) — ranks of the final run are Final.Size().
	Final *mpi.Machine
}

func (r Report) String() string {
	s := fmt.Sprintf("%s: %s after %d attempt(s)", r.Job, r.Outcome, len(r.Attempts))
	if len(r.Excluded) > 0 {
		s += fmt.Sprintf(", excluded ranks %v", r.Excluded)
	}
	if len(r.Remapped) > 0 {
		s += fmt.Sprintf(", remapped %v", r.Remapped)
	}
	if r.Depth > 0 {
		s += fmt.Sprintf(", fallback depth %d", r.Depth)
	}
	return s
}

// Supervise runs the job under the policy until it ends in a
// verified-correct result or the policy is exhausted. The machine's armed
// fault plan (if any) is consulted and re-armed across retries and shrinks;
// with no plan armed the supervisor is pass-through: one Run, no extra
// charges, bit-identical to calling m.Run directly.
func Supervise(m *mpi.Machine, job Job, pol Policy) Report {
	rep := Report{Job: job.Name, Remapped: map[int]int{}}
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = 1
	}
	maxDepth := job.MaxDepth
	if pol.MaxFallback < maxDepth {
		maxDepth = pol.MaxFallback
	}

	// The active plan in the CURRENT rank numbering, and the map from
	// current rank id to original rank id (changes across shrinks).
	var plan *fault.Plan
	if inj := m.Injector(); inj != nil {
		plan = inj.Plan()
	}
	origOf := make([]int, m.Size())
	for i := range origOf {
		origOf[i] = i
	}

	salt, depth, retries := 0, 0, 0
	lastAction := "initial"
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		body, validate, err := job.Bind(m, depth, salt)
		if err != nil {
			rep.Outcome, rep.Err, rep.Final = Undiagnosed, err, m
			return rep
		}
		run := body
		if attempt > 0 && pol.BackoffBase > 0 {
			// Deterministic virtual-time backoff: modelled as compute, so it
			// orders identically across replays and never touches wall time.
			backoff := float64(attempt) * pol.BackoffBase
			run = func(r *mpi.Rank) {
				r.Compute(backoff)
				body(r)
			}
		}
		makespan, runErr := m.Run(run)
		var verr error
		if runErr == nil && validate != nil {
			verr = validate()
		}
		var events []fault.Event
		if inj := m.Injector(); inj != nil {
			events = append([]fault.Event(nil), inj.Events()...)
		}
		at := Attempt{
			Action: lastAction, Depth: depth, Salt: salt,
			Ranks: m.Size(), Faults: events,
		}
		switch {
		case runErr != nil:
			at.Err = runErr
			var re *mpi.RunError
			if errors.As(runErr, &re) {
				for _, rs := range re.Ranks {
					if rs.Clock > at.Elapsed {
						at.Elapsed = rs.Clock
					}
				}
			}
		case verr != nil:
			at.Err = verr
			at.Elapsed = makespan
		default:
			at.Makespan = makespan
			at.Elapsed = makespan
		}
		rep.Attempts = append(rep.Attempts, at)
		rep.Depth, rep.Final = depth, m

		if runErr == nil && verr == nil {
			// Correct result — but a straggler that fired leaves the result
			// degraded; quarantine or fall back before accepting.
			if sr := stragglerRanks(events); len(sr) > 0 {
				// A flip that fired on this run is spent even though the
				// output validated (it landed on an intermediate that was
				// overwritten): consume it before any re-arm, or the re-run
				// after the quarantine/fallback replays the transient.
				rearmed := false
				if len(firedFlips(events)) > 0 {
					plan = plan.WithoutFiredCorruptions(events)
					rearmed = true
				}
				if pol.AllowRemap && m.Spares() > 0 {
					victim := sr[0]
					core, qerr := m.Quarantine(victim)
					if qerr == nil {
						rep.Remapped[origOf[victim]] = core
						// Re-arm without the victim's straggler: the factor
						// belongs to the retired core, and a later re-arm
						// must not chase the rank onto its healthy spare.
						plan = plan.WithoutStraggler(victim)
						if err := m.SetFaultPlan(plan); err != nil {
							rep.Outcome, rep.Err = Undiagnosed, err
							return rep
						}
						lastAction = "remap"
						continue
					}
				}
				if depth < maxDepth && lastAction != "fallback" {
					if rearmed {
						if err := m.SetFaultPlan(plan); err != nil {
							rep.Outcome, rep.Err = Undiagnosed, err
							return rep
						}
					}
					depth++
					lastAction = "fallback"
					continue
				}
				// No spare and no (further) fallback: accept the slow-but-
				// correct result under whatever action got us here.
			}
			rep.Outcome, rep.Makespan = outcomeFor(lastAction), makespan
			return rep
		}

		if verr != nil {
			// Only a flip that actually fired makes the wrong answer a
			// transient worth retrying; a divergence with no fault to blame
			// is a genuine correctness bug and must stay unacceptable.
			if len(firedFlips(events)) == 0 {
				rep.Outcome, rep.Err = Undiagnosed, verr
				return rep
			}
			// Validation caught corruption: transient. Re-run with a fresh
			// fill pattern; the fired flip is consumed and must not re-fire.
			if retries < pol.MaxRetries {
				retries++
				salt++
				plan = plan.WithoutFiredCorruptions(events)
				if err := m.SetFaultPlan(plan); err != nil {
					rep.Outcome, rep.Err = Undiagnosed, err
					return rep
				}
				lastAction = "retry"
				continue
			}
			rep.Outcome, rep.Err = Unrecoverable, verr
			return rep
		}

		// Run failure: recover only if the diagnosis names its victims.
		crashed, stalled := victims(runErr)
		gone := append(crashed, stalled...)
		if len(gone) == 0 {
			rep.Outcome, rep.Err = Undiagnosed, runErr
			return rep
		}
		if !pol.AllowShrink || m.Size()-len(gone) < pol.MinSurvivors {
			rep.Outcome, rep.Err = Unrecoverable, runErr
			return rep
		}
		// Drop transients that already fired before restricting, so the
		// shrunken run does not replay them.
		nm, survivors, serr := m.Shrink(gone)
		if serr != nil {
			rep.Outcome, rep.Err = Unrecoverable, fmt.Errorf("%w (shrink: %v)", runErr, serr)
			return rep
		}
		restricted := plan.WithoutFiredCorruptions(events).Restrict(survivors)
		if err := nm.SetFaultPlan(restricted); err != nil {
			rep.Outcome, rep.Err = Undiagnosed, err
			return rep
		}
		for _, g := range gone {
			rep.Excluded = append(rep.Excluded, origOf[g])
		}
		newOrig := make([]int, len(survivors))
		for i, s := range survivors {
			newOrig[i] = origOf[s]
		}
		origOf, plan, m = newOrig, restricted, nm
		lastAction = "shrink"
	}
	rep.Outcome = Unrecoverable
	if n := len(rep.Attempts); n > 0 && rep.Attempts[n-1].Err != nil {
		rep.Err = rep.Attempts[n-1].Err
	} else {
		rep.Err = fmt.Errorf("resilient: %s: attempt budget (%d) exhausted", job.Name, pol.MaxAttempts)
	}
	return rep
}

// outcomeFor maps the last recovery action taken to the outcome of a
// verified-correct final run.
func outcomeFor(action string) Outcome {
	switch action {
	case "retry":
		return RecoveredRetry
	case "remap":
		return RecoveredRemap
	case "shrink":
		return RecoveredShrink
	case "fallback":
		return RecoveredFallback
	}
	return CleanPass
}

// firedFlips returns the ranks whose bit-flip corruption actually fired.
func firedFlips(events []fault.Event) []int {
	var out []int
	for _, ev := range events {
		if ev.Kind == "bitflip" {
			out = append(out, ev.Rank)
		}
	}
	return out
}

// stragglerRanks returns the distinct ranks with straggler events, in event
// order.
func stragglerRanks(events []fault.Event) []int {
	var out []int
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Kind == "straggler" && !seen[ev.Rank] {
			seen[ev.Rank] = true
			out = append(out, ev.Rank)
		}
	}
	return out
}

// victims extracts the injected-fault victims a failed run's diagnosis
// names, split into crashed ranks (gone: the proc panicked with an injected
// crash) and stalled ranks (wedged: blocked forever on an injected stall).
// Both are excluded the same way; the split is diagnostic.
func victims(runErr error) (crashed, stalled []int) {
	var re *mpi.RunError
	if !errors.As(runErr, &re) {
		return nil, nil
	}
	var pp *sim.ProcPanic
	var ic *sim.InjectedCrash
	if errors.As(runErr, &pp) && errors.As(runErr, &ic) {
		crashed = append(crashed, pp.ProcID)
	}
	for _, rs := range re.Ranks {
		if strings.Contains(rs.Blocked, "injected stall") {
			stalled = append(stalled, rs.Rank)
		}
	}
	return crashed, stalled
}
