package resilient

import (
	"testing"

	"yhccl/internal/cluster"
	"yhccl/internal/fault"
)

func churnPlan(node int, healTick int64) *fault.ClusterPlan {
	return &fault.ClusterPlan{
		Name:    "churn-test",
		Crashes: []fault.NodeCrash{{Node: node, AtTick: 0}},
		Heals:   []fault.NodeHeal{{Node: node, AtTick: healTick}},
	}
}

// Crash + immediate heal: the supervisor recompiles over the survivors,
// then rejoins the healed node at the next recovery point and re-verifies
// on the full membership at a bumped epoch.
func TestSuperviseClusterRejoin(t *testing.T) {
	mk, job := testClusterJob()
	rep := SuperviseCluster(mk(), job, churnPlan(3, 0), DefaultClusterPolicy())
	if rep.Outcome != RecoveredRejoin {
		t.Fatalf("outcome %s, want recovered-by-rejoin: %v", rep.Outcome, rep.Err)
	}
	if !rep.Outcome.Recovered() {
		t.Fatal("recovered-by-rejoin must count as recovered")
	}
	if rep.FinalNodes != 8 {
		t.Fatalf("final cluster has %d nodes, want full 8", rep.FinalNodes)
	}
	if len(rep.RejoinedNodes) != 1 || rep.RejoinedNodes[0] != 3 {
		t.Fatalf("rejoined nodes %v, want [3]", rep.RejoinedNodes)
	}
	// Exclusion history is append-only: the rejoin does not erase it.
	if len(rep.ExcludedNodes) != 1 || rep.ExcludedNodes[0] != 3 {
		t.Fatalf("excluded nodes %v, want [3] (history)", rep.ExcludedNodes)
	}
	// Epoch ladder: initial 0, recompile 1, rejoin 2.
	if rep.FinalEpoch != 2 {
		t.Fatalf("final epoch %d, want 2", rep.FinalEpoch)
	}
	wantActions := []string{"initial", "recompile", "rejoin"}
	if len(rep.Attempts) != len(wantActions) {
		t.Fatalf("%d attempts, want %d: %+v", len(rep.Attempts), len(wantActions), rep.Attempts)
	}
	for i, a := range rep.Attempts {
		if a.Action != wantActions[i] {
			t.Fatalf("attempt %d action %q, want %q", i, a.Action, wantActions[i])
		}
		if a.Epoch != i {
			t.Fatalf("attempt %d ran at epoch %d, want %d", i, a.Epoch, i)
		}
	}
	if rep.Attempts[2].Nodes != 8 {
		t.Fatalf("rejoin attempt ran on %d nodes, want 8", rep.Attempts[2].Nodes)
	}
	// The rejoined run is a full-membership healthy run: its makespan must
	// equal the initial shape's healthy makespan exactly.
	healthy := SuperviseCluster(mk(), job, nil, DefaultClusterPolicy())
	if rep.Makespan != healthy.Makespan {
		t.Fatalf("rejoined makespan %d != healthy full-membership makespan %d",
			rep.Makespan, healthy.Makespan)
	}
}

// With rejoin disabled the same plan ends shrunk — and because the plan
// offered the node back, the honest outcome is degraded-pass-shrunk, not
// recovered.
func TestSuperviseClusterRejoinDisabled(t *testing.T) {
	mk, job := testClusterJob()
	pol := DefaultClusterPolicy()
	pol.AllowRejoin = false
	rep := SuperviseCluster(mk(), job, churnPlan(3, 0), pol)
	if rep.Outcome != DegradedPassShrunk {
		t.Fatalf("outcome %s, want degraded-pass-shrunk: %v", rep.Outcome, rep.Err)
	}
	if rep.Outcome.Recovered() {
		t.Fatal("degraded-pass-shrunk must not count as recovered")
	}
	if rep.FinalNodes != 7 {
		t.Fatalf("final cluster has %d nodes, want 7", rep.FinalNodes)
	}
	if len(rep.RejoinedNodes) != 0 {
		t.Fatalf("rejoined nodes %v with rejoin disabled", rep.RejoinedNodes)
	}
}

// A heal whose tick never matures within the supervised run is equivalent
// to no heal being taken: shrunk finish, honestly classified.
func TestSuperviseClusterHealNeverMatures(t *testing.T) {
	mk, job := testClusterJob()
	rep := SuperviseCluster(mk(), job, churnPlan(3, 1<<60), DefaultClusterPolicy())
	if rep.Outcome != DegradedPassShrunk {
		t.Fatalf("outcome %s, want degraded-pass-shrunk: %v", rep.Outcome, rep.Err)
	}
	if rep.FinalNodes != 7 {
		t.Fatalf("final cluster has %d nodes, want 7", rep.FinalNodes)
	}
}

// A heal-free crash plan must keep its pre-elasticity classification:
// recovered-by-recompile, never degraded-pass-shrunk.
func TestSuperviseClusterNoHealStaysRecompile(t *testing.T) {
	mk, job := testClusterJob()
	plan := &fault.ClusterPlan{Name: "plain-crash",
		Crashes: []fault.NodeCrash{{Node: 3, AtTick: 0}}}
	rep := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	if rep.Outcome != RecoveredRecompile {
		t.Fatalf("outcome %s, want recovered-by-recompile: %v", rep.Outcome, rep.Err)
	}
}

// A second crash entry scheduled on the same node must fire after its
// rejoin and be recovered: crash -> recompile -> rejoin -> crash again ->
// recompile. The single heal entry is spent, so the final outcome is an
// honest recompile at N-1 nodes.
func TestSuperviseClusterSecondCrashAfterRejoin(t *testing.T) {
	mk, job := testClusterJob()
	plan := &fault.ClusterPlan{
		Name: "double-crash",
		Crashes: []fault.NodeCrash{
			{Node: 3, AtTick: 0},
			{Node: 3, AtTick: 1000},
		},
		Heals: []fault.NodeHeal{{Node: 3, AtTick: 0}},
	}
	rep := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	if rep.Outcome != RecoveredRecompile {
		t.Fatalf("outcome %s, want recovered-by-recompile: %v", rep.Outcome, rep.Err)
	}
	wantActions := []string{"initial", "recompile", "rejoin", "recompile"}
	if len(rep.Attempts) != len(wantActions) {
		t.Fatalf("%d attempts, want %d: %+v", len(rep.Attempts), len(wantActions), rep.Attempts)
	}
	for i, a := range rep.Attempts {
		if a.Action != wantActions[i] {
			t.Fatalf("attempt %d action %q, want %q", i, a.Action, wantActions[i])
		}
	}
	// The second crash actually fired during the rejoined run.
	if rep.Attempts[2].Err == nil {
		t.Fatal("rejoined run did not hit the second crash")
	}
	if rep.FinalNodes != 7 {
		t.Fatalf("final cluster has %d nodes, want 7", rep.FinalNodes)
	}
	// Both crash entries are in the exclusion history.
	if len(rep.ExcludedNodes) != 2 || rep.ExcludedNodes[0] != 3 || rep.ExcludedNodes[1] != 3 {
		t.Fatalf("excluded nodes %v, want [3 3]", rep.ExcludedNodes)
	}
	if rep.FinalEpoch != 3 {
		t.Fatalf("final epoch %d, want 3 (initial, recompile, rejoin, recompile)", rep.FinalEpoch)
	}
}

// A matured LinkHeal undoes a winning reroute: the degrade is dropped, the
// original algorithm recompiled and re-run, and the report shows the
// original algorithm as final.
func TestSuperviseClusterLinkHealUndoesReroute(t *testing.T) {
	mk, _ := testClusterJob()
	job := ClusterJob{Coll: cluster.CollAllreduce, Alg: cluster.LeaderRing, Elems: 1 << 10}
	plan := &fault.ClusterPlan{
		Name:         "deg-heal",
		LinkDegrades: []fault.LinkDegrade{{Node: 2, Factor: 12}},
		LinkHeals:    []fault.LinkHeal{{Node: 2, AtTick: 0}},
	}
	rep := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	if rep.Outcome != RecoveredReroute {
		t.Fatalf("outcome %s, want recovered-by-reroute: %v", rep.Outcome, rep.Err)
	}
	if rep.FinalAlg != cluster.LeaderRing {
		t.Fatalf("final alg %s, want leader-ring restored after link heal", rep.FinalAlg)
	}
	if len(rep.HealedLinks) != 1 || rep.HealedLinks[0] != 2 {
		t.Fatalf("healed links %v, want [2]", rep.HealedLinks)
	}
	last := rep.Attempts[len(rep.Attempts)-1]
	if last.Action != "link-heal" {
		t.Fatalf("last attempt action %q, want link-heal", last.Action)
	}
	// The healed run is a healthy LeaderRing run: makespan matches the
	// unfaulted schedule exactly.
	healthy := SuperviseCluster(mk(), job, nil, DefaultClusterPolicy())
	if rep.Makespan != healthy.Makespan {
		t.Fatalf("healed makespan %d != healthy %d", rep.Makespan, healthy.Makespan)
	}
	if rep.Makespan >= rep.DegradedMakespan {
		t.Fatalf("healed run no better than degraded: %d vs %d", rep.Makespan, rep.DegradedMakespan)
	}
}

// Without a LinkHeal the reroute stays permanent — the pre-elasticity
// behaviour.
func TestSuperviseClusterRerouteStaysWithoutHeal(t *testing.T) {
	mk, _ := testClusterJob()
	job := ClusterJob{Coll: cluster.CollAllreduce, Alg: cluster.LeaderRing, Elems: 1 << 10}
	plan := &fault.ClusterPlan{
		Name:         "deg-only",
		LinkDegrades: []fault.LinkDegrade{{Node: 2, Factor: 12}},
	}
	rep := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	if rep.Outcome != RecoveredReroute {
		t.Fatalf("outcome %s, want recovered-by-reroute: %v", rep.Outcome, rep.Err)
	}
	if rep.FinalAlg != cluster.LeaderTree {
		t.Fatalf("final alg %s, want leader-tree (reroute permanent)", rep.FinalAlg)
	}
	if len(rep.HealedLinks) != 0 {
		t.Fatalf("healed links %v without a heal entry", rep.HealedLinks)
	}
}

// Churn supervision is deterministic: the same generated plan yields
// byte-identical reports.
func TestSuperviseClusterChurnDeterministic(t *testing.T) {
	mk, job := testClusterJob()
	plan := fault.GenChurnPlan(11, fault.ClusterShape{Nodes: 8, PerNode: 8}, 200_000)
	a := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	b := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	if a.String() != b.String() {
		t.Fatalf("churn supervision diverged:\n%s\n%s", a.String(), b.String())
	}
	if a.Outcome != RecoveredRejoin {
		t.Fatalf("churn plan outcome %s, want recovered-by-rejoin: %v", a.Outcome, a.Err)
	}
}
