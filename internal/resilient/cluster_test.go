package resilient

import (
	"fmt"
	"testing"

	"yhccl/internal/cluster"
	"yhccl/internal/fault"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

func testClusterJob() (func() *cluster.Cluster, ClusterJob) {
	mk := func() *cluster.Cluster {
		return cluster.New(topo.NodeA(), 8, 8, cluster.IB100())
	}
	return mk, ClusterJob{Coll: cluster.CollAllreduce, Alg: cluster.YHCCLHierarchical, Elems: 1 << 18}
}

// Healthy pass-through: the supervised makespan equals the direct
// event-engine run exactly.
func TestSuperviseClusterCleanPass(t *testing.T) {
	mk, job := testClusterJob()
	c := mk()
	prog, err := c.Compile(job.Coll, job.Alg, job.Elems, job.Opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunProgramEvent(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep := SuperviseCluster(c, job, nil, DefaultClusterPolicy())
	if rep.Outcome != CleanPass {
		t.Fatalf("outcome %s, want clean-pass: %v", rep.Outcome, rep.Err)
	}
	if rep.Makespan != direct.Makespan {
		t.Fatalf("supervised healthy makespan %d != direct %d", rep.Makespan, direct.Makespan)
	}
	if len(rep.Attempts) != 1 {
		t.Fatalf("healthy run took %d attempts", len(rep.Attempts))
	}
}

func TestSuperviseClusterRecompileAfterCrash(t *testing.T) {
	mk, job := testClusterJob()
	plan := &fault.ClusterPlan{Name: "crash3", Crashes: []fault.NodeCrash{{Node: 3, AtTick: 0}}}
	rep := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	if rep.Outcome != RecoveredRecompile {
		t.Fatalf("outcome %s, want recovered-by-recompile: %v", rep.Outcome, rep.Err)
	}
	if len(rep.ExcludedNodes) != 1 || rep.ExcludedNodes[0] != 3 {
		t.Fatalf("excluded nodes %v, want [3]", rep.ExcludedNodes)
	}
	if rep.FinalNodes != 7 {
		t.Fatalf("final cluster has %d nodes, want 7", rep.FinalNodes)
	}
	if rep.Makespan <= 0 {
		t.Fatalf("no final makespan recorded")
	}
}

func TestSuperviseClusterRerouteOnDegradedLane(t *testing.T) {
	// Reroute pays off in the latency-dominated regime: a ring serializes
	// 2(N-1) hops through the degraded lane where the tree crosses it O(1)
	// times. (At bandwidth-bound sizes the ring is per-lane optimal and the
	// honest outcome is degraded-pass — see TestSuperviseClusterDegradedPass.)
	mk, _ := testClusterJob()
	job := ClusterJob{Coll: cluster.CollAllreduce, Alg: cluster.LeaderRing, Elems: 1 << 10}
	plan := &fault.ClusterPlan{Name: "deg2", LinkDegrades: []fault.LinkDegrade{{Node: 2, Factor: 12}}}
	rep := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	if rep.Outcome != RecoveredReroute {
		t.Fatalf("outcome %s, want recovered-by-reroute: %v", rep.Outcome, rep.Err)
	}
	if rep.FinalAlg != cluster.LeaderTree {
		t.Fatalf("final alg %s, want leader-tree", rep.FinalAlg)
	}
	if rep.Makespan >= rep.DegradedMakespan {
		t.Fatalf("reroute did not improve: %d vs degraded %d", rep.Makespan, rep.DegradedMakespan)
	}
}

// At bandwidth-bound sizes the multi-lane ring already moves the minimum
// bytes over every lane, so no reroute improves on the degraded run: the
// supervisor keeps the slow-but-correct result and reports degraded-pass.
func TestSuperviseClusterDegradedPass(t *testing.T) {
	mk, job := testClusterJob() // yhccl allreduce, 2 MB: bandwidth-bound
	plan := &fault.ClusterPlan{Name: "deg-bw", LinkDegrades: []fault.LinkDegrade{{Node: 2, Factor: 4}}}
	rep := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	if rep.Outcome != DegradedPass {
		t.Fatalf("outcome %s, want degraded-pass: %v", rep.Outcome, rep.Err)
	}
	if rep.Makespan <= 0 {
		t.Fatalf("degraded-pass carries no result makespan")
	}
	if rep.DegradedMakespan == 0 {
		t.Fatalf("no reroute was attempted/measured")
	}
}

func TestSuperviseClusterRetryOnCorruption(t *testing.T) {
	mk, job := testClusterJob()
	plan := &fault.ClusterPlan{Name: "corrupt", Corruptions: []fault.PhaseCorrupt{{Node: 4, Phase: 1}}}
	rep := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	if rep.Outcome != RecoveredClusterRetry {
		t.Fatalf("outcome %s, want recovered-by-retry: %v", rep.Outcome, rep.Err)
	}
	if len(rep.Attempts) != 2 {
		t.Fatalf("took %d attempts, want 2", len(rep.Attempts))
	}
	// The consumed corruption must not fire on the retry.
	for _, ev := range rep.Attempts[1].Events {
		if ev.Kind == "phase-corrupt" {
			t.Fatalf("corruption fired again on retry: %v", ev)
		}
	}
}

// A crash combined with a surviving-node degrade: the supervisor recompiles
// around the dead node, then reroutes away from the degraded lane.
func TestSuperviseClusterCrashThenDegrade(t *testing.T) {
	mk, job := testClusterJob()
	plan := &fault.ClusterPlan{Name: "combo",
		Crashes:      []fault.NodeCrash{{Node: 1, AtTick: 0}},
		LinkDegrades: []fault.LinkDegrade{{Node: 5, Factor: 12}},
	}
	rep := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
	if rep.Outcome != RecoveredReroute && rep.Outcome != RecoveredRecompile {
		t.Fatalf("outcome %s, want a recovered outcome: %v", rep.Outcome, rep.Err)
	}
	if len(rep.ExcludedNodes) != 1 || rep.ExcludedNodes[0] != 1 {
		t.Fatalf("excluded nodes %v, want [1]", rep.ExcludedNodes)
	}
	// The degrade moved with the renumbering: original node 5 is node 4 of
	// the recompiled cluster.
	saw := false
	for _, at := range rep.Attempts {
		if at.Action == "recompile" || at.Action == "reroute" {
			for _, ev := range at.Events {
				if ev.Kind == "link-degrade" && ev.Node == 4 {
					saw = true
				}
			}
		}
	}
	if !saw {
		t.Fatalf("restricted plan lost the degrade after renumbering: %+v", rep.Attempts)
	}
}

func TestSuperviseClusterUnrecoverable(t *testing.T) {
	mk, job := testClusterJob()
	// Recovery disabled: the crash ends diagnosed but unrecoverable.
	plan := &fault.ClusterPlan{Name: "crash0", Crashes: []fault.NodeCrash{{Node: 0, AtTick: 0}}}
	pol := DefaultClusterPolicy()
	pol.AllowRecompile = false
	rep := SuperviseCluster(mk(), job, plan, pol)
	if rep.Outcome != Unrecoverable {
		t.Fatalf("outcome %s, want unrecoverable-but-diagnosed", rep.Outcome)
	}
	if rep.Err == nil {
		t.Fatalf("unrecoverable report carries no diagnosis")
	}

	// Retries exhausted: two corruptions, zero retries allowed.
	plan2 := &fault.ClusterPlan{Name: "corrupt0", Corruptions: []fault.PhaseCorrupt{{Node: 2, Phase: 1}}}
	pol2 := DefaultClusterPolicy()
	pol2.MaxRetries = 0
	rep2 := SuperviseCluster(mk(), job, plan2, pol2)
	if rep2.Outcome != Unrecoverable {
		t.Fatalf("outcome %s, want unrecoverable-but-diagnosed", rep2.Outcome)
	}
}

// Cluster supervision is deterministic: two cold runs of the same seeded
// plan produce byte-identical attempt logs and outcomes.
func TestSuperviseClusterDeterministic(t *testing.T) {
	mk, job := testClusterJob()
	shape := fault.ClusterShape{Nodes: 8, PerNode: 8}
	for seed := uint64(1); seed <= 8; seed++ {
		plan := fault.GenClusterPlan(seed, shape, 1_000_000)
		render := func() string {
			rep := SuperviseCluster(mk(), job, plan, DefaultClusterPolicy())
			s := fmt.Sprintf("%s makespan=%d\n", rep.String(), rep.Makespan)
			for _, at := range rep.Attempts {
				s += fmt.Sprintf("  %s nodes=%d alg=%s makespan=%d events=%v err=%v\n",
					at.Action, at.Nodes, at.Alg, at.Makespan, at.Events, at.Err)
			}
			return s
		}
		a, b := render(), render()
		if a != b {
			t.Fatalf("seed %d: supervision diverged across cold runs:\n%s\n---\n%s", seed, a, b)
		}
	}
}
