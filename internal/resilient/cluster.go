// Cluster-scale recovery. Supervise (resilient.go) recovers individual
// ranks inside one machine; SuperviseCluster recovers whole nodes of a
// compiled-schedule run on the event engine. The unit of repair is the
// schedule itself: a dead node is survived by recompiling the program over
// the remaining nodes (node-level survivor renumbering — ring lanes and
// leader trees are rebuilt from the Compile* templates, exactly like a
// ULFM shrink one level up), a degraded lane is survived by rerouting the
// inter phase onto a binomial tree that crosses the slow lane O(log N)
// times instead of O(N), and a transient phase corruption is survived by a
// bounded retry with the fired corruption consumed.
package resilient

import (
	"errors"
	"fmt"
	"sort"

	"yhccl/internal/cluster"
	"yhccl/internal/fault"
	"yhccl/internal/sim"
)

const (
	// RecoveredRecompile: the schedule was recompiled over the surviving
	// nodes after a node crash and the re-run completed.
	RecoveredRecompile Outcome = "recovered-by-recompile"
	// RecoveredReroute: the inter phase was switched to a tree avoiding the
	// degraded lane, beating the degraded makespan.
	RecoveredReroute Outcome = "recovered-by-reroute"
	// RecoveredClusterRetry: a bounded re-run consumed a transient phase
	// corruption and completed clean.
	RecoveredClusterRetry Outcome = "recovered-by-retry"
	// DegradedPass: the run completed correct-but-slow under a degraded
	// lane or straggler node and no reroute could improve it; the
	// degradation is fully diagnosed in the report.
	DegradedPass Outcome = "degraded-pass"
	// RecoveredRejoin: after recompiling around a crash, a NodeHeal event
	// fired and the healed node was rejoined at a recovery point — fresh
	// cluster over the enlarged membership, epoch bump — and the full-size
	// re-run completed.
	RecoveredRejoin Outcome = "recovered-by-rejoin"
	// DegradedPassShrunk: the job completed on the shrunken membership while
	// a heal for an excluded node existed but was never taken — rejoin
	// disabled by policy, or the heal tick never arrived. Honest
	// classification: the pass is real but the cluster is still down nodes
	// it could have recovered.
	DegradedPassShrunk Outcome = "degraded-pass-shrunk"
)

// ClusterJob names one compiled collective to supervise.
type ClusterJob struct {
	Coll  string // cluster.CollAllreduce, CollBcast, CollAllgather
	Alg   cluster.Algorithm
	Elems int64
	Opts  cluster.ScheduleOptions
}

func (j ClusterJob) String() string {
	return fmt.Sprintf("%s/%s n=%d", j.Coll, j.Alg, j.Elems)
}

// ClusterPolicy bounds the cluster supervisor's recovery chain.
type ClusterPolicy struct {
	// MaxAttempts caps total armed runs (initial attempt included).
	MaxAttempts int
	// MaxRetries caps corruption-consuming re-runs.
	MaxRetries int
	// AllowRecompile enables recompiling the schedule around dead nodes.
	AllowRecompile bool
	// AllowReroute enables switching the inter phase to a lane-avoiding
	// tree when a degraded lane or straggler node fired.
	AllowReroute bool
	// AllowRejoin enables rejoining healed nodes (plan NodeHeal events) at
	// the recovery point after a successful post-recompile run. Disabled,
	// a pending heal downgrades the outcome to DegradedPassShrunk.
	AllowRejoin bool
	// MinNodes refuses recompiles that would leave fewer nodes than this.
	MinNodes int
	// Horizon arms the no-progress watchdog on every attempt (0 = off).
	Horizon sim.Tick
}

// DefaultClusterPolicy returns the policy the cluster chaos sweep uses.
func DefaultClusterPolicy() ClusterPolicy {
	return ClusterPolicy{
		MaxAttempts:    6,
		MaxRetries:     2,
		AllowRecompile: true,
		AllowReroute:   true,
		AllowRejoin:    true,
		MinNodes:       2,
	}
}

// ClusterAttempt records one armed run.
type ClusterAttempt struct {
	// Action is what the supervisor did before this attempt: "initial",
	// "retry", "recompile", "reroute", "rejoin", or "link-heal".
	Action string
	// Nodes is the cluster size, Epoch the membership epoch, and Alg the
	// composition of this attempt.
	Nodes int
	Epoch int
	Alg   cluster.Algorithm
	// Makespan of a completed run in ticks (0 on halt).
	Makespan sim.Tick
	// Events are the injector events that fired during this attempt.
	Events []fault.ClusterEvent
	// Err is the run diagnosis (nil when the attempt completed clean).
	Err error
}

// ClusterReport is the cluster supervisor's verdict.
type ClusterReport struct {
	Job      ClusterJob
	Shape    fault.ClusterShape
	Outcome  Outcome
	Attempts []ClusterAttempt
	// ExcludedNodes lists the ORIGINAL node ids recompiled around, in
	// exclusion order (history — a later rejoin does not remove entries).
	ExcludedNodes []int
	// RejoinedNodes lists the ORIGINAL node ids healed back into the
	// membership, in rejoin order.
	RejoinedNodes []int
	// HealedLinks lists the ORIGINAL node ids whose degraded lanes a
	// LinkHeal restored (undoing a reroute).
	HealedLinks []int
	// FinalEpoch is the membership epoch of the final attempt: 0 when the
	// membership never changed, +1 per recompile or rejoin.
	FinalEpoch int
	// Makespan of the final successful attempt in ticks (0 if none).
	Makespan sim.Tick
	// DegradedMakespan is the completed-but-slow makespan a reroute was
	// measured against (0 when no reroute was attempted).
	DegradedMakespan sim.Tick
	// FinalAlg and FinalNodes describe the composition that produced the
	// final result.
	FinalAlg   cluster.Algorithm
	FinalNodes int
	// Err is the last diagnosis when the job did not recover.
	Err error
}

func (r ClusterReport) String() string {
	s := fmt.Sprintf("%s @%s: %s after %d attempt(s)", r.Job, r.Shape, r.Outcome, len(r.Attempts))
	if len(r.ExcludedNodes) > 0 {
		s += fmt.Sprintf(", excluded nodes %v", r.ExcludedNodes)
	}
	if len(r.RejoinedNodes) > 0 {
		s += fmt.Sprintf(", rejoined nodes %v (epoch %d)", r.RejoinedNodes, r.FinalEpoch)
	}
	if len(r.HealedLinks) > 0 {
		s += fmt.Sprintf(", healed links %v", r.HealedLinks)
	}
	if r.FinalAlg != "" && r.FinalAlg != r.Job.Alg {
		s += fmt.Sprintf(", rerouted to %s", r.FinalAlg)
	}
	return s
}

// rerouteAlg picks the composition that minimizes traffic over one node's
// lane: the binomial leader tree crosses any given lane O(log N) times where
// the rings cross it O(N). Returns the input when no lane-avoiding
// alternative exists for the collective (the tree compositions of bcast are
// already trees; allgather has no tree inter phase).
func rerouteAlg(coll string, alg cluster.Algorithm) cluster.Algorithm {
	if coll == cluster.CollAllreduce && alg != cluster.LeaderTree {
		return cluster.LeaderTree
	}
	if coll == cluster.CollBcast && alg == cluster.YHCCLHierarchical {
		return cluster.LeaderTree
	}
	return alg
}

// firedPersistent reports whether a degraded lane or straggler node was
// armed on the run (those faults fire by arming — they always affect every
// run under the plan).
func firedPersistent(events []fault.ClusterEvent) bool {
	for _, ev := range events {
		if ev.Kind == "link-degrade" || ev.Kind == "node-straggler" {
			return true
		}
	}
	return false
}

// membership is the supervisor's elastic-membership bookkeeping: which
// original nodes are in the current world, what the base plan has already
// spent, and how much supervised virtual time has accumulated (the clock
// heal ticks are measured against).
type membership struct {
	base     *fault.ClusterPlan
	perNode  int
	members  []int        // original node ids, in current cluster order
	excluded map[int]bool // original ids currently out of the membership

	consumedCrash   map[int]int      // orig id -> crash entries consumed
	consumedCorrupt map[[2]int]bool  // (orig id, phase) corruption consumed
	healedLinks     map[int]bool     // orig id -> LinkDegrade healed away
	healsUsed       map[int]int      // orig id -> NodeHeal entries consumed
	cumTicks        int64            // virtual ticks across all attempts
}

func newMembership(base *fault.ClusterPlan, nodes, perNode int) *membership {
	st := &membership{
		base:            base,
		perNode:         perNode,
		members:         make([]int, nodes),
		excluded:        map[int]bool{},
		consumedCrash:   map[int]int{},
		consumedCorrupt: map[[2]int]bool{},
		healedLinks:     map[int]bool{},
		healsUsed:       map[int]int{},
	}
	for i := range st.members {
		st.members[i] = i
	}
	return st
}

// plan derives the fault plan for the current membership from the base
// plan: unconsumed faults of member nodes, renumbered to current ids.
// Heals are supervisor-level and never enter a derived plan. Crash entries
// are consumed individually, so a plan may schedule a second crash on a
// node that was healed back in.
func (st *membership) plan() *fault.ClusterPlan {
	if st.base.Empty() {
		return st.base
	}
	curID := make(map[int]int, len(st.members))
	for i, orig := range st.members {
		curID[orig] = i
	}
	out := &fault.ClusterPlan{Name: st.base.Name, Seed: st.base.Seed,
		Shape: fault.ClusterShape{Nodes: len(st.members), PerNode: st.perNode}}
	crashSeen := map[int]int{}
	for _, c := range st.base.Crashes {
		idx := crashSeen[c.Node]
		crashSeen[c.Node]++
		if cur, ok := curID[c.Node]; ok && idx >= st.consumedCrash[c.Node] {
			out.Crashes = append(out.Crashes, fault.NodeCrash{Node: cur, AtTick: c.AtTick})
		}
	}
	for _, d := range st.base.LinkDegrades {
		if cur, ok := curID[d.Node]; ok && !st.healedLinks[d.Node] {
			out.LinkDegrades = append(out.LinkDegrades, fault.LinkDegrade{Node: cur, Factor: d.Factor})
		}
	}
	for _, s := range st.base.Stragglers {
		if cur, ok := curID[s.Node]; ok {
			out.Stragglers = append(out.Stragglers, fault.NodeStraggler{Node: cur, Factor: s.Factor})
		}
	}
	for _, c := range st.base.Corruptions {
		if cur, ok := curID[c.Node]; ok && !st.consumedCorrupt[[2]int{c.Node, c.Phase}] {
			out.Corruptions = append(out.Corruptions, fault.PhaseCorrupt{Node: cur, Phase: c.Phase})
		}
	}
	return out
}

// healTicks returns the AtTicks of the base plan's NodeHeal entries for one
// original node, in plan order.
func (st *membership) healTicks(orig int) []int64 {
	var ticks []int64
	for _, h := range st.base.Heals {
		if h.Node == orig {
			ticks = append(ticks, h.AtTick)
		}
	}
	return ticks
}

// eligibleHeals returns the excluded original node ids whose next unused
// NodeHeal entry has matured (AtTick <= cumTicks), sorted ascending.
func (st *membership) eligibleHeals() []int {
	var out []int
	for orig := range st.excluded {
		ticks := st.healTicks(orig)
		used := st.healsUsed[orig]
		if used < len(ticks) && ticks[used] <= st.cumTicks {
			out = append(out, orig)
		}
	}
	sort.Ints(out)
	return out
}

// hasUnusedHeal reports whether any currently excluded node still has an
// unused NodeHeal entry — the honest-classification trigger: the plan
// offered the node back and the supervisor finished without it.
func (st *membership) hasUnusedHeal() bool {
	for orig := range st.excluded {
		if st.healsUsed[orig] < len(st.healTicks(orig)) {
			return true
		}
	}
	return false
}

// rejoin appends the healed nodes to the membership (in ascending original
// id, the node-level image of Grow's append-in-core-order) and consumes
// their heal entries.
func (st *membership) rejoin(healed []int) {
	for _, orig := range healed {
		st.members = append(st.members, orig)
		delete(st.excluded, orig)
		st.healsUsed[orig]++
	}
}

// exclude drops the dead current-id nodes from the membership, consuming
// one crash entry each, and returns their original ids.
func (st *membership) exclude(deadCur []int) []int {
	dead := make(map[int]bool, len(deadCur))
	origs := make([]int, 0, len(deadCur))
	for _, n := range deadCur {
		dead[n] = true
		orig := st.members[n]
		origs = append(origs, orig)
		st.excluded[orig] = true
		st.consumedCrash[orig]++
	}
	kept := st.members[:0]
	for n, orig := range st.members {
		if !dead[n] {
			kept = append(kept, orig)
		}
	}
	st.members = kept
	return origs
}

// consumeCorruptEvents marks every phase corruption an event log shows
// fired, keyed by original node id.
func (st *membership) consumeCorruptEvents(events []fault.ClusterEvent) {
	for _, ev := range events {
		if ev.Kind == "phase-corrupt" && ev.Node >= 0 && ev.Node < len(st.members) {
			st.consumedCorrupt[[2]int{st.members[ev.Node], ev.Phase}] = true
		}
	}
}

// eligibleLinkHeals returns the original ids of member nodes whose degraded
// lane has a matured LinkHeal, sorted ascending.
func (st *membership) eligibleLinkHeals() []int {
	member := make(map[int]bool, len(st.members))
	for _, orig := range st.members {
		member[orig] = true
	}
	degraded := map[int]bool{}
	for _, d := range st.base.LinkDegrades {
		degraded[d.Node] = true
	}
	var out []int
	for _, h := range st.base.LinkHeals {
		if member[h.Node] && degraded[h.Node] && !st.healedLinks[h.Node] && h.AtTick <= st.cumTicks {
			out = append(out, h.Node)
		}
	}
	sort.Ints(out)
	return out
}

// SuperviseCluster runs the compiled job under the plan until it completes
// (possibly on a recompiled, rerouted or re-grown schedule) or the policy
// is exhausted. With a nil/empty plan it is pass-through: one run, no
// wrapper, makespan bit-identical to the healthy event-engine path.
//
// The recovery ladder: a dead node is recompiled around (survivor
// renumbering); once a post-recompile run succeeds, any matured NodeHeal
// rejoins its node at that recovery point — a fresh cluster over the
// enlarged membership at a bumped epoch, re-verified by a full re-run
// (RecoveredRejoin). A heal that exists but is never taken (policy or
// tick) downgrades the pass to DegradedPassShrunk. A matured LinkHeal
// undoes a winning reroute: the degrade is dropped and the original
// algorithm recompiled and re-run instead of leaving the reroute permanent.
func SuperviseCluster(c *cluster.Cluster, job ClusterJob, plan *fault.ClusterPlan, pol ClusterPolicy) ClusterReport {
	shape := fault.ClusterShape{Nodes: c.Nodes, PerNode: c.PerNode}
	rep := ClusterReport{Job: job, Shape: shape, FinalAlg: job.Alg, FinalNodes: c.Nodes,
		FinalEpoch: c.Epoch}
	if err := plan.Validate(shape); err != nil {
		rep.Outcome, rep.Err = Undiagnosed, err
		return rep
	}
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = 1
	}

	cur := c
	alg := job.Alg
	st := newMembership(plan, c.Nodes, c.PerNode)
	action := "initial"
	retries := 0
	rerouted := false

	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		prog, err := cur.Compile(job.Coll, alg, job.Elems, job.Opts)
		if err != nil {
			rep.Outcome, rep.Err = Undiagnosed, err
			return rep
		}
		curPlan := st.plan()
		run, rerr := cluster.RunArmed(prog, curPlan, pol.Horizon)
		at := ClusterAttempt{Action: action, Nodes: cur.Nodes, Epoch: cur.Epoch,
			Alg: alg, Events: run.Events, Err: rerr}
		if rerr == nil {
			at.Makespan = run.Res.Makespan
		}
		rep.Attempts = append(rep.Attempts, at)
		rep.FinalAlg, rep.FinalNodes, rep.FinalEpoch = alg, cur.Nodes, cur.Epoch

		if rerr == nil {
			st.cumTicks += int64(run.Res.Makespan)

			// Recovery point. Matured heals rejoin first: membership
			// restoration outranks route tuning, and the rejoined run is
			// re-verified by the next loop iteration.
			if pol.AllowRejoin {
				if healed := st.eligibleHeals(); len(healed) > 0 {
					st.rejoin(healed)
					rep.RejoinedNodes = append(rep.RejoinedNodes, healed...)
					cur = cluster.New(cur.Node, len(st.members), cur.PerNode, cur.Net)
					cur.Epoch = rep.FinalEpoch + 1
					action = "rejoin"
					continue
				}
			}

			// If a persistent lane/node degradation fired and a lane-avoiding
			// composition exists, try it once and keep the better schedule.
			if firedPersistent(run.Events) && !rerouted && pol.AllowReroute {
				if alt := rerouteAlg(job.Coll, alg); alt != alg {
					rerouted = true
					rep.DegradedMakespan = run.Res.Makespan
					altProg, err := cur.Compile(job.Coll, alt, job.Elems, job.Opts)
					if err == nil {
						altRun, altErr := cluster.RunArmed(altProg, curPlan, pol.Horizon)
						altAt := ClusterAttempt{Action: "reroute", Nodes: cur.Nodes,
							Epoch: cur.Epoch, Alg: alt, Events: altRun.Events, Err: altErr}
						if altErr == nil {
							altAt.Makespan = altRun.Res.Makespan
						}
						rep.Attempts = append(rep.Attempts, altAt)
						if altErr == nil && altRun.Res.Makespan < run.Res.Makespan {
							st.cumTicks += int64(altRun.Res.Makespan)
							rep.FinalAlg = alt
							// A matured LinkHeal undoes the reroute: drop the
							// healed degrade and re-run the original algorithm.
							if healedLinks := st.eligibleLinkHeals(); len(healedLinks) > 0 {
								for _, orig := range healedLinks {
									st.healedLinks[orig] = true
								}
								rep.HealedLinks = append(rep.HealedLinks, healedLinks...)
								healProg, err := cur.Compile(job.Coll, alg, job.Elems, job.Opts)
								if err == nil {
									healRun, healErr := cluster.RunArmed(healProg, st.plan(), pol.Horizon)
									healAt := ClusterAttempt{Action: "link-heal", Nodes: cur.Nodes,
										Epoch: cur.Epoch, Alg: alg, Events: healRun.Events, Err: healErr}
									if healErr == nil {
										healAt.Makespan = healRun.Res.Makespan
									}
									rep.Attempts = append(rep.Attempts, healAt)
									if healErr == nil {
										st.cumTicks += int64(healRun.Res.Makespan)
										rep.Outcome, rep.Makespan = RecoveredReroute, healRun.Res.Makespan
										rep.FinalAlg = alg
										return rep
									}
								}
							}
							rep.Outcome, rep.Makespan = RecoveredReroute, altRun.Res.Makespan
							return rep
						}
					}
				}
				// No improving reroute: the degraded run stands, diagnosed.
				if action == "initial" {
					rep.Outcome, rep.Makespan = DegradedPass, run.Res.Makespan
					return rep
				}
			}
			rep.Makespan = run.Res.Makespan
			switch action {
			case "initial":
				if firedPersistent(run.Events) {
					rep.Outcome = DegradedPass
				} else {
					rep.Outcome = CleanPass
				}
			case "retry":
				rep.Outcome = RecoveredClusterRetry
			case "recompile":
				rep.Outcome = RecoveredRecompile
			case "rejoin":
				rep.Outcome = RecoveredRejoin
			default:
				rep.Outcome = CleanPass
			}
			// Honest classification: finishing shrunk while the plan offered
			// the node back (rejoin disabled, or the heal never matured) is
			// not a full recovery.
			if (action == "recompile" || action == "retry") &&
				len(st.excluded) > 0 && st.hasUnusedHeal() {
				rep.Outcome = DegradedPassShrunk
			}
			return rep
		}

		var cerr *cluster.ClusterRunError
		if !errors.As(rerr, &cerr) {
			rep.Outcome, rep.Err = Undiagnosed, rerr
			return rep
		}

		switch {
		case len(cerr.DeadNodes) > 0:
			if !pol.AllowRecompile || cur.Nodes-len(cerr.DeadNodes) < pol.MinNodes {
				rep.Outcome, rep.Err = Unrecoverable, cerr
				return rep
			}
			st.cumTicks += int64(cerr.HaltTick)
			st.consumeCorruptEvents(run.Events)
			rep.ExcludedNodes = append(rep.ExcludedNodes, st.exclude(cerr.DeadNodes)...)
			// Survivor renumbering at the node level: a fresh compile over
			// the remaining nodes rebuilds every ring lane and leader tree
			// from the intra templates, one epoch up.
			cur = cluster.New(cur.Node, len(st.members), cur.PerNode, cur.Net)
			cur.Epoch = rep.FinalEpoch + 1
			action = "recompile"

		case cerr.CorruptNode >= 0:
			if retries >= pol.MaxRetries {
				rep.Outcome, rep.Err = Unrecoverable, cerr
				return rep
			}
			retries++
			// The corrupted run completed (wrong): its full makespan burned.
			st.cumTicks += int64(run.Res.Makespan)
			st.consumeCorruptEvents(run.Events)
			action = "retry"

		case cerr.HorizonHit:
			rep.Outcome, rep.Err = Unrecoverable, cerr
			return rep

		default:
			rep.Outcome, rep.Err = Undiagnosed, cerr
			return rep
		}
	}
	rep.Outcome = Unrecoverable
	if rep.Err == nil && len(rep.Attempts) > 0 {
		rep.Err = rep.Attempts[len(rep.Attempts)-1].Err
	}
	return rep
}
