// Cluster-scale recovery. Supervise (resilient.go) recovers individual
// ranks inside one machine; SuperviseCluster recovers whole nodes of a
// compiled-schedule run on the event engine. The unit of repair is the
// schedule itself: a dead node is survived by recompiling the program over
// the remaining nodes (node-level survivor renumbering — ring lanes and
// leader trees are rebuilt from the Compile* templates, exactly like a
// ULFM shrink one level up), a degraded lane is survived by rerouting the
// inter phase onto a binomial tree that crosses the slow lane O(log N)
// times instead of O(N), and a transient phase corruption is survived by a
// bounded retry with the fired corruption consumed.
package resilient

import (
	"errors"
	"fmt"

	"yhccl/internal/cluster"
	"yhccl/internal/fault"
	"yhccl/internal/sim"
)

const (
	// RecoveredRecompile: the schedule was recompiled over the surviving
	// nodes after a node crash and the re-run completed.
	RecoveredRecompile Outcome = "recovered-by-recompile"
	// RecoveredReroute: the inter phase was switched to a tree avoiding the
	// degraded lane, beating the degraded makespan.
	RecoveredReroute Outcome = "recovered-by-reroute"
	// RecoveredClusterRetry: a bounded re-run consumed a transient phase
	// corruption and completed clean.
	RecoveredClusterRetry Outcome = "recovered-by-retry"
	// DegradedPass: the run completed correct-but-slow under a degraded
	// lane or straggler node and no reroute could improve it; the
	// degradation is fully diagnosed in the report.
	DegradedPass Outcome = "degraded-pass"
)

// ClusterJob names one compiled collective to supervise.
type ClusterJob struct {
	Coll  string // cluster.CollAllreduce, CollBcast, CollAllgather
	Alg   cluster.Algorithm
	Elems int64
	Opts  cluster.ScheduleOptions
}

func (j ClusterJob) String() string {
	return fmt.Sprintf("%s/%s n=%d", j.Coll, j.Alg, j.Elems)
}

// ClusterPolicy bounds the cluster supervisor's recovery chain.
type ClusterPolicy struct {
	// MaxAttempts caps total armed runs (initial attempt included).
	MaxAttempts int
	// MaxRetries caps corruption-consuming re-runs.
	MaxRetries int
	// AllowRecompile enables recompiling the schedule around dead nodes.
	AllowRecompile bool
	// AllowReroute enables switching the inter phase to a lane-avoiding
	// tree when a degraded lane or straggler node fired.
	AllowReroute bool
	// MinNodes refuses recompiles that would leave fewer nodes than this.
	MinNodes int
	// Horizon arms the no-progress watchdog on every attempt (0 = off).
	Horizon sim.Tick
}

// DefaultClusterPolicy returns the policy the cluster chaos sweep uses.
func DefaultClusterPolicy() ClusterPolicy {
	return ClusterPolicy{
		MaxAttempts:    6,
		MaxRetries:     2,
		AllowRecompile: true,
		AllowReroute:   true,
		MinNodes:       2,
	}
}

// ClusterAttempt records one armed run.
type ClusterAttempt struct {
	// Action is what the supervisor did before this attempt: "initial",
	// "retry", "recompile", or "reroute".
	Action string
	// Nodes is the cluster size and Alg the composition of this attempt.
	Nodes int
	Alg   cluster.Algorithm
	// Makespan of a completed run in ticks (0 on halt).
	Makespan sim.Tick
	// Events are the injector events that fired during this attempt.
	Events []fault.ClusterEvent
	// Err is the run diagnosis (nil when the attempt completed clean).
	Err error
}

// ClusterReport is the cluster supervisor's verdict.
type ClusterReport struct {
	Job      ClusterJob
	Shape    fault.ClusterShape
	Outcome  Outcome
	Attempts []ClusterAttempt
	// ExcludedNodes lists the ORIGINAL node ids recompiled around, in
	// exclusion order.
	ExcludedNodes []int
	// Makespan of the final successful attempt in ticks (0 if none).
	Makespan sim.Tick
	// DegradedMakespan is the completed-but-slow makespan a reroute was
	// measured against (0 when no reroute was attempted).
	DegradedMakespan sim.Tick
	// FinalAlg and FinalNodes describe the composition that produced the
	// final result.
	FinalAlg   cluster.Algorithm
	FinalNodes int
	// Err is the last diagnosis when the job did not recover.
	Err error
}

func (r ClusterReport) String() string {
	s := fmt.Sprintf("%s @%s: %s after %d attempt(s)", r.Job, r.Shape, r.Outcome, len(r.Attempts))
	if len(r.ExcludedNodes) > 0 {
		s += fmt.Sprintf(", excluded nodes %v", r.ExcludedNodes)
	}
	if r.FinalAlg != "" && r.FinalAlg != r.Job.Alg {
		s += fmt.Sprintf(", rerouted to %s", r.FinalAlg)
	}
	return s
}

// rerouteAlg picks the composition that minimizes traffic over one node's
// lane: the binomial leader tree crosses any given lane O(log N) times where
// the rings cross it O(N). Returns the input when no lane-avoiding
// alternative exists for the collective (the tree compositions of bcast are
// already trees; allgather has no tree inter phase).
func rerouteAlg(coll string, alg cluster.Algorithm) cluster.Algorithm {
	if coll == cluster.CollAllreduce && alg != cluster.LeaderTree {
		return cluster.LeaderTree
	}
	if coll == cluster.CollBcast && alg == cluster.YHCCLHierarchical {
		return cluster.LeaderTree
	}
	return alg
}

// firedPersistent reports whether a degraded lane or straggler node was
// armed on the run (those faults fire by arming — they always affect every
// run under the plan).
func firedPersistent(events []fault.ClusterEvent) bool {
	for _, ev := range events {
		if ev.Kind == "link-degrade" || ev.Kind == "node-straggler" {
			return true
		}
	}
	return false
}

// SuperviseCluster runs the compiled job under the plan until it completes
// (possibly on a recompiled or rerouted schedule) or the policy is
// exhausted. With a nil/empty plan it is pass-through: one run, no wrapper,
// makespan bit-identical to the healthy event-engine path.
func SuperviseCluster(c *cluster.Cluster, job ClusterJob, plan *fault.ClusterPlan, pol ClusterPolicy) ClusterReport {
	shape := fault.ClusterShape{Nodes: c.Nodes, PerNode: c.PerNode}
	rep := ClusterReport{Job: job, Shape: shape, FinalAlg: job.Alg, FinalNodes: c.Nodes}
	if err := plan.Validate(shape); err != nil {
		rep.Outcome, rep.Err = Undiagnosed, err
		return rep
	}
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = 1
	}

	cur := c
	curPlan := plan
	alg := job.Alg
	// origNode maps the current cluster's node ids back to original ids.
	origNode := make([]int, c.Nodes)
	for i := range origNode {
		origNode[i] = i
	}
	action := "initial"
	retries := 0
	rerouted := false

	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		prog, err := cur.Compile(job.Coll, alg, job.Elems, job.Opts)
		if err != nil {
			rep.Outcome, rep.Err = Undiagnosed, err
			return rep
		}
		run, rerr := cluster.RunArmed(prog, curPlan, pol.Horizon)
		at := ClusterAttempt{Action: action, Nodes: cur.Nodes, Alg: alg,
			Events: run.Events, Err: rerr}
		if rerr == nil {
			at.Makespan = run.Res.Makespan
		}
		rep.Attempts = append(rep.Attempts, at)
		rep.FinalAlg, rep.FinalNodes = alg, cur.Nodes

		if rerr == nil {
			// Completed correct. If a persistent lane/node degradation fired
			// and a lane-avoiding composition exists, try it once and keep
			// the better schedule.
			if firedPersistent(run.Events) && !rerouted && pol.AllowReroute {
				if alt := rerouteAlg(job.Coll, alg); alt != alg {
					rerouted = true
					rep.DegradedMakespan = run.Res.Makespan
					altProg, err := cur.Compile(job.Coll, alt, job.Elems, job.Opts)
					if err == nil {
						altRun, altErr := cluster.RunArmed(altProg, curPlan, pol.Horizon)
						altAt := ClusterAttempt{Action: "reroute", Nodes: cur.Nodes,
							Alg: alt, Events: altRun.Events, Err: altErr}
						if altErr == nil {
							altAt.Makespan = altRun.Res.Makespan
						}
						rep.Attempts = append(rep.Attempts, altAt)
						if altErr == nil && altRun.Res.Makespan < run.Res.Makespan {
							rep.Outcome, rep.Makespan = RecoveredReroute, altRun.Res.Makespan
							rep.FinalAlg = alt
							return rep
						}
					}
				}
				// No improving reroute: the degraded run stands, diagnosed.
				if action == "initial" {
					rep.Outcome, rep.Makespan = DegradedPass, run.Res.Makespan
					return rep
				}
			}
			rep.Makespan = run.Res.Makespan
			switch action {
			case "initial":
				if firedPersistent(run.Events) {
					rep.Outcome = DegradedPass
				} else {
					rep.Outcome = CleanPass
				}
			case "retry":
				rep.Outcome = RecoveredClusterRetry
			case "recompile":
				rep.Outcome = RecoveredRecompile
			default:
				rep.Outcome = CleanPass
			}
			return rep
		}

		var cerr *cluster.ClusterRunError
		if !errors.As(rerr, &cerr) {
			rep.Outcome, rep.Err = Undiagnosed, rerr
			return rep
		}

		switch {
		case len(cerr.DeadNodes) > 0:
			if !pol.AllowRecompile || cur.Nodes-len(cerr.DeadNodes) < pol.MinNodes {
				rep.Outcome, rep.Err = Unrecoverable, cerr
				return rep
			}
			dead := make(map[int]bool, len(cerr.DeadNodes))
			for _, n := range cerr.DeadNodes {
				dead[n] = true
				rep.ExcludedNodes = append(rep.ExcludedNodes, origNode[n])
			}
			survivors := make([]int, 0, cur.Nodes-len(dead))
			newOrig := make([]int, 0, cur.Nodes-len(dead))
			for n := 0; n < cur.Nodes; n++ {
				if !dead[n] {
					survivors = append(survivors, n)
					newOrig = append(newOrig, origNode[n])
				}
			}
			origNode = newOrig
			// Survivor renumbering at the node level: a fresh compile over
			// N-len(dead) nodes rebuilds every ring lane and leader tree
			// from the intra templates.
			cur = cluster.New(cur.Node, len(survivors), cur.PerNode, cur.Net)
			curPlan = curPlan.WithoutFiredCorruptions(run.Events).RestrictNodes(survivors)
			action = "recompile"

		case cerr.CorruptNode >= 0:
			if retries >= pol.MaxRetries {
				rep.Outcome, rep.Err = Unrecoverable, cerr
				return rep
			}
			retries++
			curPlan = curPlan.WithoutFiredCorruptions(run.Events)
			action = "retry"

		case cerr.HorizonHit:
			rep.Outcome, rep.Err = Unrecoverable, cerr
			return rep

		default:
			rep.Outcome, rep.Err = Undiagnosed, cerr
			return rep
		}
	}
	rep.Outcome = Unrecoverable
	if rep.Err == nil && len(rep.Attempts) > 0 {
		rep.Err = rep.Attempts[len(rep.Attempts)-1].Err
	}
	return rep
}
