package resilient

import (
	"testing"

	"yhccl/internal/coll"
	"yhccl/internal/fault"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// allreduceJob builds the canonical supervised job: a self-validating
// allreduce over the resilient dispatch chain, the same shape the chaos
// recovery sweep uses.
func allreduceJob(primary string, n int64) Job {
	return Job{
		Name:     "allreduce/" + primary,
		MaxDepth: coll.MaxFallbackDepth("allreduce", primary),
		Bind: func(m *mpi.Machine, depth, salt int) (func(*mpi.Rank), func() error, error) {
			p := m.Size()
			bases := coll.SumBasesSalted(p, salt)
			o := coll.Options{FallbackDepth: depth}
			name, alg, err := coll.ResilientAR(primary, o)
			if err != nil {
				return nil, nil, err
			}
			var verr error
			body := func(r *mpi.Rank) {
				sb := r.NewBuffer("sb", n)
				rb := r.NewBuffer("rb", n)
				r.FillPattern(sb, bases[r.ID()])
				alg(r, r.World(), sb, rb, n, mpi.Sum, o)
				if err := coll.ValidateAllreduceSum("allreduce/"+name, r.ID(), rb, n, bases); err != nil && verr == nil {
					verr = err
				}
			}
			return body, func() error { return verr }, nil
		},
	}
}

func TestCleanPassMatchesDirectRun(t *testing.T) {
	const p, n = 4, 4096
	// Direct run, no supervisor.
	direct := mpi.NewMachine(topo.NodeA(), p, true)
	bases := coll.SumBases(p)
	want := direct.MustRun(func(r *mpi.Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, bases[r.ID()])
		coll.InstrumentAR("yhccl", coll.AllreduceAlgos["yhccl"])(
			r, r.World(), sb, rb, n, mpi.Sum, coll.Options{})
	})
	// Supervised run on a fresh identical machine with no plan armed.
	m := mpi.NewMachine(topo.NodeA(), p, true)
	rep := Supervise(m, allreduceJob("yhccl", n), DefaultPolicy())
	if rep.Outcome != CleanPass {
		t.Fatalf("outcome = %s (%v)", rep.Outcome, rep.Err)
	}
	if len(rep.Attempts) != 1 {
		t.Fatalf("%d attempts on the clean path", len(rep.Attempts))
	}
	if rep.Makespan != want {
		t.Errorf("supervised makespan %g != direct %g: supervisor charged the clean path",
			rep.Makespan, want)
	}
}

func TestBitFlipRecoversAfterRetry(t *testing.T) {
	const p, n = 4, 4096
	m := mpi.NewMachine(topo.NodeA(), p, true)
	pl := &fault.Plan{Name: "flip", Corruptions: []fault.Corruption{
		{Rank: 2, SharedWrite: 0, Elem: 13, Bit: 51}}}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	rep := Supervise(m, allreduceJob("yhccl", n), DefaultPolicy())
	if rep.Outcome != RecoveredRetry {
		t.Fatalf("outcome = %s (%v)\nattempts: %+v", rep.Outcome, rep.Err, rep.Attempts)
	}
	if len(rep.Attempts) != 2 {
		t.Fatalf("%d attempts, want 2", len(rep.Attempts))
	}
	if rep.Attempts[0].Err == nil {
		t.Error("first attempt should have failed validation")
	}
	if rep.Attempts[1].Salt != 1 {
		t.Errorf("retry salt = %d, want a fresh fill pattern", rep.Attempts[1].Salt)
	}
	if rep.Makespan <= 0 {
		t.Error("no makespan for the recovered run")
	}
}

func TestStragglerRecoversByRemap(t *testing.T) {
	const p, n = 4, 4096
	m := mpi.NewMachineWithSpares(topo.NodeA(), p, 2, true)
	pl := &fault.Plan{Name: "straggle", Stragglers: []fault.Straggler{{Rank: 1, Factor: 32}}}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	rep := Supervise(m, allreduceJob("yhccl", n), DefaultPolicy())
	if rep.Outcome != RecoveredRemap {
		t.Fatalf("outcome = %s (%v)\nattempts: %+v", rep.Outcome, rep.Err, rep.Attempts)
	}
	if core, ok := rep.Remapped[1]; !ok || core != p {
		t.Errorf("remapped = %v, want rank 1 on spare core %d", rep.Remapped, p)
	}
	if len(rep.Attempts) != 2 {
		t.Fatalf("%d attempts, want 2", len(rep.Attempts))
	}
	if rep.Attempts[1].Makespan >= rep.Attempts[0].Makespan {
		t.Errorf("remap did not help: %g -> %g",
			rep.Attempts[0].Makespan, rep.Attempts[1].Makespan)
	}
}

func TestStragglerWithoutSparesFallsBack(t *testing.T) {
	const p, n = 4, 4096
	m := mpi.NewMachine(topo.NodeA(), p, true) // no spares
	pl := &fault.Plan{Name: "straggle", Stragglers: []fault.Straggler{{Rank: 1, Factor: 32}}}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	rep := Supervise(m, allreduceJob("yhccl", n), DefaultPolicy())
	if rep.Outcome != RecoveredFallback {
		t.Fatalf("outcome = %s (%v)", rep.Outcome, rep.Err)
	}
	if rep.Depth != 1 {
		t.Errorf("fallback depth = %d, want 1 (two-level)", rep.Depth)
	}
}

func TestCrashRecoversByShrink(t *testing.T) {
	const p, n = 4, 4096
	m := mpi.NewMachine(topo.NodeA(), p, true)
	pl := &fault.Plan{Name: "crash", Stalls: []fault.Stall{{Rank: p - 1, At: 0, Crash: true}}}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	rep := Supervise(m, allreduceJob("yhccl", n), DefaultPolicy())
	if rep.Outcome != RecoveredShrink {
		t.Fatalf("outcome = %s (%v)\nattempts: %+v", rep.Outcome, rep.Err, rep.Attempts)
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != p-1 {
		t.Errorf("excluded = %v, want [%d]", rep.Excluded, p-1)
	}
	if rep.Final.Size() != p-1 {
		t.Errorf("final world size = %d, want %d", rep.Final.Size(), p-1)
	}
}

func TestStallRecoversByShrink(t *testing.T) {
	const p, n = 4, 4096
	m := mpi.NewMachine(topo.NodeA(), p, true)
	pl := &fault.Plan{Name: "stall", Stalls: []fault.Stall{{Rank: 1, At: 0}}}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	rep := Supervise(m, allreduceJob("yhccl", n), DefaultPolicy())
	if rep.Outcome != RecoveredShrink {
		t.Fatalf("outcome = %s (%v)\nattempts: %+v", rep.Outcome, rep.Err, rep.Attempts)
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != 1 {
		t.Errorf("excluded = %v, want [1]", rep.Excluded)
	}
}

func TestCrashWithShrinkDisabledIsUnrecoverable(t *testing.T) {
	const p, n = 4, 4096
	m := mpi.NewMachine(topo.NodeA(), p, true)
	pl := &fault.Plan{Name: "crash", Stalls: []fault.Stall{{Rank: 0, At: 0, Crash: true}}}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	pol := DefaultPolicy()
	pol.AllowShrink = false
	rep := Supervise(m, allreduceJob("yhccl", n), pol)
	if rep.Outcome != Unrecoverable {
		t.Fatalf("outcome = %s", rep.Outcome)
	}
	if rep.Err == nil {
		t.Error("unrecoverable report carries no diagnosis")
	}
}

func TestShrinkRespectsMinSurvivors(t *testing.T) {
	const n = 4096
	m := mpi.NewMachine(topo.NodeA(), 2, true)
	pl := &fault.Plan{Name: "crash", Stalls: []fault.Stall{{Rank: 1, At: 0, Crash: true}}}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	rep := Supervise(m, allreduceJob("yhccl", n), DefaultPolicy())
	if rep.Outcome != Unrecoverable {
		t.Fatalf("outcome = %s, want unrecoverable (1 survivor < MinSurvivors)", rep.Outcome)
	}
}

func TestWrongAnswerWithNoFaultIsUndiagnosed(t *testing.T) {
	m := mpi.NewMachine(topo.NodeA(), 2, true)
	job := Job{
		Name: "broken",
		Bind: func(m *mpi.Machine, depth, salt int) (func(*mpi.Rank), func() error, error) {
			body := func(r *mpi.Rank) { r.Compute(1e-6) }
			validate := func() error {
				return &coll.ValidationError{Op: "broken", Rank: 0}
			}
			return body, validate, nil
		},
	}
	rep := Supervise(m, job, DefaultPolicy())
	if rep.Outcome != Undiagnosed {
		t.Fatalf("outcome = %s, want UNDIAGNOSED (no fault to blame)", rep.Outcome)
	}
}

func TestSupervisionIsDeterministic(t *testing.T) {
	const p, n = 4, 4096
	run := func() Report {
		m := mpi.NewMachineWithSpares(topo.NodeA(), p, 2, true)
		pl := fault.GenPlan(3, p, 2e-4)
		if err := m.SetFaultPlan(pl); err != nil {
			t.Fatal(err)
		}
		return Supervise(m, allreduceJob("yhccl", n), DefaultPolicy())
	}
	a, b := run(), run()
	if a.Outcome != b.Outcome {
		t.Fatalf("outcomes differ: %s vs %s", a.Outcome, b.Outcome)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("makespans differ: %g vs %g", a.Makespan, b.Makespan)
	}
	if len(a.Attempts) != len(b.Attempts) {
		t.Fatalf("attempt counts differ: %d vs %d", len(a.Attempts), len(b.Attempts))
	}
	for i := range a.Attempts {
		if a.Attempts[i].Makespan != b.Attempts[i].Makespan ||
			a.Attempts[i].Action != b.Attempts[i].Action {
			t.Errorf("attempt %d differs: %+v vs %+v", i, a.Attempts[i], b.Attempts[i])
		}
	}
}

// Regression: a fault scheduled to fire only after the first recovery
// point must still fire on the rebuilt machine and be recovered — the
// supervisor re-arms the RESTRICTED plan after a shrink, so a transient
// flip on a survivor lands during the post-shrink re-run and is then
// consumed by a retry.
func TestSecondFaultAfterShrinkFiresAndRecovers(t *testing.T) {
	const p, n = 6, 4096
	m := mpi.NewMachine(topo.NodeA(), p, true)
	pl := &fault.Plan{Name: "crash-then-flip",
		Stalls:      []fault.Stall{{Rank: 0, At: 0, Crash: true}},
		Corruptions: []fault.Corruption{{Rank: 3, SharedWrite: 6, Elem: 13, Bit: 51}},
	}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	rep := Supervise(m, allreduceJob("yhccl", n), DefaultPolicy())
	if rep.Outcome != RecoveredRetry {
		t.Fatalf("outcome = %s (%v)\nattempts: %+v", rep.Outcome, rep.Err, rep.Attempts)
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != 0 {
		t.Fatalf("excluded = %v, want [0]", rep.Excluded)
	}
	// The flip must have fired on an attempt AFTER the shrink (the rebuilt
	// machine), under the survivor numbering (old rank 3 -> new rank 2).
	flipAttempt := -1
	for i, at := range rep.Attempts {
		for _, ev := range at.Faults {
			if ev.Kind == "bitflip" {
				flipAttempt = i
				if at.Action != "shrink" {
					t.Fatalf("flip fired on action %q, want the post-shrink re-run", at.Action)
				}
				if ev.Rank != 2 {
					t.Fatalf("flip fired on rank %d, want renumbered rank 2", ev.Rank)
				}
			}
		}
	}
	if flipAttempt < 0 {
		t.Fatalf("second fault never fired after the shrink:\nattempts: %+v", rep.Attempts)
	}
}

// Regression: after a quarantine remaps the first straggler, the re-armed
// plan must keep the second straggler firing so it is quarantined too.
func TestSecondStragglerAfterQuarantineFiresAndRecovers(t *testing.T) {
	const p, n = 4, 4096
	m := mpi.NewMachineWithSpares(topo.NodeA(), p, 2, true)
	pl := &fault.Plan{Name: "two-stragglers", Stragglers: []fault.Straggler{
		{Rank: 1, Factor: 32}, {Rank: 2, Factor: 32}}}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	rep := Supervise(m, allreduceJob("yhccl", n), DefaultPolicy())
	if rep.Outcome != RecoveredRemap {
		t.Fatalf("outcome = %s (%v)\nattempts: %+v", rep.Outcome, rep.Err, rep.Attempts)
	}
	if len(rep.Remapped) != 2 {
		t.Fatalf("remapped = %v, want both stragglers on spares", rep.Remapped)
	}
	if len(rep.Attempts) != 3 {
		t.Fatalf("%d attempts, want 3 (initial, remap, remap)", len(rep.Attempts))
	}
}
