package tune

import (
	"testing"

	"yhccl/internal/coll"
	"yhccl/internal/plan"
	"yhccl/internal/topo"
)

// These tests pin the committed plan caches under plans/ — the artifacts
// `make tune-full` regenerates. They fail when the caches are missing or
// stale relative to the cost model, which is exactly the drift they guard.

func loadCommitted(t *testing.T, node *topo.Node, p int) *plan.Cache {
	t.Helper()
	dir := plan.DefaultDir()
	if dir == "" {
		t.Fatal("not inside the repository (no go.mod above the test binary)")
	}
	cache, err := plan.Load(dir, node, p)
	if err != nil {
		t.Fatalf("committed cache for %s p=%d: %v (regenerate with `make tune-full`)", node.Name, p, err)
	}
	return cache
}

// Satellite gate (a): the tuner-derived small/large all-reduce switch on
// NodeA p=64 must land within one size bucket of the paper's hand-tuned
// 256 KB threshold (§5.1).
//
// Documented divergence: the tuner picks the parallel-reduction class
// (dpml at p=64 — structurally the paper's two-level split with different
// constants) up to 128 KB and movement-avoiding/kernel-assisted families
// from 256 KB, so the derived switch is one bucket below the paper's
// value. The paper's 256 KB is the largest size it still runs the
// small-message algorithm; our cost model has the crossover half a bucket
// earlier, which rounds down under bucket granularity.
func TestDerivedSwitchMatchesPaper(t *testing.T) {
	cache := loadCommitted(t, topo.NodeA(), 64)
	table, err := cache.Table()
	if err != nil {
		t.Fatal(err)
	}
	sw, ok := table.SwitchBytes(plan.Allreduce)
	if !ok {
		t.Fatal("no small-message regime in the tuned all-reduce plans")
	}
	paper := plan.Bucket(coll.DefaultSwitchSmallBytes)
	got := plan.Bucket(sw)
	dist := paper - got
	if dist < 0 {
		dist = -dist
	}
	t.Logf("derived switch %d KB (bucket %d), paper 256 KB (bucket %d)", sw>>10, got, paper)
	if dist > 1 {
		t.Errorf("derived switch %d KB is %d buckets from the paper's 256 KB", sw>>10, dist)
	}
}

// The strict-win gate, reproduced from the cold committed cache: at least
// one measured (not extrapolated) sweep point must record a searched plan
// strictly faster than every hand-written seed, and re-measuring both from
// scratch must reproduce the cached times bit-exactly.
func TestStrictWinReproducibleFromColdCache(t *testing.T) {
	if testing.Short() {
		t.Skip("p=64 measurements in -short mode")
	}
	node := topo.NodeA()
	const p = 64
	cache := loadCommitted(t, node, p)
	var win *plan.Plan
	for i := range cache.Plans {
		e := &cache.Plans[i]
		if e.Source == "searched" && e.PredictedSeconds < e.BestSeedSeconds {
			win = e
			break
		}
	}
	if win == nil {
		t.Fatal("committed cache records no searched plan beating every seed")
	}
	c, err := plan.ParseColl(win.Collective)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Measure(node, p, c, win.Params, win.SizeBytes)
	if err != nil {
		t.Fatal(err)
	}
	if tuned != win.PredictedSeconds {
		t.Errorf("cold re-measure of %s %s at %d B: %x, cache records %x (not bit-identical)",
			win.Collective, win.Params, win.SizeBytes, tuned, win.PredictedSeconds)
	}
	seed, err := Measure(node, p, c, plan.Params{Family: win.BestSeed}, win.SizeBytes)
	if err != nil {
		t.Fatal(err)
	}
	if seed != win.BestSeedSeconds {
		t.Errorf("cold re-measure of seed %s: %x, cache records %x", win.BestSeed, seed, win.BestSeedSeconds)
	}
	if !(tuned < seed) {
		t.Errorf("strict win did not reproduce: tuned %.3es vs seed %s %.3es", tuned, win.BestSeed, seed)
	}
	t.Logf("strict win reproduced: %s %s at %d B: %.3es vs %s %.3es",
		win.Collective, win.Params, win.SizeBytes, tuned, win.BestSeed, seed)
}
