package tune

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"yhccl/internal/plan"
	"yhccl/internal/topo"
)

// The determinism gate of satellite (d): two cold tuning runs with the same
// seed and topology must produce byte-identical cache files. Everything
// feeding the search is deterministic — candidate order, the simulator, the
// strict-< displacement rule, the canonical sort — so the files must match
// bit for bit, not just semantically.
func TestTuneDeterministicByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning run in -short mode")
	}
	cfg := Config{Node: topo.NodeA(), Ranks: 8, Quick: true, Seed: 42}
	dir := t.TempDir()
	var files [2][]byte
	for i := range files {
		cache, err := Tune(cfg)
		if err != nil {
			t.Fatalf("cold run %d: %v", i, err)
		}
		sub := filepath.Join(dir, string(rune('a'+i)))
		if _, err := cache.Save(sub); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		b, err := os.ReadFile(filepath.Join(sub, plan.FileName(cfg.Node.Name, cfg.Ranks)))
		if err != nil {
			t.Fatal(err)
		}
		files[i] = b
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Errorf("two cold tuning runs produced different cache bytes (%d vs %d bytes)",
			len(files[0]), len(files[1]))
	}
}

// Candidate enumeration is order-deterministic and seeds-first: every
// IsDefault (seed) candidate precedes every searched variant, so the
// strict-< displacement rule resolves ties toward seeds.
func TestCandidatesDeterministicSeedsFirst(t *testing.T) {
	node := topo.NodeA()
	for _, c := range plan.Colls() {
		a := Candidates(c, node, 64, 2<<20)
		b := Candidates(c, node, 64, 2<<20)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two enumerations differ", c)
		}
		if len(a) == 0 {
			t.Fatalf("%s: no candidates", c)
		}
		seenSearched := false
		for i, pr := range a {
			if pr.IsDefault() && seenSearched {
				t.Errorf("%s: seed %s at index %d after a searched variant", c, pr, i)
			}
			if !pr.IsDefault() {
				seenSearched = true
			}
		}
	}
}

// The beats-or-matches gate at a CI-affordable scale: tuned dispatch must
// match or beat every figure baseline at every quick sweep point, and at
// least one point must be a strict win over all hand-written seeds —
// reproduced from a cold cache round-trip (save, load, dispatch).
func TestVerifyGateQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning run in -short mode")
	}
	node, p := topo.NodeA(), 8
	cache, err := Tune(Config{Node: node, Ranks: p, Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := cache.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := plan.Load(dir, node, p)
	if err != nil {
		t.Fatal(err)
	}
	table, err := loaded.Table()
	if err != nil {
		t.Fatal(err)
	}
	points, err := Verify(node, p, table, true)
	if err != nil {
		t.Fatalf("beats-or-matches gate: %v", err)
	}
	strict := 0
	for _, pt := range points {
		if pt.Strict {
			strict++
			t.Logf("strict win: %s at %d B: tuned %s %.3es vs best hand %s %.3es",
				pt.Collective, pt.SizeBytes, pt.Family, pt.Tuned, pt.BestName, pt.BestHand)
		}
	}
	if strict == 0 {
		t.Error("no sweep point strictly faster than every hand-written baseline")
	}
}

// Extrapolated quick caches still cover every bucket of the full sweep
// domain contiguously, so Lookup never sees a gap.
func TestQuickCacheCoversFullBucketRange(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning run in -short mode")
	}
	cache, err := Tune(Config{Node: topo.NodeA(), Ranks: 8, Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	table, err := cache.Table()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.Colls() {
		full := collSizes(c, false)
		for _, s := range full {
			if table.Lookup(c, s) == nil {
				t.Errorf("%s: no plan at %d B", c, s)
			}
		}
	}
}
