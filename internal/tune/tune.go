// Package tune is the offline collective-schedule synthesizer: it
// enumerates candidate schedules per (topology, ranks, collective,
// message-size bucket) — the hand-written algorithm families as seeds plus
// searched variants (pipeline chunking, copy-policy forcing, RG tree
// degrees, asymmetric-fanout DAGs) — scores every candidate against the
// internal/memmodel cost model through the exact measurement harness the
// figures use, and persists the winners into the versioned plan cache that
// runtime dispatch (coll.Tuned*) consults.
//
// The search is fully deterministic: candidate order is fixed, the
// simulator is bit-exact, and ties resolve toward seeds (a searched variant
// only wins a bucket when strictly faster than every seed). Two cold runs
// with the same seed and topology therefore produce byte-identical caches.
package tune

import (
	"fmt"

	"yhccl/internal/bench"
	"yhccl/internal/coll"
	"yhccl/internal/dav"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/plan"
	"yhccl/internal/schedule"
	"yhccl/internal/topo"
)

// Config selects what to tune.
type Config struct {
	// Node and Ranks identify the machine.
	Node  *topo.Node
	Ranks int
	// Quick restricts measurement to the quick-sweep anchor sizes and
	// fills the remaining buckets by nearest-anchor extrapolation — the CI
	// budget. A full run measures every bucket of the paper's sweeps.
	Quick bool
	// Seed is recorded in the cache (the search itself is deterministic;
	// the seed documents provenance for reproduction).
	Seed uint64
	// Progress, when non-nil, receives one line per tuned point.
	Progress func(format string, args ...any)
}

// fanoutMaxBytes bounds the message sizes at which fanout DAG candidates
// are searched: beyond this the graphs' O(p^2) step lists make simulation
// expensive and the copy-volume penalty (2f vs 2 units) rules them out
// anyway.
const fanoutMaxBytes = 4 << 20

// searchSliceKB are the pipeline-slice overrides searched per family.
var searchSliceKB = []int64{64, 128, 256, 512}

// Candidates enumerates the search space for one collective at one message
// size, seeds first, in a fixed deterministic order.
func Candidates(c plan.Coll, node *topo.Node, p int, sBytes int64) []plan.Params {
	var out []plan.Params
	seed := func(families ...string) {
		for _, f := range families {
			out = append(out, plan.Params{Family: f})
		}
	}
	// Seeds: every hand-written family the figures benchmark (registry
	// names). "yhccl" itself is excluded — it is the switch this table
	// replaces, and its two halves are present individually.
	switch c {
	case plan.Allreduce:
		seed("two-level", "socket-ma", "ma", "dpml", "ring", "rabenseifner", "rg", "xpmem", "cma")
	case plan.ReduceScatter:
		seed("two-level", "socket-ma", "ma", "dpml", "ring", "rabenseifner", "xpmem")
	case plan.Reduce:
		seed("two-level", "socket-ma", "ma", "dpml", "rg", "xpmem")
	case plan.Bcast:
		seed("pipelined", "binomial", "xpmem", "cma")
	case plan.Allgather:
		seed("pipelined", "ring", "xpmem")
	}

	// Searched variants around the strongest large-message family.
	tunable := "socket-ma"
	if c == plan.Bcast || c == plan.Allgather {
		tunable = "pipelined"
	}
	defKB := bench.NodeOptions(node).SliceMaxBytes >> 10
	if defKB == 0 {
		defKB = coll.DefaultSliceMaxBytes >> 10
	}
	for _, kb := range searchSliceKB {
		if kb != defKB {
			out = append(out, plan.Params{Family: tunable, SliceKB: kb})
		}
	}
	for _, pol := range []string{"t-copy", "nt-copy"} {
		out = append(out, plan.Params{Family: tunable, Policy: pol})
	}
	if c == plan.Allreduce || c == plan.Reduce {
		for _, k := range []int{3, 4} {
			out = append(out, plan.Params{Family: "rg", RGDegree: k})
		}
	}
	if (c == plan.Allreduce || c == plan.ReduceScatter) && sBytes <= fanoutMaxBytes {
		for _, f := range []int{2, 4, 8} {
			if f <= p/2 {
				out = append(out, plan.Params{Family: "fanout", Fanout: f})
			}
		}
	}
	return out
}

// Measure scores one candidate: the simulated steady-state seconds of the
// collective at sBytes on a fresh machine, through the figure harness.
func Measure(node *topo.Node, p int, c plan.Coll, pr plan.Params, sBytes int64) (float64, error) {
	o := coll.ApplyParams(bench.NodeOptions(node), pr)
	switch c {
	case plan.Allreduce:
		var alg coll.ARFunc
		if pr.Family == "fanout" {
			g, err := plan.AllreduceFromSchedule(schedule.Fanout(p, pr.Fanout))
			if err != nil {
				return 0, err
			}
			alg = func(r *mpi.Rank, cm *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o coll.Options) {
				coll.AllreduceGraph(r, cm, g, sb, rb, n, op, o)
			}
		} else {
			f, err := coll.Lookup(coll.AllreduceAlgos, pr.Family)
			if err != nil {
				return 0, err
			}
			alg = f
		}
		return bench.MeasureAllreduce(node, p, alg, sBytes, o), nil
	case plan.ReduceScatter:
		var alg coll.RSFunc
		if pr.Family == "fanout" {
			g, err := plan.FromSchedule(schedule.Fanout(p, pr.Fanout))
			if err != nil {
				return 0, err
			}
			alg = func(r *mpi.Rank, cm *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o coll.Options) {
				coll.ReduceScatterGraph(r, cm, g, sb, rb, n, op, o)
			}
		} else {
			f, err := coll.Lookup(coll.ReduceScatterAlgos, pr.Family)
			if err != nil {
				return 0, err
			}
			alg = f
		}
		return bench.MeasureReduceScatter(node, p, alg, sBytes, o), nil
	case plan.Reduce:
		f, err := coll.Lookup(coll.ReduceAlgos, pr.Family)
		if err != nil {
			return 0, err
		}
		return bench.MeasureReduce(node, p, f, sBytes, o), nil
	case plan.Bcast:
		f, err := coll.Lookup(coll.BcastAlgos, pr.Family)
		if err != nil {
			return 0, err
		}
		return bench.MeasureBcast(node, p, f, sBytes, o), nil
	case plan.Allgather:
		f, err := coll.Lookup(coll.AllgatherAlgos, pr.Family)
		if err != nil {
			return 0, err
		}
		return bench.MeasureAllgather(node, p, f, sBytes, o), nil
	}
	return 0, fmt.Errorf("tune: unknown collective %v", c)
}

// collSizes returns the sweep a collective is tuned over: the paper's
// figure domains (8 KB - 8 MB for all-gather, 64 KB - 256 MB otherwise).
func collSizes(c plan.Coll, quick bool) []int64 {
	if c == plan.Allgather {
		return bench.SmallMsgSizes(quick)
	}
	return bench.MsgSizes(quick)
}

// predictedDAV stamps the winner's closed-form or graph-derived DAV.
func predictedDAV(c plan.Coll, node *topo.Node, p int, pr plan.Params, sBytes int64) int64 {
	if pr.Family == "fanout" {
		var g *plan.Graph
		var err error
		if c == plan.Allreduce {
			g, err = plan.AllreduceFromSchedule(schedule.Fanout(p, pr.Fanout))
		} else {
			g, err = plan.FromSchedule(schedule.Fanout(p, pr.Fanout))
		}
		if err != nil {
			return 0
		}
		return g.DAVBytes(sBytes / int64(p))
	}
	k := pr.RGDegree
	if k == 0 {
		k = 2
	}
	if v, ok := dav.Predicted(c.String(), pr.Family, sBytes, p, node.Sockets, k); ok {
		return v
	}
	return 0
}

// Tune runs the search and returns the populated cache (not yet saved).
func Tune(cfg Config) (*plan.Cache, error) {
	if cfg.Node == nil || cfg.Ranks < 2 {
		return nil, fmt.Errorf("tune: need a node and at least 2 ranks")
	}
	logf := cfg.Progress
	if logf == nil {
		logf = func(string, ...any) {}
	}
	cache := plan.NewCache(cfg.Node, cfg.Ranks, cfg.Seed)
	for _, c := range plan.Colls() {
		sizes := collSizes(c, cfg.Quick)
		measured := map[int]plan.Plan{}
		for _, s := range sizes {
			cands := Candidates(c, cfg.Node, cfg.Ranks, s)
			var (
				bestSeed, best       plan.Params
				bestSeedT, bestT     float64
				haveSeed, haveAny    bool
			)
			for _, pr := range cands {
				t, err := Measure(cfg.Node, cfg.Ranks, c, pr, s)
				if err != nil {
					return nil, fmt.Errorf("tune: %s %s at %d: %w", c, pr, s, err)
				}
				if pr.IsDefault() && (!haveSeed || t < bestSeedT) {
					bestSeed, bestSeedT, haveSeed = pr, t, true
				}
				// Strict <: searched variants only displace a seed (or an
				// earlier variant) when strictly faster, so ties resolve to
				// the earliest candidate — seeds first.
				if !haveAny || t < bestT {
					best, bestT, haveAny = pr, t, true
				}
			}
			if !haveSeed || !haveAny {
				return nil, fmt.Errorf("tune: no candidates for %s at %d", c, s)
			}
			source := "seed"
			if !best.IsDefault() {
				source = "searched"
			}
			entry := plan.Plan{
				Collective:       c.String(),
				Bucket:           plan.Bucket(s),
				SizeBytes:        s,
				Params:           best,
				PredictedSeconds: bestT,
				PredictedDAV:     predictedDAV(c, cfg.Node, cfg.Ranks, best, s),
				BestSeed:         bestSeed.Family,
				BestSeedSeconds:  bestSeedT,
				Source:           source,
			}
			measured[entry.Bucket] = entry
			logf("%s %8d B: %-28s %.3es (best seed %s %.3es)",
				c, s, best.String(), bestT, bestSeed.Family, bestSeedT)
		}
		// Fill the full bucket range from the nearest measured anchor, so
		// quick-budget caches still cover every sweep bucket contiguously.
		full := collSizes(c, false)
		lo, hi := plan.Bucket(full[0]), plan.Bucket(full[len(full)-1])
		for b := lo; b <= hi; b++ {
			if e, ok := measured[b]; ok {
				cache.Plans = append(cache.Plans, e)
				continue
			}
			nearest, bestDist := 0, 1<<30
			for mb := range measured {
				d := mb - b
				if d < 0 {
					d = -d
				}
				// Ties resolve to the lower anchor for determinism.
				if d < bestDist || (d == bestDist && mb < nearest) {
					nearest, bestDist = mb, d
				}
			}
			e := measured[nearest]
			e.Bucket = b
			e.SizeBytes = plan.BucketSize(b)
			e.Source = "extrapolated"
			cache.Plans = append(cache.Plans, e)
		}
	}
	cache.Sort()
	return cache, nil
}
