package tune

import (
	"fmt"

	"yhccl/internal/bench"
	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/plan"
	"yhccl/internal/topo"
)

// Point is one verified sweep point: the tuned dispatch's simulated time
// against the best hand-written baseline of the corresponding figure.
type Point struct {
	Collective string
	SizeBytes  int64
	Tuned      float64
	BestHand   float64
	BestName   string
	// Family is the plan family the table dispatched to.
	Family string
	// Strict records a strict win (tuned < every hand-written baseline).
	Strict bool
}

// figBaselines lists the hand-written algorithm families each collective
// is verified against — the union of the fig11 and fig15 baselines
// (including the production stand-ins and the hand-tuned "yhccl" switch
// itself). Ties count as passes; the gate fails only if some baseline
// strictly beats the tuned dispatch at a sweep point.
func figBaselines(c plan.Coll) []string {
	switch c {
	case plan.Allreduce:
		// fig11a/b + fig15c.
		return []string{"yhccl", "socket-ma", "ma", "dpml", "rg", "ring", "rabenseifner", "two-level", "cma", "xpmem"}
	case plan.ReduceScatter:
		// fig9 + fig15a.
		return []string{"yhccl", "socket-ma", "ma", "dpml", "ring", "rabenseifner", "two-level", "xpmem"}
	case plan.Reduce:
		// fig10 + fig15b.
		return []string{"yhccl", "socket-ma", "ma", "dpml", "rg", "two-level", "xpmem"}
	case plan.Bcast:
		// fig15d.
		return []string{"yhccl", "binomial", "cma", "xpmem"}
	case plan.Allgather:
		// fig15e.
		return []string{"yhccl", "ring", "xpmem"}
	}
	return nil
}

// Verify measures the tuned dispatch at every fig11/fig15 sweep point on
// the machine and checks the beats-or-matches gate against every figure
// baseline. Returns all points (for reporting) and an error naming the
// first regression if any baseline strictly beats the table's choice.
func Verify(node *topo.Node, p int, table *plan.Table, quick bool) ([]Point, error) {
	planner := coll.NewPlanner(table)
	base := bench.NodeOptions(node)
	var points []Point
	var firstErr error
	for _, c := range plan.Colls() {
		for _, s := range collSizes(c, quick) {
			tuned := measureTuned(node, p, c, planner, s, base)
			bestT, bestName := 0.0, ""
			strict := true
			for _, fam := range figBaselines(c) {
				t, err := Measure(node, p, c, plan.Params{Family: fam}, s)
				if err != nil {
					return nil, err
				}
				if bestName == "" || t < bestT {
					bestT, bestName = t, fam
				}
				if t <= tuned {
					strict = false
				}
			}
			entry := table.Lookup(c, lookupBytes(c, p, s))
			fam := ""
			if entry != nil {
				fam = entry.Params.String()
			}
			points = append(points, Point{
				Collective: c.String(), SizeBytes: s,
				Tuned: tuned, BestHand: bestT, BestName: bestName,
				Family: fam, Strict: strict,
			})
			if tuned > bestT && firstErr == nil {
				firstErr = fmt.Errorf("tune: %s at %d B: tuned %s took %.3es, hand-written %s %.3es",
					c, s, fam, tuned, bestName, bestT)
			}
		}
	}
	return points, firstErr
}

// lookupBytes maps a figure sweep size to the bytes the Tuned* dispatchers
// key their lookup on (reduce-scatter sweeps are total message sizes and
// dispatch on total size, so this is the identity for every collective —
// kept explicit so the convention is written down once).
func lookupBytes(c plan.Coll, p int, sBytes int64) int64 { return sBytes }

// measureTuned measures the plan-table dispatch itself through the figure
// harness — the same one Measure uses for the baselines, so ties are exact.
func measureTuned(node *topo.Node, p int, c plan.Coll, planner *coll.Planner, sBytes int64, o coll.Options) float64 {
	switch c {
	case plan.Allreduce:
		return bench.MeasureAllreduce(node, p, func(r *mpi.Rank, cm *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o coll.Options) {
			coll.TunedAllreduce(planner, r, cm, sb, rb, n, op, o)
		}, sBytes, o)
	case plan.ReduceScatter:
		return bench.MeasureReduceScatter(node, p, func(r *mpi.Rank, cm *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, o coll.Options) {
			coll.TunedReduceScatter(planner, r, cm, sb, rb, n, op, o)
		}, sBytes, o)
	case plan.Reduce:
		return bench.MeasureReduce(node, p, func(r *mpi.Rank, cm *mpi.Comm, sb, rb *memmodel.Buffer, n int64, op mpi.Op, root int, o coll.Options) {
			coll.TunedReduce(planner, r, cm, sb, rb, n, op, root, o)
		}, sBytes, o)
	case plan.Bcast:
		return bench.MeasureBcast(node, p, func(r *mpi.Rank, cm *mpi.Comm, buf *memmodel.Buffer, n int64, root int, o coll.Options) {
			coll.TunedBcast(planner, r, cm, buf, n, root, o)
		}, sBytes, o)
	case plan.Allgather:
		return bench.MeasureAllgather(node, p, func(r *mpi.Rank, cm *mpi.Comm, sb, rb *memmodel.Buffer, n int64, o coll.Options) {
			coll.TunedAllgather(planner, r, cm, sb, rb, n, o)
		}, sBytes, o)
	}
	panic("unreachable")
}
