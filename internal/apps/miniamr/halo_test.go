package miniamr

import (
	"testing"

	"yhccl/internal/topo"
)

func haloCfg(npx, npy, npz int) HaloConfig {
	return HaloConfig{
		Node: topo.NodeA(), NPX: npx, NPY: npy, NPZ: npz,
		CellsPerEdge: 6, Timesteps: 3,
	}
}

func TestRunHaloProducesResult(t *testing.T) {
	res, err := RunHalo(haloCfg(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.SimTime <= 0 || res.Checksum == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// 8 ranks, interior rank has... each rank has 3 neighbours in a 2x2x2
	// grid: 8 ranks x 3 dirs x 2 faces (send+recv) x 36 cells x 8 bytes
	// per step x 3 steps.
	want := int64(8) * 3 * 2 * 36 * 8 * 3
	if res.HaloBytes != want {
		t.Errorf("halo bytes = %d, want %d", res.HaloBytes, want)
	}
}

func TestRunHaloDeterministic(t *testing.T) {
	a, err := RunHalo(haloCfg(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHalo(haloCfg(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum || a.SimTime != b.SimTime {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestRunHaloGridShapes(t *testing.T) {
	for _, g := range [][3]int{{1, 1, 1}, {4, 1, 1}, {2, 3, 1}, {2, 2, 2}} {
		if _, err := RunHalo(haloCfg(g[0], g[1], g[2])); err != nil {
			t.Errorf("grid %v: %v", g, err)
		}
	}
}

func TestRunHaloRejectsInvalid(t *testing.T) {
	bad := haloCfg(2, 2, 2)
	bad.CellsPerEdge = 1
	if _, err := RunHalo(bad); err == nil {
		t.Error("tiny grid accepted")
	}
	big := haloCfg(8, 8, 8) // 512 ranks > 64 cores
	if _, err := RunHalo(big); err == nil {
		t.Error("oversubscribed grid accepted")
	}
}

func TestHaloCouplingSpreadsInformation(t *testing.T) {
	// With halo exchange, neighbouring subdomains influence each other:
	// the checksum must differ from a run without neighbours (1x1x1 grid
	// scaled up is a different problem, so instead compare 2 ranks with
	// coupling against the analytic no-coupling evolution of rank 0).
	coupled, err := RunHalo(HaloConfig{Node: topo.NodeA(), NPX: 2, NPY: 1, NPZ: 1, CellsPerEdge: 6, Timesteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := RunHalo(HaloConfig{Node: topo.NodeA(), NPX: 1, NPY: 1, NPZ: 1, CellsPerEdge: 6, Timesteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if coupled.Checksum == solo.Checksum {
		t.Error("halo exchange had no effect on the field")
	}
}

func TestFaceCoordCoversFaces(t *testing.T) {
	d := 4
	for _, dir := range [][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}} {
		seen := map[[3]int]bool{}
		for b := 0; b < d; b++ {
			for a := 0; a < d; a++ {
				x, y, z := faceCoord(dir, d, a, b)
				if x < 0 || y < 0 || z < 0 || x >= d || y >= d || z >= d {
					t.Fatalf("dir %v: coord out of range (%d,%d,%d)", dir, x, y, z)
				}
				seen[[3]int{x, y, z}] = true
			}
		}
		if len(seen) != d*d {
			t.Errorf("dir %v: face covered %d cells, want %d", dir, len(seen), d*d)
		}
	}
}
