// Package miniamr is the Adaptive-Mesh-Refinement proxy workload of the
// paper's §5.6 (Fig. 17): a 3-D stencil computation whose refinement
// bookkeeping performs one large all-reduce per timestep, with the message
// length proportional to the number of refinements (--num_refine 40000
// makes the all-reduce the dominant cost).
//
// The mini-app runs a real 7-point heat stencil plus a real refinement
// all-reduce on the representative node (validating numerics end to end),
// while the reported times combine the modelled nominal-scale compute with
// the cluster-level all-reduce model — the same substitution DESIGN.md
// documents for every paper-scale experiment.
package miniamr

import (
	"fmt"

	"yhccl/internal/cluster"
	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// Config describes a MiniAMR run.
type Config struct {
	// Node is the per-node hardware (Fig. 17 uses NodeA).
	Node *topo.Node
	// Nodes is the node count (1-64 in Fig. 17).
	Nodes int
	// PerNode is ranks per node (64 in Fig. 17).
	PerNode int
	// Net is the inter-node fabric.
	Net cluster.Network
	// Timesteps is --num_tsteps (20 in the artifact).
	Timesteps int
	// RefineCount is --num_refine (40000 in the artifact); the per-step
	// all-reduce carries RefineCount*RefineRecordBytes bytes.
	RefineCount int
	// GridDim is the edge of the real per-rank validation grid (small).
	GridDim int
}

// RefineRecordBytes is the per-refinement bookkeeping the all-reduce
// carries (block counters and error norms).
const RefineRecordBytes = 2048

// ComputePerStep is the modelled nominal stencil time per timestep per
// rank in seconds (weak scaling: constant per rank), calibrated to the
// artifact's single-node totals.
const ComputePerStep = 0.3

// AllreducesPerStep is how many refinement all-reduces one timestep issues
// (--refine_freq 1 refines every step; each refinement pass re-reduces the
// block bookkeeping).
const AllreducesPerStep = 4

// DefaultConfig is the artifact's Fig. 17 setup at the given node count.
func DefaultConfig(nodes int) Config {
	return Config{
		Node:        topo.NodeA(),
		Nodes:       nodes,
		PerNode:     64,
		Net:         cluster.IB100(),
		Timesteps:   20,
		RefineCount: 40000,
		GridDim:     12,
	}
}

// Result is one MiniAMR run's outcome.
type Result struct {
	// Nodes echoes the configuration.
	Nodes int
	// TotalTime is the simulated wall time in seconds.
	TotalTime float64
	// ComputeTime and CommTime are its components.
	ComputeTime, CommTime float64
	// Checksum is the real validation grid's final sum (regression value).
	Checksum float64
}

// Run executes the workload under the given all-reduce composition.
func Run(cfg Config, alg cluster.Algorithm) (Result, error) {
	if cfg.Timesteps <= 0 || cfg.Nodes <= 0 || cfg.PerNode <= 0 {
		return Result{}, fmt.Errorf("miniamr: invalid config %+v", cfg)
	}
	cl := cluster.New(cfg.Node, cfg.Nodes, cfg.PerNode, cfg.Net)
	msgElems := int64(cfg.RefineCount) * RefineRecordBytes / memmodel.ElemSize

	commPerCall, err := cl.AllreduceTime(alg, msgElems)
	if err != nil {
		return Result{}, err
	}
	res := Result{Nodes: cfg.Nodes}
	res.CommTime = commPerCall * AllreducesPerStep * float64(cfg.Timesteps)
	res.ComputeTime = ComputePerStep * float64(cfg.Timesteps)
	res.TotalTime = res.CommTime + res.ComputeTime

	// Real validation pass: a small grid stencil plus a real refinement
	// all-reduce on a real (data-carrying) machine with a few ranks.
	res.Checksum = validate(cfg, alg)
	return res, nil
}

// validate runs the real mini-app at reduced scale: each rank owns a
// GridDim^3 heat grid, sweeps the 7-point stencil, and all-reduces its
// refinement metric (one value per grid plane) every step. It returns the
// global checksum, which must be bit-identical across algorithms.
func validate(cfg Config, alg cluster.Algorithm) float64 {
	p := 4
	if cfg.PerNode < p {
		p = cfg.PerNode
	}
	m := mpi.NewMachine(cfg.Node, p, true)
	d := cfg.GridDim
	var checksum float64
	m.MustRun(func(r *mpi.Rank) {
		grid := newGrid(d, float64(r.ID()+1))
		metrics := r.NewBuffer("metrics", int64(d))
		global := r.NewBuffer("global", int64(d))
		arAlg := pickIntraAllreduce(alg)
		for t := 0; t < cfg.Timesteps; t++ {
			grid.sweep()
			mv := metrics.Slice(0, int64(d))
			for z := 0; z < d; z++ {
				mv[z] = grid.planeNorm(z)
			}
			arAlg(r, r.World(), metrics, global, int64(d), mpi.Sum, coll.Options{})
			// Refinement decision: planes whose global norm exceeds the
			// mean get smoothed once more (deterministic extra work).
			gv := global.Slice(0, int64(d))
			mean := 0.0
			for _, v := range gv {
				mean += v
			}
			mean /= float64(d)
			for z := 0; z < d; z++ {
				if gv[z] > mean {
					grid.smoothPlane(z)
				}
			}
		}
		if r.ID() == 0 {
			gv := global.Slice(0, int64(d))
			for _, v := range gv {
				checksum += v
			}
		}
	})
	return checksum
}

// pickIntraAllreduce maps the cluster composition to the intra-node
// algorithm used in validation.
func pickIntraAllreduce(alg cluster.Algorithm) coll.ARFunc {
	if alg == cluster.YHCCLHierarchical {
		return coll.AllreduceYHCCL
	}
	return coll.AllreduceCMA
}

// grid is a d^3 heat field with fixed boundary.
type grid struct {
	d    int
	cur  []float64
	next []float64
}

func newGrid(d int, seed float64) *grid {
	g := &grid{d: d, cur: make([]float64, d*d*d), next: make([]float64, d*d*d)}
	for i := range g.cur {
		g.cur[i] = seed * float64(i%7)
	}
	return g
}

func (g *grid) at(x, y, z int) float64 {
	if x < 0 || y < 0 || z < 0 || x >= g.d || y >= g.d || z >= g.d {
		return 0
	}
	return g.cur[(z*g.d+y)*g.d+x]
}

// sweep applies one 7-point averaging step.
func (g *grid) sweep() {
	d := g.d
	for z := 0; z < d; z++ {
		for y := 0; y < d; y++ {
			for x := 0; x < d; x++ {
				s := g.at(x, y, z)*0.4 + (g.at(x-1, y, z)+g.at(x+1, y, z)+
					g.at(x, y-1, z)+g.at(x, y+1, z)+g.at(x, y, z-1)+g.at(x, y, z+1))*0.1
				g.next[(z*d+y)*d+x] = s
			}
		}
	}
	g.cur, g.next = g.next, g.cur
}

// planeNorm is the sum of |v| over plane z (the refinement metric).
func (g *grid) planeNorm(z int) float64 {
	d := g.d
	s := 0.0
	for y := 0; y < d; y++ {
		for x := 0; x < d; x++ {
			v := g.cur[(z*d+y)*d+x]
			if v < 0 {
				v = -v
			}
			s += v
		}
	}
	return s
}

// smoothPlane applies in-plane averaging to plane z (refined work).
func (g *grid) smoothPlane(z int) {
	d := g.d
	for y := 0; y < d; y++ {
		for x := 0; x < d; x++ {
			s := g.at(x, y, z)*0.6 + (g.at(x-1, y, z)+g.at(x+1, y, z)+
				g.at(x, y-1, z)+g.at(x, y+1, z))*0.1
			g.next[(z*d+y)*d+x] = s
		}
	}
	for y := 0; y < d; y++ {
		for x := 0; x < d; x++ {
			g.cur[(z*d+y)*d+x] = g.next[(z*d+y)*d+x]
		}
	}
}
