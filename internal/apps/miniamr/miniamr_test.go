package miniamr

import (
	"testing"

	"yhccl/internal/cluster"
)

func smallConfig(nodes int) Config {
	cfg := DefaultConfig(nodes)
	cfg.Timesteps = 3
	cfg.GridDim = 6
	return cfg
}

func TestRunProducesResult(t *testing.T) {
	res, err := Run(smallConfig(1), cluster.YHCCLHierarchical)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.ComputeTime <= 0 || res.CommTime <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Timesteps = 0
	if _, err := Run(cfg, cluster.YHCCLHierarchical); err == nil {
		t.Fatal("expected error")
	}
}

func TestYHCCLBeatsLeaderRingEverywhere(t *testing.T) {
	// Fig. 17's shape: YHCCL total time below Open MPI (CMA leader ring)
	// at every node count, speedup between ~1.1x and ~2x.
	for _, nodes := range []int{1, 4, 16, 64} {
		cfg := smallConfig(nodes)
		y, err := Run(cfg, cluster.YHCCLHierarchical)
		if err != nil {
			t.Fatal(err)
		}
		o, err := Run(cfg, cluster.LeaderRing)
		if err != nil {
			t.Fatal(err)
		}
		if y.TotalTime >= o.TotalTime {
			t.Errorf("nodes=%d: YHCCL %.3g >= OpenMPI %.3g", nodes, y.TotalTime, o.TotalTime)
		}
		if sp := o.TotalTime / y.TotalTime; sp > 2.5 {
			t.Errorf("nodes=%d: speedup %.2fx implausible", nodes, sp)
		}
	}
}

func TestTotalTimeGrowsWithNodes(t *testing.T) {
	t1, _ := Run(smallConfig(1), cluster.YHCCLHierarchical)
	t64, _ := Run(smallConfig(64), cluster.YHCCLHierarchical)
	if t64.TotalTime <= t1.TotalTime {
		t.Errorf("weak-scaling total should grow: %.3g vs %.3g", t64.TotalTime, t1.TotalTime)
	}
}

func TestChecksumIdenticalAcrossAlgorithms(t *testing.T) {
	// The refinement numerics must not depend on which collective ran.
	cfg := smallConfig(1)
	y, _ := Run(cfg, cluster.YHCCLHierarchical)
	o, _ := Run(cfg, cluster.LeaderRing)
	if y.Checksum != o.Checksum {
		t.Fatalf("checksums differ: %v vs %v", y.Checksum, o.Checksum)
	}
	if y.Checksum == 0 {
		t.Fatal("checksum degenerate")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, _ := Run(smallConfig(4), cluster.YHCCLHierarchical)
	b, _ := Run(smallConfig(4), cluster.YHCCLHierarchical)
	if a.TotalTime != b.TotalTime || a.Checksum != b.Checksum {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
