package miniamr

import (
	"fmt"

	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// The full MiniAMR communication skeleton adds the part Run's validation
// pass elides: the 3-D halo exchange. Ranks form an npx x npy x npz
// process grid (the artifact's --npx/--npy/--npz); each owns a cube of
// cells and exchanges face halos with its six neighbours through the
// shared-memory point-to-point transport every timestep, then performs the
// refinement all-reduce. This exercises the p2p layer and the collectives
// together, end to end, with real numerics.

// HaloConfig describes the halo-exchange mini-app.
type HaloConfig struct {
	// Node is the machine description.
	Node *topo.Node
	// NPX, NPY, NPZ is the process grid (NPX*NPY*NPZ ranks).
	NPX, NPY, NPZ int
	// CellsPerEdge is the per-rank cube edge in cells.
	CellsPerEdge int
	// Timesteps to run.
	Timesteps int
}

// HaloResult reports the run.
type HaloResult struct {
	// SimTime is the simulated seconds for the whole run.
	SimTime float64
	// Checksum is the global field sum after the last step (bit-exact
	// regression value).
	Checksum float64
	// HaloBytes is the total halo traffic in bytes.
	HaloBytes int64
}

// RunHalo executes the stencil + halo-exchange + refinement-allreduce loop
// with real data and returns the simulated time and checksum.
func RunHalo(cfg HaloConfig) (HaloResult, error) {
	p := cfg.NPX * cfg.NPY * cfg.NPZ
	if p < 1 || cfg.CellsPerEdge < 2 || cfg.Timesteps < 1 {
		return HaloResult{}, fmt.Errorf("miniamr: invalid halo config %+v", cfg)
	}
	if p > cfg.Node.Cores() {
		return HaloResult{}, fmt.Errorf("miniamr: %d ranks exceed %s's %d cores", p, cfg.Node.Name, cfg.Node.Cores())
	}
	d := cfg.CellsPerEdge
	face := int64(d * d)

	m := mpi.NewMachine(cfg.Node, p, true)
	var res HaloResult
	simTime := m.MustRun(func(r *mpi.Rank) {
		me := r.ID()
		mx, my, mz := me%cfg.NPX, (me/cfg.NPX)%cfg.NPY, me/(cfg.NPX*cfg.NPY)
		g := newGrid(d, float64(me+1))
		// Six face buffers each direction (send and recv).
		sendFace := r.NewBuffer("halo/send", face)
		recvFace := r.NewBuffer("halo/recv", face)
		metrics := r.NewBuffer("metrics", 1)
		global := r.NewBuffer("global", 1)

		neighbor := func(dx, dy, dz int) int {
			nx, ny, nz := mx+dx, my+dy, mz+dz
			if nx < 0 || ny < 0 || nz < 0 || nx >= cfg.NPX || ny >= cfg.NPY || nz >= cfg.NPZ {
				return -1
			}
			return nx + ny*cfg.NPX + nz*cfg.NPX*cfg.NPY
		}
		dirs := [6][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}}

		for step := 0; step < cfg.Timesteps; step++ {
			// Halo exchange: for each direction, lower-coordinate rank
			// sends first (deadlock-free pairing); the received face is
			// folded into the boundary plane (simple average coupling).
			for _, dir := range dirs {
				nb := neighbor(dir[0], dir[1], dir[2])
				if nb < 0 {
					continue
				}
				packFace(g, dir, sendFace.Slice(0, face))
				w := r.World()
				if me < nb {
					r.Send(w, nb, sendFace, 0, face)
					r.Recv(w, nb, recvFace, 0, face, memmodel.Temporal)
				} else {
					r.Recv(w, nb, recvFace, 0, face, memmodel.Temporal)
					r.Send(w, nb, sendFace, 0, face)
				}
				foldFace(g, dir, recvFace.Slice(0, face))
				res.HaloBytes += 2 * face * memmodel.ElemSize
			}
			g.sweep()
			// Refinement metric all-reduce (one value: the global norm).
			metrics.Slice(0, 1)[0] = g.planeNorm(d / 2)
			// Small message: the two-level path runs under the switch.
			allreduceOne(r, metrics, global)
			// Refine: extra smoothing when above the global mean.
			if metrics.Slice(0, 1)[0]*float64(p) > global.Slice(0, 1)[0] {
				g.smoothPlane(d / 2)
			}
		}
		if me == 0 {
			sum := 0.0
			for _, v := range g.cur {
				sum += v
			}
			res.Checksum = sum
		}
	})
	res.SimTime = simTime
	return res, nil
}

// allreduceOne is a one-element all-reduce through the library (small
// message: the two-level path runs under the switch).
func allreduceOne(r *mpi.Rank, in, out *memmodel.Buffer) {
	coll.AllreduceYHCCL(r, r.World(), in, out, 1, mpi.Sum, coll.Options{})
}

// packFace copies the boundary plane facing dir into buf.
func packFace(g *grid, dir [3]int, buf []float64) {
	d := g.d
	idx := 0
	for b := 0; b < d; b++ {
		for a := 0; a < d; a++ {
			x, y, z := faceCoord(dir, d, a, b)
			buf[idx] = g.at(x, y, z)
			idx++
		}
	}
}

// foldFace averages the received halo into the boundary plane.
func foldFace(g *grid, dir [3]int, buf []float64) {
	d := g.d
	idx := 0
	for b := 0; b < d; b++ {
		for a := 0; a < d; a++ {
			x, y, z := faceCoord(dir, d, a, b)
			i := (z*d+y)*d + x
			g.cur[i] = 0.5*g.cur[i] + 0.5*buf[idx]
			idx++
		}
	}
}

// faceCoord maps (a, b) on the face normal to dir onto grid coordinates.
func faceCoord(dir [3]int, d, a, b int) (x, y, z int) {
	edge := func(s int) int {
		if s > 0 {
			return d - 1
		}
		return 0
	}
	switch {
	case dir[0] != 0:
		return edge(dir[0]), a, b
	case dir[1] != 0:
		return a, edge(dir[1]), b
	default:
		return a, b, edge(dir[2])
	}
}
