// Package dnn models the paper's distributed CNN-training workload (§5.6,
// Fig. 18): data-parallel SGD over Horovod-style all-reduce of gradients
// on Cluster C (24 weak Xeon cores per node), for ResNet-50 (25.6 M
// parameters) and VGG-16 (138.4 M parameters).
//
// Per training step every worker computes forward+backward on its
// micro-batch, then the gradients are all-reduced. YHCCL's hierarchical
// all-reduce lets the inter-node phase overlap with the next step's
// computation (the paper: "our optimization in hiding communication with
// computation for inter-node all reduce"); the baseline pays compute plus
// communication serially. A tiny real SGD on a synthetic least-squares
// model validates numerics through the actual collective.
package dnn

import (
	"fmt"
	"math"

	"yhccl/internal/cluster"
	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// Model describes a CNN for throughput purposes.
type Model struct {
	// Name labels the model.
	Name string
	// Params is the parameter count (gradient elements, float32 on the
	// wire: Params*4 bytes per all-reduce).
	Params int64
	// TrainFlopsPerImage is forward+backward FLOPs per image.
	TrainFlopsPerImage float64
	// GEMMEfficiency scales the sustained per-core FLOP rate: VGG's large
	// dense convolutions run far closer to GEMM peak on CPUs than
	// ResNet's small and 1x1 kernels.
	GEMMEfficiency float64
}

// ResNet50 is the paper's 25.6 M-parameter model.
func ResNet50() Model {
	return Model{Name: "ResNet-50", Params: 25_600_000, TrainFlopsPerImage: 3 * 3.9e9, GEMMEfficiency: 1.0}
}

// VGG16 is the paper's 138.4 M-parameter model.
func VGG16() Model {
	return Model{Name: "VGG-16", Params: 138_400_000, TrainFlopsPerImage: 3 * 15.5e9, GEMMEfficiency: 3.3}
}

// Config describes the training setup.
type Config struct {
	// Node is the per-node hardware (Cluster C).
	Node *topo.Node
	// Nodes is the node count (1-256 in Fig. 18).
	Nodes int
	// PerNode is workers per node (24).
	PerNode int
	// Net is the fabric.
	Net cluster.Network
	// BatchPerWorker is images per worker per step.
	BatchPerWorker int
	// CoreGFLOPS is the sustained per-core training throughput in GFLOP/s
	// (weak Ivy Bridge cores running im2col GEMMs).
	CoreGFLOPS float64
	// TensorBuckets is the number of fused gradient buffers Horovod
	// exchanges per step (tensor fusion leaves tens of buckets, each
	// paying full collective latency).
	TensorBuckets int
}

// DefaultConfig is the Fig. 18 setup at the given node count.
func DefaultConfig(nodes int) Config {
	return Config{
		Node:           topo.NodeC(),
		Nodes:          nodes,
		PerNode:        24,
		Net:            cluster.IB56(),
		BatchPerWorker: 4,
		CoreGFLOPS:     12,
		TensorBuckets:  64,
	}
}

// Result is the outcome of a throughput evaluation.
type Result struct {
	// Nodes echoes the configuration.
	Nodes int
	// ImagesPerSecond is the aggregate training throughput.
	ImagesPerSecond float64
	// StepTime is seconds per training step.
	StepTime float64
	// ComputeTime and CommTime are its components (CommTime is the
	// exposed, non-overlapped part).
	ComputeTime, CommTime float64
}

// Throughput evaluates the training throughput of the model under the
// given all-reduce composition.
func Throughput(cfg Config, model Model, alg cluster.Algorithm) (Result, error) {
	if cfg.Nodes <= 0 || cfg.PerNode <= 0 || cfg.BatchPerWorker <= 0 {
		return Result{}, fmt.Errorf("dnn: invalid config %+v", cfg)
	}
	cl := cluster.New(cfg.Node, cfg.Nodes, cfg.PerNode, cfg.Net)
	// Gradients are float32: bytes = 4*Params; our element unit is 8 bytes.
	gradElems := ceilDiv(model.Params*4, memmodel.ElemSize)
	comm, err := cl.AllreduceTimeTensors(alg, gradElems, cfg.TensorBuckets)
	if err != nil {
		return Result{}, err
	}
	compute := float64(cfg.BatchPerWorker) * model.TrainFlopsPerImage / (cfg.CoreGFLOPS * model.GEMMEfficiency * 1e9)

	var step float64
	var exposed float64
	if alg == cluster.YHCCLHierarchical {
		// Gradient all-reduce overlaps with the next step's backward pass
		// (Horovod's tensor-fusion pipeline): only the excess is exposed.
		exposed = math.Max(0, comm-0.9*compute)
	} else {
		exposed = comm
	}
	step = compute + exposed

	workers := float64(cfg.Nodes * cfg.PerNode)
	return Result{
		Nodes:           cfg.Nodes,
		ImagesPerSecond: workers * float64(cfg.BatchPerWorker) / step,
		StepTime:        step,
		ComputeTime:     compute,
		CommTime:        exposed,
	}, nil
}

// TrainValidation runs a tiny real data-parallel gradient descent
// (least-squares fit of w to the target [1..dim], the loss sharded across
// workers) through the actual intra-node collective and returns the
// per-step losses, which must decrease monotonically and be identical
// across algorithm choices.
func TrainValidation(node *topo.Node, p int, steps int, alg coll.ARFunc) []float64 {
	const dim = 64
	m := mpi.NewMachine(node, p, true)
	losses := make([]float64, steps)
	m.MustRun(func(r *mpi.Rank) {
		w := make([]float64, dim) // replicated weights
		grad := r.NewBuffer("grad", dim)
		gsum := r.NewBuffer("gsum", dim)
		// Worker r owns the loss terms of coordinates congruent to r mod p:
		// L_r(w) = sum_i (w[i] - (i+1))^2 over its shard; the global loss is
		// the all-reduced sum, the global gradient likewise.
		lr := 0.2
		for s := 0; s < steps; s++ {
			gv := grad.Slice(0, dim)
			loss := 0.0
			for i := 0; i < dim; i++ {
				gv[i] = 0
				if i%p == r.ID() {
					diff := w[i] - float64(i+1)
					loss += diff * diff
					gv[i] = 2 * diff
				}
			}
			alg(r, r.World(), grad, gsum, dim, mpi.Sum, coll.Options{})
			sv := gsum.Slice(0, dim)
			for i := 0; i < dim; i++ {
				w[i] -= lr * sv[i]
			}
			if r.ID() == 0 {
				losses[s] = loss
			}
		}
	})
	return losses
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
