package dnn

import (
	"testing"

	"yhccl/internal/cluster"
	"yhccl/internal/coll"
	"yhccl/internal/topo"
)

func TestModelCards(t *testing.T) {
	if ResNet50().Params != 25_600_000 {
		t.Error("ResNet-50 parameter count")
	}
	if VGG16().Params != 138_400_000 {
		t.Error("VGG-16 parameter count")
	}
}

func TestThroughputPositiveAndScales(t *testing.T) {
	for _, model := range []Model{ResNet50(), VGG16()} {
		r1, err := Throughput(DefaultConfig(1), model, cluster.YHCCLHierarchical)
		if err != nil {
			t.Fatal(err)
		}
		r64, err := Throughput(DefaultConfig(64), model, cluster.YHCCLHierarchical)
		if err != nil {
			t.Fatal(err)
		}
		if r1.ImagesPerSecond <= 0 {
			t.Fatalf("%s: degenerate throughput", model.Name)
		}
		if r64.ImagesPerSecond < 8*r1.ImagesPerSecond {
			t.Errorf("%s: poor scaling %f -> %f img/s", model.Name, r1.ImagesPerSecond, r64.ImagesPerSecond)
		}
	}
}

func TestYHCCLImprovesThroughput(t *testing.T) {
	// Fig. 18: 1.8-2.0x at scale; smaller but real gains at few nodes.
	for _, model := range []Model{ResNet50(), VGG16()} {
		for _, nodes := range []int{2, 16, 256} {
			cfg := DefaultConfig(nodes)
			y, err := Throughput(cfg, model, cluster.YHCCLHierarchical)
			if err != nil {
				t.Fatal(err)
			}
			o, err := Throughput(cfg, model, cluster.FlatRing)
			if err != nil {
				t.Fatal(err)
			}
			sp := y.ImagesPerSecond / o.ImagesPerSecond
			if sp <= 1 {
				t.Errorf("%s nodes=%d: YHCCL speedup %.2fx <= 1", model.Name, nodes, sp)
			}
			if sp > 3 {
				t.Errorf("%s nodes=%d: speedup %.2fx implausible", model.Name, nodes, sp)
			}
		}
	}
}

func TestSpeedupAtScaleMatchesPaperBand(t *testing.T) {
	// 256 nodes x 24 = 6144 cores: paper reports 1.94x (ResNet-50) and
	// 1.80x (VGG-16); accept the 1.5-2.4 band.
	for _, model := range []Model{ResNet50(), VGG16()} {
		cfg := DefaultConfig(256)
		y, _ := Throughput(cfg, model, cluster.YHCCLHierarchical)
		o, _ := Throughput(cfg, model, cluster.FlatRing)
		sp := y.ImagesPerSecond / o.ImagesPerSecond
		if sp < 1.5 || sp > 2.4 {
			t.Errorf("%s: speedup at 256 nodes = %.2fx, want ~1.8-2.0x", model.Name, sp)
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.BatchPerWorker = 0
	if _, err := Throughput(cfg, ResNet50(), cluster.YHCCLHierarchical); err == nil {
		t.Fatal("expected error")
	}
}

func TestTrainValidationConverges(t *testing.T) {
	losses := TrainValidation(topo.NodeC(), 4, 60, coll.AllreduceYHCCL)
	if losses[0] <= losses[len(losses)-1]*1.5 {
		t.Fatalf("SGD did not converge: first %.4g last %.4g", losses[0], losses[len(losses)-1])
	}
}

func TestTrainValidationAlgorithmInvariant(t *testing.T) {
	a := TrainValidation(topo.NodeC(), 4, 25, coll.AllreduceYHCCL)
	b := TrainValidation(topo.NodeC(), 4, 25, coll.AllreduceCMA)
	c := TrainValidation(topo.NodeC(), 4, 25, coll.AllreduceRing)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("step %d: losses diverge across collectives: %v %v %v", i, a[i], b[i], c[i])
		}
	}
}
