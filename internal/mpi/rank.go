package mpi

import (
	"fmt"

	"yhccl/internal/memmodel"
	"yhccl/internal/sim"
)

// Rank is one simulated MPI process: a sim.Proc pinned to a core, with the
// modelled data-movement primitives every collective is written in terms
// of. All primitives both perform the real element-wise work (when the
// machine runs in Real mode) and charge the memory cost model.
type Rank struct {
	proc    *sim.Proc
	machine *Machine
	id      int
}

// ID returns the global rank id.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.machine.Size() }

// Core returns the core this rank is pinned to.
func (r *Rank) Core() int { return r.machine.RankCores[r.id] }

// Socket returns the socket of this rank's core.
func (r *Rank) Socket() int { return r.machine.Node.SocketOf(r.Core()) }

// Machine returns the owning machine.
func (r *Rank) Machine() *Machine { return r.machine }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.machine.World() }

// SocketComm returns the communicator of this rank's socket.
func (r *Rank) SocketComm() *Comm { return r.machine.SocketComm(r.Socket()) }

// Proc exposes the underlying simulated process.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Now returns this rank's virtual time.
func (r *Rank) Now() float64 { return r.proc.Now() }

// SetOp declares the collective operation this rank is currently executing
// (e.g. "allreduce/ring"), purely for failure diagnostics: a RunError's
// per-rank status names the op each rank died or hung inside.
func (r *Rank) SetOp(name string) {
	if r.id >= 0 && r.id < len(r.machine.rankOps) {
		r.machine.rankOps[r.id] = name
	}
}

// Op returns the operation last declared via SetOp.
func (r *Rank) Op() string {
	if r.id >= 0 && r.id < len(r.machine.rankOps) {
		return r.machine.rankOps[r.id]
	}
	return ""
}

// corrupt gives an armed fault injector its shot at this rank's write into
// a shared buffer (bit-flip corruption lands after the rank computes its
// store values and before any peer can read them). Healthy runs pay one nil
// compare.
func (r *Rank) corrupt(dst *memmodel.Buffer, dOff, n int64) {
	if inj := r.machine.inject; inj != nil && dst.Space == memmodel.Shared && dst.Real() {
		inj.CorruptShared(r.id, r.proc.Now(), dst.Name, dst.Slice(dOff, n))
	}
}

// Compute advances this rank's clock by dt seconds of local computation.
func (r *Rank) Compute(dt float64) { r.proc.Advance(dt) }

// NewBuffer allocates a private buffer of n elements homed on this rank's
// socket (first touch).
func (r *Rank) NewBuffer(label string, n int64) *memmodel.Buffer {
	return r.machine.Model.NewBuffer(
		fmt.Sprintf("rank%d/%s", r.id, label),
		memmodel.Private, r.Socket(), n, r.machine.Real)
}

// PersistentBuffer returns a private buffer that survives across
// invocations (an algorithm's scratch space), growing it if a larger size
// is requested later.
func (r *Rank) PersistentBuffer(label string, n int64) *memmodel.Buffer {
	perRank, ok := r.machine.privBufs[r.id]
	if !ok {
		perRank = make(map[string]*memmodel.Buffer)
		r.machine.privBufs[r.id] = perRank
	}
	if b, ok := perRank[label]; ok && b.Elems >= n {
		return b
	}
	b := r.NewBuffer(label, n)
	perRank[label] = b
	return b
}

// Warm marks a buffer range resident in this rank's socket cache, modelling
// the application having just produced/updated the data.
func (r *Rank) Warm(b *memmodel.Buffer, off, n int64) {
	r.machine.Model.Warm(r.Core(), b, off, n)
}

// Load charges a temporal load of n elements of b at off.
func (r *Rank) Load(b *memmodel.Buffer, off, n int64) {
	r.machine.Model.Load(r.proc, r.Core(), b, off, n)
}

// Store charges a store of n elements into b at off.
func (r *Rank) Store(b *memmodel.Buffer, off, n int64, kind memmodel.StoreKind) {
	r.machine.Model.Store(r.proc, r.Core(), b, off, n, kind)
}

// CopyElems copies n elements from src[sOff] to dst[dOff] with the given
// store kind: one modelled load plus one store, plus the real data movement
// in Real mode. Copies that cross the private/shared boundary count toward
// the paper's copy volume V.
func (r *Rank) CopyElems(dst *memmodel.Buffer, dOff int64, src *memmodel.Buffer, sOff, n int64, kind memmodel.StoreKind) {
	if n == 0 {
		return
	}
	dst.CheckRange(dOff, n)
	src.CheckRange(sOff, n)
	if dst.Real() && src.Real() {
		copy(dst.Slice(dOff, n), src.Slice(sOff, n))
		r.corrupt(dst, dOff, n)
	}
	m := r.machine.Model
	m.Copy(r.proc, r.Core(), dst, dOff, src, sOff, n, kind)
	if dst.Space != src.Space {
		m.CountCopyVolume(n)
	}
}

// AccumulateElems performs dst[dOff..] = op(dst[dOff..], src[sOff..]) over
// n elements (the paper's A += B): two loads plus one store plus the
// arithmetic floor.
func (r *Rank) AccumulateElems(dst *memmodel.Buffer, dOff int64, src *memmodel.Buffer, sOff, n int64, op Op, kind memmodel.StoreKind) {
	if n == 0 {
		return
	}
	dst.CheckRange(dOff, n)
	src.CheckRange(sOff, n)
	if dst.Real() && src.Real() {
		op.Apply(dst.Slice(dOff, n), src.Slice(sOff, n))
		r.corrupt(dst, dOff, n)
	}
	m := r.machine.Model
	m.Accumulate(r.proc, r.Core(), dst, dOff, src, sOff, n, kind)
}

// CombineElems performs out[oOff..] = op(a[aOff..], b[bOff..]) over n
// elements (the paper's C = A + B): two loads plus one store plus the
// arithmetic floor.
func (r *Rank) CombineElems(out *memmodel.Buffer, oOff int64, a *memmodel.Buffer, aOff int64, b *memmodel.Buffer, bOff, n int64, op Op, kind memmodel.StoreKind) {
	if n == 0 {
		return
	}
	out.CheckRange(oOff, n)
	a.CheckRange(aOff, n)
	b.CheckRange(bOff, n)
	if out.Real() && a.Real() && b.Real() {
		op.Combine(out.Slice(oOff, n), a.Slice(aOff, n), b.Slice(bOff, n))
		r.corrupt(out, oOff, n)
	}
	m := r.machine.Model
	m.Combine(r.proc, r.Core(), out, oOff, a, aOff, b, bOff, n, kind)
}

// FillPattern writes a deterministic test pattern into a real buffer
// without charging the model (test/bench setup helper). Element i of rank
// r's buffer gets base + i.
func (r *Rank) FillPattern(b *memmodel.Buffer, base float64) {
	if !b.Real() {
		return
	}
	data := b.Slice(0, b.Elems)
	for i := range data {
		data[i] = base + float64(i)
	}
}
