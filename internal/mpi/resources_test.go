package mpi

import (
	"testing"

	"yhccl/internal/memmodel"
	"yhccl/internal/topo"
)

func TestPublishPeer(t *testing.T) {
	m := NewMachine(topo.NodeA(), 4, true)
	m.MustRun(func(r *Rank) {
		c := r.World()
		b := r.NewBuffer("mine", 10)
		b.Slice(0, 1)[0] = float64(r.ID() * 11)
		c.Publish(r, "xp", b)
		c.Barrier().Arrive(r.Proc())
		for who := 0; who < 4; who++ {
			peer := c.Peer("xp", who)
			if got := peer.Slice(0, 1)[0]; got != float64(who*11) {
				t.Errorf("rank %d sees peer %d value %v", r.ID(), who, got)
			}
		}
	})
}

func TestPeerUnpublishedPanics(t *testing.T) {
	m := NewMachine(topo.NodeA(), 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MustRun(func(r *Rank) {
		r.World().Peer("nothing", 0)
	})
}

func TestCounterPersistsAcrossRuns(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, false)
	for i := 1; i <= 3; i++ {
		i := i
		m.MustRun(func(r *Rank) {
			ctr := r.World().Counter(r, "epoch")
			*ctr++
			if *ctr != int64(i) {
				t.Errorf("run %d rank %d counter = %d", i, r.ID(), *ctr)
			}
		})
	}
}

func TestCountersIndependentPerRankAndKey(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, false)
	m.MustRun(func(r *Rank) {
		a := r.World().Counter(r, "a")
		b := r.World().Counter(r, "b")
		*a = int64(r.ID() + 1)
		*b = 100
		if *r.World().Counter(r, "a") != int64(r.ID()+1) {
			t.Error("counter a lost")
		}
	})
}

func TestPersistentBufferGrowsAndPersists(t *testing.T) {
	m := NewMachine(topo.NodeA(), 1, true)
	var first *memmodel.Buffer
	m.MustRun(func(r *Rank) {
		first = r.PersistentBuffer("scratch", 100)
		first.Slice(0, 1)[0] = 7
	})
	m.MustRun(func(r *Rank) {
		again := r.PersistentBuffer("scratch", 50) // smaller: same buffer
		if again != first {
			t.Error("persistent buffer not reused")
		}
		if again.Slice(0, 1)[0] != 7 {
			t.Error("persistent buffer lost data")
		}
		bigger := r.PersistentBuffer("scratch", 200)
		if bigger == first {
			t.Error("persistent buffer not regrown")
		}
	})
}

func TestPinnedStagingNeverTouchesDRAM(t *testing.T) {
	// p2p staging is pinned: a send/recv at any size must not register
	// staging DRAM traffic beyond the src/dst buffers themselves.
	m := NewMachine(topo.NodeA(), 2, false)
	const n = 1 << 16
	m.MustRun(func(r *Rank) {
		buf := r.NewBuffer("buf", n)
		r.Warm(buf, 0, n)
		if r.ID() == 0 {
			r.Send(r.World(), 1, buf, 0, n)
		} else {
			r.Recv(r.World(), 0, buf, 0, n, memmodel.Temporal)
		}
	})
	c := m.Model.Counters()
	// Sender loads warm buf (cache), staging pinned; receiver stores into
	// warm buf (cache hits). Only incidental traffic allowed.
	if c.DRAMTraffic > n {
		t.Errorf("DRAM traffic %d for a cache-resident transfer of %d bytes", c.DRAMTraffic, n*8)
	}
}

func TestSendToSelfPanics(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MustRun(func(r *Rank) {
		b := r.NewBuffer("b", 8)
		r.Send(r.World(), r.World().CommRank(r.ID()), b, 0, 8)
	})
}

func TestZeroLengthSendPanics(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MustRun(func(r *Rank) {
		b := r.NewBuffer("b", 8)
		if r.ID() == 0 {
			r.Send(r.World(), 1, b, 0, 0)
		}
	})
}
