package mpi

import (
	"errors"
	"strings"
	"testing"

	"yhccl/internal/fault"
	"yhccl/internal/memmodel"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// ringShift is a minimal multi-rank workload for fault tests: every rank
// sends a block to its right neighbour and receives from its left.
func ringShift(n int64) func(r *Rank) {
	return func(r *Rank) {
		r.SetOp("ringshift")
		w := r.World()
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()*1000))
		p := r.Size()
		r.SendRecv(w, (r.ID()+1)%p, sb, 0, n, (r.ID()+p-1)%p, rb, 0, n, memmodel.Temporal)
	}
}

func TestStragglerSlowsMakespanDeterministically(t *testing.T) {
	base := NewMachine(topo.NodeA(), 4, true)
	t0 := base.MustRun(ringShift(4096))
	run := func() float64 {
		m := NewMachine(topo.NodeA(), 4, true)
		if err := m.SetFaultPlan(&fault.Plan{
			Name:       "slow1",
			Stragglers: []fault.Straggler{{Rank: 1, Factor: 10}},
		}); err != nil {
			t.Fatal(err)
		}
		return m.MustRun(ringShift(4096))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("straggler runs diverged: %x vs %x", a, b)
	}
	if a <= t0 {
		t.Errorf("straggler makespan %g not above healthy %g", a, t0)
	}
}

func TestStallDiagnosedWithVictimRank(t *testing.T) {
	m := NewMachine(topo.NodeA(), 4, true)
	if err := m.SetFaultPlan(&fault.Plan{
		Name:   "stall1",
		Stalls: []fault.Stall{{Rank: 1, At: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Run(ringShift(4096))
	if err == nil {
		t.Fatal("expected diagnosed failure")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError", err)
	}
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("cause is %T, want *sim.DeadlockError underneath", re.Err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "rank1") || !strings.Contains(msg, "injected stall") {
		t.Errorf("victim not named: %v", msg)
	}
	if !strings.Contains(msg, `plan "stall1"`) {
		t.Errorf("plan not named: %v", msg)
	}
	// The per-rank snapshot must attribute the op each victim was inside.
	found := false
	for _, rs := range re.Ranks {
		if rs.Rank == 1 {
			found = true
			if rs.Op != "ringshift" {
				t.Errorf("rank1 op = %q, want ringshift", rs.Op)
			}
			if rs.Core != 1 {
				t.Errorf("rank1 core = %d, want 1", rs.Core)
			}
		}
	}
	if !found {
		t.Errorf("rank1 missing from diagnostics: %v", re.Diagnose())
	}
	if len(re.Faults) == 0 {
		t.Error("fired-fault log empty")
	}
}

func TestCrashReturnsAttributedError(t *testing.T) {
	m := NewMachine(topo.NodeA(), 4, true)
	if err := m.SetFaultPlan(&fault.Plan{
		Name:   "crash3",
		Stalls: []fault.Stall{{Rank: 3, At: 0, Crash: true}},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Run(ringShift(4096))
	if err == nil {
		t.Fatal("expected crash to surface as an error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError (crash must not escape as a panic)", err)
	}
	var ic *sim.InjectedCrash
	if !errors.As(err, &ic) {
		t.Fatalf("cause chain misses *sim.InjectedCrash: %v", err)
	}
	if !strings.Contains(err.Error(), `"rank3"`) || !strings.Contains(err.Error(), "injected crash") {
		t.Errorf("victim not named: %v", err)
	}
}

func TestCorruptionFlipsSharedWrite(t *testing.T) {
	const n = 256
	run := func(plan *fault.Plan) []float64 {
		m := NewMachine(topo.NodeA(), 2, true)
		if err := m.SetFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, n)
		m.MustRun(func(r *Rank) {
			w := r.World()
			buf := r.NewBuffer("buf", n)
			if r.ID() == 0 {
				r.FillPattern(buf, 1000)
				r.Send(w, 1, buf, 0, n) // copy-in: rank0's shared write
			} else {
				r.Recv(w, 0, buf, 0, n, memmodel.Temporal)
				copy(out, buf.Slice(0, n))
			}
		})
		return out
	}
	clean := run(nil)
	dirty := run(&fault.Plan{Name: "flip", Corruptions: []fault.Corruption{
		{Rank: 0, SharedWrite: 0, Elem: 17, Bit: 63},
	}})
	diffs := 0
	for i := range clean {
		if clean[i] != dirty[i] {
			diffs++
			if i != 17 {
				t.Errorf("flip landed on elem %d, want 17", i)
			}
		}
	}
	if diffs != 1 {
		t.Errorf("%d elements differ, want exactly 1", diffs)
	}
	if dirty[17] != -clean[17] { // bit 63 is the sign bit
		t.Errorf("elem 17: %v -> %v, want sign flip", clean[17], dirty[17])
	}
}

func TestFaultPlanValidatedAgainstWorld(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, true)
	err := m.SetFaultPlan(&fault.Plan{Stalls: []fault.Stall{{Rank: 7}}})
	if err == nil || !strings.Contains(err.Error(), "outside world") {
		t.Errorf("got %v, want out-of-world rejection", err)
	}
	if m.Injector() != nil {
		t.Error("rejected plan left an injector armed")
	}
	if err := m.SetFaultPlan(nil); err != nil {
		t.Errorf("nil plan should disarm cleanly: %v", err)
	}
}

func TestRecvTimeoutDiagnosesMissingSender(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, true)
	var terr error
	_, err := m.Run(func(r *Rank) {
		if r.ID() == 1 {
			r.SetOp("probe")
			buf := r.NewBuffer("buf", 64)
			terr = r.RecvTimeout(r.World(), 0, buf, 0, 64, memmodel.Temporal, 1e-3)
		}
	})
	if err != nil {
		t.Fatalf("bounded recv must not deadlock the run: %v", err)
	}
	var te *TimeoutError
	if !errors.As(terr, &te) {
		t.Fatalf("got %v, want *TimeoutError", terr)
	}
	if te.Rank != 1 || te.Src != 0 || te.Done != 0 || te.Total != 64 || te.Op != "probe" {
		t.Errorf("timeout context wrong: %+v", te)
	}
	if !strings.Contains(te.Error(), "rank1") || !strings.Contains(te.Error(), "0 of 64") {
		t.Errorf("unhelpful message: %v", te)
	}
}

func TestRecvTimeoutCompletesWhenSenderArrives(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, true)
	const n = 20000 // several chunks
	m.MustRun(func(r *Rank) {
		w := r.World()
		buf := r.NewBuffer("buf", n)
		if r.ID() == 0 {
			r.FillPattern(buf, 5)
			r.Send(w, 1, buf, 0, n)
		} else {
			if err := r.RecvTimeout(w, 0, buf, 0, n, memmodel.Temporal, 1.0); err != nil {
				t.Errorf("recv timed out with a live sender: %v", err)
			}
			if got := buf.Slice(n-1, 1)[0]; got != 5+float64(n-1) {
				t.Errorf("tail = %v", got)
			}
		}
	})
}

func TestWatchdogCatchesLivelockedRun(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, false)
	m.Watchdog = 50_000
	// Raw zero-latency sim flags: shm flags charge coherence latency, which
	// is progress; a livelock needs switches with no virtual-time advance.
	fa, fb := sim.NewFlag("a"), sim.NewFlag("b")
	_, err := m.Run(func(r *Rank) {
		p := r.Proc()
		for i := uint64(1); ; i++ {
			if r.ID() == 0 {
				p.Set(fa, i)
				p.Wait(fb, i, 0)
			} else {
				p.Wait(fa, i, 0)
				p.Set(fb, i)
			}
		}
	})
	if err == nil {
		t.Fatal("expected livelock diagnosis")
	}
	var ll *sim.LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("error is %T (%v), want *sim.LivelockError underneath", err, err)
	}
}

// expectProcPanic runs body on a fresh machine and asserts the rank's
// precondition panic surfaces as a RunError whose message contains want —
// pinning both the conversion path and the message text (satellite:
// error-message refactors can't silently change behavior).
func expectProcPanic(t *testing.T, p int, want string, body func(r *Rank)) {
	t.Helper()
	m := NewMachine(topo.NodeA(), p, true)
	_, err := m.Run(body)
	if err == nil {
		t.Fatalf("expected %q failure", want)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError", err)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the precondition %q", err.Error(), want)
	}
}

func TestPreconditionSendToSelf(t *testing.T) {
	expectProcPanic(t, 2, "send to self", func(r *Rank) {
		if r.ID() == 0 {
			buf := r.NewBuffer("b", 8)
			r.Send(r.World(), 0, buf, 0, 8)
		}
	})
}

func TestPreconditionRecvFromSelf(t *testing.T) {
	expectProcPanic(t, 2, "recv from self", func(r *Rank) {
		if r.ID() == 0 {
			buf := r.NewBuffer("b", 8)
			r.Recv(r.World(), 0, buf, 0, 8, memmodel.Temporal)
		}
	})
}

func TestPreconditionBadSendLength(t *testing.T) {
	expectProcPanic(t, 2, "non-positive length", func(r *Rank) {
		if r.ID() == 0 {
			buf := r.NewBuffer("b", 8)
			r.Send(r.World(), 1, buf, 0, 0)
		}
	})
}

func TestPreconditionRankNotInComm(t *testing.T) {
	expectProcPanic(t, 64, "not in comm", func(r *Rank) {
		if r.ID() == 0 {
			// Rank 0 lives on socket 0; using socket1's comm is a bug.
			c := r.Machine().SocketComm(1)
			buf := r.NewBuffer("b", 8)
			r.Send(c, 1, buf, 0, 8)
		}
	})
}

func TestPreconditionPanicNamesRank(t *testing.T) {
	m := NewMachine(topo.NodeA(), 4, true)
	_, err := m.Run(func(r *Rank) {
		if r.ID() == 2 {
			buf := r.NewBuffer("b", 8)
			r.Send(r.World(), 2, buf, 0, 8)
		}
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), `"rank2"`) {
		t.Errorf("failing rank not named: %v", err)
	}
	var pp *sim.ProcPanic
	if !errors.As(err, &pp) {
		t.Fatalf("cause is not a *sim.ProcPanic: %v", err)
	}
	if pp.ProcName != "rank2" {
		t.Errorf("attributed to %q", pp.ProcName)
	}
}

func TestHealthyRunUnaffectedByDisarmedInjector(t *testing.T) {
	runOnce := func(arm bool) float64 {
		m := NewMachine(topo.NodeA(), 8, true)
		if arm {
			if err := m.SetFaultPlan(&fault.Plan{
				Name:   "armed-elsewhere",
				Stalls: []fault.Stall{{Rank: 7, At: 1e9}}, // far past the run
			}); err != nil {
				t.Fatal(err)
			}
		}
		return m.MustRun(ringShift(4096))
	}
	clean, armed := runOnce(false), runOnce(true)
	if clean != armed {
		t.Errorf("stall armed beyond the horizon changed the makespan: %x vs %x", clean, armed)
	}
}
